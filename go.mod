module vnfopt

go 1.22
