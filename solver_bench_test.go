// Benchmarks for the shared branch-and-bound solver kernel behind
// placement.Optimal (Algorithm 4), migration.Exhaustive (Algorithm 6),
// and the exhaustive n-stroll solver. Each solver is measured
// sequentially and at 8 workers on a hard 24-switch mesh (wide-spread
// delays prune poorly, so the search actually explores a large tree)
// plus the k=8 fat-tree TOP instance the paper evaluates. Recorded
// numbers live in results/BENCH_solver.json; `make bench-solver` runs
// this file at -benchtime 1x as a smoke gate.
package vnfopt_test

import (
	"math/rand"
	"testing"

	"vnfopt"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/topology"
)

// solverMesh is the hard instance: a 24-switch random mesh with delays
// drawn from [0.1, 9.9] and 12 random flows. The wide delay spread
// keeps the nearest-neighbor bound loose, which is the regime where
// branch-and-bound does real work (tens of thousands of expansions)
// instead of collapsing onto the seed.
func solverMesh(tb testing.TB) (*model.PPDC, model.Workload) {
	tb.Helper()
	rng := rand.New(rand.NewSource(5))
	mesh, err := topology.RandomMesh(24, 12, 30, topology.UniformDelay(5, 4.9, rng), rng)
	if err != nil {
		tb.Fatal(err)
	}
	d := model.MustNew(mesh, model.Options{SwitchCapacity: 1})
	hosts := mesh.Hosts
	w := make(model.Workload, 12)
	for i := range w {
		w[i] = model.VMPair{
			Src:  hosts[rng.Intn(len(hosts))],
			Dst:  hosts[rng.Intn(len(hosts))],
			Rate: 1 + rng.Float64(),
		}
	}
	return d, w
}

func benchPlacement(b *testing.B, d *model.PPDC, w model.Workload, n, workers int) {
	b.Helper()
	sfc := model.NewSFC(n)
	sol := placement.Optimal{Seed: placement.DP{}, Workers: workers}
	b.ReportAllocs()
	start := placement.SearchExpansions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sol.Place(d, w, sfc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(placement.SearchExpansions()-start)/float64(b.N), "exp/op")
}

// BenchmarkSolverPlacementMesh24 measures Algorithm 4 on the hard mesh
// at n=7 (the largest chain the instance completes in well under a
// second), sequentially and fanned out.
func BenchmarkSolverPlacementMesh24(b *testing.B) {
	d, w := solverMesh(b)
	b.Run("seq", func(b *testing.B) { benchPlacement(b, d, w, 7, 0) })
	b.Run("par8", func(b *testing.B) { benchPlacement(b, d, w, 7, 8) })
}

// BenchmarkSolverPlacementFatTree is the ISSUE-named configuration: the
// k=8 fat-tree at n=3, DP-seeded. The fat-tree's uniform link delays
// make the bound nearly tight, so the search proves the seed optimal
// after a handful of expansions — this bench pins that the kernel keeps
// the easy case cheap rather than showing fan-out gains.
func BenchmarkSolverPlacementFatTree(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d := model.MustNew(topology.MustFatTree(8, nil), model.Options{SwitchCapacity: 1})
	hosts := d.Topo.Hosts
	w := make(model.Workload, 16)
	for i := range w {
		w[i] = model.VMPair{
			Src:  hosts[rng.Intn(len(hosts))],
			Dst:  hosts[rng.Intn(len(hosts))],
			Rate: 1 + rng.Float64(),
		}
	}
	b.Run("seq", func(b *testing.B) { benchPlacement(b, d, w, 3, 0) })
	b.Run("par8", func(b *testing.B) { benchPlacement(b, d, w, 3, 8) })
}

func benchMigration(b *testing.B, d *model.PPDC, w1, w2 model.Workload, n, workers int) {
	b.Helper()
	sfc := model.NewSFC(n)
	p, _, err := (placement.DP{}).Place(d, w1, sfc)
	if err != nil {
		b.Fatal(err)
	}
	mig := migration.Exhaustive{Seed: migration.MPareto{}, Workers: workers}
	b.ReportAllocs()
	start := migration.SearchExpansions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mig.Migrate(d, w2, sfc, p, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(migration.SearchExpansions()-start)/float64(b.N), "exp/op")
}

// BenchmarkSolverMigrationMesh24 measures Algorithm 6 on the hard mesh
// at n=6: place under one rate vector, migrate under a resampled one.
func BenchmarkSolverMigrationMesh24(b *testing.B) {
	d, w1 := solverMesh(b)
	rng := rand.New(rand.NewSource(11))
	rates := make([]float64, len(w1))
	for i := range rates {
		rates[i] = 1 + rng.Float64()
	}
	w2 := w1.WithRates(rates)
	b.Run("seq", func(b *testing.B) { benchMigration(b, d, w1, w2, 6, 0) })
	b.Run("par8", func(b *testing.B) { benchMigration(b, d, w1, w2, 6, 8) })
}

// TestSolverParallelMatchesSequential is the bench-gate sanity assert
// (`make bench-solver` runs it before the benchmarks): on the hard mesh
// the 8-worker kernel must reproduce the sequential cost bitwise, the
// same placement, and the same proven flag, through the public facade.
func TestSolverParallelMatchesSequential(t *testing.T) {
	d, w := solverMesh(t)
	sfc := model.NewSFC(5)

	seqP, seqC, err := vnfopt.OptimalPlacement(0).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	parP, parC, err := vnfopt.OptimalPlacementParallel(0, 8).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if parC != seqC || !parP.Equal(seqP) {
		t.Fatalf("placement diverged: parallel (%v, %v) vs sequential (%v, %v)", parP, parC, seqP, seqC)
	}

	seqM, seqCt, err := vnfopt.OptimalMigration(0).Migrate(d, w, sfc, seqP, 1)
	if err != nil {
		t.Fatal(err)
	}
	parM, parCt, err := vnfopt.OptimalMigrationParallel(0, 8).Migrate(d, w, sfc, seqP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if parCt != seqCt || !parM.Equal(seqM) {
		t.Fatalf("migration diverged: parallel (%v, %v) vs sequential (%v, %v)", parM, parCt, seqM, seqCt)
	}

	sw := d.Topo.Switches
	in := vnfopt.StrollInstance{Cost: d.APSP.CostMatrix(sw), S: 0, T: len(sw) - 1, N: 4}
	seqR, err := vnfopt.SolveStrollOptimal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	parR, err := vnfopt.SolveStrollOptimalParallel(in, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if parR.Cost != seqR.Cost || parR.Optimal != seqR.Optimal {
		t.Fatalf("stroll diverged: parallel (%v, %v) vs sequential (%v, %v)", parR.Cost, parR.Optimal, seqR.Cost, seqR.Optimal)
	}
}
