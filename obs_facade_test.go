package vnfopt_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"vnfopt"
)

// TestObservabilityFacade wires the whole public observability surface:
// instrumented solver + migrator, an engine observer, and Prometheus
// exposition.
func TestObservabilityFacade(t *testing.T) {
	topo := vnfopt.MustFatTree(4, nil)
	dc := vnfopt.MustNewPPDC(topo, vnfopt.Options{})
	rng := rand.New(rand.NewSource(7))
	flows := vnfopt.MustGeneratePairs(topo, 16, vnfopt.DefaultIntraRack, rng)
	sfc := vnfopt.NewSFC(3)

	reg := vnfopt.NewMetricsRegistry()
	events := vnfopt.NewEventLog(8)
	eng, err := vnfopt.NewEngine(vnfopt.EngineConfig{PPDC: dc, SFC: sfc, Base: flows, Mu: 1e3},
		vnfopt.WithEnginePlacer(vnfopt.InstrumentedPlacement(vnfopt.DPPlacement(), reg)),
		vnfopt.WithEngineMigrator(vnfopt.InstrumentedMigration(vnfopt.MPareto(), reg)),
		vnfopt.WithEnginePolicy(vnfopt.EnginePolicy{}),
		vnfopt.WithEngineObserver(vnfopt.NewObserver(reg, events, "facade")),
	)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		updates := make([]vnfopt.RateUpdate, len(flows))
		for i, r := range vnfopt.GenerateRates(len(flows), rng) {
			updates[i] = vnfopt.RateUpdate{Flow: i, Rate: r}
		}
		if _, err := eng.OfferRates(updates); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`vnfopt_engine_epochs_total{scenario="facade"} 3`,
		`vnfopt_solver_calls_total{solver="DP"} 1`,
		`vnfopt_migrator_calls_total{migrator="mPareto"} 3`,
		`vnfopt_engine_epoch_seconds_count{scenario="facade"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestContextSolverFacade: the context-aware entry points return the
// context error once cancelled.
func TestContextSolverFacade(t *testing.T) {
	topo := vnfopt.MustFatTree(4, nil)
	dc := vnfopt.MustNewPPDC(topo, vnfopt.Options{})
	rng := rand.New(rand.NewSource(8))
	flows := vnfopt.MustGeneratePairs(topo, 8, vnfopt.DefaultIntraRack, rng)
	sfc := vnfopt.NewSFC(3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := vnfopt.OptimalPlacementContext(ctx, dc, flows, sfc, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("placement err %v, want Canceled", err)
	}
	p, _, err := vnfopt.DPPlacement().Place(dc, flows, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vnfopt.OptimalMigrationContext(ctx, dc, flows, sfc, p, 1e3, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("migration err %v, want Canceled", err)
	}

	// Uncancelled context: identical to the plain entry points.
	m1, c1, err := vnfopt.OptimalMigrationContext(context.Background(), dc, flows, sfc, p, 1e3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	m2, c2, err := vnfopt.OptimalMigration(5000).Migrate(dc, flows, sfc, p, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || !m1.Equal(m2) {
		t.Fatalf("context migration diverged: %v/%v vs %v/%v", m1, c1, m2, c2)
	}

	in := vnfopt.StrollInstance{
		Cost: [][]float64{
			{0, 1, 2, 2, 3},
			{1, 0, 1, 2, 2},
			{2, 1, 0, 1, 2},
			{2, 2, 1, 0, 1},
			{3, 2, 2, 1, 0},
		},
		S: 0, T: 4, N: 2,
	}
	if _, err := vnfopt.SolveStrollOptimalContext(ctx, in, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("stroll err %v, want Canceled", err)
	}
	res, err := vnfopt.SolveStrollOptimalContext(context.Background(), in, 0)
	if err != nil || !res.Optimal {
		t.Fatalf("stroll %+v err %v", res, err)
	}
}
