// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI), plus ablations of the design choices DESIGN.md
// calls out. Each figure bench runs its experiment at QuickConfig scale
// (single repetition) so `go test -bench=.` finishes in minutes; the
// paper-scale tables are produced by `go run ./cmd/vnfsim` (see
// EXPERIMENTS.md for recorded paper-vs-measured results).
package vnfopt_test

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"vnfopt"
	"vnfopt/internal/experiments"
	"vnfopt/internal/graph"
	"vnfopt/internal/ilp"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/replication"
	"vnfopt/internal/sim"
	"vnfopt/internal/stroll"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// benchConfig is the per-iteration experiment scale for figure benches.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Runs = 1
	return cfg
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure -------------------------------

// BenchmarkExample1 regenerates the worked Example 1 / Fig. 3 numbers
// (410 → 1004 → migrate at cost 6 → 410; 58.6% reduction).
func BenchmarkExample1(b *testing.B) { runExperiment(b, "example1") }

// BenchmarkFig6bParetoFront regenerates Fig. 6(b): the (C_b, C_a) Pareto
// front of parallel migration frontiers.
func BenchmarkFig6bParetoFront(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig7Top1 regenerates Fig. 7: TOP-1 algorithms vs n.
func BenchmarkFig7Top1(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8DiurnalModel regenerates Fig. 8: the Eq. 9 daily pattern.
func BenchmarkFig8DiurnalModel(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9aVaryFlows regenerates Fig. 9(a): TOP cost vs l.
func BenchmarkFig9aVaryFlows(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9bVaryVNFs regenerates Fig. 9(b): TOP cost vs n.
func BenchmarkFig9bVaryVNFs(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig10Weighted regenerates Fig. 10: TOP on weighted PPDCs.
func BenchmarkFig10Weighted(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11aDynamicDay and BenchmarkFig11bMigrationCounts regenerate
// Fig. 11(a)/(b) — they share one simulation, exposed as experiment
// fig11ab.
func BenchmarkFig11aDynamicDay(b *testing.B) { runExperiment(b, "fig11ab") }

// BenchmarkFig11bMigrationCounts is the Fig. 11(b) alias of the shared
// day simulation (the migration-count table of fig11ab).
func BenchmarkFig11bMigrationCounts(b *testing.B) { runExperiment(b, "fig11ab") }

// BenchmarkFig11cVaryFlows regenerates Fig. 11(c): daily cost vs l at
// μ = 10⁴ and 10⁵.
func BenchmarkFig11cVaryFlows(b *testing.B) { runExperiment(b, "fig11c") }

// BenchmarkFig11dVaryVNFs regenerates Fig. 11(d): daily cost vs n,
// mPareto against NoMigration.
func BenchmarkFig11dVaryVNFs(b *testing.B) { runExperiment(b, "fig11d") }

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationRawGraphVsClosure quantifies the paper's Example 2
// point: Algorithm 2 fed the raw PPDC adjacency (non-edges priced at the
// shortest-path-free penalty) instead of the metric closure G” finds
// worse strolls. Reported metrics: mean stroll cost on the closure vs the
// raw adjacency.
func BenchmarkAblationRawGraphVsClosure(b *testing.B) {
	// The paper's own Fig. 4 instance: on the raw graph Algorithm 2 finds
	// the 3-edge path s,A,B,t of cost 7; on the closure it finds the
	// optimal walk of cost 6 (s,D,t,C,t).
	g := graph.New(6)
	g.AddEdge(0, 1, 3) // s-A
	g.AddEdge(1, 2, 2) // A-B
	g.AddEdge(2, 5, 2) // B-t
	g.AddEdge(0, 4, 2) // s-D
	g.AddEdge(4, 5, 2) // D-t
	g.AddEdge(3, 5, 1) // C-t
	apsp := graph.AllPairs(g)
	keep := []int{0, 1, 2, 3, 4, 5}
	closure := apsp.CostMatrix(keep)
	// Raw adjacency matrix: existing edges keep their weight, non-edges
	// get a large-but-finite penalty so the DP remains well-defined.
	const penalty = 1e6
	raw := make([][]float64, len(keep))
	for i := range keep {
		raw[i] = make([]float64, len(keep))
		for j := range keep {
			switch {
			case i == j:
				raw[i][j] = 0
			case g.HasEdge(keep[i], keep[j]):
				raw[i][j] = g.EdgeWeight(keep[i], keep[j])
			default:
				raw[i][j] = penalty
			}
		}
	}
	var closureCost, rawCost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc, err := stroll.DP(stroll.Instance{Cost: closure, S: 0, T: 5, N: 2})
		if err != nil {
			b.Fatal(err)
		}
		rr, err := stroll.DP(stroll.Instance{Cost: raw, S: 0, T: 5, N: 2})
		if err != nil {
			b.Fatal(err)
		}
		closureCost, rawCost = rc.Cost, rr.Cost
	}
	b.ReportMetric(closureCost, "closure-cost")
	b.ReportMetric(rawCost, "raw-cost")
}

// BenchmarkAblationFullFrontier measures what Algorithm 5's restriction to
// parallel frontiers (Definition 2) gives up against the full Π h_j
// frontier space (Definition 1): the cost gap and the enumeration size.
func BenchmarkAblationFullFrontier(b *testing.B) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	sfc := model.NewSFC(3)
	// Scan seeds for a scenario where the rate shift actually moves the
	// optimum (p' ≠ p), so the frontier space is non-trivial.
	var w2 model.Workload
	var p, pNew model.Placement
	for seed := int64(1); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := workload.MustPairsClustered(ft, 20, 4, workload.DefaultIntraRack, rng)
		p0, _, err := (placement.DP{}).Place(d, w, sfc)
		if err != nil {
			b.Fatal(err)
		}
		shifted := w.WithRates(workload.Rates(len(w), rng))
		p1, _, err := (placement.DP{}).Place(d, shifted, sfc)
		if err != nil {
			b.Fatal(err)
		}
		if !p0.Equal(p1) {
			w2, p, pNew = shifted, p0, p1
			break
		}
	}
	if pNew == nil {
		b.Fatal("no seed produced a moving optimum")
	}
	const mu = 200
	var parallelBest, fullBest float64
	var enumerated int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := migration.ParallelFrontiers(d, w2, sfc, p, pNew, mu)
		parallelBest = points[0].Cb + points[0].Ca
		for _, fp := range points {
			if fp.Valid && fp.Cb+fp.Ca < parallelBest {
				parallelBest = fp.Cb + fp.Ca
			}
		}
		full := migration.FullFrontiers(d, w2, sfc, p, pNew, mu, 0)
		fullBest = full.BestCt
		enumerated = full.Enumerated
	}
	b.ReportMetric(parallelBest, "parallel-Ct")
	b.ReportMetric(fullBest, "full-Ct")
	b.ReportMetric(float64(enumerated), "full-combos")
}

// BenchmarkAblationColocation quantifies footnote 3's distinct-switch
// constraint: with colocation allowed (paper future work) the chain cost
// collapses entirely.
func BenchmarkAblationColocation(b *testing.B) {
	ft := topology.MustFatTree(4, nil)
	strict := model.MustNew(ft, model.Options{})
	loose := model.MustNew(ft, model.Options{AllowColocation: true})
	rng := rand.New(rand.NewSource(5))
	w := workload.MustPairsClustered(ft, 30, 4, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(5)
	var distinct, colocated float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cd, err := (placement.DP{}).Place(strict, w, sfc)
		if err != nil {
			b.Fatal(err)
		}
		_, cc, err := (placement.Colocated{}).Place(loose, w, sfc)
		if err != nil {
			b.Fatal(err)
		}
		distinct, colocated = cd, cc
	}
	b.ReportMetric(distinct, "distinct-Ca")
	b.ReportMetric(colocated, "colocated-Ca")
}

// BenchmarkAblationReplicationVsMigration compares the paper's future-work
// alternative — R replica chains with per-hour flow reassignment, zero
// migration traffic — against mPareto migration of a single chain over a
// simulated burst day.
func BenchmarkAblationReplicationVsMigration(b *testing.B) {
	ft := topology.MustFatTree(8, nil)
	d := model.MustNew(ft, model.Options{})
	sfc := model.NewSFC(4)
	const mu = 1e4
	var migTotal, repTotal float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		base := workload.MustPairsClustered(ft, 64, 4, workload.DefaultIntraRack, rng)
		sched, err := vnfopt.PaperBurst().Schedule(ft, base, rng)
		if err != nil {
			b.Fatal(err)
		}
		// Migration arm: single chain, mPareto hourly.
		p, _, err := (placement.DP{}).Place(d, base.WithRates(sched[0]), sfc)
		if err != nil {
			b.Fatal(err)
		}
		// Replication arm: 3 chains placed for hour-1 traffic, flows
		// reassigned hourly, VNFs never move.
		dep, err := replication.Place(d, base.WithRates(sched[0]), sfc, 3, replication.Options{})
		if err != nil {
			b.Fatal(err)
		}
		migTotal, repTotal = 0, 0
		for h := range sched {
			w := base.WithRates(sched[h])
			for f := range w {
				w[f].Rate *= 10 // hourly traffic volume (see experiments.Config.HourVolume)
			}
			m, ct, err := (migration.MPareto{}).Migrate(d, w, sfc, p, mu)
			if err != nil {
				b.Fatal(err)
			}
			migTotal += ct
			p = m
			_, repCost := replication.Reassign(d, w, dep.Chains)
			repTotal += repCost
		}
	}
	b.ReportMetric(migTotal, "migration-day-cost")
	b.ReportMetric(repTotal, "replication-day-cost")
}

// BenchmarkAblationHysteresis quantifies the Triggered policy's trade
// between placement stability and traffic: higher hysteresis means fewer
// migrations at a higher day cost.
func BenchmarkAblationHysteresis(b *testing.B) {
	ft := topology.MustFatTree(8, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(9))
	base := workload.MustPairsClustered(ft, 64, 4, workload.DefaultIntraRack, rng)
	sched, err := workload.PaperBurst().Schedule(ft, base, rng)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		PPDC: d, SFC: model.NewSFC(4), Base: base, Schedule: sched,
		Mu: 1e4, HourVolume: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	results := map[float64]*sim.Trace{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range []float64{1, 2, 5} {
			tr, err := s.RunVNF(migration.Triggered{Inner: migration.MPareto{}, Hysteresis: h})
			if err != nil {
				b.Fatal(err)
			}
			results[h] = tr
		}
	}
	for _, h := range []float64{1, 2, 5} {
		b.ReportMetric(results[h].Total, "cost-h"+strconv.FormatFloat(h, 'f', 0, 64))
		b.ReportMetric(float64(results[h].TotalMoves), "moves-h"+strconv.FormatFloat(h, 'f', 0, 64))
	}
}

// BenchmarkAblationILPPathAssumption runs the paper's Eq. 2-7 ILP against
// the walk-based optimum on the Fig. 4 instance: the ILP's implicit
// path assumption costs it exactly one unit (7 vs 6).
func BenchmarkAblationILPPathAssumption(b *testing.B) {
	g := graph.New(6)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 5, 2)
	g.AddEdge(0, 4, 2)
	g.AddEdge(4, 5, 2)
	g.AddEdge(3, 5, 1)
	p := &ilp.TOP1{G: g, S: 0, T: 5, N: 2, Lambda: 1, Switches: []int{1, 2, 3, 4}}
	apsp := graph.AllPairs(g)
	keep := []int{0, 1, 2, 3, 4, 5}
	var ilpCost, walkCost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c, err := p.SolveBruteForce()
		if err != nil {
			b.Fatal(err)
		}
		res, err := stroll.Exhaustive(stroll.Instance{Cost: apsp.CostMatrix(keep), S: 0, T: 5, N: 2}, stroll.ExhaustiveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ilpCost, walkCost = c, res.Cost
	}
	b.ReportMetric(ilpCost, "ilp-path-cost")
	b.ReportMetric(walkCost, "walk-cost")
}

// --- Micro-benchmarks of the hot paths -----------------------------------

// BenchmarkAPSPFatTree measures the all-pairs shortest-path cache build,
// the per-topology fixed cost of every solver, comparing the sequential
// [][]Edge oracle against the CSR kernel at one worker and at GOMAXPROCS
// (the default used by model.New). Output is bit-identical across all
// three (asserted in internal/graph tests); only time and allocations
// differ.
func BenchmarkAPSPFatTree(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		ft := topology.MustFatTree(k, nil)
		b.Run("k="+strconv.Itoa(k)+"/sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph.AllPairsSequential(ft.Graph)
			}
		})
		b.Run("k="+strconv.Itoa(k)+"/csr-1worker", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph.AllPairsWorkers(ft.Graph, 1)
			}
		})
		b.Run("k="+strconv.Itoa(k)+"/parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph.AllPairs(ft.Graph)
			}
		})
	}
}

// BenchmarkCommCostAggregated is the candidate-evaluation half of the
// kernel work: scalar C_a rescans all l flows per placement; the
// aggregated workload cache answers in O(n). At l = 10⁴ the gap is the
// difference between TOP solvers that evaluate thousands of candidates
// being workload-bound or topology-bound. "cache-build" prices the
// one-time aggregation (also the SetWorkload rate-update hook).
func BenchmarkCommCostAggregated(b *testing.B) {
	for _, tc := range []struct{ k, l int }{{8, 10_000}, {16, 10_000}} {
		ft := topology.MustFatTree(tc.k, nil)
		d := model.MustNew(ft, model.Options{})
		rng := rand.New(rand.NewSource(3))
		w := workload.MustPairsClustered(ft, tc.l, 8, workload.DefaultIntraRack, rng)
		sfc := model.NewSFC(5)
		p, _, err := (placement.Steering{}).Place(d, w, sfc)
		if err != nil {
			b.Fatal(err)
		}
		prefix := "k=" + strconv.Itoa(tc.k) + "/l=" + strconv.Itoa(tc.l)
		b.Run(prefix+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = d.CommCost(w, p)
			}
		})
		b.Run(prefix+"/cached", func(b *testing.B) {
			cache := d.NewWorkloadCache(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = cache.CommCost(p)
			}
		})
		b.Run(prefix+"/cache-build", func(b *testing.B) {
			cache := d.NewWorkloadCache(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache.SetWorkload(w)
			}
		})
		b.Run(prefix+"/endpoint-scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = d.EndpointCosts(w)
			}
		})
	}
}

// BenchmarkDPPlacement measures the paper's Algorithm 3 end to end.
func BenchmarkDPPlacement(b *testing.B) {
	for _, tc := range []struct {
		k, l, n int
	}{{4, 30, 3}, {8, 100, 5}, {16, 512, 7}} {
		name := "k=" + strconv.Itoa(tc.k) + "/l=" + strconv.Itoa(tc.l) + "/n=" + strconv.Itoa(tc.n)
		b.Run(name, func(b *testing.B) {
			ft := topology.MustFatTree(tc.k, nil)
			d := model.MustNew(ft, model.Options{})
			rng := rand.New(rand.NewSource(1))
			w := workload.MustPairsClustered(ft, tc.l, 6, workload.DefaultIntraRack, rng)
			sfc := model.NewSFC(tc.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := (placement.DP{}).Place(d, w, sfc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMPareto measures the paper's Algorithm 5 end to end (including
// its internal Algorithm 3 call).
func BenchmarkMPareto(b *testing.B) {
	for _, k := range []int{8, 16} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			ft := topology.MustFatTree(k, nil)
			d := model.MustNew(ft, model.Options{})
			rng := rand.New(rand.NewSource(2))
			w := workload.MustPairsClustered(ft, 128, 6, workload.DefaultIntraRack, rng)
			sfc := model.NewSFC(5)
			p, _, err := (placement.DP{}).Place(d, w, sfc)
			if err != nil {
				b.Fatal(err)
			}
			w2 := w.WithRates(workload.Rates(len(w), rng))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := (migration.MPareto{}).Migrate(d, w2, sfc, p, 1e4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrollDP measures Algorithm 2 on the k=8 closure.
func BenchmarkStrollDP(b *testing.B) {
	ft := topology.MustFatTree(8, nil)
	apsp := graph.AllPairs(ft.Graph)
	keep := append([]int{ft.Hosts[0], ft.Hosts[100]}, ft.Switches...)
	cost := apsp.CostMatrix(keep)
	for _, n := range []int{3, 6, 9} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stroll.DP(stroll.Instance{Cost: cost, S: 0, T: 1, N: n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- sanity: the bench tables remain well-formed -------------------------

// TestBenchExperimentsProduceRows guards the figure benches: every
// experiment id they reference must exist and emit rows.
func TestBenchExperimentsProduceRows(t *testing.T) {
	ids := []string{"example1", "fig6b", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11ab", "fig11c", "fig11d"}
	available := strings.Join(experiments.IDs(), ",")
	for _, id := range ids {
		if !strings.Contains(available, id) {
			t.Errorf("experiment %q missing from registry (%s)", id, available)
		}
	}
}

// BenchmarkExtensionLinkLoad regenerates the link-load extension
// experiment (routed bandwidth view of migration vs frozen placement).
func BenchmarkExtensionLinkLoad(b *testing.B) { runExperiment(b, "linkload") }

// BenchmarkExtensionMuSweep regenerates the μ-sensitivity sweep
// (migration activity and cost across four orders of magnitude of μ).
func BenchmarkExtensionMuSweep(b *testing.B) { runExperiment(b, "musweep") }
