// Command topgen generates PPDC topologies and dumps them as Graphviz DOT
// or a summary.
//
// Usage:
//
//	topgen -topo fat-tree -k 4 -format dot > k4.dot
//	topgen -topo linear -size 5 -format summary
//	topgen -topo mesh -size 12 -hosts 8 -extra 6 -seed 7 -weighted
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"vnfopt"
	"vnfopt/internal/graph"
)

func main() {
	var (
		kind     = flag.String("topo", "fat-tree", "topology: fat-tree, linear, ring, star, mesh")
		k        = flag.Int("k", 4, "fat-tree arity (even)")
		size     = flag.Int("size", 5, "switch count for linear/ring/star/mesh")
		hosts    = flag.Int("hosts", 8, "host count for mesh")
		extra    = flag.Int("extra", 4, "extra edges for mesh")
		seed     = flag.Int64("seed", 1, "RNG seed for mesh/weighted links")
		weighted = flag.Bool("weighted", false, "paper link-delay weights instead of unit weights")
		format   = flag.String("format", "summary", "output: summary or dot")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var weight vnfopt.WeightFunc
	if *weighted {
		weight = vnfopt.PaperDelay(rng)
	}

	var (
		topo *vnfopt.Topology
		err  error
	)
	switch *kind {
	case "fat-tree":
		topo, err = vnfopt.FatTree(*k, weight)
	case "linear":
		topo, err = vnfopt.Linear(*size, weight)
	case "ring":
		topo, err = vnfopt.Ring(*size, weight)
	case "star":
		topo, err = vnfopt.Star(*size, weight)
	case "mesh":
		topo, err = vnfopt.RandomMesh(*size, *hosts, *extra, weight, rng)
	default:
		err = fmt.Errorf("unknown topology %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "topgen: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "dot":
		if err := topo.Graph.WriteDOT(os.Stdout, "ppdc", topo.Labels); err != nil {
			fmt.Fprintf(os.Stderr, "topgen: %v\n", err)
			os.Exit(1)
		}
	case "summary":
		apsp := graph.AllPairs(topo.Graph)
		fmt.Printf("topology: %s\n", topo.Name)
		fmt.Printf("hosts:    %d\n", topo.NumHosts())
		fmt.Printf("switches: %d\n", topo.NumSwitches())
		fmt.Printf("edges:    %d\n", topo.Graph.Size())
		fmt.Printf("racks:    %d\n", len(topo.Racks))
		fmt.Printf("diameter: %g\n", apsp.Diameter())
	default:
		fmt.Fprintf(os.Stderr, "topgen: unknown format %q\n", *format)
		os.Exit(1)
	}
}
