// Command tracegen generates replayable experiment traces (topology spec,
// workload, hourly burst schedule) as JSON, and replays them through the
// TOP/TOM pipeline.
//
// Usage:
//
//	tracegen -k 8 -flows 200 -racks 5 -seed 7 > day.json
//	tracegen -replay day.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/trace"
	"vnfopt/internal/workload"
)

func main() {
	var (
		k      = flag.Int("k", 8, "fat-tree arity")
		flows  = flag.Int("flows", 200, "VM pair count")
		racks  = flag.Int("racks", 5, "tenant rack count")
		seed   = flag.Int64("seed", 1, "RNG seed")
		mu     = flag.Float64("mu", 1e4, "migration coefficient for -replay")
		replay = flag.String("replay", "", "trace file to replay instead of generating")
	)
	flag.Parse()

	if *replay != "" {
		if err := replayTrace(*replay, *mu); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	spec := trace.TopoSpec{Kind: "fat-tree", K: *k}
	topo, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	w, err := workload.PairsClustered(topo, *flows, *racks, workload.DefaultIntraRack, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	sched, err := workload.PaperBurst().Schedule(topo, w, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	tr := &trace.Trace{
		Version:  trace.FormatVersion,
		Topology: spec,
		Flows:    trace.FromWorkload(w),
		Schedule: sched,
	}
	if err := trace.Save(os.Stdout, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// replayTrace loads a trace and runs the TOP + hourly TOM pipeline on it.
func replayTrace(path string, mu float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		return err
	}
	topo, err := tr.Topology.Build()
	if err != nil {
		return err
	}
	d, err := model.New(topo, model.Options{})
	if err != nil {
		return err
	}
	if err := tr.Validate(d); err != nil {
		return err
	}
	base := tr.Workload()
	sfc := model.NewSFC(5)
	if len(tr.Schedule) == 0 {
		p, c, err := (placement.DP{}).Place(d, base, sfc)
		if err != nil {
			return err
		}
		fmt.Printf("static trace: placement %v, C_a = %.0f\n", p, c)
		return nil
	}
	p, _, err := (placement.DP{}).Place(d, base.WithRates(tr.Schedule[0]), sfc)
	if err != nil {
		return err
	}
	fmt.Printf("%4s  %14s  %6s\n", "hour", "mPareto C_t", "moves")
	total := 0.0
	for h, rates := range tr.Schedule {
		w := base.WithRates(rates)
		m, ct, err := (migration.MPareto{}).Migrate(d, w, sfc, p, mu)
		if err != nil {
			return fmt.Errorf("hour %d: %w", h+1, err)
		}
		fmt.Printf("%4d  %14.0f  %6d\n", h+1, ct, migration.MigrationCount(p, m))
		total += ct
		p = m
	}
	fmt.Printf("day total: %.0f\n", total)
	return nil
}
