// Command vnfsim regenerates the paper's evaluation figures.
//
// Usage:
//
//	vnfsim -list
//	vnfsim -exp fig7                  # one figure at paper scale
//	vnfsim -exp all -quick            # everything at CI scale
//	vnfsim -exp fig11ab -runs 5       # override repetition count
//
// Each experiment prints the table(s) corresponding to one figure of the
// paper's Section VI (see DESIGN.md for the experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vnfopt/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "CI-scale parameters instead of paper scale")
		runs   = flag.Int("runs", 0, "override repetitions per data point (unset = config default)")
		seed   = flag.Int64("seed", 0, "override base RNG seed (unset = config default)")
		budget = flag.Int("budget", 0, "override the Optimal search node budget (unset = config default)")
		mu     = flag.Float64("mu", 0, "override the VNF migration coefficient μ (unset = config default)")
		format = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	// Apply overrides only for flags the user actually passed, so explicit
	// zero values take effect (-mu 0 disables migration cost, -seed 0
	// selects the zero seed) instead of being mistaken for "not set".
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "runs":
			cfg.Runs = *runs
		case "seed":
			cfg.Seed = *seed
		case "budget":
			cfg.OptBudget = *budget
		case "mu":
			cfg.Mu = *mu
		}
	})

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vnfsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s) ===\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *format == "csv" {
				fmt.Printf("# %s\n", t.Title)
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "vnfsim: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
				continue
			}
			t.Fprint(os.Stdout)
		}
	}
}
