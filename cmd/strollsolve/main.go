// Command strollsolve solves a standalone n-stroll instance read from
// stdin or a file and compares the three solvers (DP-Stroll, Exhaustive,
// PrimalDual).
//
// Input format (whitespace separated):
//
//	V            — number of vertices of the metric closure
//	V×V floats   — the symmetric cost matrix, row major
//	S T N        — terminals and required distinct intermediates
//
// Example:
//
//	echo "4  0 2 3 4  2 0 1 2  3 1 0 1  4 2 1 0  0 3 2" | strollsolve
package main

import (
	"bufio"
	"fmt"
	"os"

	"vnfopt"
)

func main() {
	in, err := parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "strollsolve: %v\n", err)
		os.Exit(1)
	}
	dp, err := vnfopt.SolveStrollDP(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strollsolve: DP: %v\n", err)
		os.Exit(1)
	}
	opt, err := vnfopt.SolveStrollOptimal(in, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strollsolve: Exhaustive: %v\n", err)
		os.Exit(1)
	}
	pd, err := vnfopt.SolveStrollPrimalDual(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strollsolve: PrimalDual: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("instance: |V|=%d s=%d t=%d n=%d\n", len(in.Cost), in.S, in.T, in.N)
	fmt.Printf("DP-Stroll  : cost=%g walk=%v\n", dp.Cost, dp.Walk)
	fmt.Printf("Exhaustive : cost=%g walk=%v optimal=%v\n", opt.Cost, opt.Walk, opt.Optimal)
	fmt.Printf("PrimalDual : cost=%g walk=%v\n", pd.Cost, pd.Walk)
}

func parse(r *bufio.Reader) (vnfopt.StrollInstance, error) {
	var nv int
	if _, err := fmt.Fscan(r, &nv); err != nil {
		return vnfopt.StrollInstance{}, fmt.Errorf("reading vertex count: %w", err)
	}
	if nv <= 0 || nv > 10000 {
		return vnfopt.StrollInstance{}, fmt.Errorf("implausible vertex count %d", nv)
	}
	cost := make([][]float64, nv)
	for i := range cost {
		cost[i] = make([]float64, nv)
		for j := range cost[i] {
			if _, err := fmt.Fscan(r, &cost[i][j]); err != nil {
				return vnfopt.StrollInstance{}, fmt.Errorf("reading cost[%d][%d]: %w", i, j, err)
			}
		}
	}
	var s, t, n int
	if _, err := fmt.Fscan(r, &s, &t, &n); err != nil {
		return vnfopt.StrollInstance{}, fmt.Errorf("reading s t n: %w", err)
	}
	in := vnfopt.StrollInstance{Cost: cost, S: s, T: t, N: n}
	if err := in.Validate(); err != nil {
		return vnfopt.StrollInstance{}, err
	}
	return in, nil
}
