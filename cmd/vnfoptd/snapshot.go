package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// writeFileAtomic writes data to path so a crash at any instant leaves
// either the old file or the new one, never a torn mix:
//
//  1. the bytes land in a same-directory temp file (rename only works
//     atomically within one filesystem),
//  2. the temp file is fsynced before rename — otherwise the rename can
//     hit disk before the data and a power cut leaves an empty file
//     under the final name,
//  3. the rename swaps it in,
//  4. the directory is fsynced so the rename itself is durable.
//
// The temp name is fixed (path + ".tmp"), so an interrupted write is
// overwritten by the next attempt instead of leaking files.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// saveSnapshotRetry runs saveSnapshot with bounded retry: transient
// failures (disk pressure, a slow NFS mount) back off and try again up
// to attempts times; the last error is returned. attempts < 1 is
// treated as 1.
func (s *server) saveSnapshotRetry(path string, attempts int, backoff time.Duration) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = s.saveSnapshot(path); err == nil {
			return nil
		}
		s.log.Warn("snapshot attempt failed", "attempt", i+1, "of", attempts, "err", err)
	}
	return fmt.Errorf("snapshot after %d attempts: %w", attempts, err)
}

// snapshotLoop persists the server state every interval until ctx is
// cancelled. Each tick uses bounded retry; a tick that still fails is
// logged and the loop keeps going — periodic snapshotting must never
// take the control plane down.
func (s *server) snapshotLoop(ctx context.Context, path string, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.saveSnapshotRetry(path, 3, 100*time.Millisecond); err != nil {
				s.log.Error("periodic snapshot failed", "path", path, "err", err)
			}
		}
	}
}
