package main

import (
	"context"
	"fmt"
	"time"
)

// The atomic file write that used to live here is now
// failfs.WriteFileAtomic — shared with the WAL layer and routed through
// the failfs seam so the crash-injection suite covers it too.

// saveSnapshotRetry runs saveSnapshot with bounded retry: transient
// failures (disk pressure, a slow NFS mount) back off and try again up
// to attempts times; the last error is returned. attempts < 1 is
// treated as 1.
func (s *server) saveSnapshotRetry(path string, attempts int, backoff time.Duration) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = s.saveSnapshot(path); err == nil {
			return nil
		}
		s.log.Warn("snapshot attempt failed", "attempt", i+1, "of", attempts, "err", err)
	}
	return fmt.Errorf("snapshot after %d attempts: %w", attempts, err)
}

// snapshotLoop persists the server state every interval until ctx is
// cancelled. Each tick uses bounded retry; a tick that still fails is
// logged and the loop keeps going — periodic snapshotting must never
// take the control plane down.
func (s *server) snapshotLoop(ctx context.Context, path string, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.saveSnapshotRetry(path, 3, 100*time.Millisecond); err != nil {
				s.log.Error("periodic snapshot failed", "path", path, "err", err)
			}
		}
	}
}
