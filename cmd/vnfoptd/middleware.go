package main

import (
	"log/slog"
	"net/http"
	"time"

	"vnfopt/internal/obs"
)

// statusRecorder captures the status code a handler writes so the
// request middleware can label its metrics and logs with it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps one route's handler with request accounting: a
// per-route/status counter, a per-route latency histogram, and one
// structured log line per request. The route label is the mux pattern
// (e.g. "POST /v1/scenarios/{id}/step"), not the raw URL, so the series
// cardinality stays bounded.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	seconds := s.reg.Histogram(`vnfoptd_request_seconds{route="` + route + `"}`)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.requests(route, rec.status).Inc()
		seconds.Observe(elapsed.Seconds())
		if s.log != nil {
			s.log.Info("request",
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Duration("elapsed", elapsed),
			)
		}
	}
}

// requests resolves the per-route/status request counter. Status codes
// are a small finite set, so resolving on demand (registry lookup, not
// allocation-free) is fine at HTTP-request frequency.
func (s *server) requests(route string, status int) *obs.Counter {
	if s.reg == nil {
		return nil
	}
	return s.reg.Counter(`vnfoptd_requests_total{route="` + route + `",code="` + itoa3(status) + `"}`)
}

// itoa3 formats a 3-digit HTTP status without strconv allocation noise.
func itoa3(n int) string {
	if n < 100 || n > 999 {
		n = 500
	}
	return string([]byte{byte('0' + n/100), byte('0' + n/10%10), byte('0' + n%10)})
}
