package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"vnfopt/internal/engine"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/sim"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// do issues one JSON request against the test server and decodes the
// response into out (when non-nil), failing the test on transport errors.
func do(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// e2eScenario builds the seeded k=4 fat-tree burst scenario shared by the
// daemon run and the offline sim reference: 24 clustered flows, 3-VNF
// chain, μ=1000, and the hour-1 rates as the starting workload.
func e2eScenario(t *testing.T) (*topology.Topology, model.Workload, [][]float64) {
	t.Helper()
	ft := topology.MustFatTree(4, nil)
	rng := rand.New(rand.NewSource(3))
	base := workload.MustPairsClustered(ft, 24, 4, workload.DefaultIntraRack, rng)
	sched, err := workload.PaperBurst().Schedule(ft, base, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		base[i].Rate = sched[0][i]
	}
	return ft, base, sched
}

// hostIndex maps host vertex ids to their index in the fabric's host list
// (the addressing PairSpec uses).
func hostIndex(ft *topology.Topology) map[int]int {
	idx := make(map[int]int, len(ft.Hosts))
	for i, h := range ft.Hosts {
		idx[h] = i
	}
	return idx
}

// promSnapshot fetches /metrics and strictly parses the Prometheus text
// exposition into a full-series-name → value map: every non-comment line
// must be `name{labels} value` with a float value, every comment a
// well-formed `# TYPE family type` line.
func promSnapshot(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "summary":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty exposition")
	}
	return out
}

// TestE2EDaemonMatchesOfflineSim is the acceptance path: create a
// scenario over HTTP, stream the burst schedule as per-epoch rate deltas,
// observe a drift-triggered migration, and check that every epoch's
// placement and reported cost match an offline internal/sim replay of the
// same schedule under the same policy.
func TestE2EDaemonMatchesOfflineSim(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()

	ft, base, sched := e2eScenario(t)
	idx := hostIndex(ft)
	pol := engine.Policy{Hysteresis: 1.1, Cooldown: 1}

	spec := ScenarioSpec{Name: "e2e", SFCLen: 3, Mu: 1e3, Policy: pol}
	for _, f := range base {
		spec.Pairs = append(spec.Pairs, PairSpec{Src: idx[f.Src], Dst: idx[f.Dst], Rate: f.Rate})
	}
	var created struct {
		ID       string           `json:"id"`
		Flows    int              `json:"flows"`
		Migrator string           `json:"migrator"`
		Snapshot *engine.Snapshot `json:"snapshot"`
	}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.Flows != len(base) || created.Migrator != "mPareto" {
		t.Fatalf("created %+v", created)
	}
	epochsKey := `vnfopt_engine_epochs_total{scenario="` + created.ID + `"}`
	promBefore := promSnapshot(t, ts)

	// Stream each hour as one epoch: rates delta + step in one call.
	var daemonSteps []engine.StepResult
	for h, rates := range sched {
		req := ratesRequest{Step: true}
		for i, r := range rates {
			req.Updates = append(req.Updates, engine.RateUpdate{Flow: i, Rate: r})
		}
		var resp struct {
			Accepted int                `json:"accepted"`
			Step     *engine.StepResult `json:"step"`
		}
		path := fmt.Sprintf("/v1/scenarios/%s/rates", created.ID)
		if code := do(t, ts, "POST", path, req, &resp); code != http.StatusOK {
			t.Fatalf("hour %d: rates status %d", h+1, code)
		}
		if resp.Accepted != len(rates) || resp.Step == nil {
			t.Fatalf("hour %d: response %+v", h+1, resp)
		}
		daemonSteps = append(daemonSteps, *resp.Step)
	}

	migrations := 0
	for _, st := range daemonSteps {
		if st.Migrated {
			migrations++
			if !st.Consulted {
				t.Fatal("migration without consulting the migrator")
			}
		}
	}
	if migrations == 0 {
		t.Fatal("no drift-triggered migration observed over the schedule")
	}

	// Offline reference: the batch simulator replaying the same schedule
	// through the same engine policy.
	d := model.MustNew(ft, model.Options{})
	simr, err := sim.New(sim.Config{
		PPDC:     d,
		SFC:      model.NewSFC(3),
		Base:     base,
		Schedule: sched,
		Mu:       1e3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := simr.RunEngine(migration.MPareto{}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Steps) != len(daemonSteps) {
		t.Fatalf("offline %d steps, daemon %d", len(ref.Steps), len(daemonSteps))
	}
	for h, st := range daemonSteps {
		want := ref.Steps[h]
		if math.Abs(st.TotalCost-want.Cost) > 1e-9*math.Max(1, want.Cost) {
			t.Fatalf("hour %d: daemon cost %v != offline %v", h+1, st.TotalCost, want.Cost)
		}
		if st.Moves != want.Moves {
			t.Fatalf("hour %d: daemon moves %d != offline %d", h+1, st.Moves, want.Moves)
		}
	}

	// The placement snapshot the readers see is the offline final
	// placement.
	var snap engine.Snapshot
	path := fmt.Sprintf("/v1/scenarios/%s/placement", created.ID)
	if code := do(t, ts, "GET", path, nil, &snap); code != http.StatusOK {
		t.Fatalf("placement: status %d", code)
	}
	if !snap.Placement.Equal(ref.Final) {
		t.Fatalf("daemon placement %v != offline final %v", snap.Placement, ref.Final)
	}
	if snap.Epoch != len(sched) || snap.Migrations != migrations {
		t.Fatalf("snapshot %+v", snap)
	}

	// The per-scenario JSON route exposes the TOM loop's counters.
	var met struct {
		Metrics engine.Metrics `json:"metrics"`
	}
	if code := do(t, ts, "GET", "/v1/scenarios/"+created.ID+"/metrics", nil, &met); code != http.StatusOK {
		t.Fatal("scenario metrics failed")
	}
	m := met.Metrics
	if m.Epochs != len(sched) || m.Migrations != migrations {
		t.Fatalf("metrics %+v", m)
	}
	if len(m.Trajectory) != len(sched) {
		t.Fatalf("trajectory length %d", len(m.Trajectory))
	}
	if m.DeltaEpochs+m.RebuildEpochs == 0 {
		t.Fatal("no cache-path accounting")
	}

	// /metrics is Prometheus text exposition; the run above must have
	// advanced the engine, cache, and solver series.
	prom := promSnapshot(t, ts)
	sl := `{scenario="` + created.ID + `"}`
	if got := prom[epochsKey]; got != float64(len(sched)) {
		t.Fatalf("epochs_total %v, want %d", got, len(sched))
	}
	if promBefore[epochsKey] != 0 {
		t.Fatalf("epochs_total %v before any step", promBefore[epochsKey])
	}
	if got := prom[`vnfopt_engine_epoch_seconds_count`+sl]; got != float64(len(sched)) {
		t.Fatalf("epoch_seconds count %v, want %d", got, len(sched))
	}
	if _, ok := prom[`vnfopt_engine_epoch_seconds{scenario="`+created.ID+`",quantile="0.99"}`]; !ok {
		t.Fatal("epoch latency p99 missing from exposition")
	}
	if got := prom[`vnfopt_engine_migrations_total`+sl]; got != float64(migrations) {
		t.Fatalf("migrations_total %v, want %d", got, migrations)
	}
	if got := prom[`vnfopt_cache_rebuilds_total`+sl] + prom[`vnfopt_cache_deltas_total`+sl]; got == 0 {
		t.Fatal("cache rebuild/delta counters did not advance")
	}
	if got := prom[`vnfopt_solver_calls_total{solver="DP"}`]; got < 1 {
		t.Fatalf("solver_calls_total %v, want >= 1", got)
	}
	if got := prom[`vnfopt_migrator_seconds_count{migrator="mPareto"}`]; got < float64(migrations) {
		t.Fatalf("migrator timing count %v, want >= %d", got, migrations)
	}
	ratesRoute := `vnfoptd_requests_total{route="POST /v1/scenarios/{id}/rates",code="200"}`
	if got := prom[ratesRoute] - promBefore[ratesRoute]; got != float64(len(sched)) {
		t.Fatalf("rates request counter advanced by %v, want %d", got, len(sched))
	}
}

// TestStateRoundTripOverHTTP: GET state → create a fresh scenario with it
// → identical snapshot and identical behaviour on the next epoch.
func TestStateRoundTripOverHTTP(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()

	ft, base, sched := e2eScenario(t)
	idx := hostIndex(ft)
	spec := ScenarioSpec{SFCLen: 3, Mu: 1e3, Policy: engine.Policy{Hysteresis: 1.05}}
	for _, f := range base {
		spec.Pairs = append(spec.Pairs, PairSpec{Src: idx[f.Src], Dst: idx[f.Dst], Rate: f.Rate})
	}
	var created struct {
		ID string `json:"id"`
	}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, &created); code != http.StatusCreated {
		t.Fatalf("create failed: %d", code)
	}
	for h := 0; h < 6; h++ {
		req := ratesRequest{Step: true}
		for i, r := range sched[h] {
			req.Updates = append(req.Updates, engine.RateUpdate{Flow: i, Rate: r})
		}
		do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/rates", created.ID), req, nil)
	}

	var st json.RawMessage
	if code := do(t, ts, "GET", fmt.Sprintf("/v1/scenarios/%s/state", created.ID), nil, &st); code != http.StatusOK {
		t.Fatal("state failed")
	}
	resumed := spec
	resumed.State = st
	var created2 struct {
		ID       string           `json:"id"`
		Snapshot *engine.Snapshot `json:"snapshot"`
	}
	if code := do(t, ts, "POST", "/v1/scenarios", resumed, &created2); code != http.StatusCreated {
		t.Fatalf("resume failed: %d", code)
	}
	var orig engine.Snapshot
	if code := do(t, ts, "GET", fmt.Sprintf("/v1/scenarios/%s/placement", created.ID), nil, &orig); code != http.StatusOK {
		t.Fatal("placement failed")
	}
	if created2.Snapshot.Epoch != orig.Epoch || !created2.Snapshot.Placement.Equal(orig.Placement) {
		t.Fatalf("resumed snapshot %+v != original %+v", created2.Snapshot, orig)
	}

	// Both scenarios step identically from here.
	req := ratesRequest{Step: true}
	for i, r := range sched[6] {
		req.Updates = append(req.Updates, engine.RateUpdate{Flow: i, Rate: r})
	}
	var r1, r2 struct {
		Step *engine.StepResult `json:"step"`
	}
	do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/rates", created.ID), req, &r1)
	do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/rates", created2.ID), req, &r2)
	if r1.Step == nil || r2.Step == nil || !r1.Step.Placement.Equal(r2.Step.Placement) {
		t.Fatalf("post-resume step diverged: %+v vs %+v", r1.Step, r2.Step)
	}
	if math.Abs(r1.Step.TotalCost-r2.Step.TotalCost) > 1e-9*math.Max(1, r1.Step.TotalCost) {
		t.Fatalf("post-resume cost %v != %v", r2.Step.TotalCost, r1.Step.TotalCost)
	}
}

// TestDaemonSnapshotFileRoundTrip: saveSnapshot → fresh server →
// loadSnapshot restores scenarios with their ids, epochs, and placements.
func TestDaemonSnapshotFileRoundTrip(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	_, base, sched := e2eScenario(t)
	ft := topology.MustFatTree(4, nil)
	idx := hostIndex(ft)
	spec := ScenarioSpec{Name: "durable", SFCLen: 3, Mu: 1e3}
	for _, f := range base {
		spec.Pairs = append(spec.Pairs, PairSpec{Src: idx[f.Src], Dst: idx[f.Dst], Rate: f.Rate})
	}
	var created struct {
		ID string `json:"id"`
	}
	do(t, ts, "POST", "/v1/scenarios", spec, &created)
	for h := 0; h < 4; h++ {
		req := ratesRequest{Step: true}
		for i, r := range sched[h] {
			req.Updates = append(req.Updates, engine.RateUpdate{Flow: i, Rate: r})
		}
		do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/rates", created.ID), req, nil)
	}
	var before engine.Snapshot
	do(t, ts, "GET", fmt.Sprintf("/v1/scenarios/%s/placement", created.ID), nil, &before)

	path := t.TempDir() + "/state.json"
	if err := srv.saveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	srv2 := newServer()
	if _, _, err := srv2.loadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	var after engine.Snapshot
	if code := do(t, ts2, "GET", fmt.Sprintf("/v1/scenarios/%s/placement", created.ID), nil, &after); code != http.StatusOK {
		t.Fatalf("restored scenario missing: %d", code)
	}
	if after.Epoch != before.Epoch || !after.Placement.Equal(before.Placement) {
		t.Fatalf("restored %+v != saved %+v", after, before)
	}
	// Ids keep counting past the restored ones.
	var created2 struct {
		ID string `json:"id"`
	}
	do(t, ts2, "POST", "/v1/scenarios", ScenarioSpec{Flows: 8}, &created2)
	if created2.ID == created.ID {
		t.Fatalf("id collision after restore: %s", created2.ID)
	}
	// A missing snapshot file is a clean boot.
	if _, _, err := newServer().loadSnapshot(t.TempDir() + "/none.json"); err != nil {
		t.Fatal(err)
	}
}

// TestAPIErrors covers the failure surface: unknown ids, malformed specs,
// bad updates.
func TestAPIErrors(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()

	if code := do(t, ts, "GET", "/v1/scenarios/nope/placement", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}
	if code := do(t, ts, "POST", "/v1/scenarios/nope/step", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id step: %d", code)
	}
	if code := do(t, ts, "DELETE", "/v1/scenarios/nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id delete: %d", code)
	}
	if code := do(t, ts, "POST", "/v1/scenarios", map[string]any{"topology": "torus"}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad topology: %d", code)
	}
	if code := do(t, ts, "POST", "/v1/scenarios", map[string]any{"bogus_field": 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}
	if code := do(t, ts, "POST", "/v1/scenarios", map[string]any{"migrator": "quantum"}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad migrator: %d", code)
	}
	if code := do(t, ts, "POST", "/v1/scenarios", map[string]any{"pairs": []map[string]any{{"src": 0, "dst": 999, "rate": 1}}}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad pair: %d", code)
	}

	var created struct {
		ID string `json:"id"`
	}
	if code := do(t, ts, "POST", "/v1/scenarios", ScenarioSpec{Flows: 8, Seed: 1}, &created); code != http.StatusCreated {
		t.Fatalf("generated scenario: %d", code)
	}
	path := fmt.Sprintf("/v1/scenarios/%s/rates", created.ID)
	if code := do(t, ts, "POST", path, ratesRequest{Updates: []engine.RateUpdate{{Flow: 99, Rate: 1}}}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-range flow: %d", code)
	}
	if code := do(t, ts, "POST", path, ratesRequest{Updates: []engine.RateUpdate{{Flow: 0, Rate: -1}}}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("negative rate: %d", code)
	}
	if code := do(t, ts, "DELETE", "/v1/scenarios/"+created.ID, nil, nil); code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if code := do(t, ts, "GET", "/v1/scenarios/"+created.ID+"/placement", nil, nil); code != http.StatusNotFound {
		t.Fatal("deleted scenario still served")
	}
	if code := do(t, ts, "GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
}

// TestErrorEnvelopeAndConflict pins the uniform error body — every
// failure answers {"error":{"code","message"}} with the documented code
// — and the atomic create path: a duplicate explicit id is a 409
// conflict even though the id was free when the first request started.
func TestErrorEnvelopeAndConflict(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()

	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	check := func(wantStatus int, wantCode, method, path string, body any) {
		t.Helper()
		env.Error.Code, env.Error.Message = "", ""
		if code := do(t, ts, method, path, body, &env); code != wantStatus {
			t.Fatalf("%s %s: status %d, want %d", method, path, code, wantStatus)
		}
		if env.Error.Code != wantCode || env.Error.Message == "" {
			t.Fatalf("%s %s: envelope %+v, want code %q", method, path, env, wantCode)
		}
	}
	check(http.StatusNotFound, "not_found", "GET", "/v1/scenarios/nope/events", nil)
	check(http.StatusBadRequest, "bad_request", "POST", "/v1/scenarios", map[string]any{"bogus_field": 1})
	check(http.StatusUnprocessableEntity, "invalid_argument", "POST", "/v1/scenarios", map[string]any{"topology": "torus"})

	var created struct {
		ID string `json:"id"`
	}
	spec := ScenarioSpec{ID: "pinned", Flows: 8, Seed: 1}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, &created); code != http.StatusCreated {
		t.Fatalf("explicit-id create: %d", code)
	}
	if created.ID != "pinned" {
		t.Fatalf("id %q, want pinned", created.ID)
	}
	check(http.StatusConflict, "conflict", "POST", "/v1/scenarios", spec)
	// Generated ids skip over live explicit ids rather than colliding.
	var gen struct {
		ID string `json:"id"`
	}
	if code := do(t, ts, "POST", "/v1/scenarios", ScenarioSpec{Flows: 8, Seed: 2}, &gen); code != http.StatusCreated {
		t.Fatalf("generated create: %d", code)
	}
	if gen.ID == created.ID {
		t.Fatalf("generated id collided with %q", created.ID)
	}
}

// TestEventsEndpoint: migrations committed by the engine appear in the
// scenario's bounded event ring with monotonically increasing sequence
// numbers and the migration fields.
func TestEventsEndpoint(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()

	ft, base, sched := e2eScenario(t)
	idx := hostIndex(ft)
	spec := ScenarioSpec{SFCLen: 3, Mu: 1e3} // zero policy: consult every epoch
	for _, f := range base {
		spec.Pairs = append(spec.Pairs, PairSpec{Src: idx[f.Src], Dst: idx[f.Dst], Rate: f.Rate})
	}
	var created struct {
		ID string `json:"id"`
	}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	moves := 0
	for _, rates := range sched {
		req := ratesRequest{Step: true}
		for i, r := range rates {
			req.Updates = append(req.Updates, engine.RateUpdate{Flow: i, Rate: r})
		}
		var resp struct {
			Step *engine.StepResult `json:"step"`
		}
		do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/rates", created.ID), req, &resp)
		if resp.Step != nil {
			moves += resp.Step.Moves
		}
	}
	if moves == 0 {
		t.Fatal("schedule produced no migrations; events test is vacuous")
	}

	var got struct {
		Events []struct {
			Seq    uint64             `json:"seq"`
			Type   string             `json:"type"`
			Msg    string             `json:"message"`
			Fields map[string]float64 `json:"fields"`
		} `json:"events"`
		Total uint64 `json:"total"`
	}
	if code := do(t, ts, "GET", fmt.Sprintf("/v1/scenarios/%s/events", created.ID), nil, &got); code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	if len(got.Events) == 0 || got.Total == 0 {
		t.Fatalf("no events recorded (total %d)", got.Total)
	}
	totalMoves := 0.0
	for i, ev := range got.Events {
		if ev.Type != "migration" || ev.Msg == "" {
			t.Fatalf("event %d: %+v", i, ev)
		}
		if i > 0 && ev.Seq <= got.Events[i-1].Seq {
			t.Fatalf("event seq not increasing: %d after %d", ev.Seq, got.Events[i-1].Seq)
		}
		if ev.Fields["moves"] <= 0 || ev.Fields["epoch"] <= 0 {
			t.Fatalf("event %d missing fields: %+v", i, ev.Fields)
		}
		totalMoves += ev.Fields["moves"]
	}
	if totalMoves != float64(moves) {
		t.Fatalf("event moves %v != stepped moves %d", totalMoves, moves)
	}
}

// TestLeafSpineScenario: the daemon serves non-fat-tree fabrics too.
// TestExhaustiveMigratorScenario: the daemon accepts the exact
// Algorithm 6 migrator with a node budget and parallel search workers,
// reports it under its own (non-colliding) name, and steps normally.
func TestExhaustiveMigratorScenario(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()
	var created struct {
		ID       string           `json:"id"`
		Migrator string           `json:"migrator"`
		Snapshot *engine.Snapshot `json:"snapshot"`
	}
	spec := ScenarioSpec{
		Flows: 10, Seed: 3, SFCLen: 3,
		Migrator: "exhaustive", NodeBudget: 50_000, SearchWorkers: 2,
	}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, &created); code != http.StatusCreated {
		t.Fatalf("exhaustive create: %d", code)
	}
	if created.Migrator != "Exhaustive" {
		t.Fatalf("migrator name %q, want Exhaustive", created.Migrator)
	}
	var res engine.StepResult
	if code := do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/step", created.ID), nil, &res); code != http.StatusOK {
		t.Fatal("step failed")
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch %d", res.Epoch)
	}
}

func TestLeafSpineScenario(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()
	var created struct {
		ID       string           `json:"id"`
		Snapshot *engine.Snapshot `json:"snapshot"`
	}
	spec := ScenarioSpec{Topology: "leaf-spine", Flows: 10, Seed: 2, SFCLen: 2, Migrator: "layereddp"}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, &created); code != http.StatusCreated {
		t.Fatalf("leaf-spine create: %d", code)
	}
	if len(created.Snapshot.Placement) != 2 {
		t.Fatalf("snapshot %+v", created.Snapshot)
	}
	var res engine.StepResult
	if code := do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/step", created.ID), nil, &res); code != http.StatusOK {
		t.Fatal("step failed")
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch %d", res.Epoch)
	}
}
