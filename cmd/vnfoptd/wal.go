package main

import (
	"context"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"os"
	"strings"
	"time"

	"vnfopt/internal/engine"
	"vnfopt/internal/failfs"
	"vnfopt/internal/fault"
	"vnfopt/internal/wal"
)

// WAL glue: with -wal set, every mutating command — create, ingest
// batch, step, fault transition — is appended to the scenario's
// write-ahead log *before* it is applied and acknowledged, so a crash
// between snapshots loses nothing that a client was told succeeded
// (modulo the -wal-sync policy; see docs/RESILIENCE.md). Recovery is
// snapshot + replay: the boot restores the last snapshot, then
// re-executes each scenario's logged suffix through the real engine.
// The engine is deterministic, so replay lands bit-identically on the
// pre-crash state — including commands that failed (a step that errored
// errors again, changing nothing).
//
// Payload encodings (the log frames and checksums; the daemon owns the
// bytes):
//
//	create  JSON {"id": ..., "spec": {...}}  (spec after defaulting, so
//	        rebuild is deterministic; carries State when resuming)
//	ingest  u32 LE count, then per update u32 LE flow, f64 LE rate
//	step    empty
//	faults  JSON {"inject": [...], "heal": [...]}

// walCreate is the TypeCreate payload.
type walCreate struct {
	ID   string        `json:"id"`
	Spec *ScenarioSpec `json:"spec"`
}

// walFaults is the TypeFaults payload.
type walFaults struct {
	Inject []fault.Fault `json:"inject,omitempty"`
	Heal   []fault.Fault `json:"heal,omitempty"`
}

// encodeRates packs an accepted batch as the TypeIngest payload: a
// fixed 12-byte little-endian cell per update. The binary form keeps
// the WAL overhead of the bulk path proportional to the update count,
// not to the NDJSON text it arrived as.
func encodeRates(updates []engine.RateUpdate) []byte {
	buf := make([]byte, 4+12*len(updates))
	binary.LittleEndian.PutUint32(buf, uint32(len(updates)))
	off := 4
	for _, u := range updates {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Flow))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Rate))
		off += 12
	}
	return buf
}

// decodeRates is the replay-side inverse of encodeRates.
func decodeRates(payload []byte) ([]engine.RateUpdate, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("ingest payload too short (%d bytes)", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+12*n {
		return nil, fmt.Errorf("ingest payload: %d bytes for %d updates", len(payload), n)
	}
	updates := make([]engine.RateUpdate, n)
	off := 4
	for i := range updates {
		updates[i].Flow = int(int32(binary.LittleEndian.Uint32(payload[off:])))
		updates[i].Rate = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+4:]))
		off += 12
	}
	return updates, nil
}

// scenarioDirName maps a scenario id to its WAL directory name.
// PathEscape keeps separators and other filesystem-hostile bytes out;
// "." and ".." (which PathEscape passes through) are forced into escaped
// forms so an id can never walk out of the WAL root. A trailing
// ".deleting" (also passed through by PathEscape) is force-escaped too:
// a live scenario directory must never collide with the delete-tombstone
// namespace, or the boot sweep would destroy its acknowledged records.
// PathEscape never emits "%2E" itself ('.' is unreserved), so the forced
// form cannot collide with any other id's escape.
func scenarioDirName(id string) string {
	switch id {
	case ".":
		return "%2E"
	case "..":
		return "%2E%2E"
	}
	name := url.PathEscape(id)
	if strings.HasSuffix(name, deletingSuffix) {
		name = name[:len(name)-len(deletingSuffix)] + "%2E" + deletingSuffix[1:]
	}
	return name
}

// scenarioDirID is the inverse of scenarioDirName, for the boot scan.
func scenarioDirID(name string) (string, error) {
	return url.PathUnescape(name)
}

// deletingSuffix marks a scenario WAL directory whose scenario was
// deleted: the rename is the atomic commit point of the deletion, the
// RemoveAll after it is garbage collection, and the boot scan sweeps any
// leftovers — so a crash mid-delete can never resurrect the scenario.
const deletingSuffix = ".deleting"

// walMetaFile sits next to a scenario's segments and ties the log to the
// snapshots taken over it. It does not match the *.wal segment pattern,
// so the log layer ignores it.
const walMetaFile = "meta.json"

// walMeta identifies one incarnation of a scenario's log. Gen is stamped
// into every snapshot captured while the log is live; at boot a snapshot
// may only be combined with the log whose generation it recorded —
// anything else (the WAL was toggled off and state advanced un-logged,
// the WAL root was swapped, the scenario was deleted and re-created)
// would replay a log against a state it does not extend.
type walMeta struct {
	Gen string `json:"gen"`
	// SeededFrom is set when the log was seeded over a snapshot that
	// predates the WAL: the SHA-256 of that snapshot file's bytes. It
	// resolves the one legitimate "snapshot has no generation but a log
	// exists" boot: if the loaded snapshot still hashes to SeededFrom, the
	// seed create record (which embeds that exact state) is authoritative
	// and recovery rebuilds from it; any other hash means the snapshot
	// moved on without the log, and recovery refuses.
	SeededFrom string `json:"seeded_from,omitempty"`
}

// newWALGen mints a fresh log-incarnation id.
func newWALGen() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Generations only need to differ across log incarnations.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// writeWALMeta persists a scenario's meta file atomically. It must be
// durable before the log's first record: a record without a meta file is
// unrecoverable by design (recovery refuses logs it cannot tie to a
// generation).
func (s *server) writeWALMeta(id string, m walMeta) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := s.walPath(scenarioDirName(id)) + "/" + walMetaFile
	return failfs.WriteFileAtomic(s.fs, path, b, 0o644)
}

// readWALMeta loads a scenario's meta file; a missing file is a zero
// meta (an empty directory husk from a crashed create).
func (s *server) readWALMeta(id string) (walMeta, error) {
	path := s.walPath(scenarioDirName(id)) + "/" + walMetaFile
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return walMeta{}, nil
		}
		return walMeta{}, err
	}
	var m walMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return walMeta{}, fmt.Errorf("wal meta %s: %w", path, err)
	}
	return m, nil
}

// snapshotHash fingerprints a snapshot file's bytes for the seed
// linkage.
func snapshotHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// walEnabled reports whether the daemon runs with a write-ahead log.
func (s *server) walEnabled() bool { return s.walDir != "" }

// openScenarioWAL opens (creating if needed) the log for one scenario.
// Returns (nil, nil) when the WAL is disabled.
func (s *server) openScenarioWAL(id string) (*wal.Log, error) {
	if !s.walEnabled() {
		return nil, nil
	}
	opts := s.walOpts
	opts.FS = s.fs
	opts.Metrics = s.walMetrics
	return wal.Open(s.walPath(scenarioDirName(id)), opts)
}

// walPath joins a directory name onto the WAL root.
func (s *server) walPath(name string) string {
	return strings.TrimSuffix(s.walDir, "/") + "/" + name
}

// appendWAL appends one record for sc and advances the scenario's
// applied-seq watermark. It must be called from the scenario's actor
// (or before the scenario is published), so appends are serialized per
// scenario; the caller must not apply or acknowledge the command unless
// it returns nil. No-op without a WAL.
func (sc *scenario) appendWAL(typ wal.Type, payload []byte) error {
	if sc.wal == nil {
		return nil
	}
	seq, err := sc.wal.Append(typ, payload)
	if err != nil {
		return err
	}
	sc.walSeq = seq
	return nil
}

// recoverState drives the boot-time restore: snapshot load, the
// .deleting sweep, and per-scenario WAL replay. ctx aborts the replay
// between records (SIGTERM during a long recovery): segments are left
// exactly as found — recovery never deletes or truncates anything
// beyond the torn tail of the final segment — so the next boot resumes
// from the same log. The server must not serve /v1 traffic until this
// returns nil; main gates that on s.recovering, which is cleared only
// on success — a half-recovered server must never serve, and above all
// must never snapshot (that would capture partial state and compact
// away log records the next recovery still needs).
func (s *server) recoverState(ctx context.Context, snapshotPath string) error {
	restored, snapHash, err := s.loadSnapshot(snapshotPath)
	if err != nil {
		return err
	}
	if !s.walEnabled() {
		s.recovering.Store(false)
		return nil
	}
	if err := s.fs.MkdirAll(s.walDir, 0o755); err != nil {
		return fmt.Errorf("wal root: %w", err)
	}
	entries, err := s.fs.ReadDir(s.walDir)
	if err != nil {
		return fmt.Errorf("wal root: %w", err)
	}
	// Pass 1 — sweep delete tombstones, remembering which ids they
	// retire. A tombstone is the commit point of an acked delete, so the
	// snapshot copy of that scenario is dead: it must not be replayed
	// (pass 2, when the id was re-created) nor kept or re-seeded (pass 3).
	// Sweeping first also means a tombstone that sorts after its id's
	// re-created live directory is still seen in time.
	swept := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, deletingSuffix) {
			continue
		}
		if id, err := scenarioDirID(strings.TrimSuffix(name, deletingSuffix)); err == nil {
			swept[id] = true
		}
		if err := s.fs.RemoveAll(s.walPath(name)); err != nil {
			return fmt.Errorf("sweep %s: %w", name, err)
		}
	}
	// Pass 2 — replay every live scenario log over its snapshot state.
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || strings.HasSuffix(name, deletingSuffix) {
			continue
		}
		id, err := scenarioDirID(name)
		if err != nil {
			return fmt.Errorf("wal dir %q: %w", name, err)
		}
		seen[id] = true
		if err := s.recoverScenario(ctx, id, restored[id], snapHash, swept[id]); err != nil {
			return fmt.Errorf("scenario %q: %w", id, err)
		}
	}
	// Pass 3 — snapshot scenarios without a live WAL directory.
	for id, sc := range restored {
		if seen[id] || sc.wal != nil {
			continue
		}
		if swept[id] {
			// The delete committed after the snapshot was taken; finish it.
			s.scenarios.Delete(id)
			sc.actor.Close()
			continue
		}
		if sc.walGen != "" {
			// The snapshot says this scenario had a log (generation
			// recorded) but the directory is gone: acknowledged records
			// were lost. Refuse rather than silently serve the stale
			// snapshot state.
			return fmt.Errorf("scenario %q: wal directory missing but snapshot records wal generation %s (wrong -wal root?)", id, sc.walGen)
		}
		// First boot with -wal over a pre-WAL snapshot: start the log with
		// a create record carrying the current state, so it can rebuild
		// its scenario from seq 1.
		if err := s.seedScenarioWAL(sc, snapHash); err != nil {
			return fmt.Errorf("scenario %q: seed wal: %w", id, err)
		}
	}
	s.recovering.Store(false)
	return nil
}

// recoverScenario replays one scenario's log. The normal shapes: snapSc
// == nil (the scenario was created after the snapshot — its create
// record is in the log) replays from scratch; snapSc with a recorded
// generation matching the log's replays the suffix past the snapshot's
// applied seq. Two recorded histories discard the snapshot shard and
// rebuild from the log alone: sweptOld (the snapshot-era log was retired
// by an acked delete, so this directory belongs to a re-created
// successor) and a seed log whose SeededFrom still matches the loaded
// snapshot (the boot that seeded it crashed before the next snapshot
// could record the linkage — the seed create record embeds that exact
// state). Every other snapshot/log pairing is refused: replaying a log
// against a state it does not extend would diverge silently.
func (s *server) recoverScenario(ctx context.Context, id string, snapSc *scenario, snapHash string, sweptOld bool) error {
	l, err := s.openScenarioWAL(id)
	if err != nil {
		return err
	}
	meta, err := s.readWALMeta(id)
	if err != nil {
		l.Close()
		return err
	}
	sc := snapSc
	snapSeq := uint64(0)
	rebuilt := false
	switch {
	case snapSc == nil:
		// Created after the snapshot; the log carries its create record.
	case sweptOld:
		sc, rebuilt = nil, true
	case snapSc.walGen != "":
		if meta.Gen != snapSc.walGen {
			l.Close()
			return fmt.Errorf("wal generation mismatch: snapshot records %s, log is %s — the log does not extend this snapshot (wrong -wal root, or the scenario was re-created?); clear the log directory or restore the matching snapshot", snapSc.walGen, orUnset(meta.Gen))
		}
		snapSeq = snapSc.walSeq
	default:
		// The snapshot has no WAL linkage (pre-WAL, or taken with -wal
		// off): only a log seeded from exactly this snapshot may be
		// combined with it.
		if meta.SeededFrom == "" || meta.SeededFrom != snapHash {
			l.Close()
			return fmt.Errorf("snapshot has no wal generation but a log exists (generation %s) — the snapshot advanced without the log (was -wal toggled off and back on?); clear the log directory or restore the matching snapshot", orUnset(meta.Gen))
		}
		sc, rebuilt = nil, true
	}
	replayed := 0
	err = l.Replay(func(rec wal.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if rec.Seq <= snapSeq || rec.Type == wal.TypeAnchor {
			return nil // covered by the snapshot / not a command
		}
		replayed++
		switch rec.Type {
		case wal.TypeCreate:
			if sc != nil {
				return fmt.Errorf("seq %d: create record for an existing scenario", rec.Seq)
			}
			var c walCreate
			if err := json.Unmarshal(rec.Payload, &c); err != nil {
				return fmt.Errorf("seq %d: create payload: %w", rec.Seq, err)
			}
			if c.ID != id {
				return fmt.Errorf("seq %d: create record for %q in log of %q", rec.Seq, c.ID, id)
			}
			built, err := s.buildScenario(id, c.Spec)
			if err != nil {
				return fmt.Errorf("seq %d: rebuild: %w", rec.Seq, err)
			}
			sc = built
		case wal.TypeIngest:
			if sc == nil {
				return fmt.Errorf("seq %d: %s record before create", rec.Seq, rec.Type)
			}
			updates, err := decodeRates(rec.Payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
			// Logged commands were validated before logging; a business
			// error here (or on step/faults below) reproduces the original
			// run's rejection, which changed nothing — exactly what the
			// live server answered, so replay ignores it.
			_, _ = sc.eng.Ingest(updates)
		case wal.TypeStep:
			if sc == nil {
				return fmt.Errorf("seq %d: %s record before create", rec.Seq, rec.Type)
			}
			_, _ = sc.eng.Step()
		case wal.TypeFaults:
			if sc == nil {
				return fmt.Errorf("seq %d: %s record before create", rec.Seq, rec.Type)
			}
			var f walFaults
			if err := json.Unmarshal(rec.Payload, &f); err != nil {
				return fmt.Errorf("seq %d: faults payload: %w", rec.Seq, err)
			}
			_, _ = sc.eng.ApplyFaults(context.Background(), f.Inject, f.Heal)
		default:
			return fmt.Errorf("seq %d: unknown record type %v", rec.Seq, rec.Type)
		}
		sc.walSeq = rec.Seq
		return nil
	})
	if err != nil {
		l.Close()
		return err
	}
	if sc == nil {
		// An empty log directory: a create (or a re-seed) that crashed
		// between opening the log and appending its first record. Drop the
		// husk; what happens to the snapshot shard depends on why there is
		// none in the log.
		l.Close()
		if err := s.dropWALDir(id); err != nil {
			return err
		}
		switch {
		case snapSc == nil:
			// The scenario never existed.
			return nil
		case sweptOld:
			// The delete committed; the husk was an aborted re-create.
			// Finish the delete.
			s.scenarios.Delete(id)
			snapSc.actor.Close()
			return nil
		default:
			// An aborted seed (meta durable, create record never landed):
			// the snapshot shard is still authoritative — seed it again.
			return s.seedScenarioWAL(snapSc, snapHash)
		}
	}
	if meta.Gen == "" {
		l.Close()
		return fmt.Errorf("wal log has records but no meta file — cannot tie it to a generation; clear the log directory")
	}
	sc.wal = l
	sc.walGen = meta.Gen
	if replayed > 0 {
		s.log.Info("wal replayed", "scenario", id, "records", replayed)
	}
	s.createMu.Lock()
	if rebuilt && snapSc != nil {
		// The log, not the snapshot, is this id's history: swap the
		// snapshot-built shard out of the registry.
		snapSc.actor.Close()
		s.scenarios.Set(id, sc)
	} else if _, loaded := s.scenarios.Get(id); !loaded {
		s.scenarios.Insert(id, sc)
	}
	s.bumpNextID(id)
	s.createMu.Unlock()
	return nil
}

// orUnset renders a possibly-empty generation for error messages.
func orUnset(gen string) string {
	if gen == "" {
		return "unset"
	}
	return gen
}

// seedScenarioWAL starts a log for a scenario that predates the WAL,
// writing a create record that carries the full current state. The meta
// file — generation plus the hash of the snapshot being seeded over —
// is made durable first, so a crash between seeding and the next
// snapshot is recoverable: the next boot sees the same snapshot hash,
// trusts the seed create record, and rebuilds from it.
func (s *server) seedScenarioWAL(sc *scenario, snapHash string) error {
	l, err := s.openScenarioWAL(sc.ID)
	if err != nil {
		return err
	}
	gen := newWALGen()
	if err := s.writeWALMeta(sc.ID, walMeta{Gen: gen, SeededFrom: snapHash}); err != nil {
		l.Close()
		return err
	}
	blob, err := sc.eng.MarshalState()
	if err != nil {
		l.Close()
		return err
	}
	spec := *sc.Spec
	spec.State = blob
	payload, err := json.Marshal(walCreate{ID: sc.ID, Spec: &spec})
	if err != nil {
		l.Close()
		return err
	}
	sc.wal = l
	sc.walGen = gen
	if err := sc.appendWAL(wal.TypeCreate, payload); err != nil {
		sc.wal = nil
		sc.walGen = ""
		l.Close()
		return err
	}
	return nil
}

// dropWALDir atomically retires a scenario's WAL directory: the rename
// commits the deletion, the RemoveAll collects it, and the boot sweep
// collects it if we crash in between.
func (s *server) dropWALDir(id string) error {
	dir := s.walPath(scenarioDirName(id))
	tomb := dir + deletingSuffix
	// A leftover tombstone from an earlier half-finished delete of the
	// same id would block the rename; collect it first.
	_ = s.fs.RemoveAll(tomb)
	if err := s.fs.Rename(dir, tomb); err != nil {
		return err
	}
	_ = s.fs.SyncDir(s.walDir)
	return s.fs.RemoveAll(tomb)
}

// doWithWAL wraps the common mutating-command pattern: run validate
// (may be nil), append the record, then apply — all serialized inside
// the scenario's actor. The returned errors are (transport, wal,
// validation); apply only runs when all three are nil so far.
func (sc *scenario) doWithWAL(validate func() error, typ wal.Type, payload func() []byte, apply func()) (actorErr, walErr, valErr error) {
	actorErr = sc.actor.Do(func() {
		if validate != nil {
			if err := validate(); err != nil {
				valErr = err
				return
			}
		}
		if err := sc.appendWAL(typ, payload()); err != nil {
			walErr = err
			return
		}
		apply()
	})
	return actorErr, walErr, valErr
}
