package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"strings"

	"vnfopt/internal/engine"
	"vnfopt/internal/fault"
	"vnfopt/internal/wal"
)

// WAL glue: with -wal set, every mutating command — create, ingest
// batch, step, fault transition — is appended to the scenario's
// write-ahead log *before* it is applied and acknowledged, so a crash
// between snapshots loses nothing that a client was told succeeded
// (modulo the -wal-sync policy; see docs/RESILIENCE.md). Recovery is
// snapshot + replay: the boot restores the last snapshot, then
// re-executes each scenario's logged suffix through the real engine.
// The engine is deterministic, so replay lands bit-identically on the
// pre-crash state — including commands that failed (a step that errored
// errors again, changing nothing).
//
// Payload encodings (the log frames and checksums; the daemon owns the
// bytes):
//
//	create  JSON {"id": ..., "spec": {...}}  (spec after defaulting, so
//	        rebuild is deterministic; carries State when resuming)
//	ingest  u32 LE count, then per update u32 LE flow, f64 LE rate
//	step    empty
//	faults  JSON {"inject": [...], "heal": [...]}

// walCreate is the TypeCreate payload.
type walCreate struct {
	ID   string        `json:"id"`
	Spec *ScenarioSpec `json:"spec"`
}

// walFaults is the TypeFaults payload.
type walFaults struct {
	Inject []fault.Fault `json:"inject,omitempty"`
	Heal   []fault.Fault `json:"heal,omitempty"`
}

// encodeRates packs an accepted batch as the TypeIngest payload: a
// fixed 12-byte little-endian cell per update. The binary form keeps
// the WAL overhead of the bulk path proportional to the update count,
// not to the NDJSON text it arrived as.
func encodeRates(updates []engine.RateUpdate) []byte {
	buf := make([]byte, 4+12*len(updates))
	binary.LittleEndian.PutUint32(buf, uint32(len(updates)))
	off := 4
	for _, u := range updates {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Flow))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(u.Rate))
		off += 12
	}
	return buf
}

// decodeRates is the replay-side inverse of encodeRates.
func decodeRates(payload []byte) ([]engine.RateUpdate, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("ingest payload too short (%d bytes)", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+12*n {
		return nil, fmt.Errorf("ingest payload: %d bytes for %d updates", len(payload), n)
	}
	updates := make([]engine.RateUpdate, n)
	off := 4
	for i := range updates {
		updates[i].Flow = int(int32(binary.LittleEndian.Uint32(payload[off:])))
		updates[i].Rate = math.Float64frombits(binary.LittleEndian.Uint64(payload[off+4:]))
		off += 12
	}
	return updates, nil
}

// scenarioDirName maps a scenario id to its WAL directory name.
// PathEscape keeps separators and other filesystem-hostile bytes out;
// "." and ".." (which PathEscape passes through) are forced into escaped
// forms so an id can never walk out of the WAL root.
func scenarioDirName(id string) string {
	switch id {
	case ".":
		return "%2E"
	case "..":
		return "%2E%2E"
	}
	return url.PathEscape(id)
}

// scenarioDirID is the inverse of scenarioDirName, for the boot scan.
func scenarioDirID(name string) (string, error) {
	return url.PathUnescape(name)
}

// deletingSuffix marks a scenario WAL directory whose scenario was
// deleted: the rename is the atomic commit point of the deletion, the
// RemoveAll after it is garbage collection, and the boot scan sweeps any
// leftovers — so a crash mid-delete can never resurrect the scenario.
const deletingSuffix = ".deleting"

// walEnabled reports whether the daemon runs with a write-ahead log.
func (s *server) walEnabled() bool { return s.walDir != "" }

// openScenarioWAL opens (creating if needed) the log for one scenario.
// Returns (nil, nil) when the WAL is disabled.
func (s *server) openScenarioWAL(id string) (*wal.Log, error) {
	if !s.walEnabled() {
		return nil, nil
	}
	opts := s.walOpts
	opts.FS = s.fs
	opts.Metrics = s.walMetrics
	return wal.Open(s.walPath(scenarioDirName(id)), opts)
}

// walPath joins a directory name onto the WAL root.
func (s *server) walPath(name string) string {
	return strings.TrimSuffix(s.walDir, "/") + "/" + name
}

// appendWAL appends one record for sc and advances the scenario's
// applied-seq watermark. It must be called from the scenario's actor
// (or before the scenario is published), so appends are serialized per
// scenario; the caller must not apply or acknowledge the command unless
// it returns nil. No-op without a WAL.
func (sc *scenario) appendWAL(typ wal.Type, payload []byte) error {
	if sc.wal == nil {
		return nil
	}
	seq, err := sc.wal.Append(typ, payload)
	if err != nil {
		return err
	}
	sc.walSeq = seq
	return nil
}

// recoverState drives the boot-time restore: snapshot load, the
// .deleting sweep, and per-scenario WAL replay. ctx aborts the replay
// between records (SIGTERM during a long recovery): segments are left
// exactly as found — recovery never deletes or truncates anything
// beyond the torn tail of the final segment — so the next boot resumes
// from the same log. The server must not serve /v1 traffic until this
// returns nil; main gates that on s.recovering, which is cleared only
// on success — a half-recovered server must never serve, and above all
// must never snapshot (that would capture partial state and compact
// away log records the next recovery still needs).
func (s *server) recoverState(ctx context.Context, snapshotPath string) error {
	restored, err := s.loadSnapshot(snapshotPath)
	if err != nil {
		return err
	}
	if !s.walEnabled() {
		s.recovering.Store(false)
		return nil
	}
	if err := s.fs.MkdirAll(s.walDir, 0o755); err != nil {
		return fmt.Errorf("wal root: %w", err)
	}
	entries, err := s.fs.ReadDir(s.walDir)
	if err != nil {
		return fmt.Errorf("wal root: %w", err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, deletingSuffix) {
			// A delete that committed (rename) but didn't finish collecting.
			if err := s.fs.RemoveAll(s.walPath(name)); err != nil {
				return fmt.Errorf("sweep %s: %w", name, err)
			}
			continue
		}
		if !e.IsDir() {
			continue
		}
		id, err := scenarioDirID(name)
		if err != nil {
			return fmt.Errorf("wal dir %q: %w", name, err)
		}
		seen[id] = true
		if err := s.recoverScenario(ctx, id, restored[id]); err != nil {
			return fmt.Errorf("scenario %q: %w", id, err)
		}
	}
	// Scenarios restored from the snapshot that have no WAL directory yet
	// (first boot with -wal over a pre-WAL snapshot): start their logs
	// with a create record carrying the current state, so each log can
	// rebuild its scenario from seq 1.
	for id, sc := range restored {
		if seen[id] || sc.wal != nil {
			continue
		}
		if err := s.seedScenarioWAL(sc); err != nil {
			return fmt.Errorf("scenario %q: seed wal: %w", id, err)
		}
	}
	s.recovering.Store(false)
	return nil
}

// recoverScenario replays one scenario's log on top of its snapshot
// state (sc == nil when the scenario was created after the snapshot —
// its create record is in the log).
func (s *server) recoverScenario(ctx context.Context, id string, sc *scenario) error {
	l, err := s.openScenarioWAL(id)
	if err != nil {
		return err
	}
	snapSeq := uint64(0)
	if sc != nil {
		snapSeq = sc.walSeq
	}
	replayed := 0
	err = l.Replay(func(rec wal.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if rec.Seq <= snapSeq || rec.Type == wal.TypeAnchor {
			return nil // covered by the snapshot / not a command
		}
		replayed++
		switch rec.Type {
		case wal.TypeCreate:
			if sc != nil {
				return fmt.Errorf("seq %d: create record for an existing scenario", rec.Seq)
			}
			var c walCreate
			if err := json.Unmarshal(rec.Payload, &c); err != nil {
				return fmt.Errorf("seq %d: create payload: %w", rec.Seq, err)
			}
			if c.ID != id {
				return fmt.Errorf("seq %d: create record for %q in log of %q", rec.Seq, c.ID, id)
			}
			built, err := s.buildScenario(id, c.Spec)
			if err != nil {
				return fmt.Errorf("seq %d: rebuild: %w", rec.Seq, err)
			}
			sc = built
		case wal.TypeIngest:
			if sc == nil {
				return fmt.Errorf("seq %d: %s record before create", rec.Seq, rec.Type)
			}
			updates, err := decodeRates(rec.Payload)
			if err != nil {
				return fmt.Errorf("seq %d: %w", rec.Seq, err)
			}
			// Logged commands were validated before logging; a business
			// error here (or on step/faults below) reproduces the original
			// run's rejection, which changed nothing — exactly what the
			// live server answered, so replay ignores it.
			_, _ = sc.eng.Ingest(updates)
		case wal.TypeStep:
			if sc == nil {
				return fmt.Errorf("seq %d: %s record before create", rec.Seq, rec.Type)
			}
			_, _ = sc.eng.Step()
		case wal.TypeFaults:
			if sc == nil {
				return fmt.Errorf("seq %d: %s record before create", rec.Seq, rec.Type)
			}
			var f walFaults
			if err := json.Unmarshal(rec.Payload, &f); err != nil {
				return fmt.Errorf("seq %d: faults payload: %w", rec.Seq, err)
			}
			_, _ = sc.eng.ApplyFaults(context.Background(), f.Inject, f.Heal)
		default:
			return fmt.Errorf("seq %d: unknown record type %v", rec.Seq, rec.Type)
		}
		sc.walSeq = rec.Seq
		return nil
	})
	if err != nil {
		l.Close()
		return err
	}
	if sc == nil {
		// An empty log directory: a create that crashed between opening
		// the log and appending its first record. The scenario never
		// existed; drop the husk.
		l.Close()
		if err := s.dropWALDir(id); err != nil {
			return err
		}
		return nil
	}
	sc.wal = l
	if replayed > 0 {
		s.log.Info("wal replayed", "scenario", id, "records", replayed)
	}
	if _, loaded := s.scenarios.Get(id); !loaded {
		s.createMu.Lock()
		s.scenarios.Insert(id, sc)
		s.bumpNextID(id)
		s.createMu.Unlock()
	}
	return nil
}

// seedScenarioWAL starts a log for a scenario that predates the WAL,
// writing a create record that carries the full current state.
func (s *server) seedScenarioWAL(sc *scenario) error {
	l, err := s.openScenarioWAL(sc.ID)
	if err != nil {
		return err
	}
	blob, err := sc.eng.MarshalState()
	if err != nil {
		l.Close()
		return err
	}
	spec := *sc.Spec
	spec.State = blob
	payload, err := json.Marshal(walCreate{ID: sc.ID, Spec: &spec})
	if err != nil {
		l.Close()
		return err
	}
	sc.wal = l
	if err := sc.appendWAL(wal.TypeCreate, payload); err != nil {
		sc.wal = nil
		l.Close()
		return err
	}
	return nil
}

// dropWALDir atomically retires a scenario's WAL directory: the rename
// commits the deletion, the RemoveAll collects it, and the boot sweep
// collects it if we crash in between.
func (s *server) dropWALDir(id string) error {
	dir := s.walPath(scenarioDirName(id))
	tomb := dir + deletingSuffix
	// A leftover tombstone from an earlier half-finished delete of the
	// same id would block the rename; collect it first.
	_ = s.fs.RemoveAll(tomb)
	if err := s.fs.Rename(dir, tomb); err != nil {
		return err
	}
	_ = s.fs.SyncDir(s.walDir)
	return s.fs.RemoveAll(tomb)
}

// doWithWAL wraps the common mutating-command pattern: run validate
// (may be nil), append the record, then apply — all serialized inside
// the scenario's actor. The returned errors are (transport, wal,
// validation); apply only runs when all three are nil so far.
func (sc *scenario) doWithWAL(validate func() error, typ wal.Type, payload func() []byte, apply func()) (actorErr, walErr, valErr error) {
	actorErr = sc.actor.Do(func() {
		if validate != nil {
			if err := validate(); err != nil {
				valErr = err
				return
			}
		}
		if err := sc.appendWAL(typ, payload()); err != nil {
			walErr = err
			return
		}
		apply()
	})
	return actorErr, walErr, valErr
}
