package main

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// errorCode is the machine-readable error class of the daemon's uniform
// error envelope. Every failing route answers
//
//	{"error": {"code": "<code>", "message": "<human text>"}}
//
// with the HTTP status derived from the code by httpStatus — the single
// place status mapping lives. The codes are part of the public API and
// documented in docs/ENGINE.md.
type errorCode string

const (
	// codeBadRequest: the request body or parameters could not be parsed.
	codeBadRequest errorCode = "bad_request"
	// codeInvalidArgument: the request parsed but describes an invalid
	// scenario or update (semantic validation failed).
	codeInvalidArgument errorCode = "invalid_argument"
	// codeNotFound: no scenario with the requested id.
	codeNotFound errorCode = "not_found"
	// codeConflict: a scenario with the requested id already exists.
	codeConflict errorCode = "conflict"
	// codeInternal: the engine failed while processing a valid request.
	codeInternal errorCode = "internal"
	// codeUnavailable: the request is valid but the degraded fabric cannot
	// satisfy it (e.g. a fault transition that leaves no feasible
	// placement). Retry after healing capacity.
	codeUnavailable errorCode = "unavailable"
	// codeResourceExhausted: the scenario's command mailbox is full —
	// ingest is outrunning the shard's run loop. The response carries a
	// Retry-After header; back off and resend.
	codeResourceExhausted errorCode = "resource_exhausted"
)

// httpStatus maps an error code to its HTTP status. Unknown codes are
// treated as internal errors rather than guessed at.
func httpStatus(c errorCode) int {
	switch c {
	case codeBadRequest:
		return http.StatusBadRequest
	case codeInvalidArgument:
		return http.StatusUnprocessableEntity
	case codeNotFound:
		return http.StatusNotFound
	case codeConflict:
		return http.StatusConflict
	case codeUnavailable:
		return http.StatusServiceUnavailable
	case codeResourceExhausted:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// apiError is the envelope payload.
type apiError struct {
	Code    errorCode `json:"code"`
	Message string    `json:"message"`
}

// errorEnvelope is the uniform error body.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the uniform error envelope for code.
func writeError(w http.ResponseWriter, code errorCode, format string, args ...any) {
	writeJSON(w, httpStatus(code), errorEnvelope{Error: apiError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
