package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vnfopt/internal/loadgen"
)

// TestBenchDaemon load-tests the sharded control plane end to end with
// internal/loadgen. By default it is a smoke run — a handful of
// scenarios, enough traffic to prove every phase moves — so it is cheap
// enough for `make check` and the race detector. Two env vars scale it
// into the real benchmark:
//
//	VNFOPT_BENCH_FULL=1   1000+ concurrent scenarios, the acceptance
//	                      thresholds (bulk NDJSON ≥ 10x per-call ingest)
//	VNFOPT_BENCH_OUT=path write the report JSON (results/BENCH_daemon.json)
//
// `make bench-daemon` runs the smoke form; `make bench-daemon-full`
// produces the committed artifact.
func TestBenchDaemon(t *testing.T) {
	full := os.Getenv("VNFOPT_BENCH_FULL") != ""
	out := os.Getenv("VNFOPT_BENCH_OUT")

	srv := newServer()
	// The harness creates a fleet; per-scenario metric series would make
	// the registry the bottleneck (and the cardinality is exactly what a
	// production fleet would disable too, via -scenario-metrics=false).
	srv.scenarioMetrics = false
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	defer srv.closeAll()

	flows := 40
	cfg := loadgen.Config{
		BaseURL:     ts.URL,
		Scenarios:   8,
		Concurrency: 8,
		Flows:       flows,
		Spec: map[string]any{
			"topology": "fat-tree",
			"k":        4,
			"flows":    flows,
			"migrator": "nomigration",
		},
		PerCallRequests: 128,
		PerCallBatch:    1,
		BulkRequests:    4,
		BulkUpdates:     8192,
		ReadRequests:    128,
		Seed:            1,
	}
	if full {
		cfg.Scenarios = 1000
		cfg.Concurrency = 64
		cfg.PerCallRequests = 4096
		cfg.BulkRequests = 16
		cfg.BulkUpdates = 262144
		cfg.ReadRequests = 4096
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("create:  %6.0f req/s  p99 %.2fms  (%d scenarios)", rep.Create.RequestsPerSec, rep.Create.P99Ms, rep.Scenarios)
	t.Logf("percall: %6.0f upd/s  p99 %.2fms  (%d retries)", rep.PerCall.UpdatesPerSec, rep.PerCall.P99Ms, rep.PerCall.Retries)
	t.Logf("bulk:    %6.0f upd/s  p99 %.2fms  (%.1fx per-call)", rep.Bulk.UpdatesPerSec, rep.Bulk.P99Ms, rep.BulkSpeedup)
	t.Logf("read:    %6.0f req/s  p99 %.2fms", rep.Read.RequestsPerSec, rep.Read.P99Ms)

	for name, p := range map[string]loadgen.Phase{
		"create": rep.Create, "percall": rep.PerCall, "bulk": rep.Bulk, "read": rep.Read,
	} {
		if p.Errors != 0 {
			t.Errorf("%s phase: %d errors, last: %s", name, p.Errors, p.LastError)
		}
		if p.RequestsPerSec <= 0 {
			t.Errorf("%s phase: zero throughput", name)
		}
	}
	if rep.PerCall.UpdatesPerSec <= 0 || rep.Bulk.UpdatesPerSec <= 0 {
		t.Error("ingest throughput not recorded")
	}
	// Even the smoke run should show bulk beating per-call; the full run
	// enforces the acceptance threshold.
	if rep.BulkSpeedup < 1 {
		t.Errorf("bulk ingest slower than per-call: %.2fx", rep.BulkSpeedup)
	}
	if full {
		if rep.Scenarios < 1000 {
			t.Errorf("full run hosted %d scenarios, want >= 1000", rep.Scenarios)
		}
		if rep.BulkSpeedup < 10 {
			t.Errorf("bulk speedup %.1fx, want >= 10x", rep.BulkSpeedup)
		}
	}

	if out != "" {
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("bench report written to %s\n", out)
	}
}
