package main

import (
	"net/http/httptest"
	"testing"

	"vnfopt/internal/engine"
)

// TestRoutingEndpointEndToEnd drives the capacity-aware routing surface
// over HTTP: create a scenario with routing enabled, read the admission
// report, step an epoch, and watch the report and the Prometheus gauges
// track it.
func TestRoutingEndpointEndToEnd(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	spec := map[string]any{
		"id":      "cap",
		"k":       4,
		"sfc_len": 2,
		"flows":   12,
		"seed":    7,
		"routing": map[string]any{"link_capacity": 100000, "classify": true},
	}
	var created struct {
		ID       string           `json:"id"`
		Snapshot *engine.Snapshot `json:"snapshot"`
	}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, &created); code != 201 {
		t.Fatalf("create: %d", code)
	}
	if created.Snapshot.Routing == nil {
		t.Fatal("created snapshot has no routing summary")
	}
	if created.Snapshot.Routing.Admitted != 12 || created.Snapshot.Routing.Rejected != 0 {
		t.Fatalf("initial admission %+v, want 12/0", created.Snapshot.Routing)
	}

	var rep struct {
		ID      string                `json:"id"`
		Routing *engine.RoutingReport `json:"routing"`
	}
	if code := do(t, ts, "GET", "/v1/scenarios/cap/routing", nil, &rep); code != 200 {
		t.Fatalf("routing get: %d", code)
	}
	if rep.Routing == nil || rep.Routing.Epoch != 0 {
		t.Fatalf("initial report %+v", rep.Routing)
	}
	if len(rep.Routing.Decisions) != 12 {
		t.Fatalf("%d decisions, want 12", len(rep.Routing.Decisions))
	}
	if len(rep.Routing.Links) == 0 || rep.Routing.MaxUtilization <= 0 {
		t.Fatalf("no link utilization in report: %+v", rep.Routing)
	}

	var step engine.StepResult
	if code := do(t, ts, "POST", "/v1/scenarios/cap/step", nil, &step); code != 200 {
		t.Fatalf("step: %d", code)
	}
	if step.Routing == nil {
		t.Fatal("step result has no routing summary")
	}
	if code := do(t, ts, "GET", "/v1/scenarios/cap/routing", nil, &rep); code != 200 {
		t.Fatalf("routing get: %d", code)
	}
	if rep.Routing.Epoch != 1 {
		t.Fatalf("report epoch %d after step, want 1", rep.Routing.Epoch)
	}

	prom := promSnapshot(t, ts)
	if got := prom[`vnfopt_sfcroute_admitted{scenario="cap"}`]; got != 12 {
		t.Fatalf("admitted gauge %v, want 12", got)
	}
	if got := prom[`vnfopt_link_utilization{scenario="cap"}`]; got != rep.Routing.MaxUtilization {
		t.Fatalf("utilization gauge %v, report says %v", got, rep.Routing.MaxUtilization)
	}
	if _, ok := prom[`vnfopt_sfcroute_rejected{scenario="cap"}`]; !ok {
		t.Fatal("rejected gauge not exported")
	}
}

// TestRoutingEndpointRejections pins the over-capacity path over HTTP: a
// fabric provisioned far below the offered load must reject flows and
// say why.
func TestRoutingEndpointRejections(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	spec := map[string]any{
		"id":      "tight",
		"k":       4,
		"sfc_len": 2,
		"pairs": []map[string]any{
			{"src": 0, "dst": 8, "rate": 90},
			{"src": 1, "dst": 9, "rate": 90},
			{"src": 2, "dst": 10, "rate": 90},
			{"src": 3, "dst": 11, "rate": 90},
		},
		"routing": map[string]any{"link_capacity": 100, "classify": true},
	}
	if code := do(t, ts, "POST", "/v1/scenarios", spec, nil); code != 201 {
		t.Fatalf("create: %d", code)
	}
	var rep struct {
		Routing *engine.RoutingReport `json:"routing"`
	}
	if code := do(t, ts, "GET", "/v1/scenarios/tight/routing", nil, &rep); code != 200 {
		t.Fatalf("routing get: %d", code)
	}
	if rep.Routing.Rejected == 0 {
		t.Fatalf("no rejections at 3.6× overload: %+v", rep.Routing)
	}
	if len(rep.Routing.RejectReasons) == 0 {
		t.Fatal("rejections carry no reasons")
	}
	for _, d := range rep.Routing.Decisions {
		if !d.Admitted && d.Reason == "" {
			t.Fatalf("rejected flow %d has empty reason", d.Flow)
		}
	}
}

// TestRoutingEndpointDisabled: scenarios without spec.routing 404 on the
// routing resource, and a bad routing config fails scenario creation.
func TestRoutingEndpointDisabled(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	if code := do(t, ts, "POST", "/v1/scenarios", map[string]any{"id": "plain", "flows": 4}, nil); code != 201 {
		t.Fatalf("create: %d", code)
	}
	if code := do(t, ts, "GET", "/v1/scenarios/plain/routing", nil, nil); code != 404 {
		t.Fatalf("routing on plain scenario: %d, want 404", code)
	}
	if code := do(t, ts, "GET", "/v1/scenarios/ghost/routing", nil, nil); code != 404 {
		t.Fatalf("routing on missing scenario: %d, want 404", code)
	}
	bad := map[string]any{"id": "bad", "routing": map[string]any{"link_capacity": -5}}
	if code := do(t, ts, "POST", "/v1/scenarios", bad, nil); code != 422 {
		t.Fatalf("negative capacity accepted: %d", code)
	}
}
