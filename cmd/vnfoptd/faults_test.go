package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"vnfopt/internal/engine"
	"vnfopt/internal/fault"
	"vnfopt/internal/obs"
	"vnfopt/internal/topology"
)

// TestFaultInjectionEndToEnd is the acceptance path for the resilience
// surface: kill the switch hosting a VNF through POST /faults, observe
// the repair migration in the response, the event ring, and /metrics,
// watch /readyz flip to 503, then heal and watch it recover.
func TestFaultInjectionEndToEnd(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var created struct {
		ID       string          `json:"id"`
		Snapshot engine.Snapshot `json:"snapshot"`
	}
	do(t, ts, "POST", "/v1/scenarios", ScenarioSpec{Name: "chaos", Flows: 24, Seed: 5}, &created)
	if code := do(t, ts, "GET", "/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz before faults: %d", code)
	}

	victim := created.Snapshot.Placement[0]
	var res engine.FaultResult
	code := do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/faults", created.ID),
		faultsRequest{Inject: []fault.Fault{{Kind: fault.Switch, U: victim}}}, &res)
	if code != http.StatusOK {
		t.Fatalf("inject: %d", code)
	}
	if !res.Degraded || res.Repair == nil || res.Repair.Moves < 1 {
		t.Fatalf("killing a hosting switch must repair-migrate: %+v", res)
	}

	var snap engine.Snapshot
	do(t, ts, "GET", fmt.Sprintf("/v1/scenarios/%s/placement", created.ID), nil, &snap)
	if !snap.Degraded || snap.ActiveFaults != 1 {
		t.Fatalf("snapshot not degraded: %+v", snap)
	}
	for _, s := range snap.Placement {
		if s == victim {
			t.Fatalf("placement still on dead switch %d", victim)
		}
	}

	// Readiness reflects degraded mode with the scenario id.
	var ready struct {
		Ready    bool     `json:"ready"`
		Degraded []string `json:"degraded"`
	}
	if code := do(t, ts, "GET", "/readyz", nil, &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: %d", code)
	}
	if ready.Ready || len(ready.Degraded) != 1 || ready.Degraded[0] != created.ID {
		t.Fatalf("readyz body: %+v", ready)
	}

	// The repair is visible in the event ring…
	var events struct {
		Events []obs.Event `json:"events"`
	}
	do(t, ts, "GET", fmt.Sprintf("/v1/scenarios/%s/events", created.ID), nil, &events)
	saw := map[string]bool{}
	for _, ev := range events.Events {
		saw[ev.Type] = true
	}
	if !saw["fault_injected"] || !saw["repair"] {
		t.Fatalf("events missing fault_injected/repair: %v", saw)
	}

	// …and in the Prometheus exposition.
	prom := promSnapshot(t, ts)
	label := fmt.Sprintf("{scenario=%q}", created.ID)
	if prom["vnfopt_engine_degraded"+label] != 1 {
		t.Fatalf("degraded gauge: %v", prom["vnfopt_engine_degraded"+label])
	}
	if prom["vnfopt_engine_repairs_total"+label] != 1 {
		t.Fatalf("repairs counter: %v", prom["vnfopt_engine_repairs_total"+label])
	}

	// GET /faults reports the active set and the unserved flows.
	var fstate struct {
		Active   []fault.Fault        `json:"active"`
		Degraded bool                 `json:"degraded"`
		Unserved []fault.UnservedFlow `json:"unserved"`
	}
	do(t, ts, "GET", fmt.Sprintf("/v1/scenarios/%s/faults", created.ID), nil, &fstate)
	if !fstate.Degraded || len(fstate.Active) != 1 || fstate.Active[0].U != victim {
		t.Fatalf("faults state: %+v", fstate)
	}

	// Heal: readiness recovers.
	code = do(t, ts, "POST", fmt.Sprintf("/v1/scenarios/%s/faults", created.ID),
		faultsRequest{Heal: []fault.Fault{{Kind: fault.Switch, U: victim}}}, &res)
	if code != http.StatusOK || res.Degraded {
		t.Fatalf("heal: code=%d res=%+v", code, res)
	}
	if code := do(t, ts, "GET", "/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz after heal: %d", code)
	}
	if prom := promSnapshot(t, ts); prom["vnfopt_engine_degraded"+label] != 0 {
		t.Fatal("degraded gauge not cleared after heal")
	}
}

func TestFaultsEndpointErrors(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var created struct {
		ID string `json:"id"`
	}
	do(t, ts, "POST", "/v1/scenarios", ScenarioSpec{Flows: 8, SFCLen: 3}, &created)
	path := fmt.Sprintf("/v1/scenarios/%s/faults", created.ID)

	var env errorEnvelope
	// Unknown scenario.
	if code := do(t, ts, "POST", "/v1/scenarios/nope/faults", faultsRequest{}, &env); code != http.StatusNotFound {
		t.Fatalf("unknown scenario: %d", code)
	}
	// Invalid fault.
	if code := do(t, ts, "POST", path, faultsRequest{Inject: []fault.Fault{{Kind: fault.Switch, U: -1}}}, &env); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid fault: %d (%+v)", 0, env)
	}
	// Healing an inactive fault.
	if code := do(t, ts, "POST", path, faultsRequest{Heal: []fault.Fault{{Kind: fault.Switch, U: 0}}}, &env); code != http.StatusUnprocessableEntity {
		t.Fatalf("heal inactive: %+v", env)
	}
	// Infeasible transition: kill every switch → 503 unavailable, state
	// untouched. The default spec is a k=4 fat tree, so its switch list
	// is reproducible here.
	var kill []fault.Fault
	for _, s := range topology.MustFatTree(4, nil).Switches {
		kill = append(kill, fault.Fault{Kind: fault.Switch, U: s})
	}
	if code := do(t, ts, "POST", path, faultsRequest{Inject: kill}, &env); code != http.StatusServiceUnavailable {
		t.Fatalf("infeasible inject: %+v", env)
	}
	if env.Error.Code != codeUnavailable {
		t.Fatalf("error code %q, want unavailable", env.Error.Code)
	}
	var fstate struct {
		Active []fault.Fault `json:"active"`
	}
	do(t, ts, "GET", path, nil, &fstate)
	if len(fstate.Active) != 0 {
		t.Fatalf("rejected transition left faults active: %v", fstate.Active)
	}
}

// TestSnapshotTornWriteSafety simulates crash debris around the snapshot
// file: a stale, corrupt temp file must never shadow or corrupt the real
// snapshot, and a failed write must leave the previous snapshot intact.
func TestSnapshotTornWriteSafety(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/state.json"

	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var created struct {
		ID string `json:"id"`
	}
	do(t, ts, "POST", "/v1/scenarios", ScenarioSpec{Flows: 8}, &created)

	// Crash debris: a torn temp file from a previous attempt.
	if err := os.WriteFile(path+".tmp", []byte(`[{"id":"torn"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.saveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after successful save")
	}
	srv2 := newServer()
	if _, _, err := srv2.loadSnapshot(path); err != nil {
		t.Fatalf("snapshot unreadable after save over torn temp: %v", err)
	}
	if srv2.get(created.ID) == nil {
		t.Fatal("scenario lost")
	}

	// A failed write (parent is a file, so the temp cannot be created)
	// leaves the existing snapshot byte-identical.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bogus := dir + "/notadir/state.json"
	if err := os.WriteFile(dir+"/notadir", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.saveSnapshotRetry(bogus, 2, time.Millisecond); err == nil {
		t.Fatal("save into non-directory should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save mutated the existing snapshot")
	}
}

// TestRequestBodyBounded checks the MaxBytesReader guard: a body past the
// limit is rejected as a bad request instead of being buffered.
func TestRequestBodyBounded(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	huge := bytes.Repeat([]byte("a"), maxBodyBytes+1024)
	resp, err := ts.Client().Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: %d, want 400", resp.StatusCode)
	}
}

// TestDegradeFaultAPI drives the degrade action through the HTTP
// surface: inject with a factor, observe the weight-delta metrics and
// active set (factor echoed), heal naming only the link, and reject
// malformed factors with 422.
func TestDegradeFaultAPI(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var created struct {
		ID string `json:"id"`
	}
	do(t, ts, "POST", "/v1/scenarios", ScenarioSpec{Name: "soft", Flows: 16, Seed: 3}, &created)
	path := fmt.Sprintf("/v1/scenarios/%s/faults", created.ID)

	// The default spec is a k=4 fat tree; vertex 0 is a switch with
	// links. Find one of its links from the topology for a stable target.
	topo := topology.MustFatTree(4, nil)
	u := topo.Switches[0]
	v := topo.Graph.Neighbors(u)[0].To

	var res engine.FaultResult
	code := do(t, ts, "POST", path,
		faultsRequest{Inject: []fault.Fault{{Kind: fault.Degrade, U: u, V: v, Factor: 4}}}, &res)
	if code != http.StatusOK {
		t.Fatalf("degrade inject: %d", code)
	}
	if !res.Degraded || res.Injected != 1 || len(res.Unserved) != 0 {
		t.Fatalf("degrade transition: %+v", res)
	}

	// Active set echoes the factor.
	var fstate struct {
		Active []fault.Fault `json:"active"`
	}
	do(t, ts, "GET", path, nil, &fstate)
	if len(fstate.Active) != 1 || fstate.Active[0].Kind != fault.Degrade || fstate.Active[0].Factor != 4 {
		t.Fatalf("active set: %+v", fstate.Active)
	}

	// The transition ran the weight-delta APSP path, visible in the
	// process-wide exposition.
	prom := promSnapshot(t, ts)
	if prom["vnfopt_apsp_weight_deltas"] < 1 {
		t.Fatalf("vnfopt_apsp_weight_deltas = %v, want >= 1", prom["vnfopt_apsp_weight_deltas"])
	}

	// Heal names the link only; no factor needed.
	code = do(t, ts, "POST", path,
		faultsRequest{Heal: []fault.Fault{{Kind: fault.Degrade, U: u, V: v}}}, &res)
	if code != http.StatusOK || res.Degraded || res.Healed != 1 {
		t.Fatalf("degrade heal: code=%d res=%+v", code, res)
	}

	// Bad factor → 422, nothing applied.
	var env errorEnvelope
	if code := do(t, ts, "POST", path,
		faultsRequest{Inject: []fault.Fault{{Kind: fault.Degrade, U: u, V: v, Factor: -2}}}, &env); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad factor: %d", code)
	}
	do(t, ts, "GET", path, nil, &fstate)
	if len(fstate.Active) != 0 {
		t.Fatalf("rejected degrade left faults active: %v", fstate.Active)
	}
}
