package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vnfopt/internal/engine"
	"vnfopt/internal/failfs"
	"vnfopt/internal/fault"
	"vnfopt/internal/graph"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/obs"
	"vnfopt/internal/placement"
	"vnfopt/internal/shard"
	"vnfopt/internal/stroll"
	"vnfopt/internal/topology"
	"vnfopt/internal/wal"
	"vnfopt/internal/workload"
)

// PairSpec is one explicit flow of a scenario: host *indices* into the
// fabric's host list (not raw vertex ids), plus the initial rate.
type PairSpec struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Rate float64 `json:"rate"`
}

// ScenarioSpec is the POST /v1/scenarios request body. Flows come either
// explicitly (Pairs) or generated (Flows/TenantRacks/Seed); State resumes
// a previously captured engine state on top of the same spec.
type ScenarioSpec struct {
	// ID optionally names the scenario; it must be unique among live
	// scenarios (409 conflict otherwise). Empty lets the server assign
	// s1, s2, …
	ID string `json:"id,omitempty"`
	// Name is an optional label echoed in listings and metrics.
	Name string `json:"name"`
	// Topology is "fat-tree" (default) or "leaf-spine".
	Topology string `json:"topology"`
	// K is the fat-tree arity (default 4).
	K int `json:"k"`
	// Leaves/Spines/HostsPerLeaf shape a leaf-spine fabric (defaults 4/2/4).
	Leaves       int `json:"leaves"`
	Spines       int `json:"spines"`
	HostsPerLeaf int `json:"hosts_per_leaf"`
	// SFCLen is the chain length n (default 3).
	SFCLen int `json:"sfc_len"`
	// Mu is the migration coefficient μ (default 1000).
	Mu float64 `json:"mu"`
	// Pairs are explicit flows; when empty, Flows/TenantRacks/Seed
	// generate a clustered workload.
	Pairs       []PairSpec `json:"pairs"`
	Flows       int        `json:"flows"`
	TenantRacks int        `json:"tenant_racks"`
	Seed        int64      `json:"seed"`
	// Migrator is "mpareto" (default), "layereddp", "exhaustive"
	// (Algorithm 6 seeded with mPareto — exact, small fabrics only), or
	// "nomigration".
	Migrator string `json:"migrator"`
	// NodeBudget caps the exhaustive migrator's search expansions per
	// consult. 0 picks a safe daemon default (500000); < 0 means
	// unlimited (the search can then take O(|V|^n) time — lab use only).
	NodeBudget int `json:"node_budget,omitempty"`
	// SearchWorkers fans the exact branch-and-bound searches across
	// goroutines (engine.WithSearchWorkers semantics: 0 = sequential,
	// > 1 = that many workers, < 0 = GOMAXPROCS). Results are
	// bit-identical to the sequential search at any width.
	SearchWorkers int `json:"search_workers,omitempty"`
	// Policy holds the drift/cooldown/budget knobs.
	Policy engine.Policy `json:"policy"`
	// Routing, when set, enables the capacity-aware SFC routing pass:
	// every epoch re-routes the served flows through the committed chain
	// against link capacity, reported at GET /v1/scenarios/{id}/routing
	// and via the vnfopt_sfcroute_* / vnfopt_link_utilization metrics.
	Routing *engine.RoutingConfig `json:"routing,omitempty"`
	// State, when set, resumes a scenario from a saved engine state.
	State json.RawMessage `json:"state,omitempty"`
}

// buildEngine materializes a spec into a running engine. reg and o may
// be nil, disabling solver/engine instrumentation respectively.
func buildEngine(spec *ScenarioSpec, reg *obs.Registry, o *engine.Observer) (*engine.Engine, error) {
	if spec.Topology == "" {
		spec.Topology = "fat-tree"
	}
	var (
		topo *topology.Topology
		err  error
	)
	switch spec.Topology {
	case "fat-tree":
		if spec.K == 0 {
			spec.K = 4
		}
		topo, err = topology.FatTree(spec.K, nil)
	case "leaf-spine":
		if spec.Leaves == 0 {
			spec.Leaves = 4
		}
		if spec.Spines == 0 {
			spec.Spines = 2
		}
		if spec.HostsPerLeaf == 0 {
			spec.HostsPerLeaf = 4
		}
		topo, err = topology.LeafSpine(spec.Leaves, spec.Spines, spec.HostsPerLeaf, nil)
	default:
		return nil, fmt.Errorf("unknown topology %q (want fat-tree or leaf-spine)", spec.Topology)
	}
	if err != nil {
		return nil, err
	}
	d, err := model.New(topo, model.Options{})
	if err != nil {
		return nil, err
	}

	var base model.Workload
	if len(spec.Pairs) > 0 {
		hosts := topo.Hosts
		base = make(model.Workload, len(spec.Pairs))
		for i, p := range spec.Pairs {
			if p.Src < 0 || p.Src >= len(hosts) || p.Dst < 0 || p.Dst >= len(hosts) {
				return nil, fmt.Errorf("pair %d: host index out of range [0,%d)", i, len(hosts))
			}
			base[i] = model.VMPair{Src: hosts[p.Src], Dst: hosts[p.Dst], Rate: p.Rate}
		}
	} else {
		if spec.Flows == 0 {
			spec.Flows = 50
		}
		if spec.TenantRacks == 0 {
			spec.TenantRacks = 4
		}
		rng := rand.New(rand.NewSource(spec.Seed))
		base, err = workload.PairsClustered(topo, spec.Flows, spec.TenantRacks, workload.DefaultIntraRack, rng)
		if err != nil {
			return nil, err
		}
		for i := range base {
			base[i].Rate = workload.Rate(rng)
		}
	}

	if spec.SFCLen == 0 {
		spec.SFCLen = 3
	}
	if spec.Mu == 0 {
		spec.Mu = 1000
	}
	var mig migration.Migrator
	switch strings.ToLower(spec.Migrator) {
	case "", "mpareto":
		spec.Migrator = "mpareto"
		mig = migration.MPareto{}
	case "layereddp":
		mig = migration.LayeredDP{}
	case "exhaustive":
		budget := spec.NodeBudget
		switch {
		case budget == 0:
			budget = 500_000 // bound a live daemon's consult latency by default
		case budget < 0:
			budget = 0 // explicit opt-in to an unlimited search
		}
		mig = migration.Exhaustive{NodeBudget: budget, Seed: migration.MPareto{}, Workers: spec.SearchWorkers}
	case "nomigration":
		mig = migration.NoMigration{}
	default:
		return nil, fmt.Errorf("unknown migrator %q (want mpareto, layereddp, exhaustive, or nomigration)", spec.Migrator)
	}

	var placer placement.Solver = placement.DP{}
	if reg != nil {
		// Solver-level wrappers: every TOP/TOM call is timed under a
		// per-algorithm label, independent of which scenario made it.
		placer = obs.InstrumentedSolver{Inner: placer, M: obs.NewSolverMetrics(reg, placer.Name())}
		mig = obs.InstrumentedMigrator{Inner: mig, M: obs.NewMigratorMetrics(reg, mig.Name())}
	}
	cfg := engine.Config{
		PPDC:     d,
		SFC:      model.NewSFC(spec.SFCLen),
		Base:     base,
		Mu:       spec.Mu,
		Placer:   placer,
		Migrator: mig,
		Policy:   spec.Policy,
		Routing:  spec.Routing,
		Observer: o,
		// The Exhaustive migrator above already carries Workers (the
		// instrumentation wrapper hides WorkerTunable from the engine);
		// SearchWorkers still reaches any WorkerTunable placer/migrator
		// configured without wrappers.
		SearchWorkers: spec.SearchWorkers,
	}
	if len(spec.State) > 0 {
		return engine.ResumeJSON(cfg, spec.State)
	}
	return engine.New(cfg)
}

// scenario is one hosted engine plus the actor that owns it: every
// mutating call (ingest, step, faults, state reads that must order
// after queued writes) is a command in the actor's bounded mailbox,
// executed by the scenario's run loop. Snapshot reads bypass the actor
// entirely via the engine's lock-free atomic pointer.
type scenario struct {
	ID      string        `json:"id"`
	Spec    *ScenarioSpec `json:"spec"`
	Created time.Time     `json:"created"`

	eng    *engine.Engine
	events *obs.EventLog
	actor  *shard.Actor

	// wal is the scenario's write-ahead log (nil with -wal unset).
	// walSeq is the seq of the last command appended for this scenario:
	// written only from the actor (appendWAL) or before the scenario is
	// published, read via actor.Do — or directly once the actor has
	// drained (snapshot-at-shutdown). walGen identifies the log's
	// incarnation (see walMeta); immutable once the scenario is
	// published, stamped into every snapshot so boot can refuse to replay
	// a log against a snapshot it does not extend.
	wal    *wal.Log
	walSeq uint64
	walGen string
}

// status classifies the scenario for the list filter.
func (sc *scenario) status() string {
	if sc.eng.Snapshot().Degraded {
		return "degraded"
	}
	return "active"
}

// defaultMailboxCap bounds each scenario's command queue: deep enough
// that bulk ingest pipelines batches ahead of the run loop, shallow
// enough that a stuck consumer surfaces as 429 backpressure instead of
// unbounded memory.
const defaultMailboxCap = 1024

// server is the vnfoptd control plane: a copy-on-write registry of
// scenario shards behind an HTTP/JSON API, plus the process-wide
// metrics registry every scenario publishes into. Request-path lookups
// (Get/Range) never take a lock; createMu serializes only scenario
// creation (id assignment + duplicate check).
type server struct {
	scenarios *shard.Map[*scenario]

	createMu sync.Mutex
	nextID   int // guarded by createMu

	start      time.Time
	mailboxCap int
	// scenarioMetrics controls the per-scenario engine observer. On by
	// default; fleets of thousands of scenarios (the load harness) turn
	// it off to keep the registry's per-scenario series cardinality from
	// dominating the run.
	scenarioMetrics bool

	// fs is the filesystem seam for everything durable (WAL segments,
	// snapshot files). Production uses failfs.OS; the crash-injection
	// suite swaps in a failfs.Faulty.
	fs failfs.FS
	// walDir is the WAL root ("" = durability off); each scenario logs
	// under walDir/<escaped-id>/. walOpts carries the fsync policy and
	// segment size for every scenario log.
	walDir     string
	walOpts    wal.Options
	walMetrics *wal.Metrics
	// recovering gates /v1 and /readyz while the boot-time snapshot load
	// + WAL replay runs; cleared by recoverState.
	recovering atomic.Bool
	// snapMu serializes snapshot+anchor cycles (periodic loop vs
	// shutdown), so compaction can never race a concurrent snapshot into
	// anchoring past what the older snapshot file covers.
	snapMu sync.Mutex

	reg       *obs.Registry
	rejected  *obs.Counter // mailbox-full 429s
	log       *slog.Logger
	pprofOpen bool
}

func newServer() *server {
	s := &server{
		scenarios:       shard.NewMap[*scenario](),
		start:           time.Now(),
		mailboxCap:      defaultMailboxCap,
		scenarioMetrics: true,
		fs:              failfs.OS,
		reg:             obs.NewRegistry(),
		log:             slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	s.walMetrics = wal.NewMetrics(s.reg)
	s.rejected = s.reg.Counter("vnfoptd_mailbox_rejected_total")
	s.reg.GaugeFunc("vnfoptd_uptime_seconds", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.reg.GaugeFunc("vnfoptd_scenarios", func() float64 {
		return float64(s.scenarios.Len())
	})
	// Aggregate mailbox depth across every scenario shard: per-scenario
	// depth series would multiply cardinality by the fleet size, and the
	// signal that matters operationally is "is the control plane keeping
	// up" — the sum.
	s.reg.GaugeFunc("vnfoptd_mailbox_depth", func() float64 {
		depth := 0
		s.scenarios.Range(func(_ string, sc *scenario) bool {
			depth += sc.actor.Depth()
			return true
		})
		return float64(depth)
	})
	// Process-wide search effort: the branch-and-bound engines batch their
	// expansion counts into package totals; publish them as callback
	// gauges so exposition always reads the live value.
	s.reg.GaugeFunc(`vnfopt_search_expansions_total{search="stroll"}`, func() float64 {
		return float64(stroll.SearchExpansions())
	})
	s.reg.GaugeFunc(`vnfopt_search_expansions_total{search="placement"}`, func() float64 {
		return float64(placement.SearchExpansions())
	})
	s.reg.GaugeFunc(`vnfopt_search_expansions_total{search="migration"}`, func() float64 {
		return float64(migration.SearchExpansions())
	})
	apsp := s.reg.Histogram("vnfopt_apsp_build_seconds")
	apspVerts := s.reg.Gauge("vnfopt_apsp_vertices")
	graph.SetAPSPObserver(func(vertices, edges, workers int, elapsed time.Duration) {
		apsp.Observe(elapsed.Seconds())
		apspVerts.Set(float64(vertices))
	})
	// Incremental APSP updates: wall time per delta, how many Dijkstra
	// sources the last transition actually re-ran — the live view of the
	// dirty-source optimisation doing its job — and per-kind counters so
	// fault-transition deltas (inject/heal) and weight deltas (degrade,
	// epoch re-pricing) are distinguishable in exposition.
	apspDelta := s.reg.Histogram("vnfopt_apsp_delta_seconds")
	apspDirty := s.reg.Gauge("vnfopt_apsp_dirty_sources")
	apspFaultDeltas := s.reg.Counter("vnfopt_apsp_fault_deltas")
	apspWeightDeltas := s.reg.Counter("vnfopt_apsp_weight_deltas")
	graph.SetAPSPDeltaObserver(func(kind graph.DeltaKind, vertices, dirty, workers int, elapsed time.Duration) {
		apspDelta.Observe(elapsed.Seconds())
		apspDirty.Set(float64(dirty))
		switch kind {
		case graph.DeltaWeight:
			apspWeightDeltas.Inc()
		case graph.DeltaFault:
			apspFaultDeltas.Inc()
		case graph.DeltaMixed:
			// A mixed transition exercised both classifiers.
			apspWeightDeltas.Inc()
			apspFaultDeltas.Inc()
		}
	})
	return s
}

// newScenario wraps an engine into a scenario shard with a running
// actor. A panic escaping a command is contained by the actor; it is
// logged and counted here so it stays visible.
func (s *server) newScenario(id string, spec *ScenarioSpec, eng *engine.Engine, events *obs.EventLog) *scenario {
	sc := &scenario{
		ID: id, Spec: spec, Created: time.Now(),
		eng: eng, events: events,
		actor: shard.NewActor(s.mailboxCap),
	}
	panics := s.reg.Counter("vnfoptd_actor_panics_total")
	sc.actor.OnPanic = func(v any) {
		panics.Inc()
		s.log.Error("scenario command panicked", slog.String("scenario", id), slog.Any("panic", v))
	}
	return sc
}

// buildScenario materializes a spec into a registered-but-unpublished
// scenario shard: engine + observer + actor. Shared by live create,
// snapshot load, and WAL replay so all three produce identical shards.
func (s *server) buildScenario(id string, spec *ScenarioSpec) (*scenario, error) {
	events := obs.NewEventLog(0)
	var o *engine.Observer
	if s.scenarioMetrics {
		o = engine.NewObserver(s.reg, events, id)
	}
	eng, err := buildEngine(spec, s.reg, o)
	if err != nil {
		return nil, err
	}
	return s.newScenario(id, spec, eng, events), nil
}

// handler builds the route table (Go 1.22 pattern mux). Every route is
// wrapped in the request middleware (metrics + structured log); the /v1
// surface is additionally gated on boot-time recovery — until the
// snapshot is loaded and every WAL replayed, scenario state is
// incomplete and nothing may read or (worse) mutate it.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	gated := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if s.recovering.Load() {
				w.Header().Set("Retry-After", "1")
				writeError(w, codeUnavailable, "server is recovering (snapshot load / wal replay in progress)")
				return
			}
			h(w, r)
		}
	}
	route("GET /healthz", s.handleHealth)
	route("GET /readyz", s.handleReady)
	route("GET /metrics", s.handleMetrics)
	route("POST /v1/scenarios", gated(s.handleCreate))
	route("GET /v1/scenarios", gated(s.handleList))
	route("DELETE /v1/scenarios/{id}", gated(s.handleDelete))
	route("POST /v1/scenarios/{id}/rates", gated(s.handleRates))
	route("POST /v1/scenarios/{id}/rates:bulk", gated(s.handleRatesBulk))
	route("POST /v1/scenarios/{id}/step", gated(s.handleStep))
	route("POST /v1/scenarios/{id}/faults", gated(s.handleFaults))
	route("GET /v1/scenarios/{id}/faults", gated(s.handleFaultsGet))
	route("GET /v1/scenarios/{id}/placement", gated(s.handlePlacement))
	route("GET /v1/scenarios/{id}/routing", gated(s.handleRouting))
	route("GET /v1/scenarios/{id}/state", gated(s.handleState))
	route("GET /v1/scenarios/{id}/metrics", gated(s.handleScenarioMetrics))
	route("GET /v1/scenarios/{id}/events", gated(s.handleEvents))
	if s.pprofOpen {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// get resolves a scenario id lock-free.
func (s *server) get(id string) *scenario {
	sc, _ := s.scenarios.Get(id)
	return sc
}

// writeActorErr maps a failed command offer to its HTTP answer and
// reports whether err was non-nil. A full mailbox is backpressure (429
// + Retry-After); a closed actor means the scenario was deleted while
// the request held a reference to it (404, same as any other lookup
// miss).
func (s *server) writeActorErr(w http.ResponseWriter, id string, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, shard.ErrMailboxFull):
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, codeResourceExhausted, "scenario %q mailbox full, retry later", id)
	case errors.Is(err, shard.ErrClosed):
		writeError(w, codeNotFound, "scenario %q was deleted", id)
	default:
		writeError(w, codeInternal, "scenario %q: %v", id, err)
	}
	return true
}

// maxBodyBytes bounds every non-streaming JSON request body: a
// well-formed request is a few KB (rate batches scale with flow count,
// never past a few MB), so 8 MiB rejects pathological bodies before the
// decoder buffers them. The NDJSON bulk path is exempt — it streams
// line by line with a per-line bound instead of a body bound.
const maxBodyBytes = 8 << 20

func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec ScenarioSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, codeBadRequest, "bad scenario spec: %v", err)
		return
	}
	// The whole create — id assignment, engine build, insert — runs
	// under createMu, so two concurrent creates with the same explicit
	// id cannot both pass the duplicate check. Creates are rare;
	// serializing them costs nothing, and unlike the old server-wide
	// RWMutex it blocks no lookup: Get/Range read the copy-on-write
	// registry lock-free throughout.
	s.createMu.Lock()
	defer s.createMu.Unlock()
	id := spec.ID
	if id != "" {
		if _, dup := s.scenarios.Get(id); dup {
			writeError(w, codeConflict, "scenario %q already exists", id)
			return
		}
	} else {
		for {
			s.nextID++
			id = fmt.Sprintf("s%d", s.nextID)
			if _, dup := s.scenarios.Get(id); !dup {
				break
			}
		}
	}
	sc, err := s.buildScenario(id, &spec)
	if err != nil {
		writeError(w, codeInvalidArgument, "scenario: %v", err)
		return
	}
	// Durability handshake: the create record must be on disk before the
	// scenario is published or the 201 sent. The scenario is not yet
	// reachable, so appending outside its actor is safe.
	if s.walEnabled() {
		l, err := s.openScenarioWAL(id)
		if err == nil {
			sc.wal = l
			sc.walGen = newWALGen()
			// Meta before the first record: recovery refuses records it
			// cannot tie to a generation.
			if err = s.writeWALMeta(id, walMeta{Gen: sc.walGen}); err == nil {
				var payload []byte
				if payload, err = json.Marshal(walCreate{ID: id, Spec: &spec}); err == nil {
					err = sc.appendWAL(wal.TypeCreate, payload)
				}
			}
		}
		if err != nil {
			if sc.wal != nil {
				sc.wal.Close()
			}
			_ = s.dropWALDir(id)
			sc.actor.Close()
			writeError(w, codeInternal, "scenario %q: wal: %v", id, err)
			return
		}
	}
	s.scenarios.Insert(id, sc)
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":       id,
		"flows":    sc.eng.Flows(),
		"migrator": sc.eng.MigratorName(),
		"snapshot": sc.eng.Snapshot(),
	})
}

// handleList serves the scenario listing with pagination and an
// optional status filter:
//
//	GET /v1/scenarios?limit=50&offset=100&status=degraded
//
// The envelope is {"scenarios": [...], "total": N, "limit": L,
// "offset": O}: total counts the scenarios matching the filter before
// pagination, so a client can page through a live fleet; limit ≤ 0 (or
// absent) returns everything from offset on.
func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, offset := 0, 0
	var err error
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, codeBadRequest, "bad limit %q", v)
			return
		}
	}
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			writeError(w, codeBadRequest, "bad offset %q", v)
			return
		}
	}
	status := q.Get("status")
	if status != "" && status != "active" && status != "degraded" {
		writeError(w, codeBadRequest, "bad status %q (want active or degraded)", status)
		return
	}

	ids := s.scenarios.Keys()
	matched := make([]*scenario, 0, len(ids))
	for _, id := range ids {
		sc := s.get(id)
		if sc == nil {
			continue
		}
		if status != "" && sc.status() != status {
			continue
		}
		matched = append(matched, sc)
	}
	total := len(matched)
	if offset > len(matched) {
		matched = nil
	} else {
		matched = matched[offset:]
	}
	if limit > 0 && limit < len(matched) {
		matched = matched[:limit]
	}
	out := make([]map[string]any, 0, len(matched))
	for _, sc := range matched {
		out = append(out, map[string]any{
			"id":       sc.ID,
			"name":     sc.Spec.Name,
			"created":  sc.Created,
			"status":   sc.status(),
			"snapshot": sc.eng.Snapshot(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scenarios": out,
		"total":     total,
		"limit":     limit,
		"offset":    offset,
	})
}

// handleDelete removes the scenario from the registry (new requests see
// 404 immediately) and then drains its mailbox: commands already
// accepted still run, their waiting callers get answers, and only then
// is the deletion acknowledged. With a WAL, the scenario's log
// directory is retired after the drain — rename first (the atomic
// commit point; a crash mid-delete is swept at boot, never replayed
// back to life), then collect.
func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sc, ok := s.scenarios.Delete(id)
	if !ok {
		if s.retryWALDelete(w, id) {
			return
		}
		writeError(w, codeNotFound, "no scenario %q", id)
		return
	}
	drained := sc.actor.Depth()
	sc.actor.Close()
	if sc.wal != nil {
		sc.wal.Close()
		if err := s.dropWALDir(id); err != nil {
			// The scenario is gone from the registry but its log survived:
			// the next boot would resurrect it. A 200 here would
			// acknowledge a deletion that is not durable — answer 500 and
			// let the client retry (retryWALDelete finishes the job).
			s.log.Error("wal delete", slog.String("scenario", id), slog.Any("err", err))
			writeError(w, codeInternal, "scenario %q removed but its wal could not be retired (retry the delete): %v", id, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "drained": drained})
}

// retryWALDelete finishes a delete whose earlier attempt removed the
// scenario from the registry but failed to retire its WAL directory
// (and answered 500). If such an orphaned directory exists, retire it
// and acknowledge; reports whether it wrote a response. createMu
// excludes a concurrent re-create of the same id mid-drop.
func (s *server) retryWALDelete(w http.ResponseWriter, id string) bool {
	if !s.walEnabled() {
		return false
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if _, live := s.scenarios.Get(id); live {
		// Re-created since the lookup miss; the caller's 404 would now be
		// wrong, but so would deleting the new scenario's log — let the
		// client retry against the live scenario.
		writeError(w, codeConflict, "scenario %q was re-created, retry", id)
		return true
	}
	if _, err := s.fs.Stat(s.walPath(scenarioDirName(id))); err != nil {
		return false
	}
	if err := s.dropWALDir(id); err != nil {
		writeError(w, codeInternal, "scenario %q: wal: %v", id, err)
		return true
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "drained": 0})
	return true
}

// ratesRequest is the delta-ingest body: a batch of per-flow rate updates,
// optionally stepping the epoch in the same call.
type ratesRequest struct {
	Updates []engine.RateUpdate `json:"updates"`
	// Step closes the epoch right after the ingest when true.
	Step bool `json:"step"`
}

// ingestResponse is the shared response of POST /rates and the bulk
// endpoint: the engine's accepted/coalesced/epoch accounting, plus the
// per-batch breakdown and the optional step result.
type ingestResponse struct {
	engine.IngestResult
	// Batches is the per-batch accounting (bulk endpoint only; the
	// single-call endpoint is one batch by construction).
	Batches []engine.IngestResult `json:"batches,omitempty"`
	// Step is the result of the epoch close requested with the ingest.
	Step *engine.StepResult `json:"step,omitempty"`
}

func (s *server) handleRates(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sc := s.get(id)
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", id)
		return
	}
	var req ratesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, codeBadRequest, "bad rates body: %v", err)
		return
	}
	var (
		resp    ingestResponse
		ingErr  error
		stepErr error
		walErr  error
	)
	err := sc.actor.Do(func() {
		// Append-before-apply: the batch is validated (so it can never
		// poison a replay), logged durably, and only then applied. The
		// step rides in the same command but is its own record.
		if ingErr = sc.eng.ValidateRates(req.Updates); ingErr != nil {
			return
		}
		if walErr = sc.appendWAL(wal.TypeIngest, encodeRates(req.Updates)); walErr != nil {
			return
		}
		resp.IngestResult, ingErr = sc.eng.Ingest(req.Updates)
		if ingErr != nil || !req.Step {
			return
		}
		if walErr = sc.appendWAL(wal.TypeStep, nil); walErr != nil {
			return
		}
		res, err := sc.eng.Step()
		if err != nil {
			stepErr = err
			return
		}
		resp.Step = &res
	})
	switch {
	case s.writeActorErr(w, id, err):
		return
	case ingErr != nil:
		writeError(w, codeInvalidArgument, "%v", ingErr)
		return
	case walErr != nil:
		writeError(w, codeInternal, "scenario %q: wal: %v", id, walErr)
		return
	case stepErr != nil:
		writeError(w, codeInternal, "%v", stepErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// stepResponse is the StepResult plus the shard's queue accounting: how
// many commands were sitting in the mailbox when the step was
// submitted — all of them (ingest batches, fault events) execute before
// the step does, so this is the backlog the epoch close drained.
type stepResponse struct {
	engine.StepResult
	QueueDrained int `json:"queue_drained"`
}

func (s *server) handleStep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sc := s.get(id)
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", id)
		return
	}
	resp := stepResponse{QueueDrained: sc.actor.Depth()}
	var stepErr error
	actorErr, walErr, _ := sc.doWithWAL(nil, wal.TypeStep, func() []byte { return nil }, func() {
		resp.StepResult, stepErr = sc.eng.Step()
	})
	switch {
	case s.writeActorErr(w, id, actorErr):
		return
	case walErr != nil:
		writeError(w, codeInternal, "scenario %q: wal: %v", id, walErr)
		return
	case stepErr != nil:
		writeError(w, codeInternal, "%v", stepErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// faultsRequest is the topology-event body: faults to inject and faults
// to heal, applied as one atomic transition.
type faultsRequest struct {
	Inject []fault.Fault `json:"inject"`
	Heal   []fault.Fault `json:"heal"`
}

// handleFaults applies a topology event to one scenario: the engine
// swaps in the degraded view, replans service, and runs a repair
// migration. An infeasible transition (no surviving placement) is
// rejected with 503 unavailable and leaves the scenario untouched.
func (s *server) handleFaults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sc := s.get(id)
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", id)
		return
	}
	var req faultsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, codeBadRequest, "bad faults body: %v", err)
		return
	}
	var (
		res      *engine.FaultResult
		faultErr error
	)
	ctx := r.Context()
	if sc.wal != nil {
		// A logged fault transition must behave identically on replay,
		// where no client context exists: drop cancellation so "client
		// gave up mid-repair" can never make the log disagree with the
		// engine about whether the transition applied.
		ctx = context.WithoutCancel(ctx)
	}
	// Marshal outside the actor and fail the request on error: appending
	// an unparseable (empty) payload would poison the log — its replay
	// aborts every future recovery.
	payload, err := json.Marshal(walFaults{Inject: req.Inject, Heal: req.Heal})
	if err != nil {
		writeError(w, codeInternal, "scenario %q: wal payload: %v", id, err)
		return
	}
	actorErr, walErr, _ := sc.doWithWAL(nil, wal.TypeFaults, func() []byte { return payload }, func() {
		res, faultErr = sc.eng.ApplyFaults(ctx, req.Inject, req.Heal)
	})
	switch {
	case s.writeActorErr(w, id, actorErr):
		return
	case walErr != nil:
		writeError(w, codeInternal, "scenario %q: wal: %v", id, walErr)
		return
	case errors.Is(faultErr, engine.ErrInfeasible):
		writeError(w, codeUnavailable, "%v", faultErr)
		return
	case faultErr != nil:
		writeError(w, codeInvalidArgument, "%v", faultErr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleFaultsGet reports the scenario's active faults and unserved
// flows.
func (s *server) handleFaultsGet(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	snap := sc.eng.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       sc.ID,
		"active":   sc.eng.Faults(),
		"degraded": snap.Degraded,
		"unserved": sc.eng.Unserved(),
	})
}

// handleHealth is the liveness probe. The build block identifies the
// deployment: module version, VCS revision/time/dirty flag when the
// binary was built from a checkout, and the Go toolchain.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"uptime": time.Since(s.start).String(),
		"build":  buildInfo(),
	})
}

// buildInfo extracts the identifying fields of debug.ReadBuildInfo
// once; test binaries and `go run` builds simply carry fewer fields.
var buildInfo = sync.OnceValue(func() map[string]string {
	out := map[string]string{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, set := range bi.Settings {
		switch set.Key {
		case "vcs.revision":
			out["revision"] = set.Value
		case "vcs.time":
			out["vcs_time"] = set.Value
		case "vcs.modified":
			out["dirty"] = set.Value
		}
	}
	return out
})

// handleReady is the readiness probe: 503 {"status":"recovering"}
// while the boot-time snapshot load / WAL replay runs (scenario state
// is incomplete — routing traffic here would serve stale or partial
// answers), 200 once recovery is done and every scenario serves its
// full fabric, 503 (with the degraded scenario ids) while any is in
// degraded mode. Liveness (/healthz) stays green throughout.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "status": "recovering"})
		return
	}
	var degraded []string
	s.scenarios.Range(func(id string, sc *scenario) bool {
		if sc.eng.Snapshot().Degraded {
			degraded = append(degraded, id)
		}
		return true
	})
	if len(degraded) > 0 {
		sort.Strings(degraded)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "degraded": degraded})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func (s *server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sc.eng.Snapshot())
}

// handleRouting serves the scenario's latest capacity-aware routing
// report: per-flow admission decisions and per-link utilization under the
// committed placement. 404 when the scenario exists but capacity routing
// is not enabled in its spec.
func (s *server) handleRouting(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	rep := sc.eng.RoutingReport()
	if rep == nil {
		writeError(w, codeNotFound, "scenario %q has no capacity routing (set spec.routing)", sc.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": sc.ID, "routing": rep})
}

// handleState serves the durable engine state. It goes through the
// actor so the state a client reads reflects every command it enqueued
// before asking (read-your-writes for a bulk ingest followed by a state
// capture).
func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sc := s.get(id)
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", id)
		return
	}
	var st *engine.State
	err := sc.actor.Do(func() { st = sc.eng.State() })
	if s.writeActorErr(w, id, err) {
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics serves the whole registry in Prometheus text exposition
// format 0.0.4. The per-scenario JSON counters that used to live here
// moved to GET /v1/scenarios/{id}/metrics.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleScenarioMetrics serves one scenario's engine counters as JSON.
func (s *server) handleScenarioMetrics(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      sc.ID,
		"name":    sc.Spec.Name,
		"metrics": sc.eng.Metrics(),
	})
}

// handleEvents serves the scenario's bounded event ring, oldest first.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	events := sc.events.Events()
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     sc.ID,
		"events": events,
		"total":  sc.events.Total(),
	})
}

// closeAll drains every scenario's mailbox and stops its run loop; part
// of graceful shutdown, after the HTTP listener has stopped accepting
// requests and before the final snapshot is captured.
func (s *server) closeAll() {
	s.scenarios.Range(func(_ string, sc *scenario) bool {
		sc.actor.Close()
		return true
	})
}

// closeWALs syncs and closes every scenario's log. Runs after the final
// snapshot (so the shutdown snapshot can still anchor) — the close's
// sync is what makes an interval-policy tail durable on clean shutdown.
func (s *server) closeWALs() {
	s.scenarios.Range(func(id string, sc *scenario) bool {
		if sc.wal != nil {
			if err := sc.wal.Close(); err != nil {
				s.log.Warn("wal close", slog.String("scenario", id), slog.Any("err", err))
			}
		}
		return true
	})
}

// persistedScenario is the on-disk form of one scenario in the daemon's
// snapshot file: the spec with the engine state embedded, so loading is
// exactly a sequence of create-with-state calls. WalSeq is the
// scenario's applied WAL seq at capture time — the replay start point
// and the compaction anchor (0 with the WAL disabled).
type persistedScenario struct {
	ID     string        `json:"id"`
	Spec   *ScenarioSpec `json:"spec"`
	WalSeq uint64        `json:"wal_seq,omitempty"`
	// WalGen is the generation of the log the WalSeq refers to (empty
	// when the snapshot was taken without a WAL — such a snapshot can
	// never be combined with a pre-existing log at boot).
	WalGen string `json:"wal_gen,omitempty"`
}

// saveSnapshot writes every scenario's spec+state to path atomically
// (fsync + rename via the failfs seam), so a crash mid-write never
// tears the snapshot — then anchors each scenario's WAL at the captured
// seq, letting the log drop segments the snapshot now covers.
//
// Capture semantics differ by durability mode. With a WAL, (state,
// walSeq) must be one atomic pair, so the capture runs as an actor
// command; when the actor has already drained (shutdown), the direct
// read is safe because nothing else writes. Without a WAL, state is
// captured directly from the engine (whose own lock serializes against
// the run loop) — a snapshot then cannot be wedged by a stuck command,
// which the WAL-less path keeps as its liveness property.
func (s *server) saveSnapshot(path string) error {
	if s.recovering.Load() {
		// A snapshot taken mid-recovery would capture partially-replayed
		// engines and, worse, anchor (= compact away) log records that
		// the next recovery still needs.
		return fmt.Errorf("snapshot refused: recovery in progress")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	ids := s.scenarios.Keys()
	out := make([]persistedScenario, 0, len(ids))
	anchors := make(map[*scenario]uint64)
	for _, id := range ids {
		sc := s.get(id)
		if sc == nil {
			continue // deleted since the Keys snapshot
		}
		var (
			blob   json.RawMessage
			seq    uint64
			gen    string
			capErr error
		)
		if sc.wal != nil {
			// walGen is immutable after publish; only (state, seq) need
			// the actor's atomicity.
			gen = sc.walGen
			err := sc.actor.Do(func() {
				blob, capErr = sc.eng.MarshalState()
				seq = sc.walSeq
			})
			if errors.Is(err, shard.ErrClosed) {
				// Post-drain: the actor is gone and so are all writers.
				blob, capErr = sc.eng.MarshalState()
				seq = sc.walSeq
			} else if err != nil {
				return fmt.Errorf("scenario %s: %w", id, err)
			}
		} else {
			blob, capErr = sc.eng.MarshalState()
		}
		if capErr != nil {
			return fmt.Errorf("scenario %s: %w", id, capErr)
		}
		spec := *sc.Spec
		spec.State = blob
		out = append(out, persistedScenario{ID: id, Spec: &spec, WalSeq: seq, WalGen: gen})
		if sc.wal != nil {
			anchors[sc] = seq
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := failfs.WriteFileAtomic(s.fs, path, data, 0o644); err != nil {
		return err
	}
	// The snapshot is durable; the logs may now drop what it covers.
	// Compaction failing is not a snapshot failure — the log stays
	// correct, just longer.
	for sc, seq := range anchors {
		if seq == 0 {
			continue
		}
		if err := sc.wal.Anchor(seq); err != nil && !errors.Is(err, wal.ErrClosed) {
			s.log.Warn("wal anchor failed", slog.String("scenario", sc.ID), slog.Any("err", err))
		}
	}
	return nil
}

// loadSnapshot restores scenarios from a snapshot file into the
// registry and returns them by id plus the file's content hash (both
// for the WAL replay that follows — the hash resolves seed-crash
// recovery); a missing file is a clean first boot.
func (s *server) loadSnapshot(path string) (map[string]*scenario, string, error) {
	restored := make(map[string]*scenario)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return restored, "", nil
		}
		return nil, "", err
	}
	var in []persistedScenario
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, "", fmt.Errorf("snapshot %s: %w", path, err)
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	for _, ps := range in {
		sc, err := s.buildScenario(ps.ID, ps.Spec)
		if err != nil {
			return nil, "", fmt.Errorf("snapshot scenario %s: %w", ps.ID, err)
		}
		sc.walSeq = ps.WalSeq
		sc.walGen = ps.WalGen
		if !s.scenarios.Insert(ps.ID, sc) {
			return nil, "", fmt.Errorf("snapshot scenario %s: duplicate id", ps.ID)
		}
		restored[ps.ID] = sc
		s.bumpNextID(ps.ID)
	}
	return restored, snapshotHash(data), nil
}

// bumpNextID advances the auto-id counter past a restored scenario's
// id, so post-recovery creates never collide. Caller holds createMu.
func (s *server) bumpNextID(id string) {
	if n := len(id); n > 1 && id[0] == 's' {
		var num int
		if _, err := fmt.Sscanf(id[1:], "%d", &num); err == nil && num > s.nextID {
			s.nextID = num
		}
	}
}
