package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"vnfopt/internal/engine"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// PairSpec is one explicit flow of a scenario: host *indices* into the
// fabric's host list (not raw vertex ids), plus the initial rate.
type PairSpec struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Rate float64 `json:"rate"`
}

// ScenarioSpec is the POST /v1/scenarios request body. Flows come either
// explicitly (Pairs) or generated (Flows/TenantRacks/Seed); State resumes
// a previously captured engine state on top of the same spec.
type ScenarioSpec struct {
	// Name is an optional label echoed in listings and metrics.
	Name string `json:"name"`
	// Topology is "fat-tree" (default) or "leaf-spine".
	Topology string `json:"topology"`
	// K is the fat-tree arity (default 4).
	K int `json:"k"`
	// Leaves/Spines/HostsPerLeaf shape a leaf-spine fabric (defaults 4/2/4).
	Leaves       int `json:"leaves"`
	Spines       int `json:"spines"`
	HostsPerLeaf int `json:"hosts_per_leaf"`
	// SFCLen is the chain length n (default 3).
	SFCLen int `json:"sfc_len"`
	// Mu is the migration coefficient μ (default 1000).
	Mu float64 `json:"mu"`
	// Pairs are explicit flows; when empty, Flows/TenantRacks/Seed
	// generate a clustered workload.
	Pairs       []PairSpec `json:"pairs"`
	Flows       int        `json:"flows"`
	TenantRacks int        `json:"tenant_racks"`
	Seed        int64      `json:"seed"`
	// Migrator is "mpareto" (default), "layereddp", or "nomigration".
	Migrator string `json:"migrator"`
	// Policy holds the drift/cooldown/budget knobs.
	Policy engine.Policy `json:"policy"`
	// State, when set, resumes a scenario from a saved engine state.
	State json.RawMessage `json:"state,omitempty"`
}

// buildEngine materializes a spec into a running engine.
func buildEngine(spec *ScenarioSpec) (*engine.Engine, error) {
	if spec.Topology == "" {
		spec.Topology = "fat-tree"
	}
	var (
		topo *topology.Topology
		err  error
	)
	switch spec.Topology {
	case "fat-tree":
		if spec.K == 0 {
			spec.K = 4
		}
		topo, err = topology.FatTree(spec.K, nil)
	case "leaf-spine":
		if spec.Leaves == 0 {
			spec.Leaves = 4
		}
		if spec.Spines == 0 {
			spec.Spines = 2
		}
		if spec.HostsPerLeaf == 0 {
			spec.HostsPerLeaf = 4
		}
		topo, err = topology.LeafSpine(spec.Leaves, spec.Spines, spec.HostsPerLeaf, nil)
	default:
		return nil, fmt.Errorf("unknown topology %q (want fat-tree or leaf-spine)", spec.Topology)
	}
	if err != nil {
		return nil, err
	}
	d, err := model.New(topo, model.Options{})
	if err != nil {
		return nil, err
	}

	var base model.Workload
	if len(spec.Pairs) > 0 {
		hosts := topo.Hosts
		base = make(model.Workload, len(spec.Pairs))
		for i, p := range spec.Pairs {
			if p.Src < 0 || p.Src >= len(hosts) || p.Dst < 0 || p.Dst >= len(hosts) {
				return nil, fmt.Errorf("pair %d: host index out of range [0,%d)", i, len(hosts))
			}
			base[i] = model.VMPair{Src: hosts[p.Src], Dst: hosts[p.Dst], Rate: p.Rate}
		}
	} else {
		if spec.Flows == 0 {
			spec.Flows = 50
		}
		if spec.TenantRacks == 0 {
			spec.TenantRacks = 4
		}
		rng := rand.New(rand.NewSource(spec.Seed))
		base, err = workload.PairsClustered(topo, spec.Flows, spec.TenantRacks, workload.DefaultIntraRack, rng)
		if err != nil {
			return nil, err
		}
		for i := range base {
			base[i].Rate = workload.Rate(rng)
		}
	}

	if spec.SFCLen == 0 {
		spec.SFCLen = 3
	}
	if spec.Mu == 0 {
		spec.Mu = 1000
	}
	var mig migration.Migrator
	switch strings.ToLower(spec.Migrator) {
	case "", "mpareto":
		spec.Migrator = "mpareto"
		mig = migration.MPareto{}
	case "layereddp":
		mig = migration.LayeredDP{}
	case "nomigration":
		mig = migration.NoMigration{}
	default:
		return nil, fmt.Errorf("unknown migrator %q (want mpareto, layereddp, or nomigration)", spec.Migrator)
	}

	cfg := engine.Config{
		PPDC:     d,
		SFC:      model.NewSFC(spec.SFCLen),
		Base:     base,
		Mu:       spec.Mu,
		Placer:   placement.DP{},
		Migrator: mig,
		Policy:   spec.Policy,
	}
	if len(spec.State) > 0 {
		return engine.ResumeJSON(cfg, spec.State)
	}
	return engine.New(cfg)
}

// scenario is one hosted engine. The per-scenario mutex serializes step
// and state calls; snapshot reads go straight to the engine's lock-free
// path.
type scenario struct {
	ID      string        `json:"id"`
	Spec    *ScenarioSpec `json:"spec"`
	Created time.Time     `json:"created"`

	mu  sync.Mutex
	eng *engine.Engine
}

// server is the vnfoptd control plane: a registry of scenarios behind an
// HTTP/JSON API.
type server struct {
	mu        sync.RWMutex
	scenarios map[string]*scenario
	nextID    int
	start     time.Time
}

func newServer() *server {
	return &server{scenarios: make(map[string]*scenario), start: time.Now()}
}

// handler builds the route table (Go 1.22 pattern mux).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "uptime": time.Since(s.start).String()})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/scenarios", s.handleCreate)
	mux.HandleFunc("GET /v1/scenarios", s.handleList)
	mux.HandleFunc("DELETE /v1/scenarios/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/scenarios/{id}/rates", s.handleRates)
	mux.HandleFunc("POST /v1/scenarios/{id}/step", s.handleStep)
	mux.HandleFunc("GET /v1/scenarios/{id}/placement", s.handlePlacement)
	mux.HandleFunc("GET /v1/scenarios/{id}/state", s.handleState)
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *server) get(id string) *scenario {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scenarios[id]
}

func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec ScenarioSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad scenario spec: %v", err)
		return
	}
	eng, err := buildEngine(&spec)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "scenario: %v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	sc := &scenario{ID: id, Spec: &spec, Created: time.Now(), eng: eng}
	s.scenarios[id] = sc
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":       id,
		"flows":    eng.Flows(),
		"migrator": eng.MigratorName(),
		"snapshot": eng.Snapshot(),
	})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.scenarios))
	for id := range s.scenarios {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		sc := s.get(id)
		if sc == nil {
			continue
		}
		out = append(out, map[string]any{
			"id":       sc.ID,
			"name":     sc.Spec.Name,
			"created":  sc.Created,
			"snapshot": sc.eng.Snapshot(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.scenarios[id]
	delete(s.scenarios, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no scenario %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// ratesRequest is the delta-ingest body: a batch of per-flow rate updates,
// optionally stepping the epoch in the same call.
type ratesRequest struct {
	Updates []engine.RateUpdate `json:"updates"`
	// Step closes the epoch right after the ingest when true.
	Step bool `json:"step"`
}

func (s *server) handleRates(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeErr(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	var req ratesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad rates body: %v", err)
		return
	}
	n, err := sc.eng.OfferRates(req.Updates)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := map[string]any{"accepted": n}
	if req.Step {
		sc.mu.Lock()
		res, err := sc.eng.Step()
		sc.mu.Unlock()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp["step"] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStep(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeErr(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	sc.mu.Lock()
	res, err := sc.eng.Step()
	sc.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeErr(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sc.eng.Snapshot())
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	sc := s.get(r.PathValue("id"))
	if sc == nil {
		writeErr(w, http.StatusNotFound, "no scenario %q", r.PathValue("id"))
		return
	}
	sc.mu.Lock()
	st := sc.eng.State()
	sc.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.scenarios))
	for id := range s.scenarios {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	per := make(map[string]any, len(ids))
	for _, id := range ids {
		sc := s.get(id)
		if sc == nil {
			continue
		}
		per[id] = map[string]any{
			"name":    sc.Spec.Name,
			"metrics": sc.eng.Metrics(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ns": time.Since(s.start),
		"scenarios": per,
	})
}

// persistedScenario is the on-disk form of one scenario in the daemon's
// snapshot file: the spec with the engine state embedded, so loading is
// exactly a sequence of create-with-state calls.
type persistedScenario struct {
	ID   string        `json:"id"`
	Spec *ScenarioSpec `json:"spec"`
}

// saveSnapshot writes every scenario's spec+state to path.
func (s *server) saveSnapshot(path string) error {
	s.mu.RLock()
	ids := make([]string, 0, len(s.scenarios))
	for id := range s.scenarios {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	out := make([]persistedScenario, 0, len(ids))
	for _, id := range ids {
		sc := s.get(id)
		if sc == nil {
			continue
		}
		sc.mu.Lock()
		blob, err := sc.eng.MarshalState()
		sc.mu.Unlock()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", id, err)
		}
		spec := *sc.Spec
		spec.State = blob
		out = append(out, persistedScenario{ID: id, Spec: &spec})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadSnapshot restores scenarios from a snapshot file; a missing file is
// a clean first boot.
func (s *server) loadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var in []persistedScenario
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("snapshot %s: %w", path, err)
	}
	for _, ps := range in {
		eng, err := buildEngine(ps.Spec)
		if err != nil {
			return fmt.Errorf("snapshot scenario %s: %w", ps.ID, err)
		}
		s.mu.Lock()
		s.scenarios[ps.ID] = &scenario{ID: ps.ID, Spec: ps.Spec, Created: time.Now(), eng: eng}
		if n := len(ps.ID); n > 1 && ps.ID[0] == 's' {
			var num int
			if _, err := fmt.Sscanf(ps.ID[1:], "%d", &num); err == nil && num > s.nextID {
				s.nextID = num
			}
		}
		s.mu.Unlock()
	}
	return nil
}
