package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"vnfopt/internal/engine"
	"vnfopt/internal/shard"
	"vnfopt/internal/wal"
)

// Bulk ingest: POST /v1/scenarios/{id}/rates:bulk carries an arbitrary
// number of rate updates on one connection, so a million-flow tenant is
// one request, not a million. Two body formats:
//
//   - Content-Type: application/x-ndjson (or application/ndjson) —
//     newline-delimited JSON, each line either one update
//     {"flow":7,"rate":1.5} or an array chunk [{...},{...}]. The body
//     is *streamed*: lines are folded into batches of bulkBatchSize
//     updates and each batch becomes one mailbox command while the next
//     lines are still being parsed, so memory stays O(batch), never
//     O(body), and a connection pushing faster than the shard's run
//     loop drains is flow-controlled by the bounded mailbox instead of
//     buffered.
//   - anything else — the single-call JSON forms: either the /rates
//     body {"updates":[...],"step":bool} or a bare update array, split
//     into the same batches.
//
// ?step=true (or "step":true in the JSON form) closes the epoch after
// the final batch. Each batch is atomic (a bad update rejects its whole
// batch and aborts the stream) but the request is not: batches already
// executed stay ingested, exactly as if they had arrived as separate
// /rates calls. The response reports totals plus the per-batch
// accepted/coalesced/epoch accounting.

// bulkBatchSize is the number of updates folded into one mailbox
// command. Large enough to amortize the command handoff, small enough
// that a batch is parsed (and its memory retired) in microseconds.
const bulkBatchSize = 8192

// maxBulkLine bounds one NDJSON line; an array chunk with more than
// ~40k updates per line should be split across lines instead.
const maxBulkLine = 1 << 20

// bulkAccount accumulates per-batch results across mailbox commands.
// The mutex covers handler-vs-run-loop handoff; contention is one
// lock per batch, not per update.
type bulkAccount struct {
	mu      sync.Mutex
	batches []engine.IngestResult
	err     error // first engine rejection, sticky
	walErr  error // first WAL append failure, sticky (500, not 422)
}

func (a *bulkAccount) record(res engine.IngestResult, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		if a.err == nil {
			a.err = err
		}
		return
	}
	a.batches = append(a.batches, res)
}

func (a *bulkAccount) recordWAL(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.walErr == nil {
		a.walErr = err
	}
}

func (a *bulkAccount) failed() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.walErr != nil {
		return a.walErr
	}
	return a.err
}

func (a *bulkAccount) failedWAL() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.walErr
}

func (s *server) handleRatesBulk(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sc := s.get(id)
	if sc == nil {
		writeError(w, codeNotFound, "no scenario %q", id)
		return
	}
	step := false
	switch r.URL.Query().Get("step") {
	case "", "false", "0":
	case "true", "1":
		step = true
	default:
		writeError(w, codeBadRequest, "bad step %q (want true or false)", r.URL.Query().Get("step"))
		return
	}

	acc := &bulkAccount{}
	var wg sync.WaitGroup
	// submit hands one batch to the scenario's run loop. It owns batch
	// (the caller must not reuse the slice). SubmitCtx blocks while the
	// mailbox is full — the stream is flow-controlled to the drain rate
	// — and aborts when the client goes away.
	ctx := r.Context()
	submit := func(batch []engine.RateUpdate) error {
		if err := acc.failed(); err != nil {
			return err
		}
		wg.Add(1)
		err := sc.actor.SubmitCtx(ctx, func() {
			defer wg.Done()
			// Validate → WAL append → apply, same discipline as /rates: a
			// batch is only acknowledged (counted in the 200 response)
			// once its record is in the log, and a rejected batch never
			// pollutes the log.
			if err := sc.eng.ValidateRates(batch); err != nil {
				acc.record(engine.IngestResult{}, err)
				return
			}
			if err := sc.appendWAL(wal.TypeIngest, encodeRates(batch)); err != nil {
				acc.recordWAL(err)
				return
			}
			acc.record(sc.eng.Ingest(batch))
		})
		if err != nil {
			wg.Done()
		}
		return err
	}

	var parseErr error
	ct := r.Header.Get("Content-Type")
	if isNDJSON(ct) {
		parseErr = streamNDJSON(r.Body, submit)
	} else {
		parseErr, step = parseBulkJSON(w, r, submit, step)
	}
	wg.Wait() // every submitted batch has executed; acc is stable

	switch {
	case errors.Is(parseErr, shard.ErrClosed):
		writeError(w, codeNotFound, "scenario %q was deleted", id)
		return
	case ctx.Err() != nil:
		// The client is gone; nothing to answer.
		return
	case parseErr != nil && acc.failed() == nil:
		writeError(w, codeBadRequest, "bulk body: %v", parseErr)
		return
	}
	if err := acc.failedWAL(); err != nil {
		writeError(w, codeInternal, "scenario %q: wal: %v", id, err)
		return
	}
	if err := acc.failed(); err != nil {
		writeError(w, codeInvalidArgument, "%v", err)
		return
	}

	resp := ingestResponse{Batches: acc.batches}
	for _, b := range acc.batches {
		resp.Accepted += b.Accepted
		resp.Coalesced += b.Coalesced
		resp.Epoch = b.Epoch
	}
	if resp.Epoch == 0 {
		resp.Epoch = sc.eng.Snapshot().Epoch + 1
	}
	if step {
		var stepErr error
		actorErr, walErr, _ := sc.doWithWAL(nil, wal.TypeStep, func() []byte { return nil }, func() {
			res, err := sc.eng.Step()
			if err != nil {
				stepErr = err
				return
			}
			resp.Step = &res
		})
		switch {
		case s.writeActorErr(w, id, actorErr):
			return
		case walErr != nil:
			writeError(w, codeInternal, "scenario %q: wal: %v", id, walErr)
			return
		case stepErr != nil:
			writeError(w, codeInternal, "%v", stepErr)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func isNDJSON(contentType string) bool {
	// Strip any ;charset=... parameter before comparing.
	if i := bytes.IndexByte([]byte(contentType), ';'); i >= 0 {
		contentType = contentType[:i]
	}
	switch contentType {
	case "application/x-ndjson", "application/ndjson":
		return true
	}
	return false
}

// streamNDJSON reads newline-delimited updates from body, flushing to
// submit every bulkBatchSize updates. submit errors (client gone,
// scenario deleted, earlier batch rejected) abort the stream.
func streamNDJSON(body io.Reader, submit func([]engine.RateUpdate) error) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), maxBulkLine)
	batch := make([]engine.RateUpdate, 0, bulkBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		out := batch
		batch = make([]engine.RateUpdate, 0, bulkBatchSize)
		return submit(out)
	}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		switch raw[0] {
		case '[':
			var chunk []engine.RateUpdate
			if err := json.Unmarshal(raw, &chunk); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			batch = append(batch, chunk...)
		default:
			var u engine.RateUpdate
			if err := json.Unmarshal(raw, &u); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			batch = append(batch, u)
		}
		if len(batch) >= bulkBatchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("line %d exceeds %d bytes; split array chunks across lines", line+1, maxBulkLine)
		}
		return err
	}
	return flush()
}

// parseBulkJSON handles the non-streaming body forms: the /rates
// request object or a bare update array, chunked into the same batches
// as the NDJSON path. Returns the parse error and the (possibly
// body-requested) step flag.
func parseBulkJSON(w http.ResponseWriter, r *http.Request, submit func([]engine.RateUpdate) error, step bool) (error, bool) {
	// The array form is bounded like every other buffered JSON body,
	// but bulk arrays are the migration path for clients not yet on
	// NDJSON — give them 8x the single-call headroom.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8*maxBodyBytes))
	var probe json.RawMessage
	if err := dec.Decode(&probe); err != nil {
		return err, step
	}
	var updates []engine.RateUpdate
	trimmed := bytes.TrimSpace(probe)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &updates); err != nil {
			return err, step
		}
	} else {
		var req ratesRequest
		if err := json.Unmarshal(trimmed, &req); err != nil {
			return err, step
		}
		updates = req.Updates
		step = step || req.Step
	}
	for len(updates) > 0 {
		n := min(bulkBatchSize, len(updates))
		if err := submit(append([]engine.RateUpdate(nil), updates[:n]...)); err != nil {
			return err, step
		}
		updates = updates[n:]
	}
	return nil, step
}
