package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"vnfopt/internal/engine"
	"vnfopt/internal/failfs"
	"vnfopt/internal/fault"
	"vnfopt/internal/wal"
)

// The crash-injection suite: iterate the kill point across every I/O
// boundary of a live create→ingest→step→fault→snapshot workload and
// assert the recovered daemon is bit-identical to a reference daemon
// that executed the same acknowledged command prefix and never crashed.
// The engine is deterministic, the WAL appends before acknowledging,
// and the snapshot is atomic — so at any kill point the recovered state
// must be exactly ref(j) or ref(j+1), where j counts acknowledged
// mutating commands and the +1 is the one command whose record reached
// disk but whose acknowledgement didn't (its durability is a bonus, its
// loss would have been legal — but a torn mix is never).

// crashSpec is the deterministic workload scenario: explicit pairs on
// the default k=4 fat-tree, so every run computes the same placement.
func crashSpec() *ScenarioSpec {
	return &ScenarioSpec{
		ID: "c1",
		Pairs: []PairSpec{
			{Src: 0, Dst: 5, Rate: 10},
			{Src: 1, Dst: 9, Rate: 8},
			{Src: 2, Dst: 12, Rate: 5},
		},
	}
}

// crashCommand is one workload step against a live server. mutating
// commands advance engine state iff acknowledged (HTTP 2xx).
type crashCommand struct {
	name     string
	mutating bool
	run      func(t *testing.T, srv *server, h http.Handler) bool // acked?
}

// post drives one request through the route table without a listener.
func post(t *testing.T, h http.Handler, method, path string, body any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// crashWorkload is the command sequence. victim is the switch to kill,
// chosen from the reference run's initial placement. snapPath receives
// the mid-workload snapshot (its I/O is part of the kill-point space).
func crashWorkload(victim int, snapPath string) []crashCommand {
	ok := func(code int) bool { return code >= 200 && code < 300 }
	cmd := func(name, method, path string, body any) crashCommand {
		return crashCommand{name: name, mutating: true, run: func(t *testing.T, _ *server, h http.Handler) bool {
			return ok(post(t, h, method, path, body))
		}}
	}
	return []crashCommand{
		cmd("create", "POST", "/v1/scenarios", crashSpec()),
		cmd("ingest1", "POST", "/v1/scenarios/c1/rates", ratesRequest{Updates: []engine.RateUpdate{{Flow: 0, Rate: 20}}}),
		cmd("step1", "POST", "/v1/scenarios/c1/step", nil),
		cmd("inject", "POST", "/v1/scenarios/c1/faults", faultsRequest{Inject: []fault.Fault{{Kind: fault.Switch, U: victim}}}),
		{name: "snapshot", mutating: false, run: func(t *testing.T, srv *server, _ http.Handler) bool {
			return srv.saveSnapshot(snapPath) == nil
		}},
		cmd("ingest2", "POST", "/v1/scenarios/c1/rates", ratesRequest{Updates: []engine.RateUpdate{{Flow: 1, Rate: 3.5}, {Flow: 2, Rate: 7.25}}}),
		cmd("step2", "POST", "/v1/scenarios/c1/step", nil),
		cmd("heal", "POST", "/v1/scenarios/c1/faults", faultsRequest{Heal: []fault.Fault{{Kind: fault.Switch, U: victim}}}),
		cmd("step3", "POST", "/v1/scenarios/c1/step", nil),
	}
}

// normalizedState captures a scenario's engine state with the wall-time
// metric fields zeroed — they measure the run, not the decision state,
// and are the only legitimately non-deterministic part of the state.
func normalizedState(t *testing.T, srv *server, id string) string {
	t.Helper()
	sc := srv.get(id)
	if sc == nil {
		return "" // no scenario
	}
	blob, err := sc.eng.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if met, ok := m["metrics"].(map[string]any); ok {
		met["last_epoch_ns"] = 0
		met["total_epoch_ns"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// newWALServer builds a server persisting under dir through fs.
func newWALServer(fs failfs.FS, dir string) *server {
	srv := newServer()
	srv.fs = fs
	srv.walDir = filepath.Join(dir, "wal")
	srv.walOpts = wal.Options{Policy: wal.SyncAlways}
	return srv
}

// referenceStates runs the workload without any crash and captures the
// normalized state after every command prefix: refs[m] is the state
// after the first m mutating commands (refs[0] = no scenario). Returns
// the victim switch it derived from the initial placement.
func referenceStates(t *testing.T) (refs []string, victim int) {
	t.Helper()
	srv := newServer() // no WAL: the reference is the engine alone
	h := srv.handler()

	// Derive the victim deterministically from the committed placement.
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("reference create: %d", code)
	}
	victim = srv.get("c1").eng.Snapshot().Placement[0]
	srv.scenarios.Delete("c1")

	srv = newServer()
	h = srv.handler()
	refs = []string{""}
	for _, cmd := range crashWorkload(victim, filepath.Join(t.TempDir(), "ref-snap.json")) {
		if !cmd.run(t, srv, h) {
			t.Fatalf("reference %s failed", cmd.name)
		}
		if cmd.mutating {
			refs = append(refs, normalizedState(t, srv, "c1"))
		}
	}
	return refs, victim
}

// TestCrashInjectionBitIdentical is the acceptance test of the
// durability layer: for every I/O boundary k and both crash flavors
// (clean failure, torn write), kill the filesystem at boundary k, run
// recovery on what's left, and demand a state bit-identical to a
// never-crashed reference.
func TestCrashInjectionBitIdentical(t *testing.T) {
	refs, victim := referenceStates(t)

	// Probe run: count the I/O boundaries of a crash-free workload.
	probe := failfs.NewFaulty(failfs.OS)
	{
		dir := t.TempDir()
		srv := newWALServer(probe, dir)
		h := srv.handler()
		for _, cmd := range crashWorkload(victim, filepath.Join(dir, "snap.json")) {
			if !cmd.run(t, srv, h) {
				t.Fatalf("probe %s failed", cmd.name)
			}
		}
		srv.closeAll()
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("suspiciously few I/O boundaries: %d", total)
	}

	for _, torn := range []bool{false, true} {
		for k := 1; k <= total; k++ {
			t.Run(fmt.Sprintf("torn=%v/k=%d", torn, k), func(t *testing.T) {
				dir := t.TempDir()
				snap := filepath.Join(dir, "snap.json")
				ffs := failfs.NewFaulty(failfs.OS)
				srv := newWALServer(ffs, dir)
				h := srv.handler()
				ffs.CrashAt(k, torn)
				acked := 0
				for _, cmd := range crashWorkload(victim, snap) {
					if cmd.run(t, srv, h) && cmd.mutating {
						acked++
					}
				}
				srv.closeAll() // stop goroutines; files are left as the crash left them

				// Reboot on the real filesystem.
				srv2 := newWALServer(failfs.OS, dir)
				srv2.recovering.Store(true)
				if err := srv2.recoverState(context.Background(), snap); err != nil {
					t.Fatalf("recovery after crash at op %d: %v", k, err)
				}
				got := normalizedState(t, srv2, "c1")
				want := refs[acked]
				// The in-flight command's record may have reached disk
				// even though its acknowledgement didn't.
				if got != want && acked+1 < len(refs) && got == refs[acked+1] {
					want = refs[acked+1]
				}
				if got != want {
					t.Fatalf("crash at op %d (torn=%v, %d acked): recovered state diverges\n got: %.200s\nwant: %.200s",
						k, torn, acked, got, want)
				}
				srv2.closeWALs()
			})
		}
	}
}

// countdownCtx cancels itself after Err has been consulted n times —
// the deterministic way to abort a replay mid-stream.
type countdownCtx struct {
	context.Context
	n atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestRecoveryCancelLeavesLogIntact: SIGTERM during WAL replay aborts
// cleanly — recovery reports cancellation, no segment is deleted or
// truncated, snapshots are refused while recovery is incomplete, and a
// re-run recovers everything.
func TestRecoveryCancelLeavesLogIntact(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	srv := newWALServer(failfs.OS, dir)
	h := srv.handler()
	_, victim := referenceStates(t)
	for _, cmd := range crashWorkload(victim, snap) {
		if !cmd.run(t, srv, h) {
			t.Fatalf("workload %s failed", cmd.name)
		}
	}
	wantState := normalizedState(t, srv, "c1")
	srv.closeAll()
	srv.closeWALs()

	segsBefore := listWALFiles(t, filepath.Join(dir, "wal"))

	// Cancel after two replayed records: mid-stream, deterministically.
	srv2 := newWALServer(failfs.OS, dir)
	srv2.recovering.Store(true)
	ctx := &countdownCtx{Context: context.Background()}
	ctx.n.Store(2)
	err := srv2.recoverState(ctx, snap)
	if err == nil {
		t.Fatal("cancelled recovery reported success")
	}
	if !srv2.recovering.Load() {
		t.Fatal("recovering flag cleared by a failed recovery")
	}
	// /readyz answers 503 recovering, /v1 is gated.
	h2 := srv2.handler()
	var ready struct {
		Status string `json:"status"`
	}
	rec := httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while recovering: %d", rec.Code)
	}
	if json.Unmarshal(rec.Body.Bytes(), &ready); ready.Status != "recovering" {
		t.Fatalf("readyz body: %s", rec.Body.String())
	}
	if code := post(t, h2, "GET", "/v1/scenarios", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/v1 while recovering: %d", code)
	}
	// Snapshots are refused: a mid-recovery snapshot would anchor away
	// records the next attempt still needs.
	if err := srv2.saveSnapshot(filepath.Join(dir, "bad.json")); err == nil {
		t.Fatal("saveSnapshot succeeded during recovery")
	}
	// No segment was deleted or truncated by the aborted replay.
	if after := listWALFiles(t, filepath.Join(dir, "wal")); !equalFiles(segsBefore, after) {
		t.Fatalf("aborted recovery changed the log:\nbefore %v\nafter  %v", segsBefore, after)
	}
	srv2.closeWALs()

	// A fresh recovery over the same directory completes and matches.
	srv3 := newWALServer(failfs.OS, dir)
	srv3.recovering.Store(true)
	if err := srv3.recoverState(context.Background(), snap); err != nil {
		t.Fatalf("re-recovery: %v", err)
	}
	if got := normalizedState(t, srv3, "c1"); got != wantState {
		t.Fatalf("re-recovered state diverges from pre-shutdown state")
	}
	if code := post(t, srv3.handler(), "GET", "/v1/scenarios", nil); code != http.StatusOK {
		t.Fatalf("/v1 after recovery: %d", code)
	}
	srv3.closeWALs()
}

// listWALFiles maps every file under root to its size.
func listWALFiles(t *testing.T, root string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			out[path] = info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func equalFiles(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestSnapshotCompactionRacesIngest: periodic snapshot+anchor cycles
// racing a stream of ingest/step commands must neither fail nor lose a
// record — after the dust settles, a reboot replays to the live state.
func TestSnapshotCompactionRacesIngest(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	srv := newWALServer(failfs.OS, dir)
	// Tiny segments so anchoring actually compacts mid-test.
	srv.walOpts.SegmentBytes = 512
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 40; i++ {
			body := ratesRequest{Updates: []engine.RateUpdate{{Flow: i % 3, Rate: float64(i + 1)}}, Step: i%4 == 3}
			if code := post(t, h, "POST", "/v1/scenarios/c1/rates", body); code != http.StatusOK {
				done <- fmt.Errorf("ingest %d: HTTP %d", i, code)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 10; i++ {
		if err := srv.saveSnapshot(snap); err != nil {
			t.Fatalf("snapshot %d racing ingest: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := srv.saveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	liveState := normalizedState(t, srv, "c1")
	srv.closeAll()
	srv.closeWALs()

	srv2 := newWALServer(failfs.OS, dir)
	srv2.recovering.Store(true)
	if err := srv2.recoverState(context.Background(), snap); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if got := normalizedState(t, srv2, "c1"); got != liveState {
		t.Fatal("recovered state diverges after snapshot/ingest race")
	}
	srv2.closeWALs()
}

// TestWALDeleteAtomicity: deleting a scenario retires its log through
// the rename tombstone, and a tombstone left by a crashed delete is
// swept — never replayed — at boot.
func TestWALDeleteAtomicity(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	srv := newWALServer(failfs.OS, dir)
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := post(t, h, "DELETE", "/v1/scenarios/c1", nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if entries, err := os.ReadDir(filepath.Join(dir, "wal")); err != nil || len(entries) != 0 {
		t.Fatalf("wal root not empty after delete: %v %v", entries, err)
	}

	// Simulate a crash mid-delete: a tombstone directory left behind.
	tomb := filepath.Join(dir, "wal", "dead"+deletingSuffix)
	if err := os.MkdirAll(tomb, 0o755); err != nil {
		t.Fatal(err)
	}
	srv2 := newWALServer(failfs.OS, dir)
	srv2.recovering.Store(true)
	if err := srv2.recoverState(context.Background(), snap); err != nil {
		t.Fatalf("recovery with tombstone: %v", err)
	}
	if _, err := os.Stat(tomb); !os.IsNotExist(err) {
		t.Fatalf("tombstone not swept: %v", err)
	}
	if srv2.scenarios.Len() != 0 {
		t.Fatalf("deleted scenario resurrected: %d scenarios", srv2.scenarios.Len())
	}
}
