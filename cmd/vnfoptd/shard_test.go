package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vnfopt/internal/engine"
)

// Tests of the sharded control plane itself: the actor/registry
// concurrency surface, the bulk NDJSON endpoint, backpressure, and the
// differential assert that the sharded request path leaves an engine in
// a state bit-identical to driving the engine directly.

// diffSpec is the shared scenario of the differential tests: seeded, so
// the generated workload (and thus every placement decision) is
// reproducible on both paths.
func diffSpec(id string) ScenarioSpec {
	return ScenarioSpec{
		ID:       id,
		Topology: "fat-tree",
		K:        4,
		Flows:    24,
		Seed:     7,
		SFCLen:   3,
		Mu:       1000,
	}
}

// diffUpdates generates the deterministic per-epoch update batches both
// paths replay: a mix of fresh flows and same-epoch overwrites so the
// coalescing accounting is exercised too.
func diffUpdates(epochs, flows int) [][]engine.RateUpdate {
	rng := rand.New(rand.NewSource(99))
	out := make([][]engine.RateUpdate, epochs)
	for e := range out {
		batch := make([]engine.RateUpdate, 0, 40)
		for i := 0; i < 40; i++ {
			batch = append(batch, engine.RateUpdate{
				Flow: rng.Intn(flows),
				Rate: 0.1 + rng.Float64()*9.9,
			})
		}
		out[e] = batch
	}
	return out
}

// canonicalState strips the wall-clock fields (step timings) from a
// state blob; everything else must match bitwise between the sharded
// and the serial path.
func canonicalState(t *testing.T, blob []byte) []byte {
	t.Helper()
	var st engine.State
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	st.Metrics.LastEpoch = 0
	st.Metrics.TotalEpoch = 0
	out, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// ndjsonBody renders updates as an NDJSON stream, alternating single
// objects and array chunks (both line forms the endpoint accepts), with
// a blank line thrown in.
func ndjsonBody(t *testing.T, updates []engine.RateUpdate) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < len(updates); {
		if i%2 == 0 || i+1 >= len(updates) {
			line, err := json.Marshal(updates[i])
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
			i++
		} else {
			chunk := updates[i:min(i+3, len(updates))]
			line, err := json.Marshal(chunk)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
			i += len(chunk)
		}
		if i == len(updates)/2 {
			buf.WriteByte('\n') // blank lines are skipped
		}
	}
	return buf.Bytes()
}

// postBulk sends an NDJSON stream to the bulk endpoint and decodes the
// ingest response.
func postBulk(t *testing.T, ts *httptest.Server, id string, body []byte, step bool) (ingestResponse, int) {
	t.Helper()
	url := ts.URL + "/v1/scenarios/" + id + "/rates:bulk"
	if step {
		url += "?step=true"
	}
	resp, err := ts.Client().Post(url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ingestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestDifferentialShardedVsSerial replays the same seeded epoch
// schedule through (a) the full sharded HTTP path — actor mailbox,
// NDJSON parsing, batch splitting — and (b) direct serial engine calls,
// and requires the resulting durable states to be bit-identical modulo
// wall-clock timings. This pins the refactor's core claim: sharding
// changed the concurrency structure, not the computation.
func TestDifferentialShardedVsSerial(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()

	const epochs = 6
	spec := diffSpec("diff")
	updates := diffUpdates(epochs, spec.Flows)

	// Serial reference: the engine driven directly, one Ingest + Step
	// per epoch.
	refSpec := diffSpec("diff")
	ref, err := buildEngine(&refSpec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range updates {
		if _, err := ref.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	refBlob, err := ref.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	// Sharded path: even epochs arrive as NDJSON bulk streams (split
	// across both line forms), odd epochs as single /rates calls; both
	// close the epoch in the same request.
	if code := do(t, ts, "POST", "/v1/scenarios", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	for e, batch := range updates {
		if e%2 == 0 {
			if _, code := postBulk(t, ts, "diff", ndjsonBody(t, batch), true); code != http.StatusOK {
				t.Fatalf("epoch %d bulk: %d", e, code)
			}
		} else {
			body := map[string]any{"updates": batch, "step": true}
			if code := do(t, ts, "POST", "/v1/scenarios/diff/rates", body, nil); code != http.StatusOK {
				t.Fatalf("epoch %d rates: %d", e, code)
			}
		}
	}
	var shardState json.RawMessage
	if code := do(t, ts, "GET", "/v1/scenarios/diff/state", nil, &shardState); code != http.StatusOK {
		t.Fatalf("state: %d", code)
	}

	got, want := canonicalState(t, shardState), canonicalState(t, refBlob)
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded state diverged from serial reference\nsharded: %s\nserial:  %s", got, want)
	}
}

// TestBulkAccounting pins the bulk response envelope: totals equal the
// sum over batches, coalesced counts same-epoch overwrites, and the
// step result rides along when requested.
func TestBulkAccounting(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()
	spec := diffSpec("acct")
	if code := do(t, ts, "POST", "/v1/scenarios", spec, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}

	// 5 updates over 3 distinct flows: 2 coalesce.
	body := []byte(`{"flow":0,"rate":1}
[{"flow":1,"rate":2},{"flow":2,"rate":3}]
{"flow":0,"rate":4}
{"flow":1,"rate":5}
`)
	res, code := postBulk(t, ts, "acct", body, true)
	if code != http.StatusOK {
		t.Fatalf("bulk: %d", code)
	}
	if res.Accepted != 5 || res.Coalesced != 2 || res.Epoch != 1 {
		t.Fatalf("accounting %+v", res.IngestResult)
	}
	if len(res.Batches) == 0 {
		t.Fatal("no per-batch accounting")
	}
	var accepted, coalesced int
	for _, b := range res.Batches {
		accepted += b.Accepted
		coalesced += b.Coalesced
	}
	if accepted != res.Accepted || coalesced != res.Coalesced {
		t.Fatalf("batch sum %d/%d != totals %d/%d", accepted, coalesced, res.Accepted, res.Coalesced)
	}
	if res.Step == nil || res.Step.Epoch != 1 {
		t.Fatalf("step result missing or wrong: %+v", res.Step)
	}

	// The JSON-array body form must land identically.
	arr := []byte(`[{"flow":3,"rate":1},{"flow":3,"rate":2}]`)
	resp, err := ts.Client().Post(ts.URL+"/v1/scenarios/acct/rates:bulk", "application/json", bytes.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	var arrRes ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&arrRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || arrRes.Accepted != 2 || arrRes.Coalesced != 1 || arrRes.Epoch != 2 {
		t.Fatalf("array form: %d %+v", resp.StatusCode, arrRes.IngestResult)
	}
}

// TestBulkRejectsBadStream: a malformed line aborts with 400 and an
// invalid update inside a well-formed line answers 422; earlier batches
// stay ingested (documented batch-atomic, not request-atomic).
func TestBulkRejectsBadStream(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()
	if code := do(t, ts, "POST", "/v1/scenarios", diffSpec("bad"), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	if _, code := postBulk(t, ts, "bad", []byte("{not json}\n"), false); code != http.StatusBadRequest {
		t.Fatalf("malformed line: %d", code)
	}
	if _, code := postBulk(t, ts, "bad", []byte(`{"flow":99999,"rate":1}`+"\n"), false); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid update: %d", code)
	}
	if _, code := postBulk(t, ts, "missing", []byte(`{"flow":0,"rate":1}`+"\n"), false); code != http.StatusNotFound {
		t.Fatalf("missing scenario: %d", code)
	}
}

// TestBackpressure429 fills a deliberately tiny mailbox behind a gated
// run loop and checks the discrete-call answer: 429, Retry-After, the
// resource_exhausted envelope, and the rejection counter. After the
// gate lifts the same call succeeds.
func TestBackpressure429(t *testing.T) {
	srv := newServer()
	srv.mailboxCap = 1
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if code := do(t, ts, "POST", "/v1/scenarios", diffSpec("bp"), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	sc := srv.get("bp")

	gate := make(chan struct{})
	if err := sc.actor.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	// The run loop is stuck on the gate; one more command fills the
	// capacity-1 mailbox.
	if err := sc.actor.Submit(func() {}); err != nil {
		t.Fatal(err)
	}

	body := bytes.NewReader([]byte(`{"updates":[{"flow":0,"rate":1}]}`))
	resp, err := ts.Client().Post(ts.URL+"/v1/scenarios/bp/rates", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After header")
	}
	if env.Error.Code != codeResourceExhausted {
		t.Fatalf("error code %q", env.Error.Code)
	}
	if m := promSnapshot(t, ts); m["vnfoptd_mailbox_rejected_total"] < 1 {
		t.Fatalf("rejected counter = %v", m["vnfoptd_mailbox_rejected_total"])
	}

	close(gate)
	if code := do(t, ts, "POST", "/v1/scenarios/bp/rates",
		map[string]any{"updates": []engine.RateUpdate{{Flow: 0, Rate: 1}}}, nil); code != http.StatusOK {
		t.Fatalf("post-gate ingest: %d", code)
	}
}

// TestDeleteWhileMailboxDraining gates a run loop, queues work behind
// the gate, and deletes the scenario. Delete must (a) make the id 404
// immediately for new requests, (b) still run every queued command, and
// (c) only acknowledge once the mailbox is drained.
func TestDeleteWhileMailboxDraining(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if code := do(t, ts, "POST", "/v1/scenarios", diffSpec("dwd"), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	sc := srv.get("dwd")

	gate := make(chan struct{})
	var ran sync.WaitGroup
	if err := sc.actor.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	const queued = 5
	for i := 0; i < queued; i++ {
		ran.Add(1)
		if err := sc.actor.Submit(func() { ran.Done() }); err != nil {
			t.Fatal(err)
		}
	}

	type delResp struct {
		Deleted string `json:"deleted"`
		Drained int    `json:"drained"`
	}
	done := make(chan delResp, 1)
	go func() {
		var dr delResp
		if code := do(t, ts, "DELETE", "/v1/scenarios/dwd", nil, &dr); code != http.StatusOK {
			t.Errorf("delete: %d", code)
		}
		done <- dr
	}()

	// The registry entry disappears before the drain finishes: new
	// lookups 404 while the gate still holds the run loop.
	deadline := time.After(5 * time.Second)
	for srv.get("dwd") != nil {
		select {
		case <-deadline:
			t.Fatal("scenario still visible while delete drains")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if code := do(t, ts, "GET", "/v1/scenarios/dwd/placement", nil, nil); code != http.StatusNotFound {
		t.Fatalf("placement during drain: %d, want 404", code)
	}
	select {
	case <-done:
		t.Fatal("delete acknowledged before the mailbox drained")
	default:
	}

	close(gate)
	dr := <-done
	ran.Wait() // every queued command executed
	if dr.Deleted != "dwd" || dr.Drained < queued {
		t.Fatalf("delete response %+v, want drained >= %d", dr, queued)
	}
}

// TestSnapshotDuringDrain captures a daemon snapshot while one
// scenario's run loop is wedged behind a gate with commands queued: the
// snapshot must not block on the actor (it reads engines directly) and
// must include the wedged scenario.
func TestSnapshotDuringDrain(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if code := do(t, ts, "POST", "/v1/scenarios", diffSpec("snap"), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	sc := srv.get("snap")
	gate := make(chan struct{})
	if err := sc.actor.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sc.actor.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join(t.TempDir(), "state.json")
	snapDone := make(chan error, 1)
	go func() { snapDone <- srv.saveSnapshot(path) }()
	select {
	case err := <-snapDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("saveSnapshot blocked on a wedged actor")
	}
	close(gate)

	srv2 := newServer()
	if _, _, err := srv2.loadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if srv2.get("snap") == nil {
		t.Fatal("snapshot lost the wedged scenario")
	}
	srv2.closeAll()
}

// TestConcurrentCreateDeleteIngest hammers the registry from many
// goroutines — creates, deletes, ingests, bulk streams, list and
// snapshot reads over a small shared id space — and relies on the race
// detector for the memory-model half of the assertion. Every response
// must be one of the codes the API defines for these races.
func TestConcurrentCreateDeleteIngest(t *testing.T) {
	srv := newServer()
	srv.scenarioMetrics = false // ids are reused across create/delete
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	ok := map[int]bool{
		http.StatusOK: true, http.StatusCreated: true,
		http.StatusNotFound: true, http.StatusConflict: true,
		http.StatusTooManyRequests: true,
	}
	ids := []string{"c0", "c1", "c2", "c3"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			client := ts.Client()
			for i := 0; i < 60; i++ {
				id := ids[rng.Intn(len(ids))]
				var (
					resp *http.Response
					err  error
				)
				switch rng.Intn(6) {
				case 0:
					spec := diffSpec(id)
					body, _ := json.Marshal(spec)
					resp, err = client.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(body))
				case 1:
					req, _ := http.NewRequest("DELETE", ts.URL+"/v1/scenarios/"+id, nil)
					resp, err = client.Do(req)
				case 2:
					resp, err = client.Post(ts.URL+"/v1/scenarios/"+id+"/rates", "application/json",
						strings.NewReader(`{"updates":[{"flow":0,"rate":1}]}`))
				case 3:
					resp, err = client.Post(ts.URL+"/v1/scenarios/"+id+"/rates:bulk", "application/x-ndjson",
						strings.NewReader("{\"flow\":1,\"rate\":2}\n[{\"flow\":2,\"rate\":3}]\n"))
				case 4:
					resp, err = client.Get(ts.URL + "/v1/scenarios/" + id + "/placement")
				case 5:
					resp, err = client.Get(ts.URL + "/v1/scenarios?limit=2&status=active")
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !ok[resp.StatusCode] {
					body := make([]byte, 256)
					n, _ := resp.Body.Read(body)
					t.Errorf("worker %d op on %s: status %d: %s", w, id, resp.StatusCode, body[:n])
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	srv.closeAll()
}

// TestListPaginationAndFilter covers the listing envelope: limit,
// offset, the status filter, and the 400s for malformed parameters.
func TestListPaginationAndFilter(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		spec := diffSpec(fmt.Sprintf("p%d", i))
		if code := do(t, ts, "POST", "/v1/scenarios", spec, nil); code != http.StatusCreated {
			t.Fatal("create failed")
		}
	}
	type listResp struct {
		Scenarios []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		} `json:"scenarios"`
		Total  int `json:"total"`
		Limit  int `json:"limit"`
		Offset int `json:"offset"`
	}

	var all listResp
	if code := do(t, ts, "GET", "/v1/scenarios", nil, &all); code != http.StatusOK {
		t.Fatal("list failed")
	}
	if all.Total != 5 || len(all.Scenarios) != 5 {
		t.Fatalf("full list: %+v", all)
	}

	var page listResp
	if code := do(t, ts, "GET", "/v1/scenarios?limit=2&offset=3", nil, &page); code != http.StatusOK {
		t.Fatal("paged list failed")
	}
	if page.Total != 5 || len(page.Scenarios) != 2 || page.Limit != 2 || page.Offset != 3 {
		t.Fatalf("page: %+v", page)
	}
	if page.Scenarios[0].ID != all.Scenarios[3].ID {
		t.Fatalf("page starts at %s, want %s", page.Scenarios[0].ID, all.Scenarios[3].ID)
	}

	var past listResp
	if code := do(t, ts, "GET", "/v1/scenarios?offset=99", nil, &past); code != http.StatusOK {
		t.Fatal("past-end list failed")
	}
	if past.Total != 5 || len(past.Scenarios) != 0 {
		t.Fatalf("past-end page: %+v", past)
	}

	var active listResp
	if code := do(t, ts, "GET", "/v1/scenarios?status=active", nil, &active); code != http.StatusOK {
		t.Fatal("status filter failed")
	}
	if active.Total != 5 {
		t.Fatalf("active total = %d", active.Total)
	}
	var degraded listResp
	if code := do(t, ts, "GET", "/v1/scenarios?status=degraded", nil, &degraded); code != http.StatusOK {
		t.Fatal("degraded filter failed")
	}
	if degraded.Total != 0 || len(degraded.Scenarios) != 0 {
		t.Fatalf("degraded: %+v", degraded)
	}

	for _, q := range []string{"?limit=-1", "?offset=-2", "?limit=x", "?status=weird"} {
		if code := do(t, ts, "GET", "/v1/scenarios"+q, nil, nil); code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", q, code)
		}
	}
}

// TestHealthzBuildInfo: the liveness answer identifies the build.
func TestHealthzBuildInfo(t *testing.T) {
	ts := httptest.NewServer(newServer().handler())
	defer ts.Close()
	var out struct {
		OK     bool              `json:"ok"`
		Uptime string            `json:"uptime"`
		Build  map[string]string `json:"build"`
	}
	if code := do(t, ts, "GET", "/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if !out.OK || out.Uptime == "" {
		t.Fatalf("healthz body: %+v", out)
	}
	if !strings.HasPrefix(out.Build["go"], "go") {
		t.Fatalf("build info missing toolchain: %+v", out.Build)
	}
}

// TestStepReportsQueueDrained: a step submitted behind queued commands
// reports the backlog it drained.
func TestStepReportsQueueDrained(t *testing.T) {
	srv := newServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if code := do(t, ts, "POST", "/v1/scenarios", diffSpec("qd"), nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	sc := srv.get("qd")
	gate := make(chan struct{})
	if err := sc.actor.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sc.actor.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}

	var resp stepResponse
	done := make(chan int, 1)
	go func() { done <- do(t, ts, "POST", "/v1/scenarios/qd/step", nil, &resp) }()
	// Give the handler a moment to capture the depth, then lift the gate.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	if resp.QueueDrained < 3 {
		t.Fatalf("queue_drained = %d, want >= 3", resp.QueueDrained)
	}
	if resp.Epoch != 1 {
		t.Fatalf("epoch = %d", resp.Epoch)
	}
}
