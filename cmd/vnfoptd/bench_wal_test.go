package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vnfopt/internal/benchmeta"
	"vnfopt/internal/failfs"
	"vnfopt/internal/loadgen"
	"vnfopt/internal/wal"
)

// walBenchReport is the committed artifact (results/BENCH_wal.json): the
// same loadgen workload against three daemons — no WAL, WAL with group
// commit, WAL with per-command fsync — plus the overhead of each WAL
// mode over the baseline on the bulk-ingest path, which is where the
// log cost concentrates (one record per NDJSON line batch).
type walBenchReport struct {
	// Host pins the machine and toolchain the numbers were recorded on.
	Host     benchmeta.Host  `json:"host"`
	Baseline *loadgen.Report `json:"baseline"`
	Interval *loadgen.Report `json:"wal_interval"`
	Always   *loadgen.Report `json:"wal_always"`
	// Bulk-ingest throughput loss vs baseline, in percent (negative
	// means the WAL run was faster — noise).
	IntervalOverheadPct float64 `json:"wal_interval_overhead_pct"`
	AlwaysOverheadPct   float64 `json:"wal_always_overhead_pct"`
}

// walBenchConfig is the shared workload shape for every arm of the
// comparison; only the daemon under test differs.
func walBenchConfig(full bool) loadgen.Config {
	flows := 40
	cfg := loadgen.Config{
		Scenarios:   8,
		Concurrency: 8,
		Flows:       flows,
		Spec: map[string]any{
			"topology": "fat-tree",
			"k":        4,
			"flows":    flows,
			"migrator": "nomigration",
		},
		PerCallRequests: 128,
		PerCallBatch:    1,
		BulkRequests:    4,
		BulkUpdates:     8192,
		ReadRequests:    128,
		Seed:            7,
	}
	if full {
		cfg.Scenarios = 64
		cfg.Concurrency = 32
		cfg.PerCallRequests = 2048
		cfg.BulkRequests = 8
		cfg.BulkUpdates = 65536
		cfg.ReadRequests = 1024
	}
	return cfg
}

// runWALBenchArm runs one arm of the comparison. policy "" means no WAL.
// Every WAL arm includes the crash/restart phase: the filesystem is
// killed mid-flight (every subsequent write fails, as if the process
// had been SIGKILLed), a fresh daemon recovers over the same directory,
// and loadgen accounts for every update the dead daemon acknowledged.
func runWALBenchArm(t *testing.T, cfg loadgen.Config, policy wal.SyncPolicy, withWAL bool) *loadgen.Report {
	t.Helper()
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	ffs := failfs.NewFaulty(failfs.OS)

	srv := newServer()
	srv.scenarioMetrics = false
	if withWAL {
		srv.fs = ffs
		srv.walDir = filepath.Join(dir, "wal")
		srv.walOpts = wal.Options{Policy: policy, SyncEvery: 20 * time.Millisecond}
	}
	ts := httptest.NewServer(srv.handler())
	closeFirst := func() {
		ts.Close()
		srv.closeAll()
	}
	defer func() { closeFirst() }()

	// Successor daemon state, populated by the restart hook.
	var (
		srv2   *server
		ts2    *httptest.Server
		recErr = make(chan error, 1)
	)
	if withWAL {
		cfg.Restart = func() (string, error) {
			ffs.Kill() // the disk dies first: nothing in flight may land after this
			closeFirst()
			closeFirst = func() {}
			srv2 = newServer()
			srv2.scenarioMetrics = false
			srv2.fs = failfs.OS
			srv2.walDir = filepath.Join(dir, "wal")
			srv2.walOpts = wal.Options{Policy: policy, SyncEvery: 20 * time.Millisecond}
			srv2.recovering.Store(true)
			ts2 = httptest.NewServer(srv2.handler())
			// Recovery runs behind the 503 gate, exactly as in main().
			go func() { recErr <- srv2.recoverState(context.Background(), snap) }()
			return ts2.URL, nil
		}
		defer func() {
			if ts2 != nil {
				ts2.Close()
				srv2.closeAll()
				srv2.closeWALs()
			}
		}()
	}

	cfg.BaseURL = ts.URL
	rep, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withWAL {
		if err := <-recErr; err != nil {
			t.Fatalf("recovery after kill: %v", err)
		}
		if rep.Restart == nil || rep.Restart.Error != "" {
			t.Fatalf("restart phase failed: %+v", rep.Restart)
		}
	}
	return rep
}

// TestBenchWAL measures what durability costs and proves what it buys.
// By default it is a smoke run cheap enough for `make check`; the env
// vars VNFOPT_BENCH_FULL / VNFOPT_BENCH_OUT scale it into the committed
// artifact (results/BENCH_wal.json), where the acceptance bar applies:
// bulk ingest under `-wal-sync interval` within 20% of the no-WAL
// baseline. The `always` arm additionally asserts the durability
// contract — a hard kill after the ingest phases loses zero
// acknowledged updates.
func TestBenchWAL(t *testing.T) {
	full := os.Getenv("VNFOPT_BENCH_FULL") != ""
	out := os.Getenv("VNFOPT_BENCH_OUT")
	cfg := walBenchConfig(full)

	rep := &walBenchReport{
		Host:     benchmeta.Collect(),
		Baseline: runWALBenchArm(t, cfg, "", false),
		Interval: runWALBenchArm(t, cfg, wal.SyncInterval, true),
		Always:   runWALBenchArm(t, cfg, wal.SyncAlways, true),
	}
	if base := rep.Baseline.Bulk.UpdatesPerSec; base > 0 {
		rep.IntervalOverheadPct = (1 - rep.Interval.Bulk.UpdatesPerSec/base) * 100
		rep.AlwaysOverheadPct = (1 - rep.Always.Bulk.UpdatesPerSec/base) * 100
	}

	t.Logf("bulk ingest:  baseline %8.0f upd/s", rep.Baseline.Bulk.UpdatesPerSec)
	t.Logf("wal interval: %8.0f upd/s (%+.1f%%)  recovery %.3fs  lost %d",
		rep.Interval.Bulk.UpdatesPerSec, rep.IntervalOverheadPct,
		rep.Interval.Restart.RecoverySeconds, rep.Interval.Restart.LostUpdates)
	t.Logf("wal always:   %8.0f upd/s (%+.1f%%)  recovery %.3fs  lost %d",
		rep.Always.Bulk.UpdatesPerSec, rep.AlwaysOverheadPct,
		rep.Always.Restart.RecoverySeconds, rep.Always.Restart.LostUpdates)

	for name, r := range map[string]*loadgen.Report{
		"baseline": rep.Baseline, "interval": rep.Interval, "always": rep.Always,
	} {
		for phase, p := range map[string]loadgen.Phase{
			"create": r.Create, "percall": r.PerCall, "bulk": r.Bulk, "read": r.Read,
		} {
			if p.Errors != 0 {
				t.Errorf("%s/%s: %d errors, last: %s", name, phase, p.Errors, p.LastError)
			}
		}
		if r.Bulk.UpdatesPerSec <= 0 {
			t.Errorf("%s: no bulk throughput recorded", name)
		}
	}

	// The durability contract: with per-command fsync, acked == durable,
	// so the hard kill between the ingest and read phases loses nothing.
	if lost := rep.Always.Restart.LostUpdates; lost != 0 {
		t.Errorf("wal-always lost %d acknowledged updates across a hard kill", lost)
	}
	if ok, want := rep.Always.Restart.ScenariosOK, cfg.Scenarios; ok != want {
		t.Errorf("wal-always recovered %d/%d scenarios", ok, want)
	}
	if ok, want := rep.Interval.Restart.ScenariosOK, cfg.Scenarios; ok != want {
		t.Errorf("wal-interval recovered %d/%d scenarios", ok, want)
	}

	// The overhead acceptance bar is enforced on the full run; the smoke
	// sizes are too small for a stable ratio.
	if full && rep.IntervalOverheadPct > 20 {
		t.Errorf("wal-interval bulk overhead %.1f%%, want <= 20%%", rep.IntervalOverheadPct)
	}

	if out != "" {
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wal bench report written to %s\n", out)
	}
}
