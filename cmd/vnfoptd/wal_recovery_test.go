package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"vnfopt/internal/engine"
	"vnfopt/internal/failfs"
)

// Regression suite for the snapshot↔WAL pairing rules: which logs a
// boot may replay over which snapshots (generation tie, seed linkage),
// how committed deletes interact with older snapshots, and the
// durability of the delete acknowledgement itself.

// bootWAL runs a fresh recovery over dir and returns the server.
func bootWAL(t *testing.T, dir, snap string) *server {
	t.Helper()
	srv := newWALServer(failfs.OS, dir)
	srv.recovering.Store(true)
	if err := srv.recoverState(context.Background(), snap); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	return srv
}

// TestSeedCrashThenReboot: enabling -wal over a pre-WAL snapshot seeds
// each scenario's log with a create record; a crash before the next
// snapshot used to make every later boot fail ("create record for an
// existing scenario") because the old snapshot still carried wal_seq 0.
// Now the seed linkage (meta.seeded_from == hash of the loaded
// snapshot) tells recovery to trust the seed record and rebuild from
// the log alone.
func TestSeedCrashThenReboot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")

	// Era 1: no WAL; workload, then a plain snapshot.
	srv := newServer()
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := post(t, h, "POST", "/v1/scenarios/c1/rates", ratesRequest{Updates: []engine.RateUpdate{{Flow: 0, Rate: 15}}, Step: true}); code != http.StatusOK {
		t.Fatal("ingest")
	}
	if err := srv.saveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv.closeAll()

	// Era 2: first boot with -wal. Recovery seeds the log, more commands
	// append to it, and then the process dies before any new snapshot.
	srv2 := bootWAL(t, dir, snap)
	h2 := srv2.handler()
	if code := post(t, h2, "POST", "/v1/scenarios/c1/rates", ratesRequest{Updates: []engine.RateUpdate{{Flow: 1, Rate: 4}}, Step: true}); code != http.StatusOK {
		t.Fatal("post-seed ingest")
	}
	want := normalizedState(t, srv2, "c1")
	srv2.closeAll()
	srv2.closeWALs() // crash: no snapshot taken, old snapshot still has wal_seq 0

	// Era 3: boot again over the stale snapshot + seeded log.
	srv3 := bootWAL(t, dir, snap)
	if got := normalizedState(t, srv3, "c1"); got != want {
		t.Fatalf("seed-crash recovery diverges\n got: %.200s\nwant: %.200s", got, want)
	}
	// The rebuilt shard must be the one the registry serves.
	if code := post(t, srv3.handler(), "POST", "/v1/scenarios/c1/step", nil); code != http.StatusOK {
		t.Fatal("step after seed-crash recovery")
	}
	srv3.closeAll()
	srv3.closeWALs()
}

// TestWALToggleRefused: running with -wal, then without it (the
// snapshot advances past the log), then with -wal again must refuse to
// boot instead of silently replaying the stale log over newer state.
func TestWALToggleRefused(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")

	// Era 1: WAL on; snapshot records the log's generation.
	srv := newWALServer(failfs.OS, dir)
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if err := srv.saveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv.closeAll()
	srv.closeWALs()

	// Era 2: WAL off; state advances un-logged and is snapshotted
	// (wal_seq/wal_gen dropped).
	srv2 := newServer()
	srv2.recovering.Store(true)
	if err := srv2.recoverState(context.Background(), snap); err != nil {
		t.Fatalf("no-wal recovery: %v", err)
	}
	h2 := srv2.handler()
	if code := post(t, h2, "POST", "/v1/scenarios/c1/rates", ratesRequest{Updates: []engine.RateUpdate{{Flow: 2, Rate: 9}}, Step: true}); code != http.StatusOK {
		t.Fatal("no-wal ingest")
	}
	if err := srv2.saveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv2.closeAll()

	// Era 3: WAL on again — the log does not extend this snapshot.
	srv3 := newWALServer(failfs.OS, dir)
	srv3.recovering.Store(true)
	err := srv3.recoverState(context.Background(), snap)
	if err == nil {
		t.Fatal("boot combined a stale wal with a newer snapshot")
	}
	if !strings.Contains(err.Error(), "toggled") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
	if !srv3.recovering.Load() {
		t.Fatal("recovering flag cleared by a refused recovery")
	}
}

// TestGenerationMismatchRefused: a snapshot that names one generation
// must not replay a log of another (e.g. the -wal root was swapped).
func TestGenerationMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	srv := newWALServer(failfs.OS, dir)
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if err := srv.saveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv.closeAll()
	srv.closeWALs()

	// Forge a different generation into the scenario's meta file.
	meta := filepath.Join(dir, "wal", "c1", walMetaFile)
	if err := os.WriteFile(meta, []byte(`{"gen":"deadbeef"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv2 := newWALServer(failfs.OS, dir)
	srv2.recovering.Store(true)
	err := srv2.recoverState(context.Background(), snap)
	if err == nil || !strings.Contains(err.Error(), "generation mismatch") {
		t.Fatalf("want generation mismatch refusal, got %v", err)
	}
}

// TestWALDirMissingWithGenRefused: the snapshot says the scenario had a
// log, but the directory is gone — acknowledged records were lost, and
// the boot must say so instead of serving the stale snapshot.
func TestWALDirMissingWithGenRefused(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	srv := newWALServer(failfs.OS, dir)
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if err := srv.saveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv.closeAll()
	srv.closeWALs()
	if err := os.RemoveAll(filepath.Join(dir, "wal", "c1")); err != nil {
		t.Fatal(err)
	}

	srv2 := newWALServer(failfs.OS, dir)
	srv2.recovering.Store(true)
	err := srv2.recoverState(context.Background(), snap)
	if err == nil || !strings.Contains(err.Error(), "wal directory missing") {
		t.Fatalf("want missing-directory refusal, got %v", err)
	}
}

// TestDeleteCommittedNoResurrect: a delete whose tombstone rename
// committed but whose collection crashed must stay deleted at the next
// boot even when an older snapshot still carries the scenario.
func TestDeleteCommittedNoResurrect(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	srv := newWALServer(failfs.OS, dir)
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if err := srv.saveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	srv.closeAll()
	srv.closeWALs()
	// Crash between the delete's rename (commit point) and its RemoveAll.
	if err := os.Rename(filepath.Join(dir, "wal", "c1"), filepath.Join(dir, "wal", "c1"+deletingSuffix)); err != nil {
		t.Fatal(err)
	}

	srv2 := bootWAL(t, dir, snap)
	if srv2.scenarios.Len() != 0 {
		t.Fatalf("committed delete resurrected: %d scenarios", srv2.scenarios.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "c1"+deletingSuffix)); !os.IsNotExist(err) {
		t.Fatalf("tombstone not swept: %v", err)
	}
}

// TestDeletingSuffixIDIsSafe: a scenario whose *id* ends in ".deleting"
// must not map to a directory the tombstone sweep destroys.
func TestDeletingSuffixIDIsSafe(t *testing.T) {
	if name := scenarioDirName("prod.deleting"); strings.HasSuffix(name, deletingSuffix) {
		t.Fatalf("live dir %q collides with the tombstone namespace", name)
	}
	for _, id := range []string{"prod.deleting", ".deleting", "a/b.deleting", "x.deleting.deleting"} {
		back, err := scenarioDirID(scenarioDirName(id))
		if err != nil || back != id {
			t.Fatalf("dir name round-trip for %q: got %q, %v", id, back, err)
		}
	}

	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	srv := newWALServer(failfs.OS, dir)
	h := srv.handler()
	spec := crashSpec()
	spec.ID = "prod.deleting"
	if code := post(t, h, "POST", "/v1/scenarios", spec); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := post(t, h, "POST", "/v1/scenarios/prod.deleting/rates", ratesRequest{Updates: []engine.RateUpdate{{Flow: 0, Rate: 20}}, Step: true}); code != http.StatusOK {
		t.Fatal("ingest")
	}
	want := normalizedState(t, srv, "prod.deleting")
	srv.closeAll()
	srv.closeWALs()

	srv2 := bootWAL(t, dir, snap)
	if got := normalizedState(t, srv2, "prod.deleting"); got != want {
		t.Fatal("scenario with .deleting id lost across reboot")
	}
	// And its own delete still retires the log cleanly.
	if code := post(t, srv2.handler(), "DELETE", "/v1/scenarios/prod.deleting", nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if entries, err := os.ReadDir(filepath.Join(dir, "wal")); err != nil || len(entries) != 0 {
		t.Fatalf("wal root not empty after delete: %v %v", entries, err)
	}
	srv2.closeWALs()
}

// renameFailFS fails Rename while armed; everything else passes through.
type renameFailFS struct {
	failfs.FS
	fail atomic.Bool
}

func (f *renameFailFS) Rename(oldpath, newpath string) error {
	if f.fail.Load() {
		return fmt.Errorf("injected rename failure")
	}
	return f.FS.Rename(oldpath, newpath)
}

// TestDeleteWALRetireFailure: when the log directory cannot be retired,
// the delete answers 500 (the deletion is not durable — a reboot would
// resurrect the scenario), and a retry finishes the job.
func TestDeleteWALRetireFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := &renameFailFS{FS: failfs.OS}
	srv := newWALServer(ffs, dir)
	h := srv.handler()
	if code := post(t, h, "POST", "/v1/scenarios", crashSpec()); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}

	ffs.fail.Store(true)
	if code := post(t, h, "DELETE", "/v1/scenarios/c1", nil); code != http.StatusInternalServerError {
		t.Fatalf("delete with unretirable wal: %d, want 500", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "c1")); err != nil {
		t.Fatalf("wal dir gone despite failed retire: %v", err)
	}

	// Retry once the filesystem recovers: the registry no longer has the
	// scenario, but the orphaned directory is found and retired.
	ffs.fail.Store(false)
	if code := post(t, h, "DELETE", "/v1/scenarios/c1", nil); code != http.StatusOK {
		t.Fatalf("delete retry: %d, want 200", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "c1")); !os.IsNotExist(err) {
		t.Fatalf("wal dir survived the retried delete: %v", err)
	}
	if code := post(t, h, "DELETE", "/v1/scenarios/c1", nil); code != http.StatusNotFound {
		t.Fatalf("delete of fully-deleted scenario: %d, want 404", code)
	}

	// Nothing resurrects at the next boot.
	srv2 := bootWAL(t, dir, filepath.Join(dir, "snap.json"))
	if srv2.scenarios.Len() != 0 {
		t.Fatalf("deleted scenario resurrected after retried delete")
	}
}
