// Command vnfoptd is the online control-plane daemon: it hosts online
// placement engines (internal/engine) for any number of scenarios behind
// an HTTP/JSON API, turning the paper's periodically-executed TOM into a
// long-running service.
//
// The control plane is sharded: each scenario is an actor — a run-loop
// goroutine owning its engine and consuming a bounded mailbox of
// ingest/step/fault commands — and scenario lookup is a lock-free
// copy-on-write registry, so no request ever contends on a server-wide
// lock. A full mailbox answers 429 with Retry-After (backpressure);
// streaming bulk ingest is instead flow-controlled to the shard's drain
// rate.
//
// Usage:
//
//	vnfoptd -addr :8080 -snapshot /var/lib/vnfoptd/state.json
//
// API (see docs/API.md for the full reference and a curl session):
//
//	POST   /v1/scenarios                  create (or resume) a scenario
//	GET    /v1/scenarios                  list scenarios (limit/offset/status)
//	DELETE /v1/scenarios/{id}             drop a scenario (drains its mailbox)
//	POST   /v1/scenarios/{id}/rates       ingest rate deltas (optional step)
//	POST   /v1/scenarios/{id}/rates:bulk  streamed NDJSON / JSON-array bulk ingest
//	POST   /v1/scenarios/{id}/step        close the epoch / run the TOM loop
//	POST   /v1/scenarios/{id}/faults      inject/heal topology faults (repair)
//	GET    /v1/scenarios/{id}/faults      active faults + unserved flows
//	GET    /v1/scenarios/{id}/placement   lock-free placement snapshot
//	GET    /v1/scenarios/{id}/state       durable engine state (JSON)
//	GET    /v1/scenarios/{id}/metrics     per-scenario engine counters (JSON)
//	GET    /v1/scenarios/{id}/events      bounded event ring (migrations, errors)
//	GET    /metrics                       Prometheus text exposition
//	GET    /healthz                       liveness + build identification
//	GET    /readyz                        readiness (503 while any scenario is degraded)
//	GET    /debug/pprof/*                 profiling (only with -pprof)
//
// On SIGTERM/SIGINT the daemon drains in-flight requests (bounded by
// -drain), drains and stops every scenario's mailbox, and, when
// -snapshot is set, persists every scenario's engine state; the next
// boot restores them. With -snapshot set the state is also persisted
// periodically (-snapshot-every, fsync + atomic rename), so a crash
// loses at most one interval.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vnfopt/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		snapshot   = flag.String("snapshot", "", "state file for crash recovery (empty = no persistence)")
		snapEvery  = flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval (requires -snapshot; 0 disables)")
		walDir     = flag.String("wal", "", "write-ahead log root directory (empty = no WAL); every mutating command is logged before it is acknowledged")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy: always (durable per command), interval (group commit), or os (page cache)")
		walSyncEvy = flag.Duration("wal-sync-every", 50*time.Millisecond, "group-commit window for -wal-sync interval")
		walSegment = flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation size")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		pprofFlag  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel   = flag.String("log-level", "info", "slog level: debug, info, warn, or error")
		mailbox    = flag.Int("mailbox", defaultMailboxCap, "per-scenario command mailbox capacity (backpressure bound)")
		scMetrics  = flag.Bool("scenario-metrics", true, "per-scenario engine metric series (disable for fleets of many thousands of scenarios)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "vnfoptd: -log-level: %v\n", err)
		os.Exit(2)
	}

	srv := newServer()
	srv.log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv.pprofOpen = *pprofFlag
	if *mailbox > 0 {
		srv.mailboxCap = *mailbox
	}
	srv.scenarioMetrics = *scMetrics
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vnfoptd: -wal-sync: %v\n", err)
			os.Exit(2)
		}
		srv.walDir = *walDir
		srv.walOpts = wal.Options{Policy: policy, SyncEvery: *walSyncEvy, SegmentBytes: *walSegment}
	}

	// The timeouts harden the listener against slow-loris clients and
	// stuck connections; request bodies are additionally bounded per
	// route with http.MaxBytesReader.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	loopCtx, loopCancel := context.WithCancel(context.Background())
	defer loopCancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("vnfoptd: listening on %s\n", *addr)

	// Recovery (snapshot load + WAL replay) runs while the listener is
	// already up: /healthz answers immediately, /readyz and the /v1
	// surface answer 503 "recovering" until it finishes. SIGTERM during
	// a long replay cancels it cleanly between records.
	srv.recovering.Store(true)
	recovered := make(chan error, 1)
	go func() {
		err := srv.recoverState(loopCtx, *snapshot)
		if err == nil && *snapshot != "" && *snapEvery > 0 {
			go srv.snapshotLoop(loopCtx, *snapshot, *snapEvery)
		}
		recovered <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	for {
		select {
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "vnfoptd: %v\n", err)
				os.Exit(1)
			}
			return
		case err := <-recovered:
			if err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "vnfoptd: recover: %v\n", err)
				os.Exit(1)
			}
			recovered = nil // recovery settled; keep waiting for a signal
		case s := <-sig:
			fmt.Printf("vnfoptd: %v, draining\n", s)
			loopCancel()
			if recovered != nil {
				// Wait for the aborted recovery so nothing races the
				// shutdown below; the WAL is left exactly as found and
				// the next boot resumes from it.
				if err := <-recovered; err != nil && !errors.Is(err, context.Canceled) {
					fmt.Fprintf(os.Stderr, "vnfoptd: recover: %v\n", err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			if err := httpSrv.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "vnfoptd: drain: %v\n", err)
			}
			cancel()
			// Every in-flight request is done; drain and stop the scenario
			// run loops so the final snapshot sees fully-settled engines.
			srv.closeAll()
			if *snapshot != "" && !srv.recovering.Load() {
				if err := srv.saveSnapshotRetry(*snapshot, 3, 100*time.Millisecond); err != nil {
					fmt.Fprintf(os.Stderr, "vnfoptd: snapshot: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("vnfoptd: state saved to %s\n", *snapshot)
			} else if srv.recovering.Load() {
				// An incomplete recovery must not snapshot: it would
				// capture partial state and anchor away records the next
				// boot still needs.
				fmt.Printf("vnfoptd: shutdown during recovery; durable state left as found\n")
			}
			srv.closeWALs()
			return
		}
	}
}
