package vnfopt_test

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt"
)

// TestEndToEndLifecycle drives the full public API the way a downstream
// user would: build a PPDC, generate a workload, place the SFC, run a
// traffic shift, migrate, and compare against the baselines.
func TestEndToEndLifecycle(t *testing.T) {
	topo := vnfopt.MustFatTree(4, nil)
	dc := vnfopt.MustNewPPDC(topo, vnfopt.Options{})
	rng := rand.New(rand.NewSource(42))
	flows := vnfopt.MustGeneratePairs(topo, 30, vnfopt.DefaultIntraRack, rng)
	sfc := vnfopt.NewSFC(4)

	// TOP: DP must beat or match the greedy baselines.
	p, dpCost, err := vnfopt.DPPlacement().Place(dc, flows, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(dc, sfc); err != nil {
		t.Fatal(err)
	}
	_, steerCost, err := vnfopt.SteeringPlacement().Place(dc, flows, sfc)
	if err != nil {
		t.Fatal(err)
	}
	_, greedyCost, err := vnfopt.GreedyPlacement().Place(dc, flows, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if dpCost > steerCost+1e-6 || dpCost > greedyCost+1e-6 {
		t.Fatalf("DP %v should not lose to Steering %v or Greedy %v", dpCost, steerCost, greedyCost)
	}

	// Dynamic traffic: rates shift; TOM reacts.
	const mu = 100
	flows2 := flows.WithRates(vnfopt.GenerateRates(len(flows), rng))
	m, ct, err := vnfopt.MPareto().Migrate(dc, flows2, sfc, p, mu)
	if err != nil {
		t.Fatal(err)
	}
	_, stay, err := vnfopt.NoMigration().Migrate(dc, flows2, sfc, p, mu)
	if err != nil {
		t.Fatal(err)
	}
	if ct > stay+1e-6 {
		t.Fatalf("mPareto %v worse than NoMigration %v", ct, stay)
	}
	if vnfopt.MigrationCount(p, m) < 0 {
		t.Fatal("negative migration count")
	}

	// VM-migration baselines run on the same scenario.
	for _, b := range []vnfopt.VMMigrator{vnfopt.PLANBaseline(0), vnfopt.MCFBaseline(0)} {
		_, total, _, err := b.Migrate(dc, flows2, sfc, p, mu)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if total <= 0 {
			t.Fatalf("%s: nonpositive total %v", b.Name(), total)
		}
	}
}

func TestTop1FacadeAgreement(t *testing.T) {
	topo := vnfopt.MustFatTree(4, nil)
	dc := vnfopt.MustNewPPDC(topo, vnfopt.Options{})
	f := vnfopt.VMPair{Src: topo.Hosts[0], Dst: topo.Hosts[10], Rate: 9}
	dpP, dpC, err := vnfopt.Top1DP(dc, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, optC, proven, err := vnfopt.Top1Optimal(dc, f, 4, 0)
	if err != nil || !proven {
		t.Fatalf("%v proven=%v", err, proven)
	}
	pdP, pdC, err := vnfopt.Top1PrimalDual(dc, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dpP) != 4 || len(pdP) != 4 {
		t.Fatalf("placement lengths %d %d", len(dpP), len(pdP))
	}
	if dpC < optC-1e-9 || pdC < optC-1e-9 {
		t.Fatalf("heuristics beat optimal: dp=%v pd=%v opt=%v", dpC, pdC, optC)
	}
}

func TestParetoFrontFacade(t *testing.T) {
	topo := vnfopt.MustFatTree(4, nil)
	dc := vnfopt.MustNewPPDC(topo, vnfopt.Options{})
	rng := rand.New(rand.NewSource(7))
	flows := vnfopt.MustGeneratePairs(topo, 20, vnfopt.DefaultIntraRack, rng)
	sfc := vnfopt.NewSFC(3)
	p, _, err := vnfopt.DPPlacement().Place(dc, flows, sfc)
	if err != nil {
		t.Fatal(err)
	}
	flows2 := flows.WithRates(vnfopt.GenerateRates(len(flows), rng))
	pNew, _, err := vnfopt.DPPlacement().Place(dc, flows2, sfc)
	if err != nil {
		t.Fatal(err)
	}
	points := vnfopt.ParallelFrontiers(dc, flows2, sfc, p, pNew, 200)
	if len(points) == 0 {
		t.Fatal("no frontiers")
	}
	if points[0].Cb != 0 {
		t.Fatalf("first frontier C_b = %v", points[0].Cb)
	}
	// The sweep's filtered front must be consistent with the helpers.
	_ = vnfopt.IsParetoFront(points)
	_ = vnfopt.IsConvexFront(points)
}

func TestDiurnalFacade(t *testing.T) {
	m := vnfopt.PaperDiurnal()
	if m.Horizon() != 15 {
		t.Fatalf("horizon = %d", m.Horizon())
	}
	if math.Abs(m.Scale(6)-0.8) > 1e-12 {
		t.Fatalf("peak = %v", m.Scale(6))
	}
}

func TestStrollFacade(t *testing.T) {
	in := vnfopt.StrollInstance{
		Cost: [][]float64{
			{0, 2, 3, 4},
			{2, 0, 1, 2},
			{3, 1, 0, 1},
			{4, 2, 1, 0},
		},
		S: 0, T: 3, N: 2,
	}
	dp, err := vnfopt.SolveStrollDP(in)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := vnfopt.SolveStrollOptimal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := vnfopt.SolveStrollPrimalDual(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost != 4 { // 0→1→2→3 = 2+1+1
		t.Fatalf("optimal = %v, want 4", opt.Cost)
	}
	if dp.Cost < opt.Cost || pd.Cost < opt.Cost {
		t.Fatalf("heuristics below optimal: %v %v", dp.Cost, pd.Cost)
	}
}

func TestWeightedTopologiesFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, build := range []func() (*vnfopt.Topology, error){
		func() (*vnfopt.Topology, error) { return vnfopt.Linear(5, vnfopt.UnitWeights()) },
		func() (*vnfopt.Topology, error) { return vnfopt.Ring(6, vnfopt.PaperDelay(rng)) },
		func() (*vnfopt.Topology, error) { return vnfopt.Star(4, vnfopt.UniformDelay(2, 1, rng)) },
		func() (*vnfopt.Topology, error) { return vnfopt.RandomMesh(10, 6, 4, nil, rng) },
		func() (*vnfopt.Topology, error) { return vnfopt.FatTree(4, nil) },
	} {
		topo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vnfopt.NewPPDC(topo, vnfopt.Options{}); err != nil {
			t.Fatal(err)
		}
	}
}
