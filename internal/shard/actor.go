package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrMailboxFull is returned by Submit (and Do) when the actor's
// bounded mailbox has no room. The caller owns the backpressure policy;
// the daemon answers 429 with Retry-After.
var ErrMailboxFull = errors.New("shard: mailbox full")

// ErrClosed is returned when a command is offered to an actor that has
// been closed (scenario deleted or daemon draining).
var ErrClosed = errors.New("shard: actor closed")

// Actor is a run loop that owns one shard's state. Commands are plain
// closures: they are enqueued into a bounded FIFO mailbox and executed
// one at a time, in submission order, by a single goroutine — so
// everything a command touches is serialized without any further
// locking, and a sequence of commands produces bit-identical state to
// running the same closures inline.
//
// Close drains: commands already accepted into the mailbox still run,
// then the goroutine exits. Commands offered after Close fail with
// ErrClosed.
type Actor struct {
	mu     sync.RWMutex // guards closed vs. sends into mbox
	mbox   chan func()
	closed bool
	done   chan struct{}
	depth  atomic.Int64

	// OnPanic, when non-nil, receives the value of a panic that escaped
	// a command; the run loop survives it. Set it before submitting
	// commands. Do additionally converts the panic into its own error
	// return. A nil OnPanic still contains the panic (the daemon must
	// not die because one scenario's solver did).
	OnPanic func(v any)
}

// NewActor starts an actor whose mailbox holds up to capacity pending
// commands (capacity < 1 is treated as 1).
func NewActor(capacity int) *Actor {
	if capacity < 1 {
		capacity = 1
	}
	a := &Actor{
		mbox: make(chan func(), capacity),
		done: make(chan struct{}),
	}
	go a.run()
	return a
}

func (a *Actor) run() {
	defer close(a.done)
	for fn := range a.mbox {
		a.runOne(fn)
		a.depth.Add(-1)
	}
}

// runOne executes one command with panic containment: a panicking
// command must not kill the run loop (and with it every queued caller).
func (a *Actor) runOne(fn func()) {
	defer func() {
		if v := recover(); v != nil && a.OnPanic != nil {
			a.OnPanic(v)
		}
	}()
	fn()
}

// Submit enqueues fn without blocking. ErrMailboxFull when the mailbox
// is at capacity, ErrClosed after Close.
func (a *Actor) Submit(fn func()) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return ErrClosed
	}
	select {
	case a.mbox <- fn:
		a.depth.Add(1)
		return nil
	default:
		return ErrMailboxFull
	}
}

// SubmitCtx enqueues fn, blocking while the mailbox is full until space
// frees up or ctx is done. This is the flow-control path for streaming
// ingest: one connection pushing batches faster than the run loop
// drains them is slowed to the drain rate instead of rejected.
func (a *Actor) SubmitCtx(ctx context.Context, fn func()) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return ErrClosed
	}
	select {
	case a.mbox <- fn:
		a.depth.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do submits fn and waits for it to finish executing. A panic inside fn
// is contained and returned as an error (after OnPanic, when set).
func (a *Actor) Do(fn func()) error {
	done := make(chan struct{})
	var pErr error
	if err := a.Submit(func() {
		defer func() {
			if v := recover(); v != nil {
				pErr = fmt.Errorf("shard: command panicked: %v", v)
				if a.OnPanic != nil {
					a.OnPanic(v)
				}
			}
			close(done)
		}()
		fn()
	}); err != nil {
		return err
	}
	<-done
	return pErr
}

// Depth is the number of submitted commands not yet fully processed
// (queued plus the one executing, if any).
func (a *Actor) Depth() int { return int(a.depth.Load()) }

// Close marks the actor closed, lets every already-accepted command
// run, and waits for the run loop to exit. Idempotent.
func (a *Actor) Close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.mbox)
	}
	a.mu.Unlock()
	<-a.done
}
