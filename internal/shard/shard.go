// Package shard provides the building blocks of the daemon's sharded
// control plane (cmd/vnfoptd): a copy-on-write Map for lock-free
// scenario lookup on the request path, and a bounded-mailbox Actor
// whose run loop owns one scenario's engine and consumes its
// ingest/step/fault commands in FIFO order.
//
// The shapes are deliberately mechanism-only: Map knows nothing about
// scenarios and Actor nothing about engines, so both are testable in
// isolation and the daemon's semantics (backpressure → 429, drain on
// delete, bit-identical serialization of commands) live in one place,
// the HTTP layer.
package shard

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Map is a copy-on-write string-keyed map: reads are a single atomic
// pointer load (no lock, no contention with writers), writers are
// serialized by a mutex and publish a fresh copy of the map. The right
// trade for a scenario registry — lookups happen on every request,
// inserts and deletes only when scenarios are created or dropped.
//
// The zero value is not usable; call NewMap.
type Map[V any] struct {
	mu sync.Mutex
	p  atomic.Pointer[map[string]V]
}

// NewMap returns an empty copy-on-write map.
func NewMap[V any]() *Map[V] {
	m := &Map[V]{}
	empty := make(map[string]V)
	m.p.Store(&empty)
	return m
}

// Get returns the value under key. Lock-free: safe to call at any
// frequency concurrently with writers.
func (m *Map[V]) Get(key string) (V, bool) {
	v, ok := (*m.p.Load())[key]
	return v, ok
}

// Len returns the number of entries in the current published map.
func (m *Map[V]) Len() int { return len(*m.p.Load()) }

// Insert adds key → v and reports whether it did; a live key is left
// untouched and Insert returns false.
func (m *Map[V]) Insert(key string, v V) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.p.Load()
	if _, dup := old[key]; dup {
		return false
	}
	next := make(map[string]V, len(old)+1)
	for k, val := range old {
		next[k] = val
	}
	next[key] = v
	m.p.Store(&next)
	return true
}

// Set publishes key → v unconditionally, returning the value it
// replaced and whether one was present. Insert refuses to overwrite a
// live entry; Set exists for the rare paths that must swap one out
// under their own serialization — e.g. boot recovery replacing a
// snapshot-built shard with its WAL-rebuilt successor.
func (m *Map[V]) Set(key string, v V) (prev V, replaced bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.p.Load()
	prev, replaced = old[key]
	next := make(map[string]V, len(old)+1)
	for k, val := range old {
		next[k] = val
	}
	next[key] = v
	m.p.Store(&next)
	return prev, replaced
}

// Delete removes key, returning the removed value and whether it was
// present.
func (m *Map[V]) Delete(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.p.Load()
	v, ok := old[key]
	if !ok {
		var zero V
		return zero, false
	}
	next := make(map[string]V, len(old)-1)
	for k, val := range old {
		if k != key {
			next[k] = val
		}
	}
	m.p.Store(&next)
	return v, true
}

// Range calls f over one consistent snapshot of the map (the copy
// published at the time of the call) until f returns false. Mutations
// during the walk affect later snapshots, never this one.
func (m *Map[V]) Range(f func(key string, v V) bool) {
	for k, v := range *m.p.Load() {
		if !f(k, v) {
			return
		}
	}
}

// Keys returns the sorted keys of the current snapshot.
func (m *Map[V]) Keys() []string {
	snap := *m.p.Load()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
