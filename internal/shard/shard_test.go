package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[int]()
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map served a value")
	}
	if !m.Insert("a", 1) || !m.Insert("b", 2) {
		t.Fatal("insert of fresh keys failed")
	}
	if m.Insert("a", 9) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v after duplicate insert", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len %d", m.Len())
	}
	if keys := m.Keys(); len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys %v", keys)
	}
	if v, ok := m.Delete("a"); !ok || v != 1 {
		t.Fatalf("Delete(a) = %v,%v", v, ok)
	}
	if _, ok := m.Delete("a"); ok {
		t.Fatal("double delete succeeded")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after delete %d", m.Len())
	}
}

func TestMapSet(t *testing.T) {
	m := NewMap[int]()
	if prev, replaced := m.Set("a", 1); replaced {
		t.Fatalf("Set on empty map replaced %v", prev)
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v after Set", v, ok)
	}
	if prev, replaced := m.Set("a", 2); !replaced || prev != 1 {
		t.Fatalf("Set over live key: prev %v, replaced %v", prev, replaced)
	}
	if v, _ := m.Get("a"); v != 2 {
		t.Fatalf("Get(a) = %v after overwrite", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len %d after overwrite", m.Len())
	}
}

// TestMapRangeSnapshot: a Range walk sees the copy published at call
// time, regardless of concurrent mutation.
func TestMapRangeSnapshot(t *testing.T) {
	m := NewMap[int]()
	for i := 0; i < 8; i++ {
		m.Insert(fmt.Sprintf("k%d", i), i)
	}
	seen := 0
	m.Range(func(key string, v int) bool {
		if seen == 0 {
			for i := 0; i < 8; i++ {
				m.Delete(fmt.Sprintf("k%d", i))
			}
		}
		seen++
		return true
	})
	if seen != 8 {
		t.Fatalf("walk saw %d entries, want the snapshot's 8", seen)
	}
}

// TestMapConcurrent hammers lock-free readers against writers under the
// race detector.
func TestMapConcurrent(t *testing.T) {
	m := NewMap[int]()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 16; i++ {
					m.Get(fmt.Sprintf("k%d", i))
				}
				m.Len()
				m.Range(func(string, int) bool { return true })
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				k := fmt.Sprintf("k%d", (round+w)%16)
				if !m.Insert(k, round) {
					m.Delete(k)
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestActorFIFO: commands execute in submission order, exactly once.
func TestActorFIFO(t *testing.T) {
	a := NewActor(64)
	var got []int
	for i := 0; i < 32; i++ {
		i := i
		if err := a.Submit(func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Do(func() {}); err != nil { // barrier: all prior commands ran
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("ran %d commands", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("command order %v", got)
		}
	}
	a.Close()
}

// TestActorBackpressure: a full mailbox rejects Submit with
// ErrMailboxFull and unblocks once the consumer drains.
func TestActorBackpressure(t *testing.T) {
	a := NewActor(2)
	gate := make(chan struct{})
	if err := a.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	// The first command may already be executing; fill the queue until
	// rejection, which must happen within capacity+1 submissions.
	full := false
	for i := 0; i < 4 && !full; i++ {
		if err := a.Submit(func() {}); err != nil {
			if !errors.Is(err, ErrMailboxFull) {
				t.Fatalf("err %v", err)
			}
			full = true
		}
	}
	if !full {
		t.Fatal("mailbox never filled")
	}
	if d := a.Depth(); d < 2 {
		t.Fatalf("depth %d with a full mailbox", d)
	}
	close(gate)
	// SubmitCtx blocks until space frees, then lands.
	ran := make(chan struct{})
	if err := a.SubmitCtx(context.Background(), func() { close(ran) }); err != nil {
		t.Fatal(err)
	}
	<-ran
	a.Close()
}

// TestActorSubmitCtxCancel: a cancelled context aborts a blocked
// SubmitCtx instead of deadlocking.
func TestActorSubmitCtxCancel(t *testing.T) {
	a := NewActor(1)
	gate := make(chan struct{})
	defer close(gate)
	_ = a.Submit(func() { <-gate })
	// Fill the one queue slot (the gated command may be executing).
	for a.Submit(func() {}) == nil {
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- a.SubmitCtx(ctx, func() {}) }()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitCtx did not honour cancellation")
	}
}

// TestActorCloseDrains: every command accepted before Close runs before
// Close returns; commands after Close are rejected with ErrClosed.
func TestActorCloseDrains(t *testing.T) {
	a := NewActor(128)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		if err := a.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("drained %d of 100 commands", got)
	}
	if err := a.Submit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Submit err %v", err)
	}
	if err := a.Do(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Do err %v", err)
	}
	if err := a.SubmitCtx(context.Background(), func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close SubmitCtx err %v", err)
	}
	a.Close() // idempotent
}

// TestActorPanicContainment: a panicking command neither kills the run
// loop nor hangs the Do caller; OnPanic observes the value.
func TestActorPanicContainment(t *testing.T) {
	a := NewActor(8)
	var caught atomic.Int64
	a.OnPanic = func(v any) { caught.Add(1) }
	if err := a.Do(func() { panic("boom") }); err == nil {
		t.Fatal("Do swallowed the panic")
	}
	if err := a.Submit(func() { panic("async boom") }); err != nil {
		t.Fatal(err)
	}
	// The loop must still be alive and processing.
	ok := false
	if err := a.Do(func() { ok = true }); err != nil || !ok {
		t.Fatalf("run loop dead after panic: %v", err)
	}
	if caught.Load() != 2 {
		t.Fatalf("OnPanic saw %d panics, want 2", caught.Load())
	}
	a.Close()
}

// TestActorConcurrentSubmitClose races closers against submitters: no
// send on a closed channel, no deadlock, every accepted command runs.
func TestActorConcurrentSubmitClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		a := NewActor(16)
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if a.Submit(func() { ran.Add(1) }) == nil {
						accepted.Add(1)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Close()
		}()
		wg.Wait()
		a.Close()
		if accepted.Load() != ran.Load() {
			t.Fatalf("accepted %d but ran %d", accepted.Load(), ran.Load())
		}
	}
}
