// Package wal is a per-scenario write-ahead log: the durability layer
// that closes the gap between the daemon's periodic snapshots and the
// moment of a crash. Each scenario shard appends one record per
// mutating command — create, ingest batch, step, fault transition —
// *before* the command is applied and acknowledged, so recovery is
// snapshot + replay: restore the last durable snapshot, then re-execute
// the logged suffix through the real (deterministic) engine, landing on
// the exact pre-crash decision state instead of a stale checkpoint.
//
// On-disk layout: one directory per scenario holding numbered segment
// files (<firstSeq>.wal). A segment starts with an 8-byte magic+version
// header followed by records:
//
//	length  uint32 LE   // len(body) = 1 + 8 + len(payload)
//	body    = type uint8, seq uint64 LE, payload
//	crc     uint32 LE   // CRC32-C over body
//
// Sequence numbers are per-scenario, contiguous from 1; a decoder
// verifies both the checksum and the seq chain, so any torn or
// corrupted record is detected. A partially-written final record (the
// torn tail a crash leaves behind) is truncated on open instead of
// failing recovery — by the append-before-ack discipline that record
// was never acknowledged. Corruption in the *middle* of the chain
// (which append-only writing cannot produce) is reported as an error.
//
// Segments rotate at Options.SegmentBytes. Compaction is
// snapshot-anchored: after the daemon's snapshot (which embeds the
// applied seq per scenario) is durably on disk, Anchor(seq) appends an
// anchor record and deletes the segments whose records all fall at or
// below seq — replay of the surviving suffix on top of that snapshot
// reconstructs the full state.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vnfopt/internal/failfs"
)

// Type discriminates WAL records. The daemon owns the payload encodings;
// the log only frames, checksums, and sequences them.
type Type uint8

const (
	// TypeCreate carries the scenario spec (JSON) that created the shard.
	TypeCreate Type = 1
	// TypeIngest carries one accepted rate-update batch (binary; see the
	// daemon's codec).
	TypeIngest Type = 2
	// TypeStep marks one epoch close (empty payload).
	TypeStep Type = 3
	// TypeFaults carries one fault transition (JSON inject/heal sets).
	TypeFaults Type = 4
	// TypeAnchor marks a durable snapshot covering every record up to the
	// seq in its 8-byte payload; replay skips it.
	TypeAnchor Type = 5
)

func (t Type) String() string {
	switch t {
	case TypeCreate:
		return "create"
	case TypeIngest:
		return "ingest"
	case TypeStep:
		return "step"
	case TypeFaults:
		return "faults"
	case TypeAnchor:
		return "anchor"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is one framed log entry.
type Record struct {
	Type    Type
	Seq     uint64
	Payload []byte
}

// SyncPolicy picks when appended records reach stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: an acknowledged command is
	// durable against power loss. The default.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs at most once per Options.SyncEvery, piggybacked
	// on appends (group commit): a crash loses at most the un-synced
	// window of *acknowledged* commands to power loss — but nothing to a
	// mere process kill, since the bytes are already in the page cache.
	SyncInterval SyncPolicy = "interval"
	// SyncOS never fsyncs on append (rotation and close still sync):
	// durability is whatever the OS flush policy provides.
	SyncOS SyncPolicy = "os"
)

// ParseSyncPolicy validates a policy string (flag value).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncInterval, SyncOS:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown sync policy %q (want always, interval, or os)", s)
}

// Options configure one scenario log.
type Options struct {
	// FS is the filesystem seam (nil = failfs.OS).
	FS failfs.FS
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 4 MiB).
	SegmentBytes int64
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SyncEvery is the group-commit window for SyncInterval (default 50ms).
	SyncEvery time.Duration
	// Metrics receives append/replay/compaction accounting (nil = none).
	Metrics *Metrics
}

func (o *Options) setDefaults() {
	if o.FS == nil {
		o.FS = failfs.OS
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Policy == "" {
		o.Policy = SyncAlways
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
}

var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt reports corruption that torn-tail truncation cannot
	// explain: a bad record with valid records after it, or a damaged
	// non-final segment. Append-only writing cannot produce it; operator
	// attention (or a deleted log) is required.
	ErrCorrupt = errors.New("wal: corrupt log")
)

const (
	headerSize = 8
	// frameOverhead = length prefix + crc suffix.
	frameOverhead = 8
	// bodyMin = type byte + seq.
	bodyMin = 9
	// maxBody bounds one record's body during decode; anything larger is
	// treated as a torn/corrupt length.
	maxBody = 64 << 20
)

// header is the segment magic + format version. Bump the last byte on
// any incompatible format change.
var header = [headerSize]byte{'V', 'W', 'A', 'L', 'S', 'E', 'G', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is one scenario's write-ahead log. All methods are safe for
// concurrent use; in the daemon, appends come from the scenario's actor
// and Anchor from the snapshot loop.
type Log struct {
	mu   sync.Mutex
	fs   failfs.FS
	dir  string
	opts Options
	m    *Metrics

	segs    []segment // on-disk segments, ascending first-seq; last is active
	active  failfs.File
	actSize int64
	nextSeq uint64

	lastSync  time.Time
	dirty     bool
	truncated int   // torn tails truncated during Open
	failed    error // sticky: a failed append poisons the segment tail
	closed    bool
}

type segment struct {
	name  string // file name within dir
	first uint64 // seq of its first record
}

// segName formats the canonical segment file name for a first seq.
func segName(first uint64) string { return fmt.Sprintf("%020d.wal", first) }

// parseSegName extracts the first seq from a segment file name.
func parseSegName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) == 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if necessary) the scenario log in dir, scans the
// existing segments, truncates a torn tail in the final segment, and
// positions the log to append at the next sequence number. The returned
// log is ready for Replay (which re-reads the decoded suffix from disk)
// and Append.
func Open(dir string, opts Options) (*Log, error) {
	opts.setDefaults()
	l := &Log{fs: opts.FS, dir: dir, opts: opts, m: opts.Metrics, nextSeq: 1}
	if err := l.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, segment{name: e.Name(), first: first})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	if err := l.recoverTail(); err != nil {
		return nil, err
	}
	l.m.observeOpen(len(l.segs), l.truncated)
	return l, nil
}

// recoverTail scans the segments, validates the seq chain, truncates a
// torn tail of the final segment (or drops it entirely when even its
// header is torn), and sets nextSeq.
func (l *Log) recoverTail() error {
	if len(l.segs) > 0 {
		// Compaction may have dropped the prefix of the chain; the
		// decode contract is only that the *surviving* segments chain
		// contiguously from the first one's seq.
		l.nextSeq = l.segs[0].first
	}
	for i := 0; i < len(l.segs); i++ {
		seg := l.segs[i]
		final := i == len(l.segs)-1
		path := filepath.Join(l.dir, seg.name)
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if seg.first != l.nextSeq {
			return fmt.Errorf("%w: segment %s starts at seq %d, want %d", ErrCorrupt, seg.name, seg.first, l.nextSeq)
		}
		good, records, derr := decodeSegment(data, seg.first, nil)
		switch {
		case derr == nil && good == len(data):
			l.nextSeq += uint64(records)
			continue
		case !final:
			// Only the last segment may carry a torn tail; damage earlier
			// in the chain is real corruption.
			return fmt.Errorf("%w: segment %s: %v", ErrCorrupt, seg.name, tailErr(derr))
		}
		// Torn tail (or torn header) of the final segment: keep the valid
		// prefix, drop the rest. A zero-record segment with a torn header
		// is removed outright — it never held a durable record.
		l.truncated++
		if good < headerSize {
			if err := l.fs.Remove(path); err != nil {
				return fmt.Errorf("wal: drop torn segment: %w", err)
			}
			l.segs = l.segs[:i]
			break
		}
		f, err := l.fs.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.nextSeq += uint64(records)
	}
	return nil
}

func tailErr(err error) error {
	if err == nil {
		return errors.New("trailing data after valid records")
	}
	return err
}

// decodeSegment walks one segment's bytes. It returns the byte offset
// of the end of the last fully-valid record (the truncation point), the
// number of records decoded, and the decode error that stopped the walk
// (nil when the whole buffer decoded cleanly). emit, when non-nil,
// receives each record; its error aborts the walk and is returned
// verbatim (distinguishable because good/records still advance).
func decodeSegment(data []byte, firstSeq uint64, emit func(Record) error) (good, records int, err error) {
	if len(data) < headerSize || [headerSize]byte(data[:headerSize]) != header {
		return 0, 0, fmt.Errorf("bad segment header")
	}
	off := headerSize
	seq := firstSeq
	for off < len(data) {
		if len(data)-off < 4 {
			return off, records, fmt.Errorf("torn length prefix")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < bodyMin || n > maxBody {
			return off, records, fmt.Errorf("bad record length %d", n)
		}
		if len(data)-off < 4+n+4 {
			return off, records, fmt.Errorf("torn record body")
		}
		body := data[off+4 : off+4+n]
		crc := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.Checksum(body, castagnoli) != crc {
			return off, records, fmt.Errorf("checksum mismatch at seq %d", seq)
		}
		if got := binary.LittleEndian.Uint64(body[1:9]); got != seq {
			return off, records, fmt.Errorf("sequence break: record %d where %d expected", got, seq)
		}
		if emit != nil {
			rec := Record{Type: Type(body[0]), Seq: seq, Payload: body[9:n:n]}
			if err := emit(rec); err != nil {
				return off, records, err
			}
		}
		off += 4 + n + 4
		seq++
		records++
	}
	return off, records, nil
}

// emitError marks an error returned by a Replay callback, so it can
// propagate verbatim instead of being reported as segment damage.
type emitError struct{ err error }

func (e emitError) Error() string { return e.err.Error() }

// Replay streams every durable record, in seq order, to fn. It re-reads
// the segment files (Open already dropped any torn tail), so it can run
// before, between, or after appends; records appended during the replay
// are not guaranteed to be seen. fn's error aborts the replay and is
// returned unchanged.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	fs := l.fs
	l.mu.Unlock()
	for _, seg := range segs {
		data, err := fs.ReadFile(filepath.Join(l.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		_, _, derr := decodeSegment(data, seg.first, func(rec Record) error {
			l.m.observeReplay(1)
			if err := fn(rec); err != nil {
				return emitError{err}
			}
			return nil
		})
		if derr != nil {
			var ee emitError
			if errors.As(derr, &ee) {
				return ee.err
			}
			// A decode failure here means the file changed or broke after
			// Open validated it; surface it rather than silently stopping.
			return fmt.Errorf("wal: segment %s: %w", seg.name, derr)
		}
	}
	return nil
}

// Append frames, checksums, and writes one record, returning its
// assigned sequence number. Depending on the sync policy the record is
// fsynced before Append returns; the caller must not acknowledge the
// command to a client until Append has succeeded. A failed append
// poisons the log (the segment tail is suspect) — every later Append
// fails until the log is reopened, which re-runs torn-tail recovery.
func (l *Log) Append(typ Type, payload []byte) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log poisoned by earlier append failure: %w", l.failed)
	}
	if err := l.ensureSegmentLocked(); err != nil {
		l.failed = err
		return 0, err
	}
	seq := l.nextSeq
	n := bodyMin + len(payload)
	buf := make([]byte, 4+n+4)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	buf[4] = byte(typ)
	binary.LittleEndian.PutUint64(buf[5:], seq)
	copy(buf[13:], payload)
	body := buf[4 : 4+n]
	binary.LittleEndian.PutUint32(buf[4+n:], crc32.Checksum(body, castagnoli))

	if _, err := l.active.Write(buf); err != nil {
		l.failed = err
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.actSize += int64(len(buf))
	l.dirty = true
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			l.failed = err
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			if err := l.syncLocked(); err != nil {
				l.failed = err
				return 0, err
			}
		}
	}
	l.nextSeq++
	l.m.observeAppend(len(buf), time.Since(start))
	return seq, nil
}

// ensureSegmentLocked opens the active segment, creating or rotating as
// needed. Called with l.mu held.
func (l *Log) ensureSegmentLocked() error {
	if l.active != nil && l.actSize < l.opts.SegmentBytes {
		return nil
	}
	if l.active != nil { // rotate: seal the full segment
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.active = nil
	} else if len(l.segs) > 0 {
		// Fresh log handle over an existing chain: append to the last
		// segment unless it is already full.
		seg := l.segs[len(l.segs)-1]
		fi, err := l.fs.Stat(filepath.Join(l.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if fi.Size() < l.opts.SegmentBytes {
			f, err := l.fs.OpenFile(filepath.Join(l.dir, seg.name), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.active, l.actSize = f, fi.Size()
			return nil
		}
	}
	// New segment: header, fsync the file, fsync the directory so the
	// file's existence survives a crash before its first record does.
	name := segName(l.nextSeq)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(header[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.segs = append(l.segs, segment{name: name, first: l.nextSeq})
	l.active, l.actSize = f, headerSize
	l.lastSync = time.Now()
	l.m.observeSegments(1)
	return nil
}

// syncLocked fsyncs the active segment if it has un-synced appends.
// Called with l.mu held.
func (l *Log) syncLocked() error {
	if !l.dirty || l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.m.observeSync()
	return nil
}

// Sync forces any buffered appends to stable storage (a no-op when
// clean). Interval-policy users call it before acknowledging work that
// must be durable immediately, e.g. a final snapshot anchor.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Anchor records that a snapshot covering every record with seq <=
// appliedSeq is durably on disk: it appends (and fsyncs) an anchor
// record, then deletes the segments made redundant by the snapshot.
// The active segment is never deleted. Compaction failures are returned
// but leave the log fully usable — deleting old segments is an
// optimization, not a correctness requirement.
func (l *Log) Anchor(appliedSeq uint64) error {
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, appliedSeq)
	if _, err := l.Append(TypeAnchor, payload); err != nil {
		return err
	}
	if err := l.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// A segment is redundant when every record in it has seq <=
	// appliedSeq, i.e. the next segment starts at or below appliedSeq+1.
	removed := 0
	for len(l.segs) > 1 && l.segs[1].first <= appliedSeq+1 {
		path := filepath.Join(l.dir, l.segs[0].name)
		if err := l.fs.Remove(path); err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
		l.m.observeCompact(removed)
		l.m.observeSegments(-removed)
	}
	return nil
}

// NextSeq is the sequence number the next Append will assign.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Segments is the number of on-disk segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// TruncatedTails reports how many torn tails Open dropped.
func (l *Log) TruncatedTails() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Dir is the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the active segment. Idempotent; appends after
// Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.active = nil
	return err
}
