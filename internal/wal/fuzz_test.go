package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment decoder via a real
// Open+Replay cycle, checking the two recovery invariants fuzzing can
// reach that the unit tests can't enumerate:
//
//  1. no input panics or loops the decoder — lengths, checksums, and
//     seq fields are all attacker-controlled here;
//  2. whatever replays is a strict prefix of a valid record stream: a
//     segment is either rejected, or every emitted record chains from
//     seq 1 with an intact checksum.
//
// The corpus shape: the fuzz input is interpreted twice — once as raw
// segment bytes (pure garbage path), and once as a mutation recipe
// applied to a well-formed segment (cut at offset, flip a byte), which
// keeps the interesting torn/corrupt states reachable within a small
// byte budget.
func FuzzWALReplay(f *testing.F) {
	// Seed: a valid 3-record segment, plus degenerate inputs.
	valid := buildSegment([][]byte{[]byte("alpha"), nil, bytes.Repeat([]byte{7}, 40)})
	f.Add(valid, uint16(0), uint8(0))
	f.Add(valid, uint16(20), uint8(1))
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Add(header[:], uint16(0), uint8(0))
	f.Add([]byte("VWALSEG\x01garbage-after-header"), uint16(3), uint8(2))

	f.Fuzz(func(t *testing.T, raw []byte, cut uint16, flip uint8) {
		// Path 1: raw bytes as a whole segment.
		checkSegment(t, raw)

		// Path 2: mutate the valid segment — truncate at cut, then XOR
		// one byte chosen by flip. This is the torn-tail/bitrot space.
		data := append([]byte(nil), valid...)
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 {
			data[int(flip)%len(data)] ^= 1 << (flip % 8)
		}
		checkSegment(t, data)
	})
}

// checkSegment writes data as segment 1 of a fresh log dir and runs the
// full Open+Replay recovery on it, asserting the replayed records form
// a checksum-valid, seq-contiguous prefix.
func checkSegment(t *testing.T, data []byte) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		// Rejection is a legal outcome (e.g. a header-valid prefix that
		// recoverTail cannot truncate cleanly); the invariant is no panic.
		return
	}
	defer l.Close()
	var prev uint64
	err = l.Replay(func(r Record) error {
		if r.Seq != prev+1 {
			t.Fatalf("replayed seq %d after %d", r.Seq, prev)
		}
		prev = r.Seq
		return nil
	})
	if err != nil {
		t.Fatalf("replay after successful open: %v", err)
	}
	if got := l.NextSeq(); got != prev+1 {
		t.Fatalf("NextSeq %d after replaying through seq %d", got, prev)
	}
	// The log must be appendable after any recovery.
	if _, err := l.Append(TypeStep, nil); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// buildSegment frames payloads as TypeIngest records from seq 1.
func buildSegment(payloads [][]byte) []byte {
	buf := append([]byte(nil), header[:]...)
	for i, p := range payloads {
		n := bodyMin + len(p)
		rec := make([]byte, 4+n+4)
		binary.LittleEndian.PutUint32(rec, uint32(n))
		rec[4] = byte(TypeIngest)
		binary.LittleEndian.PutUint64(rec[5:], uint64(i+1))
		copy(rec[13:], p)
		binary.LittleEndian.PutUint32(rec[4+n:], crc32.Checksum(rec[4:4+n], castagnoli))
		buf = append(buf, rec...)
	}
	return buf
}
