package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vnfopt/internal/failfs"
	"vnfopt/internal/obs"
)

func openTemp(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func replayAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error {
		out = append(out, Record{Type: r.Type, Seq: r.Seq, Payload: append([]byte(nil), r.Payload...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAppendReplayRoundTrip: records come back in order, bitwise, with
// contiguous seqs, across a close/reopen boundary.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Type: TypeCreate, Payload: []byte(`{"id":"s1"}`)},
		{Type: TypeIngest, Payload: []byte{1, 2, 3, 4, 5}},
		{Type: TypeStep, Payload: nil},
		{Type: TypeFaults, Payload: []byte(`{"inject":[]}`)},
	}
	for i := range want {
		seq, err := l.Append(want[i].Type, want[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
		want[i].Seq = seq
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Seq != want[i].Seq || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Appends continue the seq chain after reopen.
	seq, err := l2.Append(TypeStep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)+1) {
		t.Fatalf("post-reopen seq %d, want %d", seq, len(want)+1)
	}
}

// TestSegmentRotationAndCompaction: a small segment size forces
// rotation; anchoring at an applied seq deletes exactly the segments
// the snapshot covers, and replay of the survivors starts past the
// anchor-covered prefix.
func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0xAB}, 64)
	var lastSeq uint64
	for i := 0; i < 40; i++ {
		if lastSeq, err = l.Append(TypeIngest, payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", l.Segments())
	}
	before := l.Segments()

	anchor := lastSeq - 5
	if err := l.Anchor(anchor); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("compaction removed nothing: %d -> %d segments", before, l.Segments())
	}
	// Every surviving record below the anchor must still chain correctly,
	// and nothing at or after anchor+1 may be missing.
	got := replayAll(t, l)
	if got[0].Seq > anchor+1 {
		t.Fatalf("compaction deleted too much: first surviving seq %d > anchor+1 %d", got[0].Seq, anchor+1)
	}
	last := got[len(got)-1]
	if last.Type != TypeAnchor {
		t.Fatalf("last record %v, want anchor", last.Type)
	}
	if v := binary.LittleEndian.Uint64(last.Payload); v != anchor {
		t.Fatalf("anchor payload %d, want %d", v, anchor)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("seq gap %d -> %d", got[i-1].Seq, got[i].Seq)
		}
	}
}

// TestReopenAfterCompaction: a compacted log no longer starts at seq 1;
// reopening must accept a chain that begins at the first surviving
// segment and keep appending from the true tail.
func TestReopenAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCD}, 64)
	var last uint64
	for i := 0; i < 30; i++ {
		if last, err = l.Append(TypeIngest, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Anchor(last - 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if got[0].Seq == 1 {
		t.Fatal("compaction removed nothing; test is vacuous")
	}
	if seq, err := l2.Append(TypeStep, nil); err != nil || seq != last+2 {
		t.Fatalf("append after reopen: seq %d err %v, want %d", seq, err, last+2)
	}
}

// TestTornTailTruncated: cutting the final record at every possible
// byte boundary still recovers — the valid prefix replays, the torn
// tail is dropped, and the next append reuses its seq.
func TestTornTailTruncated(t *testing.T) {
	build := func(t *testing.T) (string, int) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := l.Append(TypeIngest, []byte{byte(i), 0xFF, byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, segName(1)))
		if err != nil {
			t.Fatal(err)
		}
		return dir, len(data)
	}

	dir, full := build(t)
	recLen := (full - headerSize) / 3
	for cut := full - recLen + 1; cut < full; cut++ {
		dir, _ := build(t)
		path := filepath.Join(dir, segName(1))
		if err := os.Truncate(path, int64(cut)); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		got := replayAll(t, l)
		if len(got) != 2 {
			t.Fatalf("cut=%d: replayed %d records, want 2", cut, len(got))
		}
		if l.TruncatedTails() != 1 {
			t.Fatalf("cut=%d: truncated %d tails, want 1", cut, l.TruncatedTails())
		}
		if seq, err := l.Append(TypeStep, nil); err != nil || seq != 3 {
			t.Fatalf("cut=%d: append after truncation: seq %d err %v", cut, seq, err)
		}
		l.Close()
	}
	_ = dir
}

// TestCorruptTailTruncated: flipping a byte inside the final record's
// body (checksum break rather than a short frame) is also recovered by
// truncation.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(TypeIngest, bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x40 // inside the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
}

// TestMidChainCorruptionRejected: damage before the tail cannot be a
// torn write; Open must refuse rather than silently drop acknowledged
// records that follow.
func TestMidChainCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(TypeIngest, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Corrupt the first (non-final) segment.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-chain corruption: %v, want ErrCorrupt", err)
	}
}

// TestSyncPolicies: always fsyncs per append, interval group-commits,
// os never syncs on append; all sync on close.
func TestSyncPolicies(t *testing.T) {
	reg := obs.NewRegistry()
	count := func(policy SyncPolicy, every time.Duration, appends int) int64 {
		m := NewMetrics(reg)
		l := openTemp(t, Options{Policy: policy, SyncEvery: every, Metrics: m})
		before := m.syncs.Value()
		for i := 0; i < appends; i++ {
			if _, err := l.Append(TypeStep, nil); err != nil {
				t.Fatal(err)
			}
		}
		return m.syncs.Value() - before
	}
	if got := count(SyncAlways, 0, 10); got < 10 {
		t.Fatalf("always policy synced %d times for 10 appends", got)
	}
	if got := count(SyncInterval, time.Hour, 10); got > 1 {
		t.Fatalf("interval(1h) policy synced %d times for 10 appends, want <= 1", got)
	}
	if got := count(SyncOS, 0, 10); got > 1 {
		t.Fatalf("os policy synced %d times on append path, want <= 1 (segment create)", got)
	}
}

// TestAppendFailurePoisonsLog: a crashed write leaves the log refusing
// further appends (the tail is suspect) until reopened, and the reopen
// recovers the acknowledged prefix.
func TestAppendFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := failfs.NewFaulty(failfs.OS)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeIngest, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	ffs.CrashAt(1, true) // next write tears
	if _, err := l.Append(TypeIngest, []byte("doomed-record-payload")); err == nil {
		t.Fatal("append through crashed fs succeeded")
	}
	if _, err := l.Append(TypeStep, nil); err == nil {
		t.Fatal("append on poisoned log succeeded")
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0].Payload) != "ok" {
		t.Fatalf("recovered %d records (%q), want the acknowledged prefix only", len(got), got)
	}
}

// TestConcurrentAppendAnchor exercises the append path racing Anchor
// (the daemon's snapshot loop) under -race.
func TestConcurrentAppendAnchor(t *testing.T) {
	l := openTemp(t, Options{SegmentBytes: 512})
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := l.Append(TypeIngest, bytes.Repeat([]byte{1}, 32)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 20; i++ {
		seq := l.NextSeq()
		if seq > 1 {
			if err := l.Anchor(seq - 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The chain must still be contiguous end-to-end.
	var prev uint64
	if err := l.Replay(func(r Record) error {
		if prev != 0 && r.Seq != prev+1 {
			return fmt.Errorf("seq gap %d -> %d", prev, r.Seq)
		}
		prev = r.Seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayCallbackErrorPropagates: the callback's own error comes
// back unchanged (recovery cancellation relies on this).
func TestReplayCallbackErrorPropagates(t *testing.T) {
	l := openTemp(t, Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(TypeStep, nil); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("stop here")
	n := 0
	err := l.Replay(func(Record) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("replay error %v, want sentinel", err)
	}
	if n != 2 {
		t.Fatalf("callback ran %d times, want 2", n)
	}
}
