package wal

import (
	"time"

	"vnfopt/internal/obs"
)

// Metrics is the log's observability surface, shared by every scenario
// log the daemon opens (the operational signal is the aggregate, and
// per-scenario series would multiply cardinality by the fleet size).
// A nil *Metrics disables everything, following the obs contract.
type Metrics struct {
	appendSeconds *obs.Histogram
	appendedBytes *obs.Counter
	records       *obs.Counter
	syncs         *obs.Counter
	replayed      *obs.Counter
	truncated     *obs.Counter
	compacted     *obs.Counter
	segments      *obs.Gauge
	opens         *obs.Counter
}

// NewMetrics registers the vnfopt_wal_* family on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		appendSeconds: r.Histogram("vnfopt_wal_append_seconds"),
		appendedBytes: r.Counter("vnfopt_wal_appended_bytes_total"),
		records:       r.Counter("vnfopt_wal_records_total"),
		syncs:         r.Counter("vnfopt_wal_fsyncs_total"),
		replayed:      r.Counter("vnfopt_wal_replayed_records_total"),
		truncated:     r.Counter("vnfopt_wal_truncated_tails_total"),
		compacted:     r.Counter("vnfopt_wal_compacted_segments_total"),
		segments:      r.Gauge("vnfopt_wal_segments"),
		opens:         r.Counter("vnfopt_wal_opens_total"),
	}
}

func (m *Metrics) observeAppend(bytes int, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.appendSeconds.Observe(elapsed.Seconds())
	m.appendedBytes.Add(int64(bytes))
	m.records.Inc()
}

func (m *Metrics) observeSync() {
	if m == nil {
		return
	}
	m.syncs.Inc()
}

func (m *Metrics) observeReplay(n int) {
	if m == nil {
		return
	}
	m.replayed.Add(int64(n))
}

func (m *Metrics) observeOpen(segments, truncatedTails int) {
	if m == nil {
		return
	}
	m.opens.Inc()
	m.segments.Add(float64(segments))
	m.truncated.Add(int64(truncatedTails))
}

func (m *Metrics) observeSegments(delta int) {
	if m == nil {
		return
	}
	m.segments.Add(float64(delta))
}

func (m *Metrics) observeCompact(n int) {
	if m == nil {
		return
	}
	m.compacted.Add(int64(n))
}

// ReplayedRecords reports the total records streamed through Replay —
// test hooks use it to cancel a recovery mid-replay deterministically.
func (m *Metrics) ReplayedRecords() int64 { return m.replayed.Value() }
