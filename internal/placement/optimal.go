package placement

import (
	"context"
	"math"
	"sync/atomic"

	"vnfopt/internal/bnb"
	"vnfopt/internal/model"
)

// searchExpansions accumulates branch-and-bound node expansions across
// every Optimal search in the process, batched once per Place call (one
// atomic add per search, nothing on the hot path). Exposed so an
// observability layer can publish it as a gauge.
var searchExpansions atomic.Int64

// SearchExpansions returns the process-wide total of Optimal
// (Algorithm 4) node expansions.
func SearchExpansions() int64 { return searchExpansions.Load() }

// Optimal is the paper's Algorithm 4: exhaustive search over all ordered
// placements of the n VNFs on distinct switches, run on the shared
// branch-and-bound kernel (internal/bnb) so the k=4/k=8 benchmark
// configurations stay tractable:
//
//   - partial cost  = ingress[p(1)] + Λ·chain-so-far;
//   - lower bound   = partial + Λ·(nearestHop[v] + (edges remaining − 1)·minSwitchDist) + minEgress,
//     where nearestHop[v] is v's cheapest distinct-switch hop — per-switch
//     tables computed once per search, strictly tighter than the old
//     single global minSwitchDist;
//   - children expanded nearest-first.
//
// The paper's complexity O(|V|^n) makes Algorithm 4 a small-instance
// benchmark only; NodeBudget turns it into an anytime search that reports
// whether optimality was proven, PlaceContext makes unbounded searches
// cancellable, and Workers fans the first search levels across
// goroutines with results bit-identical to the sequential search.
type Optimal struct {
	// NodeBudget caps search expansions; 0 = unlimited.
	NodeBudget int
	// Seed optionally provides an incumbent (e.g. the DP solution) so
	// pruning is effective immediately. Nil means start from +Inf. When
	// the seed implements ContextSolver it is consulted under the same
	// context as the search, so cancellation reaches it too.
	Seed Solver
	// Workers fans the branch-and-bound out across goroutines sharing
	// one incumbent: 0 or 1 is the sequential oracle, > 1 uses that many
	// workers, < 0 uses GOMAXPROCS. Completed searches are bit-identical
	// to the sequential oracle at any width.
	Workers int
}

// Name implements Solver.
func (Optimal) Name() string { return "Optimal" }

// WithWorkers returns a copy of the solver with the parallel fan-out
// width set; it implements WorkerTunable so the engine can thread its
// SearchWorkers option through without knowing the concrete type.
func (a Optimal) WithWorkers(n int) Solver {
	a.Workers = n
	return a
}

// Place implements Solver. Callers that need the proven-optimality flag
// should use PlaceProven; callers that need cancellation, PlaceContext.
func (a Optimal) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	p, c, _, err := a.PlaceProvenContext(context.Background(), d, w, sfc)
	return p, c, err
}

// PlaceContext is Place under a context: the search polls ctx every
// 1024 node expansions and, once cancelled, stops and returns the best
// incumbent found so far together with ctx.Err(). The incumbent may be
// nil when cancellation struck before any complete placement was
// evaluated and no Seed was configured.
func (a Optimal) PlaceContext(ctx context.Context, d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	p, c, _, err := a.PlaceProvenContext(ctx, d, w, sfc)
	return p, c, err
}

// PlaceProven is Place plus a flag reporting whether the search completed
// within its node budget (i.e. the result is provably optimal).
func (a Optimal) PlaceProven(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, bool, error) {
	return a.PlaceProvenContext(context.Background(), d, w, sfc)
}

// PlaceProvenContext is the full form: anytime search with node budget,
// proven-optimality flag, and cooperative cancellation. On cancellation
// the incumbent (possibly nil) is returned with proven == false and
// err == ctx.Err(). An already-cancelled context returns before the
// Seed solver is consulted.
func (a Optimal) PlaceProvenContext(ctx context.Context, d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, bool, error) {
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, false, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, false, err
	}
	n := sfc.Len()
	in, eg := endpointArrays(d, w)
	switch n {
	case 1:
		p, c := bestSingle(d, w, in, eg)
		return p, c, true, nil
	case 2:
		p, c := bestPair(d, w, in, eg)
		return p, c, true, nil
	}

	lambda := w.TotalRate()
	sw := d.Topo.Switches

	bestCost := math.Inf(1)
	var best model.Placement
	if a.Seed != nil {
		var p model.Placement
		var c float64
		var err error
		if cs, ok := a.Seed.(ContextSolver); ok {
			p, c, err = cs.PlaceContext(ctx, d, w, sfc)
		} else {
			p, c, err = a.Seed.Place(d, w, sfc)
		}
		if err == nil {
			best = p.Clone()
			bestCost = c
		}
	}

	hop, minEdge := nearestHopTable(d, sw)
	minEg := math.Inf(1)
	for _, s := range sw {
		if eg[s] < minEg {
			minEg = eg[s]
		}
	}

	res, err := bnb.Search(ctx, bnb.Spec{
		N:   n,
		K:   len(sw),
		Cap: d.SwitchCap(),
		StepCost: func(last, v, depth int) float64 {
			if depth == 0 {
				return in[sw[v]] // ingress cost for p(1)
			}
			return lambda * d.APSP.Cost(sw[last], sw[v])
		},
		TailBound: func(v, depth int) float64 {
			r := n - 1 - depth
			if r == 0 {
				return eg[sw[v]]
			}
			return lambda*(hop[v]+float64(r-1)*minEdge) + minEg
		},
		LeafCost:   func(last int) float64 { return eg[sw[last]] },
		SeedCost:   bestCost,
		NodeBudget: a.NodeBudget,
		Workers:    a.Workers,
	})
	searchExpansions.Add(res.Expansions)
	if res.Path != nil {
		best = make(model.Placement, n)
		for j, v := range res.Path {
			best[j] = sw[v]
		}
		bestCost = res.Cost
	}
	if err != nil {
		return best, bestCost, false, err
	}
	if best == nil {
		return nil, 0, false, errNoPlacement(n)
	}
	return best, bestCost, res.Proven, nil
}

// nearestHopTable returns, per switch (dense index into sw), the cost of
// its cheapest hop to a distinct switch, plus the global minimum over
// those — the admissible bounds on a chain edge leaving a known
// (respectively unknown) switch. With colocation allowed (capacity ≠ 1)
// consecutive VNFs can share a switch at zero cost, so both collapse
// to 0.
func nearestHopTable(d *model.PPDC, sw []int) ([]float64, float64) {
	hop := make([]float64, len(sw))
	if d.SwitchCap() != 1 {
		return hop, 0
	}
	minEdge := math.Inf(1)
	for i, u := range sw {
		h := math.Inf(1)
		for j, v := range sw {
			if i != j {
				if c := d.APSP.Cost(u, v); c < h {
					h = c
				}
			}
		}
		hop[i] = h
		if h < minEdge {
			minEdge = h
		}
	}
	return hop, minEdge
}
