package placement

import (
	"math"
	"sort"

	"vnfopt/internal/model"
)

// Optimal is the paper's Algorithm 4: exhaustive search over all ordered
// placements of the n VNFs on distinct switches, here with branch-and-bound
// pruning so the k=4/k=8 benchmark configurations stay tractable:
//
//   - partial cost  = ingress[p(1)] + Λ·chain-so-far;
//   - lower bound   = partial + Λ·(edges remaining)·minSwitchDist + minEgress;
//   - children expanded nearest-first.
//
// The paper's complexity O(|V|^n) makes Algorithm 4 a small-instance
// benchmark only; NodeBudget turns it into an anytime search that reports
// whether optimality was proven.
type Optimal struct {
	// NodeBudget caps search expansions; 0 = unlimited.
	NodeBudget int
	// Seed optionally provides an incumbent (e.g. the DP solution) so
	// pruning is effective immediately. Nil means start from +Inf.
	Seed Solver
}

// Name implements Solver.
func (Optimal) Name() string { return "Optimal" }

// Proven reports whether the last Place call proved optimality. Callers
// that need the flag should use PlaceProven.
func (a Optimal) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	p, c, _, err := a.PlaceProven(d, w, sfc)
	return p, c, err
}

// PlaceProven is Place plus a flag reporting whether the search completed
// within its node budget (i.e. the result is provably optimal).
func (a Optimal) PlaceProven(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, bool, error) {
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, false, err
	}
	n := sfc.Len()
	in, eg := endpointArrays(d, w)
	switch n {
	case 1:
		p, c := bestSingle(d, w, in, eg)
		return p, c, true, nil
	case 2:
		p, c := bestPair(d, w, in, eg)
		return p, c, true, nil
	}

	lambda := w.TotalRate()
	sw := d.Topo.Switches

	bestCost := math.Inf(1)
	var best model.Placement
	if a.Seed != nil {
		if p, c, err := a.Seed.Place(d, w, sfc); err == nil {
			best = p.Clone()
			bestCost = c
		}
	}

	// minEdge: cheapest possible chain hop, for the admissible lower
	// bound. With colocation allowed (capacity ≠ 1) consecutive VNFs can
	// share a switch at zero cost, so the only admissible hop bound is 0.
	minEdge := 0.0
	if d.SwitchCap() == 1 {
		minEdge = math.Inf(1)
		for i, u := range sw {
			for j, v := range sw {
				if i != j {
					if c := d.APSP.Cost(u, v); c < minEdge {
						minEdge = c
					}
				}
			}
		}
	}
	minEg := math.Inf(1)
	for _, s := range sw {
		if eg[s] < minEg {
			minEg = eg[s]
		}
	}

	used := make(map[int]int, n)
	path := make(model.Placement, 0, n)
	nodes := 0
	exhaustedBudget := false

	type cand struct {
		v int
		c float64
	}

	var rec func(last int, depth int, cur float64)
	rec = func(last int, depth int, cur float64) {
		if exhaustedBudget {
			return
		}
		nodes++
		if a.NodeBudget > 0 && nodes > a.NodeBudget {
			exhaustedBudget = true
			return
		}
		if depth == n {
			total := cur + eg[last]
			if total < bestCost {
				bestCost = total
				best = path.Clone()
			}
			return
		}
		var children []cand
		for _, v := range sw {
			if !d.CapFits(used, v) {
				continue
			}
			step := 0.0
			if depth == 0 {
				step = in[v] // ingress cost for p(1)
			} else {
				step = lambda * d.APSP.Cost(last, v)
			}
			children = append(children, cand{v: v, c: step})
		}
		sort.Slice(children, func(i, j int) bool { return children[i].c < children[j].c })
		for _, ch := range children {
			nc := cur + ch.c
			remainingEdges := float64(n - depth - 1)
			lb := nc + lambda*remainingEdges*minEdge + minEg
			if lb >= bestCost {
				continue
			}
			used[ch.v]++
			path = append(path, ch.v)
			rec(ch.v, depth+1, nc)
			path = path[:len(path)-1]
			used[ch.v]--
			if exhaustedBudget {
				return
			}
		}
	}
	rec(-1, 0, 0)

	if best == nil {
		return nil, 0, false, errNoPlacement(n)
	}
	return best, bestCost, !exhaustedBudget, nil
}
