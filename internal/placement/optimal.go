package placement

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"vnfopt/internal/model"
)

// ctxCheckMask throttles context polls: the search consults
// ctx.Err() once every ctxCheckMask+1 node expansions, so cancellation
// latency is bounded without a per-node branch-predictor cost.
const ctxCheckMask = 1023

// searchExpansions accumulates branch-and-bound node expansions across
// every Optimal search in the process, batched once per Place call (one
// atomic add per search, nothing on the hot path). Exposed so an
// observability layer can publish it as a gauge.
var searchExpansions atomic.Int64

// SearchExpansions returns the process-wide total of Optimal
// (Algorithm 4) node expansions.
func SearchExpansions() int64 { return searchExpansions.Load() }

// Optimal is the paper's Algorithm 4: exhaustive search over all ordered
// placements of the n VNFs on distinct switches, here with branch-and-bound
// pruning so the k=4/k=8 benchmark configurations stay tractable:
//
//   - partial cost  = ingress[p(1)] + Λ·chain-so-far;
//   - lower bound   = partial + Λ·(edges remaining)·minSwitchDist + minEgress;
//   - children expanded nearest-first.
//
// The paper's complexity O(|V|^n) makes Algorithm 4 a small-instance
// benchmark only; NodeBudget turns it into an anytime search that reports
// whether optimality was proven, and PlaceContext makes unbounded
// searches cancellable.
type Optimal struct {
	// NodeBudget caps search expansions; 0 = unlimited.
	NodeBudget int
	// Seed optionally provides an incumbent (e.g. the DP solution) so
	// pruning is effective immediately. Nil means start from +Inf.
	Seed Solver
}

// Name implements Solver.
func (Optimal) Name() string { return "Optimal" }

// Place implements Solver. Callers that need the proven-optimality flag
// should use PlaceProven; callers that need cancellation, PlaceContext.
func (a Optimal) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	p, c, _, err := a.PlaceProvenContext(context.Background(), d, w, sfc)
	return p, c, err
}

// PlaceContext is Place under a context: the search polls ctx every
// ctxCheckMask+1 node expansions and, once cancelled, stops and returns
// the best incumbent found so far together with ctx.Err(). The incumbent
// may be nil when cancellation struck before any complete placement was
// evaluated and no Seed was configured.
func (a Optimal) PlaceContext(ctx context.Context, d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	p, c, _, err := a.PlaceProvenContext(ctx, d, w, sfc)
	return p, c, err
}

// PlaceProven is Place plus a flag reporting whether the search completed
// within its node budget (i.e. the result is provably optimal).
func (a Optimal) PlaceProven(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, bool, error) {
	return a.PlaceProvenContext(context.Background(), d, w, sfc)
}

// PlaceProvenContext is the full form: anytime search with node budget,
// proven-optimality flag, and cooperative cancellation. On cancellation
// the incumbent (possibly nil) is returned with proven == false and
// err == ctx.Err().
func (a Optimal) PlaceProvenContext(ctx context.Context, d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, bool, error) {
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, false, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, false, err
	}
	n := sfc.Len()
	in, eg := endpointArrays(d, w)
	switch n {
	case 1:
		p, c := bestSingle(d, w, in, eg)
		return p, c, true, nil
	case 2:
		p, c := bestPair(d, w, in, eg)
		return p, c, true, nil
	}

	lambda := w.TotalRate()
	sw := d.Topo.Switches

	bestCost := math.Inf(1)
	var best model.Placement
	if a.Seed != nil {
		if p, c, err := a.Seed.Place(d, w, sfc); err == nil {
			best = p.Clone()
			bestCost = c
		}
	}

	// minEdge: cheapest possible chain hop, for the admissible lower
	// bound. With colocation allowed (capacity ≠ 1) consecutive VNFs can
	// share a switch at zero cost, so the only admissible hop bound is 0.
	minEdge := 0.0
	if d.SwitchCap() == 1 {
		minEdge = math.Inf(1)
		for i, u := range sw {
			for j, v := range sw {
				if i != j {
					if c := d.APSP.Cost(u, v); c < minEdge {
						minEdge = c
					}
				}
			}
		}
	}
	minEg := math.Inf(1)
	for _, s := range sw {
		if eg[s] < minEg {
			minEg = eg[s]
		}
	}

	used := make(map[int]int, n)
	path := make(model.Placement, 0, n)
	nodes := 0
	exhaustedBudget := false
	cancelled := false

	type cand struct {
		v int
		c float64
	}

	var rec func(last int, depth int, cur float64)
	rec = func(last int, depth int, cur float64) {
		if exhaustedBudget || cancelled {
			return
		}
		nodes++
		if a.NodeBudget > 0 && nodes > a.NodeBudget {
			exhaustedBudget = true
			return
		}
		if nodes&ctxCheckMask == 0 && ctx.Err() != nil {
			cancelled = true
			return
		}
		if depth == n {
			total := cur + eg[last]
			if total < bestCost {
				bestCost = total
				best = path.Clone()
			}
			return
		}
		var children []cand
		for _, v := range sw {
			if !d.CapFits(used, v) {
				continue
			}
			step := 0.0
			if depth == 0 {
				step = in[v] // ingress cost for p(1)
			} else {
				step = lambda * d.APSP.Cost(last, v)
			}
			children = append(children, cand{v: v, c: step})
		}
		sort.Slice(children, func(i, j int) bool { return children[i].c < children[j].c })
		for _, ch := range children {
			nc := cur + ch.c
			remainingEdges := float64(n - depth - 1)
			lb := nc + lambda*remainingEdges*minEdge + minEg
			if lb >= bestCost {
				continue
			}
			used[ch.v]++
			path = append(path, ch.v)
			rec(ch.v, depth+1, nc)
			path = path[:len(path)-1]
			used[ch.v]--
			if exhaustedBudget || cancelled {
				return
			}
		}
	}
	rec(-1, 0, 0)
	searchExpansions.Add(int64(nodes))

	if cancelled {
		return best, bestCost, false, ctx.Err()
	}
	if best == nil {
		return nil, 0, false, errNoPlacement(n)
	}
	return best, bestCost, !exhaustedBudget, nil
}
