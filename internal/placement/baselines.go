package placement

import (
	"math"

	"vnfopt/internal/model"
)

// The two literature baselines below are *delay*-optimizing, as in their
// source papers: Steering [55] minimizes the average traversal time of
// subscribers and Greedy [34] minimizes end-to-end delay increments. Both
// treat every flow equally — neither weights by the traffic rate λ_i.
// That rate-obliviousness is precisely the gap the paper's traffic-aware
// TOP algorithms exploit (Figs. 9 and 10): under diverse production rate
// mixes, the delay-optimal placement is far from traffic-optimal.

// unweightedEndpointCosts is EndpointCosts with every λ_i treated as 1:
// the average-delay objective of the baselines (scaled by l). It rides
// the aggregated cache with a unit-rate copy of the workload, so the
// per-vertex sweep is over distinct endpoint hosts rather than flows.
func unweightedEndpointCosts(d *model.PPDC, w model.Workload) (ingress, egress []float64) {
	unit := make(model.Workload, len(w))
	for i, f := range w {
		f.Rate = 1
		unit[i] = f
	}
	return d.NewWorkloadCache(unit).EndpointCosts()
}

// Steering adapts the placement heuristic of Zhang et al. [55] to the
// paper's single-SFC model, following the paper's own description: "It
// picks the service with the highest dependency degree and finds its best
// location (i.e., minimizing the average time) until all services are
// placed. In our single-SFC model, Steering thus finds the best location
// for VNFs one by one."
//
// With one SFC every service carries every flow, so each service's
// dependency degree is identical and *its* best location — the point
// minimizing the average traversal time of the traffic through it — is
// the (rate-unweighted) traffic centroid:
//
//	score(x) = Σ_i [ c(s(v_i), x) + c(x, s(v'_i)) ] / l.
//
// Services therefore stack on distinct switches around that centroid in
// chain order. The resulting weaknesses are exactly what the paper's
// traffic-aware TOP exploits: the chain zigzags between same-tier switches
// (≥2 hops per link in a fat tree versus the optimal 1), and heavy flows
// get no priority over light ones.
type Steering struct{}

// Name implements Solver.
func (Steering) Name() string { return "Steering" }

// Place implements Solver.
func (Steering) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, err
	}
	n := sfc.Len()
	in, eg := unweightedEndpointCosts(d, w)
	used := make(map[int]int, n)
	p := make(model.Placement, 0, n)
	for j := 0; j < n; j++ {
		best := math.Inf(1)
		bestS := -1
		for _, s := range d.Topo.Switches {
			if !d.CapFits(used, s) {
				continue
			}
			if score := in[s] + eg[s]; score < best {
				best = score
				bestS = s
			}
		}
		if bestS < 0 {
			return nil, 0, errNoPlacement(n)
		}
		used[bestS]++
		p = append(p, bestS)
	}
	return p, d.CommCost(w, p), nil
}

// Greedy adapts the two-step heuristic of Liu et al. [34] per the paper's
// description: middleboxes are sorted by importance (the number of
// policies using them — equal for a single SFC, so chain order), then each
// takes the switch with the minimum *cost score*: "the increment of the
// total end-to-end delay by adding this MB plus the weighted average delay
// of all unplaced MBs to this MB". Concretely, when f_j lands on x with
// f_1..f_{j-1} already placed, the partial end-to-end path of every flow
// is src → p(1) → … → p(j−1) → x → dst, so the increment is the average
// (rate-unweighted — Liu et al. optimize delay) of
//
//	c(p(j−1), x) + c(x, dst_i) − c(p(j−1), dst_i)
//
// and the look-ahead term charges (n−j−1) times the mean switch distance
// from x for the MBs still to be routed through.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "Greedy" }

// Place implements Solver.
func (Greedy) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, err
	}
	n := sfc.Len()
	in, eg := unweightedEndpointCosts(d, w)
	l := float64(len(w))
	if l == 0 {
		l = 1
	}

	// avgDist[x] = mean shortest-path delay from switch x to all switches
	// (the possible locations of unplaced MBs).
	sw := d.Topo.Switches
	avgDist := make(map[int]float64, len(sw))
	for _, x := range sw {
		sum := 0.0
		for _, y := range sw {
			sum += d.APSP.Cost(x, y)
		}
		avgDist[x] = sum / float64(len(sw))
	}

	used := make(map[int]int, n)
	p := make(model.Placement, 0, n)
	for j := 0; j < n; j++ {
		best := math.Inf(1)
		bestS := -1
		unplaced := float64(n - j - 1)
		for _, s := range sw {
			if !d.CapFits(used, s) {
				continue
			}
			// Increment of the average end-to-end delay: the new hop
			// from the previous MB (or the sources) plus the change in
			// the closing leg to the destinations.
			score := eg[s] / l
			if j == 0 {
				score += in[s] / l
			} else {
				score += d.APSP.Cost(p[j-1], s) - eg[p[j-1]]/l
			}
			// Look-ahead: average delay of unplaced MBs to s.
			score += unplaced * avgDist[s]
			if score < best {
				best = score
				bestS = s
			}
		}
		if bestS < 0 {
			return nil, 0, errNoPlacement(n)
		}
		used[bestS]++
		p = append(p, bestS)
	}
	return p, d.CommCost(w, p), nil
}
