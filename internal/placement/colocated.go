package placement

import (
	"fmt"

	"vnfopt/internal/model"
)

// Colocated solves TOP under the paper's future-work relaxation "each
// switch can install multiple VNFs": with colocation allowed the chain
// cost Σ c(p(j), p(j+1)) collapses to zero by stacking the whole SFC on
// one switch, so the optimum is simply the switch minimizing ingress +
// egress cost. It quantifies how much footnote 3's distinct-switch
// constraint costs (the BenchmarkAblationColocation ablation).
type Colocated struct{}

// Name implements Solver.
func (Colocated) Name() string { return "Colocated" }

// Place implements Solver. It requires a PPDC whose per-switch capacity
// admits the whole chain on one switch.
func (Colocated) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	if d == nil {
		return nil, 0, fmt.Errorf("placement: nil PPDC")
	}
	if c := d.SwitchCap(); c > 0 && c < sfc.Len() {
		return nil, 0, fmt.Errorf("placement: Colocated needs capacity ≥ %d per switch, have %d", sfc.Len(), c)
	}
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, err
	}
	in, eg := endpointArrays(d, w)
	p, _ := bestSingle(d, w, in, eg)
	full := make(model.Placement, sfc.Len())
	for j := range full {
		full[j] = p[0]
	}
	return full, d.CommCost(w, full), nil
}
