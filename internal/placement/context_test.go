package placement

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// countdownCtx reports Canceled starting from the (after+1)-th Err()
// poll, making mid-search cancellation deterministic in tests.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// bigInstance is tuned so the branch-and-bound lower bound prunes
// poorly: a random mesh with link weights spread over two orders of
// magnitude and unit switch capacity. The seeded n=7 search takes well
// over 1024 expansions, so the first in-search context poll is reached
// deterministically.
func bigInstance(t *testing.T) (*model.PPDC, model.Workload, model.SFC) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	mesh, err := topology.RandomMesh(24, 12, 30, topology.UniformDelay(5, 4.9, rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustNew(mesh, model.Options{SwitchCapacity: 1})
	hosts := mesh.Hosts
	w := make(model.Workload, 12)
	for i := range w {
		w[i] = model.VMPair{
			Src:  hosts[rng.Intn(len(hosts))],
			Dst:  hosts[rng.Intn(len(hosts))],
			Rate: 1 + rng.Float64(),
		}
	}
	return d, w, model.NewSFC(7)
}

func TestPlaceContextPreCancelled(t *testing.T) {
	d, w, sfc := bigInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, _, proven, err := (Optimal{}).PlaceProvenContext(ctx, d, w, sfc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled", err)
	}
	if proven || p != nil {
		t.Fatalf("pre-cancelled search returned p=%v proven=%v", p, proven)
	}
}

// TestPlaceContextMidSearch: cancellation after the first in-search poll
// returns the incumbent — here the DP seed or better — with
// proven=false and ctx.Err().
func TestPlaceContextMidSearch(t *testing.T) {
	d, w, sfc := bigInstance(t)
	_, seedCost, err := (DP{}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	// Poll 1 is the pre-search check; poll 2 (after 1024 expansions)
	// cancels.
	cc := &countdownCtx{Context: context.Background(), after: 1}
	p, c, proven, err := (Optimal{Seed: DP{}}).PlaceProvenContext(cc, d, w, sfc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled (search may be too small: %d polls)", err, cc.calls.Load())
	}
	if proven {
		t.Fatal("cancelled search claimed proven optimality")
	}
	if err := p.Validate(d, sfc); err != nil {
		t.Fatalf("cancelled incumbent invalid: %v", err)
	}
	if c > seedCost || math.IsInf(c, 0) {
		t.Fatalf("incumbent cost %v worse than its own seed %v", c, seedCost)
	}
	if got := d.CommCost(w, p); math.Abs(got-c) > 1e-9*math.Max(1, got) {
		t.Fatalf("reported cost %v != recomputed %v", c, got)
	}
}

// TestPlaceContextMidSearchParallel: the parallel fan-out honors the
// same cancellation contract as the sequential oracle — every worker
// polls ctx, the first cancelled poll broadcasts a stop flag, and the
// shared incumbent (never worse than the seed) comes back with
// proven=false and ctx.Err().
func TestPlaceContextMidSearchParallel(t *testing.T) {
	d, w, sfc := bigInstance(t)
	_, seedCost, err := (DP{}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	// Poll 1 is the pre-search check; the first worker poll (after 1024
	// expansions on that worker) cancels.
	cc := &countdownCtx{Context: context.Background(), after: 1}
	p, c, proven, err := (Optimal{Seed: DP{}, Workers: 4}).PlaceProvenContext(cc, d, w, sfc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled (search may be too small: %d polls)", err, cc.calls.Load())
	}
	if proven {
		t.Fatal("cancelled parallel search claimed proven optimality")
	}
	if err := p.Validate(d, sfc); err != nil {
		t.Fatalf("cancelled incumbent invalid: %v", err)
	}
	if c > seedCost || math.IsInf(c, 0) {
		t.Fatalf("incumbent cost %v worse than its own seed %v", c, seedCost)
	}
	if got := d.CommCost(w, p); math.Abs(got-c) > 1e-9*math.Max(1, got) {
		t.Fatalf("reported cost %v != recomputed %v", c, got)
	}
}

// TestPlaceParallelMatchesSequential: on the weak-pruning hard instance
// a completed Workers=4 search is bit-identical to the oracle.
func TestPlaceParallelMatchesSequential(t *testing.T) {
	d, w, _ := bigInstance(t)
	sfc := model.NewSFC(5)
	p1, c1, proven1, err := (Optimal{Seed: DP{}}).PlaceProven(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, proven2, err := (Optimal{Seed: DP{}, Workers: 4}).PlaceProven(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || proven1 != proven2 || !p1.Equal(p2) {
		t.Fatalf("parallel diverged: %v/%v/%v vs %v/%v/%v", p2, c2, proven2, p1, c1, proven1)
	}
}

// TestPlaceContextCompletesUncancelled: a background context changes
// nothing relative to Place.
func TestPlaceContextCompletesUncancelled(t *testing.T) {
	d, w, _ := bigInstance(t)
	small := model.NewSFC(3)
	p1, c1, err := (Optimal{Seed: DP{}}).Place(d, w, small)
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, err := (Optimal{Seed: DP{}}).PlaceContext(context.Background(), d, w, small)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || !p1.Equal(p2) {
		t.Fatalf("context run diverged: %v/%v vs %v/%v", p1, c1, p2, c2)
	}
}

func TestSearchExpansionsAdvances(t *testing.T) {
	d, w, sfc := bigInstance(t)
	before := SearchExpansions()
	if _, _, err := (Optimal{NodeBudget: 2000, Seed: DP{}}).Place(d, w, sfc); err != nil {
		t.Fatal(err)
	}
	if got := SearchExpansions() - before; got <= 0 {
		t.Fatalf("expansion counter advanced by %d", got)
	}
}
