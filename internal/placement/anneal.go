package placement

import (
	"math"
	"math/rand"

	"vnfopt/internal/model"
)

// Anneal is a simulated-annealing TOP solver — not from the paper, but the
// local-search tool a practitioner reaches for when the DP's
// stroll-shaped search space (ingress/egress pairs × edge-count walks)
// leaves something on the table. It starts from the DP solution (so it is
// never worse) and explores two neighbourhoods:
//
//   - move: relocate one VNF to a capacity-feasible switch;
//   - swap: exchange the switches of two VNFs.
//
// Acceptance follows the Metropolis rule with a geometric cooling
// schedule. Deterministic for a fixed Seed.
type Anneal struct {
	// Iterations is the number of proposal steps (0 = default 20000).
	Iterations int
	// Seed drives the proposal RNG (default 1).
	Seed int64
	// InitialTemp is the starting temperature as a fraction of the seed
	// solution's cost (0 = default 0.05).
	InitialTemp float64
	// Inner seeds the search (nil = the paper's Algorithm 3).
	Inner Solver
}

// Name implements Solver.
func (Anneal) Name() string { return "Anneal" }

// Place implements Solver.
func (a Anneal) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, err
	}
	inner := a.Inner
	if inner == nil {
		inner = DP{}
	}
	cur, curCost, err := inner.Place(d, w, sfc)
	if err != nil {
		return nil, 0, err
	}
	cur = cur.Clone()
	n := sfc.Len()
	if n < 2 || len(d.Topo.Switches) < 2 {
		return cur, curCost, nil
	}

	iters := a.Iterations
	if iters <= 0 {
		iters = 20000
	}
	seed := a.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	temp := a.InitialTemp
	if temp <= 0 {
		temp = 0.05
	}
	t := temp * math.Max(curCost, 1)
	cooling := math.Pow(1e-3, 1/float64(iters)) // down 1000x over the run

	in, eg := endpointArrays(d, w)
	lambda := w.TotalRate()
	used := make(map[int]int, n)
	for _, v := range cur {
		used[v]++
	}
	// localDelta evaluates the C_a change of setting cur[j] = v.
	localDelta := func(j, v int) float64 {
		old := cur[j]
		delta := 0.0
		if j == 0 {
			delta += in[v] - in[old]
		} else {
			delta += lambda * (d.APSP.Cost(cur[j-1], v) - d.APSP.Cost(cur[j-1], old))
		}
		if j == n-1 {
			delta += eg[v] - eg[old]
		} else {
			delta += lambda * (d.APSP.Cost(v, cur[j+1]) - d.APSP.Cost(old, cur[j+1]))
		}
		return delta
	}

	best := cur.Clone()
	bestCost := curCost
	sw := d.Topo.Switches
	for it := 0; it < iters; it++ {
		if rng.Intn(2) == 0 {
			// Move one VNF.
			j := rng.Intn(n)
			v := sw[rng.Intn(len(sw))]
			if v == cur[j] || !d.CapFits(used, v) {
				t *= cooling
				continue
			}
			delta := localDelta(j, v)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/t) {
				used[cur[j]]--
				used[v]++
				cur[j] = v
				curCost += delta
			}
		} else {
			// Swap two VNFs (capacity-neutral).
			j := rng.Intn(n)
			k := rng.Intn(n)
			if j == k || cur[j] == cur[k] {
				t *= cooling
				continue
			}
			if j > k {
				j, k = k, j
			}
			// Evaluate exactly via full chain cost when adjacent (the
			// local deltas would double-count the shared edge).
			before := lambda*d.ChainCost(cur) + in[cur[0]] + eg[cur[n-1]]
			cur[j], cur[k] = cur[k], cur[j]
			after := lambda*d.ChainCost(cur) + in[cur[0]] + eg[cur[n-1]]
			delta := after - before
			if delta <= 0 || rng.Float64() < math.Exp(-delta/t) {
				curCost += delta
			} else {
				cur[j], cur[k] = cur[k], cur[j] // revert
			}
		}
		if curCost < bestCost-1e-12 {
			bestCost = curCost
			best = cur.Clone()
		}
		t *= cooling
	}
	// Re-evaluate exactly to shed accumulated float drift.
	return best, d.CommCost(w, best), nil
}
