// Package placement implements the paper's TOP algorithms: the DP-based
// Algorithm 3 (all ingress/egress pairs around an (n−2)-stroll), the
// exhaustive Algorithm 4, and the two comparison baselines Steering [55]
// and Greedy [34]. TOP-1 (single flow) convenience solvers used by the
// Fig. 7 experiment live in top1.go.
package placement

import (
	"context"
	"fmt"
	"math"

	"vnfopt/internal/model"
)

// Solver is one TOP algorithm: given a PPDC, a workload, and an SFC, it
// returns a placement and its total communication cost C_a(p) (Eq. 1).
type Solver interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Place computes a placement for the SFC.
	Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error)
}

// ContextSolver is a Solver with a cancellable variant. Optimal
// implements it, and consults it on its own Seed so cancellation
// reaches nested searches.
type ContextSolver interface {
	Solver
	// PlaceContext is Place under a context: on cancellation it returns
	// the best incumbent found so far together with ctx.Err().
	PlaceContext(ctx context.Context, d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error)
}

// WorkerTunable is implemented by solvers whose exact search can fan
// out across goroutines (Optimal). WithWorkers returns a copy with the
// width set: 0 or 1 = sequential, > 1 = that many workers, < 0 =
// GOMAXPROCS. The engine uses it to apply its SearchWorkers option.
type WorkerTunable interface {
	Solver
	WithWorkers(n int) Solver
}

// checkInputs validates the common preconditions of all solvers.
func checkInputs(d *model.PPDC, w model.Workload, sfc model.SFC) error {
	if d == nil {
		return fmt.Errorf("placement: nil PPDC")
	}
	n := sfc.Len()
	if n < 1 {
		return fmt.Errorf("placement: SFC must contain at least one VNF")
	}
	if c := d.SwitchCap(); c > 0 && n > c*len(d.Topo.Switches) {
		return fmt.Errorf("placement: %d VNFs exceed %d switches × capacity %d", n, len(d.Topo.Switches), c)
	}
	if err := w.Validate(d); err != nil {
		return err
	}
	return nil
}

// switchIndex maps graph vertex IDs of switches to their dense closure
// index and back.
type switchIndex struct {
	vertices []int       // closure index -> graph vertex
	index    map[int]int // graph vertex -> closure index
}

func newSwitchIndex(d *model.PPDC) switchIndex {
	sw := d.Topo.Switches
	idx := make(map[int]int, len(sw))
	for i, v := range sw {
		idx[v] = i
	}
	return switchIndex{vertices: sw, index: idx}
}

// switchCosts returns the dense |V_s|×|V_s| shortest-path cost matrix over
// switches — the metric closure the stroll solvers take as input.
func switchCosts(d *model.PPDC) [][]float64 {
	return d.APSP.CostMatrix(d.Topo.Switches)
}

// endpointArrays restricts the aggregated workload cache's endpoint
// vectors to just what the solvers index (full vertex arrays; switch
// lookups go through the vertex id directly). The aggregated build costs
// O(l + H·|V|) for H distinct flow-endpoint hosts, versus the scalar
// model.PPDC.EndpointCosts O(l·|V|) — the scalar form stays available as
// the differential oracle.
func endpointArrays(d *model.PPDC, w model.Workload) (ingress, egress []float64) {
	return d.NewWorkloadCache(w).EndpointCosts()
}

// bestSingle solves n = 1: place the only VNF at the switch minimizing
// ingress + egress cost. This is one of the paper's "simple solutions for
// cases of n = 1, 2". The returned cost is re-evaluated through the
// scalar model so reported costs stay exactly C_a regardless of which
// (scalar or aggregated) arrays drove the argmin.
func bestSingle(d *model.PPDC, w model.Workload, in, eg []float64) (model.Placement, float64) {
	best := math.Inf(1)
	var bestS int
	for _, s := range d.Topo.Switches {
		if c := in[s] + eg[s]; c < best {
			best = c
			bestS = s
		}
	}
	p := model.Placement{bestS}
	return p, d.CommCost(w, p)
}

// bestPair solves n = 2 exactly: all ordered switch pairs.
func bestPair(d *model.PPDC, w model.Workload, in, eg []float64) (model.Placement, float64) {
	lambda := w.TotalRate()
	best := math.Inf(1)
	var p model.Placement
	capOne := d.SwitchCap() == 1
	for _, a := range d.Topo.Switches {
		for _, b := range d.Topo.Switches {
			if a == b && capOne {
				continue
			}
			if c := in[a] + eg[b] + lambda*d.APSP.Cost(a, b); c < best {
				best = c
				p = model.Placement{a, b}
			}
		}
	}
	return p, d.CommCost(w, p)
}
