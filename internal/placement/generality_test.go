package placement

import (
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// TestSolversOnEveryTopology exercises the full TOP roster on each
// supported fabric — the paper's claim that the problems and solutions
// "apply to any data center topology".
func TestSolversOnEveryTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	builders := map[string]func() (*topology.Topology, error){
		"fat-tree":   func() (*topology.Topology, error) { return topology.FatTree(4, nil) },
		"leaf-spine": func() (*topology.Topology, error) { return topology.LeafSpine(6, 3, 4, nil) },
		"jellyfish": func() (*topology.Topology, error) {
			return topology.Jellyfish(16, 4, 2, nil, rand.New(rand.NewSource(3)))
		},
		"ring":   func() (*topology.Topology, error) { return topology.Ring(10, nil) },
		"star":   func() (*topology.Topology, error) { return topology.Star(8, nil) },
		"linear": func() (*topology.Topology, error) { return topology.Linear(8, nil) },
		"mesh": func() (*topology.Topology, error) {
			return topology.RandomMesh(14, 10, 8, nil, rand.New(rand.NewSource(5)))
		},
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			topo, err := build()
			if err != nil {
				t.Fatal(err)
			}
			d := model.MustNew(topo, model.Options{})
			w := workload.MustPairs(topo, 12, 0.5, rng)
			sfc := model.NewSFC(3)
			var costs = map[string]float64{}
			for _, s := range []Solver{DP{}, Optimal{NodeBudget: 100_000, Seed: DP{}}, Steering{}, Greedy{}} {
				p, c, err := s.Place(d, w, sfc)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if err := p.Validate(d, sfc); err != nil {
					t.Fatalf("%s placement invalid on %s: %v", s.Name(), name, err)
				}
				costs[s.Name()] = c
			}
			// The heuristics can never beat the Optimal incumbent's bound
			// seeded by DP.
			if costs["DP"] < costs["Optimal"]-1e-6 {
				t.Fatalf("DP %v below Optimal %v on %s", costs["DP"], costs["Optimal"], name)
			}
		})
	}
}
