package placement

import (
	"fmt"
	"math"
	"sort"

	"vnfopt/internal/model"
	"vnfopt/internal/stroll"
)

// DP is the paper's Algorithm 3: for every ordered (ingress, egress)
// switch pair it solves an (n−2)-stroll between them with the Algorithm-2
// dynamic program, then keeps the juxtaposition of minimum total cost
//
//	C_a = ingress[p(1)] + Λ·stroll(p(1), p(n), n−2) + egress[p(n)].
//
// One DP table per egress switch serves all ingress switches, so the whole
// sweep costs O(n·|V_s|³) rather than the naive O(n·|V_s|⁴).
//
// DP follows the paper's distinct-switch model: even when the PPDC allows
// colocation it only produces all-distinct placements (and so needs
// n ≤ |V_s|); use Optimal or Anneal to exploit spare switch capacity.
type DP struct {
	// MaxEdges caps the per-query edge ramp of the stroll DP
	// (0 = solver default).
	MaxEdges int
}

// Name implements Solver.
func (DP) Name() string { return "DP" }

// Place implements Solver.
func (a DP) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	if err := checkInputs(d, w, sfc); err != nil {
		return nil, 0, err
	}
	n := sfc.Len()
	in, eg := endpointArrays(d, w)
	switch n {
	case 1:
		p, c := bestSingle(d, w, in, eg)
		return p, c, nil
	case 2:
		p, c := bestPair(d, w, in, eg)
		return p, c, nil
	}

	si := newSwitchIndex(d)
	cost := switchCosts(d)
	lambda := w.TotalRate()

	// Seed the incumbent with Steering so the bound-based pruning below
	// bites immediately (Steering is O(n·|V_s|) and always feasible).
	bestCost := math.Inf(1)
	var best model.Placement
	if p, c, err := (Steering{}).Place(d, w, sfc); err == nil {
		best, bestCost = p, c
	}

	// Admissible lower bounds for pruning whole egress/ingress branches:
	// any n-VNF chain costs at least Λ·(n−1)·minEdge, and any placement
	// pays at least the cheapest ingress.
	minEdge := math.Inf(1)
	for i := range cost {
		for j := range cost[i] {
			if i != j && cost[i][j] < minEdge {
				minEdge = cost[i][j]
			}
		}
	}
	minIn := math.Inf(1)
	for _, v := range si.vertices {
		if in[v] < minIn {
			minIn = in[v]
		}
	}
	chainLB := lambda * float64(n-1) * minEdge

	// Visit egress switches cheapest-first; once the bound exceeds the
	// incumbent every later egress is prunable too.
	egOrder := make([]int, len(si.vertices))
	for i := range egOrder {
		egOrder[i] = i
	}
	sort.Slice(egOrder, func(x, y int) bool {
		return eg[si.vertices[egOrder[x]]] < eg[si.vertices[egOrder[y]]]
	})
	inOrder := make([]int, len(si.vertices))
	copy(inOrder, egOrder)
	sort.Slice(inOrder, func(x, y int) bool {
		return in[si.vertices[inOrder[x]]] < in[si.vertices[inOrder[y]]]
	})

	for _, tj := range egOrder {
		egT := eg[si.vertices[tj]]
		if egT+minIn+chainLB >= bestCost {
			break // sorted: no later egress can win either
		}
		var tb *stroll.DPTable
		for _, sj := range inOrder {
			if sj == tj {
				continue
			}
			if in[si.vertices[sj]]+egT+chainLB >= bestCost {
				break // sorted: no later ingress can win for this egress
			}
			if tb == nil {
				tb = stroll.NewDPTable(cost, tj)
			}
			res, err := tb.Stroll(sj, n-2, a.MaxEdges)
			if err != nil {
				return nil, 0, err
			}
			cand := in[si.vertices[sj]] + egT + lambda*res.Cost
			if cand < bestCost {
				p := make(model.Placement, 0, n)
				p = append(p, si.vertices[sj])
				for _, v := range res.Visited {
					p = append(p, si.vertices[v])
				}
				p = append(p, si.vertices[tj])
				bestCost = cand
				best = p
			}
		}
	}
	if best == nil {
		// Unreachable for connected PPDCs with enough switches, guarded
		// by checkInputs.
		return nil, 0, errNoPlacement(n)
	}
	// Report the model-evaluated cost: when the stroll walk revisited
	// nodes, the placement's chain shortcuts it and can only be cheaper.
	return best, d.CommCost(w, best), nil
}

func errNoPlacement(n int) error {
	return fmt.Errorf("placement: no feasible placement for %d VNFs", n)
}
