package placement

import (
	"fmt"

	"vnfopt/internal/model"
	"vnfopt/internal/stroll"
)

// This file hosts the TOP-1 (single VM flow) solvers compared in the
// paper's Fig. 7: DP-Stroll (Algorithm 2), the exhaustive optimal, and
// PrimalDual (Algorithm 1). Each reduces TOP-1 to an n-stroll between the
// flow's source and destination hosts in the metric closure G''
// (Theorem 1) and converts the stroll's first n distinct switches back
// into a placement.

// Top1Instance builds the n-stroll instance of Theorem 1 for one flow:
// closure index 0 is s(v_1), index 1 is s(v'_1) (kept separate even when
// the two VMs share a host, matching the paper's n-tour construction in
// Fig. 5), and indices 2… are the switches. The returned slice maps
// closure indices back to graph vertices.
func Top1Instance(d *model.PPDC, f model.VMPair, n int) (stroll.Instance, []int, error) {
	if d == nil {
		return stroll.Instance{}, nil, fmt.Errorf("placement: nil PPDC")
	}
	keep := make([]int, 0, 2+len(d.Topo.Switches))
	keep = append(keep, f.Src, f.Dst)
	keep = append(keep, d.Topo.Switches...)
	in := stroll.Instance{Cost: d.APSP.CostMatrix(keep), S: 0, T: 1, N: n}
	if err := in.Validate(); err != nil {
		return stroll.Instance{}, nil, err
	}
	return in, keep, nil
}

// top1Result converts a stroll result back into a placement and evaluates
// the model objective C_a (which shortcuts any revisits in the walk).
func top1Result(d *model.PPDC, f model.VMPair, keep []int, res stroll.Result) (model.Placement, float64) {
	p := make(model.Placement, 0, len(res.Visited))
	for _, v := range res.Visited {
		p = append(p, keep[v])
	}
	return p, d.CommCost(model.Workload{f}, p)
}

// Top1DP solves TOP-1 with the paper's Algorithm 2 (DP-Stroll).
func Top1DP(d *model.PPDC, f model.VMPair, n int) (model.Placement, float64, error) {
	in, keep, err := Top1Instance(d, f, n)
	if err != nil {
		return nil, 0, err
	}
	res, err := stroll.DP(in)
	if err != nil {
		return nil, 0, err
	}
	p, c := top1Result(d, f, keep, res)
	return p, c, nil
}

// Top1Optimal solves TOP-1 exactly (within nodeBudget; 0 = unlimited) and
// also reports whether optimality was proven.
func Top1Optimal(d *model.PPDC, f model.VMPair, n, nodeBudget int) (model.Placement, float64, bool, error) {
	in, keep, err := Top1Instance(d, f, n)
	if err != nil {
		return nil, 0, false, err
	}
	res, err := stroll.Exhaustive(in, stroll.ExhaustiveOptions{NodeBudget: nodeBudget})
	if err != nil {
		return nil, 0, false, err
	}
	p, c := top1Result(d, f, keep, res)
	return p, c, res.Optimal, nil
}

// Top1PrimalDual solves TOP-1 with the primal-dual Algorithm 1.
func Top1PrimalDual(d *model.PPDC, f model.VMPair, n int) (model.Placement, float64, error) {
	in, keep, err := Top1Instance(d, f, n)
	if err != nil {
		return nil, 0, err
	}
	res, err := stroll.PrimalDual(in)
	if err != nil {
		return nil, 0, err
	}
	p, c := top1Result(d, f, keep, res)
	return p, c, nil
}
