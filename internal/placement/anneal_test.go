package placement

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func TestAnnealNeverWorseThanDP(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		w := workload.MustPairs(ft, 20, workload.DefaultIntraRack, rng)
		for n := 3; n <= 5; n++ {
			sfc := model.NewSFC(n)
			_, dpCost, err := (DP{}).Place(d, w, sfc)
			if err != nil {
				t.Fatal(err)
			}
			p, saCost, err := (Anneal{Iterations: 5000, Seed: int64(trial + 1)}).Place(d, w, sfc)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(d, sfc); err != nil {
				t.Fatalf("trial %d n=%d: %v", trial, n, err)
			}
			if saCost > dpCost+1e-6 {
				t.Fatalf("trial %d n=%d: anneal %v worse than DP seed %v", trial, n, saCost, dpCost)
			}
			if got := d.CommCost(w, p); math.Abs(got-saCost) > 1e-6 {
				t.Fatalf("reported %v evaluates to %v", saCost, got)
			}
		}
	}
}

func TestAnnealRespectsOptimalBound(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(2))
	w := workload.MustPairs(ft, 12, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(3)
	_, optCost, proven, err := (Optimal{}).PlaceProven(d, w, sfc)
	if err != nil || !proven {
		t.Fatal(err)
	}
	_, saCost, err := (Anneal{Iterations: 8000}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if saCost < optCost-1e-6 {
		t.Fatalf("anneal %v below proven optimum %v", saCost, optCost)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(3))
	w := workload.MustPairs(ft, 15, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(4)
	p1, c1, err := (Anneal{Iterations: 3000, Seed: 7}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, err := (Anneal{Iterations: 3000, Seed: 7}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) || c1 != c2 {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", p1, c1, p2, c2)
	}
}

func TestAnnealHonorsCapacity(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{SwitchCapacity: 2})
	rng := rand.New(rand.NewSource(4))
	w := workload.MustPairs(ft, 8, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(6) // 6 VNFs on 5 switches needs colocation
	p, _, err := (Anneal{Iterations: 4000}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(d, sfc); err != nil {
		t.Fatalf("capacity violated: %v", err)
	}
}

func TestAnnealTrivialChain(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(5))
	w := workload.MustPairs(ft, 4, workload.DefaultIntraRack, rng)
	// n=1: nothing to anneal; must match DP exactly.
	_, dpCost, err := (DP{}).Place(d, w, model.NewSFC(1))
	if err != nil {
		t.Fatal(err)
	}
	_, saCost, err := (Anneal{}).Place(d, w, model.NewSFC(1))
	if err != nil {
		t.Fatal(err)
	}
	if saCost != dpCost {
		t.Fatalf("n=1: %v vs %v", saCost, dpCost)
	}
}
