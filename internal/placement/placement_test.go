package placement

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// fig3Setup reproduces the paper's Fig. 3(a): a k=2 fat tree with both VMs
// of flow 1 on h1 and both VMs of flow 2 on h2, λ = ⟨100, 1⟩.
func fig3Setup(t *testing.T) (*model.PPDC, model.Workload) {
	t.Helper()
	d := model.MustNew(topology.MustFatTree(2, nil), model.Options{})
	h1, h2 := d.Topo.Hosts[0], d.Topo.Hosts[1]
	return d, model.Workload{
		{Src: h1, Dst: h1, Rate: 100},
		{Src: h2, Dst: h2, Rate: 1},
	}
}

func solvers() []Solver {
	return []Solver{DP{}, Optimal{}, Steering{}, Greedy{}}
}

func TestFig3OptimalPlacementCost(t *testing.T) {
	// The paper states the traffic-optimal 2-VNF placement for Fig. 3(a)
	// costs 410 (f1 on s1=e1.1, f2 on s2=a1.1, or a symmetric variant).
	d, w := fig3Setup(t)
	sfc := model.NewSFC(2)
	for _, s := range []Solver{DP{}, Optimal{}} {
		p, c, err := s.Place(d, w, sfc)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if c != 410 {
			t.Errorf("%s cost = %v, want 410 (paper Fig. 3(a))", s.Name(), c)
		}
		if err := p.Validate(d, sfc); err != nil {
			t.Errorf("%s placement invalid: %v", s.Name(), err)
		}
	}
}

func TestAllSolversProduceValidPlacements(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(1))
	w := workload.MustPairs(ft, 20, workload.DefaultIntraRack, rng)
	for n := 1; n <= 5; n++ {
		sfc := model.NewSFC(n)
		for _, s := range solvers() {
			p, c, err := s.Place(d, w, sfc)
			if err != nil {
				t.Fatalf("%s n=%d: %v", s.Name(), n, err)
			}
			if err := p.Validate(d, sfc); err != nil {
				t.Fatalf("%s n=%d placement invalid: %v (p=%v)", s.Name(), n, err, p)
			}
			if got := d.CommCost(w, p); math.Abs(got-c) > 1e-6 {
				t.Fatalf("%s n=%d reported cost %v != evaluated %v", s.Name(), n, c, got)
			}
		}
	}
}

func TestOptimalIsLowerBound(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		w := workload.MustPairs(ft, 10, workload.DefaultIntraRack, rng)
		for n := 3; n <= 4; n++ {
			sfc := model.NewSFC(n)
			opt, optCost, proven, err := (Optimal{}).PlaceProven(d, w, sfc)
			if err != nil {
				t.Fatal(err)
			}
			if !proven {
				t.Fatal("k=4 instance not solved to optimality")
			}
			if err := opt.Validate(d, sfc); err != nil {
				t.Fatal(err)
			}
			for _, s := range []Solver{DP{}, Steering{}, Greedy{}} {
				_, c, err := s.Place(d, w, sfc)
				if err != nil {
					t.Fatal(err)
				}
				if c < optCost-1e-6 {
					t.Fatalf("trial %d n=%d: %s cost %v beats optimal %v", trial, n, s.Name(), c, optCost)
				}
			}
			// The paper reports DP within ~6-12% of Optimal; enforce a
			// loose regression bound of 2x (the PrimalDual guarantee).
			_, dpCost, err := (DP{}).Place(d, w, sfc)
			if err != nil {
				t.Fatal(err)
			}
			if dpCost > 2*optCost+1e-6 {
				t.Fatalf("trial %d n=%d: DP %v exceeds 2x optimal %v", trial, n, dpCost, optCost)
			}
		}
	}
}

func TestWeightedPPDCSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ft := topology.MustFatTree(4, topology.PaperDelay(rng))
	d := model.MustNew(ft, model.Options{})
	w := workload.MustPairs(ft, 15, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(4)
	_, optCost, proven, err := (Optimal{Seed: DP{}}).PlaceProven(d, w, sfc)
	if err != nil || !proven {
		t.Fatalf("optimal: %v proven=%v", err, proven)
	}
	for _, s := range solvers() {
		p, c, err := s.Place(d, w, sfc)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(d, sfc); err != nil {
			t.Fatal(err)
		}
		if c < optCost-1e-6 {
			t.Fatalf("%s cost %v below optimal %v", s.Name(), c, optCost)
		}
	}
}

func TestSingleVNFAllSolversOptimal(t *testing.T) {
	// n=1 has a closed-form optimum; every solver should hit it.
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	w := workload.MustPairs(ft, 12, workload.DefaultIntraRack, rand.New(rand.NewSource(3)))
	sfc := model.NewSFC(1)
	_, want, err := (DP{}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range solvers() {
		_, c, err := s.Place(d, w, sfc)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() == "Steering" || s.Name() == "Greedy" {
			// The baselines optimize unweighted delay, so at n=1 they may
			// only match or exceed the traffic-weighted optimum.
			if c < want-1e-6 {
				t.Fatalf("%s n=1 cost %v below optimum %v", s.Name(), c, want)
			}
			continue
		}
		if math.Abs(c-want) > 1e-6 {
			t.Fatalf("%s n=1 cost %v != %v", s.Name(), c, want)
		}
	}
}

func TestCheckInputsErrors(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	w := model.Workload{{Src: ft.Hosts[0], Dst: ft.Hosts[1], Rate: 1}}
	if _, _, err := (DP{}).Place(nil, w, model.NewSFC(2)); err == nil {
		t.Fatal("nil PPDC accepted")
	}
	if _, _, err := (DP{}).Place(d, w, model.NewSFC(0)); err == nil {
		t.Fatal("empty SFC accepted")
	}
	if _, _, err := (DP{}).Place(d, w, model.NewSFC(6)); err == nil {
		t.Fatal("SFC longer than switch count accepted")
	}
	bad := model.Workload{{Src: -1, Dst: 0, Rate: 1}}
	if _, _, err := (DP{}).Place(d, bad, model.NewSFC(2)); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestOptimalNodeBudgetAnytime(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	w := workload.MustPairs(ft, 10, workload.DefaultIntraRack, rand.New(rand.NewSource(5)))
	sfc := model.NewSFC(4)
	p, _, proven, err := (Optimal{NodeBudget: 10, Seed: DP{}}).PlaceProven(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if proven {
		t.Fatal("10-node budget cannot prove optimality on k=4, n=4")
	}
	if err := p.Validate(d, sfc); err != nil {
		t.Fatalf("anytime incumbent invalid: %v", err)
	}
}

func TestTop1DPMatchesDirectStroll(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	f := model.VMPair{Src: ft.Hosts[0], Dst: ft.Hosts[9], Rate: 7}
	for n := 1; n <= 6; n++ {
		p, c, err := Top1DP(d, f, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(p) != n {
			t.Fatalf("n=%d: placement %v", n, p)
		}
		if err := p.Validate(d, model.NewSFC(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		_, optC, proven, err := Top1Optimal(d, f, n, 0)
		if err != nil || !proven {
			t.Fatalf("n=%d optimal: %v proven=%v", n, err, proven)
		}
		if c < optC-1e-9 {
			t.Fatalf("n=%d: DP %v below optimal %v", n, c, optC)
		}
		if c > 2*optC+1e-9 {
			t.Fatalf("n=%d: DP %v above 2x optimal %v", n, c, optC)
		}
	}
}

func TestTop1TourSameHost(t *testing.T) {
	// Both VMs on the same host: the paper's n-tour case (Fig. 5). With
	// f1 on the rack's edge switch and f2 on an adjacent switch, the
	// optimal 2-tour in a k=2 fat tree costs λ·(1+1+2) = 4λ.
	d := model.MustNew(topology.MustFatTree(2, nil), model.Options{})
	h1 := d.Topo.Hosts[0]
	f := model.VMPair{Src: h1, Dst: h1, Rate: 5}
	p, c, proven, err := Top1Optimal(d, f, 2, 0)
	if err != nil || !proven {
		t.Fatalf("%v proven=%v", err, proven)
	}
	if len(p) != 2 {
		t.Fatalf("placement %v", p)
	}
	if c != 20 { // 5 * (1 + 1 + 2)
		t.Fatalf("tour cost = %v, want 20", c)
	}
	dpP, dpC, err := Top1DP(d, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dpP) != 2 || dpC < c-1e-9 {
		t.Fatalf("DP tour: p=%v c=%v", dpP, dpC)
	}
}

func TestTop1PrimalDualFeasible(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	f := model.VMPair{Src: ft.Hosts[2], Dst: ft.Hosts[13], Rate: 3}
	for n := 1; n <= 5; n++ {
		p, c, err := Top1PrimalDual(d, f, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Validate(d, model.NewSFC(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		_, optC, _, err := Top1Optimal(d, f, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c < optC-1e-9 {
			t.Fatalf("n=%d: primal-dual %v below optimal %v", n, c, optC)
		}
	}
}

func TestDPHandlesZeroTraffic(t *testing.T) {
	// All-zero rates: any valid placement costs 0; solvers must not
	// divide by Λ or otherwise choke.
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	w := model.Workload{{Src: ft.Hosts[0], Dst: ft.Hosts[1], Rate: 0}}
	for _, s := range solvers() {
		p, c, err := s.Place(d, w, model.NewSFC(2))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if c != 0 {
			t.Fatalf("%s: cost %v for zero traffic", s.Name(), c)
		}
		if err := p.Validate(d, model.NewSFC(2)); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestDPColocationExtension(t *testing.T) {
	// With colocation allowed (paper future work), n may exceed |V_s| for
	// the greedy solvers and the chain may reuse switches; cost can only
	// improve or match the distinct-switch solution.
	ft := topology.MustFatTree(2, nil)
	strict := model.MustNew(ft, model.Options{})
	loose := model.MustNew(ft, model.Options{AllowColocation: true})
	w := model.Workload{
		{Src: ft.Hosts[0], Dst: ft.Hosts[0], Rate: 10},
	}
	sfc := model.NewSFC(3)
	_, cStrict, err := (Steering{}).Place(strict, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	_, cLoose, err := (Steering{}).Place(loose, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if cLoose > cStrict+1e-9 {
		t.Fatalf("colocation made Steering worse: %v > %v", cLoose, cStrict)
	}
}
