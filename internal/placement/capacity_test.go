package placement

import (
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func TestSwitchCapSemantics(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	cases := []struct {
		opts model.Options
		want int
	}{
		{model.Options{}, 1},
		{model.Options{AllowColocation: true}, -1},
		{model.Options{SwitchCapacity: 3}, 3},
		{model.Options{AllowColocation: true, SwitchCapacity: 2}, 2},
	}
	for _, tc := range cases {
		d := model.MustNew(ft, tc.opts)
		if got := d.SwitchCap(); got != tc.want {
			t.Errorf("opts %+v: cap %d, want %d", tc.opts, got, tc.want)
		}
	}
}

func TestValidateHonorsCapacity(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{SwitchCapacity: 2})
	s := d.Topo.Switches
	sfc := model.NewSFC(3)
	if err := (model.Placement{s[0], s[0], s[1]}).Validate(d, sfc); err != nil {
		t.Fatalf("capacity-2 doubling rejected: %v", err)
	}
	if err := (model.Placement{s[0], s[0], s[0]}).Validate(d, sfc); err == nil {
		t.Fatal("triple on capacity-2 switch accepted")
	}
}

func TestSolversHonorCapacity(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{SwitchCapacity: 2})
	rng := rand.New(rand.NewSource(1))
	w := workload.MustPairs(ft, 15, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(5)
	for _, s := range []Solver{DP{}, Optimal{NodeBudget: 50_000, Seed: DP{}}, Steering{}, Greedy{}} {
		p, _, err := s.Place(d, w, sfc)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := p.Validate(d, sfc); err != nil {
			t.Fatalf("%s violated capacity: %v (p=%v)", s.Name(), err, p)
		}
	}
}

func TestCapacityRelaxationNeverHurtsOptimal(t *testing.T) {
	// Raising the per-switch capacity can only improve (or match) the
	// exhaustive optimum: every capacity-1 placement remains feasible.
	ft := topology.MustFatTree(2, nil)
	rng := rand.New(rand.NewSource(2))
	w := workload.MustPairs(ft, 8, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(3)
	strict := model.MustNew(ft, model.Options{})
	relaxed := model.MustNew(ft, model.Options{SwitchCapacity: 2})
	_, c1, proven1, err := (Optimal{}).PlaceProven(strict, w, sfc)
	if err != nil || !proven1 {
		t.Fatal(err)
	}
	_, c2, proven2, err := (Optimal{}).PlaceProven(relaxed, w, sfc)
	if err != nil || !proven2 {
		t.Fatal(err)
	}
	if c2 > c1+1e-9 {
		t.Fatalf("capacity 2 optimum %v worse than capacity 1 optimum %v", c2, c1)
	}
}

func TestCapacityAllowsLongChainsOnSmallFabric(t *testing.T) {
	// k=2 has 5 switches; a 8-VNF chain is infeasible at capacity 1 but
	// fits at capacity 2.
	ft := topology.MustFatTree(2, nil)
	rng := rand.New(rand.NewSource(3))
	w := workload.MustPairs(ft, 5, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(8)
	strict := model.MustNew(ft, model.Options{})
	if _, _, err := (Steering{}).Place(strict, w, sfc); err == nil {
		t.Fatal("8 VNFs on 5 capacity-1 switches accepted")
	}
	relaxed := model.MustNew(ft, model.Options{SwitchCapacity: 2})
	p, _, err := (Steering{}).Place(relaxed, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(relaxed, sfc); err != nil {
		t.Fatal(err)
	}
}

func TestColocatedNeedsCapacity(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	rng := rand.New(rand.NewSource(4))
	w := workload.MustPairs(ft, 5, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(3)
	capped := model.MustNew(ft, model.Options{SwitchCapacity: 2})
	if _, _, err := (Colocated{}).Place(capped, w, sfc); err == nil {
		t.Fatal("3 VNFs colocated on capacity-2 switch accepted")
	}
	roomy := model.MustNew(ft, model.Options{SwitchCapacity: 3})
	p, _, err := (Colocated{}).Place(roomy, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != p[1] || p[1] != p[2] {
		t.Fatalf("colocated placement %v not on one switch", p)
	}
}
