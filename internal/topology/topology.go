// Package topology builds data-center network topologies for PPDC
// experiments: k-ary fat trees (the paper's evaluation substrate), the
// linear PPDC of the paper's Fig. 1, and a few auxiliary shapes (ring,
// star, random mesh) for testing generality — the paper notes its problems
// and solutions apply to any data-center topology.
package topology

import (
	"fmt"
	"math/rand"

	"vnfopt/internal/graph"
)

// NodeKind distinguishes hosts from switches in a topology.
type NodeKind int

const (
	// Host is a server that stores VMs.
	Host NodeKind = iota
	// Switch is a network switch whose attached server can run one VNF
	// (or several, when colocation is enabled in the model).
	Switch
)

// Topology is a PPDC network: a weighted undirected graph whose vertices are
// partitioned into hosts V_h and switches V_s.
type Topology struct {
	// Name describes the generator and parameters, e.g. "fat-tree(k=8)".
	Name string
	// Graph is the underlying network graph.
	Graph *graph.Graph
	// Hosts lists host vertex IDs (V_h).
	Hosts []int
	// Switches lists switch vertex IDs (V_s).
	Switches []int
	// Kind maps every vertex to Host or Switch.
	Kind []NodeKind
	// Labels holds human-readable vertex names (h1..., s1...).
	Labels []string
	// Racks groups hosts by their edge (top-of-rack) switch: Racks[i] is
	// the list of hosts under rack i. Used for the paper's 80% intra-rack
	// VM pair placement. May be empty for topologies without rack
	// structure.
	Racks [][]int
}

// WeightFunc assigns a weight to the next edge created by a generator.
// Generators call it once per physical link in a deterministic order.
type WeightFunc func() float64

// UnitWeights returns a WeightFunc assigning every link cost 1 (the paper's
// unweighted, hop-count PPDCs).
func UnitWeights() WeightFunc { return func() float64 { return 1 } }

// UniformDelay returns a WeightFunc drawing link delays uniformly from
// [mean-halfWidth, mean+halfWidth]. The paper's weighted experiments follow
// Greedy [34]: uniform link delays with mean 1.5 ms and variation 0.5 ms.
func UniformDelay(mean, halfWidth float64, rng *rand.Rand) WeightFunc {
	if halfWidth < 0 || mean-halfWidth < 0 {
		panic(fmt.Sprintf("topology: invalid delay distribution mean=%v halfWidth=%v", mean, halfWidth))
	}
	return func() float64 { return mean - halfWidth + 2*halfWidth*rng.Float64() }
}

// PaperDelay is the weighted-PPDC link delay distribution used in the
// paper's Fig. 10 (mean 1.5, half-width 0.5).
func PaperDelay(rng *rand.Rand) WeightFunc { return UniformDelay(1.5, 0.5, rng) }

// NumHosts returns |V_h|.
func (t *Topology) NumHosts() int { return len(t.Hosts) }

// NumSwitches returns |V_s|.
func (t *Topology) NumSwitches() int { return len(t.Switches) }

// Validate checks structural invariants: connectedness, the host/switch
// partition covering all vertices, and hosts attaching only to switches.
func (t *Topology) Validate() error {
	n := t.Graph.Order()
	if len(t.Kind) != n || len(t.Labels) != n {
		return fmt.Errorf("topology %s: kind/label arrays do not cover %d vertices", t.Name, n)
	}
	if len(t.Hosts)+len(t.Switches) != n {
		return fmt.Errorf("topology %s: partition %d hosts + %d switches != %d vertices",
			t.Name, len(t.Hosts), len(t.Switches), n)
	}
	if !t.Graph.Connected() {
		return fmt.Errorf("topology %s: not connected", t.Name)
	}
	for _, h := range t.Hosts {
		if t.Kind[h] != Host {
			return fmt.Errorf("topology %s: vertex %d listed as host but marked %v", t.Name, h, t.Kind[h])
		}
		for _, e := range t.Graph.Neighbors(h) {
			if t.Kind[e.To] != Switch {
				return fmt.Errorf("topology %s: host %d adjacent to non-switch %d", t.Name, h, e.To)
			}
		}
	}
	for _, s := range t.Switches {
		if t.Kind[s] != Switch {
			return fmt.Errorf("topology %s: vertex %d listed as switch but marked %v", t.Name, s, t.Kind[s])
		}
	}
	return nil
}

// newBase allocates a topology shell with n vertices.
func newBase(name string, n int) *Topology {
	return &Topology{
		Name:   name,
		Graph:  graph.New(n),
		Kind:   make([]NodeKind, n),
		Labels: make([]string, n),
	}
}

func (t *Topology) addHost(v int, label string) {
	t.Kind[v] = Host
	t.Labels[v] = label
	t.Hosts = append(t.Hosts, v)
}

func (t *Topology) addSwitch(v int, label string) {
	t.Kind[v] = Switch
	t.Labels[v] = label
	t.Switches = append(t.Switches, v)
}
