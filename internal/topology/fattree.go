package topology

import "fmt"

// FatTree builds a k-ary fat tree (Al-Fares et al., SIGCOMM 2008), the
// paper's evaluation topology:
//
//   - (k/2)^2 core switches;
//   - k pods, each with k/2 aggregation and k/2 edge switches;
//   - each edge switch serves k/2 hosts (one rack);
//   - each edge switch connects to every aggregation switch in its pod;
//   - aggregation switch j of a pod connects to core switches
//     j*(k/2) .. j*(k/2)+k/2-1.
//
// Totals: k^3/4 hosts and 5k^2/4 switches. The paper's scales: k=8 gives
// 128 hosts / 80 switches; k=16 gives 1024 hosts / 320 switches.
//
// weight is invoked once per link in a fixed order, so a seeded WeightFunc
// yields a reproducible weighted topology.
func FatTree(k int, weight WeightFunc) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity k must be even and >= 2, got %d", k)
	}
	if weight == nil {
		weight = UnitWeights()
	}
	half := k / 2
	numCore := half * half
	numAggPerPod := half
	numEdgePerPod := half
	numHostsPerEdge := half
	numSwitches := numCore + k*(numAggPerPod+numEdgePerPod)
	numHosts := k * numEdgePerPod * numHostsPerEdge

	t := newBase(fmt.Sprintf("fat-tree(k=%d)", k), numSwitches+numHosts)

	// Vertex layout: [core | pod0 agg | pod0 edge | pod1 agg | ... | hosts].
	core := make([]int, numCore)
	for i := range core {
		core[i] = i
		t.addSwitch(i, fmt.Sprintf("c%d", i+1))
	}
	agg := make([][]int, k)
	edge := make([][]int, k)
	v := numCore
	for p := 0; p < k; p++ {
		agg[p] = make([]int, numAggPerPod)
		for j := 0; j < numAggPerPod; j++ {
			agg[p][j] = v
			t.addSwitch(v, fmt.Sprintf("a%d.%d", p+1, j+1))
			v++
		}
		edge[p] = make([]int, numEdgePerPod)
		for j := 0; j < numEdgePerPod; j++ {
			edge[p][j] = v
			t.addSwitch(v, fmt.Sprintf("e%d.%d", p+1, j+1))
			v++
		}
	}
	hostID := 0
	for p := 0; p < k; p++ {
		for j := 0; j < numEdgePerPod; j++ {
			rack := make([]int, 0, numHostsPerEdge)
			for h := 0; h < numHostsPerEdge; h++ {
				t.addHost(v, fmt.Sprintf("h%d", hostID+1))
				rack = append(rack, v)
				hostID++
				v++
			}
			t.Racks = append(t.Racks, rack)
		}
	}

	// Links, in a deterministic order: core-agg, agg-edge, edge-host.
	for p := 0; p < k; p++ {
		for j := 0; j < numAggPerPod; j++ {
			for c := 0; c < half; c++ {
				t.Graph.AddEdge(agg[p][j], core[j*half+c], weight())
			}
		}
	}
	for p := 0; p < k; p++ {
		for j := 0; j < numAggPerPod; j++ {
			for e := 0; e < numEdgePerPod; e++ {
				t.Graph.AddEdge(agg[p][j], edge[p][e], weight())
			}
		}
	}
	rackIdx := 0
	for p := 0; p < k; p++ {
		for j := 0; j < numEdgePerPod; j++ {
			for _, h := range t.Racks[rackIdx] {
				t.Graph.AddEdge(edge[p][j], h, weight())
			}
			rackIdx++
		}
	}
	return t, nil
}

// MustFatTree is FatTree but panics on an invalid arity. Convenient in
// tests and examples where k is a compile-time constant.
func MustFatTree(k int, weight WeightFunc) *Topology {
	t, err := FatTree(k, weight)
	if err != nil {
		panic(err)
	}
	return t
}
