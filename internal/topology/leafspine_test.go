package topology

import (
	"math/rand"
	"testing"

	"vnfopt/internal/graph"
)

func TestLeafSpineStructure(t *testing.T) {
	ls, err := LeafSpine(4, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Validate(); err != nil {
		t.Fatal(err)
	}
	if ls.NumSwitches() != 6 || ls.NumHosts() != 12 || len(ls.Racks) != 4 {
		t.Fatalf("dims: %d switches, %d hosts, %d racks", ls.NumSwitches(), ls.NumHosts(), len(ls.Racks))
	}
	apsp := graph.AllPairs(ls.Graph)
	// Same rack: 2 hops; cross rack: 4 hops (leaf-spine-leaf + host legs).
	if c := apsp.Cost(ls.Racks[0][0], ls.Racks[0][1]); c != 2 {
		t.Fatalf("same-rack cost %v", c)
	}
	if c := apsp.Cost(ls.Racks[0][0], ls.Racks[3][0]); c != 4 {
		t.Fatalf("cross-rack cost %v", c)
	}
	// Every leaf connects to every spine.
	for l := 0; l < 4; l++ {
		for s := 0; s < 2; s++ {
			if !ls.Graph.HasEdge(2+l, s) {
				t.Fatalf("leaf %d missing spine %d", l, s)
			}
		}
	}
}

func TestLeafSpineErrors(t *testing.T) {
	for _, dims := range [][3]int{{0, 2, 2}, {2, 0, 2}, {2, 2, 0}} {
		if _, err := LeafSpine(dims[0], dims[1], dims[2], nil); err == nil {
			t.Errorf("dims %v accepted", dims)
		}
	}
}

func TestJellyfishStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	jf, err := Jellyfish(20, 4, 2, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Validate(); err != nil {
		t.Fatal(err)
	}
	if jf.NumSwitches() != 20 || jf.NumHosts() != 40 {
		t.Fatalf("dims: %d/%d", jf.NumSwitches(), jf.NumHosts())
	}
	// Switch-to-switch degree stays within the target (host links extra).
	for _, s := range jf.Switches {
		swDeg := 0
		for _, e := range jf.Graph.Neighbors(s) {
			if jf.Kind[e.To] == Switch {
				swDeg++
			}
		}
		if swDeg > 4 {
			t.Fatalf("switch %d degree %d exceeds 4", s, swDeg)
		}
		if swDeg < 2 {
			t.Fatalf("switch %d degree %d below ring minimum", s, swDeg)
		}
	}
}

// TestJellyfish10kFixture pins the 10k-switch benchmark fixture
// (BenchmarkWeightEvent's jellyfish_10k): same arguments, same seed —
// a connected 6-regular-ish fabric at the scale the weight-delta APSP
// path is sized for.
func TestJellyfish10kFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-switch generation in -short mode")
	}
	jf, err := Jellyfish(10000, 6, 0, nil, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Validate(); err != nil {
		t.Fatal(err)
	}
	if jf.NumSwitches() != 10000 || jf.NumHosts() != 0 {
		t.Fatalf("dims: %d switches / %d hosts, want 10000/0", jf.NumSwitches(), jf.NumHosts())
	}
	for _, s := range jf.Switches {
		if d := jf.Graph.Degree(s); d < 2 || d > 6 {
			t.Fatalf("switch %d degree %d outside [2,6]", s, d)
		}
	}
}

func TestJellyfishDeterministic(t *testing.T) {
	a, _ := Jellyfish(15, 3, 1, nil, rand.New(rand.NewSource(9)))
	b, _ := Jellyfish(15, 3, 1, nil, rand.New(rand.NewSource(9)))
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestJellyfishErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Jellyfish(2, 2, 1, nil, rng); err == nil {
		t.Error("tiny jellyfish accepted")
	}
	if _, err := Jellyfish(10, 1, 1, nil, rng); err == nil {
		t.Error("degree 1 accepted")
	}
	if _, err := Jellyfish(10, 10, 1, nil, rng); err == nil {
		t.Error("degree ≥ switches accepted")
	}
	if _, err := Jellyfish(10, 3, 1, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
	// Hostless jellyfish is legal (pure switching fabric).
	jf, err := Jellyfish(10, 3, 0, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if jf.NumHosts() != 0 {
		t.Fatal("hosts appeared")
	}
}
