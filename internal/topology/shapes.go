package topology

import (
	"fmt"
	"math/rand"
)

// Linear builds the linear PPDC of the paper's Fig. 1: a chain of
// numSwitches switches with one host attached at each end:
//
//	h1 - s1 - s2 - ... - s_n - h2
//
// Both hosts form one logical rack each.
func Linear(numSwitches int, weight WeightFunc) (*Topology, error) {
	if numSwitches < 1 {
		return nil, fmt.Errorf("topology: linear needs >= 1 switch, got %d", numSwitches)
	}
	if weight == nil {
		weight = UnitWeights()
	}
	t := newBase(fmt.Sprintf("linear(%d)", numSwitches), numSwitches+2)
	t.addHost(0, "h1")
	for i := 0; i < numSwitches; i++ {
		t.addSwitch(i+1, fmt.Sprintf("s%d", i+1))
	}
	t.addHost(numSwitches+1, "h2")
	t.Graph.AddEdge(0, 1, weight())
	for i := 1; i < numSwitches; i++ {
		t.Graph.AddEdge(i, i+1, weight())
	}
	t.Graph.AddEdge(numSwitches, numSwitches+1, weight())
	t.Racks = [][]int{{0}, {numSwitches + 1}}
	return t, nil
}

// Ring builds a cycle of numSwitches switches with one host hanging off
// each switch. Used to exercise the solvers on a non-tree topology where
// optimal strolls can be genuine walks.
func Ring(numSwitches int, weight WeightFunc) (*Topology, error) {
	if numSwitches < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 switches, got %d", numSwitches)
	}
	if weight == nil {
		weight = UnitWeights()
	}
	t := newBase(fmt.Sprintf("ring(%d)", numSwitches), 2*numSwitches)
	for i := 0; i < numSwitches; i++ {
		t.addSwitch(i, fmt.Sprintf("s%d", i+1))
	}
	for i := 0; i < numSwitches; i++ {
		t.addHost(numSwitches+i, fmt.Sprintf("h%d", i+1))
	}
	for i := 0; i < numSwitches; i++ {
		t.Graph.AddEdge(i, (i+1)%numSwitches, weight())
	}
	for i := 0; i < numSwitches; i++ {
		t.Graph.AddEdge(i, numSwitches+i, weight())
		t.Racks = append(t.Racks, []int{numSwitches + i})
	}
	return t, nil
}

// Star builds one hub switch with numLeaves leaf switches, each leaf
// serving one host. A degenerate topology useful for boundary tests: every
// switch-to-switch path runs through the hub.
func Star(numLeaves int, weight WeightFunc) (*Topology, error) {
	if numLeaves < 1 {
		return nil, fmt.Errorf("topology: star needs >= 1 leaf, got %d", numLeaves)
	}
	if weight == nil {
		weight = UnitWeights()
	}
	t := newBase(fmt.Sprintf("star(%d)", numLeaves), 1+2*numLeaves)
	t.addSwitch(0, "hub")
	for i := 0; i < numLeaves; i++ {
		t.addSwitch(1+i, fmt.Sprintf("s%d", i+1))
	}
	for i := 0; i < numLeaves; i++ {
		h := 1 + numLeaves + i
		t.addHost(h, fmt.Sprintf("h%d", i+1))
	}
	for i := 0; i < numLeaves; i++ {
		t.Graph.AddEdge(0, 1+i, weight())
	}
	for i := 0; i < numLeaves; i++ {
		t.Graph.AddEdge(1+i, 1+numLeaves+i, weight())
		t.Racks = append(t.Racks, []int{1 + numLeaves + i})
	}
	return t, nil
}

// RandomMesh builds a connected random switch mesh: a random spanning tree
// over numSwitches switches plus extraEdges random switch-switch links, with
// numHosts hosts attached to uniformly random switches. Weights come from
// weight; randomness from rng (required).
func RandomMesh(numSwitches, numHosts, extraEdges int, weight WeightFunc, rng *rand.Rand) (*Topology, error) {
	if numSwitches < 1 || numHosts < 0 || extraEdges < 0 {
		return nil, fmt.Errorf("topology: invalid random mesh parameters (%d switches, %d hosts, %d extra)",
			numSwitches, numHosts, extraEdges)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: RandomMesh requires a rand source")
	}
	if weight == nil {
		weight = UnitWeights()
	}
	t := newBase(fmt.Sprintf("mesh(%d,%d)", numSwitches, numHosts), numSwitches+numHosts)
	for i := 0; i < numSwitches; i++ {
		t.addSwitch(i, fmt.Sprintf("s%d", i+1))
	}
	for i := 0; i < numHosts; i++ {
		t.addHost(numSwitches+i, fmt.Sprintf("h%d", i+1))
	}
	for v := 1; v < numSwitches; v++ {
		t.Graph.AddEdge(rng.Intn(v), v, weight())
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(numSwitches), rng.Intn(numSwitches)
		if u != v && !t.Graph.HasEdge(u, v) {
			t.Graph.AddEdge(u, v, weight())
		}
	}
	for i := 0; i < numHosts; i++ {
		s := rng.Intn(numSwitches)
		t.Graph.AddEdge(s, numSwitches+i, weight())
		t.Racks = append(t.Racks, []int{numSwitches + i})
	}
	return t, nil
}
