package topology

import (
	"math/rand"
	"testing"

	"vnfopt/internal/graph"
)

func TestFatTreeSizes(t *testing.T) {
	cases := []struct {
		k              int
		hosts          int
		switches       int
		racks          int
		hostsPerRack   int
		edgesPerSwitch int // every switch in a fat tree has exactly k links
	}{
		{2, 2, 5, 2, 1, 2},
		{4, 16, 20, 8, 2, 4},
		{8, 128, 80, 32, 4, 8},
		{16, 1024, 320, 128, 8, 16},
		{32, 8192, 1280, 512, 16, 32}, // the BenchmarkWeightEvent big-fabric fixture
	}
	for _, tc := range cases {
		ft, err := FatTree(tc.k, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", tc.k, err)
		}
		if got := ft.NumHosts(); got != tc.hosts {
			t.Errorf("k=%d hosts = %d, want %d", tc.k, got, tc.hosts)
		}
		if got := ft.NumSwitches(); got != tc.switches {
			t.Errorf("k=%d switches = %d, want %d", tc.k, got, tc.switches)
		}
		if got := len(ft.Racks); got != tc.racks {
			t.Errorf("k=%d racks = %d, want %d", tc.k, got, tc.racks)
		}
		for i, r := range ft.Racks {
			if len(r) != tc.hostsPerRack {
				t.Errorf("k=%d rack %d has %d hosts, want %d", tc.k, i, len(r), tc.hostsPerRack)
			}
		}
		if err := ft.Validate(); err != nil {
			t.Errorf("k=%d validate: %v", tc.k, err)
		}
		// Every switch uses all k ports; hosts have exactly one uplink.
		for _, s := range ft.Switches {
			if d := ft.Graph.Degree(s); d != tc.edgesPerSwitch {
				t.Errorf("k=%d switch %s degree = %d, want %d", tc.k, ft.Labels[s], d, tc.edgesPerSwitch)
			}
		}
		for _, h := range ft.Hosts {
			if d := ft.Graph.Degree(h); d != 1 {
				t.Errorf("k=%d host %s degree = %d, want 1", tc.k, ft.Labels[h], d)
			}
		}
	}
}

func TestFatTreeInvalidArity(t *testing.T) {
	for _, k := range []int{-2, 0, 1, 3, 7} {
		if _, err := FatTree(k, nil); err == nil {
			t.Errorf("k=%d: expected error", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFatTree should panic on odd k")
		}
	}()
	MustFatTree(3, nil)
}

func TestFatTreeHopDistances(t *testing.T) {
	// Classic fat-tree distances in hops:
	// same rack: 2 (h-e-h), same pod: 4 (h-e-a-e-h), cross pod: 6.
	ft := MustFatTree(4, nil)
	apsp := graph.AllPairs(ft.Graph)
	sameRack := ft.Racks[0]
	if c := apsp.Cost(sameRack[0], sameRack[1]); c != 2 {
		t.Errorf("same-rack cost = %v, want 2", c)
	}
	// Racks 0 and 1 are in pod 0; racks 0 and 2 are in different pods.
	if c := apsp.Cost(ft.Racks[0][0], ft.Racks[1][0]); c != 4 {
		t.Errorf("same-pod cost = %v, want 4", c)
	}
	if c := apsp.Cost(ft.Racks[0][0], ft.Racks[2][0]); c != 6 {
		t.Errorf("cross-pod cost = %v, want 6", c)
	}
}

func TestFatTreeK2MatchesFig3(t *testing.T) {
	// The paper's Fig. 3 k=2 PPDC "is indeed the same linear PPDC in
	// Fig. 1": h1 and h2 at distance 2 from their edge switches via a
	// 5-switch structure (1 core + 2 agg + 2 edge).
	ft := MustFatTree(2, nil)
	if ft.NumSwitches() != 5 || ft.NumHosts() != 2 {
		t.Fatalf("k=2: %d switches, %d hosts", ft.NumSwitches(), ft.NumHosts())
	}
	apsp := graph.AllPairs(ft.Graph)
	if c := apsp.Cost(ft.Hosts[0], ft.Hosts[1]); c != 6 {
		// h - edge - agg - core - agg - edge - h
		t.Fatalf("host-host distance = %v, want 6", c)
	}
}

func TestLinear(t *testing.T) {
	lin, err := Linear(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lin.Validate(); err != nil {
		t.Fatal(err)
	}
	if lin.NumHosts() != 2 || lin.NumSwitches() != 5 {
		t.Fatalf("linear: %d hosts, %d switches", lin.NumHosts(), lin.NumSwitches())
	}
	apsp := graph.AllPairs(lin.Graph)
	// Fig. 1: h1 to h2 spans all 5 switches: 6 edges.
	if c := apsp.Cost(lin.Hosts[0], lin.Hosts[1]); c != 6 {
		t.Fatalf("h1-h2 = %v, want 6", c)
	}
	if _, err := Linear(0, nil); err == nil {
		t.Fatal("expected error for 0 switches")
	}
}

func TestRing(t *testing.T) {
	r, err := Ring(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumHosts() != 6 || r.NumSwitches() != 6 {
		t.Fatalf("ring: %d hosts %d switches", r.NumHosts(), r.NumSwitches())
	}
	apsp := graph.AllPairs(r.Graph)
	// Opposite switches on a 6-ring are 3 apart.
	if c := apsp.Cost(r.Switches[0], r.Switches[3]); c != 3 {
		t.Fatalf("opposite switches = %v, want 3", c)
	}
	if _, err := Ring(2, nil); err == nil {
		t.Fatal("expected error for tiny ring")
	}
}

func TestStar(t *testing.T) {
	s, err := Star(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	apsp := graph.AllPairs(s.Graph)
	// Leaf switch to leaf switch always via hub: 2 hops.
	if c := apsp.Cost(s.Switches[1], s.Switches[2]); c != 2 {
		t.Fatalf("leaf-leaf = %v, want 2", c)
	}
	if _, err := Star(0, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestRandomMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, err := RandomMesh(12, 8, 6, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumHosts() != 8 || m.NumSwitches() != 12 {
		t.Fatalf("mesh: %d hosts %d switches", m.NumHosts(), m.NumSwitches())
	}
	if _, err := RandomMesh(5, 5, 0, nil, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := RandomMesh(-1, 5, 0, nil, rng); err == nil {
		t.Fatal("expected error for negative switches")
	}
}

func TestRandomMeshDeterministic(t *testing.T) {
	a, _ := RandomMesh(10, 6, 5, nil, rand.New(rand.NewSource(7)))
	b, _ := RandomMesh(10, 6, 5, nil, rand.New(rand.NewSource(7)))
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestUniformDelayRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := UniformDelay(1.5, 0.5, rng)
	for i := 0; i < 1000; i++ {
		d := w()
		if d < 1.0 || d > 2.0 {
			t.Fatalf("delay %v outside [1,2]", d)
		}
	}
}

func TestUniformDelayPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative support")
		}
	}()
	UniformDelay(0.2, 0.5, rand.New(rand.NewSource(1)))
}

func TestPaperDelayWeightedFatTree(t *testing.T) {
	ft := MustFatTree(4, PaperDelay(rand.New(rand.NewSource(3))))
	for _, e := range ft.Graph.Edges() {
		if e.Weight < 1.0 || e.Weight > 2.0 {
			t.Fatalf("weighted fat-tree link %v outside [1,2]", e.Weight)
		}
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ft := MustFatTree(2, nil)
	ft.Kind[ft.Hosts[0]] = Switch
	if err := ft.Validate(); err == nil {
		t.Fatal("expected validation failure after corrupting Kind")
	}
}

func TestValidateCatchesPartitionGap(t *testing.T) {
	ft := MustFatTree(2, nil)
	ft.Hosts = ft.Hosts[:len(ft.Hosts)-1]
	if err := ft.Validate(); err == nil {
		t.Fatal("expected partition-size failure")
	}
}
