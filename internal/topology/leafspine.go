package topology

import (
	"fmt"
	"math/rand"
)

// LeafSpine builds a two-tier Clos fabric: every leaf (top-of-rack) switch
// connects to every spine switch, and each leaf serves hostsPerLeaf hosts.
// The dominant modern data-center fabric besides the fat tree; the paper
// notes its problems and solutions apply to any topology, and the tests
// exercise every solver here too.
func LeafSpine(leaves, spines, hostsPerLeaf int, weight WeightFunc) (*Topology, error) {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		return nil, fmt.Errorf("topology: leaf-spine needs positive dimensions, got %d/%d/%d",
			leaves, spines, hostsPerLeaf)
	}
	if weight == nil {
		weight = UnitWeights()
	}
	numSwitches := leaves + spines
	numHosts := leaves * hostsPerLeaf
	t := newBase(fmt.Sprintf("leaf-spine(%dx%d,%d)", leaves, spines, hostsPerLeaf), numSwitches+numHosts)

	for s := 0; s < spines; s++ {
		t.addSwitch(s, fmt.Sprintf("sp%d", s+1))
	}
	for l := 0; l < leaves; l++ {
		t.addSwitch(spines+l, fmt.Sprintf("lf%d", l+1))
	}
	v := numSwitches
	for l := 0; l < leaves; l++ {
		rack := make([]int, 0, hostsPerLeaf)
		for h := 0; h < hostsPerLeaf; h++ {
			t.addHost(v, fmt.Sprintf("h%d", l*hostsPerLeaf+h+1))
			rack = append(rack, v)
			v++
		}
		t.Racks = append(t.Racks, rack)
	}

	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			t.Graph.AddEdge(spines+l, s, weight())
		}
	}
	for l := 0; l < leaves; l++ {
		for _, h := range t.Racks[l] {
			t.Graph.AddEdge(spines+l, h, weight())
		}
	}
	return t, nil
}

// Jellyfish builds the random-regular-graph fabric of Singla et al.
// (NSDI 2012): numSwitches switches each with switchDegree random
// switch-to-switch links (degree as close to regular as the random pairing
// allows, always connected), plus hostsPerSwitch hosts on every switch.
// A stress topology for the solvers: no hierarchy, many shortest-path
// ties.
func Jellyfish(numSwitches, switchDegree, hostsPerSwitch int, weight WeightFunc, rng *rand.Rand) (*Topology, error) {
	if numSwitches < 3 || switchDegree < 2 || hostsPerSwitch < 0 {
		return nil, fmt.Errorf("topology: jellyfish needs ≥3 switches and degree ≥2, got %d/%d",
			numSwitches, switchDegree)
	}
	if switchDegree >= numSwitches {
		return nil, fmt.Errorf("topology: jellyfish degree %d must be below switch count %d",
			switchDegree, numSwitches)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: Jellyfish requires a rand source")
	}
	if weight == nil {
		weight = UnitWeights()
	}
	numHosts := numSwitches * hostsPerSwitch
	t := newBase(fmt.Sprintf("jellyfish(%d,d=%d)", numSwitches, switchDegree), numSwitches+numHosts)
	for i := 0; i < numSwitches; i++ {
		t.addSwitch(i, fmt.Sprintf("s%d", i+1))
	}
	v := numSwitches
	for i := 0; i < numSwitches; i++ {
		var rack []int
		for h := 0; h < hostsPerSwitch; h++ {
			t.addHost(v, fmt.Sprintf("h%d", i*hostsPerSwitch+h+1))
			rack = append(rack, v)
			v++
		}
		if len(rack) > 0 {
			t.Racks = append(t.Racks, rack)
		}
	}

	// Random ring first (guarantees connectivity), then random extra
	// links until the target degree is approached.
	perm := rng.Perm(numSwitches)
	deg := make([]int, numSwitches)
	addLink := func(a, b int) bool {
		if a == b || t.Graph.HasEdge(a, b) {
			return false
		}
		t.Graph.AddEdge(a, b, weight())
		deg[a]++
		deg[b]++
		return true
	}
	for i := 0; i < numSwitches; i++ {
		addLink(perm[i], perm[(i+1)%numSwitches])
	}
	// Random pairing among under-degree switches; bounded attempts keep
	// this terminating even when a perfect regular pairing is impossible.
	attempts := 20 * numSwitches * switchDegree
	for a := 0; a < attempts; a++ {
		i, j := rng.Intn(numSwitches), rng.Intn(numSwitches)
		if deg[i] < switchDegree && deg[j] < switchDegree {
			addLink(i, j)
		}
	}
	// Attach hosts.
	v = numSwitches
	for i := 0; i < numSwitches; i++ {
		for h := 0; h < hostsPerSwitch; h++ {
			t.Graph.AddEdge(i, v, weight())
			v++
		}
	}
	return t, nil
}
