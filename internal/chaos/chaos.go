// Package chaos is the deterministic fault-injection harness: a seeded
// generator produces a feasibility-preserving schedule of topology
// faults (inject + heal), and a runner drives an online engine through
// it — alongside an identical fault-free reference engine — checking
// the resilience invariants every epoch:
//
//   - the committed placement only ever uses live switches of the
//     serving region, within capacity;
//   - every reported cost is finite (unreachable flows are excluded and
//     reported, never Inf-costed);
//   - the engine's unserved-flow accounting matches an independent
//     replan of the same fault set;
//   - after the final heal the fabric is pristine again and — at μ=0
//     under the always-consult policy — the cost returns exactly to the
//     fault-free reference engine's optimum.
//
// Everything is a pure function of (scenario, seed): two runs with the
// same inputs produce identical reports, which is what makes a chaos
// failure reproducible from its seed alone.
package chaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"vnfopt/internal/engine"
	"vnfopt/internal/fault"
	"vnfopt/internal/model"
)

// Event is one scheduled topology transition.
type Event struct {
	Epoch  int           `json:"epoch"`
	Inject []fault.Fault `json:"inject,omitempty"`
	Heal   []fault.Fault `json:"heal,omitempty"`
}

// Schedule is a deterministic fault schedule: by construction every
// prefix keeps the fabric feasible for the SFC, and every injected
// fault is healed by the final epoch.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Epochs int     `json:"epochs"`
	Events []Event `json:"events"`
}

// GenOptions tune the schedule generator. Zero values pick defaults.
type GenOptions struct {
	// Epochs is the schedule length (default 20). The final quarter
	// (at least 2 epochs) is reserved for healing.
	Epochs int
	// MaxActive caps simultaneous faults (default 3).
	MaxActive int
	// InjectProb / HealProb are the per-epoch transition probabilities
	// during the churn phase (defaults 0.5 / 0.25).
	InjectProb float64
	HealProb   float64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Epochs <= 0 {
		o.Epochs = 20
	}
	if o.MaxActive <= 0 {
		o.MaxActive = 3
	}
	if o.InjectProb <= 0 {
		o.InjectProb = 0.5
	}
	if o.HealProb <= 0 {
		o.HealProb = 0.25
	}
	return o
}

// candidates enumerates every single fault the fabric admits: all
// switches, all hosts, and all links, in deterministic vertex order.
func candidates(d *model.PPDC) []fault.Fault {
	var out []fault.Fault
	for _, s := range d.Topo.Switches {
		out = append(out, fault.Fault{Kind: fault.Switch, U: s})
	}
	for _, h := range d.Topo.Hosts {
		out = append(out, fault.Fault{Kind: fault.Host, U: h})
	}
	g := d.Topo.Graph
	for u := 0; u < g.Order(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				out = append(out, fault.Fault{Kind: fault.Link, U: u, V: e.To})
			}
		}
	}
	return out
}

// Generate builds a seeded fault schedule for the scenario. Every
// candidate injection is trialed against the pristine model first (via
// fault.Apply + PlanService) and kept only if the degraded fabric still
// hosts the SFC, so the runner never sees an infeasible transition; w
// supplies the rates the trial's service-region choice uses. All
// remaining faults are healed over the schedule's tail, leaving the
// final epoch pristine.
func Generate(d *model.PPDC, w model.Workload, sfcLen int, seed int64, o GenOptions) (*Schedule, error) {
	if d == nil || sfcLen < 1 {
		return nil, fmt.Errorf("chaos: need a model and a positive SFC length")
	}
	o = o.withDefaults()
	healTail := o.Epochs / 4
	if healTail < 2 {
		healTail = 2
	}
	if healTail >= o.Epochs {
		return nil, fmt.Errorf("chaos: %d epochs leave no churn phase", o.Epochs)
	}
	rng := rand.New(rand.NewSource(seed))
	cand := candidates(d)
	sched := &Schedule{Seed: seed, Epochs: o.Epochs}
	active := fault.FaultSet{}

	feasible := func(fs fault.FaultSet) bool {
		v, err := fault.Apply(d, fs)
		if err != nil {
			return false
		}
		plan := v.PlanService(w)
		return plan.Feasible(sfcLen) == nil && plan.CheckCosts() == nil
	}

	for ep := 1; ep <= o.Epochs-healTail; ep++ {
		var ev Event
		if active.Len() > 0 && rng.Float64() < o.HealProb {
			fs := active.Faults()
			f := fs[rng.Intn(len(fs))]
			active = active.Remove(f)
			ev.Heal = append(ev.Heal, f)
		}
		if active.Len() < o.MaxActive && rng.Float64() < o.InjectProb {
			// A bounded number of draws keeps generation deterministic and
			// total even when few candidates stay feasible.
			for tries := 0; tries < 16; tries++ {
				f := cand[rng.Intn(len(cand))]
				if active.Contains(f) {
					continue
				}
				if next := active.Add(f); feasible(next) {
					active = next
					ev.Inject = append(ev.Inject, f)
					break
				}
			}
		}
		if len(ev.Inject) > 0 || len(ev.Heal) > 0 {
			ev.Epoch = ep
			sched.Events = append(sched.Events, ev)
		}
	}
	// Heal phase: drain the active set one fault per epoch, the
	// remainder on the last epoch.
	rest := active.Faults()
	for ep := o.Epochs - healTail + 1; len(rest) > 0; ep++ {
		ev := Event{Epoch: ep}
		if ep >= o.Epochs {
			ev.Epoch = o.Epochs
			ev.Heal = append(ev.Heal, rest...)
			rest = nil
		} else {
			ev.Heal = append(ev.Heal, rest[0])
			rest = rest[1:]
		}
		sched.Events = append(sched.Events, ev)
	}
	return sched, nil
}

// Config is the scenario the runner drives.
type Config struct {
	PPDC *model.PPDC
	SFC  model.SFC
	Base model.Workload
	Mu   float64
	// Policy is the engine policy for both engines (zero = consult every
	// epoch, the configuration the strict post-heal invariant assumes).
	Policy engine.Policy
	// RateJitter is the per-epoch multiplicative rate perturbation
	// amplitude (default 0.2; negative disables churn).
	RateJitter float64
}

// EpochReport is one epoch of a chaos run.
type EpochReport struct {
	Epoch    int     `json:"epoch"`
	Cost     float64 `json:"cost"`
	RefCost  float64 `json:"ref_cost"`
	Active   int     `json:"active_faults"`
	Unserved int     `json:"unserved"`
	Moves    int     `json:"moves"`
}

// Report is the outcome of a chaos run.
type Report struct {
	Schedule *Schedule     `json:"schedule"`
	Epochs   []EpochReport `json:"epochs"`
	// FinalCost / RefFinalCost are the engines' communication costs after
	// the last epoch (all faults healed).
	FinalCost    float64 `json:"final_cost"`
	RefFinalCost float64 `json:"ref_final_cost"`
	// Repairs / Fallbacks are the chaos engine's repair counters.
	Repairs   int `json:"repairs"`
	Fallbacks int `json:"fallbacks"`
}

// Run drives a chaos engine through the schedule next to a fault-free
// reference engine fed the identical rate stream, checking the package
// invariants every epoch. The returned report is deterministic for a
// given (cfg, sched).
func Run(ctx context.Context, cfg Config, sched *Schedule) (*Report, error) {
	if sched == nil {
		return nil, fmt.Errorf("chaos: nil schedule")
	}
	mk := func() (*engine.Engine, error) {
		return engine.New(engine.Config{
			PPDC: cfg.PPDC, SFC: cfg.SFC, Base: cfg.Base, Mu: cfg.Mu, Policy: cfg.Policy,
		})
	}
	chaosEng, err := mk()
	if err != nil {
		return nil, err
	}
	refEng, err := mk()
	if err != nil {
		return nil, err
	}

	jitter := cfg.RateJitter
	if jitter == 0 {
		jitter = 0.2
	}
	rng := rand.New(rand.NewSource(sched.Seed))
	rates := make([]float64, len(cfg.Base))
	for i, f := range cfg.Base {
		rates[i] = f.Rate
	}
	events := make(map[int]Event, len(sched.Events))
	for _, ev := range sched.Events {
		events[ev.Epoch] = ev
	}

	rep := &Report{Schedule: sched}
	// plan mirrors the engine's current service plan; refreshed at every
	// fault transition from the same inputs the engine used, so the
	// invariant checks are an independent replay, not a readback.
	var plan *fault.ServicePlan
	// prevView chains the harness's own incremental views across events,
	// exercising repeated ApplyDelta transitions exactly like the engine
	// does; every transition is differentially checked against the full
	// rebuild below.
	var prevView *fault.View
	for ep := 1; ep <= sched.Epochs; ep++ {
		if jitter > 0 {
			var ups []engine.RateUpdate
			for i := range rates {
				if rng.Float64() < 0.5 {
					continue
				}
				r := cfg.Base[i].Rate * (1 + jitter*(2*rng.Float64()-1))
				if r < 0 {
					r = 0
				}
				rates[i] = r
				ups = append(ups, engine.RateUpdate{Flow: i, Rate: r})
			}
			if len(ups) > 0 {
				if _, err := chaosEng.OfferRates(ups); err != nil {
					return nil, fmt.Errorf("chaos: epoch %d: %w", ep, err)
				}
				if _, err := refEng.OfferRates(ups); err != nil {
					return nil, fmt.Errorf("chaos: epoch %d: %w", ep, err)
				}
			}
		}
		if ev, ok := events[ep]; ok {
			res, err := chaosEng.ApplyFaults(ctx, ev.Inject, ev.Heal)
			if err != nil {
				return nil, fmt.Errorf("chaos: epoch %d: schedule marked feasible but engine rejected: %w", ep, err)
			}
			fs := fault.NewFaultSet(chaosEng.Faults()...)
			v, err := fault.ApplyDelta(cfg.PPDC, prevView, fs)
			if err != nil {
				return nil, fmt.Errorf("chaos: epoch %d: %w", ep, err)
			}
			// Standing differential: the incremental view chained across
			// events must match the from-scratch rebuild bit-for-bit.
			full, err := fault.Apply(cfg.PPDC, fs)
			if err != nil {
				return nil, fmt.Errorf("chaos: epoch %d: %w", ep, err)
			}
			if err := fault.Diff(v, full); err != nil {
				return nil, fmt.Errorf("chaos: epoch %d: incremental view diverged from full rebuild: %w", ep, err)
			}
			prevView = v
			plan = v.PlanService(currentWorkload(cfg.Base, rates))
			if len(res.Unserved) != len(plan.Unserved) {
				return nil, fmt.Errorf("chaos: epoch %d: engine reports %d unserved flows, independent replan %d",
					ep, len(res.Unserved), len(plan.Unserved))
			}
		}
		sr, err := chaosEng.Step()
		if err != nil {
			return nil, fmt.Errorf("chaos: epoch %d: %w", ep, err)
		}
		rr, err := refEng.Step()
		if err != nil {
			return nil, fmt.Errorf("chaos: epoch %d: reference: %w", ep, err)
		}
		if err := checkEpoch(cfg, plan, chaosEng, sr); err != nil {
			return nil, fmt.Errorf("chaos: epoch %d: %w", ep, err)
		}
		snap := chaosEng.Snapshot()
		rep.Epochs = append(rep.Epochs, EpochReport{
			Epoch:    ep,
			Cost:     sr.CommCost,
			RefCost:  rr.CommCost,
			Active:   snap.ActiveFaults,
			Unserved: snap.UnservedFlows,
			Moves:    sr.Moves,
		})
	}

	final, ref := chaosEng.Snapshot(), refEng.Snapshot()
	if final.Degraded || final.ActiveFaults != 0 {
		return nil, fmt.Errorf("chaos: schedule ended with %d active faults", final.ActiveFaults)
	}
	rep.FinalCost, rep.RefFinalCost = final.CommCost, ref.CommCost
	met := chaosEng.Metrics()
	rep.Repairs, rep.Fallbacks = met.Repairs, met.RepairFallbacks
	if cfg.Mu == 0 && cfg.Policy.Hysteresis <= 0 && cfg.Policy.Cooldown <= 0 && cfg.Policy.Budget <= 0 {
		// Strict heal invariant: at μ=0 under the always-consult policy
		// both engines land on the TOP-optimal placement for the final
		// rates, so the healed cost equals the never-faulted optimum.
		if !closeEnough(rep.FinalCost, rep.RefFinalCost) {
			return rep, fmt.Errorf("chaos: healed cost %v != fault-free optimum %v", rep.FinalCost, rep.RefFinalCost)
		}
	}
	return rep, nil
}

// checkEpoch enforces the per-epoch invariants on the chaos engine.
func checkEpoch(cfg Config, plan *fault.ServicePlan, e *engine.Engine, sr engine.StepResult) error {
	if math.IsInf(sr.CommCost, 0) || math.IsNaN(sr.CommCost) ||
		math.IsInf(sr.TotalCost, 0) || math.IsNaN(sr.TotalCost) {
		return fmt.Errorf("non-finite cost: comm=%v total=%v", sr.CommCost, sr.TotalCost)
	}
	snap := e.Snapshot()
	d := cfg.PPDC
	if plan != nil {
		d = plan.PPDC
		for _, s := range snap.Placement {
			if plan.View.Dead(s) {
				return fmt.Errorf("placement uses dead switch %d", s)
			}
		}
		if snap.UnservedFlows != len(plan.Unserved) {
			return fmt.Errorf("snapshot reports %d unserved flows, replan %d", snap.UnservedFlows, len(plan.Unserved))
		}
	}
	if err := snap.Placement.Validate(d, cfg.SFC); err != nil {
		return fmt.Errorf("placement invalid on serving model: %w", err)
	}
	return nil
}

func currentWorkload(base model.Workload, rates []float64) model.Workload {
	w := append(model.Workload(nil), base...)
	for i := range w {
		w[i].Rate = rates[i]
	}
	return w
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
}
