package chaos

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"vnfopt/internal/fault"
	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func scenario(t *testing.T, seed int64) (*model.PPDC, model.Workload) {
	t.Helper()
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(seed))
	w := workload.MustPairsClustered(ft, 24, 4, workload.DefaultIntraRack, rng)
	for i := range w {
		w[i].Rate = workload.Rate(rng)
	}
	return d, w
}

// TestChaosSeededSchedule is the chaos-smoke entry point (see
// `make chaos-smoke`): a seeded schedule on the k=4 fat tree, run under
// the strict μ=0 always-consult configuration, must satisfy every
// invariant and return exactly to the fault-free optimum after the
// final heal.
func TestChaosSeededSchedule(t *testing.T) {
	d, w := scenario(t, 7)
	sched, err := Generate(d, w, 3, 42, GenOptions{Epochs: 16})
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, ev := range sched.Events {
		injected += len(ev.Inject)
	}
	if injected == 0 {
		t.Fatal("schedule injected nothing; chaos run would be vacuous")
	}
	rep, err := Run(context.Background(), Config{
		PPDC: d, SFC: model.NewSFC(3), Base: w, Mu: 0,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != sched.Epochs {
		t.Fatalf("report covers %d epochs, want %d", len(rep.Epochs), sched.Epochs)
	}
	if rep.Repairs == 0 {
		t.Fatal("no repair pass ran despite injected faults")
	}
	if rep.FinalCost != rep.RefFinalCost {
		t.Fatalf("healed cost %v != fault-free optimum %v", rep.FinalCost, rep.RefFinalCost)
	}
	if last := rep.Epochs[len(rep.Epochs)-1]; last.Active != 0 || last.Unserved != 0 {
		t.Fatalf("final epoch not pristine: %+v", last)
	}
}

// TestChaosRunWithMigrationCost exercises the relaxed μ>0 mode: the
// strict equality is off, but every per-epoch invariant must still
// hold.
func TestChaosRunWithMigrationCost(t *testing.T) {
	d, w := scenario(t, 9)
	sched, err := Generate(d, w, 3, 17, GenOptions{Epochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		PPDC: d, SFC: model.NewSFC(3), Base: w, Mu: 1e3,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalCost <= 0 || rep.RefFinalCost <= 0 {
		t.Fatalf("degenerate final costs: %v vs %v", rep.FinalCost, rep.RefFinalCost)
	}
}

func TestChaosDeterminism(t *testing.T) {
	d, w := scenario(t, 7)
	run := func() []byte {
		sched, err := Generate(d, w, 3, 42, GenOptions{Epochs: 12})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), Config{
			PPDC: d, SFC: model.NewSFC(3), Base: w, Mu: 0,
		}, sched)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("two runs with the same seed diverged")
	}
}

// TestGenerateFeasiblePrefixes replays every schedule prefix against the
// pristine model: the cumulative fault set must stay valid and feasible
// at each event, and must be empty at the end.
func TestGenerateFeasiblePrefixes(t *testing.T) {
	d, w := scenario(t, 3)
	for _, seed := range []int64{1, 2, 3, 99} {
		sched, err := Generate(d, w, 3, seed, GenOptions{Epochs: 20, MaxActive: 4})
		if err != nil {
			t.Fatal(err)
		}
		active := fault.FaultSet{}
		lastEpoch := 0
		for _, ev := range sched.Events {
			if ev.Epoch < lastEpoch {
				t.Fatalf("seed %d: events out of order", seed)
			}
			lastEpoch = ev.Epoch
			if ev.Epoch > sched.Epochs {
				t.Fatalf("seed %d: event past the schedule end", seed)
			}
			for _, f := range ev.Heal {
				if !active.Contains(f) {
					t.Fatalf("seed %d: heal of inactive fault %s", seed, f)
				}
				active = active.Remove(f)
			}
			for _, f := range ev.Inject {
				if active.Contains(f) {
					t.Fatalf("seed %d: duplicate inject %s", seed, f)
				}
				active = active.Add(f)
			}
			v, err := fault.Apply(d, active)
			if err != nil {
				t.Fatalf("seed %d: invalid prefix: %v", seed, err)
			}
			plan := v.PlanService(w)
			if err := plan.Feasible(3); err != nil {
				t.Fatalf("seed %d: infeasible prefix: %v", seed, err)
			}
		}
		if !active.Empty() {
			t.Fatalf("seed %d: schedule ends with %d active faults", seed, active.Len())
		}
	}
}
