package vmmig

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func setup(t *testing.T, k, l int, seed int64) (*model.PPDC, model.Workload, model.SFC, model.Placement) {
	t.Helper()
	ft := topology.MustFatTree(k, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(seed))
	w := workload.MustPairs(ft, l, workload.DefaultIntraRack, rng)
	sfc := model.NewSFC(3)
	p, _, err := (placement.DP{}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	return d, w, sfc, p
}

func baselines() []VMMigrator {
	return []VMMigrator{PLAN{}, MCF{}}
}

func TestBaselinesImproveOrMatchStaying(t *testing.T) {
	d, w, sfc, p := setup(t, 4, 12, 1)
	rng := rand.New(rand.NewSource(2))
	w2 := w.WithRates(workload.Rates(len(w), rng))
	stay := d.CommCost(w2, p)
	for _, b := range baselines() {
		out, total, moves, err := b.Migrate(d, w2, sfc, p, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if total > stay+1e-6 {
			t.Errorf("%s: total %v worse than staying %v", b.Name(), total, stay)
		}
		if moves < 0 || len(out) != len(w2) {
			t.Errorf("%s: moves=%d len=%d", b.Name(), moves, len(out))
		}
		if err := out.Validate(d); err != nil {
			t.Errorf("%s: migrated workload invalid: %v", b.Name(), err)
		}
		// Rates must be preserved — only hosts move.
		for i := range out {
			if out[i].Rate != w2[i].Rate {
				t.Errorf("%s: rate changed on flow %d", b.Name(), i)
			}
		}
	}
}

func TestHugeMuFreezesVMs(t *testing.T) {
	d, w, sfc, p := setup(t, 4, 10, 3)
	rng := rand.New(rand.NewSource(4))
	w2 := w.WithRates(workload.Rates(len(w), rng))
	for _, b := range baselines() {
		out, total, moves, err := b.Migrate(d, w2, sfc, p, 1e12)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if moves != 0 {
			t.Errorf("%s: %d moves despite μ=1e12", b.Name(), moves)
		}
		if want := d.CommCost(w2, p); math.Abs(total-want) > 1e-6 {
			t.Errorf("%s: total %v, want stay cost %v", b.Name(), total, want)
		}
		for i := range out {
			if out[i] != w2[i] {
				t.Errorf("%s: flow %d moved", b.Name(), i)
			}
		}
	}
}

func TestZeroMuPullsVMsToVNFs(t *testing.T) {
	// With free migration every VM should sit on a host at the minimum
	// possible distance from its ingress/egress switch (hosts attach only
	// to edge switches, so that minimum is 1, 2, or 3 hops depending on
	// the VNF's tier).
	d, w, sfc, p := setup(t, 4, 8, 5)
	minTo := func(s int) float64 {
		best := math.Inf(1)
		for _, h := range d.Topo.Hosts {
			if c := d.APSP.Cost(h, s); c < best {
				best = c
			}
		}
		return best
	}
	minIn, minEg := minTo(p[0]), minTo(p[len(p)-1])
	for _, b := range baselines() {
		out, _, _, err := b.Migrate(d, w, sfc, p, 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		for i, f := range out {
			if c := d.APSP.Cost(f.Src, p[0]); f.Rate > 0 && c > minIn {
				t.Errorf("%s: flow %d src %v hops from ingress, min is %v", b.Name(), i, c, minIn)
			}
			if c := d.APSP.Cost(p[len(p)-1], f.Dst); f.Rate > 0 && c > minEg {
				t.Errorf("%s: flow %d dst %v hops from egress, min is %v", b.Name(), i, c, minEg)
			}
		}
	}
}

func TestHostCapacityRespected(t *testing.T) {
	d, w, sfc, p := setup(t, 4, 12, 7)
	const capHost = 3
	for _, b := range []VMMigrator{PLAN{Opts: Options{HostCapacity: capHost}}, MCF{Opts: Options{HostCapacity: capHost}}} {
		out, _, _, err := b.Migrate(d, w, sfc, p, 0)
		if err != nil {
			// MCF errors out when initial occupancy already violates
			// capacity; that is acceptable behaviour — skip.
			t.Logf("%s: %v", b.Name(), err)
			continue
		}
		occ := occupancy(d, out)
		initial := occupancy(d, w)
		for h, n := range occ {
			// A host may stay above capacity only if it started there
			// (we never force evictions).
			if n > capHost && n > initial[h] {
				t.Errorf("%s: host %d grew to %d VMs (cap %d, initial %d)", b.Name(), h, n, capHost, initial[h])
			}
		}
	}
}

func TestMCFAtLeastAsGoodAsPLANUncapacitated(t *testing.T) {
	// Uncapacitated, MCF solves each VM's relocation exactly, so it
	// cannot lose to PLAN's greedy (both pay migration from the original
	// host; PLAN may also pay for multi-hop repositioning).
	d, w, sfc, p := setup(t, 4, 15, 9)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 4; trial++ {
		w2 := w.WithRates(workload.Rates(len(w), rng))
		_, planCost, _, err := (PLAN{}).Migrate(d, w2, sfc, p, 50)
		if err != nil {
			t.Fatal(err)
		}
		_, mcfCost, _, err := (MCF{}).Migrate(d, w2, sfc, p, 50)
		if err != nil {
			t.Fatal(err)
		}
		if mcfCost > planCost+1e-6 {
			t.Fatalf("trial %d: MCF %v worse than PLAN %v", trial, mcfCost, planCost)
		}
	}
}

func TestMCFEmptyWorkload(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	p := model.Placement{d.Topo.Switches[0], d.Topo.Switches[1]}
	out, total, moves, err := (MCF{}).Migrate(d, model.Workload{}, model.NewSFC(2), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || total != 0 || moves != 0 {
		t.Fatalf("out=%v total=%v moves=%d", out, total, moves)
	}
}

func TestCheckInputs(t *testing.T) {
	d, w, sfc, p := setup(t, 2, 2, 11)
	for _, b := range baselines() {
		if _, _, _, err := b.Migrate(nil, w, sfc, p, 1); err == nil {
			t.Fatalf("%s: nil PPDC accepted", b.Name())
		}
		if _, _, _, err := b.Migrate(d, w, sfc, p, -1); err == nil {
			t.Fatalf("%s: negative mu accepted", b.Name())
		}
		if _, _, _, err := b.Migrate(d, w, sfc, model.Placement{-1, -2, -3}, 1); err == nil {
			t.Fatalf("%s: invalid placement accepted", b.Name())
		}
	}
}

func TestEndpointHelpers(t *testing.T) {
	w := model.Workload{{Src: 3, Dst: 5, Rate: 2}}
	e := endpoint{0, false}
	if e.host(w) != 3 {
		t.Fatal("src host")
	}
	e.setHost(w, 7)
	if w[0].Src != 7 {
		t.Fatal("setHost src")
	}
	ed := endpoint{0, true}
	if ed.host(w) != 5 {
		t.Fatal("dst host")
	}
	ed.setHost(w, 9)
	if w[0].Dst != 9 {
		t.Fatal("setHost dst")
	}
}
