package vmmig

import (
	"fmt"
	"math"
	"sort"

	"vnfopt/internal/mcf"
	"vnfopt/internal/model"
)

// MCF is the minimum-cost-flow VM migration of Flores et al. [24]: jointly
// choose a destination host for every VM so the sum of migration and
// (location-dependent) communication costs is minimized, subject to host
// capacities. The flow network is
//
//	source → one node per VM (capacity 1)
//	VM → candidate host (capacity 1, cost = μ·c(cur,h) + comm share at h)
//	host → sink (capacity = HostCapacity, or one slot per VM if
//	             uncapacitated)
//
// Candidate hosts are the VM's current host plus its CandidateHosts
// cheapest alternatives — at k=16 the full bipartite graph (2000 × 1024
// arcs per VM) would dominate the experiment's runtime while the optimal
// destination is essentially always among the few cheapest.
type MCF struct {
	Opts Options
}

// Name implements VMMigrator.
func (MCF) Name() string { return "MCF" }

// Migrate implements VMMigrator.
func (a MCF) Migrate(d *model.PPDC, w model.Workload, sfc model.SFC, p model.Placement, mu float64) (model.Workload, float64, int, error) {
	if err := checkInputs(d, w, sfc, p, mu); err != nil {
		return nil, 0, 0, err
	}
	hosts := d.Topo.Hosts
	numVMs := 2 * len(w)
	if numVMs == 0 {
		return append(model.Workload(nil), w...), d.CommCost(w, p), 0, nil
	}
	k := a.Opts.CandidateHosts
	if k <= 0 {
		k = 16
	}

	// Vertex layout: 0 = source, 1..numVMs = VMs,
	// numVMs+1..numVMs+len(hosts) = hosts, last = sink.
	src := 0
	sink := numVMs + len(hosts) + 1
	nw := mcf.NewNetwork(sink + 1)
	hostNode := make(map[int]int, len(hosts))
	for i, h := range hosts {
		hostNode[h] = numVMs + 1 + i
	}
	capHost := a.Opts.HostCapacity
	for _, h := range hosts {
		c := float64(capHost)
		if capHost <= 0 {
			c = float64(numVMs)
		}
		nw.AddArc(hostNode[h], sink, c, 0)
	}

	eps := []endpoint{}
	for fi := range w {
		eps = append(eps, endpoint{fi, false}, endpoint{fi, true})
	}
	type arcRef struct {
		id   int
		host int
	}
	arcs := make([][]arcRef, len(eps))
	for vi, e := range eps {
		nw.AddArc(src, 1+vi, 1, 0)
		cur := e.host(w)
		// Rank hosts by assignment cost; keep current + k cheapest.
		type hc struct {
			h int
			c float64
		}
		cand := make([]hc, 0, len(hosts))
		for _, h := range hosts {
			cost := mu*d.APSP.Cost(cur, h) + e.commCost(d, w, p, h)
			cand = append(cand, hc{h, cost})
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i].c < cand[j].c })
		seen := map[int]bool{}
		add := func(h int, cost float64) {
			if seen[h] {
				return
			}
			seen[h] = true
			id := nw.AddArc(1+vi, hostNode[h], 1, cost)
			arcs[vi] = append(arcs[vi], arcRef{id: id, host: h})
		}
		add(cur, e.commCost(d, w, p, cur)) // staying is always possible
		for i := 0; i < len(cand) && i < k; i++ {
			add(cand[i].h, cand[i].c)
		}
	}

	res, err := nw.MinCostFlow(src, sink, math.Inf(1))
	if err != nil {
		return nil, 0, 0, err
	}
	if int(res.Flow+0.5) != numVMs {
		return nil, 0, 0, fmt.Errorf("vmmig: MCF placed %v of %d VMs — host capacity too tight", res.Flow, numVMs)
	}

	out := append(model.Workload(nil), w...)
	moves := 0
	migCost := 0.0
	for vi, e := range eps {
		for _, ar := range arcs[vi] {
			if nw.Flow(ar.id) > 0.5 {
				cur := e.host(w)
				if ar.host != cur {
					moves++
					migCost += mu * d.APSP.Cost(cur, ar.host)
					e.setHost(out, ar.host)
				}
				break
			}
		}
	}
	total := migCost + d.CommCost(out, p)
	return out, total, moves, nil
}
