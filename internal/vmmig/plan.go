package vmmig

import (
	"vnfopt/internal/model"
)

// PLAN is the greedy utility-driven VM migration of Cui et al. [17] as the
// paper describes it: "PLAN migrates VMs to hosts with available resources
// to maximize the utility, which is the reduction of the VM's
// communication cost minus its migration cost." Each sweep offers every VM
// its best positive-utility move (respecting host capacity); sweeps repeat
// until no VM wants to move.
type PLAN struct {
	Opts Options
}

// Name implements VMMigrator.
func (PLAN) Name() string { return "PLAN" }

// Migrate implements VMMigrator.
func (a PLAN) Migrate(d *model.PPDC, w model.Workload, sfc model.SFC, p model.Placement, mu float64) (model.Workload, float64, int, error) {
	if err := checkInputs(d, w, sfc, p, mu); err != nil {
		return nil, 0, 0, err
	}
	out := append(model.Workload(nil), w...)
	occ := occupancy(d, out)
	capHost := a.Opts.HostCapacity
	sweeps := a.Opts.MaxSweeps
	if sweeps <= 0 {
		sweeps = 20
	}

	moves := 0
	migCost := 0.0
	for s := 0; s < sweeps; s++ {
		improved := false
		for fi := range out {
			for _, e := range []endpoint{{fi, false}, {fi, true}} {
				cur := e.host(out)
				curCost := e.commCost(d, out, p, cur)
				bestUtil := 0.0
				bestHost := -1
				var bestMig float64
				for _, h := range d.Topo.Hosts {
					if h == cur {
						continue
					}
					if capHost > 0 && occ[h] >= capHost {
						continue
					}
					mig := mu * d.APSP.Cost(cur, h)
					util := curCost - e.commCost(d, out, p, h) - mig
					if util > bestUtil+1e-12 {
						bestUtil = util
						bestHost = h
						bestMig = mig
					}
				}
				if bestHost >= 0 {
					e.setHost(out, bestHost)
					occ[cur]--
					occ[bestHost]++
					migCost += bestMig
					moves++
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	total := migCost + d.CommCost(out, p)
	return out, total, moves, nil
}
