// Package vmmig implements the two VM-migration comparison baselines of
// the paper's Section VI: PLAN (Cui et al. [17]) and MCF (Flores et
// al. [24]). Both react to dynamic traffic by moving communicating *VMs*
// between hosts while the VNF placement stays fixed — the foil against
// which the paper shows VNF migration (mPareto) reduces more traffic with
// fewer moves.
//
// Cost model: moving a VM from host a to host b generates μ·c(a,b) traffic
// (containerised VMs and VNFs transfer comparable memory images, so the
// paper's VNF migration coefficient μ applies), and the flow's
// policy-preserving communication cost afterwards uses the new host.
package vmmig

import (
	"fmt"

	"vnfopt/internal/model"
)

// Options configure the baselines.
type Options struct {
	// HostCapacity caps the number of VMs a host may hold (PLAN's "hosts
	// with available resources"; MCF's host-side arc capacity). 0 means
	// uncapacitated.
	HostCapacity int
	// MaxSweeps caps PLAN's greedy improvement sweeps (0 = default 20).
	MaxSweeps int
	// CandidateHosts restricts MCF to the K cheapest destination hosts
	// per VM (plus its current host); 0 = default 16. Keeps the flow
	// network tractable at k=16 scale.
	CandidateHosts int
}

// VMMigrator is one VM-migration baseline: given the fixed VNF placement p
// and the new traffic vector, relocate VM endpoints to reduce total cost.
type VMMigrator interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Migrate returns the workload with updated hosts, the total cost
	// (VM migration traffic + resulting communication cost), and the
	// number of VMs moved.
	Migrate(d *model.PPDC, w model.Workload, sfc model.SFC, p model.Placement, mu float64) (model.Workload, float64, int, error)
}

// endpoint identifies one VM: flow index plus which end it is.
type endpoint struct {
	flow int
	dst  bool
}

// host returns the endpoint's current host in w.
func (e endpoint) host(w model.Workload) int {
	if e.dst {
		return w[e.flow].Dst
	}
	return w[e.flow].Src
}

// setHost relocates the endpoint in w.
func (e endpoint) setHost(w model.Workload, h int) {
	if e.dst {
		w[e.flow].Dst = h
	} else {
		w[e.flow].Src = h
	}
}

// commCost returns the endpoint's location-dependent share of its flow's
// communication cost: λ_i·c(h, p(1)) for a source, λ_i·c(p(n), h) for a
// destination. The chain portion is independent of VM locations.
func (e endpoint) commCost(d *model.PPDC, w model.Workload, p model.Placement, h int) float64 {
	f := w[e.flow]
	if e.dst {
		return f.Rate * d.APSP.Cost(p[len(p)-1], h)
	}
	return f.Rate * d.APSP.Cost(h, p[0])
}

// occupancy counts VMs per host.
func occupancy(d *model.PPDC, w model.Workload) map[int]int {
	occ := make(map[int]int, len(d.Topo.Hosts))
	for _, f := range w {
		occ[f.Src]++
		occ[f.Dst]++
	}
	return occ
}

func checkInputs(d *model.PPDC, w model.Workload, sfc model.SFC, p model.Placement, mu float64) error {
	if d == nil {
		return fmt.Errorf("vmmig: nil PPDC")
	}
	if mu < 0 {
		return fmt.Errorf("vmmig: negative migration coefficient %v", mu)
	}
	if err := w.Validate(d); err != nil {
		return err
	}
	if err := p.Validate(d, sfc); err != nil {
		return fmt.Errorf("vmmig: placement: %w", err)
	}
	return nil
}
