package stroll

import (
	"math/rand"
	"testing"
)

// FuzzDPAgainstExhaustive derives a random metric instance from the fuzz
// input and cross-checks the three solvers' core contracts: the DP and
// primal-dual never beat the proven optimum, never exceed twice it (DP) or
// produce infeasible strolls, and every reported cost matches its walk.
// Run with `go test -fuzz=FuzzDPAgainstExhaustive ./internal/stroll`.
func FuzzDPAgainstExhaustive(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2))
	f.Add(int64(42), uint8(9), uint8(4))
	f.Add(int64(-7), uint8(12), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nvRaw, nRaw uint8) {
		nv := 4 + int(nvRaw)%8    // 4..11 vertices
		n := int(nRaw) % (nv - 3) // leaves at least one spare vertex
		if n < 0 {
			n = 0
		}
		rng := rand.New(rand.NewSource(seed))
		in := randomMetricInstance(rng, nv, n)

		opt, err := Exhaustive(in, ExhaustiveOptions{})
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		if !opt.Optimal {
			t.Fatalf("unbudgeted exhaustive failed to prove optimality (nv=%d n=%d)", nv, n)
		}
		dp, err := DP(in)
		if err != nil {
			t.Fatalf("dp: %v", err)
		}
		pd, err := PrimalDual(in)
		if err != nil {
			t.Fatalf("primal-dual: %v", err)
		}
		for name, res := range map[string]Result{"dp": dp, "optimal": opt, "pd": pd} {
			if len(res.Visited) != n {
				t.Fatalf("%s visited %d of %d (nv=%d)", name, len(res.Visited), n, nv)
			}
			if res.Walk[0] != in.S || res.Walk[len(res.Walk)-1] != in.T {
				t.Fatalf("%s walk endpoints %v", name, res.Walk)
			}
			if got := walkCost(in.Cost, res.Walk); got > res.Cost+1e-9 || got < res.Cost-1e-9 {
				t.Fatalf("%s reported %v but walk costs %v", name, res.Cost, got)
			}
			seen := map[int]bool{}
			for _, v := range res.Visited {
				if v == in.S || v == in.T || seen[v] {
					t.Fatalf("%s visited list invalid: %v", name, res.Visited)
				}
				seen[v] = true
			}
		}
		if dp.Cost < opt.Cost-1e-9 || pd.Cost < opt.Cost-1e-9 {
			t.Fatalf("heuristic beats optimum: dp=%v pd=%v opt=%v", dp.Cost, pd.Cost, opt.Cost)
		}
		// The DP carries no worst-case guarantee (only PrimalDual's 2+ε
		// does, and the paper compares DP against that bound empirically);
		// fuzzing found adversarial metrics where DP lands at ~2.2x
		// optimal (see testdata/fuzz). Flag only egregious blowups, which
		// would indicate a regression rather than the heuristic's nature.
		if dp.Cost > 6*opt.Cost+1e-9 {
			t.Fatalf("dp %v exceeds 6x optimum %v (nv=%d n=%d seed=%d)", dp.Cost, opt.Cost, nv, n, seed)
		}
	})
}
