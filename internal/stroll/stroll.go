// Package stroll solves the n-stroll problem at the core of the paper's
// TOP formulation: given a complete metric graph (the metric closure G” of
// the PPDC), two terminals s and t, and an integer n, find a minimum-cost
// s-t walk that visits at least n distinct nodes other than s and t.
//
// Three solvers are provided, mirroring the paper's Table II:
//
//   - DP        — the paper's Algorithm 2: an exact dynamic program over
//     walk *edge counts* with the no-immediate-backtrack rule, iterating
//     the edge budget upward until n distinct intermediates appear.
//   - Exhaustive — branch-and-bound over ordered switch tuples; exact
//     (in the metric closure an optimal stroll can always be taken as a
//     simple path, so tuple enumeration is exhaustive).
//   - PrimalDual — Algorithm 1's primal-dual family: a Goemans-Williamson
//     prize-collecting moat growth with a Lagrangean (binary) search on the
//     uniform node prize, then double-and-shortcut. Constant-factor in
//     spirit; the paper itself only plots its 2+ε guarantee.
package stroll

import (
	"fmt"
	"math"
)

// Instance is one n-stroll problem on a complete metric graph.
type Instance struct {
	// Cost is the dense symmetric cost matrix of the metric closure;
	// Cost[u][v] is the shortest-path cost between closure vertices u
	// and v. All entries must be finite and non-negative.
	Cost [][]float64
	// S and T are the terminal indices (may be equal for the n-tour case).
	S, T int
	// N is the required number of distinct intermediate nodes.
	N int
}

// Result is a solved stroll.
type Result struct {
	// Cost is the total walk cost.
	Cost float64
	// Walk is the full vertex sequence from S to T, inclusive.
	Walk []int
	// Visited lists the first N distinct intermediate nodes in visit
	// order — the switches that receive f_1..f_N.
	Visited []int
	// Optimal reports whether the solver proved optimality (Exhaustive
	// within its node budget; DP and PrimalDual always report false even
	// when they happen to be optimal).
	Optimal bool
	// Repaired reports that the DP's edge-budget ramp stalled (the
	// min-cost walk kept cycling through already-visited nodes — a case
	// the paper's Algorithm 2 does not address) and the walk was
	// completed by cheapest insertion of the missing distinct nodes.
	Repaired bool
}

// Validate checks instance well-formedness: square finite matrix,
// terminals in range, and enough non-terminal nodes to host N VNFs.
func (in Instance) Validate() error {
	nv := len(in.Cost)
	if nv == 0 {
		return fmt.Errorf("stroll: empty cost matrix")
	}
	for i, row := range in.Cost {
		if len(row) != nv {
			return fmt.Errorf("stroll: cost matrix row %d has %d entries, want %d", i, len(row), nv)
		}
		for j, c := range row {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("stroll: invalid cost[%d][%d] = %v", i, j, c)
			}
		}
	}
	if in.S < 0 || in.S >= nv || in.T < 0 || in.T >= nv {
		return fmt.Errorf("stroll: terminals (%d,%d) out of range [0,%d)", in.S, in.T, nv)
	}
	if in.S == in.T {
		// The paper's n-tour construction (Fig. 5) lists s and t as two
		// closure vertices even when they are the same host; callers
		// must duplicate the terminal, otherwise the DP's backtrack rule
		// would forbid legitimate final returns to t.
		return fmt.Errorf("stroll: S == T; duplicate the terminal vertex to pose an n-tour")
	}
	if in.N < 0 {
		return fmt.Errorf("stroll: negative n %d", in.N)
	}
	avail := nv - 2
	if in.N > avail {
		return fmt.Errorf("stroll: n=%d exceeds the %d available intermediate nodes", in.N, avail)
	}
	return nil
}

// walkCost sums matrix costs along a vertex sequence.
func walkCost(cost [][]float64, walk []int) float64 {
	s := 0.0
	for i := 0; i+1 < len(walk); i++ {
		s += cost[walk[i]][walk[i+1]]
	}
	return s
}

// distinctIntermediates lists, in visit order, the distinct nodes of the
// walk other than s and t.
func distinctIntermediates(walk []int, s, t int) []int {
	seen := make(map[int]bool, len(walk))
	var out []int
	for _, v := range walk {
		if v == s || v == t || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
