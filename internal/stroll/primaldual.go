package stroll

import (
	"math"
	"sort"
)

// PrimalDual implements the paper's Algorithm 1 family: a primal-dual
// (Goemans-Williamson) moat-growth algorithm for the n-stroll.
//
// Growth phase: every vertex starts as its own active moat; s and t carry
// unbounded prize (they are required), other vertices a uniform prize π.
// Moats grow at unit rate, paying for boundary edges; a moat deactivates
// when its dual reaches its prize mass; two moats merge when an edge goes
// tight, and the merged moat containing both s and t is satisfied. The
// tight edges form a tree over the s-t component.
//
// A Lagrangean binary search on π (the standard k-MST/k-stroll technique)
// finds the smallest uniform prize whose grown tree spans at least n
// intermediates. Pruning phase: leaf edges are deleted until exactly n
// intermediates remain — "deletes edges to obtain the final path that
// spans n switches". Finally the tree is doubled and shortcut into an s-t
// walk (each tree edge traversed at most twice, as in the paper's Step 2).
//
// The paper never executes Algorithm 1 (Fig. 7 plots its 2+ε guarantee as
// 2 × Optimal); this implementation exists so the algorithm is real,
// validated code, and its measured cost is reported alongside the bound.
func PrimalDual(in Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if in.N == 0 {
		return Result{
			Cost:    in.Cost[in.S][in.T],
			Walk:    []int{in.S, in.T},
			Visited: []int{},
		}, nil
	}
	maxC := 0.0
	for i := range in.Cost {
		for j := range in.Cost[i] {
			if in.Cost[i][j] > maxC {
				maxC = in.Cost[i][j]
			}
		}
	}

	// Binary search the uniform prize. hi is large enough to pull every
	// vertex into the tree (a prize above the largest edge cost keeps
	// every moat active until it merges).
	lo, hi := 0.0, 2*maxC+1
	var tree [][2]int
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		tr := growMoats(in, mid)
		if countIntermediates(tr, in.S, in.T) >= in.N {
			tree = tr
			hi = mid
		} else {
			lo = mid
		}
	}
	if tree == nil {
		tree = growMoats(in, hi)
		if countIntermediates(tree, in.S, in.T) < in.N {
			// Degenerate fallback: connect the n nearest intermediates
			// directly (still a feasible stroll).
			return fallbackStroll(in), nil
		}
	}

	pruned := pruneToN(in, tree, in.N)
	walk := treeWalk(in, pruned)
	vis := distinctIntermediates(walk, in.S, in.T)
	walk = truncateAfterN(in, walk, vis, in.N)
	vis = vis[:in.N]
	return Result{Cost: walkCost(in.Cost, walk), Walk: walk, Visited: vis}, nil
}

// growMoats runs one GW growth phase with uniform prize pi and returns the
// tight-edge tree of the component containing s and t.
func growMoats(in Instance, pi float64) [][2]int {
	nv := len(in.Cost)
	parent := make([]int, nv)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	active := make([]bool, nv)    // per component root
	remain := make([]float64, nv) // prize mass left before deactivation
	for v := 0; v < nv; v++ {
		active[v] = true
		if v == in.S || v == in.T {
			remain[v] = math.Inf(1)
		} else {
			remain[v] = pi
		}
	}
	// slack[u][v]: remaining growth needed before edge (u,v) goes tight.
	slack := make([][]float64, nv)
	for u := range slack {
		slack[u] = make([]float64, nv)
		copy(slack[u], in.Cost[u])
	}

	var tight [][2]int
	activeCount := nv
	for activeCount > 0 {
		// Find next event: component deactivation or edge tightening.
		dt := math.Inf(1)
		eu, ev := -1, -1
		for v := 0; v < nv; v++ {
			if r := find(v); r == v && active[r] && remain[r] < dt {
				dt = remain[r]
				eu, ev = -1, -1
			}
		}
		for u := 0; u < nv; u++ {
			ru := find(u)
			for v := u + 1; v < nv; v++ {
				rv := find(v)
				if ru == rv {
					continue
				}
				rate := 0.0
				if active[ru] {
					rate++
				}
				if active[rv] {
					rate++
				}
				if rate == 0 {
					continue
				}
				if t := slack[u][v] / rate; t < dt {
					dt = t
					eu, ev = u, v
				}
			}
		}
		if math.IsInf(dt, 1) {
			break // nothing can happen (all remaining comps inactive)
		}
		// Advance time by dt: shrink slacks and prize mass.
		for u := 0; u < nv; u++ {
			ru := find(u)
			for v := u + 1; v < nv; v++ {
				rv := find(v)
				if ru == rv {
					continue
				}
				rate := 0.0
				if active[ru] {
					rate++
				}
				if active[rv] {
					rate++
				}
				slack[u][v] -= rate * dt
				slack[v][u] = slack[u][v]
			}
		}
		for v := 0; v < nv; v++ {
			if r := find(v); r == v && active[r] && !math.IsInf(remain[r], 1) {
				remain[r] -= dt
			}
		}
		if eu >= 0 {
			// Edge event: merge the two moats.
			ru, rv := find(eu), find(ev)
			tight = append(tight, [2]int{eu, ev})
			parent[rv] = ru
			merged := find(ru)
			act := active[ru] || active[rv]
			rem := remain[ru] + remain[rv]
			active[merged] = act
			remain[merged] = rem
			// Satisfied once both terminals share a moat.
			if find(in.S) == find(in.T) && merged == find(in.S) {
				active[merged] = false
			}
		} else {
			// Deactivation event: retire every exhausted active root.
			for v := 0; v < nv; v++ {
				if r := find(v); r == v && active[r] && remain[r] <= 1e-12 {
					active[r] = false
				}
			}
		}
		activeCount = 0
		for v := 0; v < nv; v++ {
			if r := find(v); r == v && active[r] {
				activeCount++
			}
		}
	}

	// Keep only tight edges inside the s-t component, as a spanning tree
	// (the union-find merge order already guarantees forest structure).
	root := find(in.S)
	var tree [][2]int
	for _, e := range tight {
		if find(e[0]) == root {
			tree = append(tree, e)
		}
	}
	return tree
}

// countIntermediates counts distinct non-terminal vertices touched by the
// edge set.
func countIntermediates(tree [][2]int, s, t int) int {
	seen := map[int]bool{}
	for _, e := range tree {
		seen[e[0]] = true
		seen[e[1]] = true
	}
	delete(seen, s)
	delete(seen, t)
	return len(seen)
}

// pruneToN deletes leaf edges (never detaching s or t) until exactly n
// intermediates remain, removing the most expensive leaf edge first.
func pruneToN(in Instance, tree [][2]int, n int) [][2]int {
	edges := append([][2]int(nil), tree...)
	for countIntermediates(edges, in.S, in.T) > n {
		deg := map[int]int{}
		for _, e := range edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		// Candidate leaf edges: an endpoint of degree 1 that is not a
		// terminal.
		bestIdx, bestCost := -1, -1.0
		for i, e := range edges {
			for _, leaf := range []int{e[0], e[1]} {
				if deg[leaf] == 1 && leaf != in.S && leaf != in.T {
					if c := in.Cost[e[0]][e[1]]; c > bestCost {
						bestIdx, bestCost = i, c
					}
				}
			}
		}
		if bestIdx < 0 {
			break // no prunable leaf (terminals only) — stop
		}
		edges = append(edges[:bestIdx], edges[bestIdx+1:]...)
	}
	return edges
}

// treeWalk doubles the tree and shortcuts it into an s → … → t walk that
// visits every tree vertex, traversing each tree edge at most twice.
func treeWalk(in Instance, tree [][2]int) []int {
	adj := map[int][]int{}
	for _, e := range tree {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	if len(tree) == 0 {
		return []int{in.S, in.T}
	}
	// Find the s-t path in the tree.
	parent := map[int]int{in.S: -1}
	stack := []int{in.S}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if _, ok := parent[v]; !ok {
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	onPath := map[int]bool{}
	if _, ok := parent[in.T]; ok {
		for v := in.T; v != -1; v = parent[v] {
			onPath[v] = true
		}
	}
	// Walk the s-t path; at each path vertex first detour into every
	// off-path subtree (enter and return), then continue along the path.
	var walk []int
	visited := map[int]bool{}
	var detour func(u int)
	detour = func(u int) {
		visited[u] = true
		walk = append(walk, u)
		for _, v := range adj[u] {
			if !visited[v] && !onPath[v] {
				detour(v)
				walk = append(walk, u) // return to u (edge doubled)
			}
		}
	}
	cur := in.S
	for {
		detour(cur)
		next := -1
		for _, v := range adj[cur] {
			if onPath[v] && !visited[v] {
				next = v
				break
			}
		}
		if next == -1 {
			break
		}
		cur = next
	}
	if walk[len(walk)-1] != in.T {
		walk = append(walk, in.T) // shortcut jump in the metric closure
	}
	// Shortcut repeated vertices except terminals (keeps cost ≤ doubled
	// tree by the triangle inequality) — but keep revisits of vertices we
	// return through, since the closure edge already shortcuts them.
	return shortcutWalk(walk, in.S, in.T)
}

// shortcutWalk removes repeat visits of non-terminal vertices, relying on
// the metric closure's triangle inequality.
func shortcutWalk(walk []int, s, t int) []int {
	seen := map[int]bool{}
	var out []int
	for i, v := range walk {
		if i == 0 || i == len(walk)-1 {
			out = append(out, v)
			seen[v] = true
			continue
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// truncateAfterN cuts the walk immediately after its n-th distinct
// intermediate and jumps straight to t.
func truncateAfterN(in Instance, walk []int, vis []int, n int) []int {
	if len(vis) <= n {
		return walk
	}
	target := vis[n-1]
	for i, v := range walk {
		if v == target {
			out := append([]int(nil), walk[:i+1]...)
			if out[len(out)-1] != in.T {
				out = append(out, in.T)
			}
			return out
		}
	}
	return walk
}

// fallbackStroll builds a feasible stroll through the n intermediates
// nearest to the s-t midpoint cost. Only used if moat growth degenerates.
func fallbackStroll(in Instance) Result {
	nv := len(in.Cost)
	type vc struct {
		v int
		c float64
	}
	var cands []vc
	for v := 0; v < nv; v++ {
		if v != in.S && v != in.T {
			cands = append(cands, vc{v, in.Cost[in.S][v] + in.Cost[v][in.T]})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].c < cands[j].c })
	walk := []int{in.S}
	for i := 0; i < in.N; i++ {
		walk = append(walk, cands[i].v)
	}
	walk = append(walk, in.T)
	return Result{
		Cost:    walkCost(in.Cost, walk),
		Walk:    walk,
		Visited: distinctIntermediates(walk, in.S, in.T),
	}
}
