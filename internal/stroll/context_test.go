package stroll

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

// countdownCtx reports Canceled starting from the (after+1)-th Err()
// poll, making mid-search cancellation deterministic in tests.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// hardInstance builds a complete "metric" whose minimum edge is far
// below the typical edge, neutering the (k+1)·minEdge part of the
// branch-and-bound lower bound; the N=6 search then needs well over
// 1024 expansions, guaranteeing the in-search context poll is reached.
func hardInstance() Instance {
	rng := rand.New(rand.NewSource(9))
	nv := 20
	cost := make([][]float64, nv)
	for i := range cost {
		cost[i] = make([]float64, nv)
	}
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			c := 1 + rng.Float64()
			cost[i][j], cost[j][i] = c, c
		}
	}
	// One near-zero edge drags minEdge to ~0 without affecting much else.
	cost[2][3], cost[3][2] = 1e-6, 1e-6
	return Instance{Cost: cost, S: 0, T: 1, N: 6}
}

func TestExhaustiveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExhaustiveContext(ctx, hardInstance(), ExhaustiveOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled", err)
	}
}

// TestExhaustiveContextMidSearch: cancellation mid-search returns the
// incumbent (at worst the DP seed) with Optimal=false and ctx.Err().
func TestExhaustiveContextMidSearch(t *testing.T) {
	in := hardInstance()
	seed, err := DP(in)
	if err != nil {
		t.Fatal(err)
	}
	cc := &countdownCtx{Context: context.Background(), after: 1}
	res, err := ExhaustiveContext(cc, in, ExhaustiveOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled (%d polls)", err, cc.calls.Load())
	}
	if res.Optimal {
		t.Fatal("cancelled search claimed optimality")
	}
	if res.Cost > seed.Cost {
		t.Fatalf("incumbent %v worse than DP seed %v", res.Cost, seed.Cost)
	}
	if len(res.Walk) < 2 || res.Walk[0] != in.S || res.Walk[len(res.Walk)-1] != in.T {
		t.Fatalf("cancelled incumbent walk %v", res.Walk)
	}
	if len(res.Visited) != in.N {
		t.Fatalf("cancelled incumbent visits %d nodes, want %d", len(res.Visited), in.N)
	}
}

func TestExhaustiveContextCompletesUncancelled(t *testing.T) {
	in := hardInstance()
	in.N = 3
	want, err := Exhaustive(in, ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExhaustiveContext(context.Background(), in, ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Optimal || got.Cost != want.Cost {
		t.Fatalf("context run diverged: %+v vs %+v", got, want)
	}
}

func TestStrollSearchExpansionsAdvances(t *testing.T) {
	in := hardInstance()
	in.N = 3
	before := SearchExpansions()
	if _, err := Exhaustive(in, ExhaustiveOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := SearchExpansions() - before; got <= 0 {
		t.Fatalf("expansion counter advanced by %d", got)
	}
}
