package stroll

import (
	"context"
	"math"
	"sync/atomic"

	"vnfopt/internal/bnb"
)

// In the metric closure an optimal n-stroll can always be taken as a
// *simple path* s → x_1 → … → x_n → t over n distinct intermediates:
// shortcutting past a repeated vertex never increases cost under the
// triangle inequality. Exhaustive therefore enumerates ordered n-tuples
// of intermediates on the shared branch-and-bound kernel (internal/bnb):
//
//   - upper bound seeded by the DP solution (Algorithm 2);
//   - lower bound for a partial path about to extend to v with r more
//     intermediates after it: cost so far + step +
//     max( c(v,t), nearestHop(v) + (r−1)·minEdge + minToT ), all terms
//     admissible in a metric (nearestHop/minEdge/minToT range over
//     candidate intermediates only);
//   - children visited cheapest-extension-first to tighten the incumbent
//     early.
//
// NodeBudget caps the search; when exhausted the best incumbent is
// returned with Optimal=false. ExhaustiveContext adds cooperative
// cancellation with the same incumbent semantics, and Workers fans the
// search across goroutines with bit-identical results.

// searchExpansions accumulates node expansions across every Exhaustive
// search in the process, batched once per call.
var searchExpansions atomic.Int64

// SearchExpansions returns the process-wide total of exhaustive-stroll
// node expansions.
func SearchExpansions() int64 { return searchExpansions.Load() }

// ExhaustiveOptions tunes the branch-and-bound search.
type ExhaustiveOptions struct {
	// NodeBudget caps the number of search-tree expansions; 0 means
	// unlimited. When the budget runs out the incumbent is returned with
	// Result.Optimal == false.
	NodeBudget int
	// Workers fans the branch-and-bound out across goroutines sharing
	// one incumbent: 0 or 1 is the sequential oracle, > 1 uses that many
	// workers, < 0 uses GOMAXPROCS. Completed searches are bit-identical
	// to the sequential oracle at any width.
	Workers int
}

// Exhaustive finds a provably optimal n-stroll (paper Algorithms 4/6 use
// this as their inner engine) unless the node budget is exhausted first.
func Exhaustive(in Instance, opts ExhaustiveOptions) (Result, error) {
	return ExhaustiveContext(context.Background(), in, opts)
}

// ExhaustiveContext is Exhaustive under a context: the search polls ctx
// every 1024 expansions and, once cancelled, returns the best incumbent
// found so far (at worst the DP seed) with Optimal == false alongside
// ctx.Err().
func ExhaustiveContext(ctx context.Context, in Instance, opts ExhaustiveOptions) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	nv := len(in.Cost)

	// Seed the incumbent with the DP solution so pruning bites from the
	// first branch.
	best, err := DP(in)
	if err != nil {
		return Result{}, err
	}
	if in.N == 0 {
		direct := Result{
			Cost:    in.Cost[in.S][in.T],
			Walk:    []int{in.S, in.T},
			Visited: []int{},
			Optimal: true,
		}
		if direct.Cost <= best.Cost {
			return direct, nil
		}
		best.Optimal = true
		return best, nil
	}

	// Candidate intermediates: everything but the terminals.
	cands := make([]int, 0, nv-2)
	for v := 0; v < nv; v++ {
		if v != in.S && v != in.T {
			cands = append(cands, v)
		}
	}
	// Per-candidate nearest-neighbor and nearest-terminal tables for the
	// admissible tail bound: hop[i] is i's cheapest edge to another
	// candidate, minEdge the global minimum over those, minToT the
	// cheapest closing edge. Zero minima keep the bound valid (weaker).
	hop := make([]float64, len(cands))
	minEdge, minToT := math.Inf(1), math.Inf(1)
	for i, u := range cands {
		h := math.Inf(1)
		for j, v := range cands {
			if i != j && in.Cost[u][v] < h {
				h = in.Cost[u][v]
			}
		}
		hop[i] = h
		if h < minEdge {
			minEdge = h
		}
		if c := in.Cost[u][in.T]; c < minToT {
			minToT = c
		}
	}

	res, err := bnb.Search(ctx, bnb.Spec{
		N:   in.N,
		K:   len(cands),
		Cap: 1,
		StepCost: func(last, v, depth int) float64 {
			if depth == 0 {
				return in.Cost[in.S][cands[v]]
			}
			return in.Cost[cands[last]][cands[v]]
		},
		TailBound: func(v, depth int) float64 {
			direct := in.Cost[cands[v]][in.T]
			r := in.N - 1 - depth
			if r == 0 {
				return direct
			}
			if lb := hop[v] + float64(r-1)*minEdge + minToT; lb > direct {
				return lb
			}
			return direct
		},
		LeafCost:   func(last int) float64 { return in.Cost[cands[last]][in.T] },
		SeedCost:   best.Cost,
		NodeBudget: opts.NodeBudget,
		Workers:    opts.Workers,
	})
	searchExpansions.Add(res.Expansions)

	bestCost := best.Cost
	bestPath := append([]int(nil), best.Walk...)
	if res.Path != nil {
		bestCost = res.Cost
		bestPath = make([]int, 0, in.N+2)
		bestPath = append(bestPath, in.S)
		for _, v := range res.Path {
			bestPath = append(bestPath, cands[v])
		}
		bestPath = append(bestPath, in.T)
	}
	vis := distinctIntermediates(bestPath, in.S, in.T)
	if len(vis) > in.N {
		vis = vis[:in.N]
	}
	out := Result{
		Cost:    bestCost,
		Walk:    bestPath,
		Visited: vis,
		Optimal: res.Proven && err == nil,
	}
	if err != nil {
		return out, err
	}
	return out, nil
}
