package stroll

import (
	"context"
	"math"
	"sort"
	"sync/atomic"
)

// In the metric closure an optimal n-stroll can always be taken as a
// *simple path* s → x_1 → … → x_n → t over n distinct intermediates:
// shortcutting past a repeated vertex never increases cost under the
// triangle inequality. Exhaustive therefore enumerates ordered n-tuples of
// intermediates with branch-and-bound:
//
//   - upper bound seeded by the DP solution (Algorithm 2);
//   - lower bound for a partial path ending at u with k nodes still to
//     place: cost so far + max( c(u,t), (k+1) · minEdge ), both admissible
//     in a metric;
//   - children visited cheapest-extension-first to tighten the incumbent
//     early.
//
// NodeBudget caps the search; when exhausted the best incumbent is
// returned with Optimal=false. ExhaustiveContext adds cooperative
// cancellation with the same incumbent semantics.

// ctxCheckMask throttles context polls to one ctx.Err() call per
// ctxCheckMask+1 node expansions.
const ctxCheckMask = 1023

// searchExpansions accumulates node expansions across every Exhaustive
// search in the process, batched once per call.
var searchExpansions atomic.Int64

// SearchExpansions returns the process-wide total of exhaustive-stroll
// node expansions.
func SearchExpansions() int64 { return searchExpansions.Load() }

// ExhaustiveOptions tunes the branch-and-bound search.
type ExhaustiveOptions struct {
	// NodeBudget caps the number of search-tree expansions; 0 means
	// unlimited. When the budget runs out the incumbent is returned with
	// Result.Optimal == false.
	NodeBudget int
}

// Exhaustive finds a provably optimal n-stroll (paper Algorithms 4/6 use
// this as their inner engine) unless the node budget is exhausted first.
func Exhaustive(in Instance, opts ExhaustiveOptions) (Result, error) {
	return ExhaustiveContext(context.Background(), in, opts)
}

// ExhaustiveContext is Exhaustive under a context: the search polls ctx
// every ctxCheckMask+1 expansions and, once cancelled, returns the best
// incumbent found so far (at worst the DP seed) with Optimal == false
// alongside ctx.Err().
func ExhaustiveContext(ctx context.Context, in Instance, opts ExhaustiveOptions) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	nv := len(in.Cost)

	// Seed the incumbent with the DP solution so pruning bites from the
	// first branch.
	best, err := DP(in)
	if err != nil {
		return Result{}, err
	}
	if in.N == 0 {
		direct := Result{
			Cost:    in.Cost[in.S][in.T],
			Walk:    []int{in.S, in.T},
			Visited: []int{},
			Optimal: true,
		}
		if direct.Cost <= best.Cost {
			return direct, nil
		}
		best.Optimal = true
		return best, nil
	}
	bestPath := append([]int(nil), best.Walk...)
	bestCost := best.Cost

	// Candidate intermediates: everything but the terminals.
	cands := make([]int, 0, nv-2)
	for v := 0; v < nv; v++ {
		if v != in.S && v != in.T {
			cands = append(cands, v)
		}
	}
	// Global minimum positive edge cost among candidate-relevant pairs,
	// for the (k+1)·minEdge part of the bound. A zero min keeps the bound
	// valid (just weaker).
	minEdge := math.Inf(1)
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			if i != j && in.Cost[i][j] < minEdge {
				minEdge = in.Cost[i][j]
			}
		}
	}

	used := make([]bool, nv)
	path := make([]int, 0, in.N+2)
	path = append(path, in.S)
	nodes := 0
	budget := opts.NodeBudget
	exhausted := false
	cancelled := false

	type cand struct {
		v int
		c float64
	}
	// Pre-allocated per-depth scratch for sorted children.
	scratch := make([][]cand, in.N+1)
	for i := range scratch {
		scratch[i] = make([]cand, 0, len(cands))
	}

	var rec func(last int, depth int, cur float64)
	rec = func(last int, depth int, cur float64) {
		if exhausted || cancelled {
			return
		}
		nodes++
		if budget > 0 && nodes > budget {
			exhausted = true
			return
		}
		if nodes&ctxCheckMask == 0 && ctx.Err() != nil {
			cancelled = true
			return
		}
		if depth == in.N {
			total := cur + in.Cost[last][in.T]
			if total < bestCost {
				bestCost = total
				bestPath = bestPath[:0]
				bestPath = append(bestPath, path...)
				bestPath = append(bestPath, in.T)
			}
			return
		}
		remaining := in.N - depth
		children := scratch[depth][:0]
		for _, v := range cands {
			if !used[v] {
				children = append(children, cand{v: v, c: in.Cost[last][v]})
			}
		}
		sort.Slice(children, func(i, j int) bool { return children[i].c < children[j].c })
		for _, ch := range children {
			nc := cur + ch.c
			lb := nc + math.Max(in.Cost[ch.v][in.T], float64(remaining)*minEdge)
			if lb >= bestCost {
				// Children are sorted by extension cost, but the t-distance
				// term differs per child, so keep scanning siblings.
				continue
			}
			used[ch.v] = true
			path = append(path, ch.v)
			rec(ch.v, depth+1, nc)
			path = path[:len(path)-1]
			used[ch.v] = false
			if exhausted || cancelled {
				return
			}
		}
	}
	rec(in.S, 0, 0)
	searchExpansions.Add(int64(nodes))

	vis := distinctIntermediates(bestPath, in.S, in.T)
	if len(vis) > in.N {
		vis = vis[:in.N]
	}
	res := Result{
		Cost:    bestCost,
		Walk:    bestPath,
		Visited: vis,
		Optimal: !exhausted && !cancelled,
	}
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}
