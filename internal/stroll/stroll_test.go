package stroll

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/graph"
	"vnfopt/internal/topology"
)

// fig4Instance builds the paper's Fig. 4(a) example graph with concrete
// weights consistent with Example 2: the optimal 2-stroll is the walk
// s, D, t, C, t of cost 6 (in the closure: s→D→C→t), while the path
// s, A, B, t costs 7.
//
// Vertices: 0=s, 1=A, 2=B, 3=C, 4=D, 5=t.
func fig4Instance() Instance {
	g := graph.New(6)
	g.AddEdge(0, 1, 3) // s-A
	g.AddEdge(1, 2, 2) // A-B
	g.AddEdge(2, 5, 2) // B-t
	g.AddEdge(0, 4, 2) // s-D
	g.AddEdge(4, 5, 2) // D-t
	g.AddEdge(3, 5, 1) // C-t
	apsp := graph.AllPairs(g)
	keep := []int{0, 1, 2, 3, 4, 5}
	return Instance{Cost: apsp.CostMatrix(keep), S: 0, T: 5, N: 2}
}

func TestValidate(t *testing.T) {
	in := fig4Instance()
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := in
	bad.S = 9
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range terminal accepted")
	}
	bad = in
	bad.N = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative n accepted")
	}
	bad = in
	bad.N = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("n exceeding intermediates accepted")
	}
	bad = in
	bad.T = bad.S
	if err := bad.Validate(); err == nil {
		t.Fatal("S==T accepted (tours must duplicate the terminal)")
	}
	bad = in
	bad.Cost = [][]float64{{0, 1}, {1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	bad = in
	bad.Cost = [][]float64{{0, -1}, {-1, 0}}
	bad.S, bad.T, bad.N = 0, 1, 0
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
	if err := (Instance{}).Validate(); err == nil {
		t.Fatal("empty instance accepted")
	}
}

func TestDPExample2Fig4(t *testing.T) {
	in := fig4Instance()
	res, err := DP(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 6 {
		t.Fatalf("DP cost = %v, want 6 (paper Example 2)", res.Cost)
	}
	// The 3-edge closure walk is s → D → C → t.
	want := []int{0, 4, 3, 5}
	if len(res.Walk) != len(want) {
		t.Fatalf("walk = %v, want %v", res.Walk, want)
	}
	for i := range want {
		if res.Walk[i] != want[i] {
			t.Fatalf("walk = %v, want %v", res.Walk, want)
		}
	}
	if len(res.Visited) != 2 || res.Visited[0] != 4 || res.Visited[1] != 3 {
		t.Fatalf("visited = %v, want [D C] = [4 3]", res.Visited)
	}
}

func TestExhaustiveExample2Fig4(t *testing.T) {
	res, err := Exhaustive(fig4Instance(), ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 6 || !res.Optimal {
		t.Fatalf("exhaustive = %+v, want optimal cost 6", res)
	}
}

func TestPrimalDualExample2Fig4(t *testing.T) {
	res, err := PrimalDual(fig4Instance())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visited) != 2 {
		t.Fatalf("visited = %v, want 2 nodes", res.Visited)
	}
	// Constant-factor territory: never worse than 2x optimal + slack on
	// this tiny instance.
	if res.Cost < 6 || res.Cost > 12 {
		t.Fatalf("primal-dual cost = %v, want in [6, 12]", res.Cost)
	}
	if got := walkCost(fig4Instance().Cost, res.Walk); math.Abs(got-res.Cost) > 1e-9 {
		t.Fatalf("reported cost %v != walk cost %v", res.Cost, got)
	}
}

// fatTreeInstance builds the closure instance between two hosts of a
// fat tree.
func fatTreeInstance(k, n int, srcHost, dstHost int) Instance {
	ft := topology.MustFatTree(k, nil)
	apsp := graph.AllPairs(ft.Graph)
	keep := append([]int{ft.Hosts[srcHost], ft.Hosts[dstHost]}, ft.Switches...)
	return Instance{Cost: apsp.CostMatrix(keep), S: 0, T: 1, N: n}
}

func TestDPExample3FatTree7Stroll(t *testing.T) {
	// Paper Example 3: placing 7 VNFs between hosts in adjacent pods of a
	// k=4 fat tree yields an 8-edge path through 7 distinct switches —
	// cost 8 in hops.
	in := fatTreeInstance(4, 7, 3, 4) // h4 (pod 0) and h5 (pod 1)
	res, err := DP(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 8 {
		t.Fatalf("DP 7-stroll cost = %v, want 8 (paper Example 3)", res.Cost)
	}
	if len(res.Visited) != 7 {
		t.Fatalf("visited %d switches, want 7", len(res.Visited))
	}
	// All visited switches must be distinct.
	seen := map[int]bool{}
	for _, v := range res.Visited {
		if seen[v] {
			t.Fatalf("duplicate switch %d in %v", v, res.Visited)
		}
		seen[v] = true
	}
}

func TestDPZeroN(t *testing.T) {
	in := fig4Instance()
	in.N = 0
	res, err := DP(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 4 { // direct closure distance s-t
		t.Fatalf("0-stroll = %v, want 4", res.Cost)
	}
	if len(res.Visited) != 0 {
		t.Fatalf("visited = %v", res.Visited)
	}
}

func TestExhaustiveZeroN(t *testing.T) {
	in := fig4Instance()
	in.N = 0
	res, err := Exhaustive(in, ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 4 || !res.Optimal {
		t.Fatalf("res = %+v", res)
	}
}

func TestDPNeverBelowExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		nv := 5 + rng.Intn(6)
		in := randomMetricInstance(rng, nv, 1+rng.Intn(3))
		dp, err := DP(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exhaustive(in, ExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Optimal {
			t.Fatal("exhaustive did not prove optimality on a tiny instance")
		}
		if dp.Cost < opt.Cost-1e-9 {
			t.Fatalf("trial %d: DP %v below optimal %v", trial, dp.Cost, opt.Cost)
		}
		if dp.Cost > 2*opt.Cost+1e-9 {
			// The paper reports DP well under the 2+ε guarantee; a
			// violation here flags a DP regression.
			t.Fatalf("trial %d: DP %v exceeds 2x optimal %v", trial, dp.Cost, opt.Cost)
		}
	}
}

func TestPrimalDualProducesFeasibleStrolls(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		nv := 6 + rng.Intn(5)
		n := 1 + rng.Intn(3)
		in := randomMetricInstance(rng, nv, n)
		res, err := PrimalDual(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Visited) != n {
			t.Fatalf("trial %d: visited %d, want %d", trial, len(res.Visited), n)
		}
		if res.Walk[0] != in.S || res.Walk[len(res.Walk)-1] != in.T {
			t.Fatalf("trial %d: walk endpoints %v", trial, res.Walk)
		}
		if got := walkCost(in.Cost, res.Walk); math.Abs(got-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: cost mismatch %v vs %v", trial, got, res.Cost)
		}
		opt, _ := Exhaustive(in, ExhaustiveOptions{})
		if res.Cost < opt.Cost-1e-9 {
			t.Fatalf("trial %d: primal-dual %v beats optimal %v", trial, res.Cost, opt.Cost)
		}
	}
}

// randomMetricInstance builds a random connected graph's metric closure
// over all vertices and picks terminals 0 and nv-1.
func randomMetricInstance(rng *rand.Rand, nv, n int) Instance {
	g := graph.New(nv)
	for v := 1; v < nv; v++ {
		g.AddEdge(rng.Intn(v), v, 1+9*rng.Float64())
	}
	for i := 0; i < nv; i++ {
		u, v := rng.Intn(nv), rng.Intn(nv)
		if u != v {
			g.AddEdge(u, v, 1+9*rng.Float64())
		}
	}
	apsp := graph.AllPairs(g)
	keep := make([]int, nv)
	for i := range keep {
		keep[i] = i
	}
	return Instance{Cost: apsp.CostMatrix(keep), S: 0, T: nv - 1, N: n}
}

func TestOptimalMonotoneInN(t *testing.T) {
	// Requiring more switches can never make the *optimal* stroll
	// cheaper: any feasible (n+1)-stroll is a feasible n-stroll. (The DP
	// heuristic does not share this property — its no-backtrack rule can
	// make shortcutting illegal — so the invariant is asserted on
	// Exhaustive.)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		in := randomMetricInstance(rng, 8, 0)
		prev := -1.0
		for n := 0; n <= 4; n++ {
			in.N = n
			res, err := Exhaustive(in, ExhaustiveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Optimal {
				t.Fatal("tiny instance not solved to optimality")
			}
			if res.Cost < prev-1e-9 {
				t.Fatalf("trial %d: optimal cost decreased from %v to %v at n=%d", trial, prev, res.Cost, n)
			}
			prev = res.Cost
		}
	}
}

func TestExhaustiveNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := randomMetricInstance(rng, 12, 5)
	res, err := Exhaustive(in, ExhaustiveOptions{NodeBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Fatal("budget-limited search claimed optimality")
	}
	// Incumbent must still be a feasible stroll.
	if len(res.Visited) != 5 {
		t.Fatalf("visited = %v", res.Visited)
	}
}

func TestDPTableSharedAcrossSources(t *testing.T) {
	in := fig4Instance()
	tb := NewDPTable(in.Cost, in.T)
	// Query from several sources; each must match the one-shot DP.
	for _, s := range []int{0, 1, 4} {
		one, err := DP(Instance{Cost: in.Cost, S: s, T: in.T, N: 2})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := tb.Stroll(s, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(one.Cost-shared.Cost) > 1e-9 {
			t.Fatalf("source %d: shared table %v != one-shot %v", s, shared.Cost, one.Cost)
		}
	}
}

func TestDPErrorWhenImpossible(t *testing.T) {
	// Two-vertex instance: no intermediates exist, n=1 must error at
	// validation.
	in := Instance{Cost: [][]float64{{0, 1}, {1, 0}}, S: 0, T: 1, N: 1}
	if _, err := DP(in); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDistinctIntermediates(t *testing.T) {
	got := distinctIntermediates([]int{0, 2, 3, 2, 4, 1}, 0, 1)
	want := []int{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestNoImmediateBacktrackInDPWalks(t *testing.T) {
	// Paper Example 3's rule: the DP never emits u → v → u.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 25; trial++ {
		in := randomMetricInstance(rng, 9, 1+rng.Intn(4))
		res, err := DP(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+2 < len(res.Walk); i++ {
			if res.Walk[i] == res.Walk[i+2] {
				t.Fatalf("trial %d: immediate backtrack in walk %v", trial, res.Walk)
			}
		}
	}
}
