package stroll

import (
	"math/rand"
	"strconv"
	"testing"
)

func benchInstance(nv, n int) Instance {
	rng := rand.New(rand.NewSource(7))
	return randomMetricInstance(rng, nv, n)
}

func BenchmarkDPByN(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			in := benchInstance(82, n) // k=8 closure size
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DP(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDPTableSharedQueries(b *testing.B) {
	in := benchInstance(82, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewDPTable(in.Cost, in.T)
		// One table, every source — Algorithm 3's access pattern.
		for s := 0; s < len(in.Cost); s++ {
			if s == in.T {
				continue
			}
			if _, err := tb.Stroll(s, 4, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExhaustive(b *testing.B) {
	in := benchInstance(20, 4) // k=4-scale exact search
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exhaustive(in, ExhaustiveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrimalDual(b *testing.B) {
	in := benchInstance(22, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PrimalDual(in); err != nil {
			b.Fatal(err)
		}
	}
}
