package stroll

import (
	"fmt"
	"math"
)

// DPTable is the incremental dynamic program of the paper's Algorithm 2,
// computed toward a fixed target t: c[e][u] is the minimum cost of a u→t
// walk with exactly e edges, under the rule that the walk never passes
// through t before its final edge and never immediately backtracks
// (u → v → u is forbidden, paper line 6).
//
// The table is shared across sources: one DPTable answers stroll queries
// from *every* source toward t, which is what makes the paper's Algorithm 3
// (all ingress/egress pairs) affordable on k=16 fat trees.
type DPTable struct {
	cost [][]float64
	t    int
	c    [][]float64 // c[e][u], e >= 1
	succ [][]int32   // succ[e][u]: next node after u on the optimal walk
}

// NewDPTable prepares the 1-edge base case toward target t.
func NewDPTable(cost [][]float64, t int) *DPTable {
	nv := len(cost)
	base := make([]float64, nv)
	bSucc := make([]int32, nv)
	for u := 0; u < nv; u++ {
		if u == t {
			base[u] = math.Inf(1)
			bSucc[u] = -1
		} else {
			base[u] = cost[u][t]
			bSucc[u] = int32(t)
		}
	}
	return &DPTable{
		cost: cost,
		t:    t,
		c:    [][]float64{nil, base}, // index 0 unused
		succ: [][]int32{nil, bSucc},
	}
}

// extend grows the table so walks of up to maxE edges are available.
func (tb *DPTable) extend(maxE int) {
	nv := len(tb.cost)
	for e := len(tb.c); e <= maxE; e++ {
		prevC, prevS := tb.c[e-1], tb.succ[e-1]
		curC := make([]float64, nv)
		curS := make([]int32, nv)
		for u := 0; u < nv; u++ {
			best := math.Inf(1)
			bestV := int32(-1)
			for v := 0; v < nv; v++ {
				// v is the walk's next hop: not u itself, not the
				// target (t only terminates walks), and not an
				// immediate backtrack (the hop after v must not
				// return to u).
				if v == u || v == tb.t || int(prevS[v]) == u {
					continue
				}
				if pc := prevC[v]; !math.IsInf(pc, 1) {
					if cand := tb.cost[u][v] + pc; cand < best {
						best = cand
						bestV = int32(v)
					}
				}
			}
			curC[u] = best
			curS[u] = bestV
		}
		tb.c = append(tb.c, curC)
		tb.succ = append(tb.succ, curS)
	}
}

// walk traces the optimal e-edge walk from s. It returns nil when no such
// walk exists.
func (tb *DPTable) walk(s, e int) []int {
	if math.IsInf(tb.c[e][s], 1) {
		return nil
	}
	out := make([]int, 0, e+1)
	out = append(out, s)
	cur := s
	for k := e; k >= 1; k-- {
		cur = int(tb.succ[k][cur])
		out = append(out, cur)
	}
	return out
}

// Stroll answers one query: the cheapest s→t walk found by the edge-count
// DP that visits at least n distinct intermediates. maxEdges caps the edge
// budget ramp (pass 0 for the default n+9). It mirrors Algorithm 2's outer
// loop: start at r = n+1 edges and increment until the traced walk covers
// n distinct nodes.
//
// Algorithm 2 leaves one case open: on some inputs the minimum-cost
// r-edge walk keeps cycling through already-visited cheap nodes no matter
// how far r ramps (the no-immediate-backtrack rule only forbids 2-cycles).
// When the ramp exhausts maxEdges, the best walk seen is completed by
// cheapest insertion of the missing distinct nodes — a metric-safe repair
// marked by Result.Repaired.
func (tb *DPTable) Stroll(s, n, maxEdges int) (Result, error) {
	if maxEdges <= 0 {
		maxEdges = n + 9
	}
	r := n + 1
	if r < 1 {
		r = 1
	}
	var bestWalk []int // walk with the most distinct intermediates so far
	bestDistinct := -1
	for ; r <= maxEdges; r++ {
		tb.extend(r)
		w := tb.walk(s, r)
		if w == nil {
			continue
		}
		vis := distinctIntermediates(w, s, tb.t)
		if len(vis) >= n {
			return Result{
				Cost:    tb.c[r][s],
				Walk:    w,
				Visited: vis[:n],
			}, nil
		}
		if len(vis) > bestDistinct {
			bestDistinct = len(vis)
			bestWalk = w
		}
	}
	if bestWalk == nil {
		return Result{}, fmt.Errorf("stroll: DP found no s-t walk at all within %d edges", maxEdges)
	}
	walk, err := insertMissing(tb.cost, bestWalk, s, tb.t, n)
	if err != nil {
		return Result{}, err
	}
	vis := distinctIntermediates(walk, s, tb.t)
	return Result{
		Cost:     walkCost(tb.cost, walk),
		Walk:     walk,
		Visited:  vis[:n],
		Repaired: true,
	}, nil
}

// insertMissing grows the walk's distinct intermediate count to n by
// repeatedly inserting the globally cheapest (node, position) pair —
// cheapest-insertion on the metric closure.
func insertMissing(cost [][]float64, walk []int, s, t, n int) ([]int, error) {
	w := append([]int(nil), walk...)
	inWalk := make(map[int]bool, len(w))
	for _, v := range w {
		inWalk[v] = true
	}
	distinct := len(distinctIntermediates(w, s, t))
	for distinct < n {
		bestDelta := math.Inf(1)
		bestV, bestPos := -1, -1
		for v := range cost {
			if v == s || v == t || inWalk[v] {
				continue
			}
			for i := 0; i+1 < len(w); i++ {
				delta := cost[w[i]][v] + cost[v][w[i+1]] - cost[w[i]][w[i+1]]
				if delta < bestDelta {
					bestDelta = delta
					bestV, bestPos = v, i
				}
			}
		}
		if bestV < 0 {
			return nil, fmt.Errorf("stroll: cannot reach %d distinct nodes (only %d available)", n, distinct)
		}
		w = append(w, 0)
		copy(w[bestPos+2:], w[bestPos+1:])
		w[bestPos+1] = bestV
		inWalk[bestV] = true
		distinct++
	}
	return w, nil
}

// DP solves one instance with the paper's Algorithm 2. For repeated
// queries against the same target prefer NewDPTable + Stroll.
func DP(in Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	return NewDPTable(in.Cost, in.T).Stroll(in.S, in.N, 0)
}
