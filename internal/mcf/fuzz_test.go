package mcf

import (
	"math"
	"testing"
)

// fuzzInstance is a tiny flow network decoded from fuzz bytes: up to 5
// nodes and 7 arcs with integer capacities 0..2 and costs -3..3 — small
// enough that every integral flow can be enumerated exactly.
type fuzzInstance struct {
	n    int
	from []int
	to   []int
	cap  []int
	cost []int
	want int // maxFlow cap: 1, 2, or unbounded (-1)
}

func decodeInstance(data []byte) (fuzzInstance, bool) {
	if len(data) < 2 {
		return fuzzInstance{}, false
	}
	inst := fuzzInstance{n: 2 + int(data[0])%4} // 2..5 nodes
	switch data[1] % 3 {
	case 0:
		inst.want = 1
	case 1:
		inst.want = 2
	default:
		inst.want = -1
	}
	data = data[2:]
	for len(data) >= 3 && len(inst.from) < 7 {
		u := int(data[0]) % inst.n
		v := int(data[1]) % inst.n
		if u == v {
			v = (v + 1) % inst.n
		}
		inst.from = append(inst.from, u)
		inst.to = append(inst.to, v)
		inst.cap = append(inst.cap, int(data[2]&3)%3)      // 0..2
		inst.cost = append(inst.cost, int(data[2]>>2)%7-3) // -3..3
		data = data[3:]
	}
	return inst, len(inst.from) > 0
}

// hasNegativeCycle detects a negative-cost cycle over arcs with positive
// capacity via Bellman-Ford from a virtual super-source. Successive
// shortest paths never cancel cycles, so on such instances the solver's
// output is only optimal among circulation-free flows; the brute-force
// oracle (which enumerates circulations too) would disagree — those
// instances are outside the solver's contract and are skipped.
func (in fuzzInstance) hasNegativeCycle() bool {
	dist := make([]float64, in.n)
	for iter := 0; iter <= in.n; iter++ {
		changed := false
		for i := range in.from {
			if in.cap[i] == 0 {
				continue
			}
			if nd := dist[in.from[i]] + float64(in.cost[i]); nd < dist[in.to[i]] {
				dist[in.to[i]] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// bruteForce enumerates every integral arc-flow assignment and returns
// the maximum s→t flow value and, among assignments achieving
// min(maxFlow, that value), the minimum cost. Capacities ≤ 2 and ≤ 7 arcs
// bound the search at 3^7 = 2187 assignments.
func (in fuzzInstance) bruteForce(s, t, maxFlow int) (bestFlow, bestCost int, feasible bool) {
	m := len(in.from)
	flow := make([]int, m)
	excess := make([]int, in.n)
	bestFlow, bestCost = 0, math.MaxInt32
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			for v := 0; v < in.n; v++ {
				if v != s && v != t && excess[v] != 0 {
					return
				}
			}
			val := excess[s] // net out of s
			if val < 0 || excess[t] != -val {
				return
			}
			if maxFlow >= 0 && val > maxFlow {
				return
			}
			cost := 0
			for j := 0; j < m; j++ {
				cost += flow[j] * in.cost[j]
			}
			if val > bestFlow || (val == bestFlow && cost < bestCost) {
				bestFlow, bestCost, feasible = val, cost, true
			}
		} else {
			for f := 0; f <= in.cap[i]; f++ {
				flow[i] = f
				excess[in.from[i]] += f
				excess[in.to[i]] -= f
				rec(i + 1)
				excess[in.from[i]] -= f
				excess[in.to[i]] += f
			}
			flow[i] = 0
		}
	}
	rec(0)
	return bestFlow, bestCost, feasible
}

// FuzzMinCostFlow pins the Johnson-potential successive-shortest-path
// solver against exhaustive enumeration on tiny integral instances,
// negative-cost arcs included. Everything is integral, so the comparison
// is exact: float64 holds the sums without rounding.
func FuzzMinCostFlow(f *testing.F) {
	f.Add([]byte{1, 2, 0, 1, 2, 1, 2, 6, 0, 2, 1})
	f.Add([]byte{3, 0, 0, 1, 30, 1, 2, 2, 2, 0, 9}) // negative-cost arc
	f.Add([]byte{2, 1, 0, 1, 1, 1, 0, 29, 0, 1, 2}) // 2-cycle
	f.Add([]byte{0, 2, 0, 1, 2, 1, 0, 2, 0, 1, 14}) // parallel arcs
	f.Add([]byte{3, 2, 0, 3, 2, 3, 4, 2, 4, 1, 2, 1, 2, 6, 2, 0, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, ok := decodeInstance(data)
		if !ok {
			return
		}
		if inst.hasNegativeCycle() {
			// Outside the solver contract when reachable (it errors) and
			// outside the oracle's comparison semantics when not.
			return
		}
		nw := NewNetwork(inst.n)
		for i := range inst.from {
			nw.AddArc(inst.from[i], inst.to[i], float64(inst.cap[i]), float64(inst.cost[i]))
		}
		s, t2 := 0, inst.n-1
		limit := math.Inf(1)
		if inst.want >= 0 {
			limit = float64(inst.want)
		}
		got, err := nw.MinCostFlow(s, t2, limit)
		if err != nil {
			t.Fatalf("solver error on cycle-free instance %+v: %v", inst, err)
		}
		wantFlow, wantCost, feasible := inst.bruteForce(s, t2, inst.want)
		if !feasible {
			t.Fatalf("oracle found no feasible flow (zero flow is always feasible): %+v", inst)
		}
		if got.Flow != float64(wantFlow) {
			t.Fatalf("flow %v, oracle %d on %+v", got.Flow, wantFlow, inst)
		}
		if got.Cost != float64(wantCost) {
			t.Fatalf("cost %v at flow %v, oracle %d on %+v", got.Cost, got.Flow, wantCost, inst)
		}
	})
}
