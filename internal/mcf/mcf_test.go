package mcf

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	// s(0) -> 1 -> t(2), capacity 5, costs 1+2.
	nw := NewNetwork(3)
	nw.AddArc(0, 1, 5, 1)
	nw.AddArc(1, 2, 5, 2)
	res, err := nw.MinCostFlow(0, 2, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Cost != 15 {
		t.Fatalf("res = %+v, want flow 5 cost 15", res)
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	// Two parallel s-t paths: cost 10 (cap 4) and cost 1 (cap 3).
	nw := NewNetwork(4)
	expensive := nw.AddArc(0, 1, 4, 10)
	nw.AddArc(1, 3, 4, 0)
	cheap := nw.AddArc(0, 2, 3, 1)
	nw.AddArc(2, 3, 3, 0)
	res, err := nw.MinCostFlow(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 {
		t.Fatalf("flow = %v, want 5", res.Flow)
	}
	// 3 units via cheap (cost 3) + 2 via expensive (cost 20).
	if res.Cost != 23 {
		t.Fatalf("cost = %v, want 23", res.Cost)
	}
	if f := nw.Flow(cheap); f != 3 {
		t.Fatalf("cheap arc flow = %v, want 3", f)
	}
	if f := nw.Flow(expensive); f != 2 {
		t.Fatalf("expensive arc flow = %v, want 2", f)
	}
}

func TestMaxFlowLimited(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddArc(0, 1, 100, 1)
	res, err := nw.MinCostFlow(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 7 || res.Cost != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDisconnected(t *testing.T) {
	nw := NewNetwork(3)
	nw.AddArc(0, 1, 5, 1)
	res, err := nw.MinCostFlow(0, 2, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("res = %+v, want zero", res)
	}
}

func TestNegativeCostArc(t *testing.T) {
	// Path with a negative arc: 0 -> 1 (cost -5) -> 2 (cost 2).
	nw := NewNetwork(3)
	nw.AddArc(0, 1, 3, -5)
	nw.AddArc(1, 2, 3, 2)
	res, err := nw.MinCostFlow(0, 2, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 3 || res.Cost != -9 {
		t.Fatalf("res = %+v, want flow 3 cost -9", res)
	}
}

func TestResidualRerouting(t *testing.T) {
	// Classic case where the second augmentation must push flow back
	// through a residual arc.
	//   0->1 cap1 cost1, 0->2 cap1 cost2, 1->2 cap1 cost1,
	//   1->3 cap1 cost3, 2->3 cap1 cost1
	nw := NewNetwork(4)
	nw.AddArc(0, 1, 1, 1)
	nw.AddArc(0, 2, 1, 2)
	nw.AddArc(1, 2, 1, 1)
	nw.AddArc(1, 3, 1, 3)
	nw.AddArc(2, 3, 1, 1)
	res, err := nw.MinCostFlow(0, 3, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 {
		t.Fatalf("flow = %v, want 2", res.Flow)
	}
	// Optimal: 0-1-2-3 (3) and 0-2? cap conflict; min cost max flow = 3+? ->
	// paths 0-1-2-3 (cost 3) + 0-2-3 blocked (2-3 full) => 0-1-3? 1 full.
	// Best pair: 0-1-3 (4) + 0-2-3 (3) = 7, or 0-1-2-3 (3) + 0-2 ->(2,3 full)
	// residual reroute: 0-2 (2), push 2->... net optimum is 7.
	if res.Cost != 7 {
		t.Fatalf("cost = %v, want 7", res.Cost)
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3x3 assignment via MCF must find the optimal matching.
	// Cost matrix rows=workers (1..3), cols=jobs (4..6):
	//   [4 1 3]
	//   [2 0 5]
	//   [3 2 2]
	// Optimal assignment cost = 1 + 2 + 2 = 5.
	cost := [3][3]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}
	nw := NewNetwork(8) // 0=s, 1..3 workers, 4..6 jobs, 7=t
	for i := 0; i < 3; i++ {
		nw.AddArc(0, 1+i, 1, 0)
		nw.AddArc(4+i, 7, 1, 0)
	}
	ids := [3][3]int{}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			ids[i][j] = nw.AddArc(1+i, 4+j, 1, cost[i][j])
		}
	}
	res, err := nw.MinCostFlow(0, 7, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 3 || res.Cost != 5 {
		t.Fatalf("res = %+v, want flow 3 cost 5", res)
	}
	// Extract assignment: worker 0 -> job 1, 1 -> job 0, 2 -> job 2.
	want := [3]int{1, 0, 2}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			f := nw.Flow(ids[i][j])
			if (f == 1) != (want[i] == j) {
				t.Fatalf("assignment arc (%d,%d) flow %v", i, j, f)
			}
		}
	}
}

func TestMinCostFlowMatchesBruteForceAssignment(t *testing.T) {
	// Random small assignment instances cross-checked against brute-force
	// permutation search.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		nw := NewNetwork(2 + 2*n)
		s, tk := 0, 1+2*n
		ids := make([][]int, n)
		for i := 0; i < n; i++ {
			nw.AddArc(s, 1+i, 1, 0)
			nw.AddArc(1+n+i, tk, 1, 0)
			ids[i] = make([]int, n)
			for j := 0; j < n; j++ {
				ids[i][j] = nw.AddArc(1+i, 1+n+j, 1, cost[i][j])
			}
		}
		res, err := nw.MinCostFlow(s, tk, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(i int, cur float64, used []bool, asg []int)
		rec = func(i int, cur float64, used []bool, asg []int) {
			if i == n {
				if cur < best {
					best = cur
				}
				return
			}
			for j := 0; j < n; j++ {
				if !used[j] {
					used[j] = true
					rec(i+1, cur+cost[i][j], used, asg)
					used[j] = false
				}
			}
		}
		rec(0, 0, make([]bool, n), make([]int, n))
		if math.Abs(res.Cost-best) > 1e-9 || res.Flow != float64(n) {
			t.Fatalf("trial %d: mcf cost %v flow %v, brute force %v", trial, res.Cost, res.Flow, best)
		}
	}
}

func TestErrorsAndPanics(t *testing.T) {
	nw := NewNetwork(3)
	if _, err := nw.MinCostFlow(0, 0, 1); err == nil {
		t.Fatal("s==t accepted")
	}
	if _, err := nw.MinCostFlow(-1, 2, 1); err == nil {
		t.Fatal("bad terminal accepted")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad vertex count", func() { NewNetwork(0) })
	mustPanic("arc out of range", func() { nw.AddArc(0, 9, 1, 1) })
	mustPanic("negative capacity", func() { nw.AddArc(0, 1, -1, 1) })
	mustPanic("odd flow id", func() {
		nw2 := NewNetwork(2)
		nw2.AddArc(0, 1, 1, 1)
		nw2.Flow(1)
	})
}

func TestOrder(t *testing.T) {
	if NewNetwork(5).Order() != 5 {
		t.Fatal("order")
	}
}
