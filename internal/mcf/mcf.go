// Package mcf implements a successive-shortest-path min-cost max-flow
// solver with Johnson potentials. It is the substrate behind the paper's
// MCF comparison baseline (Flores et al. [24]), which casts joint VM
// migration-and-communication cost minimization as a minimum cost flow
// problem.
//
// The solver handles non-negative edge costs directly and negative costs
// via a Bellman-Ford potential initialization, after which each augmenting
// iteration runs Dijkstra on reduced costs.
package mcf

import (
	"fmt"
	"math"
)

// arc is one directed arc of the residual network. Arcs are stored in
// pairs: arc 2i is the forward arc, 2i+1 its residual reverse.
type arc struct {
	to   int
	cap  float64
	cost float64
}

// Network is a directed flow network under construction.
type Network struct {
	n    int
	arcs []arc
	head [][]int // head[v] lists arc indices leaving v
}

// NewNetwork returns a network with n vertices and no arcs.
func NewNetwork(n int) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("mcf: invalid vertex count %d", n))
	}
	return &Network{n: n, head: make([][]int, n)}
}

// Order returns the number of vertices.
func (nw *Network) Order() int { return nw.n }

// AddArc inserts a directed arc u→v with the given capacity and per-unit
// cost, returning its ID for later flow inspection. Capacity must be
// non-negative; cost may be negative.
func (nw *Network) AddArc(u, v int, capacity, cost float64) int {
	if u < 0 || v < 0 || u >= nw.n || v >= nw.n {
		panic(fmt.Sprintf("mcf: arc (%d,%d) out of range [0,%d)", u, v, nw.n))
	}
	if capacity < 0 || math.IsNaN(capacity) || math.IsNaN(cost) {
		panic(fmt.Sprintf("mcf: invalid arc capacity=%v cost=%v", capacity, cost))
	}
	id := len(nw.arcs)
	nw.arcs = append(nw.arcs, arc{to: v, cap: capacity, cost: cost})
	nw.arcs = append(nw.arcs, arc{to: u, cap: 0, cost: -cost})
	nw.head[u] = append(nw.head[u], id)
	nw.head[v] = append(nw.head[v], id+1)
	return id
}

// Flow returns the flow currently routed through arc id (forward arcs
// only), i.e. the residual capacity of its reverse arc.
func (nw *Network) Flow(id int) float64 {
	if id < 0 || id >= len(nw.arcs) || id%2 != 0 {
		panic(fmt.Sprintf("mcf: invalid forward arc id %d", id))
	}
	return nw.arcs[id^1].cap
}

// Result summarizes a min-cost flow computation.
type Result struct {
	// Flow is the total flow shipped from source to sink.
	Flow float64
	// Cost is the total cost of that flow.
	Cost float64
}

// MinCostFlow ships up to maxFlow units from s to t at minimum total cost
// and returns the amount shipped and its cost. Pass math.Inf(1) as maxFlow
// for min-cost max-flow. The network's residual state is consumed: call on
// a freshly built network.
func (nw *Network) MinCostFlow(s, t int, maxFlow float64) (Result, error) {
	if s < 0 || t < 0 || s >= nw.n || t >= nw.n {
		return Result{}, fmt.Errorf("mcf: terminals (%d,%d) out of range", s, t)
	}
	if s == t {
		return Result{}, fmt.Errorf("mcf: source equals sink %d", s)
	}

	pot := make([]float64, nw.n)
	if nw.hasNegativeCost() {
		if ok := nw.bellmanFordPotentials(s, pot); !ok {
			return Result{}, fmt.Errorf("mcf: negative-cost cycle detected")
		}
	}

	var res Result
	dist := make([]float64, nw.n)
	prevArc := make([]int, nw.n)
	// Each augmentation saturates at least one arc on a shortest path, and
	// float rounding cannot manufacture new capacity, so iterations are
	// bounded; the cap below is a defensive backstop against accounting
	// bugs turning into hangs.
	maxAug := 4*len(nw.arcs) + 64
	for aug := 0; res.Flow < maxFlow; aug++ {
		if aug > maxAug {
			return res, fmt.Errorf("mcf: augmentation limit %d exceeded (degenerate instance)", maxAug)
		}
		// Dijkstra on reduced costs. Potentials keep reduced costs
		// non-negative in exact arithmetic; float residue can leave
		// values like -1e-12, which would let Dijkstra chase phantom
		// negative cycles forever — clamp at zero.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
		}
		dist[s] = 0
		pq := &pairHeap{}
		pq.push(pair{v: s, d: 0})
		for pq.Len() > 0 {
			it := pq.pop()
			if it.d > dist[it.v] {
				continue
			}
			for _, id := range nw.head[it.v] {
				a := nw.arcs[id]
				if a.cap <= 1e-12 {
					continue
				}
				rc := a.cost + pot[it.v] - pot[a.to]
				if rc < 0 {
					rc = 0
				}
				if nd := it.d + rc; nd < dist[a.to] {
					dist[a.to] = nd
					prevArc[a.to] = id
					pq.push(pair{v: a.to, d: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path
		}
		for v := 0; v < nw.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - res.Flow
		for v := t; v != s; {
			a := nw.arcs[prevArc[v]]
			if a.cap < push {
				push = a.cap
			}
			v = nw.arcs[prevArc[v]^1].to
		}
		for v := t; v != s; {
			id := prevArc[v]
			nw.arcs[id].cap -= push
			nw.arcs[id^1].cap += push
			res.Cost += push * nw.arcs[id].cost
			v = nw.arcs[id^1].to
		}
		res.Flow += push
	}
	return res, nil
}

func (nw *Network) hasNegativeCost() bool {
	for i := 0; i < len(nw.arcs); i += 2 {
		if nw.arcs[i].cost < 0 {
			return true
		}
	}
	return false
}

// bellmanFordPotentials initializes potentials as shortest distances from s
// over arcs with positive capacity; returns false on a negative cycle
// reachable from s.
func (nw *Network) bellmanFordPotentials(s int, pot []float64) bool {
	for i := range pot {
		pot[i] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < nw.n; iter++ {
		changed := false
		for u := 0; u < nw.n; u++ {
			if math.IsInf(pot[u], 1) {
				continue
			}
			for _, id := range nw.head[u] {
				a := nw.arcs[id]
				if a.cap <= 1e-12 {
					continue
				}
				if nd := pot[u] + a.cost; nd < pot[a.to]-1e-12 {
					pot[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == nw.n-1 {
			return false
		}
	}
	// Unreached vertices keep potential 0 so reduced costs stay finite.
	for i := range pot {
		if math.IsInf(pot[i], 1) {
			pot[i] = 0
		}
	}
	return true
}

// pair and pairHeap form a tiny binary min-heap for the Dijkstra stage.
type pair struct {
	v int
	d float64
}

type pairHeap struct{ items []pair }

func (h *pairHeap) Len() int { return len(h.items) }

func (h *pairHeap) push(p pair) {
	h.items = append(h.items, p)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].d <= h.items[i].d {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *pairHeap) pop() pair {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.items[l].d < h.items[m].d {
			m = l
		}
		if r < last && h.items[r].d < h.items[m].d {
			m = r
		}
		if m == i {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return top
}
