package model

// This file implements the paper's cost functions.
//
// Eq. 1:  C_a(p) = Σ_i λ_i Σ_{j<n} c(p(j), p(j+1))
//                + Σ_i λ_i ( c(s(v_i), p(1)) + c(p(n), s(v'_i)) )
//
// C_b(p,m) = μ Σ_j c(p(j), m(j))                       (migration traffic)
// Eq. 8:  C_t(p,m) = C_b(p,m) + C_a(m)                 (TOM objective)
//
// A useful decomposition the solvers exploit: the chain portion of C_a is
// paid once per unit of rate by *every* flow, so
//
//   C_a(p) = Λ · chain(p) + Σ_i λ_i ( c(s_i, p(1)) + c(p(n), t_i) )
//
// with Λ = Σλ_i. EndpointCosts precomputes the two per-switch endpoint sums.

// ChainCost returns Σ_{j<n} c(p(j), p(j+1)) — the length of the SFC path.
func (d *PPDC) ChainCost(p Placement) float64 {
	sum := 0.0
	for j := 0; j+1 < len(p); j++ {
		sum += d.APSP.Cost(p[j], p[j+1])
	}
	return sum
}

// CommCost returns C_a(p) for the workload under placement p (Eq. 1).
// An empty placement means flows communicate directly (no SFC), costing
// Σ λ_i c(s_i, t_i).
func (d *PPDC) CommCost(w Workload, p Placement) float64 {
	if len(p) == 0 {
		sum := 0.0
		for _, f := range w {
			sum += f.Rate * d.APSP.Cost(f.Src, f.Dst)
		}
		return sum
	}
	chain := d.ChainCost(p)
	total := w.TotalRate() * chain
	in, out := p[0], p[len(p)-1]
	for _, f := range w {
		total += f.Rate * (d.APSP.Cost(f.Src, in) + d.APSP.Cost(out, f.Dst))
	}
	return total
}

// FlowCost returns one flow's policy-preserving communication cost under p:
// λ ( c(s, p(1)) + chain(p) + c(p(n), t) ).
func (d *PPDC) FlowCost(f VMPair, p Placement) float64 {
	if len(p) == 0 {
		return f.Rate * d.APSP.Cost(f.Src, f.Dst)
	}
	return f.Rate * (d.APSP.Cost(f.Src, p[0]) + d.ChainCost(p) + d.APSP.Cost(p[len(p)-1], f.Dst))
}

// MigrationCost returns C_b(p, m) = μ Σ_j c(p(j), m(j)). It panics when the
// placements have different lengths, which indicates a solver bug.
func (d *PPDC) MigrationCost(p, m Placement, mu float64) float64 {
	if len(p) != len(m) {
		panic("model: migration between placements of different SFC lengths")
	}
	sum := 0.0
	for j := range p {
		sum += d.APSP.Cost(p[j], m[j])
	}
	return mu * sum
}

// TotalCost returns C_t(p, m) = C_b(p, m) + C_a(m) (Eq. 8): the TOM
// objective of migrating from p to m and then serving workload w.
func (d *PPDC) TotalCost(w Workload, p, m Placement, mu float64) float64 {
	return d.MigrationCost(p, m, mu) + d.CommCost(w, m)
}

// EndpointCosts precomputes, for every vertex s of the PPDC,
//
//	ingress[s] = Σ_i λ_i c(s(v_i), s)   (cost of using s as ingress switch)
//	egress[s]  = Σ_i λ_i c(s, s(v'_i))  (cost of using s as egress switch)
//
// so that C_a(p) = Λ·chain(p) + ingress[p(1)] + egress[p(n)]. Placement
// solvers call this once per traffic vector instead of re-scanning flows
// for every candidate ingress/egress pair.
func (d *PPDC) EndpointCosts(w Workload) (ingress, egress []float64) {
	n := d.Topo.Graph.Order()
	ingress = make([]float64, n)
	egress = make([]float64, n)
	for _, f := range w {
		if f.Rate == 0 {
			continue
		}
		for v := 0; v < n; v++ {
			ingress[v] += f.Rate * d.APSP.Cost(f.Src, v)
			egress[v] += f.Rate * d.APSP.Cost(v, f.Dst)
		}
	}
	return ingress, egress
}
