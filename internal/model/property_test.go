package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vnfopt/internal/topology"
)

// propertyFixture builds a shared k=4 PPDC plus generators for random
// workloads and placements derived from a seed.
type propertyFixture struct {
	d *PPDC
}

func newPropertyFixture() *propertyFixture {
	return &propertyFixture{d: MustNew(topology.MustFatTree(4, nil), Options{})}
}

func (fx *propertyFixture) workload(rng *rand.Rand, l int) Workload {
	hosts := fx.d.Topo.Hosts
	w := make(Workload, l)
	for i := range w {
		w[i] = VMPair{
			Src:  hosts[rng.Intn(len(hosts))],
			Dst:  hosts[rng.Intn(len(hosts))],
			Rate: rng.Float64() * 1000,
		}
	}
	return w
}

func (fx *propertyFixture) placement(rng *rand.Rand, n int) Placement {
	perm := rng.Perm(len(fx.d.Topo.Switches))
	p := make(Placement, n)
	for j := 0; j < n; j++ {
		p[j] = fx.d.Topo.Switches[perm[j]]
	}
	return p
}

// TestPropertyCommCostLinearInRates: C_a(c·λ) = c·C_a(λ).
func TestPropertyCommCostLinearInRates(t *testing.T) {
	fx := newPropertyFixture()
	f := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := fx.workload(rng, 1+rng.Intn(10))
		p := fx.placement(rng, 1+rng.Intn(4))
		scale := 1 + float64(scaleRaw)/16
		scaled := make([]float64, len(w))
		for i := range w {
			scaled[i] = w[i].Rate * scale
		}
		a := fx.d.CommCost(w, p) * scale
		b := fx.d.CommCost(w.WithRates(scaled), p)
		return math.Abs(a-b) < 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCommCostAdditive: C_a over a concatenated workload is the
// sum of the parts.
func TestPropertyCommCostAdditive(t *testing.T) {
	fx := newPropertyFixture()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w1 := fx.workload(rng, 1+rng.Intn(8))
		w2 := fx.workload(rng, 1+rng.Intn(8))
		p := fx.placement(rng, 1+rng.Intn(4))
		joint := append(append(Workload{}, w1...), w2...)
		a := fx.d.CommCost(w1, p) + fx.d.CommCost(w2, p)
		b := fx.d.CommCost(joint, p)
		return math.Abs(a-b) < 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMigrationCostSymmetric: C_b(p→m) = C_b(m→p) on an
// undirected PPDC, and zero exactly when p = m.
func TestPropertyMigrationCostSymmetric(t *testing.T) {
	fx := newPropertyFixture()
	f := func(seed int64, muRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		p := fx.placement(rng, n)
		m := fx.placement(rng, n)
		mu := float64(muRaw)
		fwd := fx.d.MigrationCost(p, m, mu)
		bwd := fx.d.MigrationCost(m, p, mu)
		if math.Abs(fwd-bwd) > 1e-9 {
			return false
		}
		if p.Equal(m) && fwd != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTotalCostIdentity: C_t(p, p) = C_a(p) — staying put costs
// exactly the communication cost.
func TestPropertyTotalCostIdentity(t *testing.T) {
	fx := newPropertyFixture()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := fx.workload(rng, 1+rng.Intn(10))
		p := fx.placement(rng, 1+rng.Intn(4))
		return math.Abs(fx.d.TotalCost(w, p, p, 1e5)-fx.d.CommCost(w, p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyChainCostTriangle: collapsing any interior VNF of a chain
// onto its predecessor never increases the chain cost by more than the
// removed detour (metric property of shortest-path costs).
func TestPropertyChainCostTriangle(t *testing.T) {
	fx := newPropertyFixture()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := fx.placement(rng, 3)
		// c(p0,p2) ≤ c(p0,p1) + c(p1,p2): the shortest-path oracle obeys
		// the triangle inequality.
		direct := fx.d.Cost(p[0], p[2])
		detour := fx.d.Cost(p[0], p[1]) + fx.d.Cost(p[1], p[2])
		return direct <= detour+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFlowCostNonNegative: every cost primitive is non-negative
// for non-negative rates.
func TestPropertyFlowCostNonNegative(t *testing.T) {
	fx := newPropertyFixture()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := fx.workload(rng, 1+rng.Intn(6))
		p := fx.placement(rng, 1+rng.Intn(4))
		m := fx.placement(rng, len(p))
		if fx.d.CommCost(w, p) < 0 || fx.d.MigrationCost(p, m, 10) < 0 {
			return false
		}
		for _, fl := range w {
			if fx.d.FlowCost(fl, p) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
