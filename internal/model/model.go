// Package model defines the PPDC system model of the paper: the network
// (hosts, switches, shortest-path cost oracle), VM flows with traffic
// rates, service function chains, VNF placements and migrations, and the
// paper's three cost functions C_a (Eq. 1), C_b, and C_t (Eq. 8).
package model

import (
	"fmt"
	"math"

	"vnfopt/internal/graph"
	"vnfopt/internal/topology"
)

// Options tunes model-level behaviour.
type Options struct {
	// AllowColocation permits any number of VNFs of the SFC on the same
	// switch. The paper assumes distinct switches (footnote 3);
	// colocation is the paper's stated future work and is implemented
	// here as an extension.
	AllowColocation bool
	// SwitchCapacity caps the VNFs per switch when positive, overriding
	// AllowColocation (footnote 3's motivation: the attached server "has
	// limited resources thus can install a limited number of VNFs").
	// Zero means the default: 1 without AllowColocation, unlimited with.
	SwitchCapacity int
}

// CapFits reports whether one more VNF fits on switch s given the counts
// placed so far.
func (d *PPDC) CapFits(count map[int]int, s int) bool {
	c := d.SwitchCap()
	return c <= 0 || count[s] < c
}

// SwitchCap returns the effective per-switch VNF capacity: a positive
// bound, or -1 for unlimited.
func (d *PPDC) SwitchCap() int {
	if d.Opts.SwitchCapacity > 0 {
		return d.Opts.SwitchCapacity
	}
	if d.Opts.AllowColocation {
		return -1
	}
	return 1
}

// PPDC is a policy-preserving data center: a topology plus the cached
// all-pairs shortest-path cost oracle c(u,v).
type PPDC struct {
	Topo *topology.Topology
	// APSP caches c(u,v) for every vertex pair.
	APSP *graph.APSP
	// Opts holds model options.
	Opts Options
}

// New builds a PPDC from a topology, computing the APSP cache.
func New(t *topology.Topology, opts Options) (*PPDC, error) {
	if t == nil {
		return nil, fmt.Errorf("model: nil topology")
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	return &PPDC{Topo: t, APSP: graph.AllPairs(t.Graph), Opts: opts}, nil
}

// MustNew is New but panics on error; for tests and examples with
// known-good topologies.
func MustNew(t *topology.Topology, opts Options) *PPDC {
	d, err := New(t, opts)
	if err != nil {
		panic(err)
	}
	return d
}

// Cost returns the topology-aware cost c(u,v) between any two vertices.
func (d *PPDC) Cost(u, v int) float64 { return d.APSP.Cost(u, v) }

// Switches returns V_s.
func (d *PPDC) Switches() []int { return d.Topo.Switches }

// Hosts returns V_h.
func (d *PPDC) Hosts() []int { return d.Topo.Hosts }

// VMPair is one communicating VM flow (v_i, v'_i): a source host, a
// destination host, and the current traffic rate λ_i.
type VMPair struct {
	// Src and Dst are the host vertices s(v_i) and s(v'_i).
	Src, Dst int
	// Rate is λ_i ≥ 0: communication frequency or bandwidth demand.
	Rate float64
}

// Workload is the set P of VM flows. Rates mutate over time in dynamic
// PPDC simulations; the slice itself is the traffic-rate vector λ.
type Workload []VMPair

// TotalRate returns Λ = Σ_i λ_i, the coefficient every chain edge pays in
// C_a (each flow traverses the whole SFC once).
func (w Workload) TotalRate() float64 {
	s := 0.0
	for _, p := range w {
		s += p.Rate
	}
	return s
}

// Rates extracts the traffic-rate vector.
func (w Workload) Rates() []float64 {
	out := make([]float64, len(w))
	for i, p := range w {
		out[i] = p.Rate
	}
	return out
}

// WithRates returns a copy of the workload with rates replaced. It panics
// if the lengths differ, which indicates a simulation bug.
func (w Workload) WithRates(rates []float64) Workload {
	if len(rates) != len(w) {
		panic(fmt.Sprintf("model: %d rates for %d flows", len(rates), len(w)))
	}
	out := make(Workload, len(w))
	for i, p := range w {
		p.Rate = rates[i]
		out[i] = p
	}
	return out
}

// Validate checks that every flow endpoint is a host of the PPDC and every
// rate is a finite non-negative number.
func (w Workload) Validate(d *PPDC) error {
	isHost := make(map[int]bool, len(d.Topo.Hosts))
	for _, h := range d.Topo.Hosts {
		isHost[h] = true
	}
	for i, p := range w {
		if !isHost[p.Src] || !isHost[p.Dst] {
			return fmt.Errorf("model: flow %d endpoints (%d,%d) are not hosts", i, p.Src, p.Dst)
		}
		if p.Rate < 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
			return fmt.Errorf("model: flow %d has invalid rate %v", i, p.Rate)
		}
	}
	return nil
}

// SFC is a service function chain (f_1, ..., f_n): VM traffic must traverse
// the VNFs in this order. Only the length matters to the optimization; the
// names document intent (e.g. firewall, IDS, proxy).
type SFC struct {
	Names []string
}

// NewSFC builds an SFC of n generic VNFs f1..fn.
func NewSFC(n int) SFC {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i+1)
	}
	return SFC{Names: names}
}

// Len returns n, the number of VNFs.
func (c SFC) Len() int { return len(c.Names) }

// Placement is a VNF placement function p: Placement[j] is the switch
// hosting f_{j+1}. A Migration target m uses the same representation.
type Placement []int

// Clone returns a copy of the placement.
func (p Placement) Clone() Placement { return append(Placement(nil), p...) }

// Equal reports whether two placements are identical.
func (p Placement) Equal(q Placement) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Validate checks that the placement has one switch per VNF, every entry
// is a switch of d, and the per-switch VNF count respects the effective
// capacity — paper footnote 3 (1 per switch), generalized by the
// colocation/capacity extension.
func (p Placement) Validate(d *PPDC, sfc SFC) error {
	if len(p) != sfc.Len() {
		return fmt.Errorf("model: placement covers %d VNFs, SFC has %d", len(p), sfc.Len())
	}
	isSwitch := make(map[int]bool, len(d.Topo.Switches))
	for _, s := range d.Topo.Switches {
		isSwitch[s] = true
	}
	cap := d.SwitchCap()
	count := make(map[int]int, len(p))
	for j, s := range p {
		if !isSwitch[s] {
			return fmt.Errorf("model: placement of %s at vertex %d, which is not a switch", sfc.Names[j], s)
		}
		count[s]++
		if cap > 0 && count[s] > cap {
			return fmt.Errorf("model: switch %d hosts %d VNFs, capacity %d (%s overflows)",
				s, count[s], cap, sfc.Names[j])
		}
	}
	return nil
}
