package model

import (
	"math/rand"
	"testing"

	"vnfopt/internal/topology"
)

// benchCache builds the k=8 (128-host) paper-scale fixture the delta-path
// benchmarks run on: l flows over a fat tree, aggregated once.
func benchCache(b *testing.B, l int) (*WorkloadCache, Workload) {
	b.Helper()
	d := MustNew(topology.MustFatTree(8, nil), Options{})
	rng := rand.New(rand.NewSource(7))
	hosts := d.Hosts()
	w := make(Workload, l)
	for i := range w {
		w[i] = VMPair{
			Src:  hosts[rng.Intn(len(hosts))],
			Dst:  hosts[rng.Intn(len(hosts))],
			Rate: rng.Float64() * 100,
		}
	}
	return d.NewWorkloadCache(w), w
}

// BenchmarkWorkloadCacheApplyDelta measures the O(|V|) incremental update
// of one changed pair — the engine's per-pair epoch cost.
func BenchmarkWorkloadCacheApplyDelta(b *testing.B) {
	c, _ := benchCache(b, 2000)
	pairs := len(c.Aggregated())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ApplyDelta(i%pairs, float64(i%97)+1)
	}
}

// BenchmarkWorkloadCacheRebuild measures the full SetWorkload rebuild the
// delta path replaces — the O(l + H·|V|) baseline for one changed pair.
func BenchmarkWorkloadCacheRebuild(b *testing.B) {
	c, w := benchCache(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w[i%len(w)].Rate = float64(i%97) + 1
		c.SetWorkload(w)
	}
}
