package model

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/topology"
)

// closeRel is the 1-ULP-scale equivalence the aggregated cache promises:
// it reorders float sums, so results match the scalar oracle up to
// reassociation error, which is bounded far below 1e-9 relative at our
// workload sizes.
func closeRel(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

func cacheFixture(t *testing.T) (*PPDC, Workload, *rand.Rand) {
	t.Helper()
	d := MustNew(topology.MustFatTree(4, nil), Options{})
	rng := rand.New(rand.NewSource(42))
	hosts := d.Hosts()
	w := make(Workload, 40)
	for i := range w {
		w[i] = VMPair{
			Src:  hosts[rng.Intn(len(hosts))],
			Dst:  hosts[rng.Intn(len(hosts))],
			Rate: rng.Float64() * 100,
		}
	}
	return d, w, rng
}

func randomPlacement(d *PPDC, n int, rng *rand.Rand) Placement {
	sw := d.Switches()
	perm := rng.Perm(len(sw))
	p := make(Placement, n)
	for j := 0; j < n; j++ {
		p[j] = sw[perm[j]]
	}
	return p
}

func TestWorkloadCacheMatchesScalarOracles(t *testing.T) {
	d, w, rng := cacheFixture(t)
	c := d.NewWorkloadCache(w)

	if got, want := c.TotalRate(), w.TotalRate(); !closeRel(got, want) {
		t.Fatalf("TotalRate %v != %v", got, want)
	}
	in, eg := c.EndpointCosts()
	inS, egS := d.EndpointCosts(w)
	for v := range in {
		if !closeRel(in[v], inS[v]) || !closeRel(eg[v], egS[v]) {
			t.Fatalf("endpoint vectors diverge at %d: (%v,%v) vs (%v,%v)", v, in[v], eg[v], inS[v], egS[v])
		}
	}
	if got, want := c.CommCost(nil), d.CommCost(w, nil); !closeRel(got, want) {
		t.Fatalf("empty-placement C_a %v != %v", got, want)
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		p := randomPlacement(d, n, rng)
		if got, want := c.CommCost(p), d.CommCost(w, p); !closeRel(got, want) {
			t.Fatalf("C_a(%v) = %v, scalar %v", p, got, want)
		}
		m := randomPlacement(d, n, rng)
		mu := rng.Float64() * 1e4
		if got, want := c.TotalCost(p, m, mu), d.TotalCost(w, p, m, mu); !closeRel(got, want) {
			t.Fatalf("C_t = %v, scalar %v", got, want)
		}
	}
}

func TestWorkloadCacheAggregatesDuplicatePairs(t *testing.T) {
	d, _, _ := cacheFixture(t)
	h := d.Hosts()
	w := Workload{
		{Src: h[0], Dst: h[1], Rate: 3},
		{Src: h[0], Dst: h[1], Rate: 4}, // same pair: must merge
		{Src: h[1], Dst: h[0], Rate: 5}, // reversed pair: must stay separate
		{Src: h[2], Dst: h[3], Rate: 0}, // zero rate: must be dropped
	}
	c := d.NewWorkloadCache(w)
	agg := c.Aggregated()
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d pairs, want 2: %v", len(agg), agg)
	}
	if agg[0].Rate != 7 || agg[1].Rate != 5 {
		t.Fatalf("aggregated rates %v/%v, want 7/5", agg[0].Rate, agg[1].Rate)
	}
	if got, want := c.CommCost(nil), d.CommCost(w, nil); !closeRel(got, want) {
		t.Fatalf("direct cost %v != scalar %v", got, want)
	}
}

// TestWorkloadCacheSetWorkload exercises the invalidation hook of the TOM
// dynamic-rates path: rebuilt aggregates must track the new rates (and
// even new endpoints) exactly as a fresh cache would.
func TestWorkloadCacheSetWorkload(t *testing.T) {
	d, w, rng := cacheFixture(t)
	c := d.NewWorkloadCache(w)
	p := randomPlacement(d, 3, rng)

	for round := 0; round < 10; round++ {
		w2 := make(Workload, len(w))
		copy(w2, w)
		for i := range w2 {
			w2[i].Rate = rng.Float64() * 1000
		}
		if round%3 == 2 { // occasionally move endpoints too
			hosts := d.Hosts()
			w2[rng.Intn(len(w2))].Src = hosts[rng.Intn(len(hosts))]
		}
		c.SetWorkload(w2)
		if got, want := c.CommCost(p), d.CommCost(w2, p); !closeRel(got, want) {
			t.Fatalf("round %d: rebuilt C_a %v != scalar %v", round, got, want)
		}
		fresh := d.NewWorkloadCache(w2)
		if got, want := c.CommCost(p), fresh.CommCost(p); got != want {
			t.Fatalf("round %d: rebuilt cache %v != fresh cache %v (determinism)", round, got, want)
		}
	}
}

// TestWorkloadCacheDeterministic: two caches over the same workload are
// bit-identical — aggregation runs in slice order, never map order.
func TestWorkloadCacheDeterministic(t *testing.T) {
	d, w, _ := cacheFixture(t)
	a, b := d.NewWorkloadCache(w), d.NewWorkloadCache(w)
	inA, egA := a.EndpointCosts()
	inB, egB := b.EndpointCosts()
	for v := range inA {
		if inA[v] != inB[v] || egA[v] != egB[v] {
			t.Fatalf("nondeterministic aggregation at vertex %d", v)
		}
	}
}
