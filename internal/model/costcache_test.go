package model

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/topology"
)

// closeRel is the 1-ULP-scale equivalence the aggregated cache promises:
// it reorders float sums, so results match the scalar oracle up to
// reassociation error, which is bounded far below 1e-9 relative at our
// workload sizes.
func closeRel(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

func cacheFixture(t *testing.T) (*PPDC, Workload, *rand.Rand) {
	t.Helper()
	d := MustNew(topology.MustFatTree(4, nil), Options{})
	rng := rand.New(rand.NewSource(42))
	hosts := d.Hosts()
	w := make(Workload, 40)
	for i := range w {
		w[i] = VMPair{
			Src:  hosts[rng.Intn(len(hosts))],
			Dst:  hosts[rng.Intn(len(hosts))],
			Rate: rng.Float64() * 100,
		}
	}
	return d, w, rng
}

func randomPlacement(d *PPDC, n int, rng *rand.Rand) Placement {
	sw := d.Switches()
	perm := rng.Perm(len(sw))
	p := make(Placement, n)
	for j := 0; j < n; j++ {
		p[j] = sw[perm[j]]
	}
	return p
}

func TestWorkloadCacheMatchesScalarOracles(t *testing.T) {
	d, w, rng := cacheFixture(t)
	c := d.NewWorkloadCache(w)

	if got, want := c.TotalRate(), w.TotalRate(); !closeRel(got, want) {
		t.Fatalf("TotalRate %v != %v", got, want)
	}
	in, eg := c.EndpointCosts()
	inS, egS := d.EndpointCosts(w)
	for v := range in {
		if !closeRel(in[v], inS[v]) || !closeRel(eg[v], egS[v]) {
			t.Fatalf("endpoint vectors diverge at %d: (%v,%v) vs (%v,%v)", v, in[v], eg[v], inS[v], egS[v])
		}
	}
	if got, want := c.CommCost(nil), d.CommCost(w, nil); !closeRel(got, want) {
		t.Fatalf("empty-placement C_a %v != %v", got, want)
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		p := randomPlacement(d, n, rng)
		if got, want := c.CommCost(p), d.CommCost(w, p); !closeRel(got, want) {
			t.Fatalf("C_a(%v) = %v, scalar %v", p, got, want)
		}
		m := randomPlacement(d, n, rng)
		mu := rng.Float64() * 1e4
		if got, want := c.TotalCost(p, m, mu), d.TotalCost(w, p, m, mu); !closeRel(got, want) {
			t.Fatalf("C_t = %v, scalar %v", got, want)
		}
	}
}

func TestWorkloadCacheAggregatesDuplicatePairs(t *testing.T) {
	d, _, _ := cacheFixture(t)
	h := d.Hosts()
	w := Workload{
		{Src: h[0], Dst: h[1], Rate: 3},
		{Src: h[0], Dst: h[1], Rate: 4}, // same pair: must merge
		{Src: h[1], Dst: h[0], Rate: 5}, // reversed pair: must stay separate
		{Src: h[2], Dst: h[3], Rate: 0}, // zero rate: must be dropped
	}
	c := d.NewWorkloadCache(w)
	agg := c.Aggregated()
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d pairs, want 2: %v", len(agg), agg)
	}
	if agg[0].Rate != 7 || agg[1].Rate != 5 {
		t.Fatalf("aggregated rates %v/%v, want 7/5", agg[0].Rate, agg[1].Rate)
	}
	if got, want := c.CommCost(nil), d.CommCost(w, nil); !closeRel(got, want) {
		t.Fatalf("direct cost %v != scalar %v", got, want)
	}
}

// TestWorkloadCacheSetWorkload exercises the invalidation hook of the TOM
// dynamic-rates path: rebuilt aggregates must track the new rates (and
// even new endpoints) exactly as a fresh cache would.
func TestWorkloadCacheSetWorkload(t *testing.T) {
	d, w, rng := cacheFixture(t)
	c := d.NewWorkloadCache(w)
	p := randomPlacement(d, 3, rng)

	for round := 0; round < 10; round++ {
		w2 := make(Workload, len(w))
		copy(w2, w)
		for i := range w2 {
			w2[i].Rate = rng.Float64() * 1000
		}
		if round%3 == 2 { // occasionally move endpoints too
			hosts := d.Hosts()
			w2[rng.Intn(len(w2))].Src = hosts[rng.Intn(len(hosts))]
		}
		c.SetWorkload(w2)
		if got, want := c.CommCost(p), d.CommCost(w2, p); !closeRel(got, want) {
			t.Fatalf("round %d: rebuilt C_a %v != scalar %v", round, got, want)
		}
		fresh := d.NewWorkloadCache(w2)
		if got, want := c.CommCost(p), fresh.CommCost(p); got != want {
			t.Fatalf("round %d: rebuilt cache %v != fresh cache %v (determinism)", round, got, want)
		}
	}
}

// TestWorkloadCacheApplyDelta: any sequence of per-pair deltas leaves the
// cache equal (to reassociation tolerance) to a fresh rebuild of the
// resulting workload — the contract the online engine's epoch loop relies
// on. Covers rate raises, drops to zero, and pairs born at zero rate via
// EnsurePair.
func TestWorkloadCacheApplyDelta(t *testing.T) {
	d, w, rng := cacheFixture(t)
	c := d.NewWorkloadCache(w)
	hosts := d.Hosts()
	p := randomPlacement(d, 3, rng)

	for round := 0; round < 200; round++ {
		switch rng.Intn(4) {
		case 0: // raise or lower an existing pair
			i := rng.Intn(len(c.Aggregated()))
			c.ApplyDelta(i, rng.Float64()*200)
		case 1: // drop a pair to zero
			i := rng.Intn(len(c.Aggregated()))
			c.ApplyDelta(i, 0)
		case 2: // touch (possibly create) an arbitrary host pair
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			i := c.EnsurePair(src, dst)
			if got := c.PairIndex(src, dst); got != i {
				t.Fatalf("round %d: PairIndex %d != EnsurePair %d", round, got, i)
			}
			c.ApplyDelta(i, rng.Float64()*50)
		case 3: // no-op delta must not drift the aggregates
			i := rng.Intn(len(c.Aggregated()))
			c.ApplyDelta(i, c.PairRate(i))
		}
	}

	// The aggregated pairs (zero-rate entries included) are the workload
	// the deltas have built; a fresh rebuild of it is the oracle.
	fresh := d.NewWorkloadCache(c.Aggregated())
	if !closeRel(c.TotalRate(), fresh.TotalRate()) {
		t.Fatalf("TotalRate %v != rebuilt %v", c.TotalRate(), fresh.TotalRate())
	}
	if got, want := c.CommCost(nil), fresh.CommCost(nil); !closeRel(got, want) {
		t.Fatalf("direct cost %v != rebuilt %v", got, want)
	}
	in, eg := c.EndpointCosts()
	inF, egF := fresh.EndpointCosts()
	for v := range in {
		if !closeRel(in[v], inF[v]) || !closeRel(eg[v], egF[v]) {
			t.Fatalf("endpoint vectors diverge at %d: (%v,%v) vs (%v,%v)", v, in[v], eg[v], inF[v], egF[v])
		}
	}
	if got, want := c.CommCost(p), fresh.CommCost(p); !closeRel(got, want) {
		t.Fatalf("C_a %v != rebuilt %v", got, want)
	}
}

// TestWorkloadCachePairIndexMissing: unknown pairs report -1 and a rebuild
// restores the compacted index.
func TestWorkloadCachePairIndexMissing(t *testing.T) {
	d, _, _ := cacheFixture(t)
	h := d.Hosts()
	c := d.NewWorkloadCache(Workload{{Src: h[0], Dst: h[1], Rate: 2}})
	if got := c.PairIndex(h[1], h[0]); got != -1 {
		t.Fatalf("reversed pair index %d, want -1", got)
	}
	i := c.EnsurePair(h[1], h[0])
	c.ApplyDelta(i, 3)
	c.ApplyDelta(i, 0)
	c.SetWorkload(c.Aggregated()) // compacts the now-zero pair away
	if got := c.PairIndex(h[1], h[0]); got != -1 {
		t.Fatalf("zero-rate pair survived rebuild at index %d", got)
	}
	if got := c.PairIndex(h[0], h[1]); got != 0 {
		t.Fatalf("live pair index %d, want 0", got)
	}
}

// TestWorkloadCacheDeterministic: two caches over the same workload are
// bit-identical — aggregation runs in slice order, never map order.
func TestWorkloadCacheDeterministic(t *testing.T) {
	d, w, _ := cacheFixture(t)
	a, b := d.NewWorkloadCache(w), d.NewWorkloadCache(w)
	inA, egA := a.EndpointCosts()
	inB, egB := b.EndpointCosts()
	for v := range inA {
		if inA[v] != inB[v] || egA[v] != egB[v] {
			t.Fatalf("nondeterministic aggregation at vertex %d", v)
		}
	}
}
