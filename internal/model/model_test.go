package model

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/topology"
)

func ppdcK2(t *testing.T) *PPDC {
	t.Helper()
	return MustNew(topology.MustFatTree(2, nil), Options{})
}

// fig3 returns the paper's Fig. 3 setup on the k=2 fat tree. Mapping the
// linear PPDC h1-s1-s2-s3-s4-s5-h2 of Fig. 1 onto fat-tree vertices:
// s1=e1.1, s2=a1.1, s3=c1, s4=a2.1, s5=e2.1.
func fig3(t *testing.T) (d *PPDC, h1, h2, s1, s2, s4, s5 int) {
	t.Helper()
	d = ppdcK2(t)
	byLabel := map[string]int{}
	for v, l := range d.Topo.Labels {
		byLabel[l] = v
	}
	return d, byLabel["h1"], byLabel["h2"], byLabel["e1.1"], byLabel["a1.1"], byLabel["a2.1"], byLabel["e2.1"]
}

func TestExample1Fig3InitialCost(t *testing.T) {
	d, h1, h2, s1, s2, _, _ := fig3(t)
	w := Workload{{Src: h1, Dst: h1, Rate: 100}, {Src: h2, Dst: h2, Rate: 1}}
	p := Placement{s1, s2}
	if got := d.CommCost(w, p); got != 410 {
		t.Fatalf("C_a(p) = %v, want 410 (paper Fig. 3(a))", got)
	}
}

func TestExample1Fig3AfterRateSwap(t *testing.T) {
	d, h1, h2, s1, s2, _, _ := fig3(t)
	w := Workload{{Src: h1, Dst: h1, Rate: 1}, {Src: h2, Dst: h2, Rate: 100}}
	p := Placement{s1, s2}
	if got := d.CommCost(w, p); got != 1004 {
		t.Fatalf("C_a(p) after swap = %v, want 1004 (paper Fig. 3(b))", got)
	}
}

func TestExample1Fig3MigrationReduction(t *testing.T) {
	d, h1, h2, s1, s2, s4, s5 := fig3(t)
	w := Workload{{Src: h1, Dst: h1, Rate: 1}, {Src: h2, Dst: h2, Rate: 100}}
	p := Placement{s1, s2}
	m := Placement{s5, s4}
	const mu = 1.0
	if got := d.MigrationCost(p, m, mu); got != 6 {
		t.Fatalf("C_b = %v, want 6 (paper Fig. 3(c))", got)
	}
	if got := d.CommCost(w, m); got != 410 {
		t.Fatalf("C_a(m) = %v, want 410 (paper Fig. 3(d))", got)
	}
	before := d.CommCost(w, p)
	after := d.TotalCost(w, p, m, mu)
	reduction := (before - after) / before
	if math.Abs(reduction-0.586) > 0.001 {
		t.Fatalf("total cost reduction = %.4f, want ≈0.586 (paper: 58.6%%)", reduction)
	}
}

func TestCommCostEmptyPlacement(t *testing.T) {
	d, h1, h2, _, _, _, _ := fig3(t)
	w := Workload{{Src: h1, Dst: h2, Rate: 3}}
	// Without an SFC the flow pays the direct shortest path (6 hops).
	if got := d.CommCost(w, nil); got != 18 {
		t.Fatalf("direct cost = %v, want 18", got)
	}
	if got := d.FlowCost(w[0], nil); got != 18 {
		t.Fatalf("FlowCost = %v, want 18", got)
	}
}

func TestFlowCostSumsToCommCost(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := MustNew(ft, Options{})
	rng := rand.New(rand.NewSource(2))
	w := Workload{}
	for i := 0; i < 10; i++ {
		w = append(w, VMPair{
			Src:  ft.Hosts[rng.Intn(len(ft.Hosts))],
			Dst:  ft.Hosts[rng.Intn(len(ft.Hosts))],
			Rate: rng.Float64() * 100,
		})
	}
	p := Placement{ft.Switches[0], ft.Switches[5], ft.Switches[11]}
	sum := 0.0
	for _, f := range w {
		sum += d.FlowCost(f, p)
	}
	if got := d.CommCost(w, p); math.Abs(got-sum) > 1e-6 {
		t.Fatalf("CommCost %v != Σ FlowCost %v", got, sum)
	}
}

func TestEndpointCostsDecomposition(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := MustNew(ft, Options{})
	rng := rand.New(rand.NewSource(4))
	w := Workload{}
	for i := 0; i < 8; i++ {
		w = append(w, VMPair{
			Src:  ft.Hosts[rng.Intn(len(ft.Hosts))],
			Dst:  ft.Hosts[rng.Intn(len(ft.Hosts))],
			Rate: float64(rng.Intn(1000)),
		})
	}
	in, eg := d.EndpointCosts(w)
	lambda := w.TotalRate()
	for trial := 0; trial < 20; trial++ {
		p := Placement{
			ft.Switches[rng.Intn(len(ft.Switches))],
			ft.Switches[rng.Intn(len(ft.Switches))],
			ft.Switches[rng.Intn(len(ft.Switches))],
		}
		want := d.CommCost(w, p)
		got := lambda*d.ChainCost(p) + in[p[0]] + eg[p[len(p)-1]]
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("decomposition %v != Eq.1 %v for %v", got, want, p)
		}
	}
}

func TestEndpointCostsSkipsZeroRate(t *testing.T) {
	d, h1, h2, _, _, _, _ := fig3(t)
	in0, eg0 := d.EndpointCosts(Workload{{Src: h1, Dst: h2, Rate: 0}})
	for v := range in0 {
		if in0[v] != 0 || eg0[v] != 0 {
			t.Fatal("zero-rate flow contributed to endpoint costs")
		}
	}
}

func TestMigrationCostIdentityIsZero(t *testing.T) {
	d, _, _, s1, s2, _, _ := fig3(t)
	p := Placement{s1, s2}
	if got := d.MigrationCost(p, p, 1e5); got != 0 {
		t.Fatalf("self-migration cost = %v, want 0", got)
	}
}

func TestMigrationCostPanicsOnLengthMismatch(t *testing.T) {
	d, _, _, s1, s2, _, _ := fig3(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MigrationCost(Placement{s1, s2}, Placement{s1}, 1)
}

func TestWorkloadHelpers(t *testing.T) {
	w := Workload{{Rate: 2}, {Rate: 3.5}}
	if w.TotalRate() != 5.5 {
		t.Fatalf("TotalRate = %v", w.TotalRate())
	}
	r := w.Rates()
	if r[0] != 2 || r[1] != 3.5 {
		t.Fatalf("Rates = %v", r)
	}
	w2 := w.WithRates([]float64{7, 8})
	if w2[0].Rate != 7 || w2[1].Rate != 8 || w[0].Rate != 2 {
		t.Fatalf("WithRates mutated original or wrong copy: %v %v", w, w2)
	}
}

func TestWithRatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Workload{{Rate: 1}}.WithRates([]float64{1, 2})
}

func TestWorkloadValidate(t *testing.T) {
	d, h1, h2, s1, _, _, _ := fig3(t)
	good := Workload{{Src: h1, Dst: h2, Rate: 5}}
	if err := good.Validate(d); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	bad := Workload{{Src: s1, Dst: h2, Rate: 5}} // switch as endpoint
	if err := bad.Validate(d); err == nil {
		t.Fatal("switch endpoint accepted")
	}
	neg := Workload{{Src: h1, Dst: h2, Rate: -1}}
	if err := neg.Validate(d); err == nil {
		t.Fatal("negative rate accepted")
	}
	nan := Workload{{Src: h1, Dst: h2, Rate: math.NaN()}}
	if err := nan.Validate(d); err == nil {
		t.Fatal("NaN rate accepted")
	}
}

func TestPlacementValidate(t *testing.T) {
	d, h1, _, s1, s2, _, _ := fig3(t)
	sfc := NewSFC(2)
	if err := (Placement{s1, s2}).Validate(d, sfc); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if err := (Placement{s1}).Validate(d, sfc); err == nil {
		t.Fatal("short placement accepted")
	}
	if err := (Placement{s1, h1}).Validate(d, sfc); err == nil {
		t.Fatal("host placement accepted")
	}
	if err := (Placement{s1, s1}).Validate(d, sfc); err == nil {
		t.Fatal("duplicate switches accepted without colocation")
	}
}

func TestPlacementValidateColocation(t *testing.T) {
	d2 := MustNew(topology.MustFatTree(2, nil), Options{AllowColocation: true})
	s := d2.Topo.Switches[0]
	if err := (Placement{s, s}).Validate(d2, NewSFC(2)); err != nil {
		t.Fatalf("colocation rejected despite option: %v", err)
	}
}

func TestPlacementCloneEqual(t *testing.T) {
	p := Placement{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p.Equal(q) || p[0] == 9 {
		t.Fatal("clone shares storage")
	}
	if p.Equal(Placement{1, 2}) {
		t.Fatal("length mismatch equal")
	}
}

func TestNewSFC(t *testing.T) {
	c := NewSFC(3)
	if c.Len() != 3 || c.Names[0] != "f1" || c.Names[2] != "f3" {
		t.Fatalf("SFC = %+v", c)
	}
}

func TestNewRejectsNilAndInvalid(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	broken := topology.MustFatTree(2, nil)
	broken.Hosts = broken.Hosts[:1] // corrupt partition
	if _, err := New(broken, Options{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestChainCostSingleVNF(t *testing.T) {
	d, _, _, s1, _, _, _ := fig3(t)
	if got := d.ChainCost(Placement{s1}); got != 0 {
		t.Fatalf("chain of one VNF = %v, want 0", got)
	}
}
