package model

import "time"

// CacheObserver receives WorkloadCache invalidation traffic: one
// CacheRebuilt call per SetWorkload (with the rebuilt pair count and
// wall time) and one CacheDelta call per effective ApplyDelta (with the
// absolute rate change). The model package defines only the interface —
// implementations live with the observability layer (engine.Observer
// feeds internal/obs) so the cost model carries no metrics dependency.
// The observer runs synchronously on the mutating goroutine; keep
// implementations to a few atomic operations.
type CacheObserver interface {
	CacheRebuilt(pairs int, elapsed time.Duration)
	CacheDelta(magnitude float64)
}

// WorkloadCache is the aggregated-workload fast path of the cost model.
// The scalar oracles (CommCost, EndpointCosts) re-scan all l flows per
// query; at data-center scale l dwarfs the number of distinct hosts, so
// the cache collapses the workload once:
//
//   - VM pairs are grouped by (source host, dest host) with λ summed, so
//     the no-SFC direct cost is Σ over distinct pairs instead of flows;
//   - per-host λ marginals (by source, by dest) feed the traffic-weighted
//     per-switch ingress/egress vectors
//     ingress[v] = Σ_s λ(s)·c(s,v), egress[v] = Σ_t λ(t)·c(v,t),
//     built in O(H·|V|) instead of EndpointCosts' O(l·|V|).
//
// After the one-time build, CommCost(p) is
// Λ·chain(p) + ingress[p(1)] + egress[p(n)] — O(n) per candidate
// placement with no dependence on l. Solvers evaluating thousands of
// candidates (DP pruning sweeps, annealing, layered DP, frontier scans)
// query the cache; the scalar oracles remain the differential reference
// (equivalence is fuzz-tested to float-reassociation tolerance).
//
// All aggregation runs in first-appearance order of the workload slice,
// so rebuilt caches are deterministic: identical workloads produce
// bit-identical vectors regardless of map iteration order.
//
// The cache snapshots the workload. When rates move — the TOM
// dynamic-rates path mutates λ every simulated hour — call SetWorkload
// with the updated workload to invalidate and rebuild (O(l + H·|V|)), or,
// when only a few host pairs changed, ApplyDelta each changed pair in
// O(|V|) without touching the rest of the aggregates. The online engine
// (internal/engine) uses the delta path for sparse epoch updates and
// falls back to SetWorkload when an epoch touches most pairs.
type WorkloadCache struct {
	d *PPDC
	// pairs is the (src,dst)-aggregated workload; its Rate fields hold the
	// summed λ of all flows sharing that host pair.
	pairs Workload
	// pairIdx maps a (src,dst) host pair to its index in pairs.
	pairIdx map[[2]int]int
	// ingress[v] = Σ_i λ_i c(s_i, v); egress[v] = Σ_i λ_i c(v, t_i),
	// aggregated per distinct source/dest host.
	ingress, egress []float64
	totalRate       float64
	// direct is C_a of the empty placement: Σ λ c(s,t).
	direct float64
	// obs, when set, is notified of rebuilds and deltas; nil (the
	// default) costs one pointer check per mutation.
	obs CacheObserver
}

// SetObserver installs (or, with nil, removes) the cache's invalidation
// observer. Not safe to call concurrently with SetWorkload/ApplyDelta;
// install before sharing the cache.
func (c *WorkloadCache) SetObserver(o CacheObserver) { c.obs = o }

// NewWorkloadCache builds the aggregated cost cache for w.
func (d *PPDC) NewWorkloadCache(w Workload) *WorkloadCache {
	c := &WorkloadCache{d: d}
	c.SetWorkload(w)
	return c
}

// SetWorkload is the invalidation hook: it discards every aggregate and
// rebuilds from w. Call it whenever rates change (e.g. each hour of a
// dynamic-rates simulation); the endpoints may change too — the cache
// makes no assumption that w matches the previous workload's host pairs.
func (c *WorkloadCache) SetWorkload(w Workload) {
	var start time.Time
	if c.obs != nil {
		start = time.Now()
	}
	n := c.d.Topo.Graph.Order()
	// Group flows by (src, dst) host pair, first-appearance order.
	c.pairIdx = make(map[[2]int]int, len(w))
	c.pairs = c.pairs[:0]
	for _, f := range w {
		if f.Rate == 0 {
			continue
		}
		key := [2]int{f.Src, f.Dst}
		if i, ok := c.pairIdx[key]; ok {
			c.pairs[i].Rate += f.Rate
		} else {
			c.pairIdx[key] = len(c.pairs)
			c.pairs = append(c.pairs, f)
		}
	}
	// Per-host λ marginals, first-appearance order.
	type hostRate struct {
		host int
		rate float64
	}
	var srcs, dsts []hostRate
	srcIdx := make(map[int]int)
	dstIdx := make(map[int]int)
	c.totalRate, c.direct = 0, 0
	for _, f := range c.pairs {
		c.totalRate += f.Rate
		c.direct += f.Rate * c.d.APSP.Cost(f.Src, f.Dst)
		if i, ok := srcIdx[f.Src]; ok {
			srcs[i].rate += f.Rate
		} else {
			srcIdx[f.Src] = len(srcs)
			srcs = append(srcs, hostRate{f.Src, f.Rate})
		}
		if i, ok := dstIdx[f.Dst]; ok {
			dsts[i].rate += f.Rate
		} else {
			dstIdx[f.Dst] = len(dsts)
			dsts = append(dsts, hostRate{f.Dst, f.Rate})
		}
	}
	if c.ingress == nil || len(c.ingress) != n {
		c.ingress = make([]float64, n)
		c.egress = make([]float64, n)
	} else {
		for v := range c.ingress {
			c.ingress[v], c.egress[v] = 0, 0
		}
	}
	for _, s := range srcs {
		row := c.d.APSP.Row(s.host)
		for v := 0; v < n; v++ {
			c.ingress[v] += s.rate * row[v]
		}
	}
	for _, t := range dsts {
		// Undirected PPDC: c(v, t) = c(t, v), so one contiguous row serves
		// the egress sweep too.
		row := c.d.APSP.Row(t.host)
		for v := 0; v < n; v++ {
			c.egress[v] += t.rate * row[v]
		}
	}
	if c.obs != nil {
		c.obs.CacheRebuilt(len(c.pairs), time.Since(start))
	}
}

// PairIndex returns the aggregated-pair index of the (src, dst) host pair,
// or -1 when the pair is not in the cache (it had zero rate at the last
// rebuild and has not been added since).
func (c *WorkloadCache) PairIndex(src, dst int) int {
	if i, ok := c.pairIdx[[2]int{src, dst}]; ok {
		return i
	}
	return -1
}

// EnsurePair returns the aggregated-pair index of (src, dst), appending a
// zero-rate pair when absent so a subsequent ApplyDelta can raise it. The
// returned index stays valid until the next SetWorkload, which compacts
// zero-rate pairs away.
func (c *WorkloadCache) EnsurePair(src, dst int) int {
	key := [2]int{src, dst}
	if i, ok := c.pairIdx[key]; ok {
		return i
	}
	i := len(c.pairs)
	c.pairIdx[key] = i
	c.pairs = append(c.pairs, VMPair{Src: src, Dst: dst})
	return i
}

// PairRate returns the aggregated rate of pair pairIdx.
func (c *WorkloadCache) PairRate(pairIdx int) float64 { return c.pairs[pairIdx].Rate }

// ApplyDelta is the incremental half of the invalidation contract: it sets
// the aggregated rate of pair pairIdx to newRate, adjusting totalRate, the
// direct cost, and the two endpoint vectors by the rate difference in
// O(|V|) — one APSP row sweep per endpoint instead of SetWorkload's full
// O(l + H·|V|) rebuild. A no-op when the rate is unchanged.
//
// Deltas accumulate floating-point error one rounding per update, so a
// cache driven by a long delta stream agrees with a fresh rebuild to
// reassociation tolerance (≈1e-9 relative; fuzzed in internal/
// differential), not bit-for-bit. Callers that need the bit-exact
// deterministic form (or that changed most pairs at once, where the delta
// path is slower) should rebuild with SetWorkload.
func (c *WorkloadCache) ApplyDelta(pairIdx int, newRate float64) {
	p := &c.pairs[pairIdx]
	dr := newRate - p.Rate
	if dr == 0 {
		return
	}
	if c.obs != nil {
		mag := dr
		if mag < 0 {
			mag = -mag
		}
		c.obs.CacheDelta(mag)
	}
	p.Rate = newRate
	c.totalRate += dr
	c.direct += dr * c.d.APSP.Cost(p.Src, p.Dst)
	n := len(c.ingress)
	srcRow := c.d.APSP.Row(p.Src)
	for v := 0; v < n; v++ {
		c.ingress[v] += dr * srcRow[v]
	}
	// Undirected PPDC: c(v, t) = c(t, v), same as the SetWorkload sweep.
	dstRow := c.d.APSP.Row(p.Dst)
	for v := 0; v < n; v++ {
		c.egress[v] += dr * dstRow[v]
	}
}

// EndpointCosts returns the aggregated per-vertex ingress/egress vectors.
// The slices are owned by the cache and are invalidated by SetWorkload;
// callers must not mutate or retain them across rebuilds.
func (c *WorkloadCache) EndpointCosts() (ingress, egress []float64) {
	return c.ingress, c.egress
}

// TotalRate returns Λ = Σ λ_i.
func (c *WorkloadCache) TotalRate() float64 { return c.totalRate }

// Aggregated returns the (src,dst)-grouped workload with summed rates.
// Shared storage; do not mutate.
func (c *WorkloadCache) Aggregated() Workload { return c.pairs }

// CommCost returns C_a(p) (Eq. 1) in O(len(p)) — equivalent to the scalar
// PPDC.CommCost up to float reassociation.
func (c *WorkloadCache) CommCost(p Placement) float64 {
	if len(p) == 0 {
		return c.direct
	}
	return c.totalRate*c.d.ChainCost(p) + c.ingress[p[0]] + c.egress[p[len(p)-1]]
}

// TotalCost returns C_t(p, m) = C_b(p, m) + C_a(m) (Eq. 8) using the
// cached C_a.
func (c *WorkloadCache) TotalCost(p, m Placement, mu float64) float64 {
	return c.d.MigrationCost(p, m, mu) + c.CommCost(m)
}
