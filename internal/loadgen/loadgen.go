// Package loadgen drives a vnfoptd control plane over HTTP and measures
// what the sharded design claims: that thousands of scenarios ingest and
// serve reads concurrently, and that one streamed NDJSON bulk request
// moves an order of magnitude more updates per second than the same
// updates sent as individual /rates calls.
//
// The generator is deliberately protocol-level — it speaks the public
// JSON API against any base URL and never imports the daemon — so the
// numbers it reports include the full request path: routing, decoding,
// mailbox handoff, and engine ingest. Four phases run in order:
//
//  1. create    POST /v1/scenarios           × Scenarios
//  2. per-call  POST /v1/scenarios/{id}/rates × PerCallRequests
//  3. bulk      POST /v1/scenarios/{id}/rates:bulk (NDJSON) × BulkRequests
//  4. read      GET  /v1/scenarios/{id}/placement × ReadRequests
//
// When Config.Restart is set, a crash/restart phase runs between bulk
// and read: the generator records every scenario's accepted-update
// counter, invokes the hook (which kills and restarts the daemon),
// waits for the /v1 surface to come back — recovery gates it with 503
// — and re-reads the counters. Updates the daemon acknowledged but
// lost across the restart are reported as LostUpdates; with a WAL in
// `always` mode that number must be zero.
//
// Each phase reports throughput and latency quantiles (p50/p90/p99/max).
// Per-call ingest retries 429 backpressure answers with a short backoff,
// as the API documentation tells clients to; retries are counted so a
// saturated control plane is visible in the report, not hidden by it.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"vnfopt/internal/benchmeta"
	"vnfopt/internal/stats"
)

// Config shapes one load-test run. Zero values pick small but meaningful
// defaults; BaseURL is the only required field.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client overrides the HTTP client; nil builds one with a transport
	// sized for Concurrency keep-alive connections.
	Client *http.Client

	// Scenarios is the number of scenarios to create (default 8). Ids are
	// load-0 … load-{n-1}.
	Scenarios int
	// Concurrency is the worker count per phase (default 16).
	Concurrency int
	// Spec is the scenario spec template; the generator sets "id" per
	// scenario. Nil uses a small fat-tree with Flows generated flows and
	// no migration (the cheapest engine, so the harness measures the
	// control plane, not the solver).
	Spec map[string]any
	// Flows bounds the flow-id space rate updates target (default 40).
	Flows int

	// PerCallRequests is the number of single-call /rates requests
	// (default 256), each carrying PerCallBatch updates (default 1).
	PerCallRequests int
	PerCallBatch    int
	// BulkRequests is the number of NDJSON streams (default 4), each
	// carrying BulkUpdates updates (default 16384).
	BulkRequests int
	BulkUpdates  int
	// ReadRequests is the number of placement snapshot reads (default 256).
	ReadRequests int

	// Restart, when non-nil, enables the crash/restart phase between the
	// bulk and read phases. The hook must stop the daemon (however
	// abruptly it likes) and start a replacement over the same durable
	// state, returning the replacement's base URL ("" to keep the old
	// one). The generator then polls until the /v1 surface answers 200 —
	// while recovery replays the WAL the daemon answers 503 — and
	// verifies no acknowledged update was lost.
	Restart func() (newBaseURL string, err error)
	// RestartTimeout bounds the post-restart recovery wait (default 30s).
	RestartTimeout time.Duration

	// Seed makes the generated update sequence reproducible.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.Scenarios <= 0 {
		c.Scenarios = 8
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Flows <= 0 {
		c.Flows = 40
	}
	if c.Spec == nil {
		c.Spec = map[string]any{
			"topology": "fat-tree",
			"k":        4,
			"flows":    c.Flows,
			"migrator": "nomigration",
		}
	}
	if c.PerCallRequests <= 0 {
		c.PerCallRequests = 256
	}
	if c.PerCallBatch <= 0 {
		c.PerCallBatch = 1
	}
	if c.BulkRequests <= 0 {
		c.BulkRequests = 4
	}
	if c.BulkUpdates <= 0 {
		c.BulkUpdates = 16384
	}
	if c.ReadRequests <= 0 {
		c.ReadRequests = 256
	}
	if c.RestartTimeout <= 0 {
		c.RestartTimeout = 30 * time.Second
	}
}

// Phase is the measurement of one load phase.
type Phase struct {
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	Retries        int     `json:"retries,omitempty"` // 429 backpressure retries
	Updates        int64   `json:"updates,omitempty"` // rate updates delivered
	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	UpdatesPerSec  float64 `json:"updates_per_sec,omitempty"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
	LastError      string  `json:"last_error,omitempty"`
}

// RestartPhase measures the crash/restart phase: how long the daemon
// took to serve /v1 again, and whether any acknowledged update survived
// less than intact.
type RestartPhase struct {
	// Seconds is the whole phase: counter capture, hook, recovery wait,
	// and the post-restart verification reads.
	Seconds float64 `json:"seconds"`
	// RecoverySeconds is the wait from the hook returning until the /v1
	// surface answered 200 — snapshot load plus WAL replay.
	RecoverySeconds float64 `json:"recovery_seconds"`
	// ScenariosOK counts scenarios whose metrics were readable after the
	// restart.
	ScenariosOK int `json:"scenarios_ok"`
	// UpdatesBefore/UpdatesAfter sum the accepted-update counters across
	// scenarios on either side of the restart.
	UpdatesBefore int64 `json:"updates_before"`
	UpdatesAfter  int64 `json:"updates_after"`
	// LostUpdates sums, per scenario, the acknowledged updates missing
	// after recovery. Zero under a WAL in `always` mode; under `interval`
	// the final sync window is legitimately at risk on a hard kill.
	LostUpdates int64  `json:"lost_updates"`
	Error       string `json:"error,omitempty"`
}

// Report is the full result of a Run.
type Report struct {
	// Host pins the machine and toolchain the numbers were recorded on.
	Host        benchmeta.Host `json:"host"`
	Scenarios   int            `json:"scenarios"`
	Concurrency int            `json:"concurrency"`
	Create      Phase          `json:"create"`
	PerCall     Phase          `json:"percall_ingest"`
	Bulk        Phase          `json:"bulk_ingest"`
	// Restart is present only when Config.Restart was set.
	Restart *RestartPhase `json:"restart,omitempty"`
	Read    Phase         `json:"placement_read"`
	// BulkSpeedup is bulk updates/sec over per-call updates/sec — the
	// headline number the bulk API exists for.
	BulkSpeedup float64 `json:"bulk_speedup_x"`
}

// Run executes the four phases against cfg.BaseURL and returns the
// report. An error is returned only for setup failures; request-level
// failures are counted in the phase they occurred in.
func Run(cfg Config) (*Report, error) {
	cfg.setDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 2,
				MaxIdleConnsPerHost: cfg.Concurrency * 2,
				IdleConnTimeout:     time.Minute,
			},
			Timeout: 5 * time.Minute,
		}
	}
	g := &generator{cfg: cfg, client: client}
	rep := &Report{Host: benchmeta.Collect(), Scenarios: cfg.Scenarios, Concurrency: cfg.Concurrency}

	rep.Create = g.runPhase(cfg.Scenarios, g.create)
	rep.PerCall = g.runPhase(cfg.PerCallRequests, g.perCall)
	rep.Bulk = g.runPhase(cfg.BulkRequests, g.bulk)
	if cfg.Restart != nil {
		rep.Restart = g.restart()
	}
	rep.Read = g.runPhase(cfg.ReadRequests, g.read)
	if rep.PerCall.UpdatesPerSec > 0 {
		rep.BulkSpeedup = rep.Bulk.UpdatesPerSec / rep.PerCall.UpdatesPerSec
	}
	return rep, nil
}

type generator struct {
	cfg    Config
	client *http.Client
}

func (g *generator) scenarioID(i int) string {
	return fmt.Sprintf("load-%d", i%g.cfg.Scenarios)
}

// op is one timed request: it reports the number of updates it
// delivered and how many 429 retries it needed.
type opResult struct {
	updates int64
	retries int
	err     error
}

// runPhase fans n ops across the worker pool and aggregates the phase.
func (g *generator) runPhase(n int, op func(rng *rand.Rand, i int) opResult) Phase {
	workers := g.cfg.Concurrency
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		next      int64 // shared work counter, accessed under mu
		mu        sync.Mutex
		wg        sync.WaitGroup
		latencies = make([][]float64, workers)
		results   = make([]opResult, n)
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.cfg.Seed + int64(w)*7919))
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				t0 := time.Now()
				results[i] = op(rng, i)
				latencies[w] = append(latencies[w], time.Since(t0).Seconds()*1000)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	p := Phase{Requests: n, Seconds: elapsed}
	var all []float64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	p.P50Ms = stats.Quantile(all, 0.50)
	p.P90Ms = stats.Quantile(all, 0.90)
	p.P99Ms = stats.Quantile(all, 0.99)
	if len(all) > 0 {
		p.MaxMs = all[len(all)-1]
	}
	for _, r := range results {
		p.Updates += r.updates
		p.Retries += r.retries
		if r.err != nil {
			p.Errors++
			p.LastError = r.err.Error()
		}
	}
	if elapsed > 0 {
		p.RequestsPerSec = float64(n) / elapsed
		p.UpdatesPerSec = float64(p.Updates) / elapsed
	}
	return p
}

// post sends body and drains the response, retrying 429 with a short
// backoff (the documented client behavior for mailbox backpressure).
func (g *generator) post(url, contentType string, body []byte) (retries int, err error) {
	for attempt := 0; ; attempt++ {
		resp, err := g.client.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return retries, err
		}
		status := resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case status < 300:
			return retries, nil
		case status == http.StatusTooManyRequests && attempt < 8:
			retries++
			time.Sleep(time.Duration(1+attempt) * 5 * time.Millisecond)
		default:
			return retries, fmt.Errorf("POST %s: status %d", url, status)
		}
	}
}

func (g *generator) create(rng *rand.Rand, i int) opResult {
	spec := make(map[string]any, len(g.cfg.Spec)+1)
	for k, v := range g.cfg.Spec {
		spec[k] = v
	}
	spec["id"] = g.scenarioID(i)
	body, err := json.Marshal(spec)
	if err != nil {
		return opResult{err: err}
	}
	retries, err := g.post(g.cfg.BaseURL+"/v1/scenarios", "application/json", body)
	return opResult{retries: retries, err: err}
}

// appendUpdates writes n random updates as a JSON array into buf.
func (g *generator) appendUpdates(buf *bytes.Buffer, rng *rand.Rand, n int) {
	buf.WriteByte('[')
	for j := 0; j < n; j++ {
		if j > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(buf, `{"flow":%d,"rate":%.3f}`, rng.Intn(g.cfg.Flows), 0.1+rng.Float64()*9.9)
	}
	buf.WriteByte(']')
}

func (g *generator) perCall(rng *rand.Rand, i int) opResult {
	var buf bytes.Buffer
	buf.WriteString(`{"updates":`)
	g.appendUpdates(&buf, rng, g.cfg.PerCallBatch)
	buf.WriteByte('}')
	url := g.cfg.BaseURL + "/v1/scenarios/" + g.scenarioID(i) + "/rates"
	retries, err := g.post(url, "application/json", buf.Bytes())
	res := opResult{retries: retries, err: err}
	if err == nil {
		res.updates = int64(g.cfg.PerCallBatch)
	}
	return res
}

// bulkLineChunk is the array-chunk size per NDJSON line; well under the
// server's per-line bound at any realistic update encoding.
const bulkLineChunk = 1000

func (g *generator) bulk(rng *rand.Rand, i int) opResult {
	var buf bytes.Buffer
	remaining := g.cfg.BulkUpdates
	for remaining > 0 {
		n := bulkLineChunk
		if n > remaining {
			n = remaining
		}
		g.appendUpdates(&buf, rng, n)
		buf.WriteByte('\n')
		remaining -= n
	}
	url := g.cfg.BaseURL + "/v1/scenarios/" + g.scenarioID(i) + "/rates:bulk"
	retries, err := g.post(url, "application/x-ndjson", buf.Bytes())
	res := opResult{retries: retries, err: err}
	if err == nil {
		res.updates = int64(g.cfg.BulkUpdates)
	}
	return res
}

func (g *generator) read(rng *rand.Rand, i int) opResult {
	url := g.cfg.BaseURL + "/v1/scenarios/" + g.scenarioID(rng.Intn(g.cfg.Scenarios)) + "/placement"
	resp, err := g.client.Get(url)
	if err != nil {
		return opResult{err: err}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return opResult{err: fmt.Errorf("GET %s: status %d", url, resp.StatusCode)}
	}
	return opResult{}
}

// acceptedUpdates reads every scenario's accepted-update counter from
// GET /v1/scenarios/{id}/metrics. Unreadable scenarios are skipped (and
// the last failure returned) so a partial answer still lets the caller
// count survivors.
func (g *generator) acceptedUpdates() (map[string]int64, error) {
	out := make(map[string]int64, g.cfg.Scenarios)
	var lastErr error
	for i := 0; i < g.cfg.Scenarios; i++ {
		id := g.scenarioID(i)
		url := g.cfg.BaseURL + "/v1/scenarios/" + id + "/metrics"
		resp, err := g.client.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		var body struct {
			Metrics struct {
				UpdatesAccepted int64 `json:"updates_accepted"`
			} `json:"metrics"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode != http.StatusOK:
			lastErr = fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		case err != nil:
			lastErr = fmt.Errorf("GET %s: %w", url, err)
		default:
			out[id] = body.Metrics.UpdatesAccepted
		}
	}
	return out, lastErr
}

// restart runs the crash/restart phase: capture counters, crash and
// restart the daemon through the hook, wait out recovery, and account
// for every update the old daemon had acknowledged.
func (g *generator) restart() *RestartPhase {
	ph := &RestartPhase{}
	start := time.Now()
	defer func() { ph.Seconds = time.Since(start).Seconds() }()

	before, err := g.acceptedUpdates()
	if err != nil {
		ph.Error = fmt.Sprintf("pre-restart counters: %v", err)
		return ph
	}
	for _, n := range before {
		ph.UpdatesBefore += n
	}

	newURL, err := g.cfg.Restart()
	if err != nil {
		ph.Error = fmt.Sprintf("restart hook: %v", err)
		return ph
	}
	if newURL != "" {
		g.cfg.BaseURL = newURL
	}

	// Wait for the /v1 surface: while the replacement replays its WAL it
	// answers 503, so a 200 here means recovery is complete.
	recoverStart := time.Now()
	deadline := recoverStart.Add(g.cfg.RestartTimeout)
	for {
		resp, err := g.client.Get(g.cfg.BaseURL + "/v1/scenarios")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			ph.Error = fmt.Sprintf("daemon not serving /v1 within %s of restart", g.cfg.RestartTimeout)
			return ph
		}
		time.Sleep(10 * time.Millisecond)
	}
	ph.RecoverySeconds = time.Since(recoverStart).Seconds()

	after, err := g.acceptedUpdates()
	if err != nil {
		ph.Error = fmt.Sprintf("post-restart counters: %v", err)
	}
	ph.ScenariosOK = len(after)
	for id, n := range after {
		ph.UpdatesAfter += n
		if lost := before[id] - n; lost > 0 {
			ph.LostUpdates += lost
		}
	}
	// A scenario that vanished entirely lost everything it had accepted.
	for id, n := range before {
		if _, ok := after[id]; !ok {
			ph.LostUpdates += n
		}
	}
	return ph
}
