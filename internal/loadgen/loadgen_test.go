package loadgen

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// stubDaemon fakes just enough of the vnfoptd API surface for the
// generator: it records what arrived so the test can assert the
// generator sent what its config promised.
type stubDaemon struct {
	mu          sync.Mutex
	created     []string
	perCallHits int
	bulkHits    int
	bulkUpdates int
	readHits    atomic.Int64
	// reject429 makes the next n /rates calls answer 429, exercising the
	// generator's retry path.
	reject429 atomic.Int64
}

func (d *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		var spec map[string]any
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		d.mu.Lock()
		d.created = append(d.created, spec["id"].(string))
		d.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /v1/scenarios/{id}/rates", func(w http.ResponseWriter, r *http.Request) {
		if d.reject429.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		d.mu.Lock()
		d.perCallHits++
		d.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/scenarios/{id}/rates:bulk", func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			http.Error(w, "want ndjson, got "+ct, 400)
			return
		}
		n := 0
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var chunk []json.RawMessage
			if err := json.Unmarshal([]byte(line), &chunk); err != nil {
				http.Error(w, err.Error(), 400)
				return
			}
			n += len(chunk)
		}
		d.mu.Lock()
		d.bulkHits++
		d.bulkUpdates += n
		d.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/scenarios/{id}/placement", func(w http.ResponseWriter, r *http.Request) {
		d.readHits.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func TestRunAgainstStub(t *testing.T) {
	stub := &stubDaemon{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	cfg := Config{
		BaseURL:         ts.URL,
		Scenarios:       4,
		Concurrency:     4,
		Flows:           10,
		PerCallRequests: 20,
		PerCallBatch:    2,
		BulkRequests:    3,
		BulkUpdates:     2500, // forces multiple NDJSON lines per stream
		ReadRequests:    15,
		Seed:            42,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Create.Errors+rep.PerCall.Errors+rep.Bulk.Errors+rep.Read.Errors != 0 {
		t.Fatalf("errors in report: %+v", rep)
	}
	if len(stub.created) != 4 {
		t.Fatalf("created %d scenarios, want 4", len(stub.created))
	}
	if stub.perCallHits != 20 || rep.PerCall.Updates != 40 {
		t.Fatalf("per-call: %d hits, %d updates", stub.perCallHits, rep.PerCall.Updates)
	}
	if stub.bulkHits != 3 || stub.bulkUpdates != 3*2500 {
		t.Fatalf("bulk: %d hits, %d updates", stub.bulkHits, stub.bulkUpdates)
	}
	if rep.Bulk.Updates != 3*2500 {
		t.Fatalf("bulk report updates = %d", rep.Bulk.Updates)
	}
	if got := stub.readHits.Load(); got != 15 {
		t.Fatalf("reads = %d", got)
	}
	for _, p := range []Phase{rep.Create, rep.PerCall, rep.Bulk, rep.Read} {
		if p.RequestsPerSec <= 0 || p.P99Ms < p.P50Ms || p.MaxMs < p.P99Ms {
			t.Fatalf("implausible phase: %+v", p)
		}
	}
}

func TestRunRetries429(t *testing.T) {
	stub := &stubDaemon{}
	stub.reject429.Store(3)
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	rep, err := Run(Config{
		BaseURL:         ts.URL,
		Scenarios:       1,
		Concurrency:     1,
		PerCallRequests: 5,
		BulkRequests:    1,
		BulkUpdates:     10,
		ReadRequests:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerCall.Errors != 0 {
		t.Fatalf("backpressure should be retried, not errored: %+v", rep.PerCall)
	}
	if rep.PerCall.Retries < 3 {
		t.Fatalf("retries = %d, want >= 3", rep.PerCall.Retries)
	}
	if rep.PerCall.Updates != 5 {
		t.Fatalf("updates = %d, want 5", rep.PerCall.Updates)
	}
}

func TestRunRequiresBaseURL(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("expected error for missing BaseURL")
	}
}
