// Package replication implements the paper's stated future work: "We will
// investigate how VNF replication can alleviate dynamic VM traffic in
// PPDCs and study to which extent VNF replication could be beneficial ...
// when compared to VNF migration."
//
// Instead of migrating one SFC instance, the operator deploys R replicas
// of the whole chain; each VM flow traverses whichever replica chain is
// cheapest for it. Replica chains are placed with a Lloyd-style
// alternation: assign flows to their cheapest chain, re-place each chain
// traffic-optimally for its assigned flows (the paper's Algorithm 3), and
// repeat until assignments stabilize.
package replication

import (
	"fmt"
	"math"

	"vnfopt/internal/model"
	"vnfopt/internal/placement"
)

// Deployment is a set of replica SFC chains plus the flow assignment.
type Deployment struct {
	// Chains holds one placement per replica.
	Chains []model.Placement
	// Assign maps each flow index to its chain.
	Assign []int
	// Cost is the total communication cost under the assignment.
	Cost float64
}

// Options tunes replica placement.
type Options struct {
	// Rounds caps the assign/re-place alternations (0 = default 4).
	Rounds int
	// Placer places each replica chain (nil = the paper's Algorithm 3).
	Placer placement.Solver
}

// Place deploys r replica chains for the workload. r must be ≥ 1 and the
// PPDC must have at least r·n switches (each chain uses distinct switches;
// distinct chains may overlap, as replicas are independent instances).
func Place(d *model.PPDC, w model.Workload, sfc model.SFC, r int, opts Options) (*Deployment, error) {
	if r < 1 {
		return nil, fmt.Errorf("replication: need at least one replica, got %d", r)
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("replication: empty workload")
	}
	placer := opts.Placer
	if placer == nil {
		placer = placement.DP{}
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 4
	}

	// Initial partition: spread flows round-robin by source host so the
	// chains start spatially diverse.
	dep := &Deployment{
		Chains: make([]model.Placement, r),
		Assign: make([]int, len(w)),
	}
	for i, f := range w {
		dep.Assign[i] = (f.Src + i) % r
	}

	for round := 0; round < rounds; round++ {
		// Re-place each chain for its current flows.
		for c := 0; c < r; c++ {
			var sub model.Workload
			for i, f := range w {
				if dep.Assign[i] == c {
					sub = append(sub, f)
				}
			}
			if len(sub) == 0 {
				// Orphan chain: give it the full workload's optimum so
				// it stays a useful fallback.
				sub = w
			}
			p, _, err := placer.Place(d, sub, sfc)
			if err != nil {
				return nil, fmt.Errorf("replication: chain %d: %w", c, err)
			}
			dep.Chains[c] = p
		}
		// Re-assign each flow to its cheapest chain.
		changed := false
		for i, f := range w {
			bestC, bestCost := dep.Assign[i], math.Inf(1)
			for c := 0; c < r; c++ {
				if cost := d.FlowCost(f, dep.Chains[c]); cost < bestCost {
					bestC, bestCost = c, cost
				}
			}
			if bestC != dep.Assign[i] {
				dep.Assign[i] = bestC
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	dep.Cost = CommCost(d, w, dep.Chains, dep.Assign)
	return dep, nil
}

// CommCost evaluates the total communication cost of a workload routed
// through its assigned replica chains.
func CommCost(d *model.PPDC, w model.Workload, chains []model.Placement, assign []int) float64 {
	total := 0.0
	for i, f := range w {
		total += d.FlowCost(f, chains[assign[i]])
	}
	return total
}

// Reassign re-routes flows to their cheapest chain under new rates without
// moving any VNF — the replication answer to dynamic traffic (no migration
// cost is ever paid; the price is r−1 extra chain deployments).
func Reassign(d *model.PPDC, w model.Workload, chains []model.Placement) ([]int, float64) {
	assign := make([]int, len(w))
	for i, f := range w {
		best, bestCost := 0, math.Inf(1)
		for c := range chains {
			if cost := d.FlowCost(f, chains[c]); cost < bestCost {
				best, bestCost = c, cost
			}
		}
		assign[i] = best
	}
	return assign, CommCost(d, w, chains, assign)
}
