package replication

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func setup(t *testing.T, l int, seed int64) (*model.PPDC, model.Workload, model.SFC) {
	t.Helper()
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(seed))
	w := workload.MustPairsClustered(ft, l, 4, workload.DefaultIntraRack, rng)
	return d, w, model.NewSFC(3)
}

func TestPlaceSingleReplicaMatchesDP(t *testing.T) {
	d, w, sfc := setup(t, 20, 1)
	dep, err := Place(d, w, sfc, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, dpCost, err := (placement.DP{}).Place(d, w, sfc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dep.Cost-dpCost) > 1e-6 {
		t.Fatalf("one replica cost %v != DP cost %v", dep.Cost, dpCost)
	}
	if len(dep.Chains) != 1 || len(dep.Assign) != len(w) {
		t.Fatalf("deployment shape: %d chains, %d assigns", len(dep.Chains), len(dep.Assign))
	}
}

func TestMoreReplicasNeverHurt(t *testing.T) {
	d, w, sfc := setup(t, 40, 2)
	prev := -1.0
	for r := 1; r <= 3; r++ {
		dep, err := Place(d, w, sfc, r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Validate every chain and assignment.
		for c, chain := range dep.Chains {
			if err := chain.Validate(d, sfc); err != nil {
				t.Fatalf("r=%d chain %d: %v", r, c, err)
			}
		}
		for i, a := range dep.Assign {
			if a < 0 || a >= r {
				t.Fatalf("r=%d flow %d assigned to %d", r, i, a)
			}
		}
		if prev >= 0 && dep.Cost > prev*1.0001 {
			// Lloyd alternation is heuristic, but each flow always has
			// chain 0's option available, so cost should not regress
			// meaningfully with more replicas.
			t.Fatalf("r=%d cost %v worse than r-1 cost %v", r, dep.Cost, prev)
		}
		prev = dep.Cost
	}
}

func TestCommCostMatchesManualSum(t *testing.T) {
	d, w, sfc := setup(t, 15, 3)
	dep, err := Place(d, w, sfc, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, f := range w {
		sum += d.FlowCost(f, dep.Chains[dep.Assign[i]])
	}
	if got := CommCost(d, w, dep.Chains, dep.Assign); got != sum {
		t.Fatalf("CommCost %v != manual %v", got, sum)
	}
	if dep.Cost != sum {
		t.Fatalf("deployment cost %v != manual %v", dep.Cost, sum)
	}
}

func TestReassignAdaptsToNewRates(t *testing.T) {
	d, w, sfc := setup(t, 30, 4)
	dep, err := Place(d, w, sfc, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	w2 := w.WithRates(workload.Rates(len(w), rng))
	assign2, cost2 := Reassign(d, w2, dep.Chains)
	// Reassignment is per-flow optimal given the chains: no other
	// assignment can beat it.
	for i := range w2 {
		for c := range dep.Chains {
			if d.FlowCost(w2[i], dep.Chains[c]) < d.FlowCost(w2[i], dep.Chains[assign2[i]])-1e-9 {
				t.Fatalf("flow %d not on its cheapest chain", i)
			}
		}
	}
	stale := CommCost(d, w2, dep.Chains, dep.Assign)
	if cost2 > stale+1e-9 {
		t.Fatalf("reassignment %v worse than stale assignment %v", cost2, stale)
	}
}

func TestPlaceErrors(t *testing.T) {
	d, w, sfc := setup(t, 10, 6)
	if _, err := Place(d, w, sfc, 0, Options{}); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := Place(d, nil, sfc, 1, Options{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}
