// Package parallel provides the small worker-pool primitive the
// experiment harness uses to spread independent runs across cores. Every
// repetition of an experiment is seeded independently (experiments.Config
// derives one RNG per run), so fan-out changes wall-clock time only —
// results stay bit-identical to the sequential order.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers ≤ 0 = GOMAXPROCS; workers > n is clamped to n, so passing a
// huge worker count never spawns idle goroutines). It returns the first
// error by index order, running every index regardless (no short-circuit:
// experiment runs are cheap relative to the value of complete error
// reporting). A panicking task is recovered and surfaced as an error
// naming the index; it does not take down the pool.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = fmt.Errorf("parallel: task %d panicked: %v", i, r)
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapChunked splits [0, n) into at most `workers` contiguous, disjoint
// ranges of near-equal size and runs fn(lo, hi) once per range. It is the
// fan-out shape for row-range kernels (e.g. the parallel APSP build, where
// each chunk owns a contiguous block of Dijkstra sources and its own
// scratch buffers): one chunk per worker amortizes per-task scratch
// allocation over n/workers items instead of paying it per item.
//
// Error and panic semantics match ForEach: every chunk runs, and the error
// of the lowest-indexed chunk wins. workers ≤ 0 means GOMAXPROCS;
// workers > n is clamped to n (each chunk then holds a single index).
func MapChunked(n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Spread the remainder over the first n%workers chunks so sizes differ
	// by at most one.
	size, rem := n/workers, n%workers
	bounds := make([]int, workers+1)
	for c := 0; c < workers; c++ {
		bounds[c+1] = bounds[c] + size
		if c < rem {
			bounds[c+1]++
		}
	}
	return ForEach(workers, workers, func(c int) error {
		return fn(bounds[c], bounds[c+1])
	})
}

// Map runs fn(i) for i in [0, n) concurrently and collects the results in
// index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
