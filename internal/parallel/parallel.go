// Package parallel provides the small worker-pool primitive the
// experiment harness uses to spread independent runs across cores. Every
// repetition of an experiment is seeded independently (experiments.Config
// derives one RNG per run), so fan-out changes wall-clock time only —
// results stay bit-identical to the sequential order.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers ≤ 0 = GOMAXPROCS). It returns the first error by index order,
// running every index regardless (no short-circuit: experiment runs are
// cheap relative to the value of complete error reporting).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = fmt.Errorf("parallel: task %d panicked: %v", i, r)
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for i in [0, n) concurrently and collects the results in
// index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
