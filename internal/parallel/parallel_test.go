package parallel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	var hits [100]int32
	if err := ForEach(100, 8, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachZeroAndDefaults(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := int32(0)
	if err := ForEach(3, 0, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran %d", ran)
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	e3, e7 := errors.New("three"), errors.New("seven")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

func TestForEachWorkersExceedN(t *testing.T) {
	// workers > n must clamp to n: every index still runs exactly once and
	// the call terminates (no goroutine waits on a never-filled channel).
	var hits [3]int32
	if err := ForEach(3, 64, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachPanicNamesIndexAndLosesToEarlierError(t *testing.T) {
	// A recovered panic surfaces as an error naming the index...
	err := ForEach(5, 8, func(i int) error {
		if i == 4 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 4") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic error %v does not name task 4", err)
	}
	// ...but first-error-by-index order still holds when an earlier index
	// returned a plain error.
	e1 := errors.New("one")
	err = ForEach(5, 8, func(i int) error {
		switch i {
		case 1:
			return e1
		case 3:
			panic("later")
		}
		return nil
	})
	if err != e1 {
		t.Fatalf("got %v, want the lower-index plain error", err)
	}
}

func TestMapChunkedCoversDisjointRanges(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{100, 7}, {100, 100}, {100, 1}, {3, 64}, {1, 4}, {0, 4}, {5, 0},
	} {
		var hits []int32
		if tc.n > 0 {
			hits = make([]int32, tc.n)
		}
		var chunks int32
		if err := MapChunked(tc.n, tc.workers, func(lo, hi int) error {
			atomic.AddInt32(&chunks, 1)
			if lo >= hi {
				t.Errorf("n=%d workers=%d: empty chunk [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times", tc.n, tc.workers, i, h)
			}
		}
		if want := effectiveChunks(tc.n, tc.workers); int(chunks) != want {
			t.Fatalf("n=%d workers=%d: %d chunks, want %d", tc.n, tc.workers, chunks, want)
		}
	}
}

func effectiveChunks(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

func TestMapChunkedPanicAndErrorOrder(t *testing.T) {
	err := MapChunked(10, 5, func(lo, hi int) error {
		if lo >= 4 && 4 < hi {
			panic("chunk boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "chunk boom") {
		t.Fatalf("chunk panic not surfaced: %v", err)
	}
	eA, eB := errors.New("a"), errors.New("b")
	err = MapChunked(10, 5, func(lo, hi int) error {
		switch lo {
		case 2:
			return eA
		case 8:
			return eB
		}
		return nil
	})
	if err != eA {
		t.Fatalf("got %v, want the lowest-range error", err)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	err := ForEach(5, 2, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}

func TestMapOrders(t *testing.T) {
	out, err := Map(20, 5, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(3, 2, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("x")
		}
		return 0, nil
	}); err == nil {
		t.Fatal("error swallowed")
	}
}
