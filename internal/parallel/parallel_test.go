package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	var hits [100]int32
	if err := ForEach(100, 8, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachZeroAndDefaults(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := int32(0)
	if err := ForEach(3, 0, func(int) error { atomic.AddInt32(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran %d", ran)
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	e3, e7 := errors.New("three"), errors.New("seven")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	err := ForEach(5, 2, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}

func TestMapOrders(t *testing.T) {
	out, err := Map(20, 5, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(3, 2, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("x")
		}
		return 0, nil
	}); err == nil {
		t.Fatal("error swallowed")
	}
}
