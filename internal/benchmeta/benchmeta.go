// Package benchmeta stamps benchmark reports with the host environment
// they were recorded on. Benchmark JSON under results/ is only
// comparable across commits when the recording host is pinned next to
// the numbers; every results/BENCH_*.json writer embeds a Host.
package benchmeta

import "runtime"

// Host describes the machine and toolchain a benchmark ran on.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU is the logical core count; GOMAXPROCS the scheduler's
	// parallelism at collection time (they differ under cgroup limits or
	// an explicit override — exactly the cases that skew comparisons).
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Collect captures the current process's host metadata.
func Collect() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
