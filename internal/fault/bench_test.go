package fault

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// Benchmarks for the fault-time repair path: the cost of one topology
// event (inject or heal) with the incremental dirty-source APSP update
// versus the full AllPairs rebuild. results/BENCH_apsp.json records the
// numbers under "fault_events".

var benchModels sync.Map // name -> *model.PPDC

func benchModel(b *testing.B, name string) *model.PPDC {
	if d, ok := benchModels.Load(name); ok {
		return d.(*model.PPDC)
	}
	var topo *topology.Topology
	var err error
	switch name {
	case "fattree_k8":
		topo, err = topology.FatTree(8, nil)
	case "fattree_k16":
		topo, err = topology.FatTree(16, nil)
	case "fattree_k32":
		topo, err = topology.FatTree(32, nil)
	case "jellyfish_5k":
		topo, err = topology.Jellyfish(5000, 6, 0, nil, rand.New(rand.NewSource(5)))
	case "jellyfish_10k":
		topo, err = topology.Jellyfish(10000, 6, 0, nil, rand.New(rand.NewSource(10)))
	default:
		b.Fatalf("unknown bench model %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	d := model.MustNew(topo, model.Options{})
	benchModels.Store(name, d)
	return d
}

// midRackToR returns the top-of-rack switch of the middle rack — a
// representative single element. The deterministic low-vertex-ID heap
// tie-break concentrates shortest-path trees on low-ID core and
// aggregation links, so the first switch and its first link are
// near-worst-case elements (their removal dirties almost every source)
// while a mid-fabric ToR and its highest-ID uplink sit near the median
// of the dirty-count distribution.
func midRackToR(d *model.PPDC) int {
	rack := d.Topo.Racks[len(d.Topo.Racks)/2]
	return d.Topo.Graph.Neighbors(rack[0])[0].To
}

// eventFaults builds the fault set of one named event on d. ok=false
// means the event does not apply to this topology.
func eventFaults(d *model.PPDC, event string) (FaultSet, bool) {
	midSwitch := func() int {
		if len(d.Topo.Racks) > 0 {
			return midRackToR(d)
		}
		return d.Topo.Switches[len(d.Topo.Switches)/2]
	}
	switchLink := func(s int, last bool) (FaultSet, bool) {
		pick := -1
		for _, e := range d.Topo.Graph.Neighbors(s) {
			if d.Topo.Kind[e.To] == topology.Switch {
				pick = e.To
				if !last {
					break
				}
			}
		}
		if pick < 0 {
			return FaultSet{}, false
		}
		return NewFaultSet(Fault{Kind: Link, U: s, V: pick}), true
	}
	switch event {
	case "link":
		// A representative link: the mid-fabric switch's highest-ID
		// switch link (a ToR uplink on fat trees).
		return switchLink(midSwitch(), true)
	case "link_worst":
		// The most tree-popular link: the first switch's first link.
		return switchLink(d.Topo.Switches[0], false)
	case "switch":
		return NewFaultSet(Fault{Kind: Switch, U: midSwitch()}), true
	case "switch_worst":
		return NewFaultSet(Fault{Kind: Switch, U: d.Topo.Switches[0]}), true
	case "rack":
		if len(d.Topo.Racks) == 0 {
			return FaultSet{}, false
		}
		var fs FaultSet
		rack := d.Topo.Racks[len(d.Topo.Racks)/2]
		for _, h := range rack {
			fs = fs.Add(Fault{Kind: Host, U: h})
		}
		// The rack's top-of-rack switch fails with it.
		return fs.Add(Fault{Kind: Switch, U: midRackToR(d)}), true
	}
	return FaultSet{}, false
}

var benchEvents = []string{"link", "switch", "rack", "link_worst", "switch_worst"}

// BenchmarkFaultEvent measures one inject transition from the pristine
// fabric: the incremental path (ApplyDelta from the pristine view,
// recomputing only dirty Dijkstra sources) against the full Rebuild.
func BenchmarkFaultEvent(b *testing.B) {
	topos := []string{"fattree_k8", "fattree_k16"}
	if !testing.Short() {
		topos = append(topos, "jellyfish_5k")
	}
	for _, name := range topos {
		b.Run(name, func(b *testing.B) {
			d := benchModel(b, name)
			for _, event := range benchEvents {
				fs, ok := eventFaults(d, event)
				if !ok {
					continue
				}
				pristine, err := Apply(d, FaultSet{})
				if err != nil {
					b.Fatal(err)
				}
				b.Run(event+"/incremental", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := ApplyDelta(d, pristine, fs); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run(event+"/rebuild", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						Rebuild(d, fs)
					}
				})
			}
		})
	}
}

// BenchmarkFaultHeal measures the restore direction: from a two-fault
// degraded view, heal one link (the other fault keeps the view off the
// empty-set shortcut, so the delta path really runs).
func BenchmarkFaultHeal(b *testing.B) {
	for _, name := range []string{"fattree_k8", "fattree_k16"} {
		b.Run(name, func(b *testing.B) {
			d := benchModel(b, name)
			linkSet, ok := eventFaults(d, "link")
			if !ok {
				b.Fatal("no link event")
			}
			link := linkSet.Faults()[0]
			other := Fault{Kind: Switch, U: d.Topo.Switches[len(d.Topo.Switches)-1]}
			both := NewFaultSet(link, other)
			after := NewFaultSet(other)
			degraded, err := Apply(d, both)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("incremental", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ApplyDelta(d, degraded, after); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("rebuild", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Rebuild(d, after)
				}
			})
		})
	}
}

// BenchmarkRebuildSingleLink is the micro-bench for the downed-link set
// representation on the hot inject path (sorted slice vs the former
// per-event map): dominated by the APSP build, but the filter predicate
// runs once per pristine edge endpoint, so the constant shows at k=8.
func BenchmarkRebuildSingleLink(b *testing.B) {
	d := benchModel(b, "fattree_k8")
	fs, _ := eventFaults(d, "link")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rebuild(d, fs)
	}
}

// TestFaultEventIncrementalMatchesRebuild is the deterministic assert
// behind `make bench-apsp-delta`: for every benchmark event on the k=8
// fat tree, the incremental view must equal the full rebuild bit-for-bit
// (matrix, dead mask, component labels) — the cheap CI-grade pin of the
// property the differential fuzz explores at random.
func TestFaultEventIncrementalMatchesRebuild(t *testing.T) {
	topo := topology.MustFatTree(8, nil)
	d := model.MustNew(topo, model.Options{})
	pristine, err := Apply(d, FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	for _, event := range benchEvents {
		fs, ok := eventFaults(d, event)
		if !ok {
			t.Fatalf("event %q does not apply to fat tree", event)
		}
		inc, err := ApplyDelta(d, pristine, fs)
		if err != nil {
			t.Fatalf("%s: %v", event, err)
		}
		viewEqual(t, d, inc, Rebuild(d, fs))
		// And the heal back down to one remaining fault.
		if fs.Len() > 1 {
			healed := fs.Remove(fs.Faults()[0])
			incHeal, err := ApplyDelta(d, inc, healed)
			if err != nil {
				t.Fatalf("%s heal: %v", event, err)
			}
			viewEqual(t, d, incHeal, Rebuild(d, healed))
		}
	}
	// The pristine shortcut itself must match the model's own matrix.
	n := d.Topo.Graph.Order()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if math.Float64bits(pristine.PPDC().APSP.Cost(u, v)) != math.Float64bits(d.APSP.Cost(u, v)) {
				t.Fatalf("pristine shortcut diverged at (%d,%d)", u, v)
			}
		}
	}
}
