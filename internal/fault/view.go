package fault

import (
	"fmt"
	"math"
	"sort"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// View is an immutable degraded snapshot of a pristine PPDC under one
// FaultSet: the filtered graph with its rebuilt APSP oracle, the live
// host/switch membership, and the connected-component labelling used
// for reachability and partition detection.
type View struct {
	pristine *model.PPDC
	faults   FaultSet
	degraded *model.PPDC // == pristine when faults is empty
	dead     []bool      // per-vertex: switch/host explicitly failed
	comp     []int       // per-vertex component label; -1 for dead vertices
	ncomp    int
}

// Apply builds the degraded view of d under fs. An empty fault set
// short-circuits to the pristine model itself (no rebuild); Rebuild is
// the always-reconstruct variant the round-trip fuzz uses to prove the
// reconstruction path is bit-identical.
func Apply(d *model.PPDC, fs FaultSet) (*View, error) {
	if err := fs.Validate(d); err != nil {
		return nil, err
	}
	if fs.Empty() {
		v := &View{pristine: d, faults: fs, degraded: d}
		v.label(d.Topo.Graph)
		return v, nil
	}
	return Rebuild(d, fs), nil
}

// linkSet is a small sorted set of undirected links, each stored with
// endpoints ordered u ≤ v. Fault sets are tiny (typically 1–3 elements),
// so a sorted slice with a linear probe beats a map on the hot inject
// path: no hashing, no per-event map allocation, and the filter predicate
// runs once per pristine edge endpoint.
type linkSet [][2]int

// has reports whether the (unordered) link {u, w} is in the set.
func (ls linkSet) has(u, w int) bool {
	if u > w {
		u, w = w, u
	}
	for _, l := range ls {
		if l[0] == u && l[1] == w {
			return true
		}
		if l[0] > u {
			break
		}
	}
	return false
}

// degradeEntry records one soft-failed link (u ≤ v) with its weight
// factor; degradeSet shares linkSet's sorted-slice rationale.
type degradeEntry struct {
	u, v   int
	factor float64
}

type degradeSet []degradeEntry

// factor returns the weight multiplier of the (unordered) link {u, w};
// 1 when the link is not degraded.
func (ds degradeSet) factor(u, w int) float64 {
	if u > w {
		u, w = w, u
	}
	for _, d := range ds {
		if d.u == u && d.v == w {
			return d.factor
		}
		if d.u > u {
			break
		}
	}
	return 1
}

// filter expands the fault set into its per-vertex dead mask, downed
// link set, and degraded link factors for an n-vertex fabric.
func (fs FaultSet) filter(n int) (dead []bool, down linkSet, degr degradeSet) {
	dead = make([]bool, n)
	for f := range fs.set {
		switch f.Kind {
		case Switch, Host:
			dead[f.U] = true
		case Link:
			down = append(down, [2]int{f.U, f.V})
		case Degrade:
			degr = append(degr, degradeEntry{u: f.U, v: f.V, factor: f.Factor})
		}
	}
	sort.Slice(down, func(i, j int) bool {
		if down[i][0] != down[j][0] {
			return down[i][0] < down[j][0]
		}
		return down[i][1] < down[j][1]
	})
	sort.Slice(degr, func(i, j int) bool {
		if degr[i].u != degr[j].u {
			return degr[i].u < degr[j].u
		}
		return degr[i].v < degr[j].v
	})
	return dead, down, degr
}

// keep reports whether the pristine edge {u, w} survives the fault set
// expanded into (dead, down).
func keepEdge(dead []bool, down linkSet, u, w int) bool {
	if dead != nil && (dead[u] || dead[w]) {
		return false
	}
	return !down.has(u, w)
}

// effWeight returns the cost a surviving pristine edge {u, w} of weight
// wt carries under the degrade factors. Rebuild's CloneMapped and
// RebuildFrom's delta records both evaluate exactly this expression, so
// the incremental path's restored/reweighted weights are bit-identical
// to the full rebuild's. A factor of 1 (no degrade) returns wt itself —
// no float operation that could perturb the pristine fast path.
func effWeight(degr degradeSet, u, w int, wt float64) float64 {
	if f := degr.factor(u, w); f != 1 {
		return wt * f
	}
	return wt
}

// degradedClone builds the filtered, re-weighted graph of a fault set
// expanded into (dead, down, degr), preserving pristine adjacency order.
func degradedClone(pg *graph.Graph, dead []bool, down linkSet, degr degradeSet) *graph.Graph {
	if len(degr) == 0 {
		return pg.CloneFiltered(func(u, w int, _ float64) bool {
			return keepEdge(dead, down, u, w)
		})
	}
	return pg.CloneMapped(func(u, w int, wt float64) (float64, bool) {
		if !keepEdge(dead, down, u, w) {
			return 0, false
		}
		return effWeight(degr, u, w, wt), true
	})
}

// buildView assembles the degraded view's topology and labelling around
// an already-filtered graph; apsp supplies the view's cost oracle.
func buildView(v *View, d *model.PPDC, g *graph.Graph, apsp *graph.APSP) *View {
	t := &topology.Topology{
		Name:   d.Topo.Name + "+faults",
		Graph:  g,
		Kind:   d.Topo.Kind,
		Labels: d.Topo.Labels,
	}
	for _, h := range d.Topo.Hosts {
		if !v.dead[h] {
			t.Hosts = append(t.Hosts, h)
		}
	}
	for _, s := range d.Topo.Switches {
		if !v.dead[s] {
			t.Switches = append(t.Switches, s)
		}
	}
	for _, rack := range d.Topo.Racks {
		live := make([]int, 0, len(rack))
		for _, h := range rack {
			if !v.dead[h] {
				live = append(live, h)
			}
		}
		t.Racks = append(t.Racks, live)
	}
	// The degraded topology deliberately fails Topology.Validate (it may
	// be disconnected and the membership lists exclude dead vertices), so
	// the PPDC is assembled directly rather than through model.New.
	v.degraded = &model.PPDC{Topo: t, APSP: apsp, Opts: d.Opts}
	v.label(g)
	return v
}

// Rebuild constructs the degraded view without the empty-set shortcut.
// The fault set must already be valid for d. Reconstruction is
// deterministic: the degraded graph preserves the pristine adjacency
// order of every surviving edge, and the APSP build is the bit-stable
// parallel kernel, so Rebuild(d, empty) reproduces d's APSP matrix
// bit-for-bit.
func Rebuild(d *model.PPDC, fs FaultSet) *View {
	n := d.Topo.Graph.Order()
	v := &View{pristine: d, faults: fs}
	var down linkSet
	var degr degradeSet
	v.dead, down, degr = fs.filter(n)
	g := degradedClone(d.Topo.Graph, v.dead, down, degr)
	return buildView(v, d, g, graph.AllPairs(g))
}

// RebuildFrom constructs the degraded view of fs by delta-updating the
// APSP oracle of a previous view of the same pristine model: only the
// Dijkstra sources whose cached shortest-path trees are invalidated by
// the fault transition are re-run (graph.APSP.ApplyDeltas); every other
// row is carried over verbatim. The result is bit-identical to
// Rebuild(prev.Pristine(), fs) — the differential fuzz target
// FuzzIncrementalAPSP pins this over random inject/heal sequences — at a
// fraction of the cost for the typical 1–3 element transition.
func RebuildFrom(prev *View, fs FaultSet) *View {
	d := prev.pristine
	pg := d.Topo.Graph
	n := pg.Order()
	v := &View{pristine: d, faults: fs}
	var down linkSet
	var degr degradeSet
	v.dead, down, degr = fs.filter(n)
	oldDead, oldDown, oldDegr := prev.faults.filter(n)
	g := degradedClone(pg, v.dead, down, degr)

	// Three-way edge delta between the two degraded graphs, from one pass
	// over the pristine edge set (u < v side only; parallel links repeat,
	// which the dirty tests tolerate). Every weight a record carries is
	// the *effective* cost under the respective fault set — the same
	// expression degradedClone evaluates — so a restored or re-weighted
	// edge patches in bit-identical to the full rebuild, and an edge that
	// is degraded and removed in one transition flows through the removal
	// rule, composing the two classifiers in any order.
	var removed, restored, reweighted []graph.EdgeRecord
	for u := 0; u < n; u++ {
		for _, e := range pg.Neighbors(u) {
			if u > e.To {
				continue
			}
			ko := keepEdge(oldDead, oldDown, u, e.To)
			kn := keepEdge(v.dead, down, u, e.To)
			switch {
			case ko && !kn:
				removed = append(removed, graph.EdgeRecord{U: u, V: e.To, Weight: effWeight(oldDegr, u, e.To, e.Weight)})
			case !ko && kn:
				restored = append(restored, graph.EdgeRecord{U: u, V: e.To, Weight: effWeight(degr, u, e.To, e.Weight)})
			case ko && kn:
				ow := effWeight(oldDegr, u, e.To, e.Weight)
				nw := effWeight(degr, u, e.To, e.Weight)
				if ow != nw {
					reweighted = append(reweighted, graph.EdgeRecord{U: u, V: e.To, Weight: nw})
				}
			}
		}
	}
	apsp, _ := prev.degraded.APSP.ApplyEdgeDeltas(g, removed, restored, reweighted, 0)
	return buildView(v, d, g, apsp)
}

// ApplyDelta is Apply with an incremental APSP update: when prev is a
// view of the same pristine model, the new view's oracle reuses every
// shortest-path tree the fault transition leaves intact instead of
// re-running all |V| Dijkstra sources. Output is bit-identical to Apply.
// A nil prev (or a prev of a different model) delta-updates from the
// pristine matrix itself; an empty fault set short-circuits to the
// pristine model.
func ApplyDelta(d *model.PPDC, prev *View, fs FaultSet) (*View, error) {
	if err := fs.Validate(d); err != nil {
		return nil, err
	}
	if fs.Empty() {
		v := &View{pristine: d, faults: fs, degraded: d}
		v.label(d.Topo.Graph)
		return v, nil
	}
	if prev == nil || prev.pristine != d {
		prev = &View{pristine: d, faults: FaultSet{}, degraded: d}
	}
	return RebuildFrom(prev, fs), nil
}

// Diff reports the first divergence between two views of the same
// order: the APSP cost matrix compared bitwise, the dead mask, and the
// component labelling. It returns nil when the views are identical.
// The chaos harness runs it at every fault transition as a standing
// differential check of the incremental ApplyDelta path against the
// full rebuild.
func Diff(a, b *View) error {
	n := a.degraded.Topo.Graph.Order()
	if bn := b.degraded.Topo.Graph.Order(); bn != n {
		return fmt.Errorf("fault: view order %d != %d", n, bn)
	}
	if a.Components() != b.Components() {
		return fmt.Errorf("fault: component count %d != %d", a.Components(), b.Components())
	}
	for u := 0; u < n; u++ {
		if a.Dead(u) != b.Dead(u) {
			return fmt.Errorf("fault: dead[%d]: %v != %v", u, a.Dead(u), b.Dead(u))
		}
		if a.Component(u) != b.Component(u) {
			return fmt.Errorf("fault: comp[%d]: %d != %d", u, a.Component(u), b.Component(u))
		}
		ra, rb := a.degraded.APSP.Row(u), b.degraded.APSP.Row(u)
		for v := range ra {
			if math.Float64bits(ra[v]) != math.Float64bits(rb[v]) {
				return fmt.Errorf("fault: cost[%d][%d]: %v != %v (bitwise)", u, v, ra[v], rb[v])
			}
		}
	}
	return nil
}

// label computes connected-component labels over the live vertices.
func (v *View) label(g *graph.Graph) {
	n := g.Order()
	v.comp = make([]int, n)
	for i := range v.comp {
		v.comp[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if v.comp[s] != -1 || (v.dead != nil && v.dead[s]) {
			continue
		}
		id := v.ncomp
		v.ncomp++
		stack = append(stack[:0], s)
		v.comp[s] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Neighbors(u) {
				if v.comp[e.To] == -1 {
					v.comp[e.To] = id
					stack = append(stack, e.To)
				}
			}
		}
	}
}

// Pristine returns the unfaulted model the view derives from.
func (v *View) Pristine() *model.PPDC { return v.pristine }

// PPDC returns the degraded model: the filtered graph, the live
// host/switch lists, and the rebuilt APSP. With no active faults it is
// the pristine model itself.
func (v *View) PPDC() *model.PPDC { return v.degraded }

// Faults returns the active fault set.
func (v *View) Faults() FaultSet { return v.faults }

// Degraded reports whether any fault is active.
func (v *View) Degraded() bool { return !v.faults.Empty() }

// Dead reports whether vertex u was explicitly failed (switch/host
// fault). Vertices isolated by link faults are alive but unreachable.
func (v *View) Dead(u int) bool { return v.dead != nil && v.dead[u] }

// Component returns the connected-component label of u (−1 for dead
// vertices). Two live vertices can reach each other iff their labels
// match.
func (v *View) Component(u int) int { return v.comp[u] }

// Components returns the number of live connected components.
func (v *View) Components() int { return v.ncomp }

// Reachable reports whether two live vertices can still reach each
// other in the degraded fabric.
func (v *View) Reachable(u, w int) bool {
	return v.comp[u] != -1 && v.comp[u] == v.comp[w]
}

// UnservedReason explains why a flow is excluded from service.
type UnservedReason string

const (
	// ReasonDeadEndpoint: the flow's source or destination host failed.
	ReasonDeadEndpoint UnservedReason = "dead_endpoint"
	// ReasonPartitioned: the endpoints are alive but in different
	// connected components.
	ReasonPartitioned UnservedReason = "partitioned"
	// ReasonOutsideRegion: the endpoints can reach each other but not the
	// service region hosting the SFC.
	ReasonOutsideRegion UnservedReason = "outside_region"
)

// UnservedFlow is one excluded flow with its reason — the explicit
// report that replaces an Inf-poisoned cost.
type UnservedFlow struct {
	Flow   int            `json:"flow"`
	Reason UnservedReason `json:"reason"`
}

// ServicePlan is the outcome of restricting a workload to what a
// degraded fabric can serve: the serving model (switch candidates
// limited to the service region), the served workload (excluded flows
// removed, so no cost ever touches an unreachable pair), a per-flow
// servable mask, and the report of exclusions.
type ServicePlan struct {
	// View is the degraded view the plan was computed from.
	View *View
	// PPDC is the serving model: the degraded fabric with Topo.Switches
	// restricted to the service region. Placement validation against it
	// rejects dead and out-of-region switches.
	PPDC *model.PPDC
	// Region is the component label of the service region (-1 when the
	// fabric has no live switch at all).
	Region int
	// Served is the workload restricted to servable flows, in the
	// original flow order. ServedIndex[i] is the original flow index of
	// Served[i].
	Served      model.Workload
	ServedIndex []int
	// Servable[i] reports whether flow i of the input workload is served.
	Servable []bool
	// Unserved lists the excluded flows with reasons, ascending by flow.
	Unserved []UnservedFlow
}

// PlanService chooses the service region of the degraded fabric and
// splits w into served and unserved flows.
//
// A degraded fabric may be partitioned; a single SFC lives in exactly
// one connected component, so flows outside that component cannot
// traverse it without paying an infinite cost. The plan picks the
// region greedily by traffic: the component (among those containing at
// least one live switch) whose internal flows carry the most total
// rate, breaking ties by live host count and then by lowest component
// label. Every flow with a dead endpoint, with endpoints in different
// components, or with endpoints outside the chosen region is excluded
// and reported, never Inf-costed.
//
// The choice is made from the rates in w at planning time and stays
// fixed for the life of the plan; replan after topology events, not
// rate churn.
func (v *View) PlanService(w model.Workload) *ServicePlan {
	d := v.degraded
	plan := &ServicePlan{View: v, Region: -1, Servable: make([]bool, len(w))}

	// Components eligible to host the SFC: at least one live switch.
	hasSwitch := make(map[int]bool)
	for _, s := range d.Topo.Switches {
		hasSwitch[v.comp[s]] = true
	}
	rate := make(map[int]float64) // eligible component -> intra rate
	hosts := make(map[int]int)    // component -> live host count
	for _, h := range d.Topo.Hosts {
		hosts[v.comp[h]]++
	}
	for _, f := range w {
		if v.Dead(f.Src) || v.Dead(f.Dst) {
			continue
		}
		c := v.comp[f.Src]
		if c == v.comp[f.Dst] && hasSwitch[c] {
			rate[c] += f.Rate
		}
	}
	best := -1
	for c := 0; c < v.ncomp; c++ {
		if !hasSwitch[c] {
			continue
		}
		if best == -1 || rate[c] > rate[best] ||
			(rate[c] == rate[best] && hosts[c] > hosts[best]) {
			best = c
		}
	}
	plan.Region = best

	// Serving model: degraded fabric, switches restricted to the region.
	if best == -1 {
		plan.PPDC = d
	} else if v.ncomp == 1 {
		plan.PPDC = d
	} else {
		t := *d.Topo
		t.Switches = nil
		for _, s := range d.Topo.Switches {
			if v.comp[s] == best {
				t.Switches = append(t.Switches, s)
			}
		}
		plan.PPDC = &model.PPDC{Topo: &t, APSP: d.APSP, Opts: d.Opts}
	}

	for i, f := range w {
		switch {
		case v.Dead(f.Src) || v.Dead(f.Dst):
			plan.Unserved = append(plan.Unserved, UnservedFlow{Flow: i, Reason: ReasonDeadEndpoint})
		case v.comp[f.Src] != v.comp[f.Dst]:
			plan.Unserved = append(plan.Unserved, UnservedFlow{Flow: i, Reason: ReasonPartitioned})
		case best == -1 || v.comp[f.Src] != best:
			plan.Unserved = append(plan.Unserved, UnservedFlow{Flow: i, Reason: ReasonOutsideRegion})
		default:
			plan.Servable[i] = true
			plan.ServedIndex = append(plan.ServedIndex, i)
			plan.Served = append(plan.Served, f)
		}
	}
	return plan
}

// Feasible reports whether the serving model can host an SFC of length n
// under the model's per-switch capacity.
func (p *ServicePlan) Feasible(n int) error {
	if p.Region == -1 {
		return fmt.Errorf("fault: no live switch in any component")
	}
	d := p.PPDC
	c := d.SwitchCap()
	if c > 0 && n > c*len(d.Topo.Switches) {
		return fmt.Errorf("fault: %d VNFs exceed %d live switches × capacity %d in the service region",
			n, len(d.Topo.Switches), c)
	}
	return nil
}

// CheckCosts verifies no served flow can see an infinite cost: every
// served endpoint must reach every switch of the service region. It is
// an internal-consistency probe used by the chaos harness and property
// tests, not a hot-path call.
func (p *ServicePlan) CheckCosts() error {
	d := p.PPDC
	for _, f := range p.Served {
		for _, s := range d.Topo.Switches {
			if math.IsInf(d.APSP.Cost(f.Src, s), 1) || math.IsInf(d.APSP.Cost(s, f.Dst), 1) {
				return fmt.Errorf("fault: served flow (%d,%d) cannot reach region switch %d", f.Src, f.Dst, s)
			}
		}
	}
	return nil
}
