package fault

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// allFaults enumerates every single fault the fabric admits, in
// deterministic order.
func allFaults(d *model.PPDC) []Fault {
	var out []Fault
	for _, s := range d.Topo.Switches {
		out = append(out, Fault{Kind: Switch, U: s})
	}
	for _, h := range d.Topo.Hosts {
		out = append(out, Fault{Kind: Host, U: h})
	}
	g := d.Topo.Graph
	for u := 0; u < g.Order(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				out = append(out, Fault{Kind: Link, U: u, V: e.To})
			}
		}
	}
	return out
}

// apspEqual compares two APSP oracles bit-for-bit over all pairs.
func apspEqual(t *testing.T, d *model.PPDC, a, b *View) {
	t.Helper()
	n := d.Topo.Graph.Order()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			x := a.PPDC().APSP.Cost(u, v)
			y := b.PPDC().APSP.Cost(u, v)
			if math.Float64bits(x) != math.Float64bits(y) {
				t.Fatalf("APSP[%d][%d]: %v (%#x) != %v (%#x)",
					u, v, x, math.Float64bits(x), y, math.Float64bits(y))
			}
		}
	}
}

// FuzzFaultHealRoundTrip drives a random inject/heal sequence and checks
// the reconstruction invariants:
//
//   - the view of the surviving fault set is identical whether built by
//     Apply or by the always-reconstruct Rebuild path;
//   - healing everything reproduces the pristine APSP bit-for-bit
//     (Rebuild over an empty set vs the model's own matrix);
//   - reachability and cost agree: a live pair has a finite distance
//     exactly when it is in one component.
func FuzzFaultHealRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 4, 6, 3})
	f.Add([]byte{1, 1, 2, 2, 9, 9, 40, 41, 200, 201})
	topo := topology.MustFatTree(4, nil)
	d := model.MustNew(topo, model.Options{})
	cand := allFaults(d)

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		fs := FaultSet{}
		for _, b := range ops {
			if b&1 == 0 {
				fs = fs.Add(cand[int(b>>1)%len(cand)])
			} else if fs.Len() > 0 {
				active := fs.Faults()
				fs = fs.Remove(active[int(b>>1)%len(active)])
			}
		}

		v, err := Apply(d, fs)
		if err != nil {
			t.Fatalf("fault set built from candidates must validate: %v", err)
		}
		apspEqual(t, d, v, Rebuild(d, fs))

		// Reachability ⇔ finite cost over every pair of live vertices.
		n := d.Topo.Graph.Order()
		for u := 0; u < n; u++ {
			for w := u + 1; w < n; w++ {
				if v.Dead(u) || v.Dead(w) {
					continue
				}
				finite := !math.IsInf(v.PPDC().APSP.Cost(u, w), 1)
				if finite != v.Reachable(u, w) {
					t.Fatalf("pair (%d,%d): finite=%v Reachable=%v", u, w, finite, v.Reachable(u, w))
				}
			}
		}

		// Heal everything: the reconstruction path reproduces the pristine
		// matrix bit-for-bit, with one connected component and no dead
		// vertices.
		healed := Rebuild(d, FaultSet{})
		pristine, err := Apply(d, FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		apspEqual(t, d, healed, pristine)
		if healed.Components() != 1 {
			t.Fatalf("healed fabric has %d components", healed.Components())
		}
		for u := 0; u < n; u++ {
			if healed.Dead(u) {
				t.Fatalf("healed fabric reports vertex %d dead", u)
			}
		}
	})
}

// TestPlanServicePartitionProperties is the partition-detection property
// test: across seeded random fault sets, every unserved flow's reason
// must be independently verifiable, and every served flow must reach
// every switch of the service region at finite cost.
func TestPlanServicePartitionProperties(t *testing.T) {
	topo := topology.MustFatTree(4, nil)
	d := model.MustNew(topo, model.Options{})
	cand := allFaults(d)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := FaultSet{}
		for k := rng.Intn(6); k > 0; k-- {
			fs = fs.Add(cand[rng.Intn(len(cand))])
		}
		v, err := Apply(d, fs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w := make(model.Workload, 0, 16)
		hosts := topo.Hosts
		for k := 0; k < 16; k++ {
			w = append(w, model.VMPair{
				Src:  hosts[rng.Intn(len(hosts))],
				Dst:  hosts[rng.Intn(len(hosts))],
				Rate: 1 + rng.Float64()*9,
			})
		}
		plan := v.PlanService(w)

		unserved := make(map[int]UnservedReason, len(plan.Unserved))
		for _, u := range plan.Unserved {
			unserved[u.Flow] = u.Reason
		}
		for i, fl := range w {
			reason, excluded := unserved[i]
			if excluded == plan.Servable[i] {
				t.Fatalf("seed %d flow %d: servable mask and unserved report disagree", seed, i)
			}
			switch {
			case v.Dead(fl.Src) || v.Dead(fl.Dst):
				if reason != ReasonDeadEndpoint {
					t.Fatalf("seed %d flow %d: want dead_endpoint, got %q", seed, i, reason)
				}
			case v.Component(fl.Src) != v.Component(fl.Dst):
				if reason != ReasonPartitioned {
					t.Fatalf("seed %d flow %d: want partitioned, got %q", seed, i, reason)
				}
			case plan.Region == -1 || v.Component(fl.Src) != plan.Region:
				if reason != ReasonOutsideRegion {
					t.Fatalf("seed %d flow %d: want outside_region, got %q", seed, i, reason)
				}
			default:
				if excluded {
					t.Fatalf("seed %d flow %d: servable flow excluded as %q", seed, i, reason)
				}
			}
		}
		// Served flows never see an infinite cost to any region switch.
		if err := plan.CheckCosts(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The served workload mirrors the mask, in order.
		if len(plan.Served) != len(plan.ServedIndex) {
			t.Fatalf("seed %d: served/index length mismatch", seed)
		}
		for k, idx := range plan.ServedIndex {
			if !plan.Servable[idx] || plan.Served[k] != w[idx] {
				t.Fatalf("seed %d: served[%d] does not match flow %d", seed, k, idx)
			}
		}
	}
}
