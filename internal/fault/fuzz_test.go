package fault

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// allFaults enumerates every single fault the fabric admits, in
// deterministic order.
func allFaults(d *model.PPDC) []Fault {
	var out []Fault
	for _, s := range d.Topo.Switches {
		out = append(out, Fault{Kind: Switch, U: s})
	}
	for _, h := range d.Topo.Hosts {
		out = append(out, Fault{Kind: Host, U: h})
	}
	g := d.Topo.Graph
	for u := 0; u < g.Order(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				out = append(out, Fault{Kind: Link, U: u, V: e.To})
			}
		}
	}
	return out
}

// apspEqual compares two APSP oracles bit-for-bit over all pairs: dist
// matrices by float bits and prev matrices entry-for-entry, so a delta
// path that finds the right costs along different trees still fails.
func apspEqual(t *testing.T, d *model.PPDC, a, b *View) {
	t.Helper()
	n := d.Topo.Graph.Order()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			x := a.PPDC().APSP.Cost(u, v)
			y := b.PPDC().APSP.Cost(u, v)
			if math.Float64bits(x) != math.Float64bits(y) {
				t.Fatalf("APSP[%d][%d]: %v (%#x) != %v (%#x)",
					u, v, x, math.Float64bits(x), y, math.Float64bits(y))
			}
			if pa, pb := a.PPDC().APSP.Pred(u, v), b.PPDC().APSP.Pred(u, v); pa != pb {
				t.Fatalf("prev[%d][%d]: %d != %d", u, v, pa, pb)
			}
		}
	}
}

// FuzzFaultHealRoundTrip drives a random inject/heal sequence and checks
// the reconstruction invariants:
//
//   - the view of the surviving fault set is identical whether built by
//     Apply or by the always-reconstruct Rebuild path;
//   - healing everything reproduces the pristine APSP bit-for-bit
//     (Rebuild over an empty set vs the model's own matrix);
//   - reachability and cost agree: a live pair has a finite distance
//     exactly when it is in one component.
func FuzzFaultHealRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 4, 6, 3})
	f.Add([]byte{1, 1, 2, 2, 9, 9, 40, 41, 200, 201})
	topo := topology.MustFatTree(4, nil)
	d := model.MustNew(topo, model.Options{})
	cand := allFaults(d)

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		fs := FaultSet{}
		for _, b := range ops {
			if b&1 == 0 {
				fs = fs.Add(cand[int(b>>1)%len(cand)])
			} else if fs.Len() > 0 {
				active := fs.Faults()
				fs = fs.Remove(active[int(b>>1)%len(active)])
			}
		}

		v, err := Apply(d, fs)
		if err != nil {
			t.Fatalf("fault set built from candidates must validate: %v", err)
		}
		apspEqual(t, d, v, Rebuild(d, fs))

		// Reachability ⇔ finite cost over every pair of live vertices.
		n := d.Topo.Graph.Order()
		for u := 0; u < n; u++ {
			for w := u + 1; w < n; w++ {
				if v.Dead(u) || v.Dead(w) {
					continue
				}
				finite := !math.IsInf(v.PPDC().APSP.Cost(u, w), 1)
				if finite != v.Reachable(u, w) {
					t.Fatalf("pair (%d,%d): finite=%v Reachable=%v", u, w, finite, v.Reachable(u, w))
				}
			}
		}

		// Heal everything: the reconstruction path reproduces the pristine
		// matrix bit-for-bit, with one connected component and no dead
		// vertices.
		healed := Rebuild(d, FaultSet{})
		pristine, err := Apply(d, FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		apspEqual(t, d, healed, pristine)
		if healed.Components() != 1 {
			t.Fatalf("healed fabric has %d components", healed.Components())
		}
		for u := 0; u < n; u++ {
			if healed.Dead(u) {
				t.Fatalf("healed fabric reports vertex %d dead", u)
			}
		}
	})
}

// viewEqual compares two views of the same fault set completely: APSP
// matrix bit-for-bit, dead masks, and component labelling.
func viewEqual(t *testing.T, d *model.PPDC, a, b *View) {
	t.Helper()
	apspEqual(t, d, a, b)
	n := d.Topo.Graph.Order()
	if a.Components() != b.Components() {
		t.Fatalf("components: %d != %d", a.Components(), b.Components())
	}
	for u := 0; u < n; u++ {
		if a.Dead(u) != b.Dead(u) {
			t.Fatalf("dead[%d]: %v != %v", u, a.Dead(u), b.Dead(u))
		}
		if a.Component(u) != b.Component(u) {
			t.Fatalf("comp[%d]: %d != %d", u, a.Component(u), b.Component(u))
		}
	}
}

// FuzzIncrementalAPSP is the differential fuzz for the incremental APSP
// layer: a random inject/heal sequence is applied twice — once through
// the delta path (each view built from the previous view via ApplyDelta,
// so dirty-source recompute chains across events) and once through the
// full Rebuild — and every intermediate view must match bit-for-bit:
// same dist and prev matrices, same dead mask, same component labels.
func FuzzIncrementalAPSP(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 4, 6, 3})
	f.Add([]byte{8, 8, 1, 3, 5, 7})
	f.Add([]byte{1, 1, 2, 2, 9, 9, 40, 41, 200, 201})
	f.Add([]byte{0, 2, 4, 6, 8, 10, 1, 3, 5, 7, 9, 11})
	topo := topology.MustFatTree(4, nil)
	d := model.MustNew(topo, model.Options{})
	cand := allFaults(d)

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		fs := FaultSet{}
		prev, err := ApplyDelta(d, nil, fs)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range ops {
			if b&1 == 0 {
				fs = fs.Add(cand[int(b>>1)%len(cand)])
			} else if fs.Len() > 0 {
				active := fs.Faults()
				fs = fs.Remove(active[int(b>>1)%len(active)])
			}
			inc, err := ApplyDelta(d, prev, fs)
			if err != nil {
				t.Fatalf("fault set built from candidates must validate: %v", err)
			}
			viewEqual(t, d, inc, Rebuild(d, fs))
			prev = inc
		}
		// Drain the surviving faults one at a time: every heal keeps the
		// incremental chain pinned to the rebuild, and the empty tail is
		// the pristine matrix again.
		for fs.Len() > 0 {
			fs = fs.Remove(fs.Faults()[0])
			inc, err := ApplyDelta(d, prev, fs)
			if err != nil {
				t.Fatal(err)
			}
			viewEqual(t, d, inc, Rebuild(d, fs))
			prev = inc
		}
		apspEqual(t, d, prev, Rebuild(d, FaultSet{}))
	})
}

// permute calls fn with every permutation of faults.
func permute(faults []Fault, fn func([]Fault)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(faults) {
			fn(faults)
			return
		}
		for i := k; i < len(faults); i++ {
			faults[k], faults[i] = faults[i], faults[k]
			rec(k + 1)
			faults[k], faults[i] = faults[i], faults[k]
		}
	}
	rec(0)
}

// TestHealOrderPermutationRelabelling splits a linear fabric into three
// pieces and heals the faults in every possible order, checking after
// each heal — along the incremental ApplyDelta chain — that a healed
// vertex rejoins the surviving component exactly as a full Rebuild says
// it should: identical component labels, dead masks, APSP matrices, and
// reachability across the re-merged cut.
func TestHealOrderPermutationRelabelling(t *testing.T) {
	topo, err := topology.Linear(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustNew(topo, model.Options{})
	// Vertices: host 0, switches 1..6, host 7. Killing switches 2 and 5
	// plus link {3,4} yields components {0,1}, {3}, {4}, {6,7} with two
	// dead vertices; each heal order re-merges them along a different
	// sequence of splits.
	faults := []Fault{
		{Kind: Switch, U: 2},
		{Kind: Switch, U: 5},
		{Kind: Link, U: 3, V: 4},
	}
	full := NewFaultSet(faults...)
	base, err := Apply(d, full)
	if err != nil {
		t.Fatal(err)
	}
	if base.Components() < 3 {
		t.Fatalf("fault set should split the chain, got %d components", base.Components())
	}

	permute(faults, func(order []Fault) {
		fs := full
		prev := base
		for _, f := range order {
			fs = fs.Remove(f)
			inc, err := ApplyDelta(d, prev, fs)
			if err != nil {
				t.Fatalf("heal %s: %v", f, err)
			}
			viewEqual(t, d, inc, Rebuild(d, fs))
			// A healed switch must be alive and share a component with at
			// least one live neighbor in the filtered fabric.
			if f.Kind != Link {
				if inc.Dead(f.U) {
					t.Fatalf("healed vertex %d still dead", f.U)
				}
				joined := false
				for _, e := range inc.PPDC().Topo.Graph.Neighbors(f.U) {
					if inc.Reachable(f.U, e.To) {
						joined = true
					}
				}
				if !joined && inc.PPDC().Topo.Graph.Degree(f.U) > 0 {
					t.Fatalf("healed vertex %d rejoined no component", f.U)
				}
			}
			prev = inc
		}
		if prev.Components() != 1 || prev.Degraded() {
			t.Fatalf("full heal left %d components (degraded=%v)", prev.Components(), prev.Degraded())
		}
	})
}

// TestPlanServicePartitionProperties is the partition-detection property
// test: across seeded random fault sets, every unserved flow's reason
// must be independently verifiable, and every served flow must reach
// every switch of the service region at finite cost.
func TestPlanServicePartitionProperties(t *testing.T) {
	topo := topology.MustFatTree(4, nil)
	d := model.MustNew(topo, model.Options{})
	cand := allFaults(d)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := FaultSet{}
		for k := rng.Intn(6); k > 0; k-- {
			fs = fs.Add(cand[rng.Intn(len(cand))])
		}
		v, err := Apply(d, fs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w := make(model.Workload, 0, 16)
		hosts := topo.Hosts
		for k := 0; k < 16; k++ {
			w = append(w, model.VMPair{
				Src:  hosts[rng.Intn(len(hosts))],
				Dst:  hosts[rng.Intn(len(hosts))],
				Rate: 1 + rng.Float64()*9,
			})
		}
		plan := v.PlanService(w)

		unserved := make(map[int]UnservedReason, len(plan.Unserved))
		for _, u := range plan.Unserved {
			unserved[u.Flow] = u.Reason
		}
		for i, fl := range w {
			reason, excluded := unserved[i]
			if excluded == plan.Servable[i] {
				t.Fatalf("seed %d flow %d: servable mask and unserved report disagree", seed, i)
			}
			switch {
			case v.Dead(fl.Src) || v.Dead(fl.Dst):
				if reason != ReasonDeadEndpoint {
					t.Fatalf("seed %d flow %d: want dead_endpoint, got %q", seed, i, reason)
				}
			case v.Component(fl.Src) != v.Component(fl.Dst):
				if reason != ReasonPartitioned {
					t.Fatalf("seed %d flow %d: want partitioned, got %q", seed, i, reason)
				}
			case plan.Region == -1 || v.Component(fl.Src) != plan.Region:
				if reason != ReasonOutsideRegion {
					t.Fatalf("seed %d flow %d: want outside_region, got %q", seed, i, reason)
				}
			default:
				if excluded {
					t.Fatalf("seed %d flow %d: servable flow excluded as %q", seed, i, reason)
				}
			}
		}
		// Served flows never see an infinite cost to any region switch.
		if err := plan.CheckCosts(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The served workload mirrors the mask, in order.
		if len(plan.Served) != len(plan.ServedIndex) {
			t.Fatalf("seed %d: served/index length mismatch", seed)
		}
		for k, idx := range plan.ServedIndex {
			if !plan.Servable[idx] || plan.Served[k] != w[idx] {
				t.Fatalf("seed %d: served[%d] does not match flow %d", seed, k, idx)
			}
		}
	}
}

// FuzzWeightDeltaAPSP is the weight-delta counterpart of
// FuzzIncrementalAPSP: a random chained sequence of link degrades
// (re-weights at assorted factors, including replacing an active
// degrade's factor), hard link failures, and heals — so weight deltas,
// removal deltas, and mixed transitions interleave — applied once
// through the incremental ApplyDelta chain and once through the full
// Rebuild, with every intermediate view pinned bit-for-bit: dist AND
// prev matrices, dead masks, component labels.
func FuzzWeightDeltaAPSP(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 4, 8, 12})
	f.Add([]byte{0, 1, 2, 3, 16, 17, 18, 19})
	f.Add([]byte{0, 2, 40, 42, 3, 7, 80, 81, 200, 201, 13, 14})
	topo := topology.MustFatTree(4, nil)
	d := model.MustNew(topo, model.Options{})
	var links []Fault
	g := d.Topo.Graph
	for u := 0; u < g.Order(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				links = append(links, Fault{Kind: Link, U: u, V: e.To})
			}
		}
	}
	// Factors > 1 and < 1 both appear so increase and decrease dirty
	// rules are exercised, plus re-degrading at a different factor.
	factors := []float64{0.25, 0.5, 1.5, 2, 3, 8}

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		fs := FaultSet{}
		prev, err := ApplyDelta(d, nil, fs)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range ops {
			link := links[int(b>>2)%len(links)]
			switch b & 3 {
			case 0, 1:
				// Degrade (or re-degrade) the link; the factor varies with
				// both the byte and the position so chained replacements of
				// the same link pick different multipliers.
				fct := factors[(int(b>>2)+i)%len(factors)]
				fs = fs.Add(Fault{Kind: Degrade, U: link.U, V: link.V, Factor: fct})
			case 2:
				// Hard-fail the link. An active degrade on it stays in the
				// set and reapplies when the link heals.
				fs = fs.Add(link)
			case 3:
				if fs.Len() > 0 {
					active := fs.Faults()
					fs = fs.Remove(active[int(b>>2)%len(active)])
				}
			}
			inc, err := ApplyDelta(d, prev, fs)
			if err != nil {
				t.Fatalf("fault set built from candidates must validate: %v", err)
			}
			viewEqual(t, d, inc, Rebuild(d, fs))
			prev = inc
		}
		// Drain: heal everything one fault at a time along the chain, then
		// the empty set must be the pristine matrix again.
		for fs.Len() > 0 {
			fs = fs.Remove(fs.Faults()[0])
			inc, err := ApplyDelta(d, prev, fs)
			if err != nil {
				t.Fatal(err)
			}
			viewEqual(t, d, inc, Rebuild(d, fs))
			prev = inc
		}
		apspEqual(t, d, prev, Rebuild(d, FaultSet{}))
	})
}
