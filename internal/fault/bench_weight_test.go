package fault

import (
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// Benchmarks for the weight-delta repair path: the cost of one link
// re-pricing event (degrade inject or heal) with the incremental
// weight-delta APSP update versus the full rebuild.
// results/BENCH_apsp.json records the numbers under "weight_events".

// weightEventFaults builds the degrade set of one named re-pricing
// event on d. ok=false means the event does not apply to this topology.
func weightEventFaults(d *model.PPDC, event string) (FaultSet, bool) {
	midSwitch := func() int {
		if len(d.Topo.Racks) > 0 {
			return midRackToR(d)
		}
		return d.Topo.Switches[len(d.Topo.Switches)/2]
	}
	degradeLink := func(s int, wantSwitch, last bool) (FaultSet, bool) {
		pick := -1
		for _, e := range d.Topo.Graph.Neighbors(s) {
			isSwitch := d.Topo.Kind[e.To] == topology.Switch
			if isSwitch == wantSwitch {
				pick = e.To
				if !last {
					break
				}
			}
		}
		if pick < 0 {
			return FaultSet{}, false
		}
		return NewFaultSet(Fault{Kind: Degrade, U: s, V: pick, Factor: 4}), true
	}
	switch event {
	case "uplink":
		// A representative fabric link: the mid-fabric switch's highest-ID
		// switch link (a ToR uplink on fat trees) at 4x its weight.
		return degradeLink(midSwitch(), true, true)
	case "host_uplink":
		// A host's single link: the pendant-patch path — only the host's
		// own Dijkstra row recomputes, every other row takes the exact
		// column patch.
		return degradeLink(midSwitch(), false, false)
	case "spine_worst":
		// The most tree-popular link: the first switch's first link. The
		// worst case for the classification — expected near-parity with
		// the rebuild.
		return degradeLink(d.Topo.Switches[0], true, false)
	}
	return FaultSet{}, false
}

var weightEvents = []string{"uplink", "host_uplink", "spine_worst"}

// BenchmarkWeightEvent measures one degrade transition from the
// pristine fabric: the incremental path (ApplyDelta -> RebuildFrom's
// reweighted diff -> graph.ApplyEdgeDeltas) against the full Rebuild.
// The -short run keeps the fat trees; the full run adds the k=32 fat
// tree and the 10k-switch jellyfish (gigabyte-matrix scale).
func BenchmarkWeightEvent(b *testing.B) {
	topos := []string{"fattree_k8", "fattree_k16"}
	if !testing.Short() {
		topos = append(topos, "fattree_k32", "jellyfish_10k")
	}
	for _, name := range topos {
		b.Run(name, func(b *testing.B) {
			d := benchModel(b, name)
			for _, event := range weightEvents {
				fs, ok := weightEventFaults(d, event)
				if !ok {
					continue
				}
				pristine, err := Apply(d, FaultSet{})
				if err != nil {
					b.Fatal(err)
				}
				b.Run(event+"/incremental", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := ApplyDelta(d, pristine, fs); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run(event+"/rebuild", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						Rebuild(d, fs)
					}
				})
			}
		})
	}
}

// BenchmarkWeightHeal measures the re-pricing heal: from a degraded
// view, restore the link's pristine weight next to a second active
// degrade (keeping the view off the empty-set shortcut).
func BenchmarkWeightHeal(b *testing.B) {
	for _, name := range []string{"fattree_k8", "fattree_k16"} {
		b.Run(name, func(b *testing.B) {
			d := benchModel(b, name)
			upSet, ok := weightEventFaults(d, "uplink")
			if !ok {
				b.Fatal("no uplink event")
			}
			up := upSet.Faults()[0]
			otherSet, ok := weightEventFaults(d, "host_uplink")
			if !ok {
				b.Fatal("no host_uplink event")
			}
			both := otherSet.Add(up)
			degraded, err := Apply(d, both)
			if err != nil {
				b.Fatal(err)
			}
			after := both.Remove(up)
			b.Run("incremental", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ApplyDelta(d, degraded, after); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("rebuild", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Rebuild(d, after)
				}
			})
		})
	}
}

// TestWeightEventIncrementalMatchesRebuild is the deterministic assert
// behind `make bench-apsp-weight`: for every weight event on the k=8
// fat tree, the incremental view must equal the full rebuild bit-for-bit
// through a degrade -> re-price -> heal chain — the cheap CI-grade pin
// of the property FuzzWeightDeltaAPSP explores at random.
func TestWeightEventIncrementalMatchesRebuild(t *testing.T) {
	topo := topology.MustFatTree(8, nil)
	d := model.MustNew(topo, model.Options{})
	pristine, err := Apply(d, FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	for _, event := range weightEvents {
		fs, ok := weightEventFaults(d, event)
		if !ok {
			t.Fatalf("event %q does not apply to fat tree", event)
		}
		inc, err := ApplyDelta(d, pristine, fs)
		if err != nil {
			t.Fatalf("%s: %v", event, err)
		}
		viewEqual(t, d, inc, Rebuild(d, fs))

		// Re-price the same link to a different factor (replace, not
		// stack), still bit-identical along the incremental chain.
		f := fs.Faults()[0]
		f.Factor = 0.5
		repriced := fs.Add(f)
		inc2, err := ApplyDelta(d, inc, repriced)
		if err != nil {
			t.Fatalf("%s reprice: %v", event, err)
		}
		viewEqual(t, d, inc2, Rebuild(d, repriced))

		// Heal back to pristine: exact bits of the pristine matrix.
		healed, err := ApplyDelta(d, inc2, FaultSet{})
		if err != nil {
			t.Fatalf("%s heal: %v", event, err)
		}
		apspEqual(t, d, healed, pristine)
	}
}
