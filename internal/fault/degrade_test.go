package fault

import (
	"math"
	"strings"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

func degradeModel(t *testing.T) *model.PPDC {
	t.Helper()
	topo := topology.MustFatTree(4, nil)
	return model.MustNew(topo, model.Options{})
}

// firstLink returns the lowest (u, v) link of the fabric.
func firstLink(d *model.PPDC) (int, int) {
	g := d.Topo.Graph
	for u := 0; u < g.Order(); u++ {
		for _, e := range g.Neighbors(u) {
			if u < e.To {
				return u, e.To
			}
		}
	}
	panic("no links")
}

func TestDegradeFaultSetSemantics(t *testing.T) {
	d := degradeModel(t)
	u, v := firstLink(d)
	deg := Fault{Kind: Degrade, U: u, V: v, Factor: 2}

	fs := NewFaultSet(deg)
	if !fs.Contains(deg) || !fs.Active(deg) {
		t.Fatal("injected degrade not active")
	}
	// Contains is exact (factor included); Active matches by identity.
	other := Fault{Kind: Degrade, U: v, V: u, Factor: 3}
	if fs.Contains(other) {
		t.Fatal("Contains matched a different factor")
	}
	if !fs.Active(other) {
		t.Fatal("Active must ignore the factor")
	}
	// Add replaces the active degrade on the same link.
	fs2 := fs.Add(other)
	if fs2.Len() != 1 {
		t.Fatalf("re-degrade stacked: %d faults active", fs2.Len())
	}
	if !fs2.Contains(Fault{Kind: Degrade, U: u, V: v, Factor: 3}) {
		t.Fatal("replacement factor not recorded")
	}
	// Remove heals by identity, without the factor.
	fs3 := fs2.Remove(Fault{Kind: Degrade, U: u, V: v})
	if fs3.Len() != 0 {
		t.Fatalf("identity heal left %d faults", fs3.Len())
	}
	// A degrade and a hard link fault on the same endpoints are distinct.
	link := Fault{Kind: Link, U: u, V: v}
	both := NewFaultSet(deg, link)
	if both.Len() != 2 {
		t.Fatalf("degrade and link collapsed: %d faults", both.Len())
	}
	if !both.Remove(link).Contains(deg) {
		t.Fatal("healing the link must not heal the degrade")
	}
	if both.Remove(Fault{Kind: Degrade, U: u, V: v}).Contains(deg) {
		t.Fatal("healing the degrade left it active")
	}
}

func TestDegradeValidate(t *testing.T) {
	d := degradeModel(t)
	u, v := firstLink(d)
	for _, tc := range []struct {
		f    Fault
		want string
	}{
		{Fault{Kind: Degrade, U: u, V: v, Factor: 0}, "must be finite and > 0"},
		{Fault{Kind: Degrade, U: u, V: v, Factor: -1}, "must be finite and > 0"},
		{Fault{Kind: Degrade, U: u, V: v, Factor: math.Inf(1)}, "must be finite and > 0"},
		{Fault{Kind: Degrade, U: u, V: v, Factor: math.NaN()}, "must be finite and > 0"},
		{Fault{Kind: Degrade, U: 0, V: 1, Factor: 2}, "no link"},
		{Fault{Kind: Link, U: u, V: v, Factor: 2}, "only valid on degrade"},
		{Fault{Kind: Switch, U: d.Topo.Switches[0], Factor: 0.5}, "only valid on degrade"},
	} {
		err := tc.f.Validate(d)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want %q", tc.f, err, tc.want)
		}
	}
	if err := (Fault{Kind: Degrade, U: v, V: u, Factor: 2.5}).Validate(d); err != nil {
		t.Fatalf("valid degrade rejected: %v", err)
	}
}

// TestDegradeViewWeights: a degrade re-prices shortest paths without
// disconnecting anything, and healing it restores the pristine matrix
// bit-for-bit along both the rebuild and the incremental path.
func TestDegradeViewWeights(t *testing.T) {
	d := degradeModel(t)
	u, v := firstLink(d)
	deg := Fault{Kind: Degrade, U: u, V: v, Factor: 4}

	view, err := Apply(d, NewFaultSet(deg))
	if err != nil {
		t.Fatal(err)
	}
	if view.Components() != 1 {
		t.Fatalf("degrade partitioned the fabric: %d components", view.Components())
	}
	for x := 0; x < d.Topo.Graph.Order(); x++ {
		if view.Dead(x) {
			t.Fatalf("degrade killed vertex %d", x)
		}
	}
	// The degraded edge's direct cost is exactly factor× pristine.
	pw := d.Topo.Graph.EdgeWeight(u, v)
	if got := view.PPDC().Topo.Graph.EdgeWeight(u, v); got != pw*4 {
		t.Fatalf("degraded edge weight %v, want %v", got, pw*4)
	}
	// No pair gets cheaper, and the degraded view matches Rebuild.
	n := d.Topo.Graph.Order()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if view.PPDC().APSP.Cost(a, b) < d.APSP.Cost(a, b) {
				t.Fatalf("degrade made pair (%d,%d) cheaper", a, b)
			}
		}
	}
	viewEqual(t, d, view, Rebuild(d, NewFaultSet(deg)))

	// Heal along the incremental chain: pristine bits again.
	healed, err := ApplyDelta(d, view, FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := Apply(d, FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	apspEqual(t, d, healed, pristine)
}

// TestDegradeRemoveHealPermutations is the satellite coverage for
// composing the weight-delta classification with the removal rules in
// any order: a link is degraded, hard-failed, and both faults healed,
// with every interleaving of the four transitions driven through the
// incremental ApplyDelta chain and pinned against the full Rebuild at
// each step. While the link is down the degrade is latent; healing the
// link with the degrade still active must resurface the degraded weight
// (a restore at the effective cost), and healing the degrade while the
// link is down must change nothing until the link returns.
func TestDegradeRemoveHealPermutations(t *testing.T) {
	d := degradeModel(t)
	u, v := firstLink(d)
	deg := Fault{Kind: Degrade, U: u, V: v, Factor: 3}
	link := Fault{Kind: Link, U: u, V: v}

	type op struct {
		name string
		app  func(FaultSet) FaultSet
	}
	ops := []op{
		{"degrade", func(fs FaultSet) FaultSet { return fs.Add(deg) }},
		{"cut", func(fs FaultSet) FaultSet { return fs.Add(link) }},
		{"heal-degrade", func(fs FaultSet) FaultSet { return fs.Remove(Fault{Kind: Degrade, U: u, V: v}) }},
		{"heal-link", func(fs FaultSet) FaultSet { return fs.Remove(link) }},
	}
	idx := []int{0, 1, 2, 3}
	var orders [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == len(idx) {
			orders = append(orders, append([]int(nil), idx...))
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)

	pristine, err := Apply(d, FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range orders {
		fs := FaultSet{}
		prev := pristine
		for _, oi := range order {
			fs = ops[oi].app(fs)
			inc, err := ApplyDelta(d, prev, fs)
			if err != nil {
				t.Fatalf("order %v at %s: %v", order, ops[oi].name, err)
			}
			viewEqual(t, d, inc, Rebuild(d, fs))
			prev = inc
		}
	}

	// The canonical composition story stated explicitly: degrade → cut →
	// heal-link must resurface the degraded (not pristine) weight.
	fs := NewFaultSet(deg, link)
	mid, err := Apply(d, fs)
	if err != nil {
		t.Fatal(err)
	}
	if mid.PPDC().Topo.Graph.HasEdge(u, v) {
		t.Fatal("cut link still present under degrade+cut")
	}
	back, err := ApplyDelta(d, mid, fs.Remove(link))
	if err != nil {
		t.Fatal(err)
	}
	pw := d.Topo.Graph.EdgeWeight(u, v)
	if got := back.PPDC().Topo.Graph.EdgeWeight(u, v); got != pw*3 {
		t.Fatalf("healed link came back at weight %v, want degraded %v", got, pw*3)
	}
}
