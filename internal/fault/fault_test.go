package fault

import (
	"math"
	"testing"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

func mustFatTree(t *testing.T, k int) *model.PPDC {
	t.Helper()
	topo, err := topology.FatTree(k, nil)
	if err != nil {
		t.Fatalf("FatTree(%d): %v", k, err)
	}
	return model.MustNew(topo, model.Options{})
}

func TestFaultSetNormalization(t *testing.T) {
	fs := NewFaultSet(Fault{Kind: Link, U: 7, V: 3}, Fault{Kind: Link, U: 3, V: 7})
	if fs.Len() != 1 {
		t.Fatalf("link {7,3} and {3,7} should normalize to one fault, got %d", fs.Len())
	}
	if !fs.Contains(Fault{Kind: Link, U: 7, V: 3}) {
		t.Fatal("normalized Contains failed")
	}
	fs = fs.Remove(Fault{Kind: Link, U: 3, V: 7})
	if !fs.Empty() {
		t.Fatal("Remove of the reversed link should empty the set")
	}
}

func TestFaultValidate(t *testing.T) {
	d := mustFatTree(t, 4)
	sw := d.Topo.Switches[0]
	h := d.Topo.Hosts[0]
	cases := []struct {
		f  Fault
		ok bool
	}{
		{Fault{Kind: Switch, U: sw}, true},
		{Fault{Kind: Host, U: h}, true},
		{Fault{Kind: Switch, U: h}, false},
		{Fault{Kind: Host, U: sw}, false},
		{Fault{Kind: Switch, U: -1}, false},
		{Fault{Kind: Link, U: h, V: sw}, d.Topo.Graph.HasEdge(h, sw)},
		{Fault{Kind: Link, U: h, V: h}, false},
		{Fault{Kind: "weird", U: sw}, false},
	}
	for _, c := range cases {
		err := c.f.Validate(d)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v): err=%v, want ok=%v", c.f, err, c.ok)
		}
	}
}

func TestApplyEmptyIsPristine(t *testing.T) {
	d := mustFatTree(t, 4)
	v, err := Apply(d, FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if v.PPDC() != d {
		t.Fatal("empty fault set should short-circuit to the pristine PPDC")
	}
	if v.Degraded() {
		t.Fatal("empty view reports degraded")
	}
	if v.Components() != 1 {
		t.Fatalf("pristine fat-tree has 1 component, got %d", v.Components())
	}
}

func TestSwitchFaultRemovesSwitchAndEdges(t *testing.T) {
	d := mustFatTree(t, 4)
	sw := d.Topo.Switches[0]
	v, err := Apply(d, NewFaultSet(Fault{Kind: Switch, U: sw}))
	if err != nil {
		t.Fatal(err)
	}
	dd := v.PPDC()
	if len(dd.Topo.Switches) != len(d.Topo.Switches)-1 {
		t.Fatalf("live switches %d, want %d", len(dd.Topo.Switches), len(d.Topo.Switches)-1)
	}
	for _, s := range dd.Topo.Switches {
		if s == sw {
			t.Fatal("dead switch still listed")
		}
	}
	if dd.Topo.Graph.Degree(sw) != 0 {
		t.Fatal("dead switch keeps incident edges")
	}
	if !v.Dead(sw) {
		t.Fatal("Dead(sw) false")
	}
	// Placement validation against the degraded model rejects the dead
	// switch.
	sfc := model.NewSFC(1)
	if err := (model.Placement{sw}).Validate(dd, sfc); err == nil {
		t.Fatal("placement on dead switch validated")
	}
	if err := (model.Placement{dd.Topo.Switches[0]}).Validate(dd, sfc); err != nil {
		t.Fatalf("placement on live switch rejected: %v", err)
	}
	// Pristine model untouched.
	if d.Topo.Graph.Degree(sw) == 0 {
		t.Fatal("pristine graph mutated")
	}
}

func TestLinkFaultReroutesCost(t *testing.T) {
	// Ring of 4 switches with one host on each of two opposite switches:
	// killing one ring link forces the long way around.
	topo, err := topology.Ring(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustNew(topo, model.Options{})
	s0, s1 := d.Topo.Switches[0], d.Topo.Switches[1]
	if !d.Topo.Graph.HasEdge(s0, s1) {
		t.Skip("ring layout unexpected")
	}
	before := d.Cost(s0, s1)
	v, err := Apply(d, NewFaultSet(Fault{Kind: Link, U: s0, V: s1}))
	if err != nil {
		t.Fatal(err)
	}
	after := v.PPDC().Cost(s0, s1)
	if !(after > before) {
		t.Fatalf("cost s0->s1 should rise after link kill: before=%v after=%v", before, after)
	}
	if math.IsInf(after, 1) {
		t.Fatalf("ring stays connected after one link kill, got Inf")
	}
}

func TestPartitionDetectionAndPlan(t *testing.T) {
	// A dumbbell — hosts h0,h1 on s0, hosts h2,h3 on s1, one s0-s1 bridge
	// link. Killing the bridge partitions the fabric into two components.
	d, hosts, switches := dumbbell(t)
	v, err := Apply(d, NewFaultSet(Fault{Kind: Link, U: switches[0], V: switches[1]}))
	if err != nil {
		t.Fatal(err)
	}
	if v.Components() != 2 {
		t.Fatalf("components=%d, want 2", v.Components())
	}
	if v.Reachable(hosts[0], hosts[2]) {
		t.Fatal("cross-partition pair reported reachable")
	}
	if !v.Reachable(hosts[0], hosts[1]) {
		t.Fatal("intra-partition pair reported unreachable")
	}

	w := model.Workload{
		{Src: hosts[0], Dst: hosts[1], Rate: 5}, // side A
		{Src: hosts[2], Dst: hosts[3], Rate: 1}, // side B
		{Src: hosts[0], Dst: hosts[2], Rate: 9}, // cross partition
	}
	plan := v.PlanService(w)
	if plan.Region != v.Component(hosts[0]) {
		t.Fatalf("plan picked region %d, want side A (%d) with more intra rate", plan.Region, v.Component(hosts[0]))
	}
	if len(plan.Served) != 1 || plan.Served[0].Src != hosts[0] || plan.Served[0].Dst != hosts[1] {
		t.Fatalf("served=%v, want only flow 0", plan.Served)
	}
	if !plan.Servable[0] || plan.Servable[1] || plan.Servable[2] {
		t.Fatalf("servable mask wrong: %v", plan.Servable)
	}
	wantReasons := map[int]UnservedReason{1: ReasonOutsideRegion, 2: ReasonPartitioned}
	if len(plan.Unserved) != 2 {
		t.Fatalf("unserved=%v, want 2 entries", plan.Unserved)
	}
	for _, u := range plan.Unserved {
		if wantReasons[u.Flow] != u.Reason {
			t.Errorf("flow %d reason %q, want %q", u.Flow, u.Reason, wantReasons[u.Flow])
		}
	}
	// Region switches exclude side B.
	for _, s := range plan.PPDC.Topo.Switches {
		if v.Component(s) != plan.Region {
			t.Fatalf("region switch %d outside region", s)
		}
	}
	if err := plan.CheckCosts(); err != nil {
		t.Fatal(err)
	}
	if err := plan.Feasible(1); err != nil {
		t.Fatal(err)
	}
}

func TestDeadHostEndpointReported(t *testing.T) {
	d, hosts, _ := dumbbell(t)
	v, err := Apply(d, NewFaultSet(Fault{Kind: Host, U: hosts[0]}))
	if err != nil {
		t.Fatal(err)
	}
	w := model.Workload{
		{Src: hosts[0], Dst: hosts[1], Rate: 5},
		{Src: hosts[2], Dst: hosts[3], Rate: 1},
	}
	plan := v.PlanService(w)
	if len(plan.Unserved) != 1 || plan.Unserved[0].Flow != 0 || plan.Unserved[0].Reason != ReasonDeadEndpoint {
		t.Fatalf("unserved=%v, want flow 0 dead_endpoint", plan.Unserved)
	}
	if len(plan.Served) != 1 {
		t.Fatalf("served=%v, want 1 flow", plan.Served)
	}
}

func TestInfeasibleWhenAllSwitchesDead(t *testing.T) {
	d, _, switches := dumbbell(t)
	fs := FaultSet{}
	for _, s := range switches {
		fs = fs.Add(Fault{Kind: Switch, U: s})
	}
	v, err := Apply(d, fs)
	if err != nil {
		t.Fatal(err)
	}
	plan := v.PlanService(model.Workload{})
	if plan.Region != -1 {
		t.Fatalf("region=%d, want -1 with no live switches", plan.Region)
	}
	if err := plan.Feasible(1); err == nil {
		t.Fatal("Feasible should fail with no live switches")
	}
}

// dumbbell hand-builds h0,h1 - s0 = s1 - h2,h3 (bridge s0-s1) and
// returns the model plus the host and switch vertex lists.
func dumbbell(t *testing.T) (*model.PPDC, []int, []int) {
	t.Helper()
	g := graph.New(6)
	topo := &topology.Topology{
		Name:     "dumbbell",
		Graph:    g,
		Switches: []int{0, 1},
		Hosts:    []int{2, 3, 4, 5},
		Kind: []topology.NodeKind{
			topology.Switch, topology.Switch,
			topology.Host, topology.Host, topology.Host, topology.Host,
		},
		Labels: []string{"s0", "s1", "h0", "h1", "h2", "h3"},
	}
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 0, 1)
	g.AddEdge(4, 1, 1)
	g.AddEdge(5, 1, 1)
	g.AddEdge(0, 1, 1)
	d := model.MustNew(topo, model.Options{})
	return d, topo.Hosts, topo.Switches
}
