// Package fault models substrate failures in a PPDC: links, switches,
// and hosts going down and coming back. The paper's dynamics are limited
// to traffic-rate churn over an immutable G(V,E); this package supplies
// the missing half — a FaultSet applied to a pristine model.PPDC yields
// a degraded View with a rebuilt APSP oracle, reachability/partition
// detection, and an exact heal round-trip back to the pristine graph.
//
// The pristine PPDC is never mutated. A View is a derived, immutable
// snapshot: injecting or healing faults means building a new View from
// the pristine model and the new FaultSet. Healing every fault therefore
// reproduces the original APSP bit-for-bit (fuzzed in
// FuzzFaultHealRoundTrip); there is no incremental state to drift.
//
// Vertex IDs are stable across degradation: dead vertices stay in the
// graph as isolated vertices (all incident edges removed) so that
// placements, workloads, and APSP matrices keep their indexing. What
// changes is the topology's host/switch membership lists — a dead switch
// is removed from Topo.Switches, which is exactly what makes
// model.Placement.Validate reject placements that reference it.
package fault

import (
	"fmt"
	"sort"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// Kind discriminates what failed.
type Kind string

const (
	// Link is one physical link {U,V} (all parallel edges between the
	// endpoints fail together).
	Link Kind = "link"
	// Switch is a switch vertex; every incident link fails with it.
	Switch Kind = "switch"
	// Host is a host vertex; its flows become unservable while it is down.
	Host Kind = "host"
)

// Fault is one failure. For Link faults both U and V are set (order
// irrelevant); for Switch and Host faults the vertex is U and V must be
// zero or equal to U.
type Fault struct {
	Kind Kind `json:"kind"`
	U    int  `json:"u"`
	V    int  `json:"v,omitempty"`
}

// normalize returns the canonical form of f: link endpoints ordered
// U ≤ V, vertex faults with V mirrored to U.
func (f Fault) normalize() Fault {
	switch f.Kind {
	case Link:
		if f.U > f.V {
			f.U, f.V = f.V, f.U
		}
	default:
		if f.V == 0 || f.V == f.U {
			f.V = f.U
		}
	}
	return f
}

// String renders the fault for events and error messages.
func (f Fault) String() string {
	f = f.normalize()
	if f.Kind == Link {
		return fmt.Sprintf("link{%d,%d}", f.U, f.V)
	}
	return fmt.Sprintf("%s{%d}", f.Kind, f.U)
}

// Validate checks the fault against the pristine PPDC: the kind is
// known, the vertices exist, link endpoints share at least one edge, and
// switch/host faults name a vertex of the right kind.
func (f Fault) Validate(d *model.PPDC) error {
	n := d.Topo.Graph.Order()
	f = f.normalize()
	switch f.Kind {
	case Link:
		if f.U < 0 || f.V < 0 || f.U >= n || f.V >= n {
			return fmt.Errorf("fault: link {%d,%d} out of range [0,%d)", f.U, f.V, n)
		}
		if !d.Topo.Graph.HasEdge(f.U, f.V) {
			return fmt.Errorf("fault: no link between %d and %d", f.U, f.V)
		}
	case Switch:
		if f.U < 0 || f.U >= n {
			return fmt.Errorf("fault: switch %d out of range [0,%d)", f.U, n)
		}
		if d.Topo.Kind[f.U] != topology.Switch {
			return fmt.Errorf("fault: vertex %d is not a switch", f.U)
		}
	case Host:
		if f.U < 0 || f.U >= n {
			return fmt.Errorf("fault: host %d out of range [0,%d)", f.U, n)
		}
		if d.Topo.Kind[f.U] != topology.Host {
			return fmt.Errorf("fault: vertex %d is not a host", f.U)
		}
	default:
		return fmt.Errorf("fault: unknown kind %q (want link, switch, or host)", f.Kind)
	}
	return nil
}

// FaultSet is a normalized set of active faults. The zero value is the
// empty set (healthy fabric). A FaultSet is a value type: Add/Remove
// return updated copies, so Views built from earlier sets stay valid.
type FaultSet struct {
	set map[Fault]struct{}
}

// NewFaultSet builds a set from the given faults (normalized,
// deduplicated).
func NewFaultSet(faults ...Fault) FaultSet {
	var fs FaultSet
	for _, f := range faults {
		fs = fs.Add(f)
	}
	return fs
}

// Len returns the number of active faults.
func (fs FaultSet) Len() int { return len(fs.set) }

// Empty reports whether no fault is active.
func (fs FaultSet) Empty() bool { return len(fs.set) == 0 }

// Contains reports whether f (normalized) is active.
func (fs FaultSet) Contains(f Fault) bool {
	_, ok := fs.set[f.normalize()]
	return ok
}

// Add returns a copy of the set with f injected.
func (fs FaultSet) Add(f Fault) FaultSet {
	out := fs.clone()
	out.set[f.normalize()] = struct{}{}
	return out
}

// Remove returns a copy of the set with f healed (a no-op when f is not
// active).
func (fs FaultSet) Remove(f Fault) FaultSet {
	out := fs.clone()
	delete(out.set, f.normalize())
	return out
}

func (fs FaultSet) clone() FaultSet {
	set := make(map[Fault]struct{}, len(fs.set)+1)
	for f := range fs.set {
		set[f] = struct{}{}
	}
	return FaultSet{set: set}
}

// Faults lists the active faults in a deterministic order (kind, then
// vertices).
func (fs FaultSet) Faults() []Fault {
	out := make([]Fault, 0, len(fs.set))
	for f := range fs.set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Validate checks every fault in the set against the pristine PPDC.
func (fs FaultSet) Validate(d *model.PPDC) error {
	for _, f := range fs.Faults() {
		if err := f.Validate(d); err != nil {
			return err
		}
	}
	return nil
}
