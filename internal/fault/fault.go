// Package fault models substrate failures in a PPDC: links, switches,
// and hosts going down and coming back. The paper's dynamics are limited
// to traffic-rate churn over an immutable G(V,E); this package supplies
// the missing half — a FaultSet applied to a pristine model.PPDC yields
// a degraded View with a rebuilt APSP oracle, reachability/partition
// detection, and an exact heal round-trip back to the pristine graph.
//
// The pristine PPDC is never mutated. A View is a derived, immutable
// snapshot: injecting or healing faults means building a new View from
// the pristine model and the new FaultSet. Healing every fault therefore
// reproduces the original APSP bit-for-bit (fuzzed in
// FuzzFaultHealRoundTrip); there is no incremental state to drift.
//
// Vertex IDs are stable across degradation: dead vertices stay in the
// graph as isolated vertices (all incident edges removed) so that
// placements, workloads, and APSP matrices keep their indexing. What
// changes is the topology's host/switch membership lists — a dead switch
// is removed from Topo.Switches, which is exactly what makes
// model.Placement.Validate reject placements that reference it.
package fault

import (
	"fmt"
	"math"
	"sort"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// Kind discriminates what failed.
type Kind string

const (
	// Link is one physical link {U,V} (all parallel edges between the
	// endpoints fail together).
	Link Kind = "link"
	// Switch is a switch vertex; every incident link fails with it.
	Switch Kind = "switch"
	// Host is a host vertex; its flows become unservable while it is down.
	Host Kind = "host"
	// Degrade is a soft link failure: the link {U,V} stays up but every
	// parallel edge between the endpoints costs Factor× its pristine
	// weight — flapping optics, FEC retransmits, an oversubscribed WAN
	// segment. Unlike Link it never disconnects anything; it feeds the
	// incremental weight-delta APSP path instead of the removal path.
	Degrade Kind = "degrade"
)

// Fault is one failure. For Link and Degrade faults both U and V are set
// (order irrelevant); for Switch and Host faults the vertex is U and V
// must be zero or equal to U. Factor is the weight multiplier of a
// Degrade fault (> 0, finite) and must be zero for every other kind.
type Fault struct {
	Kind   Kind    `json:"kind"`
	U      int     `json:"u"`
	V      int     `json:"v,omitempty"`
	Factor float64 `json:"factor,omitempty"`
}

// normalize returns the canonical form of f: link/degrade endpoints
// ordered U ≤ V, vertex faults with V mirrored to U.
func (f Fault) normalize() Fault {
	switch f.Kind {
	case Link, Degrade:
		if f.U > f.V {
			f.U, f.V = f.V, f.U
		}
	default:
		if f.V == 0 || f.V == f.U {
			f.V = f.U
		}
	}
	return f
}

// identity is the normalized fault with its magnitude erased: the key
// under which at most one fault may be active per FaultSet invariant.
// Two degrades of the same link with different factors share an
// identity — Add replaces, Remove and Active ignore the factor.
func (f Fault) identity() Fault {
	f = f.normalize()
	f.Factor = 0
	return f
}

// String renders the fault for events and error messages.
func (f Fault) String() string {
	f = f.normalize()
	switch f.Kind {
	case Link:
		return fmt.Sprintf("link{%d,%d}", f.U, f.V)
	case Degrade:
		return fmt.Sprintf("degrade{%d,%d}x%g", f.U, f.V, f.Factor)
	}
	return fmt.Sprintf("%s{%d}", f.Kind, f.U)
}

// Validate checks the fault against the pristine PPDC: the kind is
// known, the vertices exist, link endpoints share at least one edge, and
// switch/host faults name a vertex of the right kind.
func (f Fault) Validate(d *model.PPDC) error {
	n := d.Topo.Graph.Order()
	f = f.normalize()
	if f.Kind != Degrade && f.Factor != 0 {
		return fmt.Errorf("fault: factor %g is only valid on degrade faults, not %q", f.Factor, f.Kind)
	}
	switch f.Kind {
	case Link, Degrade:
		if f.U < 0 || f.V < 0 || f.U >= n || f.V >= n {
			return fmt.Errorf("fault: %s {%d,%d} out of range [0,%d)", f.Kind, f.U, f.V, n)
		}
		if !d.Topo.Graph.HasEdge(f.U, f.V) {
			return fmt.Errorf("fault: no link between %d and %d", f.U, f.V)
		}
		if f.Kind == Degrade {
			if !(f.Factor > 0) || math.IsInf(f.Factor, 0) {
				return fmt.Errorf("fault: degrade{%d,%d} factor %g must be finite and > 0 (use a link fault to take the link down)", f.U, f.V, f.Factor)
			}
		}
	case Switch:
		if f.U < 0 || f.U >= n {
			return fmt.Errorf("fault: switch %d out of range [0,%d)", f.U, n)
		}
		if d.Topo.Kind[f.U] != topology.Switch {
			return fmt.Errorf("fault: vertex %d is not a switch", f.U)
		}
	case Host:
		if f.U < 0 || f.U >= n {
			return fmt.Errorf("fault: host %d out of range [0,%d)", f.U, n)
		}
		if d.Topo.Kind[f.U] != topology.Host {
			return fmt.Errorf("fault: vertex %d is not a host", f.U)
		}
	default:
		return fmt.Errorf("fault: unknown kind %q (want link, degrade, switch, or host)", f.Kind)
	}
	return nil
}

// FaultSet is a normalized set of active faults. The zero value is the
// empty set (healthy fabric). A FaultSet is a value type: Add/Remove
// return updated copies, so Views built from earlier sets stay valid.
type FaultSet struct {
	set map[Fault]struct{}
}

// NewFaultSet builds a set from the given faults (normalized,
// deduplicated).
func NewFaultSet(faults ...Fault) FaultSet {
	var fs FaultSet
	for _, f := range faults {
		fs = fs.Add(f)
	}
	return fs
}

// Len returns the number of active faults.
func (fs FaultSet) Len() int { return len(fs.set) }

// Empty reports whether no fault is active.
func (fs FaultSet) Empty() bool { return len(fs.set) == 0 }

// Contains reports whether exactly f (normalized, factor included) is
// active. A degrade of the same link at a different factor does NOT
// match — the engine counts a factor change as a new injection because
// of this. Use Active for factor-insensitive membership (heal paths).
func (fs FaultSet) Contains(f Fault) bool {
	_, ok := fs.set[f.normalize()]
	return ok
}

// Active reports whether a fault with f's identity — kind and endpoints,
// ignoring any degrade factor — is active. Heal requests name the fault
// without having to echo the factor it was injected with.
func (fs FaultSet) Active(f Fault) bool {
	if _, ok := fs.set[f.normalize()]; ok {
		return true
	}
	if f.Kind != Degrade {
		return false
	}
	id := f.identity()
	for g := range fs.set {
		if g.identity() == id {
			return true
		}
	}
	return false
}

// Add returns a copy of the set with f injected. At most one fault per
// identity is active: injecting a degrade on a link that already carries
// one replaces its factor rather than stacking a second multiplier.
func (fs FaultSet) Add(f Fault) FaultSet {
	out := fs.clone()
	nf := f.normalize()
	if nf.Kind == Degrade {
		id := nf.identity()
		for g := range out.set {
			if g.Kind == Degrade && g.identity() == id {
				delete(out.set, g)
			}
		}
	}
	out.set[nf] = struct{}{}
	return out
}

// Remove returns a copy of the set with f healed (a no-op when f is not
// active). Matching is by identity: healing a degrade needs only the
// endpoints, not the injected factor.
func (fs FaultSet) Remove(f Fault) FaultSet {
	out := fs.clone()
	nf := f.normalize()
	if _, ok := out.set[nf]; ok {
		delete(out.set, nf)
		return out
	}
	if nf.Kind == Degrade {
		id := nf.identity()
		for g := range out.set {
			if g.Kind == Degrade && g.identity() == id {
				delete(out.set, g)
			}
		}
	}
	return out
}

func (fs FaultSet) clone() FaultSet {
	set := make(map[Fault]struct{}, len(fs.set)+1)
	for f := range fs.set {
		set[f] = struct{}{}
	}
	return FaultSet{set: set}
}

// Faults lists the active faults in a deterministic order (kind, then
// vertices).
func (fs FaultSet) Faults() []Fault {
	out := make([]Fault, 0, len(fs.set))
	for f := range fs.set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Validate checks every fault in the set against the pristine PPDC.
func (fs FaultSet) Validate(d *model.PPDC) error {
	for _, f := range fs.Faults() {
		if err := f.Validate(d); err != nil {
			return err
		}
	}
	return nil
}
