package obs

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestNilHandlesAreNoOps pins the package contract: every method on a
// nil registry, handle, or event log is safe.
func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has state")
	}
	r.GaugeFunc("y", func() float64 { return 1 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry wrote exposition")
	}
	var ev *EventLog
	ev.Append("t", "m", nil)
	if ev.Events() != nil || ev.Total() != 0 {
		t.Fatal("nil event log has state")
	}
}

func TestRegistryIdentityAndKinds(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`req_total{route="/x"}`)
	b := r.Counter(`req_total{route="/x"}`)
	if a != b {
		t.Fatal("same full name returned distinct handles")
	}
	if r.Counter(`req_total{route="/y"}`) == a {
		t.Fatal("distinct label sets shared a handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased handles diverged")
	}

	for _, bad := range []string{"", "2leading", "sp ace", "bad{unclosed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch accepted")
			}
		}()
		r.Gauge(`req_total{route="/x"}`)
	}()
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("live", func() float64 { return v })
	g := r.Gauge("live")
	if g.Value() != 1.5 {
		t.Fatalf("callback gauge %v", g.Value())
	}
	v = 2.5
	if g.Value() != 2.5 {
		t.Fatal("callback gauge did not track")
	}
	g.Set(9) // no-op on callback-backed gauges
	if g.Value() != 2.5 {
		t.Fatal("Set overrode the callback")
	}
}

// TestHistogramQuantiles: with log10 buckets at 20/decade the bucket
// upper bound is within a factor 10^(1/20) ≈ 1.122 of the true value, so
// quantile estimates must land within ~13% above the exact quantile.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over [1e-4, 1e2]: six decades, a realistic latency
		// spread.
		vals[i] = math.Pow(10, -4+6*rng.Float64())
		h.Observe(vals[i])
	}
	if h.Count() != uint64(n) {
		t.Fatalf("count %d", h.Count())
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-6*sum {
		t.Fatalf("sum %v, want %v", h.Sum(), sum)
	}
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	growth := math.Pow(10, 1.0/histBucketsPerDecade)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := sorted[int(q*float64(n))]
		got := h.Quantile(q)
		if got < exact/growth*0.999 || got > exact*growth*1.001 {
			t.Fatalf("q%v: got %v, exact %v (allowed ratio %v)", q, got, exact, growth)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN()) // dropped
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2 (NaN dropped)", h.Count())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("all-nonpositive median %v", q)
	}
	h.Observe(1e300) // clamps into the top decade
	if q := h.Quantile(1); q <= 0 || math.IsInf(q, 0) {
		t.Fatalf("clamped max quantile %v", q)
	}
	if h.Quantile(math.NaN()) != 0 {
		t.Fatal("NaN quantile")
	}
}

// TestEventLogWraparound: the ring keeps the most recent capacity
// events, oldest first, while Total and Seq keep counting.
func TestEventLogWraparound(t *testing.T) {
	ev := NewEventLog(4)
	for i := 1; i <= 10; i++ {
		ev.Append("tick", "t", map[string]float64{"i": float64(i)})
	}
	got := ev.Events()
	if len(got) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(got))
	}
	if ev.Total() != 10 {
		t.Fatalf("total %d, want 10", ev.Total())
	}
	for k, e := range got {
		wantI := float64(7 + k)
		if e.Fields["i"] != wantI || e.Seq != uint64(7+k) {
			t.Fatalf("slot %d: seq %d fields %v, want i=%v", k, e.Seq, e.Fields, wantI)
		}
		if e.Time.IsZero() || e.Type != "tick" {
			t.Fatalf("slot %d: %+v", k, e)
		}
	}
	// Events() returns a copy: mutating it must not corrupt the ring.
	got[0].Type = "mutated"
	if ev.Events()[0].Type != "tick" {
		t.Fatal("Events() exposed ring storage")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{route="/a"}`).Add(3)
	r.Counter(`req_total{route="/b"}`).Add(4)
	r.Gauge("temp").Set(1.5)
	h := r.Histogram(`lat_seconds{x="1"}`)
	h.Observe(0.5)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# TYPE lat_seconds summary",
		"# TYPE req_total counter",
		"# TYPE temp gauge",
		`req_total{route="/a"} 3`,
		`req_total{route="/b"} 4`,
		"temp 1.5",
		`lat_seconds_count{x="1"} 2`,
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w+"\n") {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
	if strings.Count(out, "# TYPE req_total") != 1 {
		t.Fatalf("TYPE line repeated per series:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds{x="1",quantile="0.5"}`) {
		t.Fatalf("quantile label not spliced:\n%s", out)
	}
	// The p50 of two observations of 0.5 is 0.5's bucket upper bound.
	q := h.Quantile(0.5)
	if q < 0.5 || q > 0.5*math.Pow(10, 1.0/histBucketsPerDecade)*1.001 {
		t.Fatalf("p50 of {0.5,0.5} = %v", q)
	}
}

// TestConcurrentUse exercises the registry and handles from many
// goroutines; run under -race this is the lock-freedom check.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	ev := NewEventLog(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_seconds")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%7) * 0.01)
				r.Gauge("shared").Set(float64(i))
				if i%100 == 0 {
					ev.Append("t", "m", nil)
					var buf bytes.Buffer
					_ = r.WritePrometheus(&buf)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter %d, want 8000", got)
	}
	if got := r.Histogram("shared_seconds").Count(); got != 8000 {
		t.Fatalf("histogram count %d, want 8000", got)
	}
	if ev.Total() != 80 {
		t.Fatalf("events %d, want 80", ev.Total())
	}
}
