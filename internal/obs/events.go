package obs

import (
	"sync"
	"time"
)

// Event is one structured occurrence in an EventLog: a monotonic
// sequence number, a wall-clock timestamp, a short machine-readable
// type, a human-readable message, and optional numeric fields.
type Event struct {
	Seq     uint64             `json:"seq"`
	Time    time.Time          `json:"time"`
	Type    string             `json:"type"`
	Message string             `json:"message"`
	Fields  map[string]float64 `json:"fields,omitempty"`
}

// DefaultEventCapacity bounds an EventLog when no capacity is given.
const DefaultEventCapacity = 256

// EventLog is a bounded ring buffer of events: appends past the
// capacity overwrite the oldest entries, so memory use is fixed while
// the newest history is always retained. A nil *EventLog drops
// everything. Event rates are control-plane scale (migrations, scenario
// lifecycle), so a mutex — not lock-free machinery — guards the ring.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int    // write cursor into buf
	size int    // live entries (≤ cap(buf))
	seq  uint64 // total events ever appended
}

// NewEventLog returns a ring holding the most recent capacity events
// (≤ 0 selects DefaultEventCapacity).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Append records one event, evicting the oldest entry when the ring is
// full. The fields map is retained as-is; callers must not mutate it
// afterwards. No-op on a nil log.
func (l *EventLog) Append(typ, message string, fields map[string]float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	l.buf[l.next] = Event{Seq: l.seq, Time: time.Now(), Type: typ, Message: message, Fields: fields}
	l.next = (l.next + 1) % len(l.buf)
	if l.size < len(l.buf) {
		l.size++
	}
	l.mu.Unlock()
}

// Events returns the retained events, oldest first. The slice is a
// copy; nil log → nil.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.size)
	start := l.next - l.size
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.size; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// Total returns the number of events ever appended (including evicted
// ones).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
