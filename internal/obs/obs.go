// Package obs is the observability layer: an atomic metrics registry
// (counters, gauges, lock-free streaming histograms), Prometheus
// text-format exposition, and a bounded event ring buffer.
//
// The core types in this file and in histogram.go, events.go, and
// prometheus.go depend only on the standard library; instrument.go adds
// ready-made wrappers for the TOP/TOM solver interfaces.
//
// Everything is built around one contract: **a nil handle is a disabled
// handle.** Every method on a nil *Registry, *Counter, *Gauge,
// *Histogram, or *EventLog is a no-op (or returns a zero value), so
// library code can thread metric handles unconditionally and pay exactly
// one nil check when observability is off. Instrumented hot paths should
// resolve their handles once (at construction) rather than looking them
// up by name per operation.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil counter).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. A gauge may instead be backed
// by a callback (see Registry.GaugeFunc), in which case Set/Add are
// no-ops and Value consults the callback.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v (no-op on a nil or callback-backed gauge).
func (g *Gauge) Set(v float64) {
	if g == nil || g.fn != nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil || g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKind discriminates what a registry slot holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric: the full name (family plus optional
// inline label set) and the typed handle.
type entry struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a concurrency-safe, get-or-create metrics registry. Metric
// names follow the Prometheus data model and may carry an inline label
// set, e.g.
//
//	r.Counter(`vnfoptd_requests_total{route="/healthz",code="200"}`).Inc()
//
// The full string (family + labels) is the identity: two calls with the
// same name return the same handle. A nil *Registry hands out nil
// handles, which no-op — the disabled configuration costs nothing beyond
// the nil checks.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

// lookup returns the slot for name, creating it with mk on first use.
// It panics when the same name was previously registered with a
// different kind — that is a programming error, not an operational one.
func (r *Registry) lookup(name string, kind metricKind, mk func(*entry)) *entry {
	if err := checkName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	r.mu.RLock()
	e := r.metrics[name]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		if e = r.metrics[name]; e == nil {
			e = &entry{name: name, kind: kind}
			mk(e)
			r.metrics[name] = e
		}
		r.mu.Unlock()
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, kind))
	}
	return e
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registry → nil (disabled) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registry → nil (disabled) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// GaugeFunc registers a callback-backed gauge: the callback is invoked
// at exposition time. Registering the same name again replaces the
// callback. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	e := r.lookup(name, kindGauge, func(e *entry) { e.g = &Gauge{} })
	r.mu.Lock()
	e.g.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it on
// first use. Nil registry → nil (disabled) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, func(e *entry) { e.h = NewHistogram() }).h
}

// snapshot returns the registered entries sorted by full name.
func (r *Registry) snapshot() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.metrics))
	for _, e := range r.metrics {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// checkName validates a metric name: a Prometheus-style family
// ([a-zA-Z_:][a-zA-Z0-9_:]*) optionally followed by one balanced
// {label="value",...} block.
func checkName(name string) error {
	fam, labels := splitName(name)
	if fam == "" {
		return fmt.Errorf("empty metric name %q", name)
	}
	for i, ch := range fam {
		ok := ch == '_' || ch == ':' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(i > 0 && ch >= '0' && ch <= '9')
		if !ok {
			return fmt.Errorf("invalid metric family %q", fam)
		}
	}
	if labels != "" && (!strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}")) {
		return fmt.Errorf("invalid label block in %q", name)
	}
	return nil
}

// splitName splits a full metric name into family and the raw label
// block (including braces; empty when there are no labels).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}
