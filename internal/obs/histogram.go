package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: log-spaced buckets covering 18 decades
// ([1e-9, 1e9)) at histBucketsPerDecade buckets per decade, giving a
// worst-case relative quantile error of 10^(1/20) − 1 ≈ 12%. Values at
// or below zero land in a dedicated zero bucket; values beyond the top
// decade clamp into the last bucket. The layout is fixed so Observe is
// one float log, one index clamp, and two atomic adds — no allocation,
// no locking, safe for any number of concurrent writers.
const (
	histBucketsPerDecade = 20
	histMinDecade        = -9
	histMaxDecade        = 9
	histBuckets          = (histMaxDecade - histMinDecade) * histBucketsPerDecade
)

// Histogram is a lock-free streaming histogram with quantile estimation.
// The zero value is NOT ready; use NewHistogram or Registry.Histogram. A
// nil *Histogram is a disabled handle: Observe no-ops and the accessors
// return zeros.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	zero    atomic.Uint64 // observations ≤ 0
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a positive value to its bucket, clamped to the
// covered range.
func bucketIndex(v float64) int {
	idx := int(math.Floor((math.Log10(v) - histMinDecade) * histBucketsPerDecade))
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper returns the upper bound of bucket idx — the value reported
// for quantiles landing in it.
func bucketUpper(idx int) float64 {
	return math.Pow(10, float64(histMinDecade)+float64(idx+1)/histBucketsPerDecade)
}

// Observe records one sample. NaN samples are dropped; samples ≤ 0 are
// counted (in the zero bucket and the sum) but do not shift positive
// quantiles. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	if v <= 0 {
		h.zero.Add(1)
	} else {
		h.buckets[bucketIndex(v)].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) of the recorded
// samples: the upper bound of the bucket holding the rank-⌈q·count⌉
// sample, accurate to one bucket width (≈12% relative). Returns 0 for an
// empty or nil histogram. Concurrent Observe calls may be partially
// visible; the estimate is still within one bucket of some consistent
// snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	seen := h.zero.Load()
	if rank <= seen {
		return 0
	}
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if rank <= seen {
			return bucketUpper(i)
		}
	}
	// Samples landed after the count was read; report the top of the
	// highest non-empty bucket.
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			return bucketUpper(i)
		}
	}
	return 0
}
