package obs

import (
	"time"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
)

// This file holds the solver-facing instrumentation: drop-in wrappers
// for the TOP placement.Solver and TOM migration.Migrator interfaces
// that time every call and publish the outcome through pre-resolved
// registry handles. The core registry (obs.go) stays standard-library
// only; only these wrappers know about the model types.

// SolverMetrics are the pre-resolved handles an InstrumentedSolver
// publishes to. A nil *SolverMetrics (e.g. from a nil registry)
// disables publication without disabling the wrapped solver.
type SolverMetrics struct {
	Calls   *Counter
	Errors  *Counter
	Seconds *Histogram
	Cost    *Gauge
}

// NewSolverMetrics resolves the vnfopt_solver_* family for one named
// solver. Nil registry → nil metrics.
func NewSolverMetrics(r *Registry, solver string) *SolverMetrics {
	if r == nil {
		return nil
	}
	l := `{solver="` + solver + `"}`
	return &SolverMetrics{
		Calls:   r.Counter("vnfopt_solver_calls_total" + l),
		Errors:  r.Counter("vnfopt_solver_errors_total" + l),
		Seconds: r.Histogram("vnfopt_solver_seconds" + l),
		Cost:    r.Gauge("vnfopt_solver_cost" + l),
	}
}

// InstrumentedSolver wraps a TOP solver: every Place call is timed and
// its reported cost recorded. The wrapper is transparent — Name and the
// returned values are the inner solver's.
type InstrumentedSolver struct {
	Inner placement.Solver
	M     *SolverMetrics
}

// Name implements placement.Solver.
func (s InstrumentedSolver) Name() string { return s.Inner.Name() }

// Place implements placement.Solver.
func (s InstrumentedSolver) Place(d *model.PPDC, w model.Workload, sfc model.SFC) (model.Placement, float64, error) {
	start := time.Now()
	p, c, err := s.Inner.Place(d, w, sfc)
	if m := s.M; m != nil {
		m.Seconds.Observe(time.Since(start).Seconds())
		m.Calls.Inc()
		if err != nil {
			m.Errors.Inc()
		} else {
			m.Cost.Set(c)
		}
	}
	return p, c, err
}

// MigratorMetrics are the pre-resolved handles an InstrumentedMigrator
// publishes to.
type MigratorMetrics struct {
	Calls   *Counter
	Errors  *Counter
	Moves   *Counter
	Seconds *Histogram
	Cost    *Gauge
}

// NewMigratorMetrics resolves the vnfopt_migrator_* family for one
// named migrator. Nil registry → nil metrics.
func NewMigratorMetrics(r *Registry, migrator string) *MigratorMetrics {
	if r == nil {
		return nil
	}
	l := `{migrator="` + migrator + `"}`
	return &MigratorMetrics{
		Calls:   r.Counter("vnfopt_migrator_calls_total" + l),
		Errors:  r.Counter("vnfopt_migrator_errors_total" + l),
		Moves:   r.Counter("vnfopt_migrator_moves_total" + l),
		Seconds: r.Histogram("vnfopt_migrator_seconds" + l),
		Cost:    r.Gauge("vnfopt_migrator_cost" + l),
	}
}

// InstrumentedMigrator wraps a TOM migrator: every Migrate call is
// timed; the reported total cost C_t and the number of VNF moves the
// proposal implies are recorded.
type InstrumentedMigrator struct {
	Inner migration.Migrator
	M     *MigratorMetrics
}

// Name implements migration.Migrator.
func (im InstrumentedMigrator) Name() string { return im.Inner.Name() }

// Migrate implements migration.Migrator.
func (im InstrumentedMigrator) Migrate(d *model.PPDC, w model.Workload, sfc model.SFC, p model.Placement, mu float64) (model.Placement, float64, error) {
	start := time.Now()
	target, ct, err := im.Inner.Migrate(d, w, sfc, p, mu)
	if m := im.M; m != nil {
		m.Seconds.Observe(time.Since(start).Seconds())
		m.Calls.Inc()
		if err != nil {
			m.Errors.Inc()
		} else {
			m.Cost.Set(ct)
			if len(target) == len(p) {
				m.Moves.Add(int64(migration.MigrationCount(p, target)))
			}
		}
	}
	return target, ct, err
}
