package obs

import (
	"bufio"
	"io"
	"strconv"
)

// quantiles exported for every histogram.
var promQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus writes the registry's metrics in Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as summaries with p50/p90/p99 quantile samples
// plus _sum and _count series. Families are emitted in sorted full-name
// order, each preceded by one # TYPE line. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range r.snapshot() {
		fam, labels := splitName(e.name)
		if fam != lastFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(fam)
			switch e.kind {
			case kindCounter:
				bw.WriteString(" counter\n")
			case kindGauge:
				bw.WriteString(" gauge\n")
			case kindHistogram:
				bw.WriteString(" summary\n")
			}
			lastFamily = fam
		}
		switch e.kind {
		case kindCounter:
			writeSample(bw, fam, labels, strconv.FormatInt(e.c.Value(), 10))
		case kindGauge:
			writeSample(bw, fam, labels, formatFloat(e.g.Value()))
		case kindHistogram:
			for _, q := range promQuantiles {
				ql := `quantile="` + strconv.FormatFloat(q, 'g', -1, 64) + `"`
				writeSample(bw, fam, spliceLabel(labels, ql), formatFloat(e.h.Quantile(q)))
			}
			writeSample(bw, fam+"_sum", labels, formatFloat(e.h.Sum()))
			writeSample(bw, fam+"_count", labels, strconv.FormatUint(e.h.Count(), 10))
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line.
func writeSample(bw *bufio.Writer, family, labels, value string) {
	bw.WriteString(family)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// spliceLabel merges one extra label pair into a raw `{...}` block
// (which may be empty).
func spliceLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders a sample value; Prometheus spells infinities
// +Inf/-Inf, which FormatFloat produces as (+/-)Inf already.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
