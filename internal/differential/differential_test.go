package differential

import (
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func TestDifferentialFatTree(t *testing.T) {
	d := model.MustNew(topology.MustFatTree(4, nil), model.Options{})
	rng := rand.New(rand.NewSource(1))
	w1 := workload.MustPairsClustered(d.Topo, 15, 4, workload.DefaultIntraRack, rng)
	w2 := w1.WithRates(workload.Rates(len(w1), rng))
	rep, err := Run(d, w1, w2, model.NewSFC(3), Options{Mu: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OptimalProven {
		t.Fatal("k=4 should prove optimality unbudgeted")
	}
	for _, name := range []string{"DP", "Steering", "Greedy", "Anneal", "Optimal"} {
		if _, ok := rep.PlacementCosts[name]; !ok {
			t.Errorf("missing placement cost for %s", name)
		}
	}
	for _, name := range []string{"mPareto", "LayeredDP", "Optimal*", "NoMigration", "Exhaustive"} {
		if _, ok := rep.MigrationCosts[name]; !ok {
			t.Errorf("missing migration cost for %s", name)
		}
	}
}

func TestDifferentialAcrossTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topos := map[string]*topology.Topology{}
	if ls, err := topology.LeafSpine(4, 2, 3, nil); err == nil {
		topos["leaf-spine"] = ls
	}
	if jf, err := topology.Jellyfish(14, 3, 1, nil, rand.New(rand.NewSource(3))); err == nil {
		topos["jellyfish"] = jf
	}
	if rg, err := topology.Ring(9, nil); err == nil {
		topos["ring"] = rg
	}
	for name, topo := range topos {
		name, topo := name, topo
		t.Run(name, func(t *testing.T) {
			d := model.MustNew(topo, model.Options{})
			w1 := workload.MustPairs(topo, 10, 0.5, rng)
			w2 := w1.WithRates(workload.Rates(len(w1), rng))
			if _, err := Run(d, w1, w2, model.NewSFC(3), Options{Mu: 200, NodeBudget: 300_000}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDifferentialWithCapacity(t *testing.T) {
	d := model.MustNew(topology.MustFatTree(2, nil), model.Options{SwitchCapacity: 2})
	rng := rand.New(rand.NewSource(11))
	w1 := workload.MustPairs(d.Topo, 8, workload.DefaultIntraRack, rng)
	w2 := w1.WithRates(workload.Rates(len(w1), rng))
	if _, err := Run(d, w1, w2, model.NewSFC(4), Options{Mu: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialRandomScenarios(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := model.MustNew(topology.MustFatTree(4, nil), model.Options{})
		l := 5 + rng.Intn(15)
		w1 := workload.MustPairsClustered(d.Topo, l, 2+rng.Intn(5), workload.DefaultIntraRack, rng)
		w2 := w1.WithRates(workload.Rates(len(w1), rng))
		n := 2 + rng.Intn(3)
		mu := float64(rng.Intn(3000))
		if _, err := Run(d, w1, w2, model.NewSFC(n), Options{Mu: mu}); err != nil {
			t.Fatalf("seed %d (l=%d n=%d mu=%v): %v", seed, l, n, mu, err)
		}
	}
}
