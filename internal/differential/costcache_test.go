package differential

import (
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// fuzzTopology materializes one of several topology families from fuzzed
// bytes, so the cache equivalence is exercised on fat trees, leaf-spine
// Clos fabrics, rings, and random meshes alike.
func fuzzTopology(kind uint8, rng *rand.Rand) *topology.Topology {
	switch kind % 4 {
	case 0:
		return topology.MustFatTree(4, nil)
	case 1:
		t, err := topology.LeafSpine(4, 2, 4, topology.PaperDelay(rng))
		if err != nil {
			panic(err)
		}
		return t
	case 2:
		t, err := topology.Ring(8, nil)
		if err != nil {
			panic(err)
		}
		return t
	default:
		t, err := topology.RandomMesh(10, 20, 8, topology.PaperDelay(rng), rng)
		if err != nil {
			panic(err)
		}
		return t
	}
}

func randomCachePlacement(d *model.PPDC, n int, rng *rand.Rand) model.Placement {
	sw := d.Switches()
	perm := rng.Perm(len(sw))
	p := make(model.Placement, n)
	for j := range p {
		p[j] = sw[perm[j%len(sw)]]
	}
	return p
}

// FuzzCostCacheEquivalence asserts aggregated-cache C_a ≡ scalar C_a (to
// reassociation tolerance) across random topologies, workloads, random
// placements, and repeated rate mutations through the SetWorkload
// invalidation hook. Any divergence is a real kernel bug: the cache and
// the oracle sum exactly the same λ·c terms.
// Run with `go test -fuzz=FuzzCostCacheEquivalence ./internal/differential`.
func FuzzCostCacheEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(12), uint8(3), uint8(4))
	f.Add(int64(7), uint8(1), uint8(40), uint8(1), uint8(2))
	f.Add(int64(-3), uint8(2), uint8(5), uint8(5), uint8(0))
	f.Add(int64(99), uint8(3), uint8(25), uint8(2), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, topoKind, lRaw, nRaw, mutations uint8) {
		rng := rand.New(rand.NewSource(seed))
		topo := fuzzTopology(topoKind, rng)
		d := model.MustNew(topo, model.Options{AllowColocation: topoKind%2 == 1})
		l := 1 + int(lRaw)%60
		n := 1 + int(nRaw)%5
		if n > len(d.Switches()) {
			n = len(d.Switches())
		}
		w := workload.MustPairs(topo, l, 0.5, rng)

		cache := d.NewWorkloadCache(w)
		rounds := 1 + int(mutations)%8
		for round := 0; round < rounds; round++ {
			in, eg := cache.EndpointCosts()
			inS, egS := d.EndpointCosts(w)
			for v := range in {
				if !closeRel(in[v], inS[v]) || !closeRel(eg[v], egS[v]) {
					t.Fatalf("round %d: endpoint vectors diverge at vertex %d: (%v,%v) vs (%v,%v)",
						round, v, in[v], eg[v], inS[v], egS[v])
				}
			}
			if got, want := cache.CommCost(nil), d.CommCost(w, nil); !closeRel(got, want) {
				t.Fatalf("round %d: direct C_a %v vs scalar %v", round, got, want)
			}
			for trial := 0; trial < 10; trial++ {
				p := randomCachePlacement(d, n, rng)
				if got, want := cache.CommCost(p), d.CommCost(w, p); !closeRel(got, want) {
					t.Fatalf("round %d: C_a(%v) = %v, scalar %v", round, p, got, want)
				}
				m := randomCachePlacement(d, n, rng)
				mu := float64(rng.Intn(100_000))
				if got, want := cache.TotalCost(p, m, mu), d.TotalCost(w, p, m, mu); !closeRel(got, want) {
					t.Fatalf("round %d: C_t %v, scalar %v", round, got, want)
				}
			}
			// Mutate rates (occasionally zeroing some flows out entirely)
			// and push them through the invalidation hook.
			w = w.WithRates(workload.Rates(len(w), rng))
			if rng.Intn(3) == 0 {
				w[rng.Intn(len(w))].Rate = 0
			}
			cache.SetWorkload(w)
		}
	})
}

// TestCostCacheEquivalenceCorpus runs the fuzz body over a deterministic
// seed sweep so the property is enforced by plain `go test` as well.
func TestCostCacheEquivalenceCorpus(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		topo := fuzzTopology(uint8(seed), rng)
		d := model.MustNew(topo, model.Options{})
		w := workload.MustPairs(topo, 3+int(seed)*2, 0.5, rng)
		cache := d.NewWorkloadCache(w)
		for round := 0; round < 4; round++ {
			for trial := 0; trial < 8; trial++ {
				p := randomCachePlacement(d, 1+rng.Intn(4), rng)
				if got, want := cache.CommCost(p), d.CommCost(w, p); !closeRel(got, want) {
					t.Fatalf("seed %d round %d: C_a(%v) = %v, scalar %v", seed, round, p, got, want)
				}
			}
			w = w.WithRates(workload.Rates(len(w), rng))
			cache.SetWorkload(w)
		}
	}
}
