package differential

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// FuzzApplyDeltaEquivalence is the differential property behind the online
// engine's incremental cost path: *any* sequence of WorkloadCache.ApplyDelta
// updates (raises, drops to zero, pairs born via EnsurePair, interleaved
// no-ops) leaves the cache within 1e-9 relative of a fresh SetWorkload
// rebuild of the resulting workload — endpoint vectors, total rate, direct
// cost, and C_a of random placements alike. Run with
// `go test -fuzz=FuzzApplyDeltaEquivalence ./internal/differential`.
func FuzzApplyDeltaEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(60))
	f.Add(int64(9), uint8(4), uint8(1))
	f.Add(int64(-7), uint8(200), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, lRaw, stepsRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		d := model.MustNew(topology.MustFatTree(4, nil), model.Options{})
		hosts := d.Hosts()
		l := 1 + int(lRaw)%40
		w := workload.MustPairsClustered(d.Topo, l, 1+int(lRaw)%4, workload.DefaultIntraRack, rng)
		c := d.NewWorkloadCache(w)

		steps := 1 + int(stepsRaw)
		for s := 0; s < steps; s++ {
			var i int
			switch rng.Intn(3) {
			case 0:
				i = rng.Intn(len(c.Aggregated()))
			case 1:
				i = c.EnsurePair(hosts[rng.Intn(len(hosts))], hosts[rng.Intn(len(hosts))])
			default:
				i = rng.Intn(len(c.Aggregated()))
				c.ApplyDelta(i, 0) // drop, then maybe resurrect below
			}
			c.ApplyDelta(i, rng.Float64()*1000)
		}

		fresh := d.NewWorkloadCache(c.Aggregated())
		closeRel := func(a, b float64) bool {
			scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
			return math.Abs(a-b) <= 1e-9*scale
		}
		if !closeRel(c.TotalRate(), fresh.TotalRate()) {
			t.Fatalf("seed=%d: TotalRate %v != rebuilt %v", seed, c.TotalRate(), fresh.TotalRate())
		}
		if !closeRel(c.CommCost(nil), fresh.CommCost(nil)) {
			t.Fatalf("seed=%d: direct %v != rebuilt %v", seed, c.CommCost(nil), fresh.CommCost(nil))
		}
		in, eg := c.EndpointCosts()
		inF, egF := fresh.EndpointCosts()
		for v := range in {
			if !closeRel(in[v], inF[v]) || !closeRel(eg[v], egF[v]) {
				t.Fatalf("seed=%d: endpoint vectors diverge at vertex %d: (%v,%v) vs (%v,%v)",
					seed, v, in[v], eg[v], inF[v], egF[v])
			}
		}
		sw := d.Switches()
		for trial := 0; trial < 10; trial++ {
			n := 1 + rng.Intn(4)
			perm := rng.Perm(len(sw))
			p := make(model.Placement, n)
			for j := range p {
				p[j] = sw[perm[j]]
			}
			if got, want := c.CommCost(p), fresh.CommCost(p); !closeRel(got, want) {
				t.Fatalf("seed=%d: C_a(%v) = %v, rebuilt %v", seed, p, got, want)
			}
		}
	})
}
