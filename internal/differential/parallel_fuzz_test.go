package differential

import (
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// parallelScenario builds the mesh or fat-tree instance the parallel
// identity checks run on. Instances stay small because the searches run
// unbudgeted: the bit-identity guarantee only covers completed searches.
func parallelScenario(t testing.TB, seed int64, mesh bool, capacity2 bool, n int) (*model.PPDC, model.Workload, model.Workload, model.SFC) {
	rng := rand.New(rand.NewSource(seed))
	var topo *topology.Topology
	if mesh {
		var err error
		// Wide-spread weights make the bound prune poorly — the regime
		// where the parallel fan-out actually explores many subtrees.
		topo, err = topology.RandomMesh(10+int(seed&3), 6, 16, topology.UniformDelay(5, 4.9, rng), rng)
		if err != nil {
			t.Skip("mesh generation failed:", err)
		}
	} else {
		topo = topology.MustFatTree(4, nil)
	}
	opts := model.Options{SwitchCapacity: 1}
	if capacity2 {
		opts.SwitchCapacity = 2
	}
	d := model.MustNew(topo, opts)
	l := 4 + int((seed%5+5)%5)
	w1 := workload.MustPairsClustered(d.Topo, l, 3, workload.DefaultIntraRack, rng)
	w2 := w1.WithRates(workload.Rates(len(w1), rng))
	return d, w1, w2, model.NewSFC(n)
}

// TestParallelIdentity pins the tentpole guarantee on fixed scenarios at
// several worker counts; `make race` runs it under the race detector,
// which doubles as the data-race proof for the shared incumbent.
func TestParallelIdentity(t *testing.T) {
	for _, tc := range []struct {
		name      string
		seed      int64
		mesh      bool
		capacity2 bool
		n         int
	}{
		{"fat-tree-n3", 1, false, false, 3},
		{"fat-tree-n4-cap2", 2, false, true, 4},
		{"mesh-n3", 3, true, false, 3},
		{"mesh-n4", 5, true, false, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, w1, w2, sfc := parallelScenario(t, tc.seed, tc.mesh, tc.capacity2, tc.n)
			for _, workers := range []int{2, 4, 8} {
				if err := RunParallelIdentity(d, w1, w2, sfc, 500, workers); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// FuzzParallelKernel fuzzes the parallel-vs-sequential identity across
// random mesh and fat-tree instances, worker counts, and capacities.
// Any counterexample is a real kernel bug: completed searches must
// agree bitwise. Run with `go test -fuzz=FuzzParallelKernel
// ./internal/differential`.
func FuzzParallelKernel(f *testing.F) {
	f.Add(int64(1), false, false, uint8(3), uint8(2))
	f.Add(int64(7), true, false, uint8(4), uint8(8))
	f.Add(int64(-3), true, true, uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, mesh, capacity2 bool, nRaw, workersRaw uint8) {
		n := 3 + int(nRaw)%2
		workers := 2 + int(workersRaw)%7
		d, w1, w2, sfc := parallelScenario(t, seed, mesh, capacity2, n)
		if err := RunParallelIdentity(d, w1, w2, sfc, 500, workers); err != nil {
			t.Fatalf("seed=%d mesh=%v cap2=%v n=%d workers=%d: %v", seed, mesh, capacity2, n, workers, err)
		}
	})
}
