package differential

import (
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// FuzzDifferential drives the full cross-solver invariant web from fuzzed
// scenario parameters. Any counterexample it finds is a genuine
// correctness bug in one of the solvers (not a flaky tolerance): the
// invariants are all ≤/≥ relations against proven optima or stay-put
// references. Run with `go test -fuzz=FuzzDifferential
// ./internal/differential`.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), uint16(500), false)
	f.Add(int64(9), uint8(20), uint8(2), uint16(0), true)
	f.Add(int64(-4), uint8(6), uint8(4), uint16(3000), false)
	f.Fuzz(func(t *testing.T, seed int64, lRaw, nRaw uint8, muRaw uint16, capacity2 bool) {
		rng := rand.New(rand.NewSource(seed))
		opts := model.Options{}
		if capacity2 {
			opts.SwitchCapacity = 2
		}
		d := model.MustNew(topology.MustFatTree(4, nil), opts)
		l := 2 + int(lRaw)%20
		n := 2 + int(nRaw)%3
		w1 := workload.MustPairsClustered(d.Topo, l, 2+int(lRaw)%4, workload.DefaultIntraRack, rng)
		w2 := w1.WithRates(workload.Rates(len(w1), rng))
		if _, err := Run(d, w1, w2, model.NewSFC(n), Options{Mu: float64(muRaw), NodeBudget: 150_000}); err != nil {
			t.Fatalf("seed=%d l=%d n=%d mu=%d cap2=%v: %v", seed, l, n, muRaw, capacity2, err)
		}
	})
}
