package differential

import (
	"fmt"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/stroll"
)

// RunParallelIdentity cross-checks the parallel branch-and-bound kernel
// against its sequential oracle on one scenario: placement.Optimal,
// migration.Exhaustive, and the stroll exhaustive solver are each run
// sequentially and at the given worker count, and every divergence in
// (cost, placement/walk, proven) is an error. Costs are compared with
// == — the parallel kernel accumulates floats in the sequential
// association order, so completed searches must agree bitwise, not
// approximately. Searches run unbudgeted (identity is only guaranteed
// for completed searches), so callers keep instances small.
func RunParallelIdentity(d *model.PPDC, w1, w2 model.Workload, sfc model.SFC, mu float64, workers int) error {
	// --- TOP: placement.Optimal ------------------------------------
	seqP, seqC, seqProven, err := (placement.Optimal{Seed: placement.DP{}}).PlaceProven(d, w1, sfc)
	if err != nil {
		return fmt.Errorf("parallel-identity: sequential Optimal: %w", err)
	}
	parP, parC, parProven, err := (placement.Optimal{Seed: placement.DP{}, Workers: workers}).PlaceProven(d, w1, sfc)
	if err != nil {
		return fmt.Errorf("parallel-identity: Optimal workers=%d: %w", workers, err)
	}
	if parC != seqC || parProven != seqProven || !parP.Equal(seqP) {
		return fmt.Errorf("parallel-identity: Optimal workers=%d diverged: (%v,%v,%v) vs sequential (%v,%v,%v)",
			workers, parP, parC, parProven, seqP, seqC, seqProven)
	}

	// --- TOM: migration.Exhaustive ---------------------------------
	pInit, _, err := (placement.DP{}).Place(d, w1, sfc)
	if err != nil {
		return fmt.Errorf("parallel-identity: DP initial: %w", err)
	}
	seqM, seqCt, seqProvenM, err := (migration.Exhaustive{Seed: migration.MPareto{}}).MigrateProven(d, w2, sfc, pInit, mu)
	if err != nil {
		return fmt.Errorf("parallel-identity: sequential Exhaustive: %w", err)
	}
	parM, parCt, parProvenM, err := (migration.Exhaustive{Seed: migration.MPareto{}, Workers: workers}).MigrateProven(d, w2, sfc, pInit, mu)
	if err != nil {
		return fmt.Errorf("parallel-identity: Exhaustive workers=%d: %w", workers, err)
	}
	if parCt != seqCt || parProvenM != seqProvenM || !parM.Equal(seqM) {
		return fmt.Errorf("parallel-identity: Exhaustive workers=%d diverged: (%v,%v,%v) vs sequential (%v,%v,%v)",
			workers, parM, parCt, parProvenM, seqM, seqCt, seqProvenM)
	}

	// --- stroll: exhaustive n-stroll over the switch closure --------
	sw := d.Topo.Switches
	if n := len(sw) - 2; n >= 1 {
		in := stroll.Instance{
			Cost: d.APSP.CostMatrix(sw),
			S:    0,
			T:    len(sw) - 1,
			N:    min(sfc.Len(), n),
		}
		seqR, err := stroll.Exhaustive(in, stroll.ExhaustiveOptions{})
		if err != nil {
			return fmt.Errorf("parallel-identity: sequential stroll: %w", err)
		}
		parR, err := stroll.Exhaustive(in, stroll.ExhaustiveOptions{Workers: workers})
		if err != nil {
			return fmt.Errorf("parallel-identity: stroll workers=%d: %w", workers, err)
		}
		if parR.Cost != seqR.Cost || parR.Optimal != seqR.Optimal || !equalInts(parR.Walk, seqR.Walk) {
			return fmt.Errorf("parallel-identity: stroll workers=%d diverged: (%v,%v,%v) vs sequential (%v,%v,%v)",
				workers, parR.Walk, parR.Cost, parR.Optimal, seqR.Walk, seqR.Cost, seqR.Optimal)
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
