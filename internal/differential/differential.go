// Package differential cross-checks every solver in the library against
// every other on one scenario — the invariant web that must hold no
// matter the topology, workload, or parameters:
//
//	TOP:  Optimal ≤ DP ≤ {Steering, Greedy};  Anneal ≤ DP;
//	      every placement validates (capacity, switch-only).
//	TOM:  Exhaustive ≤ {mPareto, LayeredDP, surrogate} ≤ NoMigration;
//	      LayeredDP's unconstrained bound ≤ Exhaustive;
//	      every reported C_t matches the model evaluation.
//	Kernels: the aggregated workload cost cache ≡ the scalar cost oracle
//	      on every placement any solver produces, across the w1 → w2
//	      rate-shift rebuild (see also FuzzCostCacheEquivalence).
//
// One call = one differential test case; the integration test and the
// fuzz harness both drive it.
package differential

import (
	"fmt"
	"math"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
)

// Report summarizes one differential run.
type Report struct {
	// PlacementCosts maps solver name to C_a.
	PlacementCosts map[string]float64
	// MigrationCosts maps migrator name to C_t.
	MigrationCosts map[string]float64
	// OptimalProven reports whether the exhaustive searches completed.
	OptimalProven bool
}

// Options tunes the run.
type Options struct {
	// NodeBudget caps the exhaustive searches (0 = unlimited — small
	// scenarios only).
	NodeBudget int
	// Mu is the migration coefficient for the TOM half.
	Mu float64
}

const tol = 1e-6

// closeRel is the reassociation-tolerance equivalence for the aggregated
// cost cache: it sums the same terms as the scalar oracle in a different
// order, so agreement is to ULP-accumulation scale, not exact.
func closeRel(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// Run executes the full cross-check. w1 drives placement; w2 (the
// shifted rates) drives migration. It returns an error naming the first
// violated invariant.
func Run(d *model.PPDC, w1, w2 model.Workload, sfc model.SFC, opts Options) (*Report, error) {
	rep := &Report{
		PlacementCosts: map[string]float64{},
		MigrationCosts: map[string]float64{},
		OptimalProven:  true,
	}

	// --- cost-kernel equivalence ------------------------------------
	// The aggregated workload cache must agree with the scalar cost
	// oracle on every placement any solver produces below; checkCache is
	// woven into both halves.
	cache1 := d.NewWorkloadCache(w1)
	checkCache := func(cache *model.WorkloadCache, w model.Workload, p model.Placement, who string) error {
		scalar := d.CommCost(w, p)
		if got := cache.CommCost(p); !closeRel(got, scalar) {
			return fmt.Errorf("differential: aggregated C_a %v diverges from scalar %v on %s placement %v",
				got, scalar, who, p)
		}
		return nil
	}

	// --- TOP ---------------------------------------------------------
	solvers := []placement.Solver{
		placement.DP{},
		placement.Steering{},
		placement.Greedy{},
		placement.Anneal{Iterations: 3000},
	}
	for _, s := range solvers {
		p, c, err := s.Place(d, w1, sfc)
		if err != nil {
			return nil, fmt.Errorf("differential: %s: %w", s.Name(), err)
		}
		if err := p.Validate(d, sfc); err != nil {
			return nil, fmt.Errorf("differential: %s placement invalid: %w", s.Name(), err)
		}
		if got := d.CommCost(w1, p); got > c+tol || got < c-tol {
			return nil, fmt.Errorf("differential: %s reported %v but evaluates to %v", s.Name(), c, got)
		}
		if err := checkCache(cache1, w1, p, s.Name()); err != nil {
			return nil, err
		}
		rep.PlacementCosts[s.Name()] = c
	}
	opt := placement.Optimal{NodeBudget: opts.NodeBudget, Seed: placement.DP{}}
	pOpt, cOpt, proven, err := opt.PlaceProven(d, w1, sfc)
	if err != nil {
		return nil, fmt.Errorf("differential: Optimal: %w", err)
	}
	if err := pOpt.Validate(d, sfc); err != nil {
		return nil, fmt.Errorf("differential: Optimal placement invalid: %w", err)
	}
	rep.PlacementCosts["Optimal"] = cOpt
	rep.OptimalProven = proven
	for name, c := range rep.PlacementCosts {
		if c < cOpt-tol {
			return nil, fmt.Errorf("differential: %s cost %v below Optimal %v", name, c, cOpt)
		}
	}
	if rep.PlacementCosts["Anneal"] > rep.PlacementCosts["DP"]+tol {
		return nil, fmt.Errorf("differential: Anneal %v worse than its DP seed %v",
			rep.PlacementCosts["Anneal"], rep.PlacementCosts["DP"])
	}

	// --- TOM ---------------------------------------------------------
	pInit, _, err := (placement.DP{}).Place(d, w1, sfc)
	if err != nil {
		return nil, err
	}
	stay := d.CommCost(w2, pInit)
	// Rate shift w1 → w2 goes through the cache's invalidation hook, so
	// the TOM half also exercises the dynamic-rates rebuild path.
	cache1.SetWorkload(w2)
	if err := checkCache(cache1, w2, pInit, "post-rate-shift initial"); err != nil {
		return nil, err
	}
	migs := []migration.Migrator{
		migration.MPareto{},
		migration.LayeredDP{},
		migration.OptimalSurrogate(),
		migration.NoMigration{},
		migration.Triggered{Inner: migration.MPareto{}, Hysteresis: 1},
	}
	for _, mg := range migs {
		m, ct, err := mg.Migrate(d, w2, sfc, pInit, opts.Mu)
		if err != nil {
			return nil, fmt.Errorf("differential: %s: %w", mg.Name(), err)
		}
		if err := m.Validate(d, sfc); err != nil {
			return nil, fmt.Errorf("differential: %s target invalid: %w", mg.Name(), err)
		}
		if got := d.TotalCost(w2, pInit, m, opts.Mu); got > ct+tol || got < ct-tol {
			return nil, fmt.Errorf("differential: %s reported C_t %v but evaluates to %v", mg.Name(), ct, got)
		}
		if err := checkCache(cache1, w2, m, mg.Name()); err != nil {
			return nil, err
		}
		if ct > stay+tol && mg.Name() != "NoMigration" {
			return nil, fmt.Errorf("differential: %s C_t %v worse than staying %v", mg.Name(), ct, stay)
		}
		rep.MigrationCosts[mg.Name()] = ct
	}
	mOpt := migration.Exhaustive{NodeBudget: opts.NodeBudget, Seed: migration.MPareto{}}
	_, ctOpt, provenM, err := mOpt.MigrateProven(d, w2, sfc, pInit, opts.Mu)
	if err != nil {
		return nil, fmt.Errorf("differential: %s: %w", mOpt.Name(), err)
	}
	rep.MigrationCosts[mOpt.Name()] = ctOpt
	rep.OptimalProven = rep.OptimalProven && provenM
	for name, ct := range rep.MigrationCosts {
		if ct < ctOpt-tol {
			return nil, fmt.Errorf("differential: %s C_t %v below Exhaustive %v", name, ct, ctOpt)
		}
	}
	// LayeredDP's unconstrained value lower-bounds the optimum.
	if _, bound, err := (migration.LayeredDP{}).MigrateBound(d, w2, sfc, pInit, opts.Mu); err == nil {
		if provenM && bound > ctOpt+tol {
			return nil, fmt.Errorf("differential: LayeredDP bound %v above proven optimum %v", bound, ctOpt)
		}
	}
	return rep, nil
}
