package ilp

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/stroll"
	"vnfopt/internal/topology"
)

// fig4 builds the paper's Fig. 4(a) graph (see stroll tests):
// 0=s, 1=A, 2=B, 3=C, 4=D, 5=t.
func fig4() *TOP1 {
	g := graph.New(6)
	g.AddEdge(0, 1, 3) // s-A
	g.AddEdge(1, 2, 2) // A-B
	g.AddEdge(2, 5, 2) // B-t
	g.AddEdge(0, 4, 2) // s-D
	g.AddEdge(4, 5, 2) // D-t
	g.AddEdge(3, 5, 1) // C-t
	return &TOP1{G: g, S: 0, T: 5, N: 2, Lambda: 1, Switches: []int{1, 2, 3, 4}}
}

func TestFig4ILPIsPathBound(t *testing.T) {
	// The paper's Discussions point, executable: the ILP counts each
	// edge once, so it must take the path s,A,B,t of cost 7, while the
	// true optimal 2-stroll is the walk of cost 6.
	p := fig4()
	a, cost, err := p.SolveBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 7 {
		t.Fatalf("ILP optimum = %v, want 7 (path s,A,B,t)", cost)
	}
	if !a.X[1] || !a.X[2] {
		t.Fatalf("ILP should select switches A and B, got %v", a.X)
	}
	// Walk-based optimum is 6 — strictly better than the ILP's path.
	apsp := graph.AllPairs(p.G)
	keep := []int{0, 1, 2, 3, 4, 5}
	res, err := stroll.Exhaustive(stroll.Instance{Cost: apsp.CostMatrix(keep), S: 0, T: 5, N: 2}, stroll.ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 6 {
		t.Fatalf("stroll optimum = %v, want 6", res.Cost)
	}
	if cost <= res.Cost {
		t.Fatalf("expected ILP %v > walk optimum %v", cost, res.Cost)
	}
}

func TestFeasibleChecksConstraints(t *testing.T) {
	p := fig4()
	edges := p.G.Edges()
	idx := func(u, v int) int {
		for i, e := range edges {
			if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
				return i
			}
		}
		t.Fatalf("edge (%d,%d) missing", u, v)
		return -1
	}
	// The s,A,B,t path with x_A = x_B = 1 is feasible.
	good := Assignment{
		X: map[int]bool{1: true, 2: true},
		Y: map[int]bool{idx(0, 1): true, idx(1, 2): true, idx(2, 5): true},
	}
	if err := p.Feasible(good); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	// Dropping an edge breaks connectivity (constraint 5).
	disconnected := Assignment{
		X: good.X,
		Y: map[int]bool{idx(0, 1): true, idx(1, 2): true},
	}
	if err := p.Feasible(disconnected); err == nil {
		t.Fatal("disconnected selection accepted")
	}
	// Selecting a leaf-ish switch violates constraint 6: C has one
	// selected incident edge only.
	leafy := Assignment{
		X: map[int]bool{3: true, 4: true},
		Y: map[int]bool{idx(0, 4): true, idx(4, 5): true, idx(3, 5): true},
	}
	if err := p.Feasible(leafy); err == nil {
		t.Fatal("degree-1 selected switch accepted (constraint 6)")
	}
	// Too few selected switches (constraint 7).
	short := Assignment{
		X: map[int]bool{1: true},
		Y: good.Y,
	}
	if err := p.Feasible(short); err == nil {
		t.Fatal("n unmet accepted (constraint 7)")
	}
}

func TestObjective(t *testing.T) {
	p := fig4()
	p.Lambda = 3
	edges := p.G.Edges()
	y := map[int]bool{}
	want := 0.0
	for i, e := range edges {
		if e.Weight == 2 {
			y[i] = true
			want += 2
		}
	}
	got := p.Objective(Assignment{Y: y})
	if math.Abs(got-3*want) > 1e-9 {
		t.Fatalf("objective %v, want %v", got, 3*want)
	}
}

func TestILPMatchesStrollOnPathOptimalInstances(t *testing.T) {
	// On random small graphs, the ILP optimum is always ≥ the walk-based
	// stroll optimum, with equality whenever the optimal stroll happens
	// to be a simple path in the original graph.
	rng := rand.New(rand.NewSource(3))
	matched := 0
	for trial := 0; trial < 12; trial++ {
		nv := 5 + rng.Intn(2)
		g := graph.New(nv)
		for v := 1; v < nv; v++ {
			g.AddEdge(rng.Intn(v), v, 1+float64(rng.Intn(9)))
		}
		for i := 0; i < 2; i++ {
			u, v := rng.Intn(nv), rng.Intn(nv)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v, 1+float64(rng.Intn(9)))
			}
		}
		var switches []int
		for v := 1; v < nv-1; v++ {
			switches = append(switches, v)
		}
		n := 1 + rng.Intn(2)
		p := &TOP1{G: g, S: 0, T: nv - 1, N: n, Lambda: 1, Switches: switches}
		_, ilpCost, err := p.SolveBruteForce()
		if err != nil {
			continue // infeasible tiny instance
		}
		apsp := graph.AllPairs(g)
		keep := make([]int, nv)
		for i := range keep {
			keep[i] = i
		}
		res, err := stroll.Exhaustive(stroll.Instance{Cost: apsp.CostMatrix(keep), S: 0, T: nv - 1, N: n}, stroll.ExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ilpCost < res.Cost-1e-9 {
			t.Fatalf("trial %d: ILP %v below walk optimum %v", trial, ilpCost, res.Cost)
		}
		if math.Abs(ilpCost-res.Cost) < 1e-9 {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("ILP never matched the stroll optimum — path-optimal instances should be common")
	}
}

func TestValidateErrors(t *testing.T) {
	p := fig4()
	p.S = p.T
	if err := p.Validate(); err == nil {
		t.Fatal("s==t accepted")
	}
	p = fig4()
	p.N = 9
	if err := p.Validate(); err == nil {
		t.Fatal("oversized n accepted")
	}
	p = fig4()
	p.Lambda = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative λ accepted")
	}
	p = fig4()
	p.Switches = append(p.Switches, p.S)
	if err := p.Validate(); err == nil {
		t.Fatal("terminal-as-switch accepted")
	}
	if err := (&TOP1{}).Validate(); err == nil {
		t.Fatal("nil graph accepted")
	}
	// Over-budget edge count.
	big := graph.New(30)
	for i := 0; i < 29; i++ {
		big.AddEdge(i, i+1, 1)
	}
	p = &TOP1{G: big, S: 0, T: 29, N: 1, Lambda: 1, Switches: []int{1}}
	if err := p.Validate(); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestInfeasibleInstance(t *testing.T) {
	// Two components: s-t unreachable.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	p := &TOP1{G: g, S: 0, T: 3, N: 0, Lambda: 1, Switches: []int{1, 2}}
	if _, _, err := p.SolveBruteForce(); err == nil {
		t.Fatal("disconnected instance solved")
	}
}

func TestFromPPDCAgainstStroll(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	f := model.VMPair{Src: ft.Hosts[0], Dst: ft.Hosts[1], Rate: 2}
	for n := 0; n <= 3; n++ {
		p, keep, err := FromPPDC(d, f, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(keep) != 7 || p.G.Size() != 6 {
			// k=2 fat tree: 2 core-agg + 2 agg-edge + 2 host links.
			t.Fatalf("induced graph: %d vertices, %d edges", len(keep), p.G.Size())
		}
		_, ilpCost, err := p.SolveBruteForce()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		apsp := graph.AllPairs(p.G)
		all := make([]int, p.G.Order())
		for i := range all {
			all[i] = i
		}
		res, err := stroll.Exhaustive(stroll.Instance{
			Cost: apsp.CostMatrix(all), S: 0, T: 1, N: n,
		}, stroll.ExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		walkCost := f.Rate * res.Cost
		if ilpCost < walkCost-1e-9 {
			t.Fatalf("n=%d: ILP %v below walk optimum %v", n, ilpCost, walkCost)
		}
	}
}

func TestFromPPDCErrors(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	if _, _, err := FromPPDC(nil, model.VMPair{}, 1); err == nil {
		t.Fatal("nil PPDC accepted")
	}
	h := ft.Hosts[0]
	if _, _, err := FromPPDC(d, model.VMPair{Src: h, Dst: h, Rate: 1}, 1); err == nil {
		t.Fatal("tour accepted")
	}
	// Larger fabrics exceed the brute-force budget by design.
	big := model.MustNew(topology.MustFatTree(4, nil), model.Options{})
	if _, _, err := FromPPDC(big, model.VMPair{Src: big.Topo.Hosts[0], Dst: big.Topo.Hosts[1], Rate: 1}, 1); err == nil {
		t.Fatal("over-budget instance accepted")
	}
}
