// Package ilp encodes the paper's primal integer linear program of TOP-1
// (Section IV, Eqs. 2–7) as executable, checkable code:
//
//	min  λ₁ · Σ_e c_e y_e                                  (2)
//	s.t. x_v ∈ {0,1}  ∀v ∈ V_s                             (3)
//	     y_e ∈ {0,1}  ∀e ∈ E                               (4)
//	     Σ_{e∈δ(U)} y_e ≥ 1      ∀U: t ∈ U, s ∉ U          (5)
//	     Σ_{e∈δ(S)} y_e ≥ 2·x_v  ∀S ⊆ V_s, ∀v ∈ S          (6)
//	     Σ_v x_v ≥ n                                       (7)
//
// Feasibility checking enumerates the cut constraints literally (the
// instance graphs here are tiny), and SolveBruteForce enumerates edge
// subsets — a ground-truth oracle for the primal-dual Algorithm 1's
// formulation.
//
// The package also demonstrates the paper's "Discussions" caveat in code:
// because every edge's weight is counted once, the ILP implicitly requires
// the stroll to be a *path*, so on instances whose optimal stroll is a
// walk (the paper's Fig. 4) the ILP optimum is strictly worse than the
// true n-stroll optimum (tested).
package ilp

import (
	"fmt"
	"math"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
)

// FromPPDC builds the TOP-1 ILP over the paper's induced graph G'
// (Theorem 1): the flow's two hosts plus every switch, keeping only the
// original PPDC edges among them. Instance vertices are renumbered
// densely; the second return value maps them back to PPDC vertices.
func FromPPDC(d *model.PPDC, f model.VMPair, n int) (*TOP1, []int, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("ilp: nil PPDC")
	}
	if f.Src == f.Dst {
		return nil, nil, fmt.Errorf("ilp: the Eq. 2-7 formulation needs distinct terminals (tours are walks)")
	}
	keep := make([]int, 0, 2+len(d.Topo.Switches))
	keep = append(keep, f.Src, f.Dst)
	keep = append(keep, d.Topo.Switches...)
	index := make(map[int]int, len(keep))
	for i, v := range keep {
		index[v] = i
	}
	g := graph.New(len(keep))
	for _, e := range d.Topo.Graph.Edges() {
		iu, okU := index[e.U]
		iv, okV := index[e.V]
		if okU && okV {
			g.AddEdge(iu, iv, e.Weight)
		}
	}
	switches := make([]int, 0, len(d.Topo.Switches))
	for i := 2; i < len(keep); i++ {
		switches = append(switches, i)
	}
	p := &TOP1{G: g, S: 0, T: 1, N: n, Lambda: f.Rate, Switches: switches}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, keep, nil
}

// TOP1 is one TOP-1 ILP instance over the induced graph
// G'(V' = V_s ∪ {s, t}, E').
type TOP1 struct {
	// G is the induced graph G' with original (not closure) edges.
	G *graph.Graph
	// S and T are the source and destination host vertices.
	S, T int
	// N is the number of VNFs to place.
	N int
	// Lambda is the flow's traffic rate λ₁.
	Lambda float64
	// Switches lists the V_s vertices (every other vertex of G is S/T).
	Switches []int
}

// Validate checks instance sanity and that exhaustive enumeration is
// affordable (the ILP oracle is a small-instance ground truth by design).
func (p *TOP1) Validate() error {
	if p.G == nil {
		return fmt.Errorf("ilp: nil graph")
	}
	nv := p.G.Order()
	if p.S < 0 || p.S >= nv || p.T < 0 || p.T >= nv || p.S == p.T {
		return fmt.Errorf("ilp: bad terminals (%d,%d)", p.S, p.T)
	}
	if p.N < 0 || p.N > len(p.Switches) {
		return fmt.Errorf("ilp: n=%d outside [0,%d]", p.N, len(p.Switches))
	}
	if p.Lambda < 0 {
		return fmt.Errorf("ilp: negative λ %v", p.Lambda)
	}
	for _, v := range p.Switches {
		if v == p.S || v == p.T {
			return fmt.Errorf("ilp: terminal %d listed as switch", v)
		}
	}
	if p.G.Size() > 22 {
		return fmt.Errorf("ilp: %d edges exceed the brute-force oracle's budget (22)", p.G.Size())
	}
	return nil
}

// Assignment is one 0-1 setting of the decision variables.
type Assignment struct {
	// X[v] is x_v for switch vertices.
	X map[int]bool
	// Y[i] is y_e for edge index i into G.Edges().
	Y map[int]bool
}

// Objective evaluates Eq. 2.
func (p *TOP1) Objective(a Assignment) float64 {
	edges := p.G.Edges()
	sum := 0.0
	for i, on := range a.Y {
		if on {
			sum += edges[i].Weight
		}
	}
	return p.Lambda * sum
}

// selectedCut counts selected edges with exactly one endpoint in the
// member set.
func selectedCut(edges []graph.EdgeRecord, y map[int]bool, member map[int]bool) int {
	c := 0
	for i, e := range edges {
		if y[i] && member[e.U] != member[e.V] {
			c++
		}
	}
	return c
}

// Feasible checks constraints 5–7 by literal cut enumeration. It returns
// nil when the assignment satisfies the ILP.
func (p *TOP1) Feasible(a Assignment) error {
	edges := p.G.Edges()
	nv := p.G.Order()
	all := make([]int, nv)
	for i := range all {
		all[i] = i
	}

	// Constraint 7.
	count := 0
	for _, v := range p.Switches {
		if a.X[v] {
			count++
		}
	}
	if count < p.N {
		return fmt.Errorf("ilp: constraint 7 violated: %d selected switches < n=%d", count, p.N)
	}

	// Constraint 5: every U containing t but not s crosses ≥ 1 selected
	// edge. Enumerate subsets of V \ {s,t} joined with {t}.
	others := make([]int, 0, nv-2)
	for v := 0; v < nv; v++ {
		if v != p.S && v != p.T {
			others = append(others, v)
		}
	}
	for mask := 0; mask < 1<<len(others); mask++ {
		member := map[int]bool{p.T: true}
		for b, v := range others {
			if mask&(1<<b) != 0 {
				member[v] = true
			}
		}
		if selectedCut(edges, a.Y, member) < 1 {
			return fmt.Errorf("ilp: constraint 5 violated for a cut of size %d", len(member))
		}
	}

	// Constraint 6: every S ⊆ V_s and v ∈ S with x_v = 1 needs ≥ 2
	// selected crossing edges.
	for mask := 1; mask < 1<<len(p.Switches); mask++ {
		member := map[int]bool{}
		hasSelected := false
		for b, v := range p.Switches {
			if mask&(1<<b) != 0 {
				member[v] = true
				if a.X[v] {
					hasSelected = true
				}
			}
		}
		if !hasSelected {
			continue
		}
		if selectedCut(edges, a.Y, member) < 2 {
			return fmt.Errorf("ilp: constraint 6 violated for a switch set of size %d", len(member))
		}
	}
	return nil
}

// maxEligibleX returns the maximal x consistent with constraint 6 for a
// fixed y: x_v can be 1 only if every V_s-subset containing v crosses ≥ 2
// selected edges. For minimization only y carries cost, so maximal x is
// the right completion.
func (p *TOP1) maxEligibleX(y map[int]bool) map[int]bool {
	edges := p.G.Edges()
	x := map[int]bool{}
	for _, v := range p.Switches {
		eligible := true
		// v is eligible iff min over subsets S ∋ v of the selected cut is
		// ≥ 2. Enumerate subsets of V_s containing v.
		rest := make([]int, 0, len(p.Switches)-1)
		for _, u := range p.Switches {
			if u != v {
				rest = append(rest, u)
			}
		}
		for mask := 0; mask < 1<<len(rest) && eligible; mask++ {
			member := map[int]bool{v: true}
			for b, u := range rest {
				if mask&(1<<b) != 0 {
					member[u] = true
				}
			}
			if selectedCut(edges, y, member) < 2 {
				eligible = false
			}
		}
		if eligible {
			x[v] = true
		}
	}
	return x
}

// SolveBruteForce enumerates all edge subsets and returns the optimal
// feasible assignment, or an error when the instance is infeasible.
func (p *TOP1) SolveBruteForce() (Assignment, float64, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, 0, err
	}
	edges := p.G.Edges()
	best := Assignment{}
	bestCost := math.Inf(1)
	for mask := 0; mask < 1<<len(edges); mask++ {
		y := map[int]bool{}
		cost := 0.0
		for i := range edges {
			if mask&(1<<i) != 0 {
				y[i] = true
				cost += edges[i].Weight
			}
		}
		cost *= p.Lambda
		if cost >= bestCost {
			continue
		}
		a := Assignment{X: p.maxEligibleX(y), Y: y}
		if err := p.Feasible(a); err != nil {
			continue
		}
		best = a
		bestCost = cost
	}
	if math.IsInf(bestCost, 1) {
		return Assignment{}, 0, fmt.Errorf("ilp: infeasible instance")
	}
	return best, bestCost, nil
}
