package sim

import (
	"math"
	"testing"

	"vnfopt/internal/engine"
	"vnfopt/internal/migration"
)

// legacyRunVNF is the pre-engine hourly loop, kept verbatim as the
// refactor oracle: migrator consulted every hour, hour cost = the
// migrator-reported C_t.
func legacyRunVNF(s *Simulator, mig migration.Migrator) (*Trace, error) {
	tr := &Trace{Strategy: mig.Name(), Initial: s.Initial()}
	p := s.p0.Clone()
	for h := range s.hours {
		w := s.hours[h]
		m, ct, err := mig.Migrate(s.cfg.PPDC, w, s.cfg.SFC, p, s.cfg.Mu)
		if err != nil {
			return nil, err
		}
		step := Step{
			Hour:        h + 1,
			Cost:        ct,
			Moves:       migration.MigrationCount(p, m),
			MeanLatency: s.meanLatency(w, m),
		}
		if err := s.track(&step, w, p, m); err != nil {
			return nil, err
		}
		tr.record(step)
		p = m
	}
	tr.Final = p
	return tr, nil
}

// TestEngineReproducesLegacyLoopBitForBit: on the seeded k=4 fat-tree
// burst scenario, the engine-driven RunVNF yields the *identical* hourly
// cost trajectory, move counts, and placements as the pre-refactor loop —
// no tolerance. The engine feeds the migrator the same workload values
// and placements hour by hour, so every float on the reported path is the
// same computation.
func TestEngineReproducesLegacyLoopBitForBit(t *testing.T) {
	for _, mig := range []migration.Migrator{migration.MPareto{}, migration.LayeredDP{}, migration.NoMigration{}} {
		s := scenario(t, false)
		want, err := legacyRunVNF(s, mig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.RunVNF(mig)
		if err != nil {
			t.Fatal(err)
		}
		if got.Strategy != want.Strategy {
			t.Fatalf("strategy %q != legacy %q", got.Strategy, want.Strategy)
		}
		if len(got.Steps) != len(want.Steps) {
			t.Fatalf("%s: %d steps != legacy %d", mig.Name(), len(got.Steps), len(want.Steps))
		}
		for h := range want.Steps {
			g, w := got.Steps[h], want.Steps[h]
			if g.Cost != w.Cost {
				t.Fatalf("%s hour %d: cost %v != legacy %v", mig.Name(), h+1, g.Cost, w.Cost)
			}
			if g.Moves != w.Moves {
				t.Fatalf("%s hour %d: moves %d != legacy %d", mig.Name(), h+1, g.Moves, w.Moves)
			}
			if g.MeanLatency != w.MeanLatency {
				t.Fatalf("%s hour %d: latency %v != legacy %v", mig.Name(), h+1, g.MeanLatency, w.MeanLatency)
			}
		}
		if got.Total != want.Total || got.TotalMoves != want.TotalMoves {
			t.Fatalf("%s totals (%v,%d) != legacy (%v,%d)",
				mig.Name(), got.Total, got.TotalMoves, want.Total, want.TotalMoves)
		}
		if !got.Final.Equal(want.Final) || !got.Initial.Equal(want.Initial) {
			t.Fatalf("%s placements diverged from legacy", mig.Name())
		}
	}
}

// TestEngineReproducesLegacyWithLinkTracking repeats the check with
// per-hour link reports on, covering the track path's placement
// threading. Per-link loads and their max are deterministic; Total and
// Mean sum a map in iteration order, so those two fields are compared to
// reassociation tolerance rather than bit-for-bit (two legacy runs
// already differ there).
func TestEngineReproducesLegacyWithLinkTracking(t *testing.T) {
	s := scenario(t, true)
	want, err := legacyRunVNF(s, migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunVNF(migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	if got.PeakLink != want.PeakLink {
		t.Fatalf("peak link %v != legacy %v", got.PeakLink, want.PeakLink)
	}
	closeRel := func(a, b float64) bool {
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(a-b) <= 1e-9*scale
	}
	for h := range want.Steps {
		g, w := got.Steps[h].Links, want.Steps[h].Links
		if g.Links != w.Links || g.Max != w.Max || g.P99 != w.P99 {
			t.Fatalf("hour %d link report diverged: %+v vs %+v", h+1, g, w)
		}
		if !closeRel(g.Total, w.Total) || !closeRel(g.Mean, w.Mean) {
			t.Fatalf("hour %d link totals diverged: %+v vs %+v", h+1, g, w)
		}
	}
}

// TestRunEngineDriftPolicy: a hysteresis policy produces a valid trace
// that migrates less often than the always policy and never beats it by
// more than the stability trade allows on this scenario.
func TestRunEngineDriftPolicy(t *testing.T) {
	s := scenario(t, false)
	always, err := s.RunVNF(migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	drift, err := s.RunEngine(migration.MPareto{}, engine.Policy{Hysteresis: 1.1, Cooldown: 1})
	if err != nil {
		t.Fatal(err)
	}
	if drift.TotalMoves >= always.TotalMoves {
		t.Fatalf("drift moved %d, always moved %d", drift.TotalMoves, always.TotalMoves)
	}
	if drift.TotalMoves == 0 {
		t.Fatal("drift policy never migrated on the burst schedule")
	}
	frozen, err := s.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	if drift.Total > frozen.Total*1.0001 {
		t.Fatalf("drift total %v worse than frozen %v", drift.Total, frozen.Total)
	}
}
