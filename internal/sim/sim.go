// Package sim is the dynamic-PPDC simulator behind the Fig. 11
// experiments and the examples: it drives an hourly rate schedule through
// a PPDC and lets strategies react — TOM migrators moving VNFs, VM
// baselines moving endpoints, or nothing — while recording costs,
// migration counts, and (optionally) per-link load peaks.
//
// The simulator realizes the paper's framework lifecycle: TOP computes the
// initial placement at the first active hour, then the chosen TOM policy
// executes periodically "to optimize a PPDC's network resource in the face
// of dynamic VM traffic". The VNF runs are driven through the online
// placement engine (internal/engine) — one epoch per hour — so the batch
// figures and the vnfoptd control plane exercise a single code path;
// RunEngine exposes the engine's drift/cooldown/budget policy for offline
// replays of online configurations.
package sim

import (
	"fmt"

	"vnfopt/internal/engine"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/routing"
	"vnfopt/internal/vmmig"
)

// Config describes one simulation scenario.
type Config struct {
	// PPDC is the fabric.
	PPDC *model.PPDC
	// SFC is the chain every flow traverses.
	SFC model.SFC
	// Base provides the flow endpoints; its rates are ignored.
	Base model.Workload
	// Schedule[h][i] is flow i's rate in hour h+1 (e.g. from
	// workload.BurstModel.Schedule).
	Schedule [][]float64
	// Mu is the migration coefficient.
	Mu float64
	// HourVolume scales rates into hourly traffic volumes (≤ 0 = 1).
	HourVolume float64
	// Placer computes the initial placement (nil = Algorithm 3).
	Placer placement.Solver
	// TrackLinks enables per-hour link-load reports (costs one routing
	// pass per hour).
	TrackLinks bool
	// Observer, when non-nil, instruments the engine-driven runs
	// (RunVNF/RunEngine): epoch latencies, drift, migration and cache
	// counters flow into its registry. Nil disables instrumentation.
	Observer *engine.Observer
}

// Step is one simulated hour's outcome.
type Step struct {
	// Hour is 1-based.
	Hour int
	// Cost is the hour's total cost (migration performed this hour plus
	// communication).
	Cost float64
	// Moves is the number of migrations performed this hour.
	Moves int
	// MeanLatency is the traffic-weighted mean policy-preserving path
	// cost of the hour (communication cost per unit of traffic) — the
	// latency proxy of the paper's weighted PPDCs. Zero in silent hours.
	MeanLatency float64
	// Links summarizes the hour's link loads (zero value unless
	// Config.TrackLinks).
	Links routing.Report
}

// Trace is a full simulation run.
type Trace struct {
	// Strategy names the policy that produced the trace.
	Strategy string
	// Initial is the TOP placement the run started from.
	Initial model.Placement
	// Final is the placement after the last hour (Initial for VM
	// strategies and NoMigration).
	Final model.Placement
	// Steps holds one entry per hour.
	Steps []Step
	// Total is the summed hourly cost.
	Total float64
	// TotalMoves is the summed migration count.
	TotalMoves int
	// PeakLink is the maximum per-link load seen over the run (only with
	// Config.TrackLinks).
	PeakLink float64
}

// Simulator is a validated, immutable scenario; each Run* walks the same
// schedule so strategies are compared on identical traffic.
type Simulator struct {
	cfg   Config
	hours []model.Workload
	p0    model.Placement
}

// New validates the scenario, materializes the hourly workloads, and
// computes the initial TOP placement.
func New(cfg Config) (*Simulator, error) {
	if cfg.PPDC == nil {
		return nil, fmt.Errorf("sim: nil PPDC")
	}
	if len(cfg.Schedule) == 0 {
		return nil, fmt.Errorf("sim: empty schedule")
	}
	if cfg.Mu < 0 {
		return nil, fmt.Errorf("sim: negative μ %v", cfg.Mu)
	}
	if err := cfg.Base.Validate(cfg.PPDC); err != nil {
		return nil, err
	}
	vol := cfg.HourVolume
	if vol <= 0 {
		vol = 1
	}
	s := &Simulator{cfg: cfg}
	for h, rates := range cfg.Schedule {
		if len(rates) != len(cfg.Base) {
			return nil, fmt.Errorf("sim: schedule hour %d has %d rates for %d flows", h+1, len(rates), len(cfg.Base))
		}
		w := make(model.Workload, len(cfg.Base))
		for i, f := range cfg.Base {
			if rates[i] < 0 {
				return nil, fmt.Errorf("sim: negative rate at hour %d flow %d", h+1, i)
			}
			f.Rate = rates[i] * vol
			w[i] = f
		}
		s.hours = append(s.hours, w)
	}
	first := -1
	for h := range s.hours {
		if s.hours[h].TotalRate() > 0 {
			first = h
			break
		}
	}
	if first < 0 {
		return nil, fmt.Errorf("sim: schedule has no traffic")
	}
	placer := cfg.Placer
	if placer == nil {
		placer = placement.DP{}
	}
	p0, _, err := placer.Place(cfg.PPDC, s.hours[first], cfg.SFC)
	if err != nil {
		return nil, fmt.Errorf("sim: initial placement: %w", err)
	}
	s.p0 = p0
	return s, nil
}

// Hours returns the number of simulated hours.
func (s *Simulator) Hours() int { return len(s.hours) }

// HourWorkload returns the workload of 1-based hour h (shared storage; do
// not mutate).
func (s *Simulator) HourWorkload(h int) model.Workload { return s.hours[h-1] }

// Initial returns the TOP placement the runs start from.
func (s *Simulator) Initial() model.Placement { return s.p0.Clone() }

// meanLatency returns C_a per unit of traffic for the hour (0 if silent).
func (s *Simulator) meanLatency(w model.Workload, p model.Placement) float64 {
	total := w.TotalRate()
	if total == 0 {
		return 0
	}
	return s.cfg.PPDC.CommCost(w, p) / total
}

// track fills the step's link report when enabled.
func (s *Simulator) track(step *Step, w model.Workload, pPrev, pCur model.Placement) error {
	if !s.cfg.TrackLinks {
		return nil
	}
	loads, err := routing.LinkLoads(s.cfg.PPDC, w, pCur)
	if err != nil {
		return err
	}
	routing.AddMigrationLoads(s.cfg.PPDC, loads, pPrev, pCur, s.cfg.Mu)
	step.Links = routing.Summarize(loads)
	return nil
}

// RunVNF simulates the schedule with a TOM migrator adapting the
// placement every hour. It is RunEngine with the always-consult policy:
// the migrator runs every hour, exactly the paper's periodic TOM
// execution.
func (s *Simulator) RunVNF(mig migration.Migrator) (*Trace, error) {
	return s.RunEngine(mig, engine.Policy{})
}

// RunEngine drives the schedule through the online placement engine —
// the same control loop cmd/vnfoptd serves — one epoch per hour, under
// the given migration policy. The zero policy consults the migrator every
// hour and reproduces the pre-engine batch loop bit-for-bit; a hysteresis
// policy gives the drift-triggered behaviour of the online system, making
// offline schedule replays the reference for what the daemon should have
// done on the same stream.
func (s *Simulator) RunEngine(mig migration.Migrator, pol engine.Policy) (*Trace, error) {
	first := s.firstActive()
	eng, err := engine.New(engine.Config{
		PPDC: s.cfg.PPDC,
		SFC:  s.cfg.SFC,
		Base: s.hours[first],
		Mu:   s.cfg.Mu,
	},
		engine.WithInitial(s.p0),
		engine.WithMigrator(mig),
		engine.WithPolicy(pol),
		engine.WithObserver(s.cfg.Observer),
	)
	if err != nil {
		return nil, fmt.Errorf("sim: engine: %w", err)
	}
	tr := &Trace{Strategy: eng.MigratorName(), Initial: s.Initial()}
	p := s.p0.Clone()
	updates := make([]engine.RateUpdate, len(s.cfg.Base))
	for h := range s.hours {
		w := s.hours[h]
		for i, f := range w {
			updates[i] = engine.RateUpdate{Flow: i, Rate: f.Rate}
		}
		if _, err := eng.OfferRates(updates); err != nil {
			return nil, fmt.Errorf("sim: hour %d: %w", h+1, err)
		}
		res, err := eng.Step()
		if err != nil {
			return nil, fmt.Errorf("sim: %s hour %d: %w", eng.MigratorName(), h+1, err)
		}
		step := Step{
			Hour:        h + 1,
			Cost:        res.TotalCost,
			Moves:       res.Moves,
			MeanLatency: s.meanLatency(w, res.Placement),
		}
		if err := s.track(&step, w, p, res.Placement); err != nil {
			return nil, err
		}
		tr.record(step)
		p = res.Placement
	}
	tr.Final = p
	return tr, nil
}

// firstActive returns the index of the first hour with traffic (New
// guarantees one exists).
func (s *Simulator) firstActive() int {
	for h := range s.hours {
		if s.hours[h].TotalRate() > 0 {
			return h
		}
	}
	return 0
}

// RunVM simulates the schedule with a VM-migration baseline: VNFs stay at
// the initial placement while VM endpoints move; host moves persist.
func (s *Simulator) RunVM(mig vmmig.VMMigrator) (*Trace, error) {
	tr := &Trace{Strategy: mig.Name(), Initial: s.Initial(), Final: s.Initial()}
	hosts := make([][2]int, len(s.cfg.Base))
	for i, f := range s.cfg.Base {
		hosts[i] = [2]int{f.Src, f.Dst}
	}
	for h := range s.hours {
		w := make(model.Workload, len(s.hours[h]))
		for i, f := range s.hours[h] {
			f.Src, f.Dst = hosts[i][0], hosts[i][1]
			w[i] = f
		}
		out, total, moves, err := mig.Migrate(s.cfg.PPDC, w, s.cfg.SFC, s.p0, s.cfg.Mu)
		if err != nil {
			return nil, fmt.Errorf("sim: %s hour %d: %w", mig.Name(), h+1, err)
		}
		step := Step{Hour: h + 1, Cost: total, Moves: moves, MeanLatency: s.meanLatency(out, s.p0)}
		if err := s.track(&step, out, s.p0, s.p0); err != nil {
			return nil, err
		}
		tr.record(step)
		for i := range out {
			hosts[i] = [2]int{out[i].Src, out[i].Dst}
		}
	}
	return tr, nil
}

// RunJoint simulates the schedule with both knobs turned each hour: the
// TOM migrator first repositions the VNFs for the hour's rates, then the
// VM baseline relocates endpoints against the *updated* placement. An
// extension beyond the paper, which studies the two mechanisms separately
// (Fig. 11); the joint run bounds how much headroom remains when they
// cooperate. The hour's cost charges VNF migration + VM migration + the
// resulting communication cost; Moves counts both kinds.
func (s *Simulator) RunJoint(vnfMig migration.Migrator, vmMig vmmig.VMMigrator) (*Trace, error) {
	tr := &Trace{Strategy: vnfMig.Name() + "+" + vmMig.Name(), Initial: s.Initial()}
	p := s.p0.Clone()
	hosts := make([][2]int, len(s.cfg.Base))
	for i, f := range s.cfg.Base {
		hosts[i] = [2]int{f.Src, f.Dst}
	}
	for h := range s.hours {
		w := make(model.Workload, len(s.hours[h]))
		for i, f := range s.hours[h] {
			f.Src, f.Dst = hosts[i][0], hosts[i][1]
			w[i] = f
		}
		m, _, err := vnfMig.Migrate(s.cfg.PPDC, w, s.cfg.SFC, p, s.cfg.Mu)
		if err != nil {
			return nil, fmt.Errorf("sim: joint %s hour %d: %w", vnfMig.Name(), h+1, err)
		}
		vnfCost := s.cfg.PPDC.MigrationCost(p, m, s.cfg.Mu)
		out, vmTotal, vmMoves, err := vmMig.Migrate(s.cfg.PPDC, w, s.cfg.SFC, m, s.cfg.Mu)
		if err != nil {
			return nil, fmt.Errorf("sim: joint %s hour %d: %w", vmMig.Name(), h+1, err)
		}
		step := Step{
			Hour:        h + 1,
			Cost:        vnfCost + vmTotal, // vmTotal already includes comm cost
			Moves:       migration.MigrationCount(p, m) + vmMoves,
			MeanLatency: s.meanLatency(out, m),
		}
		if err := s.track(&step, out, p, m); err != nil {
			return nil, err
		}
		tr.record(step)
		p = m
		for i := range out {
			hosts[i] = [2]int{out[i].Src, out[i].Dst}
		}
	}
	tr.Final = p
	return tr, nil
}

// RunFrozen simulates the schedule with the placement frozen at the
// initial TOP solution (the paper's NoMigration reference).
func (s *Simulator) RunFrozen() (*Trace, error) {
	tr := &Trace{Strategy: "NoMigration", Initial: s.Initial(), Final: s.Initial()}
	for h := range s.hours {
		w := s.hours[h]
		step := Step{Hour: h + 1, Cost: s.cfg.PPDC.CommCost(w, s.p0), MeanLatency: s.meanLatency(w, s.p0)}
		if err := s.track(&step, w, s.p0, s.p0); err != nil {
			return nil, err
		}
		tr.record(step)
	}
	return tr, nil
}

// record appends a step and updates the aggregates.
func (tr *Trace) record(step Step) {
	tr.Steps = append(tr.Steps, step)
	tr.Total += step.Cost
	tr.TotalMoves += step.Moves
	if step.Links.Max > tr.PeakLink {
		tr.PeakLink = step.Links.Max
	}
}
