package sim

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/vmmig"
	"vnfopt/internal/workload"
)

func scenario(t *testing.T, trackLinks bool) *Simulator {
	t.Helper()
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(1))
	base := workload.MustPairsClustered(ft, 24, 4, workload.DefaultIntraRack, rng)
	sched, err := workload.PaperBurst().Schedule(ft, base, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		PPDC:       d,
		SFC:        model.NewSFC(3),
		Base:       base,
		Schedule:   sched,
		Mu:         1e3,
		HourVolume: 10,
		TrackLinks: trackLinks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	base := model.Workload{{Src: ft.Hosts[0], Dst: ft.Hosts[1], Rate: 1}}
	sched := [][]float64{{5}}
	ok := Config{PPDC: d, SFC: model.NewSFC(2), Base: base, Schedule: sched, Mu: 1}
	if _, err := New(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mut := range map[string]func(Config) Config{
		"nil ppdc":       func(c Config) Config { c.PPDC = nil; return c },
		"empty schedule": func(c Config) Config { c.Schedule = nil; return c },
		"negative mu":    func(c Config) Config { c.Mu = -1; return c },
		"ragged":         func(c Config) Config { c.Schedule = [][]float64{{1, 2}}; return c },
		"negative rate":  func(c Config) Config { c.Schedule = [][]float64{{-1}}; return c },
		"silent":         func(c Config) Config { c.Schedule = [][]float64{{0}}; return c },
		"bad workload": func(c Config) Config {
			c.Base = model.Workload{{Src: -1, Dst: 0, Rate: 1}}
			return c
		},
	} {
		if _, err := New(mut(ok)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunFrozenMatchesManual(t *testing.T) {
	s := scenario(t, false)
	tr, err := s.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != s.Hours() {
		t.Fatalf("steps %d, hours %d", len(tr.Steps), s.Hours())
	}
	sum := 0.0
	for h := 1; h <= s.Hours(); h++ {
		want := s.cfg.PPDC.CommCost(s.HourWorkload(h), s.Initial())
		if math.Abs(tr.Steps[h-1].Cost-want) > 1e-9 {
			t.Fatalf("hour %d cost %v != %v", h, tr.Steps[h-1].Cost, want)
		}
		sum += want
	}
	if math.Abs(tr.Total-sum) > 1e-6 || tr.TotalMoves != 0 {
		t.Fatalf("totals %v/%d", tr.Total, tr.TotalMoves)
	}
	if !tr.Final.Equal(tr.Initial) {
		t.Fatal("frozen run changed placement")
	}
}

func TestRunVNFBeatsFrozen(t *testing.T) {
	s := scenario(t, false)
	mp, err := s.RunVNF(migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := s.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	if mp.Total > frozen.Total+1e-6 {
		t.Fatalf("mPareto %v worse than frozen %v", mp.Total, frozen.Total)
	}
	if mp.Strategy != "mPareto" {
		t.Fatalf("strategy %q", mp.Strategy)
	}
	// Moves recorded consistently with the placement delta.
	if mp.TotalMoves == 0 && !mp.Final.Equal(mp.Initial) {
		t.Fatal("placement changed with zero recorded moves")
	}
}

func TestRunVMKeepsVNFsFixed(t *testing.T) {
	s := scenario(t, false)
	tr, err := s.RunVM(vmmig.PLAN{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Final.Equal(s.Initial()) {
		t.Fatal("VM strategy moved VNFs")
	}
	if len(tr.Steps) != s.Hours() {
		t.Fatalf("steps %d", len(tr.Steps))
	}
}

func TestLinkTracking(t *testing.T) {
	s := scenario(t, true)
	tr, err := s.RunVNF(migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	sawLoad := false
	for _, st := range tr.Steps {
		if st.Links.Max > 0 {
			sawLoad = true
		}
		if st.Links.Max > tr.PeakLink {
			t.Fatalf("peak link %v below hour max %v", tr.PeakLink, st.Links.Max)
		}
	}
	if !sawLoad {
		t.Fatal("no link loads recorded despite TrackLinks")
	}
	// Without tracking the reports stay zero.
	s2 := scenario(t, false)
	tr2, err := s2.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	if tr2.PeakLink != 0 {
		t.Fatal("link peak recorded without TrackLinks")
	}
}

func TestStrategiesShareIdenticalTraffic(t *testing.T) {
	s := scenario(t, false)
	a, err := s.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Steps {
		if a.Steps[i].Cost != b.Steps[i].Cost {
			t.Fatalf("hour %d differs between identical runs", i+1)
		}
	}
}

func TestMeanLatency(t *testing.T) {
	s := scenario(t, false)
	tr, err := s.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= s.Hours(); h++ {
		w := s.HourWorkload(h)
		st := tr.Steps[h-1]
		if w.TotalRate() == 0 {
			if st.MeanLatency != 0 {
				t.Fatalf("hour %d: latency %v in silent hour", h, st.MeanLatency)
			}
			continue
		}
		want := st.Cost / w.TotalRate()
		if math.Abs(st.MeanLatency-want) > 1e-9 {
			t.Fatalf("hour %d: latency %v, want %v", h, st.MeanLatency, want)
		}
		// A policy-preserving path is at least ingress+chain+egress hops.
		if st.MeanLatency < 1 {
			t.Fatalf("hour %d: implausible latency %v", h, st.MeanLatency)
		}
	}
}

func TestRunJoint(t *testing.T) {
	s := scenario(t, false)
	joint, err := s.RunJoint(migration.MPareto{}, vmmig.PLAN{})
	if err != nil {
		t.Fatal(err)
	}
	if joint.Strategy != "mPareto+PLAN" {
		t.Fatalf("strategy %q", joint.Strategy)
	}
	if len(joint.Steps) != s.Hours() {
		t.Fatalf("steps %d", len(joint.Steps))
	}
	// Joint adaptation should not lose to the pure VNF strategy on the
	// same traffic (VM moves are only taken when individually
	// profitable).
	vnfOnly, err := s.RunVNF(migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	if joint.Total > vnfOnly.Total*1.001 {
		t.Fatalf("joint %v worse than VNF-only %v", joint.Total, vnfOnly.Total)
	}
}
