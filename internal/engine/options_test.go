package engine

import (
	"testing"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/obs"
	"vnfopt/internal/placement"
)

// TestOptionsOverrideConfig: options are applied after the Config
// literal and in order, so the last writer wins.
func TestOptionsOverrideConfig(t *testing.T) {
	d, base, _ := fixture(t, 1)
	e, err := New(Config{
		PPDC:     d,
		SFC:      model.NewSFC(3),
		Base:     base,
		Mu:       1e3,
		Migrator: migration.MPareto{},
		Policy:   Policy{Hysteresis: 99},
	},
		WithMigrator(migration.LayeredDP{}),
		WithPolicy(Policy{Hysteresis: 1.2, Cooldown: 3}),
		WithPolicy(Policy{Hysteresis: 1.4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.MigratorName(); got != "LayeredDP" {
		t.Fatalf("migrator %q, want LayeredDP (option should override Config)", got)
	}
	if e.cfg.Policy.Hysteresis != 1.4 || e.cfg.Policy.Cooldown != 0 {
		t.Fatalf("policy %+v, want the last WithPolicy to win", e.cfg.Policy)
	}
}

// TestWithInitialAdoptsPlacement: WithInitial skips the placer run.
func TestWithInitialAdoptsPlacement(t *testing.T) {
	d, base, _ := fixture(t, 2)
	ref, err := New(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1e3})
	if err != nil {
		t.Fatal(err)
	}
	p0 := ref.Snapshot().Placement
	e, err := New(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1e3},
		WithInitial(p0))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Snapshot().Placement.Equal(p0) {
		t.Fatalf("initial %v, want adopted %v", e.Snapshot().Placement, p0)
	}
}

// TestWithSearchWorkers: the option reaches WorkerTunable solvers on
// both the migrator and placer sides, and leaves others untouched.
func TestWithSearchWorkers(t *testing.T) {
	d, base, _ := fixture(t, 3)
	e, err := New(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1e3},
		WithMigrator(migration.Exhaustive{NodeBudget: 10_000, Seed: migration.MPareto{}}),
		WithPlacer(placement.Optimal{NodeBudget: 10_000, Seed: placement.DP{}}),
		WithSearchWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.mig.(migration.Exhaustive).Workers; got != 4 {
		t.Fatalf("migrator workers %d, want 4", got)
	}
	if got := e.cfg.Placer.(placement.Optimal).Workers; got != 4 {
		t.Fatalf("placer workers %d, want 4", got)
	}

	// A non-tunable migrator passes through unchanged.
	e2, err := New(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1e3},
		WithMigrator(migration.NoMigration{}),
		WithSearchWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.MigratorName(); got != "NoMigration" {
		t.Fatalf("migrator %q, want NoMigration untouched", got)
	}
}

// TestWithObserverWiring: a live observer sees epochs, ingests, cache
// activity, and migration events flow through the engine.
func TestWithObserverWiring(t *testing.T) {
	r := obs.NewRegistry()
	ev := obs.NewEventLog(8)
	e, sched := newEngineOpts(t, Policy{}, 3, WithObserver(NewObserver(r, ev, "t")))
	moves := 0
	for h := 0; h < 6; h++ {
		if _, err := e.OfferRates(hourUpdates(sched[h])); err != nil {
			t.Fatal(err)
		}
		res, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		moves += res.Moves
	}
	l := `{scenario="t"}`
	if got := r.Counter("vnfopt_engine_epochs_total" + l).Value(); got != 6 {
		t.Fatalf("epochs counter %d, want 6", got)
	}
	if got := r.Histogram("vnfopt_engine_epoch_seconds" + l).Count(); got != 6 {
		t.Fatalf("epoch histogram count %d, want 6", got)
	}
	if got := r.Counter("vnfopt_engine_updates_total" + l).Value(); got != int64(6*e.Flows()) {
		t.Fatalf("updates counter %d, want %d", got, 6*e.Flows())
	}
	cache := r.Counter("vnfopt_cache_rebuilds_total"+l).Value() +
		r.Counter("vnfopt_cache_deltas_total"+l).Value()
	if cache == 0 {
		t.Fatal("no cache accounting reached the observer")
	}
	if moves > 0 {
		if got := r.Counter("vnfopt_engine_moves_total" + l).Value(); got != int64(moves) {
			t.Fatalf("moves counter %d, want %d", got, moves)
		}
		if ev.Total() == 0 {
			t.Fatal("migrations produced no events")
		}
		for _, event := range ev.Events() {
			if event.Type != "migration" {
				t.Fatalf("unexpected event %+v", event)
			}
		}
	}
	if drift := r.Gauge("vnfopt_engine_drift_ratio" + l).Value(); drift <= 0 {
		t.Fatalf("drift gauge %v, want > 0", drift)
	}
}

// TestMetricsCountCoalescedUpdates: duplicate flow ids in one epoch are
// coalesced and surfaced both in Metrics and through the observer.
func TestMetricsCountCoalescedUpdates(t *testing.T) {
	r := obs.NewRegistry()
	e, sched := newEngineOpts(t, Policy{}, 4, WithObserver(NewObserver(r, nil, "c")))
	ups := hourUpdates(sched[0])
	ups = append(ups, RateUpdate{Flow: 0, Rate: sched[0][0] + 1}) // duplicate
	if _, err := e.OfferRates(ups); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().UpdatesCoalesced; got != 1 {
		t.Fatalf("UpdatesCoalesced %d, want 1", got)
	}
	if got := r.Counter(`vnfopt_engine_updates_coalesced_total{scenario="c"}`).Value(); got != 1 {
		t.Fatalf("coalesced counter %d, want 1", got)
	}
}
