package engine

import (
	"fmt"

	"vnfopt/internal/routing"
	"vnfopt/internal/sfcroute"
)

// RoutingConfig enables the capacity-aware SFC routing pass: when set,
// every epoch re-routes the served workload through the committed chain
// placement on the layered expansion (internal/sfcroute), admitting flows
// against residual link capacity and reporting which flows no feasible
// route can carry. The placement optimizers stay capacity-blind — this
// pass is the admission-control check on top of their answer, the
// capacity side of the paper's 40%-provisioning discussion.
type RoutingConfig struct {
	// LinkCapacity is the uniform link capacity (required, > 0), in the
	// same units as flow rates.
	LinkCapacity float64 `json:"link_capacity"`
	// Alpha enables congestion-aware pricing: link weights grow with the
	// previous epoch's utilization (w · (1 + Alpha·u/(1−u))), so routing
	// drifts away from hot links in the drift loop. 0 = capacity-blind
	// weights (admission still enforced).
	Alpha float64 `json:"alpha,omitempty"`
	// MaxUtilization is the admission target fraction of capacity
	// (0 = 1.0). Set 0.40 to admit against the paper's provisioning point.
	MaxUtilization float64 `json:"max_utilization,omitempty"`
	// SaturationThreshold marks links "saturated" in reports when their
	// utilization strictly exceeds it (0 = the paper's 0.40).
	SaturationThreshold float64 `json:"saturation_threshold,omitempty"`
	// Classify runs the layered max-flow bound on every rejection to
	// label provably-infeasible flows (one mcf solve per rejection).
	Classify bool `json:"classify,omitempty"`
}

// FlowDecision is one flow's admission outcome in an epoch's routing pass.
type FlowDecision struct {
	Flow     int     `json:"flow"`
	Admitted bool    `json:"admitted"`
	Cost     float64 `json:"cost,omitempty"`
	Reroutes int     `json:"reroutes,omitempty"`
	Reason   string  `json:"reason,omitempty"`
}

// RoutingReport is the full routing state of one epoch: per-flow
// admission decisions and per-link utilization under the committed
// placement.
type RoutingReport struct {
	// Epoch the pass ran in (0 = the initial placement's pass).
	Epoch int `json:"epoch"`
	// Admitted / Rejected count served flows; unserved (fault-excluded)
	// flows are in neither.
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// AdmittedRate / RejectedRate total the corresponding flow rates.
	AdmittedRate float64 `json:"admitted_rate"`
	RejectedRate float64 `json:"rejected_rate"`
	// RejectReasons histograms rejections by sfcroute reason.
	RejectReasons map[string]int `json:"reject_reasons,omitempty"`
	// MaxUtilization is the hottest link's utilization; MaxLink its
	// identity.
	MaxUtilization float64      `json:"max_utilization"`
	MaxLink        routing.Link `json:"max_link"`
	// Links lists every loaded link hottest-first with capacity headroom;
	// Saturated is the prefix above SaturationThreshold.
	Links     []routing.LinkLoad `json:"links"`
	Saturated []routing.LinkLoad `json:"saturated,omitempty"`
	// Decisions holds the per-flow outcomes, indexed like the base
	// workload (unserved flows omitted).
	Decisions []FlowDecision `json:"decisions"`
}

// RoutingSummary is the snapshot-sized digest of a RoutingReport.
type RoutingSummary struct {
	Admitted           int     `json:"admitted"`
	Rejected           int     `json:"rejected"`
	MaxLinkUtilization float64 `json:"max_link_utilization"`
	SaturatedLinks     int     `json:"saturated_links"`
}

// routeEpoch runs the capacity-aware routing pass for the current
// placement and serving model, rebuilding the router lazily when a fault
// transition swapped the serving model. Called with e.mu held; a nil
// RoutingConfig makes it a no-op.
func (e *Engine) routeEpoch() error {
	rc := e.cfg.Routing
	if rc == nil {
		return nil
	}
	if e.router == nil || e.router.Model() != e.d {
		r, err := sfcroute.NewRouter(e.d, sfcroute.Config{
			Capacity:       rc.LinkCapacity,
			Alpha:          rc.Alpha,
			MaxUtilization: rc.MaxUtilization,
			Classify:       rc.Classify,
		})
		if err != nil {
			return fmt.Errorf("routing: %w", err)
		}
		e.router = r
	}
	if err := e.router.BeginEpoch(sfcroute.PlacementSites(e.p)); err != nil {
		return fmt.Errorf("routing: %w", err)
	}
	rep := &RoutingReport{Epoch: e.epoch, Decisions: make([]FlowDecision, 0, len(e.flows))}
	for i := range e.flows {
		if e.servable != nil && !e.servable[i] {
			continue
		}
		f := e.flows[i]
		dec, err := e.router.Admit(f.Src, f.Dst, f.Rate)
		if err != nil {
			return fmt.Errorf("routing: flow %d: %w", i, err)
		}
		rep.Decisions = append(rep.Decisions, FlowDecision{
			Flow: i, Admitted: dec.Admitted, Cost: dec.Cost,
			Reroutes: dec.Reroutes, Reason: dec.Reason,
		})
		if dec.Admitted {
			rep.Admitted++
			rep.AdmittedRate += f.Rate
		} else {
			rep.Rejected++
			rep.RejectedRate += f.Rate
			if rep.RejectReasons == nil {
				rep.RejectReasons = make(map[string]int)
			}
			rep.RejectReasons[dec.Reason]++
		}
	}
	rep.Links = e.router.LinkLoads()
	thr := rc.SaturationThreshold
	cut := len(rep.Links)
	for i, l := range rep.Links {
		if l.Utilization <= thr {
			cut = i
			break
		}
	}
	rep.Saturated = rep.Links[:cut]
	rep.MaxUtilization, rep.MaxLink = e.router.MaxUtilization()
	e.routingReport = rep
	e.obs.observeRouting(rep)
	return nil
}

// routingSummary digests the last routing pass for the snapshot. Called
// with e.mu held.
func (e *Engine) routingSummary() *RoutingSummary {
	rep := e.routingReport
	if rep == nil {
		return nil
	}
	return &RoutingSummary{
		Admitted:           rep.Admitted,
		Rejected:           rep.Rejected,
		MaxLinkUtilization: rep.MaxUtilization,
		SaturatedLinks:     len(rep.Saturated),
	}
}

// RoutingReport returns a copy of the most recent routing pass, or nil
// when capacity routing is disabled (or the last pass failed).
func (e *Engine) RoutingReport() *RoutingReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := e.routingReport
	if rep == nil {
		return nil
	}
	cp := *rep
	cp.Links = append([]routing.LinkLoad(nil), rep.Links...)
	cp.Saturated = cp.Links[:len(rep.Saturated)]
	cp.Decisions = append([]FlowDecision(nil), rep.Decisions...)
	if rep.RejectReasons != nil {
		cp.RejectReasons = make(map[string]int, len(rep.RejectReasons))
		for k, v := range rep.RejectReasons {
			cp.RejectReasons[k] = v
		}
	}
	return &cp
}
