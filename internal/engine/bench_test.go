package engine

import (
	"testing"

	"vnfopt/internal/obs"
)

// benchEngine builds an engine over the standard fixture with an
// optional observer, pre-binding the hourly rate updates.
func benchEngine(b *testing.B, o *Observer) (*Engine, [][]RateUpdate) {
	b.Helper()
	e, sched := newEngineOpts(b, Policy{Hysteresis: 1.05, Cooldown: 1}, 7, WithObserver(o))
	updates := make([][]RateUpdate, len(sched))
	for h, rates := range sched {
		updates[h] = hourUpdates(rates)
	}
	return e, updates
}

func runEngineBench(b *testing.B, o *Observer) {
	e, updates := benchEngine(b, o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := updates[i%len(updates)]
		if _, err := e.OfferRates(u); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStep is the uninstrumented baseline: the ≤3%-overhead
// acceptance gate for the observability layer compares this against
// BenchmarkEngineStepObserved.
func BenchmarkEngineStep(b *testing.B) {
	runEngineBench(b, nil)
}

// BenchmarkEngineStepObserved runs the identical loop with a live
// registry + event log attached.
func BenchmarkEngineStepObserved(b *testing.B) {
	r := obs.NewRegistry()
	runEngineBench(b, NewObserver(r, obs.NewEventLog(obs.DefaultEventCapacity), "bench"))
}
