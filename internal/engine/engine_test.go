package engine

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// fixture builds a seeded k=4 fat-tree scenario: 24 clustered flows, a
// 3-VNF chain, and the PaperBurst hourly schedule as the rate stream.
func fixture(t testing.TB, seed int64) (*model.PPDC, model.Workload, [][]float64) {
	t.Helper()
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(seed))
	base := workload.MustPairsClustered(ft, 24, 4, workload.DefaultIntraRack, rng)
	sched, err := workload.PaperBurst().Schedule(ft, base, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		base[i].Rate = sched[0][i]
	}
	return d, base, sched
}

func newEngine(t testing.TB, pol Policy, seed int64) (*Engine, [][]float64) {
	return newEngineOpts(t, pol, seed)
}

func newEngineOpts(t testing.TB, pol Policy, seed int64, opts ...Option) (*Engine, [][]float64) {
	t.Helper()
	d, base, sched := fixture(t, seed)
	e, err := New(Config{
		PPDC:   d,
		SFC:    model.NewSFC(3),
		Base:   base,
		Mu:     1e3,
		Policy: pol,
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e, sched
}

func hourUpdates(rates []float64) []RateUpdate {
	out := make([]RateUpdate, len(rates))
	for i, r := range rates {
		out[i] = RateUpdate{Flow: i, Rate: r}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	d, base, _ := fixture(t, 1)
	ok := Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1}
	if _, err := New(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mut := range map[string]func(Config) Config{
		"nil ppdc":    func(c Config) Config { c.PPDC = nil; return c },
		"empty sfc":   func(c Config) Config { c.SFC = model.SFC{}; return c },
		"negative mu": func(c Config) Config { c.Mu = -1; return c },
		"no flows":    func(c Config) Config { c.Base = nil; return c },
		"bad initial": func(c Config) Config { c.Initial = model.Placement{-1, -1, -1}; return c },
		"bad workload": func(c Config) Config {
			c.Base = model.Workload{{Src: -1, Dst: 0, Rate: 1}}
			return c
		},
	} {
		if _, err := New(mut(ok)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestOfferRatesValidatesWholeBatch(t *testing.T) {
	e, _ := newEngine(t, Policy{}, 1)
	bad := [][]RateUpdate{
		{{Flow: -1, Rate: 1}},
		{{Flow: e.Flows(), Rate: 1}},
		{{Flow: 0, Rate: -1}},
		{{Flow: 0, Rate: math.NaN()}},
		{{Flow: 0, Rate: math.Inf(1)}},
		{{Flow: 0, Rate: 5}, {Flow: 1, Rate: -2}}, // one bad update poisons the batch
	}
	for i, b := range bad {
		if _, err := e.OfferRates(b); err == nil {
			t.Errorf("batch %d accepted", i)
		}
	}
	// The poisoned batch must not have half-applied.
	if n, err := e.OfferRates(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: %d, %v", n, err)
	}
	res, err := e.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch %d", res.Epoch)
	}
}

// TestAlwaysPolicyMatchesDirectMigratorLoop: with the always-consult
// policy the engine's epoch loop is exactly the batch simulator's hourly
// loop — identical calls, identical reported costs, identical placements.
func TestAlwaysPolicyMatchesDirectMigratorLoop(t *testing.T) {
	e, sched := newEngine(t, Policy{}, 2)
	d, base, _ := fixture(t, 2)
	mig := migration.MPareto{}
	p := e.Snapshot().Placement

	for h, rates := range sched {
		if _, err := e.OfferRates(hourUpdates(rates)); err != nil {
			t.Fatal(err)
		}
		res, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		w := base.WithRates(rates)
		m, ct, err := mig.Migrate(d, w, model.NewSFC(3), p, 1e3)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consulted {
			t.Fatalf("hour %d: always policy skipped the migrator", h+1)
		}
		if res.TotalCost != ct {
			t.Fatalf("hour %d: engine cost %v != direct loop %v", h+1, res.TotalCost, ct)
		}
		if !res.Placement.Equal(m) {
			t.Fatalf("hour %d: engine placement %v != direct loop %v", h+1, res.Placement, m)
		}
		p = m
	}
}

// TestDriftTriggerGatesMigration: with hysteresis the migrator runs only
// on drift, migrations still happen on this bursty schedule, and the cost
// trajectory stays between the always-migrate and never-migrate runs.
func TestDriftTriggerGatesMigration(t *testing.T) {
	always, sched := newEngine(t, Policy{}, 3)
	drift, _ := newEngine(t, Policy{Hysteresis: 1.1}, 3)
	frozen, _ := newEngine(t, Policy{Hysteresis: math.Inf(1)}, 3)

	var totAlways, totDrift, totFrozen float64
	for _, rates := range sched {
		for _, e := range []*Engine{always, drift, frozen} {
			if _, err := e.OfferRates(hourUpdates(rates)); err != nil {
				t.Fatal(err)
			}
		}
		ra, err := always.Step()
		if err != nil {
			t.Fatal(err)
		}
		rd, err := drift.Step()
		if err != nil {
			t.Fatal(err)
		}
		rf, err := frozen.Step()
		if err != nil {
			t.Fatal(err)
		}
		totAlways += ra.TotalCost
		totDrift += rd.TotalCost
		totFrozen += rf.TotalCost
		if rf.Consulted {
			t.Fatal("infinite hysteresis consulted the migrator")
		}
	}
	ma, md, mf := always.Metrics(), drift.Metrics(), frozen.Metrics()
	if mf.Migrations != 0 {
		t.Fatalf("frozen engine migrated %d times", mf.Migrations)
	}
	if md.Migrations == 0 {
		t.Fatal("drift trigger never fired on the burst schedule")
	}
	if md.Consults >= ma.Consults {
		t.Fatalf("drift consults %d not below always consults %d", md.Consults, ma.Consults)
	}
	// Hysteresis trades some cost for stability; it must stay within the
	// frozen bound and the always run must not lose to it.
	if totDrift > totFrozen*1.0001 {
		t.Fatalf("drift total %v worse than frozen %v", totDrift, totFrozen)
	}
	if totAlways > totDrift*1.0001 {
		t.Fatalf("always total %v worse than drift %v", totAlways, totDrift)
	}
}

// TestCooldownSpacesMigrations: after a commit the trigger stays quiet for
// Cooldown epochs no matter the drift.
func TestCooldownSpacesMigrations(t *testing.T) {
	const cd = 3
	e, sched := newEngine(t, Policy{Hysteresis: 1.01, Cooldown: cd}, 4)
	last := -1
	for _, rates := range sched {
		if _, err := e.OfferRates(hourUpdates(rates)); err != nil {
			t.Fatal(err)
		}
		res, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Migrated {
			if last >= 0 && res.Epoch-last <= cd {
				t.Fatalf("migrations at epochs %d and %d violate cooldown %d", last, res.Epoch, cd)
			}
			last = res.Epoch
		}
	}
	if last < 0 {
		t.Fatal("no migration at all under mild hysteresis")
	}
}

// TestBudgetCapsEpochMoves: the per-migration budget holds at every epoch.
// Budget 2 on a 3-VNF chain is binding (the unbudgeted run moves all
// three at once) yet still usable — single moves never pay on this chain,
// so a budget of 1 would correctly freeze the placement instead.
func TestBudgetCapsEpochMoves(t *testing.T) {
	e, sched := newEngine(t, Policy{Budget: 2}, 5)
	if e.MigratorName() != "mPareto(budget=2)" {
		t.Fatalf("migrator %q", e.MigratorName())
	}
	moved := 0
	for _, rates := range sched {
		if _, err := e.OfferRates(hourUpdates(rates)); err != nil {
			t.Fatal(err)
		}
		res, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Moves > 2 {
			t.Fatalf("epoch %d moved %d VNFs over budget 2", res.Epoch, res.Moves)
		}
		moved += res.Moves
	}
	if moved == 0 {
		t.Fatal("budgeted engine never moved")
	}
}

// TestDeltaVsRebuildPaths: sparse epochs take the ApplyDelta path, dense
// epochs rebuild, and both keep the cache equal to a scalar re-evaluation.
func TestDeltaVsRebuildPaths(t *testing.T) {
	e, sched := newEngine(t, Policy{Hysteresis: math.Inf(1)}, 6)
	d, base, _ := fixture(t, 6)
	w := base.WithRates(sched[0])

	// Dense epoch: every flow changes → rebuild.
	if _, err := e.OfferRates(hourUpdates(sched[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	w = w.WithRates(sched[1])
	// Sparse epochs: one flow at a time → delta path.
	for i := 0; i < 5; i++ {
		w[i].Rate += 7
		if _, err := e.OfferRates([]RateUpdate{{Flow: i, Rate: w[i].Rate}}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		want := d.CommCost(w, res.Placement)
		if math.Abs(res.CommCost-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("sparse epoch %d: cache cost %v != scalar %v", i, res.CommCost, want)
		}
	}
	m := e.Metrics()
	if m.RebuildEpochs == 0 || m.DeltaEpochs != 5 || m.DeltaPairs == 0 {
		t.Fatalf("path counters: %+v", m)
	}
}

// TestSnapshotAndMetrics: snapshots are consistent and metrics monotonic.
func TestSnapshotAndMetrics(t *testing.T) {
	e, sched := newEngine(t, Policy{}, 7)
	s0 := e.Snapshot()
	if s0.Epoch != 0 || s0.Migrations != 0 || len(s0.Placement) != 3 {
		t.Fatalf("initial snapshot %+v", s0)
	}
	for h, rates := range sched {
		if _, err := e.OfferRates(hourUpdates(rates)); err != nil {
			t.Fatal(err)
		}
		res, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		s := e.Snapshot()
		if s.Epoch != h+1 || !s.Placement.Equal(res.Placement) {
			t.Fatalf("hour %d: snapshot %+v vs result %+v", h+1, s, res)
		}
		if s.CommCost != res.CommCost {
			t.Fatalf("hour %d: snapshot cost %v != result %v", h+1, s.CommCost, res.CommCost)
		}
	}
	m := e.Metrics()
	if m.Epochs != len(sched) || len(m.Trajectory) != len(sched) {
		t.Fatalf("metrics %+v", m)
	}
	if m.Consults != len(sched) {
		t.Fatalf("always policy consults %d != %d", m.Consults, len(sched))
	}
	// The returned metrics are a copy: mutating them must not leak back.
	m.Trajectory[0] = -1
	if e.Metrics().Trajectory[0] == -1 {
		t.Fatal("Metrics returned shared trajectory storage")
	}
}

// TestStateRoundTrip: State → JSON → Resume reproduces the engine —
// identical snapshot, and identical behaviour on the remaining stream.
func TestStateRoundTrip(t *testing.T) {
	pol := Policy{Hysteresis: 1.05, Cooldown: 1}
	a, sched := newEngine(t, pol, 8)
	half := len(sched) / 2
	for _, rates := range sched[:half] {
		if _, err := a.OfferRates(hourUpdates(rates)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	d, base, _ := fixture(t, 8)
	b, err := ResumeJSON(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1e3, Policy: pol}, blob)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Epoch != sb.Epoch || !sa.Placement.Equal(sb.Placement) ||
		sa.CommittedEpoch != sb.CommittedEpoch || sa.Migrations != sb.Migrations {
		t.Fatalf("resumed snapshot %+v != original %+v", sb, sa)
	}
	if math.Abs(sa.CommCost-sb.CommCost) > 1e-9*math.Max(1, sa.CommCost) {
		t.Fatalf("resumed cost %v != %v", sb.CommCost, sa.CommCost)
	}
	for h, rates := range sched[half:] {
		for _, e := range []*Engine{a, b} {
			if _, err := e.OfferRates(hourUpdates(rates)); err != nil {
				t.Fatal(err)
			}
		}
		ra, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Placement.Equal(rb.Placement) || ra.Migrated != rb.Migrated {
			t.Fatalf("post-resume hour %d diverged: %+v vs %+v", h+1, ra, rb)
		}
		if math.Abs(ra.TotalCost-rb.TotalCost) > 1e-9*math.Max(1, ra.TotalCost) {
			t.Fatalf("post-resume hour %d cost %v != %v", h+1, rb.TotalCost, ra.TotalCost)
		}
	}

	// Corrupt states are rejected.
	if _, err := ResumeJSON(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1e3}, []byte("{")); err == nil {
		t.Fatal("truncated state accepted")
	}
	if _, err := Resume(Config{PPDC: d, SFC: model.NewSFC(3), Base: base[:3], Mu: 1e3}, a.State()); err == nil {
		t.Fatal("mismatched flow count accepted")
	}
	if _, err := Resume(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 1e3}, &State{Rates: make([]float64, len(base))}); err == nil {
		t.Fatal("state without placement accepted")
	}
}
