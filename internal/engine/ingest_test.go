package engine

import (
	"math"
	"testing"
)

// TestIngestAccounting pins the IngestResult triple: accepted counts
// the whole batch, coalesced counts last-write-wins overwrites within
// the open epoch, and epoch names the epoch the batch folds into.
func TestIngestAccounting(t *testing.T) {
	e, _ := newEngine(t, Policy{Hysteresis: 1e9}, 1)

	res, err := e.Ingest([]RateUpdate{{Flow: 0, Rate: 1}, {Flow: 1, Rate: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.Coalesced != 0 || res.Epoch != 1 {
		t.Fatalf("first batch %+v", res)
	}
	// Same flows again before the epoch closes: both overwrite.
	res, err = e.Ingest([]RateUpdate{{Flow: 0, Rate: 3}, {Flow: 1, Rate: 4}, {Flow: 2, Rate: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Coalesced != 2 || res.Epoch != 1 {
		t.Fatalf("overlapping batch %+v", res)
	}
	// A batch that repeats a flow within itself coalesces too.
	res, err = e.Ingest([]RateUpdate{{Flow: 3, Rate: 1}, {Flow: 3, Rate: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.Coalesced != 1 {
		t.Fatalf("self-overlapping batch %+v", res)
	}

	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	// After the epoch closed the pending set is empty again: no
	// coalescing, and the batch targets epoch 2.
	res, err = e.Ingest([]RateUpdate{{Flow: 0, Rate: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Coalesced != 0 || res.Epoch != 2 {
		t.Fatalf("post-step batch %+v", res)
	}

	m := e.Metrics()
	if m.UpdatesAccepted != 8 || m.UpdatesCoalesced != 3 {
		t.Fatalf("metrics accepted %d coalesced %d, want 8/3", m.UpdatesAccepted, m.UpdatesCoalesced)
	}
}

// TestIngestAtomicValidation: a batch with any invalid update applies
// none of it.
func TestIngestAtomicValidation(t *testing.T) {
	e, _ := newEngine(t, Policy{Hysteresis: 1e9}, 1)
	for name, bad := range map[string][]RateUpdate{
		"flow out of range": {{Flow: 0, Rate: 1}, {Flow: 10_000, Rate: 1}},
		"negative rate":     {{Flow: 0, Rate: 1}, {Flow: 1, Rate: -2}},
		"nan rate":          {{Flow: 0, Rate: 1}, {Flow: 1, Rate: math.NaN()}},
		"inf rate":          {{Flow: 0, Rate: 1}, {Flow: 1, Rate: math.Inf(1)}},
	} {
		if _, err := e.Ingest(bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if m := e.Metrics(); m.UpdatesAccepted != 0 {
		t.Fatalf("rejected batches leaked %d accepted updates", m.UpdatesAccepted)
	}
	// The pending set is untouched: a later good batch coalesces nothing.
	res, err := e.Ingest([]RateUpdate{{Flow: 0, Rate: 2}})
	if err != nil || res.Coalesced != 0 {
		t.Fatalf("pending set dirtied by rejected batches: %+v, %v", res, err)
	}
}
