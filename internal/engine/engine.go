// Package engine is the online half of the system: a long-running,
// concurrency-safe placement engine that owns one PPDC + SFC + live
// workload and keeps the placement traffic-optimal as rates stream in.
//
// The paper's TOM "executes periodically to optimize a PPDC's network
// resource in the face of dynamic VM traffic"; the batch simulator
// (internal/sim) replays that as a precomputed hourly schedule. The engine
// turns it into a control loop:
//
//   - writers stream per-flow rate updates with OfferRates; updates are
//     coalesced (last write wins per flow) into a pending set,
//   - Step closes an epoch: it folds the pending set into the aggregated
//     WorkloadCache — via the O(|V|)-per-pair ApplyDelta fast path when
//     the epoch touched few host pairs, or one SetWorkload rebuild when it
//     touched most of them,
//   - a drift trigger compares the epoch's communication cost against the
//     cost recorded when the placement was last committed; only when the
//     drift exceeds the hysteresis factor (and the cooldown has elapsed)
//     is the configured TOM migrator consulted, under a per-migration
//     move budget,
//   - the resulting placement is committed atomically: readers call
//     Snapshot (lock-free atomic pointer load) and never block behind
//     ingest, stepping, or a running migrator.
//
// The batch simulator drives this same loop with the always-consult
// policy, so the offline figures and the online daemon (cmd/vnfoptd)
// share one code path.
package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vnfopt/internal/fault"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/sfcroute"
)

// Policy is the engine's migration-control knobs — when the TOM loop may
// act, independently of which migrator it consults.
type Policy struct {
	// Hysteresis gates the drift trigger: the migrator is consulted when
	// the epoch's communication cost exceeds Hysteresis × the cost
	// recorded at the last commit. Values ≤ 0 consult every epoch (the
	// batch-simulator behaviour); 1.1 tolerates 10% drift.
	Hysteresis float64 `json:"hysteresis"`
	// Cooldown is the minimum number of epochs between migrations (0 = no
	// cooldown).
	Cooldown int `json:"cooldown"`
	// Budget caps the VNF moves of one migration via migration.Budgeted
	// (0 = unlimited).
	Budget int `json:"budget"`
	// RebuildFraction picks delta vs rebuild: when an epoch changes more
	// than this fraction of the cache's aggregated pairs, Step rebuilds
	// with SetWorkload instead of per-pair ApplyDelta sweeps. 0 means the
	// default 0.5; negative forces rebuilds (every epoch), ≥ 1 keeps the
	// delta path except when an epoch touches more pairs than the cache
	// currently holds.
	RebuildFraction float64 `json:"rebuild_fraction"`
	// RepairRetries is the number of attempts a topology event makes to
	// obtain an exact (non-fallback) repair before accepting the greedy
	// fallback (0 = default 3). Attempts after the first back off by
	// RepairBackoff, doubling each time.
	RepairRetries int `json:"repair_retries"`
	// RepairBackoff is the initial backoff between repair attempts
	// (0 = default 25ms).
	RepairBackoff time.Duration `json:"repair_backoff_ns"`
}

// Config describes one engine instance. The first four fields (PPDC,
// SFC, Base, Mu) define the scenario and are always set as struct
// fields; the optional fields below them predate functional options and
// suffer from zero-value ambiguity (a zero Policy is a real, meaningful
// policy — "consult every epoch" — indistinguishable from "unset").
// Prefer passing the matching Option to New for everything optional.
type Config struct {
	// PPDC is the fabric.
	PPDC *model.PPDC
	// SFC is the chain every flow traverses.
	SFC model.SFC
	// Base provides the flow endpoints and the initial rates; flows are
	// addressed by their index in Base for the lifetime of the engine.
	Base model.Workload
	// Mu is the migration coefficient μ.
	Mu float64
	// Initial is the starting placement; nil computes one with Placer.
	//
	// Deprecated: prefer WithInitial, which states intent explicitly.
	Initial model.Placement
	// Placer computes the initial placement when Initial is nil
	// (nil = Algorithm 3).
	//
	// Deprecated: prefer WithPlacer.
	Placer placement.Solver
	// Migrator is the TOM algorithm the drift trigger consults
	// (nil = Algorithm 5, mPareto).
	//
	// Deprecated: prefer WithMigrator.
	Migrator migration.Migrator
	// Policy holds the hysteresis/cooldown/budget knobs.
	//
	// Deprecated: prefer WithPolicy — the zero value here silently means
	// "consult every epoch", which is easy to set by accident.
	Policy Policy
	// Observer, when non-nil, receives metrics and events (see
	// Observer). Prefer WithObserver.
	Observer *Observer
	// Routing, when non-nil, enables the per-epoch capacity-aware SFC
	// routing pass (admission control + link utilization; see
	// RoutingConfig). Prefer WithCapacityRouting.
	Routing *RoutingConfig
	// SearchWorkers fans the exact branch-and-bound searches (the
	// Optimal placer and the Exhaustive migrator) out across goroutines
	// when the configured solver or migrator supports it (implements its
	// package's WorkerTunable): 0 leaves solvers untouched, > 1 uses
	// that many workers, < 0 uses GOMAXPROCS. Results stay bit-identical
	// to the sequential search. Prefer WithSearchWorkers.
	SearchWorkers int
}

// RateUpdate is one streaming event: flow Flow's rate is now Rate.
type RateUpdate struct {
	Flow int     `json:"flow"`
	Rate float64 `json:"rate"`
}

// Snapshot is the atomically-published view readers see: the committed
// placement and the costs that justify it. Readers own the returned
// struct; the engine never mutates a published snapshot.
type Snapshot struct {
	// Epoch is the number of completed Steps.
	Epoch int `json:"epoch"`
	// Placement is the committed placement.
	Placement model.Placement `json:"placement"`
	// CommCost is C_a of the live rates under Placement as of the last
	// completed epoch.
	CommCost float64 `json:"comm_cost"`
	// CommittedCost is C_a at the epoch Placement was committed — the
	// drift trigger's reference point.
	CommittedCost float64 `json:"committed_cost"`
	// CommittedEpoch is when Placement was committed (0 = initial).
	CommittedEpoch int `json:"committed_epoch"`
	// Migrations counts commits after the initial placement.
	Migrations int `json:"migrations"`
	// Degraded reports whether any topology fault is active.
	Degraded bool `json:"degraded"`
	// ActiveFaults is the number of active faults.
	ActiveFaults int `json:"active_faults"`
	// UnservedFlows is the number of flows excluded from service (dead
	// endpoint or partitioned away from the SFC's region); their traffic
	// is reported, never Inf-costed.
	UnservedFlows int `json:"unserved_flows"`
	// Routing digests the last capacity-aware routing pass (nil when
	// capacity routing is disabled).
	Routing *RoutingSummary `json:"routing,omitempty"`
}

// StepResult reports one closed epoch.
type StepResult struct {
	// Epoch is the 1-based epoch just completed.
	Epoch int `json:"epoch"`
	// CommCost is C_a of the epoch's rates under the (possibly new)
	// placement, from the aggregated cache.
	CommCost float64 `json:"comm_cost"`
	// MigCost is C_b(prev, new) when a migration was committed, else 0.
	MigCost float64 `json:"mig_cost"`
	// TotalCost is the epoch's cost: the migrator-reported C_t when it was
	// consulted (bit-identical to the batch simulator's accounting), else
	// CommCost.
	TotalCost float64 `json:"total_cost"`
	// Moves is the number of VNFs that moved this epoch.
	Moves int `json:"moves"`
	// Consulted reports whether the drift trigger fired and the migrator
	// ran.
	Consulted bool `json:"consulted"`
	// Migrated reports whether a new placement was committed.
	Migrated bool `json:"migrated"`
	// Placement is the committed placement after the epoch (a copy).
	Placement model.Placement `json:"placement"`
	// Routing digests the epoch's capacity-aware routing pass (nil when
	// disabled).
	Routing *RoutingSummary `json:"routing,omitempty"`
	// Elapsed is the wall-clock time of the Step call.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Metrics are the engine's monotonic counters, exported by the daemon's
// /metrics endpoint.
type Metrics struct {
	// Epochs is the number of completed Steps.
	Epochs int `json:"epochs"`
	// UpdatesAccepted counts rate updates accepted by OfferRates.
	UpdatesAccepted int64 `json:"updates_accepted"`
	// Consults counts epochs in which the migrator ran.
	Consults int `json:"consults"`
	// Migrations counts committed migrations; Moves the VNFs they moved.
	Migrations int `json:"migrations"`
	Moves      int `json:"moves"`
	// DeltaPairs counts host pairs updated through ApplyDelta;
	// DeltaEpochs/RebuildEpochs count which path each epoch took.
	DeltaPairs    int64 `json:"delta_pairs"`
	DeltaEpochs   int64 `json:"delta_epochs"`
	RebuildEpochs int64 `json:"rebuild_epochs"`
	// UpdatesCoalesced counts accepted updates that overwrote a pending
	// update to the same flow (last write wins) before the epoch closed.
	UpdatesCoalesced int64 `json:"updates_coalesced"`
	// FaultsInjected/FaultsHealed count topology fault transitions;
	// Repairs counts repair passes run by topology events, and
	// RepairFallbacks the subset that committed the greedy fallback
	// because the exact TOM consult failed or was cancelled.
	FaultsInjected  int64 `json:"faults_injected"`
	FaultsHealed    int64 `json:"faults_healed"`
	Repairs         int   `json:"repairs"`
	RepairFallbacks int   `json:"repair_fallbacks"`
	// LastEpoch and TotalEpoch time the Step calls.
	LastEpoch  time.Duration `json:"last_epoch_ns"`
	TotalEpoch time.Duration `json:"total_epoch_ns"`
	// Trajectory is the per-epoch TotalCost history, capped at the most
	// recent trajectoryCap epochs.
	Trajectory []float64 `json:"cost_trajectory"`
}

// trajectoryCap bounds the in-memory cost history.
const trajectoryCap = 4096

// Engine is the online placement engine. All mutating calls are
// serialized internally; Snapshot is lock-free.
type Engine struct {
	mu  sync.Mutex
	cfg Config
	mig migration.Migrator // effective migrator (budget-wrapped)
	obs *Observer          // nil = uninstrumented

	flows   model.Workload // live per-flow rates, indexed as Base
	cache   *model.WorkloadCache
	p       model.Placement
	pending map[int]float64 // coalesced flow → rate for the next epoch

	// Topology-fault state (see faults.go). d is the active serving
	// model: cfg.PPDC while healthy, the fault view's service-region
	// model while degraded. servable masks flows excluded from service
	// (nil = all servable); the cache and every consult see only served
	// flows, so an unreachable pair can never Inf-poison a cost.
	d        *model.PPDC
	view     *fault.View
	faults   fault.FaultSet
	servable []bool
	unserved []fault.UnservedFlow

	// Capacity-aware routing state (see routing.go). router is rebuilt
	// lazily whenever the serving model changes; routingReport holds the
	// last completed pass.
	router        *sfcroute.Router
	routingReport *RoutingReport

	epoch          int
	committedCost  float64
	committedEpoch int
	lastMigEpoch   int // epoch of the last commit; -1 before any

	met  Metrics
	snap atomic.Pointer[Snapshot]
}

// New validates the configuration, computes (or adopts) the initial
// placement, builds the aggregated cost cache, and publishes the first
// snapshot. Options are applied over cfg in order (see Option); the
// variadic form keeps every existing New(cfg) call compiling.
func New(cfg Config, opts ...Option) (*Engine, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.PPDC == nil {
		return nil, fmt.Errorf("engine: nil PPDC")
	}
	if cfg.SFC.Len() < 1 {
		return nil, fmt.Errorf("engine: empty SFC")
	}
	if cfg.Mu < 0 {
		return nil, fmt.Errorf("engine: negative μ %v", cfg.Mu)
	}
	if len(cfg.Base) == 0 {
		return nil, fmt.Errorf("engine: empty workload")
	}
	if err := cfg.Base.Validate(cfg.PPDC); err != nil {
		return nil, err
	}
	if cfg.Migrator == nil {
		cfg.Migrator = migration.MPareto{}
	}
	if cfg.SearchWorkers != 0 {
		// Applied before the Budgeted wrap below so the knob reaches the
		// inner exact search; wrappers applied by callers beforehand (e.g.
		// instrumentation) opt out by not implementing WorkerTunable.
		if wt, ok := cfg.Migrator.(migration.WorkerTunable); ok {
			cfg.Migrator = wt.WithWorkers(cfg.SearchWorkers)
		}
		if wt, ok := cfg.Placer.(placement.WorkerTunable); ok {
			cfg.Placer = wt.WithWorkers(cfg.SearchWorkers)
		}
	}
	if cfg.Policy.RebuildFraction == 0 {
		cfg.Policy.RebuildFraction = 0.5
	}
	if cfg.Routing != nil {
		rc := *cfg.Routing // engine owns its copy; defaults don't leak back
		if rc.LinkCapacity <= 0 || math.IsNaN(rc.LinkCapacity) || math.IsInf(rc.LinkCapacity, 0) {
			return nil, fmt.Errorf("engine: routing link capacity %v must be positive and finite", rc.LinkCapacity)
		}
		if rc.SaturationThreshold == 0 {
			rc.SaturationThreshold = 0.40 // the paper's provisioning point
		}
		cfg.Routing = &rc
	}
	e := &Engine{
		cfg:          cfg,
		mig:          cfg.Migrator,
		obs:          cfg.Observer,
		flows:        append(model.Workload(nil), cfg.Base...),
		pending:      make(map[int]float64),
		d:            cfg.PPDC,
		lastMigEpoch: -1,
	}
	if cfg.Policy.Budget > 0 {
		e.mig = migration.Budgeted{Inner: cfg.Migrator, Budget: cfg.Policy.Budget}
	}
	e.cache = cfg.PPDC.NewWorkloadCache(e.flows)
	if e.obs != nil {
		// The initial aggregation above is construction, not invalidation
		// traffic; rebuild/delta accounting starts here.
		e.cache.SetObserver(e.obs)
	}
	if cfg.Initial != nil {
		if err := cfg.Initial.Validate(cfg.PPDC, cfg.SFC); err != nil {
			return nil, fmt.Errorf("engine: initial placement: %w", err)
		}
		e.p = cfg.Initial.Clone()
	} else {
		placer := cfg.Placer
		if placer == nil {
			placer = placement.DP{}
		}
		p0, _, err := placer.Place(cfg.PPDC, e.flows, cfg.SFC)
		if err != nil {
			return nil, fmt.Errorf("engine: initial placement: %w", err)
		}
		e.p = p0
	}
	e.committedCost = e.cache.CommCost(e.p)
	if err := e.routeEpoch(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e.publish(e.committedCost)
	return e, nil
}

// MigratorName identifies the effective (policy-wrapped) migrator.
func (e *Engine) MigratorName() string { return e.mig.Name() }

// Flows returns the number of flows the engine addresses.
func (e *Engine) Flows() int { return len(e.cfg.Base) }

// IngestResult accounts for one accepted batch of rate updates. It is
// the shared response body of the daemon's single-call and bulk ingest
// endpoints, so both report the same accepted/coalesced/epoch triple.
type IngestResult struct {
	// Accepted is the number of updates that landed in the pending set.
	Accepted int `json:"accepted"`
	// Coalesced is the subset of Accepted that overwrote a pending
	// update to the same flow (last write wins) before the epoch closed.
	Coalesced int `json:"coalesced"`
	// Epoch is the epoch the batch will fold into — the one the next
	// Step completes (current completed epoch + 1).
	Epoch int `json:"epoch"`
}

// ValidateRates checks a batch of updates against the flow table without
// applying (or locking) anything. Ingest runs it implicitly; the daemon's
// write-ahead logger calls it first so a rejected batch never enters the
// log — every logged ingest is guaranteed to replay cleanly.
func (e *Engine) ValidateRates(updates []RateUpdate) error {
	for _, u := range updates {
		if u.Flow < 0 || u.Flow >= len(e.cfg.Base) {
			return fmt.Errorf("engine: flow %d out of range [0,%d)", u.Flow, len(e.cfg.Base))
		}
		if u.Rate < 0 || math.IsNaN(u.Rate) || math.IsInf(u.Rate, 0) {
			return fmt.Errorf("engine: flow %d: invalid rate %v", u.Flow, u.Rate)
		}
	}
	return nil
}

// Ingest folds a batch of rate updates into the pending set of the next
// epoch, coalescing repeated updates to one flow (last write wins), and
// returns the batch accounting. The whole batch is validated before any
// of it lands, so a bad update never half-applies a batch.
func (e *Engine) Ingest(updates []RateUpdate) (IngestResult, error) {
	if err := e.ValidateRates(updates); err != nil {
		return IngestResult{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	coalesced := 0
	for _, u := range updates {
		if _, dup := e.pending[u.Flow]; dup {
			coalesced++
		}
		e.pending[u.Flow] = u.Rate
	}
	e.met.UpdatesAccepted += int64(len(updates))
	e.met.UpdatesCoalesced += int64(coalesced)
	e.obs.observeIngest(len(updates), coalesced)
	return IngestResult{Accepted: len(updates), Coalesced: coalesced, Epoch: e.epoch + 1}, nil
}

// OfferRates is Ingest reduced to the accepted count, kept for existing
// callers (the simulator, the chaos harness, examples).
func (e *Engine) OfferRates(updates []RateUpdate) (int, error) {
	res, err := e.Ingest(updates)
	return res.Accepted, err
}

// Step closes the current epoch: it folds the pending updates into the
// cost cache, evaluates the drift trigger, possibly consults the migrator
// and commits a migration, and publishes the new snapshot.
func (e *Engine) Step() (StepResult, error) {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()

	e.applyPending()
	e.epoch++
	res := StepResult{Epoch: e.epoch}

	curCost := e.cache.CommCost(e.p)
	res.TotalCost = curCost
	preCost := curCost
	drift := 1.0
	if e.committedCost > 0 {
		drift = curCost / e.committedCost
	}
	var consultTime time.Duration

	hys := e.cfg.Policy.Hysteresis
	drifted := hys <= 0 || curCost > hys*e.committedCost
	cooled := e.cfg.Policy.Cooldown <= 0 ||
		e.lastMigEpoch < 0 ||
		e.epoch-e.lastMigEpoch > e.cfg.Policy.Cooldown
	served := e.servedWorkload()
	if drifted && cooled && len(served) > 0 {
		consultStart := time.Now()
		m, ct, err := e.safeMigrate(served)
		consultTime = time.Since(consultStart)
		if err != nil {
			e.epoch-- // the epoch did not close; pending already folded
			e.obs.observeError(e.epoch+1, err)
			return StepResult{}, fmt.Errorf("engine: epoch %d: %w", e.epoch+1, err)
		}
		res.Consulted = true
		e.met.Consults++
		res.TotalCost = ct
		if moves := migration.MigrationCount(e.p, m); moves > 0 {
			res.Migrated = true
			res.Moves = moves
			res.MigCost = e.d.MigrationCost(e.p, m, e.cfg.Mu)
			e.p = m.Clone()
			curCost = e.cache.CommCost(e.p)
			e.committedCost = curCost
			e.committedEpoch = e.epoch
			e.lastMigEpoch = e.epoch
			e.met.Migrations++
			e.met.Moves += moves
		}
	}
	res.CommCost = curCost
	res.Placement = e.p.Clone()
	if err := e.routeEpoch(); err != nil {
		e.epoch--
		e.obs.observeError(e.epoch+1, err)
		return StepResult{}, fmt.Errorf("engine: epoch %d: %w", e.epoch+1, err)
	}
	res.Routing = e.routingSummary()

	e.met.Epochs = e.epoch
	e.met.LastEpoch = time.Since(start)
	e.met.TotalEpoch += e.met.LastEpoch
	if len(e.met.Trajectory) == trajectoryCap {
		e.met.Trajectory = append(e.met.Trajectory[:0], e.met.Trajectory[1:]...)
	}
	e.met.Trajectory = append(e.met.Trajectory, res.TotalCost)
	res.Elapsed = e.met.LastEpoch
	e.obs.observeStep(res, drift, consultTime, preCost-curCost)
	e.publish(curCost)
	return res, nil
}

// applyPending folds the coalesced pending updates into flows and the
// cache, choosing between the per-pair delta path and a full rebuild.
// Flows are visited in index order so the fold is deterministic.
// Called with e.mu held.
func (e *Engine) applyPending() {
	if len(e.pending) == 0 {
		return
	}
	idxs := make([]int, 0, len(e.pending))
	for i := range e.pending {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)

	// Per-(src,dst) rate deltas, first-appearance order over sorted flows.
	type pairDelta struct {
		src, dst int
		dr       float64
	}
	var deltas []pairDelta
	where := make(map[[2]int]int, len(idxs))
	for _, i := range idxs {
		r := e.pending[i]
		f := &e.flows[i]
		if r == f.Rate {
			continue
		}
		dr := r - f.Rate
		f.Rate = r
		if e.servable != nil && !e.servable[i] {
			// The flow is excluded from service (dead endpoint or
			// partitioned); its rate is recorded for the eventual heal but
			// the serving cache holds no pair for it.
			continue
		}
		key := [2]int{f.Src, f.Dst}
		if j, ok := where[key]; ok {
			deltas[j].dr += dr
		} else {
			where[key] = len(deltas)
			deltas = append(deltas, pairDelta{f.Src, f.Dst, dr})
		}
	}
	clear(e.pending)
	if len(deltas) == 0 {
		return
	}

	pairs := len(e.cache.Aggregated())
	if pairs == 0 {
		pairs = 1
	}
	if float64(len(deltas)) > e.cfg.Policy.RebuildFraction*float64(pairs) {
		e.cache.SetWorkload(e.servedWorkload())
		e.met.RebuildEpochs++
		return
	}
	for _, d := range deltas {
		i := e.cache.EnsurePair(d.src, d.dst)
		e.cache.ApplyDelta(i, e.cache.PairRate(i)+d.dr)
	}
	e.met.DeltaPairs += int64(len(deltas))
	e.met.DeltaEpochs++
}

// servedWorkload returns the live workload restricted to servable flows:
// e.flows itself while healthy, a filtered copy while degraded. Called
// with e.mu held.
func (e *Engine) servedWorkload() model.Workload {
	if e.servable == nil {
		return e.flows
	}
	w := make(model.Workload, 0, len(e.flows))
	for i, f := range e.flows {
		if e.servable[i] {
			w = append(w, f)
		}
	}
	return w
}

// safeMigrate consults the effective migrator on the active serving
// model with panic containment: a panicking solver surfaces as an
// ordinary error (step_error event + vnfopt_engine_step_errors_total)
// instead of killing the control loop. Called with e.mu held.
func (e *Engine) safeMigrate(w model.Workload) (m model.Placement, ct float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, ct, err = nil, 0, fmt.Errorf("migrator %s panicked: %v", e.mig.Name(), r)
		}
	}()
	return e.mig.Migrate(e.d, w, e.cfg.SFC, e.p, e.cfg.Mu)
}

// publish swaps the reader snapshot. Called with e.mu held.
func (e *Engine) publish(curCost float64) {
	e.snap.Store(&Snapshot{
		Epoch:          e.epoch,
		Placement:      e.p.Clone(),
		CommCost:       curCost,
		CommittedCost:  e.committedCost,
		CommittedEpoch: e.committedEpoch,
		Migrations:     e.met.Migrations,
		Degraded:       e.view != nil,
		ActiveFaults:   e.faults.Len(),
		UnservedFlows:  len(e.unserved),
		Routing:        e.routingSummary(),
	})
}

// Snapshot returns the last published placement view without taking the
// engine lock; safe to call concurrently with OfferRates and Step.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Metrics returns a copy of the engine counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.met
	m.Trajectory = append([]float64(nil), e.met.Trajectory...)
	return m
}
