package engine

import (
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
)

// Option is a functional configuration knob for New, layered over
// Config. Options exist to remove the zero-value ambiguity of optional
// Config fields (a zero Policy silently means "consult every epoch", a
// nil Migrator silently means mPareto): an Option states intent
// explicitly at the call site and composes without a half-filled struct
// literal.
//
//	eng, err := engine.New(engine.Config{PPDC: d, SFC: sfc, Base: w, Mu: mu},
//	        engine.WithPolicy(engine.Policy{Hysteresis: 1.1, Cooldown: 2}),
//	        engine.WithMigrator(migration.LayeredDP{}),
//	        engine.WithObserver(obs))
//
// Options are applied in order after the Config literal, so a later
// option overrides both the struct field and any earlier option.
type Option func(*Config)

// WithPolicy sets the migration-control policy (hysteresis, cooldown,
// budget, rebuild fraction).
func WithPolicy(p Policy) Option {
	return func(c *Config) { c.Policy = p }
}

// WithMigrator sets the TOM migrator the drift trigger consults.
func WithMigrator(m migration.Migrator) Option {
	return func(c *Config) { c.Migrator = m }
}

// WithPlacer sets the TOP solver used to compute the initial placement
// when none is given.
func WithPlacer(p placement.Solver) Option {
	return func(c *Config) { c.Placer = p }
}

// WithInitial adopts a precomputed initial placement instead of running
// the placer.
func WithInitial(p model.Placement) Option {
	return func(c *Config) { c.Initial = p }
}

// WithObserver attaches an observability sink: epoch latencies, drift,
// migration and cache counters flow into its registry, and commit/error
// events into its event log. A nil observer leaves the engine
// uninstrumented (the default).
func WithObserver(o *Observer) Option {
	return func(c *Config) { c.Observer = o }
}

// WithCapacityRouting enables the per-epoch capacity-aware SFC routing
// pass: flows are routed through the committed chain on the layered
// expansion against residual link capacity, infeasible flows are flagged
// or rejected, and per-link utilization is reported (Snapshot.Routing,
// Engine.RoutingReport, and the vnfopt_sfcroute_* metrics). Set
// rc.Alpha > 0 for congestion-aware link pricing in the drift loop.
func WithCapacityRouting(rc RoutingConfig) Option {
	return func(c *Config) { c.Routing = &rc }
}

// WithSearchWorkers fans the exact branch-and-bound searches out across
// n goroutines when the configured placer/migrator supports it (i.e.
// implements its package's WorkerTunable, as placement.Optimal and
// migration.Exhaustive do): 0 leaves solvers untouched, > 1 uses that
// many workers, < 0 uses GOMAXPROCS. Results are bit-identical to the
// sequential search at any width, so this is purely a latency knob for
// the consult path.
func WithSearchWorkers(n int) Option {
	return func(c *Config) { c.SearchWorkers = n }
}
