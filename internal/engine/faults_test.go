package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"vnfopt/internal/fault"
	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/obs"
	"vnfopt/internal/topology"
)

// panicMigrator stands in for a buggy TOM solver: it panics on every
// consult.
type panicMigrator struct{}

func (panicMigrator) Name() string { return "panic" }
func (panicMigrator) Migrate(*model.PPDC, model.Workload, model.SFC, model.Placement, float64) (model.Placement, float64, error) {
	panic("deliberate test panic")
}

// failNMigrator fails (or panics) the first n consults, then delegates
// to mPareto.
type failNMigrator struct {
	n      *int
	panics bool
}

func (failNMigrator) Name() string { return "failN" }
func (m failNMigrator) Migrate(d *model.PPDC, w model.Workload, sfc model.SFC, p model.Placement, mu float64) (model.Placement, float64, error) {
	if *m.n > 0 {
		*m.n--
		if m.panics {
			panic("transient solver panic")
		}
		return nil, 0, fmt.Errorf("transient solver failure")
	}
	return migration.MPareto{}.Migrate(d, w, sfc, p, mu)
}

// TestStepRecoversMigratorPanic is the regression test for panic
// containment: a panicking migrator must surface as a step error (event
// + counter) and leave the engine usable, not kill the process.
func TestStepRecoversMigratorPanic(t *testing.T) {
	reg := obs.NewRegistry()
	events := obs.NewEventLog(64)
	e, _ := newEngineOpts(t, Policy{}, 11,
		WithMigrator(panicMigrator{}),
		WithObserver(NewObserver(reg, events, "")))
	if _, err := e.Step(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Step with panicking migrator: err=%v, want panic surfaced as error", err)
	}
	if got := reg.Counter("vnfopt_engine_step_errors_total").Value(); got != 1 {
		t.Fatalf("step_errors_total=%d, want 1", got)
	}
	found := false
	for _, ev := range events.Events() {
		if ev.Type == "step_error" {
			found = true
		}
	}
	if !found {
		t.Fatal("no step_error event recorded")
	}
	// The failed epoch did not close; the engine keeps serving.
	if snap := e.Snapshot(); snap.Epoch != 0 {
		t.Fatalf("epoch advanced past failed step: %d", snap.Epoch)
	}
}

func TestApplyFaultsRepairsPlacement(t *testing.T) {
	reg := obs.NewRegistry()
	events := obs.NewEventLog(256)
	e, _ := newEngineOpts(t, Policy{}, 7, WithObserver(NewObserver(reg, events, "")))
	victim := e.Snapshot().Placement[0]
	f := fault.Fault{Kind: fault.Switch, U: victim}

	res, err := e.ApplyFaults(context.Background(), []fault.Fault{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Injected != 1 || len(res.Active) != 1 {
		t.Fatalf("bad transition report: %+v", res)
	}
	if res.Repair == nil || res.Repair.Moves < 1 {
		t.Fatalf("killing a hosting switch must force a repair move: %+v", res.Repair)
	}
	snap := e.Snapshot()
	if !snap.Degraded || snap.ActiveFaults != 1 {
		t.Fatalf("snapshot not degraded: %+v", snap)
	}
	for _, s := range snap.Placement {
		if s == victim {
			t.Fatalf("placement still uses dead switch %d", victim)
		}
	}
	if reg.Gauge("vnfopt_engine_degraded").Value() != 1 {
		t.Fatal("degraded gauge not set")
	}
	if reg.Counter("vnfopt_engine_repairs_total").Value() != 1 {
		t.Fatal("repairs counter not incremented")
	}
	var sawRepair bool
	for _, ev := range events.Events() {
		if ev.Type == "repair" {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Fatal("no repair event recorded")
	}

	// Stepping while degraded keeps costs finite and the placement live.
	sr, err := e.Step()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(sr.CommCost, 0) || math.IsNaN(sr.CommCost) {
		t.Fatalf("degraded step cost not finite: %v", sr.CommCost)
	}

	// Heal: back to the pristine fabric, gauges reset.
	res, err = e.ApplyFaults(context.Background(), nil, []fault.Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Healed != 1 || len(res.Active) != 0 {
		t.Fatalf("bad heal report: %+v", res)
	}
	snap = e.Snapshot()
	if snap.Degraded || snap.ActiveFaults != 0 || snap.UnservedFlows != 0 {
		t.Fatalf("snapshot still degraded after heal: %+v", snap)
	}
	if reg.Gauge("vnfopt_engine_degraded").Value() != 0 {
		t.Fatal("degraded gauge not cleared")
	}
	m := e.Metrics()
	if m.FaultsInjected != 1 || m.FaultsHealed != 1 {
		t.Fatalf("fault counters: %+v", m)
	}
}

func TestApplyFaultsDeadHostExcludesFlow(t *testing.T) {
	e, _ := newEngine(t, Policy{}, 13)
	victim := e.cfg.Base[0].Src
	res, err := e.ApplyFaults(context.Background(), []fault.Fault{{Kind: fault.Host, U: victim}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unserved) == 0 {
		t.Fatal("killing a flow endpoint must unserve the flow")
	}
	for _, u := range res.Unserved {
		if u.Reason != fault.ReasonDeadEndpoint {
			t.Fatalf("reason=%q, want dead_endpoint", u.Reason)
		}
	}
	snap := e.Snapshot()
	if snap.UnservedFlows != len(res.Unserved) {
		t.Fatalf("snapshot unserved=%d, want %d", snap.UnservedFlows, len(res.Unserved))
	}
	// Rate updates to an unserved flow are still accepted and recorded.
	if _, err := e.OfferRates([]RateUpdate{{Flow: res.Unserved[0].Flow, Rate: 42}}); err != nil {
		t.Fatal(err)
	}
	if sr, err := e.Step(); err != nil {
		t.Fatal(err)
	} else if math.IsInf(sr.CommCost, 0) || math.IsNaN(sr.CommCost) {
		t.Fatalf("cost not finite with unserved flow: %v", sr.CommCost)
	}
	if e.flows[res.Unserved[0].Flow].Rate != 42 {
		t.Fatal("rate update to unserved flow not recorded")
	}
}

func TestApplyFaultsInfeasibleIsAtomic(t *testing.T) {
	topo, err := topology.Linear(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := model.MustNew(topo, model.Options{})
	base := model.Workload{{Src: topo.Hosts[0], Dst: topo.Hosts[1], Rate: 2}}
	e, err := New(Config{PPDC: d, SFC: model.NewSFC(3), Base: base, Mu: 10})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	var kill []fault.Fault
	for _, s := range topo.Switches {
		kill = append(kill, fault.Fault{Kind: fault.Switch, U: s})
	}
	_, err = e.ApplyFaults(context.Background(), kill, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
	after := e.Snapshot()
	if after.Degraded || len(e.Faults()) != 0 {
		t.Fatal("rejected transition mutated engine state")
	}
	if after.Epoch != before.Epoch || after.CommCost != before.CommCost {
		t.Fatalf("snapshot changed on rejected transition: %+v vs %+v", before, after)
	}
}

func TestApplyFaultsRetriesThenExactRepair(t *testing.T) {
	fails := 2
	e, _ := newEngineOpts(t, Policy{RepairRetries: 3, RepairBackoff: time.Millisecond}, 7,
		WithMigrator(failNMigrator{n: &fails, panics: true}))
	victim := e.Snapshot().Placement[0]
	res, err := e.ApplyFaults(context.Background(), []fault.Fault{{Kind: fault.Switch, U: victim}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts=%d, want 3 (2 failures + 1 success)", res.Attempts)
	}
	if res.Repair.Fallback {
		t.Fatal("third attempt should have produced an exact repair")
	}
	if e.Metrics().RepairFallbacks != 0 {
		t.Fatal("no fallback should have been committed")
	}
}

func TestApplyFaultsAcceptsFallbackAfterRetries(t *testing.T) {
	e, _ := newEngineOpts(t, Policy{RepairRetries: 2, RepairBackoff: time.Millisecond}, 7,
		WithMigrator(panicMigrator{}))
	victim := e.Snapshot().Placement[0]
	res, err := e.ApplyFaults(context.Background(), []fault.Fault{{Kind: fault.Switch, U: victim}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || !res.Repair.Fallback {
		t.Fatalf("want 2 attempts ending in committed fallback, got %+v", res)
	}
	if m := e.Metrics(); m.RepairFallbacks != 1 || m.Repairs != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	for _, s := range e.Snapshot().Placement {
		if s == victim {
			t.Fatal("fallback placement still on dead switch")
		}
	}
}

func TestApplyFaultsNoopAndHealValidation(t *testing.T) {
	e, _ := newEngine(t, Policy{}, 7)
	f := fault.Fault{Kind: fault.Switch, U: e.cfg.PPDC.Topo.Switches[0]}
	if _, err := e.ApplyFaults(context.Background(), nil, []fault.Fault{f}); err == nil {
		t.Fatal("healing an inactive fault should fail")
	}
	if _, err := e.ApplyFaults(context.Background(), []fault.Fault{{Kind: fault.Switch, U: -5}}, nil); err == nil {
		t.Fatal("injecting an invalid fault should fail")
	}
	res, err := e.ApplyFaults(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 || res.Healed != 0 || res.Repair != nil {
		t.Fatalf("empty transition should be a no-op report: %+v", res)
	}
	// Re-injecting an active fault is idempotent.
	if _, err := e.ApplyFaults(context.Background(), []fault.Fault{f}, nil); err != nil {
		t.Fatal(err)
	}
	res, err = e.ApplyFaults(context.Background(), []fault.Fault{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 || len(res.Active) != 1 {
		t.Fatalf("re-inject should be idempotent: %+v", res)
	}
}

func TestStateRoundTripWithFaults(t *testing.T) {
	e, _ := newEngine(t, Policy{}, 7)
	victim := e.Snapshot().Placement[0]
	if _, err := e.ApplyFaults(context.Background(), []fault.Fault{{Kind: fault.Switch, U: victim}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	data, err := e.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	r, err := ResumeJSON(e.cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := e.Snapshot(), r.Snapshot()
	if !s2.Degraded || s2.ActiveFaults != 1 {
		t.Fatalf("resumed engine lost degraded mode: %+v", s2)
	}
	if s1.CommCost != s2.CommCost || s1.Epoch != s2.Epoch {
		t.Fatalf("resume mismatch: %+v vs %+v", s1, s2)
	}
	if len(r.Faults()) != 1 {
		t.Fatalf("faults=%v, want 1", r.Faults())
	}
	// The resumed engine can heal back to pristine.
	if _, err := r.ApplyFaults(context.Background(), nil, []fault.Fault{{Kind: fault.Switch, U: victim}}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot().Degraded {
		t.Fatal("heal after resume failed")
	}
}

// TestApplyFaultsDegrade drives the soft-failure path end to end: a
// degrade re-prices the fabric without killing anything, a factor change
// counts as a fresh injection, the heal names only the link, and the
// engine returns to pristine bit-exact state.
func TestApplyFaultsDegrade(t *testing.T) {
	e, _ := newEngine(t, Policy{}, 7)
	d := e.cfg.PPDC
	// Degrade the first link of the fabric by 5x.
	g := d.Topo.Graph
	var u, v int
	for x := 0; x < g.Order() && v == 0; x++ {
		for _, ed := range g.Neighbors(x) {
			if x < ed.To {
				u, v = x, ed.To
				break
			}
		}
	}
	deg := fault.Fault{Kind: fault.Degrade, U: u, V: v, Factor: 5}

	res, err := e.ApplyFaults(context.Background(), []fault.Fault{deg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Injected != 1 || len(res.Unserved) != 0 {
		t.Fatalf("degrade transition: %+v", res)
	}
	snap := e.Snapshot()
	if !snap.Degraded || snap.ActiveFaults != 1 || snap.UnservedFlows != 0 {
		t.Fatalf("degrade must not unserve flows: %+v", snap)
	}
	pw := d.Topo.Graph.EdgeWeight(u, v)
	if got := e.view.PPDC().Topo.Graph.EdgeWeight(u, v); got != pw*5 {
		t.Fatalf("serving fabric edge weight %v, want %v", got, pw*5)
	}

	// Re-degrading at a different factor replaces the multiplier and
	// counts as an injection (the set changed), not a no-op.
	deg2 := fault.Fault{Kind: fault.Degrade, U: u, V: v, Factor: 2}
	res, err = e.ApplyFaults(context.Background(), []fault.Fault{deg2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 1 || len(res.Active) != 1 {
		t.Fatalf("factor change not treated as injection: %+v", res)
	}
	if got := e.view.PPDC().Topo.Graph.EdgeWeight(u, v); got != pw*2 {
		t.Fatalf("replaced factor: edge weight %v, want %v", got, pw*2)
	}
	// Re-degrading at the SAME factor is a no-op.
	res, err = e.ApplyFaults(context.Background(), []fault.Fault{deg2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 {
		t.Fatalf("identical re-degrade counted as injection: %+v", res)
	}

	// Heal names the link only — no factor — and restores pristine costs.
	heal := fault.Fault{Kind: fault.Degrade, U: v, V: u}
	res, err = e.ApplyFaults(context.Background(), nil, []fault.Fault{heal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Healed != 1 || len(res.Active) != 0 {
		t.Fatalf("degrade heal: %+v", res)
	}
	if snap := e.Snapshot(); snap.Degraded || snap.ActiveFaults != 0 {
		t.Fatalf("engine still degraded after heal: %+v", snap)
	}
	// Healing it twice is an error, like any inactive fault.
	if _, err := e.ApplyFaults(context.Background(), nil, []fault.Fault{heal}); err == nil {
		t.Fatal("double heal of degrade succeeded")
	}
	// Bad factors are rejected atomically.
	bad := fault.Fault{Kind: fault.Degrade, U: u, V: v, Factor: -1}
	if _, err := e.ApplyFaults(context.Background(), []fault.Fault{bad}, nil); err == nil {
		t.Fatal("negative degrade factor accepted")
	}
}
