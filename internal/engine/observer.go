package engine

import (
	"fmt"
	"time"

	"vnfopt/internal/obs"
)

// Observer is the engine's observability sink: a set of pre-resolved
// metric handles (so the Step hot path never does a registry lookup)
// plus an optional event log. Build one per engine with NewObserver; a
// nil *Observer disables instrumentation entirely — every use is behind
// one nil check, and the obs handles themselves are nil-safe, so the
// disabled configuration costs nothing measurable.
//
// Observer also implements model.CacheObserver, so the engine wires it
// straight into its WorkloadCache: rebuild timings and per-pair delta
// magnitudes are attributed to the same scenario as the epoch metrics.
type Observer struct {
	// Registry is the backing registry (nil when metrics are disabled).
	Registry *obs.Registry
	// Events receives migration/error events (nil to drop them).
	Events *obs.EventLog

	epochSeconds    *obs.Histogram
	consultSeconds  *obs.Histogram
	improvement     *obs.Histogram
	deltaMagnitude  *obs.Histogram
	rebuildSeconds  *obs.Histogram
	drift           *obs.Gauge
	commCost        *obs.Gauge
	degraded        *obs.Gauge
	activeFaults    *obs.Gauge
	unservedFlows   *obs.Gauge
	sfcAdmitted     *obs.Gauge
	sfcRejected     *obs.Gauge
	linkUtilization *obs.Gauge
	epochs          *obs.Counter
	updates         *obs.Counter
	coalesced       *obs.Counter
	consults        *obs.Counter
	migrations      *obs.Counter
	moves           *obs.Counter
	rebuilds        *obs.Counter
	deltas          *obs.Counter
	faultsInjected  *obs.Counter
	faultsHealed    *obs.Counter
	repairs         *obs.Counter
	repairFallbacks *obs.Counter
}

// NewObserver resolves the engine metric family against r, labelling
// every series with the scenario name when non-empty. Either argument
// may be nil; a fully nil observer is better expressed as a nil
// *Observer.
func NewObserver(r *obs.Registry, events *obs.EventLog, scenario string) *Observer {
	l := ""
	if scenario != "" {
		l = fmt.Sprintf("{scenario=%q}", scenario)
	}
	return &Observer{
		Registry:        r,
		Events:          events,
		epochSeconds:    r.Histogram("vnfopt_engine_epoch_seconds" + l),
		consultSeconds:  r.Histogram("vnfopt_engine_consult_seconds" + l),
		improvement:     r.Histogram("vnfopt_engine_improvement" + l),
		deltaMagnitude:  r.Histogram("vnfopt_cache_delta_magnitude" + l),
		rebuildSeconds:  r.Histogram("vnfopt_cache_rebuild_seconds" + l),
		drift:           r.Gauge("vnfopt_engine_drift_ratio" + l),
		commCost:        r.Gauge("vnfopt_engine_comm_cost" + l),
		degraded:        r.Gauge("vnfopt_engine_degraded" + l),
		activeFaults:    r.Gauge("vnfopt_engine_active_faults" + l),
		unservedFlows:   r.Gauge("vnfopt_engine_unserved_flows" + l),
		sfcAdmitted:     r.Gauge("vnfopt_sfcroute_admitted" + l),
		sfcRejected:     r.Gauge("vnfopt_sfcroute_rejected" + l),
		linkUtilization: r.Gauge("vnfopt_link_utilization" + l),
		epochs:          r.Counter("vnfopt_engine_epochs_total" + l),
		updates:         r.Counter("vnfopt_engine_updates_total" + l),
		coalesced:       r.Counter("vnfopt_engine_updates_coalesced_total" + l),
		consults:        r.Counter("vnfopt_engine_consults_total" + l),
		migrations:      r.Counter("vnfopt_engine_migrations_total" + l),
		moves:           r.Counter("vnfopt_engine_moves_total" + l),
		rebuilds:        r.Counter("vnfopt_cache_rebuilds_total" + l),
		deltas:          r.Counter("vnfopt_cache_deltas_total" + l),
		faultsInjected:  r.Counter("vnfopt_engine_faults_injected_total" + l),
		faultsHealed:    r.Counter("vnfopt_engine_faults_healed_total" + l),
		repairs:         r.Counter("vnfopt_engine_repairs_total" + l),
		repairFallbacks: r.Counter("vnfopt_engine_repair_fallbacks_total" + l),
	}
}

// CacheRebuilt implements model.CacheObserver.
func (o *Observer) CacheRebuilt(pairs int, elapsed time.Duration) {
	if o == nil {
		return
	}
	o.rebuilds.Inc()
	o.rebuildSeconds.Observe(elapsed.Seconds())
}

// CacheDelta implements model.CacheObserver.
func (o *Observer) CacheDelta(magnitude float64) {
	if o == nil {
		return
	}
	o.deltas.Inc()
	o.deltaMagnitude.Observe(magnitude)
}

// observeIngest records one accepted OfferRates batch.
func (o *Observer) observeIngest(accepted, coalesced int) {
	if o == nil {
		return
	}
	o.updates.Add(int64(accepted))
	o.coalesced.Add(int64(coalesced))
}

// observeStep records one closed epoch. drift is the pre-migration
// cost ratio against the committed reference (1 = no drift).
func (o *Observer) observeStep(res StepResult, drift float64, consultTime time.Duration, improvement float64) {
	if o == nil {
		return
	}
	o.epochs.Inc()
	o.epochSeconds.Observe(res.Elapsed.Seconds())
	o.drift.Set(drift)
	o.commCost.Set(res.CommCost)
	if res.Consulted {
		o.consults.Inc()
		o.consultSeconds.Observe(consultTime.Seconds())
	}
	if res.Migrated {
		o.migrations.Inc()
		o.moves.Add(int64(res.Moves))
		o.improvement.Observe(improvement)
		o.Events.Append("migration",
			fmt.Sprintf("epoch %d: %d VNFs moved", res.Epoch, res.Moves),
			map[string]float64{
				"epoch":       float64(res.Epoch),
				"moves":       float64(res.Moves),
				"mig_cost":    res.MigCost,
				"comm_cost":   res.CommCost,
				"improvement": improvement,
			})
	}
}

// observeRouting records one capacity-aware routing pass: admission
// gauges, the hottest link's utilization, and an event when the pass
// rejected flows.
func (o *Observer) observeRouting(rep *RoutingReport) {
	if o == nil {
		return
	}
	o.sfcAdmitted.Set(float64(rep.Admitted))
	o.sfcRejected.Set(float64(rep.Rejected))
	o.linkUtilization.Set(rep.MaxUtilization)
	if rep.Rejected > 0 {
		o.Events.Append("admission_rejected",
			fmt.Sprintf("epoch %d: %d flows rejected (rate %.6g), max link utilization %.3f",
				rep.Epoch, rep.Rejected, rep.RejectedRate, rep.MaxUtilization),
			map[string]float64{
				"epoch":           float64(rep.Epoch),
				"rejected":        float64(rep.Rejected),
				"rejected_rate":   rep.RejectedRate,
				"max_utilization": rep.MaxUtilization,
			})
	}
}

// observeFaults records one committed topology-event transition: the
// degraded-mode gauges plus fault/repair counters and events.
func (o *Observer) observeFaults(res *FaultResult) {
	if o == nil {
		return
	}
	if res.Degraded {
		o.degraded.Set(1)
	} else {
		o.degraded.Set(0)
	}
	o.activeFaults.Set(float64(len(res.Active)))
	o.unservedFlows.Set(float64(len(res.Unserved)))
	o.faultsInjected.Add(int64(res.Injected))
	o.faultsHealed.Add(int64(res.Healed))
	kind := "fault_injected"
	if res.Injected == 0 {
		kind = "fault_healed"
	}
	o.Events.Append(kind,
		fmt.Sprintf("%d injected, %d healed; %d active, %d flows unserved",
			res.Injected, res.Healed, len(res.Active), len(res.Unserved)),
		map[string]float64{
			"injected": float64(res.Injected),
			"healed":   float64(res.Healed),
			"active":   float64(len(res.Active)),
			"unserved": float64(len(res.Unserved)),
		})
	if res.Repair == nil {
		return
	}
	o.repairs.Inc()
	if res.Repair.Fallback {
		o.repairFallbacks.Inc()
	}
	if res.Repair.Moves > 0 || res.Repair.Fallback {
		o.Events.Append("repair",
			fmt.Sprintf("repair moved %d VNFs (%d forced, cost %.6g, fallback=%v, attempts=%d)",
				res.Repair.Moves, len(res.Repair.Forced), res.Repair.Cost, res.Repair.Fallback, res.Attempts),
			map[string]float64{
				"moves":    float64(res.Repair.Moves),
				"forced":   float64(len(res.Repair.Forced)),
				"cost":     res.Repair.Cost,
				"attempts": float64(res.Attempts),
			})
	}
}

// observeRepairRetry records one repair attempt that fell back and will
// be retried.
func (o *Observer) observeRepairRetry(attempt int, reason string) {
	if o == nil {
		return
	}
	o.Events.Append("repair_retry",
		fmt.Sprintf("repair attempt %d fell back (%s); retrying", attempt, reason),
		map[string]float64{"attempt": float64(attempt)})
}

// observeError records a failed Step.
func (o *Observer) observeError(epoch int, err error) {
	if o == nil {
		return
	}
	o.Registry.Counter("vnfopt_engine_step_errors_total").Inc()
	o.Events.Append("step_error", fmt.Sprintf("epoch %d: %v", epoch, err),
		map[string]float64{"epoch": float64(epoch)})
}
