package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vnfopt/internal/fault"
	"vnfopt/internal/migration"
)

// ErrInfeasible reports a fault transition that would leave the fabric
// unable to host the SFC (no live switch region with enough capacity).
// ApplyFaults rejects such transitions atomically: the engine keeps
// serving on its previous state, and the daemon maps the error to 503.
var ErrInfeasible = errors.New("engine: no feasible placement on the degraded fabric")

// FaultResult reports one topology-event transition.
type FaultResult struct {
	// Active is the fault set after the transition, sorted.
	Active []fault.Fault `json:"active"`
	// Degraded reports whether any fault remains active.
	Degraded bool `json:"degraded"`
	// Injected/Healed count the faults this call actually added/removed
	// (re-injecting an active fault is a no-op, not an error).
	Injected int `json:"injected"`
	Healed   int `json:"healed"`
	// Unserved lists the flows excluded from service after the
	// transition, with reasons.
	Unserved []fault.UnservedFlow `json:"unserved,omitempty"`
	// Repair is the repair pass that re-validated the placement on the
	// new fabric (nil when the call was a no-op).
	Repair *migration.RepairResult `json:"repair,omitempty"`
	// Attempts is the number of repair attempts made; attempts beyond
	// the first retried a fallback hoping for an exact consult.
	Attempts int `json:"repair_attempts,omitempty"`
}

// ApplyFaults is the engine's topology-event path, the structural
// counterpart of the rate-ingest path: inject marks links/switches/hosts
// down, heal brings them back, and the engine atomically swaps in the
// degraded view, replans service (excluding unreachable flows), rebuilds
// the aggregated cost cache over the served workload, and runs a repair
// migration so the placement only ever uses live switches.
//
// The repair consults the engine's configured migrator via
// migration.Repair; when the exact consult fails or is cancelled the
// greedy fallback is retried up to Policy.RepairRetries times with
// doubling backoff starting at Policy.RepairBackoff before the fallback
// placement is accepted. Repair never leaves the engine on a dead
// switch once a feasible patch exists.
//
// On any error the engine state is untouched. The call fails with
// ErrInfeasible (wrapped) when the surviving fabric cannot host the SFC.
func (e *Engine) ApplyFaults(ctx context.Context, inject, heal []fault.Fault) (*FaultResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	next := e.faults
	injected, healed := 0, 0
	for _, f := range inject {
		if err := f.Validate(e.cfg.PPDC); err != nil {
			return nil, fmt.Errorf("engine: inject: %w", err)
		}
		if !next.Contains(f) {
			injected++
		}
		next = next.Add(f)
	}
	for _, f := range heal {
		// Identity match, not exact match: healing a degrade names the
		// link, never the factor it was injected with.
		if !next.Active(f) {
			return nil, fmt.Errorf("engine: heal of inactive fault %s", f)
		}
		next = next.Remove(f)
		healed++
	}
	if injected == 0 && healed == 0 {
		return e.faultResult(nil, 0, 0, 0), nil
	}

	// Fold pending rates directly into the flow table so the service
	// plan and the rebuilt cache see the latest offered rates; the cache
	// is reconstructed below either way.
	for i, r := range e.pending {
		e.flows[i].Rate = r
	}
	clear(e.pending)

	// Delta-update from the currently served view (nil when pristine):
	// only the Dijkstra sources the transition invalidates are re-run,
	// bit-identical to the full rebuild fault.Apply would do.
	view, err := fault.ApplyDelta(e.cfg.PPDC, e.view, next)
	if err != nil {
		return nil, err
	}
	plan := view.PlanService(e.flows)
	if err := plan.Feasible(e.cfg.SFC.Len()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}

	retries := e.cfg.Policy.RepairRetries
	if retries <= 0 {
		retries = 3
	}
	backoff := e.cfg.Policy.RepairBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	var res *migration.RepairResult
	attempts := 0
	for {
		attempts++
		res, err = migration.Repair(ctx, plan.PPDC, e.cfg.PPDC, plan.Served, e.cfg.SFC, e.p, e.cfg.Mu, e.mig)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		if !res.Fallback || attempts >= retries || ctx.Err() != nil {
			break
		}
		e.obs.observeRepairRetry(attempts, res.FallbackReason)
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		backoff *= 2
	}

	// Commit: swap serving model, cache, masks, and placement together
	// under the engine lock.
	cache := plan.PPDC.NewWorkloadCache(plan.Served)
	if e.obs != nil {
		cache.SetObserver(e.obs)
	}
	e.cache = cache
	if next.Empty() {
		e.d, e.view, e.servable, e.unserved = e.cfg.PPDC, nil, nil, nil
	} else {
		e.d, e.view, e.servable, e.unserved = plan.PPDC, view, plan.Servable, plan.Unserved
	}
	e.faults = next
	e.met.FaultsInjected += int64(injected)
	e.met.FaultsHealed += int64(healed)
	e.met.Repairs++
	if res.Fallback {
		e.met.RepairFallbacks++
	}
	if res.Moves > 0 {
		e.p = res.Placement.Clone()
		e.met.Migrations++
		e.met.Moves += res.Moves
		e.lastMigEpoch = e.epoch
	}
	// Re-anchor the drift trigger: the committed reference was priced on
	// the previous fabric and workload.
	cur := e.cache.CommCost(e.p)
	e.committedCost = cur
	e.committedEpoch = e.epoch

	// Re-route on the new serving model (routeEpoch rebuilds the router
	// lazily when it sees the swapped model). The transition is already
	// committed, so a routing failure — an engine invariant violation,
	// since capacities and placements were validated — degrades to an
	// event plus a dropped report rather than unwinding the fault apply.
	if rerr := e.routeEpoch(); rerr != nil {
		e.obs.observeError(e.epoch, rerr)
		e.routingReport = nil
	}
	out := e.faultResult(res, injected, healed, attempts)
	e.obs.observeFaults(out)
	e.publish(cur)
	return out, nil
}

// Faults returns the active fault set, sorted deterministically.
func (e *Engine) Faults() []fault.Fault {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.faults.Faults()
}

// Unserved returns the flows currently excluded from service.
func (e *Engine) Unserved() []fault.UnservedFlow {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]fault.UnservedFlow(nil), e.unserved...)
}

// faultResult assembles a FaultResult from the current engine state.
// Called with e.mu held.
func (e *Engine) faultResult(res *migration.RepairResult, injected, healed, attempts int) *FaultResult {
	return &FaultResult{
		Active:   e.faults.Faults(),
		Degraded: e.view != nil,
		Injected: injected,
		Healed:   healed,
		Unserved: append([]fault.UnservedFlow(nil), e.unserved...),
		Repair:   res,
		Attempts: attempts,
	}
}
