package engine

import (
	"context"
	"testing"

	"vnfopt/internal/fault"
	"vnfopt/internal/model"
	"vnfopt/internal/obs"
	"vnfopt/internal/sfcroute"
	"vnfopt/internal/topology"
)

func routingScenario(t *testing.T) (*model.PPDC, model.SFC, model.Workload) {
	t.Helper()
	d := model.MustNew(topology.MustFatTree(4, nil), model.Options{})
	hosts := d.Hosts()
	w := model.Workload{
		{Src: hosts[0], Dst: hosts[8], Rate: 10},
		{Src: hosts[1], Dst: hosts[9], Rate: 10},
		{Src: hosts[2], Dst: hosts[10], Rate: 10},
		{Src: hosts[3], Dst: hosts[11], Rate: 10},
	}
	return d, model.NewSFC(2), w
}

func TestEngineCapacityRoutingPublishes(t *testing.T) {
	d, sfc, w := routingScenario(t)
	reg := obs.NewRegistry()
	o := NewObserver(reg, obs.NewEventLog(16), "test")
	e, err := New(Config{PPDC: d, SFC: sfc, Base: w, Mu: 1},
		WithCapacityRouting(RoutingConfig{LinkCapacity: 1000}),
		WithObserver(o))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap := e.Snapshot()
	if snap.Routing == nil {
		t.Fatal("initial snapshot has no routing summary")
	}
	if snap.Routing.Admitted != len(w) || snap.Routing.Rejected != 0 {
		t.Fatalf("initial routing %+v, want all %d admitted", snap.Routing, len(w))
	}
	res, err := e.Step()
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Routing == nil || res.Routing.Admitted != len(w) {
		t.Fatalf("step routing %+v", res.Routing)
	}
	rep := e.RoutingReport()
	if rep == nil || len(rep.Decisions) != len(w) {
		t.Fatalf("RoutingReport %+v", rep)
	}
	if rep.MaxUtilization <= 0 || rep.MaxUtilization > 0.1 {
		t.Fatalf("max utilization %v, want small positive", rep.MaxUtilization)
	}
	if len(rep.Links) == 0 || len(rep.Saturated) != 0 {
		t.Fatalf("links %d saturated %d, want loaded links and none saturated", len(rep.Links), len(rep.Saturated))
	}
	if got := reg.Gauge(`vnfopt_sfcroute_admitted{scenario="test"}`).Value(); got != float64(len(w)) {
		t.Fatalf("admitted gauge %v, want %d", got, len(w))
	}
	if got := reg.Gauge(`vnfopt_link_utilization{scenario="test"}`).Value(); got != rep.MaxUtilization {
		t.Fatalf("utilization gauge %v, want %v", got, rep.MaxUtilization)
	}
}

func TestEngineAdmissionRejectsOverCapacity(t *testing.T) {
	d, sfc, w := routingScenario(t)
	reg := obs.NewRegistry()
	o := NewObserver(reg, obs.NewEventLog(16), "")
	// Capacity 15 admits one 10-rate flow per link but not two; the four
	// flows funnel through the two shared chain switches, so some must be
	// rejected — and Classify proves the ones that are.
	e, err := New(Config{PPDC: d, SFC: sfc, Base: w, Mu: 1},
		WithCapacityRouting(RoutingConfig{LinkCapacity: 15, Classify: true}),
		WithObserver(o))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := e.RoutingReport()
	if rep == nil || rep.Rejected == 0 {
		t.Fatalf("expected rejections under capacity 15, got %+v", rep)
	}
	if rep.Admitted+rep.Rejected != len(w) {
		t.Fatalf("admitted %d + rejected %d != %d flows", rep.Admitted, rep.Rejected, len(w))
	}
	if len(rep.RejectReasons) == 0 {
		t.Fatalf("no reject reasons recorded: %+v", rep)
	}
	if got := reg.Gauge("vnfopt_sfcroute_rejected").Value(); got != float64(rep.Rejected) {
		t.Fatalf("rejected gauge %v, want %d", got, rep.Rejected)
	}
	snap := e.Snapshot()
	if snap.Routing == nil || snap.Routing.Rejected != rep.Rejected {
		t.Fatalf("snapshot summary %+v does not match report", snap.Routing)
	}
}

func TestEngineRoutingSurvivesFaultTransition(t *testing.T) {
	d, sfc, w := routingScenario(t)
	e, err := New(Config{PPDC: d, SFC: sfc, Base: w, Mu: 1},
		WithCapacityRouting(RoutingConfig{LinkCapacity: 1000}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Kill one core switch: the serving model swaps and the router must
	// rebuild against the degraded fabric.
	core := d.Switches()[len(d.Switches())-1]
	if _, err := e.ApplyFaults(context.Background(), []fault.Fault{{Kind: fault.Switch, U: core}}, nil); err != nil {
		t.Fatalf("ApplyFaults: %v", err)
	}
	rep := e.RoutingReport()
	if rep == nil || rep.Admitted == 0 {
		t.Fatalf("no routing report after fault: %+v", rep)
	}
	if _, err := e.Step(); err != nil {
		t.Fatalf("Step after fault: %v", err)
	}
	if rep = e.RoutingReport(); rep == nil || rep.Epoch != 1 {
		t.Fatalf("stale routing report after post-fault step: %+v", rep)
	}
}

func TestEngineRoutingDisabledByDefault(t *testing.T) {
	d, sfc, w := routingScenario(t)
	e, err := New(Config{PPDC: d, SFC: sfc, Base: w, Mu: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.Snapshot().Routing != nil || e.RoutingReport() != nil {
		t.Fatal("routing artifacts present without WithCapacityRouting")
	}
	res, err := e.Step()
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Routing != nil {
		t.Fatal("step routing summary present without WithCapacityRouting")
	}
}

func TestEngineRoutingConfigValidation(t *testing.T) {
	d, sfc, w := routingScenario(t)
	if _, err := New(Config{PPDC: d, SFC: sfc, Base: w, Mu: 1},
		WithCapacityRouting(RoutingConfig{})); err == nil {
		t.Fatal("accepted zero link capacity")
	}
	if _, err := New(Config{PPDC: d, SFC: sfc, Base: w, Mu: 1},
		WithCapacityRouting(RoutingConfig{LinkCapacity: 10, Alpha: -1})); err == nil {
		t.Fatal("accepted negative alpha")
	}
}

// TestEngineAdmissionSpreadsWithinEpoch pins the mechanism behind the
// flash-crowd example: with a utilization target, residual-headroom
// pruning pushes same-pair flows onto disjoint equal-cost paths inside
// one epoch, keeping the hottest link at the target while the
// capacity-blind route stacks everything on one path.
func TestEngineAdmissionSpreadsWithinEpoch(t *testing.T) {
	d := model.MustNew(topology.MustFatTree(4, nil), model.Options{})
	hosts := d.Hosts()
	// Four flows per host pair across pods: 8 × rate 10 between pods 0↔2.
	var w model.Workload
	for i := 0; i < 4; i++ {
		w = append(w, model.VMPair{Src: hosts[i], Dst: hosts[8+i], Rate: 20})
	}
	e, err := New(Config{PPDC: d, SFC: model.NewSFC(1), Base: w, Mu: 1},
		WithCapacityRouting(RoutingConfig{LinkCapacity: 100, MaxUtilization: 0.40, Classify: true}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := e.RoutingReport()
	if rep == nil {
		t.Fatal("no routing report")
	}
	if rep.MaxUtilization > 0.40+1e-12 {
		t.Fatalf("admission exceeded the 0.40 target: %v at %v", rep.MaxUtilization, rep.MaxLink)
	}
	for _, dec := range rep.Decisions {
		if !dec.Admitted && dec.Reason == sfcroute.ReasonInfeasible {
			t.Fatalf("flow %d provably infeasible under 0.40 target: %+v", dec.Flow, dec)
		}
	}
}
