package engine

import (
	"encoding/json"
	"fmt"

	"vnfopt/internal/fault"
	"vnfopt/internal/model"
)

// State is the engine's durable core — everything needed to resume the
// control loop after a crash or restart, given the same Config (the PPDC,
// SFC, flow endpoints, and policy are configuration, not state). The
// daemon persists one State per scenario on graceful shutdown.
type State struct {
	// Epoch is the number of completed epochs.
	Epoch int `json:"epoch"`
	// Rates holds the live rate of every flow, indexed as Config.Base.
	Rates []float64 `json:"rates"`
	// Placement is the committed placement.
	Placement model.Placement `json:"placement"`
	// CommittedCost/CommittedEpoch are the drift trigger's reference.
	CommittedCost  float64 `json:"committed_cost"`
	CommittedEpoch int     `json:"committed_epoch"`
	// LastMigration is the epoch of the last commit (-1 = none).
	LastMigration int `json:"last_migration"`
	// Faults holds the active topology faults; Resume reapplies them so
	// a restarted engine comes back in the same degraded mode it left.
	Faults []fault.Fault `json:"faults,omitempty"`
	// Metrics carries the monotonic counters across the restart.
	Metrics Metrics `json:"metrics"`
}

// State captures the engine's durable core. Pending (un-stepped) updates
// are not part of it: an epoch that has not closed has not happened.
func (e *Engine) State() *State {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := &State{
		Epoch:          e.epoch,
		Rates:          e.flows.Rates(),
		Placement:      e.p.Clone(),
		CommittedCost:  e.committedCost,
		CommittedEpoch: e.committedEpoch,
		LastMigration:  e.lastMigEpoch,
		Faults:         e.faults.Faults(),
		Metrics:        e.met,
	}
	st.Metrics.Trajectory = append([]float64(nil), e.met.Trajectory...)
	return st
}

// MarshalState serializes State as JSON.
func (e *Engine) MarshalState() ([]byte, error) {
	return json.Marshal(e.State())
}

// Resume builds an engine from a configuration plus a saved State,
// restoring rates, placement, trigger reference, and counters. The Config
// must describe the same scenario the State was captured from (same flow
// count and fabric); the placement is re-validated against it.
func Resume(cfg Config, st *State) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("engine: nil state")
	}
	if len(st.Rates) != len(cfg.Base) {
		return nil, fmt.Errorf("engine: state has %d rates for %d flows", len(st.Rates), len(cfg.Base))
	}
	if st.Placement == nil {
		return nil, fmt.Errorf("engine: state has no placement")
	}
	cfg.Initial = st.Placement
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.flows = e.flows.WithRates(st.Rates)
	e.cache.SetWorkload(e.flows)
	if len(st.Faults) > 0 {
		// Reapply the saved faults silently: the saved placement was
		// already repaired, so no new repair pass runs — it only has to
		// still validate on the degraded serving model.
		fs := fault.NewFaultSet(st.Faults...)
		v, err := fault.Apply(cfg.PPDC, fs)
		if err != nil {
			return nil, fmt.Errorf("engine: state faults: %w", err)
		}
		plan := v.PlanService(e.flows)
		if err := plan.Feasible(cfg.SFC.Len()); err != nil {
			return nil, fmt.Errorf("engine: state faults: %w", err)
		}
		if err := st.Placement.Validate(plan.PPDC, cfg.SFC); err != nil {
			return nil, fmt.Errorf("engine: state placement invalid on degraded fabric: %w", err)
		}
		cache := plan.PPDC.NewWorkloadCache(plan.Served)
		if e.obs != nil {
			cache.SetObserver(e.obs)
		}
		e.cache = cache
		e.faults = fs
		e.d, e.view, e.servable, e.unserved = plan.PPDC, v, plan.Servable, plan.Unserved
	}
	e.epoch = st.Epoch
	e.committedCost = st.CommittedCost
	e.committedEpoch = st.CommittedEpoch
	e.lastMigEpoch = st.LastMigration
	e.met = st.Metrics
	e.met.Trajectory = append([]float64(nil), st.Metrics.Trajectory...)
	e.publish(e.cache.CommCost(e.p))
	return e, nil
}

// ResumeJSON is Resume from serialized state.
func ResumeJSON(cfg Config, data []byte) (*Engine, error) {
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("engine: bad state: %w", err)
	}
	return Resume(cfg, &st)
}
