package engine

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentIngestAndReads hammers the engine from concurrent
// writers (OfferRates), a stepper, and lock-free readers (Snapshot) plus
// locked readers (Metrics, State). Run under `go test -race`: the test's
// assertions are weak on purpose — the race detector is the oracle.
func TestConcurrentIngestAndReads(t *testing.T) {
	e, sched := newEngine(t, Policy{Hysteresis: 1.05}, 11)

	const writers, readers = 4, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(e.Flows())
				if _, err := e.OfferRates([]RateUpdate{{Flow: i, Rate: rng.Float64() * 50}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Snapshot()
				if len(s.Placement) != 3 || s.CommCost < 0 {
					t.Errorf("inconsistent snapshot %+v", s)
					return
				}
				if m := e.Metrics(); m.Epochs < 0 {
					t.Errorf("bad metrics %+v", m)
					return
				}
				_ = e.State()
			}
		}()
	}

	// The stepper threads the hourly schedule through while the chaos
	// writers race it.
	for _, rates := range sched {
		if _, err := e.OfferRates(hourUpdates(rates)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if s := e.Snapshot(); s.Epoch != len(sched) {
		t.Fatalf("epoch %d after %d steps", s.Epoch, len(sched))
	}
}
