// Package stats provides the small statistics toolkit the experiment
// harness uses to report results the way the paper does: each data point is
// an average of repeated runs with a 95% confidence interval.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample (n-1) standard deviation; 0 for fewer than two
// points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tCritical95 holds two-sided 95% Student-t critical values by degrees of
// freedom for small samples; larger samples fall back to the normal 1.960.
var tCritical95 = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	25: 2.060, 30: 2.042,
}

// tValue95 returns the two-sided 95% critical value for df degrees of
// freedom: the largest tabulated df not exceeding the request, or the
// normal-approximation 1.960 beyond the table.
func tValue95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t, ok := tCritical95[df]; ok {
		return t
	}
	if df > 30 {
		return 1.960
	}
	largest := 0
	for d := range tCritical95 {
		if d <= df && d > largest {
			largest = d
		}
	}
	return tCritical95[largest]
}

// Summary is a mean with its 95% confidence half-width, as plotted in the
// paper ("average of 20 runs with a 95% confidence interval").
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	CI95Half float64
}

// Summarize computes the Summary of a sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	s := Summary{N: n, Mean: Mean(xs), StdDev: StdDev(xs)}
	if n >= 2 {
		s.CI95Half = tValue95(n-1) * s.StdDev / math.Sqrt(float64(n))
	}
	return s
}

// String renders "mean ± half (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f (n=%d)", s.Mean, s.CI95Half, s.N)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (the same R-7 rule as
// numpy.percentile). xs must be sorted ascending; NaN for an empty
// sample or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}
