package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	// Sample stddev of {2,4,4,4,5,5,7,9} is ≈2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if sd := StdDev(xs); math.Abs(sd-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", sd)
	}
	if StdDev([]float64{5}) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate stddev should be 0")
	}
}

func TestStdDevConstantSample(t *testing.T) {
	if sd := StdDev([]float64{3, 3, 3, 3}); sd != 0 {
		t.Fatalf("constant sample stddev = %v", sd)
	}
}

func TestTValue95(t *testing.T) {
	if v := tValue95(19); v != 2.093 { // paper: 20 runs -> df 19
		t.Fatalf("t(19) = %v, want 2.093", v)
	}
	if v := tValue95(1); v != 12.706 {
		t.Fatalf("t(1) = %v", v)
	}
	if v := tValue95(100); v != 1.960 {
		t.Fatalf("t(100) = %v", v)
	}
	if v := tValue95(22); v != tCritical95[20] {
		t.Fatalf("t(22) = %v, want table value for df=20", v)
	}
	if !math.IsNaN(tValue95(0)) {
		t.Fatal("t(0) should be NaN")
	}
}

func TestSummarize20Runs(t *testing.T) {
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i) // mean 9.5
	}
	s := Summarize(xs)
	if s.N != 20 || s.Mean != 9.5 {
		t.Fatalf("summary = %+v", s)
	}
	want := 2.093 * StdDev(xs) / math.Sqrt(20)
	if math.Abs(s.CI95Half-want) > 1e-9 {
		t.Fatalf("CI half = %v, want %v", s.CI95Half, want)
	}
	if !strings.Contains(s.String(), "± ") || !strings.Contains(s.String(), "n=20") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummarizeSinglePoint(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.CI95Half != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	for _, tc := range []struct{ q, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
		{0.1, 14}, {0.99, 49.6},
	} {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-point quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("degenerate quantiles should be NaN")
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		finite := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				finite = append(finite, x)
			}
		}
		if len(finite) == 0 {
			return true
		}
		lo, hi := finite[0], finite[0]
		for _, x := range finite {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		m := Mean(finite)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
