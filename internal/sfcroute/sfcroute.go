// Package sfcroute is the capacity-aware routing subsystem: it turns
// link capacity from an after-the-fact report (internal/routing) into a
// first-class routing constraint via the layered-graph transformation of
// Sallam et al. ("Shortest Path and Maximum Flow Problems Under Service
// Function Chaining Constraints").
//
// For a chain of n VNFs the transformation stacks n+1 copies of the
// fabric and adds one directed zero-weight edge per VNF site from its
// copy in layer ℓ to its copy in layer ℓ+1. A path from (0, src) to
// (n, dst) then crosses exactly one site of every stage in order, so the
// SFC constraint becomes plain graph structure and two classical
// problems become tractable on top of the existing kernels:
//
//   - SFC-constrained shortest path: one zero-alloc CSR Dijkstra on the
//     layered snapshot (Layered.ShortestPath). With singleton sites —
//     one fixed switch per VNF, the placement case — the result is
//     exactly the metric-closure concatenation the optimizers price, and
//     the differential tests pin the two bit-for-bit on unit-weight
//     fabrics.
//
//   - SFC-constrained max flow / min-cost routing: a directed flow
//     network over the layered expansion solved by internal/mcf
//     (MaxFlow, MinCostRoute). Capacities apply per layer copy, which is
//     a relaxation of the true shared-capacity constraint (the exact
//     problem is NP-hard); the relaxed optimum is an *upper bound* on
//     the routable volume, so a demand exceeding it is provably
//     unroutable — the soundness direction admission control needs.
//
// Router combines both: congestion-aware link pricing (weights grow
// with utilization), residual-capacity tracking, unsplittable-path
// admission with bounded rerouting, and max-flow-backed rejection
// classification. The online engine re-prices and re-routes every epoch
// in its drift loop.
package sfcroute

import (
	"errors"
	"fmt"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
)

// ErrNoSite marks a chain stage with no feasible site: the layered
// graph would have an uncrossable layer boundary.
var ErrNoSite = errors.New("sfcroute: chain stage has no feasible site")

// ErrUnroutable marks a (src, dst) pair with no chain-constrained route
// under the current weights (disconnection or pruned-out capacity).
var ErrUnroutable = errors.New("sfcroute: no feasible route")

// PlacementSites converts a committed placement into the per-stage site
// sets of the layered transformation: one singleton set per VNF.
func PlacementSites(p model.Placement) [][]int {
	sites := make([][]int, len(p))
	for j, s := range p {
		sites[j] = []int{s}
	}
	return sites
}

// validateSites checks every stage is non-empty and within [0, n).
func validateSites(sites [][]int, n int) error {
	for l, stage := range sites {
		if len(stage) == 0 {
			return fmt.Errorf("%w: stage %d of %d", ErrNoSite, l+1, len(sites))
		}
		for _, v := range stage {
			if v < 0 || v >= n {
				return fmt.Errorf("sfcroute: stage %d site %d out of range [0,%d)", l+1, v, n)
			}
		}
	}
	return nil
}

// Layered is the layered expansion of one fabric snapshot for one chain
// spec: n+1 stacked copies with directed site crossings. It is immutable
// once built; routers swap weight arrays (pricing, pruning) with
// graph.CSR.WithWeights without rebuilding the structure.
type Layered struct {
	csr    *graph.CSR
	n      int // base fabric order
	stages int // chain length
}

// BuildLayered expands base for the given per-stage site sets. An empty
// sites slice (n=0 chain) degenerates to the plain fabric: shortest
// path on it is the ordinary point-to-point Dijkstra.
func BuildLayered(base *graph.CSR, sites [][]int) (*Layered, error) {
	if err := validateSites(sites, base.Order()); err != nil {
		return nil, err
	}
	return &Layered{csr: base.Layered(sites, 0), n: base.Order(), stages: len(sites)}, nil
}

// Order returns the layered vertex count, (stages+1) × BaseOrder().
func (L *Layered) Order() int { return L.csr.Order() }

// BaseOrder returns the fabric vertex count.
func (L *Layered) BaseOrder() int { return L.n }

// Stages returns the chain length n.
func (L *Layered) Stages() int { return L.stages }

// CSR exposes the layered snapshot (for weight-swapped routing runs).
func (L *Layered) CSR() *graph.CSR { return L.csr }

// PathResult is one chain-constrained route: its cost under the weights
// it was computed with, the projected fabric walk src..dst (layer
// crossings removed; a link traversed in two layers appears twice, as
// in routing.FlowRoute), and the site chosen for each stage in order.
type PathResult struct {
	Cost     float64 `json:"cost"`
	Walk     []int   `json:"walk"`
	Gateways []int   `json:"gateways"`
}

// ShortestPath computes the chain-constrained shortest path from src to
// dst on the layered snapshot's own weights, allocating its scratch.
func (L *Layered) ShortestPath(src, dst int) (PathResult, error) {
	dist := make([]float64, L.csr.Order())
	prev := make([]int32, L.csr.Order())
	var scratch graph.SSSPScratch
	return L.ShortestPathOn(L.csr, src, dst, dist, prev, &scratch)
}

// ShortestPathOn is the kernel form: it runs the zero-alloc CSR
// Dijkstra on w — a snapshot sharing this expansion's structure, e.g. a
// pruned or re-priced WithWeights view — with caller-owned dist/prev
// rows (length Order()) and scratch. Only the PathResult slices
// allocate.
func (L *Layered) ShortestPathOn(w *graph.CSR, src, dst int, dist []float64, prev []int32, s *graph.SSSPScratch) (PathResult, error) {
	if w.Order() != L.csr.Order() {
		return PathResult{}, fmt.Errorf("sfcroute: weight view order %d does not match layered order %d", w.Order(), L.csr.Order())
	}
	if src < 0 || src >= L.n || dst < 0 || dst >= L.n {
		return PathResult{}, fmt.Errorf("sfcroute: endpoints (%d,%d) out of range [0,%d)", src, dst, L.n)
	}
	w.DijkstraInto(src, dist, prev, s)
	target := L.stages*L.n + dst
	cost := dist[target]
	if cost == graph.Inf {
		return PathResult{}, fmt.Errorf("%w: %d → chain(%d stages) → %d", ErrUnroutable, src, L.stages, dst)
	}
	// Reconstruct the layered path, then project: a crossing keeps the
	// same base vertex across consecutive layered vertices (the fabric
	// has no self-loops, so equal consecutive base ids happen only at
	// crossings) and records the stage's chosen gateway.
	var rev []int
	for x := target; x != -1; x = int(prev[x]) {
		rev = append(rev, x)
	}
	res := PathResult{Cost: cost, Walk: make([]int, 0, len(rev))}
	if L.stages > 0 {
		res.Gateways = make([]int, 0, L.stages)
	}
	for i := len(rev) - 1; i >= 0; i-- {
		v := rev[i] % L.n
		if len(res.Walk) > 0 && res.Walk[len(res.Walk)-1] == v {
			res.Gateways = append(res.Gateways, v)
			continue
		}
		res.Walk = append(res.Walk, v)
	}
	return res, nil
}
