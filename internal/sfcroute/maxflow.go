package sfcroute

import (
	"fmt"
	"math"

	"vnfopt/internal/graph"
	"vnfopt/internal/mcf"
	"vnfopt/internal/routing"
)

// The flow-network side of the layered transformation. True
// SFC-constrained max flow with link capacities *shared across layers*
// is NP-hard, so the network built here applies each link's capacity
// per (layer, direction) copy — a polynomial relaxation whose optimum
// can only exceed the true value. That direction is exactly what
// admission control needs: if even the relaxation cannot ship a demand,
// the demand is provably unroutable and must be rejected. Conversely a
// path found by the Router is a feasibility certificate, so the two
// bounds bracket the NP-hard quantity from both sides.

// flowNetwork lays g out as a directed mcf network over the layered
// expansion: per layer, two arcs per undirected link (capacity capOf,
// cost = link weight); per stage, one uncapacitated zero-cost crossing
// arc at every site. arcLinks records each forward arc's physical link
// for flow extraction.
func flowNetwork(g *graph.Graph, sites [][]int, capOf routing.CapacityFunc) (nw *mcf.Network, arcIDs []int, arcLinks []routing.Link, err error) {
	V := g.Order()
	if err := validateSites(sites, V); err != nil {
		return nil, nil, nil, err
	}
	layers := len(sites) + 1
	nw = mcf.NewNetwork(layers * V)
	edges := g.Edges()
	for l := 0; l < layers; l++ {
		off := l * V
		for _, rec := range edges {
			link := routing.Link{U: rec.U, V: rec.V}
			c := capOf(link)
			if c < 0 || math.IsNaN(c) {
				return nil, nil, nil, fmt.Errorf("sfcroute: link (%d,%d) has invalid capacity %v", rec.U, rec.V, c)
			}
			arcIDs = append(arcIDs, nw.AddArc(off+rec.U, off+rec.V, c, rec.Weight))
			arcLinks = append(arcLinks, link)
			arcIDs = append(arcIDs, nw.AddArc(off+rec.V, off+rec.U, c, rec.Weight))
			arcLinks = append(arcLinks, link)
		}
	}
	for l, stage := range sites {
		off := l * V
		for _, s := range stage {
			nw.AddArc(off+s, off+V+s, math.Inf(1), 0)
		}
	}
	return nw, arcIDs, arcLinks, nil
}

// MaxFlow computes the chain-constrained max-flow relaxation bound from
// src to dst: the most traffic any routing (splittable, multi-path)
// could push through the chain if every link offered its full capacity
// in every layer. A demand above the returned Flow is provably
// unroutable.
func MaxFlow(g *graph.Graph, sites [][]int, src, dst int, capOf routing.CapacityFunc) (mcf.Result, error) {
	nw, _, _, err := flowNetwork(g, sites, capOf)
	if err != nil {
		return mcf.Result{}, err
	}
	s, t := src, len(sites)*g.Order()+dst
	if s == t {
		// n=0 with identical endpoints: nothing constrains the flow.
		return mcf.Result{Flow: math.Inf(1)}, nil
	}
	return nw.MinCostFlow(s, t, math.Inf(1))
}

// MinCostRoute ships amount units from src through the chain to dst at
// minimum cost on the relaxed layered network, returning the mcf result
// and the per-physical-link flow assignment (summed over layers and
// directions). The assignment is a splittable routing: every
// decomposed path respects the chain order, but a link used in several
// layers may exceed its capacity in aggregate — callers enforcing hard
// feasibility use Router.Admit instead.
func MinCostRoute(g *graph.Graph, sites [][]int, src, dst int, amount float64, capOf routing.CapacityFunc) (mcf.Result, map[routing.Link]float64, error) {
	if amount < 0 || math.IsNaN(amount) {
		return mcf.Result{}, nil, fmt.Errorf("sfcroute: invalid amount %v", amount)
	}
	nw, arcIDs, arcLinks, err := flowNetwork(g, sites, capOf)
	if err != nil {
		return mcf.Result{}, nil, err
	}
	s, t := src, len(sites)*g.Order()+dst
	if s == t {
		return mcf.Result{Flow: amount}, map[routing.Link]float64{}, nil
	}
	res, err := nw.MinCostFlow(s, t, amount)
	if err != nil {
		return mcf.Result{}, nil, err
	}
	assign := make(map[routing.Link]float64)
	for i, id := range arcIDs {
		if f := nw.Flow(id); f > 0 {
			assign[arcLinks[i]] += f
		}
	}
	return res, assign, nil
}

// MaxFlow is the Router's residual-capacity bound: the relaxation
// computed against current headroom (capacity × MaxUtilization − load).
// Admit consults it to prove rejections; callers can use it directly to
// answer "how much more could this chain absorb right now".
func (r *Router) MaxFlow(src, dst int) (mcf.Result, error) {
	if r.lay == nil {
		return mcf.Result{}, fmt.Errorf("sfcroute: BeginEpoch not called")
	}
	return MaxFlow(r.d.Topo.Graph, r.sites, src, dst, func(l routing.Link) float64 {
		return r.headroom(r.lidx[l])
	})
}
