package sfcroute

import (
	"fmt"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// benchSites picks a 3-stage chain over spread-out core switches.
func benchSites(d *model.PPDC) [][]int {
	sw := d.Switches()
	return [][]int{{sw[0]}, {sw[len(sw)/2]}, {sw[len(sw)-1]}}
}

func BenchmarkLayeredBuild(b *testing.B) {
	for _, k := range []int{8, 16} {
		k := k
		b.Run(fmt.Sprintf("fat-tree-k%d-n3", k), func(b *testing.B) {
			d := model.MustNew(topology.MustFatTree(k, nil), model.Options{})
			base := d.Topo.Graph.Freeze()
			sites := benchSites(d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildLayered(base, sites); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLayeredRoute(b *testing.B) {
	for _, k := range []int{8, 16} {
		k := k
		b.Run(fmt.Sprintf("fat-tree-k%d-n3", k), func(b *testing.B) {
			d := model.MustNew(topology.MustFatTree(k, nil), model.Options{})
			r, err := NewRouter(d, Config{Capacity: 1e12})
			if err != nil {
				b.Fatal(err)
			}
			if err := r.BeginEpoch(benchSites(d)); err != nil {
				b.Fatal(err)
			}
			hosts := d.Hosts()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := hosts[i%len(hosts)]
				dst := hosts[(i*7+3)%len(hosts)]
				if _, err := r.Route(src, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdmitSaturated measures admission in a fabric provisioned so
// tightly that pruning and rejection paths are exercised: capacity admits
// only a handful of flows per epoch, so the steady state mixes commits,
// reroutes, and max-flow-classified rejections.
func BenchmarkAdmitSaturated(b *testing.B) {
	d := model.MustNew(topology.MustFatTree(8, nil), model.Options{})
	r, err := NewRouter(d, Config{Capacity: 40, Alpha: 1, Classify: true})
	if err != nil {
		b.Fatal(err)
	}
	sites := benchSites(d)
	if err := r.BeginEpoch(sites); err != nil {
		b.Fatal(err)
	}
	hosts := d.Hosts()
	admitted, rejected := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			if err := r.BeginEpoch(sites); err != nil {
				b.Fatal(err)
			}
		}
		src := hosts[i%len(hosts)]
		dst := hosts[(i*13+5)%len(hosts)]
		dec, err := r.Admit(src, dst, 10)
		if err != nil {
			b.Fatal(err)
		}
		if dec.Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	b.StopTimer()
	if b.N > 100 && (admitted == 0 || rejected == 0) {
		b.Fatalf("saturated scenario not saturated: %d admitted, %d rejected", admitted, rejected)
	}
}
