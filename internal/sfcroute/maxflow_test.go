package sfcroute

import (
	"math"
	"testing"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/routing"
	"vnfopt/internal/topology"
)

func TestMaxFlowLinearBottleneck(t *testing.T) {
	topo, err := topology.Linear(2, nil)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	res, err := MaxFlow(topo.Graph, nil, 0, 3, routing.UniformCapacity(5))
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if res.Flow != 5 {
		t.Fatalf("flow %v, want 5 (single path, uniform capacity)", res.Flow)
	}
	if res.Cost != 15 {
		t.Fatalf("cost %v, want 15 (5 units × 3 unit-weight hops)", res.Cost)
	}
}

func TestMaxFlowSplitsAcrossParallelPaths(t *testing.T) {
	topo, err := topology.Ring(4, nil)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	src, dst := topo.Hosts[0], topo.Hosts[2]
	// Host links are wide, switch links narrow: the flow must split over
	// both sides of the ring to beat a single path.
	capOf := func(l routing.Link) float64 {
		if l.U >= 4 || l.V >= 4 {
			return 10 // host attachment
		}
		return 3 // ring segment
	}
	res, err := MaxFlow(topo.Graph, nil, src, dst, capOf)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if res.Flow != 6 {
		t.Fatalf("flow %v, want 6 (3 per ring side)", res.Flow)
	}
}

func TestMaxFlowRelaxationIsPerLayer(t *testing.T) {
	// Star spur chain: the only site sits on a spur, so any unsplittable
	// routing crosses the spur link twice and the true shared-capacity
	// flow is cap/2. The relaxation prices the two crossings in separate
	// layers and reports the full cap — strictly optimistic, which is
	// the sound direction for rejection proofs.
	d := starTopo(t)
	res, err := MaxFlow(d, [][]int{{3}}, 0, 2, routing.UniformCapacity(5))
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if res.Flow != 5 {
		t.Fatalf("relaxation bound %v, want 5 (per-layer capacities)", res.Flow)
	}
	// MinCostRoute makes the overcommit visible: the spur link's summed
	// assignment is twice its capacity.
	mc, assign, err := MinCostRoute(d, [][]int{{3}}, 0, 2, 5, routing.UniformCapacity(5))
	if err != nil {
		t.Fatalf("MinCostRoute: %v", err)
	}
	if mc.Flow != 5 || mc.Cost != 20 {
		t.Fatalf("min-cost route %+v, want flow 5 cost 20", mc)
	}
	if got := assign[routing.Link{U: 1, V: 3}]; got != 10 {
		t.Fatalf("spur assignment %v, want 10 (5 units × 2 layers)", got)
	}
	if got := assign[routing.Link{U: 0, V: 1}]; got != 5 {
		t.Fatalf("ingress assignment %v, want 5", got)
	}
}

// starTopo builds the bare graph 0-1, 1-2, 1-3 used by relaxation tests.
func starTopo(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	return g
}

func TestMaxFlowDegenerateEndpoints(t *testing.T) {
	topo, err := topology.Linear(1, nil)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	// n=0 with identical endpoints: nothing to route, nothing binds.
	res, err := MaxFlow(topo.Graph, nil, 0, 0, routing.UniformCapacity(5))
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if !math.IsInf(res.Flow, 1) {
		t.Fatalf("flow %v, want +Inf", res.Flow)
	}
	mc, assign, err := MinCostRoute(topo.Graph, nil, 0, 0, 3, routing.UniformCapacity(5))
	if err != nil || mc.Flow != 3 || len(assign) != 0 {
		t.Fatalf("degenerate MinCostRoute: %+v %v %v", mc, assign, err)
	}
	// A chain through a site forces real traffic even for src == dst.
	res, err = MaxFlow(topo.Graph, [][]int{{1}}, 0, 0, routing.UniformCapacity(5))
	if err != nil {
		t.Fatalf("chained MaxFlow: %v", err)
	}
	if res.Flow != 5 {
		t.Fatalf("chained same-endpoint flow %v, want 5", res.Flow)
	}
}

func TestMaxFlowValidation(t *testing.T) {
	topo, err := topology.Linear(1, nil)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := MaxFlow(topo.Graph, [][]int{{}}, 0, 2, routing.UniformCapacity(1)); err == nil {
		t.Fatal("accepted an empty stage")
	}
	if _, err := MaxFlow(topo.Graph, nil, 0, 2, func(routing.Link) float64 { return -1 }); err == nil {
		t.Fatal("accepted a negative capacity")
	}
	if _, _, err := MinCostRoute(topo.Graph, nil, 0, 2, -1, routing.UniformCapacity(1)); err == nil {
		t.Fatal("accepted a negative amount")
	}
}

func TestRouterMaxFlowTracksResidual(t *testing.T) {
	topo, err := topology.Linear(2, nil)
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	d := model.MustNew(topo, model.Options{})
	r, err := NewRouter(d, Config{Capacity: 10})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if _, err := r.MaxFlow(0, 3); err == nil {
		t.Fatal("MaxFlow before BeginEpoch succeeded")
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	before, err := r.MaxFlow(0, 3)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if before.Flow != 10 {
		t.Fatalf("pristine bound %v, want 10", before.Flow)
	}
	if dec, _ := r.Admit(0, 3, 4); !dec.Admitted {
		t.Fatal("admit failed")
	}
	after, err := r.MaxFlow(0, 3)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if after.Flow != 6 {
		t.Fatalf("residual bound %v, want 6", after.Flow)
	}
}
