package sfcroute

import (
	"errors"
	"fmt"
	"math"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/routing"
)

// Config tunes a Router.
type Config struct {
	// Capacity is the uniform link capacity (the paper's homogeneous
	// provisioning assumption). Required positive unless CapOf is set.
	Capacity float64
	// CapOf overrides Capacity per link when non-nil.
	CapOf routing.CapacityFunc
	// Alpha is the congestion-pricing strength: at utilization u a link
	// of weight w is priced w·(1 + Alpha·u/(1−u)) (u capped just below 1
	// so prices stay finite). 0 keeps the capacity-blind distance
	// weights — admission still enforces capacity, but path choice
	// ignores load.
	Alpha float64
	// MaxUtilization is the admission target: a flow is only committed
	// while every link it crosses stays at or below this fraction of
	// capacity (default 1.0). Set it to the provisioning point (e.g.
	// 0.40) to admit against headroom instead of raw capacity.
	MaxUtilization float64
	// MaxReroutes bounds the reroute attempts when a path individually
	// fits every link but multi-traversal (an n-tour crossing one link
	// in several layers) overflows it (default 4).
	MaxReroutes int
	// Classify runs the layered max-flow bound on every rejection to
	// distinguish provably infeasible demands (bound < rate) from
	// unsplittable-path failures. Costs one mcf solve per rejection.
	Classify bool
}

// Admission reasons.
const (
	// ReasonInfeasible: the max-flow relaxation bound is below the
	// flow's rate, so no routing — splittable or not — can carry it.
	ReasonInfeasible = "infeasible"
	// ReasonNoPath: no single chain-constrained path survives the
	// residual-capacity pruning (the demand may still be splittable).
	ReasonNoPath = "no_path"
	// ReasonFragmented: paths exist but every candidate within the
	// reroute budget overflows some link through multi-layer reuse.
	ReasonFragmented = "fragmented"
)

// Decision is one admission outcome. On admission the route's load has
// been committed to the router's residual state.
type Decision struct {
	Admitted bool    `json:"admitted"`
	Cost     float64 `json:"cost"`
	Walk     []int   `json:"walk,omitempty"`
	Gateways []int   `json:"gateways,omitempty"`
	Reroutes int     `json:"reroutes,omitempty"`
	Reason   string  `json:"reason,omitempty"`
}

// Router routes chain-constrained flows against link capacities: it
// prices links by utilization (optional), tracks residual capacity as
// flows are admitted, and rejects flows whose chain cannot be routed
// feasibly. All methods are single-goroutine; the engine serializes
// routing inside its step lock.
type Router struct {
	d   *model.PPDC
	cfg Config

	base  *graph.CSR // pristine fabric weights
	links []routing.Link
	lcap  []float64 // capacity per link
	load  []float64 // committed load per link
	lidx  map[routing.Link]int

	// Base-snapshot slot tables: slotLink[s] is the link index of base
	// slot s; baseWt its pristine weight; pricedWt the congestion-priced
	// buffer the layered build reads.
	slotLink []int32
	baseWt   []float64
	pricedWt []float64
	priced   *graph.CSR

	// Layered state for the current sites: laySlotLink maps layered
	// slots to link indices (-1 for crossings), layWt holds the priced
	// layered weights, pruneWt the per-admission pruning buffer.
	sites       [][]int
	lay         *Layered
	laySlotLink []int32
	layWt       []float64
	pruneWt     []float64

	// Priced metric closure, built lazily by Closure() and maintained
	// across epoch re-pricings through the weight-delta APSP path:
	// closureWt snapshots the pricedWt the closure corresponds to, so
	// BeginEpoch can diff the new prices against it and re-run only the
	// Dijkstra sources the price changes dirty. closureDirty records the
	// dirty-source count of the last delta update.
	closure      *graph.APSP
	closureWt    []float64
	closureDirty int

	dist    []float64
	prev    []int32
	scratch graph.SSSPScratch
	blocked []bool
	epoch   int
}

// NewRouter builds a router over d's fabric. The fabric snapshot is
// frozen here; fault-degraded serving models need a fresh router.
func NewRouter(d *model.PPDC, cfg Config) (*Router, error) {
	if cfg.CapOf == nil {
		if cfg.Capacity <= 0 || math.IsNaN(cfg.Capacity) || math.IsInf(cfg.Capacity, 0) {
			return nil, fmt.Errorf("sfcroute: invalid uniform capacity %v", cfg.Capacity)
		}
		cfg.CapOf = routing.UniformCapacity(cfg.Capacity)
	}
	if cfg.Alpha < 0 || math.IsNaN(cfg.Alpha) {
		return nil, fmt.Errorf("sfcroute: invalid congestion alpha %v", cfg.Alpha)
	}
	if cfg.MaxUtilization == 0 {
		cfg.MaxUtilization = 1
	}
	if cfg.MaxUtilization < 0 || cfg.MaxUtilization > 1 {
		return nil, fmt.Errorf("sfcroute: max utilization %v outside (0,1]", cfg.MaxUtilization)
	}
	if cfg.MaxReroutes == 0 {
		cfg.MaxReroutes = 4
	}
	r := &Router{d: d, cfg: cfg, base: d.Topo.Graph.Freeze(), lidx: make(map[routing.Link]int)}
	// Parallel edges (none in the shipped topologies) collapse onto one
	// physical link sharing one capacity.
	for _, rec := range d.Topo.Graph.Edges() {
		l := routing.Link{U: rec.U, V: rec.V}
		if _, dup := r.lidx[l]; dup {
			continue
		}
		c := cfg.CapOf(l)
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("sfcroute: link (%d,%d) has invalid capacity %v", l.U, l.V, c)
		}
		r.lidx[l] = len(r.links)
		r.links = append(r.links, l)
		r.lcap = append(r.lcap, c)
	}
	r.load = make([]float64, len(r.links))
	r.blocked = make([]bool, len(r.links))
	ns := r.base.NumSlots()
	r.slotLink = make([]int32, ns)
	r.baseWt = make([]float64, ns)
	r.pricedWt = make([]float64, ns)
	r.base.ForEachSlot(func(slot, u, v int, w float64) {
		r.slotLink[slot] = int32(r.lidx[mkLink(u, v)])
		r.baseWt[slot] = w
	})
	copy(r.pricedWt, r.baseWt)
	r.priced = r.base.WithWeights(r.pricedWt)
	return r, nil
}

func mkLink(a, b int) routing.Link {
	if a > b {
		a, b = b, a
	}
	return routing.Link{U: a, V: b}
}

// Model returns the PPDC the router was frozen from — the engine
// compares it against its active serving model to detect fault
// transitions that require a rebuilt router.
func (r *Router) Model() *model.PPDC { return r.d }

// priceCap keeps congestion prices finite on fully loaded links.
const priceCap = 0.98

// price returns the congestion-priced weight of one link.
func (r *Router) price(w float64, link int) float64 {
	u := r.load[link] / r.lcap[link]
	if u <= 0 {
		return w
	}
	if u > priceCap {
		u = priceCap
	}
	return w * (1 + r.cfg.Alpha*u/(1-u))
}

// BeginEpoch starts a routing epoch for the given chain sites: link
// prices are recomputed from the loads committed during the *previous*
// epoch (the drift-loop re-pricing; with Alpha 0 the prices are the
// pristine weights), the residual state is reset, and the layered
// expansion is rebuilt for the sites. Use PlacementSites(p) for the
// fixed-placement case.
func (r *Router) BeginEpoch(sites [][]int) error {
	if r.cfg.Alpha > 0 {
		for slot, link := range r.slotLink {
			r.pricedWt[slot] = r.price(r.baseWt[slot], int(link))
		}
	}
	if r.closure != nil {
		r.refreshClosure()
	}
	for i := range r.load {
		r.load[i] = 0
	}
	lay, err := BuildLayered(r.priced, sites)
	if err != nil {
		return err
	}
	r.lay = lay
	// Keep an owned copy: MaxFlow classification reads the sites for the
	// rest of the epoch, after the caller may have reused its slices.
	r.sites = make([][]int, len(sites))
	for i, stage := range sites {
		r.sites[i] = append([]int(nil), stage...)
	}
	ns := lay.CSR().NumSlots()
	r.laySlotLink = resize(r.laySlotLink, ns)
	r.layWt = resizeF(r.layWt, ns)
	r.pruneWt = resizeF(r.pruneWt, ns)
	n := lay.BaseOrder()
	lay.CSR().ForEachSlot(func(slot, u, v int, w float64) {
		bu, bv := u%n, v%n
		if bu == bv { // layer crossing
			r.laySlotLink[slot] = -1
		} else {
			r.laySlotLink[slot] = int32(r.lidx[mkLink(bu, bv)])
		}
		r.layWt[slot] = w
	})
	lv := lay.Order()
	r.dist = resizeF(r.dist, lv)
	r.prev = resize(r.prev, lv)
	r.epoch++
	return nil
}

func resize(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Closure returns the all-pairs metric closure of the congestion-priced
// fabric (NOT the layered expansion) for the current epoch. The first
// call pays one full APSP over the priced weights; from then on every
// BeginEpoch re-pricing repairs the matrix through the weight-delta
// path (graph.ApplyWeightDeltasCSR), re-running only the sources whose
// shortest-path trees the price changes actually touch. The result is
// bit-identical to rebuilding from scratch each epoch.
func (r *Router) Closure() *graph.APSP {
	if r.closure == nil {
		r.closure = graph.AllPairsCSR(r.priced, 0)
		r.closureWt = append(r.closureWt[:0], r.pricedWt...)
	}
	return r.closure
}

// ClosureDirty reports how many Dijkstra sources the last epoch's
// closure repair re-ran (0 when prices did not move, or before the
// closure exists). Observability for the delta-vs-rebuild win.
func (r *Router) ClosureDirty() int { return r.closureDirty }

// refreshClosure repairs the priced closure after a re-pricing pass by
// diffing the new pricedWt against the snapshot the closure was built
// over. Both directions of an undirected edge are priced by the same
// expression, so the u < v slot diff covers every change.
func (r *Router) refreshClosure() {
	var recs []graph.EdgeRecord
	r.base.ForEachSlot(func(slot, u, v int, _ float64) {
		if u < v && r.pricedWt[slot] != r.closureWt[slot] {
			recs = append(recs, graph.EdgeRecord{U: u, V: v, Weight: r.pricedWt[slot]})
		}
	})
	if len(recs) == 0 {
		r.closureDirty = 0
		return
	}
	r.closure, r.closureDirty = r.closure.ApplyWeightDeltasCSR(r.priced, recs, 0)
	copy(r.closureWt, r.pricedWt)
}

// BlindChainCost is the closure consumer: the capacity-blind cost of
// the chain-constrained walk src → gateway₁ ∈ sites[0] → … → dst under
// the current epoch's prices, computed as a stage DP over closure rows
// instead of a layered Dijkstra. It equals Route(src, dst).Cost up to
// floating-point summation order and costs O(Σᵢ|sitesᵢ|·|sitesᵢ₊₁|)
// closure lookups. Returns +Inf when no chain walk exists.
func (r *Router) BlindChainCost(src, dst int) (float64, error) {
	if r.lay == nil {
		return 0, fmt.Errorf("sfcroute: BeginEpoch not called")
	}
	cl := r.Closure()
	cost := []float64{0}
	at := []int{src}
	for _, stage := range r.sites {
		next := make([]float64, len(stage))
		for j, h := range stage {
			best := math.Inf(1)
			for i, g := range at {
				if c := cost[i] + cl.Cost(g, h); c < best {
					best = c
				}
			}
			next[j] = best
		}
		cost, at = next, stage
	}
	best := math.Inf(1)
	for i, g := range at {
		if c := cost[i] + cl.Cost(g, dst); c < best {
			best = c
		}
	}
	return best, nil
}

// Route computes the chain-constrained shortest path under the current
// prices, ignoring capacity entirely (no pruning, no commit). It is the
// capacity-blind reference the differential tests compare against the
// metric closure.
func (r *Router) Route(src, dst int) (PathResult, error) {
	if r.lay == nil {
		return PathResult{}, fmt.Errorf("sfcroute: BeginEpoch not called")
	}
	return r.lay.ShortestPathOn(r.lay.CSR(), src, dst, r.dist, r.prev, &r.scratch)
}

// Admit routes one flow of the given rate against residual capacity and
// commits its load on success. Links whose residual headroom cannot
// absorb the rate are pruned before the search; a surviving path that
// still overflows a link by crossing it in several layers triggers a
// bounded reroute with that link blocked. A zero-rate flow is admitted
// along its priced route without consuming capacity.
func (r *Router) Admit(src, dst int, rate float64) (Decision, error) {
	if r.lay == nil {
		return Decision{}, fmt.Errorf("sfcroute: BeginEpoch not called")
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Decision{}, fmt.Errorf("sfcroute: invalid rate %v", rate)
	}
	if rate == 0 {
		res, err := r.lay.ShortestPathOn(r.lay.CSR(), src, dst, r.dist, r.prev, &r.scratch)
		if err != nil {
			if errors.Is(err, ErrUnroutable) {
				return Decision{Reason: ReasonNoPath}, nil
			}
			return Decision{}, err
		}
		return Decision{Admitted: true, Cost: res.Cost, Walk: res.Walk, Gateways: res.Gateways}, nil
	}
	for i := range r.blocked {
		r.blocked[i] = false
	}
	for attempt := 0; attempt <= r.cfg.MaxReroutes; attempt++ {
		// Prune links that cannot absorb one traversal of this flow.
		for slot, link := range r.laySlotLink {
			if link >= 0 && (r.blocked[link] || r.headroom(int(link)) < rate) {
				r.pruneWt[slot] = graph.Inf
			} else {
				r.pruneWt[slot] = r.layWt[slot]
			}
		}
		res, err := r.lay.ShortestPathOn(r.lay.CSR().WithWeights(r.pruneWt), src, dst, r.dist, r.prev, &r.scratch)
		if err != nil {
			if errors.Is(err, ErrUnroutable) {
				return r.reject(src, dst, rate, attempt), nil
			}
			return Decision{}, err
		}
		// Multi-traversal check: the walk may cross one physical link in
		// several layers; the committed load is rate × traversals.
		over := -1
		overBy := 0.0
		counts := r.walkCounts(res.Walk)
		for link, c := range counts {
			if excess := r.load[link] + float64(c)*rate - r.lcap[link]*r.cfg.MaxUtilization; excess > 1e-12 {
				if excess > overBy {
					over, overBy = link, excess
				}
			}
		}
		if over < 0 {
			for link, c := range counts {
				r.load[link] += float64(c) * rate
			}
			return Decision{Admitted: true, Cost: res.Cost, Walk: res.Walk, Gateways: res.Gateways, Reroutes: attempt}, nil
		}
		r.blocked[over] = true
	}
	d := r.reject(src, dst, rate, r.cfg.MaxReroutes)
	if d.Reason == ReasonNoPath {
		d.Reason = ReasonFragmented
	}
	return d, nil
}

// reject classifies a failed admission, consulting the max-flow bound
// when configured.
func (r *Router) reject(src, dst int, rate float64, attempts int) Decision {
	d := Decision{Reason: ReasonNoPath, Reroutes: attempts}
	if !r.cfg.Classify {
		return d
	}
	bound, err := r.MaxFlow(src, dst)
	if err == nil && bound.Flow < rate-1e-9 {
		d.Reason = ReasonInfeasible
	}
	return d
}

// headroom is the admissible residual of one link under the utilization
// target.
func (r *Router) headroom(link int) float64 {
	h := r.lcap[link]*r.cfg.MaxUtilization - r.load[link]
	if h < 0 {
		return 0
	}
	return h
}

// walkCounts tallies per-link traversals of a projected walk.
func (r *Router) walkCounts(walk []int) map[int]int {
	counts := make(map[int]int, len(walk))
	for i := 0; i+1 < len(walk); i++ {
		counts[r.lidx[mkLink(walk[i], walk[i+1])]]++
	}
	return counts
}

// Loads returns a copy of the committed per-link loads (zero-load links
// omitted), in the map form internal/routing's reports consume.
func (r *Router) Loads() map[routing.Link]float64 {
	out := make(map[routing.Link]float64)
	for i, l := range r.links {
		if r.load[i] > 0 {
			out[l] = r.load[i]
		}
	}
	return out
}

// LinkLoads returns the capacity-aware load records of the committed
// flows, hottest first (routing.Loads over the router's capacities).
func (r *Router) LinkLoads() []routing.LinkLoad {
	recs, err := routing.Loads(r.Loads(), func(l routing.Link) float64 { return r.lcap[r.lidx[l]] })
	if err != nil {
		// Capacities were validated at construction; this is unreachable.
		panic(err)
	}
	return recs
}

// Saturated lists links above the utilization threshold, hottest first.
func (r *Router) Saturated(threshold float64) []routing.LinkLoad {
	recs := r.LinkLoads()
	cut := len(recs)
	for i, rec := range recs {
		if rec.Utilization <= threshold {
			cut = i
			break
		}
	}
	return recs[:cut]
}

// MaxUtilization returns the hottest link's utilization and identity
// (zero when nothing is routed).
func (r *Router) MaxUtilization() (float64, routing.Link) {
	best, link := 0.0, routing.Link{}
	for i := range r.links {
		if u := r.load[i] / r.lcap[i]; u > best {
			best, link = u, r.links[i]
		}
	}
	return best, link
}
