package sfcroute

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// closureEqual pins the delta-maintained closure entry-for-entry
// (distances bitwise, predecessors exactly) against a rebuild oracle.
func closureEqual(t *testing.T, got, want *graph.APSP) {
	t.Helper()
	n := want.Order()
	if got.Order() != n {
		t.Fatalf("closure order %d, want %d", got.Order(), n)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if got.Cost(u, v) != want.Cost(u, v) {
				t.Fatalf("closure dist[%d][%d]: %v != %v", u, v, got.Cost(u, v), want.Cost(u, v))
			}
			if got.Pred(u, v) != want.Pred(u, v) {
				t.Fatalf("closure prev[%d][%d]: %d != %d", u, v, got.Pred(u, v), want.Pred(u, v))
			}
		}
	}
}

// weightedFatTree is the closure fixture: PaperDelay weights break the
// unit-weight tie mass so the dirty classification has distinct
// distances to discriminate on.
func weightedFatTree(k int) *model.PPDC {
	topo := topology.MustFatTree(k, topology.PaperDelay(rand.New(rand.NewSource(7))))
	return model.MustNew(topo, model.Options{})
}

// rackOf groups hosts by their edge switch and returns one switch with
// at least two attached hosts plus those hosts.
func rackOf(t *testing.T, d *model.PPDC) (int, []int) {
	t.Helper()
	racks := map[int][]int{}
	for _, h := range d.Hosts() {
		nb := d.Topo.Graph.Neighbors(h)
		if len(nb) != 1 {
			t.Fatalf("host %d has degree %d, want 1", h, len(nb))
		}
		racks[nb[0].To] = append(racks[nb[0].To], h)
	}
	for _, sw := range d.Switches() {
		if hs := racks[sw]; len(hs) >= 2 {
			return sw, hs
		}
	}
	t.Fatal("no rack with two hosts")
	return 0, nil
}

// TestClosureDeltaAcrossEpochs drives the router through repriced
// epochs and pins the delta-maintained priced closure bitwise against a
// full AllPairsCSR rebuild after every epoch.
//
// The flash crowd is rack-local — hot flows between hosts under one
// edge switch, with the chain's single site on that switch — so each
// epoch re-prices only the rack's links: the host uplinks take the
// pendant-patch path and the classification must leave most of the
// fabric's rows untouched (0 < dirty < n). A final spread-traffic epoch
// through three spread core sites re-prices popular spine links, where
// a large (even full) dirty set is legitimate; bit-identity is the only
// claim there.
func TestClosureDeltaAcrossEpochs(t *testing.T) {
	d := weightedFatTree(8)
	r, err := NewRouter(d, Config{Capacity: 1000, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	sw, rack := rackOf(t, d)
	sites := [][]int{{sw}}
	if err := r.BeginEpoch(sites); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	n := d.Topo.Graph.Order()
	// Build the closure on the pristine prices; every later epoch must
	// repair, not rebuild, this matrix.
	closureEqual(t, r.Closure(), graph.AllPairsCSR(r.priced, 0))

	sawPartial := false
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i < 4+epoch; i++ {
			if _, err := r.Admit(rack[0], rack[1], 40); err != nil {
				t.Fatalf("admit hot flow: %v", err)
			}
		}
		if err := r.BeginEpoch(sites); err != nil {
			t.Fatalf("BeginEpoch %d: %v", epoch, err)
		}
		closureEqual(t, r.Closure(), graph.AllPairsCSR(r.priced, 0))
		dirty := r.ClosureDirty()
		if dirty <= 0 || dirty > n {
			t.Fatalf("epoch %d: dirty %d outside (0,%d]", epoch, dirty, n)
		}
		if dirty < n {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no rack-local epoch repaired the closure partially (dirty < n): the delta path is not saving work")
	}

	// Spread traffic through three spread core sites: heavy spine
	// re-pricing, full bit-identity still required.
	spread := benchSites(d)
	if err := r.BeginEpoch(spread); err != nil {
		t.Fatal(err)
	}
	hosts := d.Hosts()
	for i := 0; i < 8; i++ {
		if _, err := r.Admit(hosts[i], hosts[len(hosts)-1-i], 25); err != nil {
			t.Fatalf("admit spread flow: %v", err)
		}
	}
	if err := r.BeginEpoch(spread); err != nil {
		t.Fatal(err)
	}
	closureEqual(t, r.Closure(), graph.AllPairsCSR(r.priced, 0))

	// An epoch with no committed load re-prices every link back to its
	// base weight; the repair must land exactly on the pristine closure.
	if err := r.BeginEpoch(sites); err != nil {
		t.Fatal(err)
	}
	closureEqual(t, r.Closure(), graph.AllPairsCSR(r.priced, 0))
}

// TestBlindChainCostMatchesRoute: the closure DP agrees with the
// layered Dijkstra on chain-constrained costs under non-trivial prices
// (up to float summation order), and collapses to the plain closure
// distance when the chain has no stages.
func TestBlindChainCostMatchesRoute(t *testing.T) {
	d := weightedFatTree(4)
	r, err := NewRouter(d, Config{Capacity: 500, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	sites := benchSites(d)
	if err := r.BeginEpoch(sites); err != nil {
		t.Fatal(err)
	}
	hosts := d.Hosts()
	for i := 0; i < 6; i++ {
		if _, err := r.Admit(hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)], 30); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	if err := r.BeginEpoch(sites); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(hosts); i++ {
		src, dst := hosts[i], hosts[(i*7+3)%len(hosts)]
		res, err := r.Route(src, dst)
		if err != nil {
			t.Fatalf("Route(%d,%d): %v", src, dst, err)
		}
		got, err := r.BlindChainCost(src, dst)
		if err != nil {
			t.Fatalf("BlindChainCost(%d,%d): %v", src, dst, err)
		}
		if diff := math.Abs(got - res.Cost); diff > 1e-9*(1+math.Abs(res.Cost)) {
			t.Fatalf("BlindChainCost(%d,%d) = %v, Route cost %v", src, dst, got, res.Cost)
		}
	}

	// Stage-free chain: the DP is exactly one closure lookup.
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatal(err)
	}
	cl := r.Closure()
	for i := 0; i < 8; i++ {
		src, dst := hosts[i%len(hosts)], hosts[(i*5+2)%len(hosts)]
		got, err := r.BlindChainCost(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if got != cl.Cost(src, dst) {
			t.Fatalf("stage-free BlindChainCost(%d,%d) = %v, closure %v", src, dst, got, cl.Cost(src, dst))
		}
	}
}

func TestBlindChainCostBeforeBeginEpoch(t *testing.T) {
	d := weightedFatTree(4)
	r, err := NewRouter(d, Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.BlindChainCost(0, 1); err == nil {
		t.Fatal("BlindChainCost before BeginEpoch succeeded")
	}
}

// BenchmarkClosureReprice compares maintaining the priced closure
// across epochs through the weight-delta path against rebuilding it
// from scratch each epoch, under a rack-local flash crowd (the regime
// the delta path is built for: few links re-priced, most rows shared).
func BenchmarkClosureReprice(b *testing.B) {
	for _, k := range []int{8, 16} {
		d := weightedFatTree(k)
		sw, rack := 0, []int(nil)
		for _, cand := range d.Switches() {
			var hs []int
			for _, nb := range d.Topo.Graph.Neighbors(cand) {
				if d.Topo.Kind[nb.To] == topology.Host {
					hs = append(hs, nb.To)
				}
			}
			if len(hs) >= 2 {
				sw, rack = cand, hs
				break
			}
		}
		sites := [][]int{{sw}}
		crowd := func(b *testing.B, r *Router, extra int) {
			for i := 0; i < 4+extra%3; i++ {
				if _, err := r.Admit(rack[0], rack[1], 40); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(fmt.Sprintf("fat-tree-k%d/delta", k), func(b *testing.B) {
			r, err := NewRouter(d, Config{Capacity: 1000, Alpha: 2})
			if err != nil {
				b.Fatal(err)
			}
			if err := r.BeginEpoch(sites); err != nil {
				b.Fatal(err)
			}
			r.Closure()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				crowd(b, r, i)
				if err := r.BeginEpoch(sites); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fat-tree-k%d/rebuild", k), func(b *testing.B) {
			r, err := NewRouter(d, Config{Capacity: 1000, Alpha: 2})
			if err != nil {
				b.Fatal(err)
			}
			if err := r.BeginEpoch(sites); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				crowd(b, r, i)
				if err := r.BeginEpoch(sites); err != nil {
					b.Fatal(err)
				}
				if graph.AllPairsCSR(r.priced, 0) == nil {
					b.Fatal("nil closure")
				}
			}
		})
	}
}
