package sfcroute

import (
	"math"
	"testing"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/routing"
	"vnfopt/internal/topology"
)

// linearPPDC is h0 - s1 - ... - s_k - h_{k+1} with unit weights.
func linearPPDC(t *testing.T, switches int) *model.PPDC {
	t.Helper()
	topo, err := topology.Linear(switches, nil)
	if err != nil {
		t.Fatalf("Linear(%d): %v", switches, err)
	}
	return model.MustNew(topo, model.Options{})
}

// starPPDC is h0 - s1 - h2 plus spur switches s3.. hanging off s1: the
// only way a chain can visit a spur is to cross its link twice.
func starPPDC(t *testing.T, spurs int) *model.PPDC {
	t.Helper()
	n := 3 + spurs
	g := graph.New(n)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	topo := &topology.Topology{
		Name:     "star",
		Graph:    g,
		Hosts:    []int{0, 2},
		Switches: []int{1},
		Kind:     make([]topology.NodeKind, n),
		Labels:   make([]string, n),
	}
	topo.Kind[0], topo.Kind[1], topo.Kind[2] = topology.Host, topology.Switch, topology.Host
	for i := 0; i < spurs; i++ {
		v := 3 + i
		g.AddEdge(1, v, 1)
		topo.Switches = append(topo.Switches, v)
		topo.Kind[v] = topology.Switch
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("star topology: %v", err)
	}
	return model.MustNew(topo, model.Options{})
}

func TestAdmitCommitsAndExhaustsCapacity(t *testing.T) {
	d := linearPPDC(t, 2)
	r, err := NewRouter(d, Config{Capacity: 10, Classify: true})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	for i := 0; i < 2; i++ {
		dec, err := r.Admit(0, 3, 4)
		if err != nil {
			t.Fatalf("Admit %d: %v", i, err)
		}
		if !dec.Admitted || dec.Cost != 3 {
			t.Fatalf("Admit %d: %+v", i, dec)
		}
	}
	loads := r.Loads()
	for _, l := range []routing.Link{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}} {
		if loads[l] != 8 {
			t.Fatalf("link %v carries %v, want 8", l, loads[l])
		}
	}
	// Third flow needs 4 but only 2 headroom remains anywhere: the
	// max-flow bound proves no routing at all can carry it.
	dec, err := r.Admit(0, 3, 4)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if dec.Admitted || dec.Reason != ReasonInfeasible {
		t.Fatalf("over-capacity flow: %+v, want rejection with %q", dec, ReasonInfeasible)
	}
	bound, err := r.MaxFlow(0, 3)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if bound.Flow != 2 {
		t.Fatalf("residual max-flow bound %v, want 2", bound.Flow)
	}
	// A flow within the residual still gets through.
	if dec, err = r.Admit(0, 3, 2); err != nil || !dec.Admitted {
		t.Fatalf("residual-fitting flow: %+v, %v", dec, err)
	}
	if u, link := r.MaxUtilization(); u != 1 || link != (routing.Link{U: 0, V: 1}) {
		t.Fatalf("MaxUtilization = %v at %v", u, link)
	}
}

func TestZeroRateFlowRoutesWithoutCommitting(t *testing.T) {
	d := linearPPDC(t, 1)
	r, err := NewRouter(d, Config{Capacity: 1})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	dec, err := r.Admit(0, 2, 0)
	if err != nil || !dec.Admitted || dec.Cost != 2 {
		t.Fatalf("zero-rate: %+v, %v", dec, err)
	}
	if len(r.Loads()) != 0 {
		t.Fatalf("zero-rate flow committed load: %v", r.Loads())
	}
}

func TestProvableRejectionOfInfeasibleChain(t *testing.T) {
	d := linearPPDC(t, 2)
	r, err := NewRouter(d, Config{Capacity: 5, Classify: true})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.BeginEpoch(PlacementSites(model.Placement{1, 2})); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	// Rate 7 exceeds every link's capacity: even the splittable max-flow
	// relaxation caps at 5, so the rejection is a proof, not a heuristic.
	dec, err := r.Admit(0, 3, 7)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if dec.Admitted || dec.Reason != ReasonInfeasible {
		t.Fatalf("infeasible chain: %+v, want %q", dec, ReasonInfeasible)
	}
	bound, err := r.MaxFlow(0, 3)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if bound.Flow != 5 {
		t.Fatalf("chain max-flow bound %v, want 5", bound.Flow)
	}
}

func TestMultiTraversalOverflowTriggersReroute(t *testing.T) {
	// Two spur sites off s1; every candidate path crosses its spur link
	// twice (out and back), overflowing capacity 6 at rate 4. With one
	// reroute allowed the router tries both spurs, then reports the
	// failure as fragmentation: paths exist, none fits unsplittably.
	d := starPPDC(t, 2)
	r, err := NewRouter(d, Config{Capacity: 6, MaxReroutes: 1, Classify: true})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.BeginEpoch([][]int{{3, 4}}); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	dec, err := r.Admit(0, 2, 4)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if dec.Admitted {
		t.Fatalf("admitted a flow that overflows every spur: %+v", dec)
	}
	if dec.Reason != ReasonFragmented {
		t.Fatalf("reason %q, want %q (relaxation bound 6 ≥ 4, so not infeasible)", dec.Reason, ReasonFragmented)
	}
	if len(r.Loads()) != 0 {
		t.Fatalf("rejected flow left committed load: %v", r.Loads())
	}
	// Halving the rate fits a single traversal pair: admitted, and the
	// spur link carries 2 traversals × rate.
	dec, err = r.Admit(0, 2, 3)
	if err != nil || !dec.Admitted {
		t.Fatalf("rate-3 flow: %+v, %v", dec, err)
	}
	spur := mkLink(dec.Walk[1], dec.Walk[2])
	if got := r.Loads()[spur]; got != 6 {
		t.Fatalf("spur link %v carries %v, want 6 (two traversals)", spur, got)
	}
}

func TestMaxUtilizationTargetAdmitsAgainstHeadroom(t *testing.T) {
	d := linearPPDC(t, 1)
	r, err := NewRouter(d, Config{Capacity: 10, MaxUtilization: 0.4})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	if dec, _ := r.Admit(0, 2, 5); dec.Admitted {
		t.Fatal("admitted a flow above the 40% provisioning point")
	}
	if dec, _ := r.Admit(0, 2, 3); !dec.Admitted {
		t.Fatal("rejected a flow within the provisioning point")
	}
	if dec, _ := r.Admit(0, 2, 3); dec.Admitted {
		t.Fatal("admitted past the provisioning point (3+3 > 4)")
	}
	if u, _ := r.MaxUtilization(); u != 0.3 {
		t.Fatalf("utilization %v, want 0.3", u)
	}
}

func TestCongestionPricingSpreadsAcrossEpochs(t *testing.T) {
	// Ring of 4 switches: two equal-cost 2-hop switch paths between
	// opposite corners. Capacity-blind Dijkstra is deterministic, so
	// every epoch routes the flow identically with Alpha 0; with Alpha>0
	// the previous epoch's load re-prices the chosen side and the next
	// epoch routes around it.
	topo, err := topology.Ring(4, nil)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	d := model.MustNew(topo, model.Options{})
	src, dst := topo.Hosts[0], topo.Hosts[2] // under switches 0 and 2

	route := func(alpha float64) ([]int, []int) {
		r, err := NewRouter(d, Config{Capacity: 100, Alpha: alpha})
		if err != nil {
			t.Fatalf("NewRouter: %v", err)
		}
		if err := r.BeginEpoch(nil); err != nil {
			t.Fatalf("BeginEpoch: %v", err)
		}
		d1, err := r.Admit(src, dst, 10)
		if err != nil || !d1.Admitted {
			t.Fatalf("epoch-1 admit: %+v, %v", d1, err)
		}
		if err := r.BeginEpoch(nil); err != nil {
			t.Fatalf("BeginEpoch 2: %v", err)
		}
		d2, err := r.Admit(src, dst, 10)
		if err != nil || !d2.Admitted {
			t.Fatalf("epoch-2 admit: %+v, %v", d2, err)
		}
		return d1.Walk, d2.Walk
	}

	w1, w2 := route(0)
	if !equalWalks(w1, w2) {
		t.Fatalf("alpha=0 routed differently across epochs: %v vs %v", w1, w2)
	}
	w1, w2 = route(2)
	if equalWalks(w1, w2) {
		t.Fatalf("alpha=2 kept the loaded path across epochs: %v", w2)
	}
}

func equalWalks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBeginEpochResetsLoadsAndReprices(t *testing.T) {
	d := linearPPDC(t, 1)
	r, err := NewRouter(d, Config{Capacity: 10, Alpha: 1})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	if dec, _ := r.Admit(0, 2, 5); !dec.Admitted || dec.Cost != 2 {
		t.Fatalf("first epoch admit: cost %v, want pristine 2", dec.Cost)
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch 2: %v", err)
	}
	if len(r.Loads()) != 0 {
		t.Fatalf("loads survived epoch reset: %v", r.Loads())
	}
	// u = 0.5 on both links: priced cost = 2 · (1 + 1·0.5/0.5) = 4.
	dec, err := r.Admit(0, 2, 1)
	if err != nil || !dec.Admitted {
		t.Fatalf("second epoch admit: %+v, %v", dec, err)
	}
	if math.Abs(dec.Cost-4) > 1e-12 {
		t.Fatalf("re-priced cost %v, want 4", dec.Cost)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	d := linearPPDC(t, 1)
	if _, err := NewRouter(d, Config{}); err == nil {
		t.Fatal("accepted zero capacity with no CapOf")
	}
	if _, err := NewRouter(d, Config{Capacity: 10, Alpha: -1}); err == nil {
		t.Fatal("accepted negative alpha")
	}
	if _, err := NewRouter(d, Config{Capacity: 10, MaxUtilization: 1.5}); err == nil {
		t.Fatal("accepted utilization target above 1")
	}
	if _, err := NewRouter(d, Config{CapOf: func(routing.Link) float64 { return -1 }}); err == nil {
		t.Fatal("accepted negative per-link capacity")
	}
	r, err := NewRouter(d, Config{Capacity: 10})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if _, err := r.Admit(0, 2, 1); err == nil {
		t.Fatal("Admit before BeginEpoch succeeded")
	}
	if _, err := r.Route(0, 2); err == nil {
		t.Fatal("Route before BeginEpoch succeeded")
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	if _, err := r.Admit(0, 2, math.Inf(1)); err == nil {
		t.Fatal("accepted infinite rate")
	}
}

func TestSaturatedReport(t *testing.T) {
	d := linearPPDC(t, 2)
	r, err := NewRouter(d, Config{Capacity: 10})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.BeginEpoch(nil); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	if dec, _ := r.Admit(0, 3, 5); !dec.Admitted {
		t.Fatal("admit failed")
	}
	recs := r.LinkLoads()
	if len(recs) != 3 {
		t.Fatalf("%d loaded links, want 3", len(recs))
	}
	for _, rec := range recs {
		if rec.Utilization != 0.5 || rec.Headroom != 5 {
			t.Fatalf("record %+v, want utilization 0.5 headroom 5", rec)
		}
	}
	if hot := r.Saturated(0.4); len(hot) != 3 {
		t.Fatalf("Saturated(0.4) = %d links, want 3", len(hot))
	}
	if hot := r.Saturated(0.5); len(hot) != 0 {
		t.Fatalf("Saturated(0.5) = %d links, want 0 (strictly above)", len(hot))
	}
}
