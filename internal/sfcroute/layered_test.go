package sfcroute

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/graph"
	"vnfopt/internal/model"
	"vnfopt/internal/topology"
)

// line returns the CSR of a path graph 0-1-...-(n-1) with unit weights.
func line(n int) *graph.CSR {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g.Freeze()
}

func TestEmptyChainIsPlainShortestPath(t *testing.T) {
	base := line(6)
	lay, err := BuildLayered(base, nil)
	if err != nil {
		t.Fatalf("BuildLayered(nil): %v", err)
	}
	if lay.Order() != base.Order() || lay.Stages() != 0 {
		t.Fatalf("n=0 expansion has order %d stages %d", lay.Order(), lay.Stages())
	}
	res, err := lay.ShortestPath(0, 5)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	dist, _ := base.Dijkstra(0)
	if res.Cost != dist[5] {
		t.Fatalf("n=0 cost %v != plain Dijkstra %v", res.Cost, dist[5])
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(res.Walk) != len(want) {
		t.Fatalf("walk %v, want %v", res.Walk, want)
	}
	for i := range want {
		if res.Walk[i] != want[i] {
			t.Fatalf("walk %v, want %v", res.Walk, want)
		}
	}
	if len(res.Gateways) != 0 {
		t.Fatalf("n=0 walk has gateways %v", res.Gateways)
	}
}

func TestSiteAtSourceAndDestination(t *testing.T) {
	base := line(5)
	// Stage 1 sits on the source vertex, stage 2 on the destination:
	// the chain adds zero detour and both crossings are at walk endpoints.
	lay, err := BuildLayered(base, [][]int{{0}, {4}})
	if err != nil {
		t.Fatalf("BuildLayered: %v", err)
	}
	res, err := lay.ShortestPath(0, 4)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if res.Cost != 4 {
		t.Fatalf("cost %v, want 4 (no detour for on-path sites)", res.Cost)
	}
	if len(res.Walk) != 5 || res.Walk[0] != 0 || res.Walk[4] != 4 {
		t.Fatalf("walk %v, want [0 1 2 3 4]", res.Walk)
	}
	if len(res.Gateways) != 2 || res.Gateways[0] != 0 || res.Gateways[1] != 4 {
		t.Fatalf("gateways %v, want [0 4]", res.Gateways)
	}
}

func TestSpurSiteDoublesLink(t *testing.T) {
	// Star: 0-1, 1-2, 1-3. Chain site 3 is a spur off the 0→2 path, so
	// the walk must enter and leave it over the same link.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	lay, err := BuildLayered(g.Freeze(), [][]int{{3}})
	if err != nil {
		t.Fatalf("BuildLayered: %v", err)
	}
	res, err := lay.ShortestPath(0, 2)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if res.Cost != 4 {
		t.Fatalf("cost %v, want 4 (0-1, 1-3 twice, 1-2)", res.Cost)
	}
	want := []int{0, 1, 3, 1, 2}
	if len(res.Walk) != len(want) {
		t.Fatalf("walk %v, want %v", res.Walk, want)
	}
	for i := range want {
		if res.Walk[i] != want[i] {
			t.Fatalf("walk %v, want %v", res.Walk, want)
		}
	}
	if len(res.Gateways) != 1 || res.Gateways[0] != 3 {
		t.Fatalf("gateways %v, want [3]", res.Gateways)
	}
}

func TestBuildLayeredErrors(t *testing.T) {
	base := line(4)
	if _, err := BuildLayered(base, [][]int{{1}, {}}); !errors.Is(err, ErrNoSite) {
		t.Fatalf("empty stage: got %v, want ErrNoSite", err)
	}
	if _, err := BuildLayered(base, [][]int{{4}}); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	if _, err := BuildLayered(base, [][]int{{-1}}); err == nil {
		t.Fatal("negative site accepted")
	}
}

func TestUnreachableLayerFailsCleanly(t *testing.T) {
	// Two components: 0-1 and 2-3. A site in the far component makes the
	// layer boundary uncrossable from src.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	lay, err := BuildLayered(g.Freeze(), [][]int{{2}})
	if err != nil {
		t.Fatalf("BuildLayered: %v", err)
	}
	if _, err := lay.ShortestPath(0, 1); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("unreachable chain: got %v, want ErrUnroutable", err)
	}
	// Bad endpoints are caller errors, not ErrUnroutable.
	if _, err := lay.ShortestPath(-1, 1); err == nil || errors.Is(err, ErrUnroutable) {
		t.Fatalf("negative src: got %v", err)
	}
	if _, err := lay.ShortestPath(0, 4); err == nil || errors.Is(err, ErrUnroutable) {
		t.Fatalf("out-of-range dst: got %v", err)
	}
}

func TestShortestPathOnRejectsForeignView(t *testing.T) {
	lay, err := BuildLayered(line(4), [][]int{{1}})
	if err != nil {
		t.Fatalf("BuildLayered: %v", err)
	}
	dist := make([]float64, lay.Order())
	prev := make([]int32, lay.Order())
	var s graph.SSSPScratch
	if _, err := lay.ShortestPathOn(line(4), 0, 3, dist, prev, &s); err == nil {
		t.Fatal("accepted a weight view with the wrong order")
	}
}

// TestDifferentialMetricClosure is the acceptance-criterion differential:
// with capacities non-binding, the layered shortest-path cost for a
// placement chain must match the metric-closure concatenation the
// optimizers price — bit-identical on unit-weight fabrics (all sums are
// small integers, exact in float64), within 1e-9 relative error on
// weighted fabrics (equal-cost ties may resolve to different paths whose
// sums associate differently).
func TestDifferentialMetricClosure(t *testing.T) {
	fixtures := []struct {
		name  string
		topo  *topology.Topology
		exact bool
	}{
		{"fat-tree-k8-unit", topology.MustFatTree(8, nil), true},
		{"fat-tree-k4-weighted", topology.MustFatTree(4, topology.PaperDelay(rand.New(rand.NewSource(7)))), false},
	}
	if jf, err := topology.Jellyfish(16, 4, 2, nil, rand.New(rand.NewSource(3))); err == nil {
		fixtures = append(fixtures, struct {
			name  string
			topo  *topology.Topology
			exact bool
		}{"jellyfish-16-unit", jf, true})
	} else {
		t.Fatalf("jellyfish fixture: %v", err)
	}
	if jf, err := topology.Jellyfish(14, 3, 1, topology.PaperDelay(rand.New(rand.NewSource(11))), rand.New(rand.NewSource(4))); err == nil {
		fixtures = append(fixtures, struct {
			name  string
			topo  *topology.Topology
			exact bool
		}{"jellyfish-14-weighted", jf, false})
	} else {
		t.Fatalf("weighted jellyfish fixture: %v", err)
	}

	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			d := model.MustNew(fx.topo, model.Options{})
			base := d.Topo.Graph.Freeze()
			rng := rand.New(rand.NewSource(42))
			hosts, switches := d.Hosts(), d.Switches()
			for trial := 0; trial < 60; trial++ {
				src := hosts[rng.Intn(len(hosts))]
				dst := hosts[rng.Intn(len(hosts))]
				n := rng.Intn(4) // chains of length 0..3
				p := make(model.Placement, n)
				for j := range p {
					p[j] = switches[rng.Intn(len(switches))]
				}
				lay, err := BuildLayered(base, PlacementSites(p))
				if err != nil {
					t.Fatalf("trial %d: BuildLayered(%v): %v", trial, p, err)
				}
				res, err := lay.ShortestPath(src, dst)
				if err != nil {
					t.Fatalf("trial %d: ShortestPath(%d,%d | %v): %v", trial, src, dst, p, err)
				}
				// Metric-closure concatenation: src → p1 → … → pn → dst.
				closure := 0.0
				at := src
				for _, s := range p {
					closure += d.Cost(at, s)
					at = s
				}
				closure += d.Cost(at, dst)
				if fx.exact {
					if res.Cost != closure {
						t.Fatalf("trial %d: layered cost %v != metric closure %v for (%d,%d | %v)",
							trial, res.Cost, closure, src, dst, p)
					}
				} else if diff := math.Abs(res.Cost - closure); diff > 1e-9*math.Max(1, closure) {
					t.Fatalf("trial %d: layered cost %v vs metric closure %v (diff %v) for (%d,%d | %v)",
						trial, res.Cost, closure, diff, src, dst, p)
				}
				// The projected walk re-prices to the same cost under the
				// pristine weights and visits the chain in order.
				if len(res.Gateways) != n {
					t.Fatalf("trial %d: %d gateways for chain of %d", trial, len(res.Gateways), n)
				}
				for j, gw := range res.Gateways {
					if gw != p[j] {
						t.Fatalf("trial %d: gateway %d is %d, want %d", trial, j, gw, p[j])
					}
				}
			}
		})
	}
}
