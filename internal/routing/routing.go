// Package routing materializes policy-preserving flows onto actual
// network links. The optimization layers work with shortest-path *costs*;
// this package stitches the corresponding *paths* (src → f_1 → … → f_n →
// dst), accumulates per-link traffic loads, and reports utilization — the
// quantity behind the paper's provisioning assumption that "network links
// are generally provisioned around 40% of utilization" and its claim that
// policy-preserving traffic consumes extra bandwidth.
package routing

import (
	"fmt"
	"math"
	"sort"

	"vnfopt/internal/model"
)

// Link is an undirected edge key with U < V.
type Link struct {
	U, V int
}

// mkLink normalizes an endpoint pair.
func mkLink(a, b int) Link {
	if a > b {
		a, b = b, a
	}
	return Link{U: a, V: b}
}

// FlowRoute returns the full vertex walk of one flow under placement p:
// the concatenation of shortest paths src → p(1) → … → p(n) → dst
// (duplicate junction vertices removed). A nil/empty placement routes the
// flow directly. Returns nil if any leg is disconnected.
func FlowRoute(d *model.PPDC, f model.VMPair, p model.Placement) []int {
	waypoints := make([]int, 0, len(p)+2)
	waypoints = append(waypoints, f.Src)
	waypoints = append(waypoints, p...)
	waypoints = append(waypoints, f.Dst)
	walk := []int{f.Src}
	for i := 0; i+1 < len(waypoints); i++ {
		leg := d.APSP.Path(waypoints[i], waypoints[i+1])
		if leg == nil {
			return nil
		}
		walk = append(walk, leg[1:]...)
	}
	return walk
}

// MigrationRoute returns the vertex walk a VNF migration takes from its
// old to its new switch (nil when the VNF stays put or is disconnected).
func MigrationRoute(d *model.PPDC, from, to int) []int {
	if from == to {
		return nil
	}
	return d.APSP.Path(from, to)
}

// LinkLoads accumulates per-link traffic for a workload under a placement:
// every link on a flow's route carries that flow's full rate. The walk may
// traverse a link twice (e.g. an n-tour); each traversal counts.
func LinkLoads(d *model.PPDC, w model.Workload, p model.Placement) (map[Link]float64, error) {
	loads := make(map[Link]float64)
	for i, f := range w {
		if f.Rate == 0 {
			continue
		}
		walk := FlowRoute(d, f, p)
		if walk == nil {
			return nil, fmt.Errorf("routing: flow %d is disconnected under placement %v", i, p)
		}
		for j := 0; j+1 < len(walk); j++ {
			loads[mkLink(walk[j], walk[j+1])] += f.Rate
		}
	}
	return loads, nil
}

// AddMigrationLoads adds the one-shot migration traffic μ per link on each
// VNF's migration path into loads (in place).
func AddMigrationLoads(d *model.PPDC, loads map[Link]float64, p, m model.Placement, mu float64) {
	for j := range p {
		walk := MigrationRoute(d, p[j], m[j])
		for i := 0; i+1 < len(walk); i++ {
			loads[mkLink(walk[i], walk[i+1])] += mu
		}
	}
}

// Report summarizes a link-load map.
type Report struct {
	// Links is the number of links carrying non-zero load.
	Links int
	// Total is the sum of all link loads — exactly the traffic-volume
	// objective C_a when every link has unit weight.
	Total float64
	// Max and Mean describe the load distribution over loaded links.
	Max, Mean float64
	// P99 is the 99th-percentile loaded-link load.
	P99 float64
	// MaxLink is the heaviest link.
	MaxLink Link
}

// Summarize builds a Report from a load map.
func Summarize(loads map[Link]float64) Report {
	r := Report{}
	vals := make([]float64, 0, len(loads))
	for l, v := range loads {
		if v <= 0 {
			continue
		}
		vals = append(vals, v)
		r.Total += v
		if v > r.Max {
			r.Max = v
			r.MaxLink = l
		}
	}
	r.Links = len(vals)
	if r.Links == 0 {
		return r
	}
	r.Mean = r.Total / float64(r.Links)
	sort.Float64s(vals)
	idx := int(math.Ceil(0.99*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	r.P99 = vals[idx]
	return r
}

// LinkLoad is one link's capacity-aware load record: the raw traffic it
// carries, its capacity, the resulting utilization fraction, and the
// remaining headroom (capacity − load, clamped at 0). Headroom — not raw
// load — is what admission decisions consume, so reports surface it
// directly.
type LinkLoad struct {
	Link        Link    `json:"link"`
	Load        float64 `json:"load"`
	Capacity    float64 `json:"capacity"`
	Utilization float64 `json:"utilization"`
	Headroom    float64 `json:"headroom"`
}

// CapacityFunc returns the capacity of a link. Generators must return a
// positive, finite capacity for every link they are asked about.
type CapacityFunc func(Link) float64

// UniformCapacity returns a CapacityFunc assigning every link the same
// capacity c (the paper's homogeneous-fabric provisioning assumption).
func UniformCapacity(c float64) CapacityFunc {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("routing: invalid uniform capacity %v", c))
	}
	return func(Link) float64 { return c }
}

// Loads converts a raw load map into per-link capacity-aware records,
// sorted by descending utilization (ties by link endpoints, so output is
// deterministic). Zero-load links are omitted; a non-positive capacity
// from capOf is an error.
func Loads(loads map[Link]float64, capOf CapacityFunc) ([]LinkLoad, error) {
	out := make([]LinkLoad, 0, len(loads))
	for l, v := range loads {
		if v <= 0 {
			continue
		}
		c := capOf(l)
		if c <= 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("routing: link (%d,%d) has invalid capacity %v", l.U, l.V, c)
		}
		rec := LinkLoad{Link: l, Load: v, Capacity: c, Utilization: v / c, Headroom: c - v}
		if rec.Headroom < 0 {
			rec.Headroom = 0
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utilization != out[j].Utilization {
			return out[i].Utilization > out[j].Utilization
		}
		if out[i].Link.U != out[j].Link.U {
			return out[i].Link.U < out[j].Link.U
		}
		return out[i].Link.V < out[j].Link.V
	})
	return out, nil
}

// Saturated filters Loads down to links whose utilization strictly
// exceeds threshold (e.g. the paper's 0.40 provisioning point), sorted
// hottest first.
func Saturated(loads map[Link]float64, capOf CapacityFunc, threshold float64) ([]LinkLoad, error) {
	all, err := Loads(loads, capOf)
	if err != nil {
		return nil, err
	}
	cut := len(all)
	for i, r := range all {
		if r.Utilization <= threshold {
			cut = i
			break
		}
	}
	return all[:cut], nil
}

// Utilization converts a load map into per-link utilization fractions
// given a uniform link capacity, reporting the fraction of links above
// the threshold (e.g. the paper's 0.40 provisioning point).
func Utilization(loads map[Link]float64, capacity, threshold float64) (maxUtil float64, above int, err error) {
	if capacity <= 0 {
		return 0, 0, fmt.Errorf("routing: non-positive capacity %v", capacity)
	}
	for _, v := range loads {
		u := v / capacity
		if u > maxUtil {
			maxUtil = u
		}
		if u > threshold {
			above++
		}
	}
	return maxUtil, above, nil
}

// TotalOnUnitWeights cross-checks a load map against the model objective:
// on a PPDC with unit link weights, Σ link loads equals C_a(p) exactly
// (every unit of traffic crossing a link contributes 1 to both).
func TotalOnUnitWeights(d *model.PPDC, w model.Workload, p model.Placement) (linkTotal, commCost float64, err error) {
	loads, err := LinkLoads(d, w, p)
	if err != nil {
		return 0, 0, err
	}
	return Summarize(loads).Total, d.CommCost(w, p), nil
}
