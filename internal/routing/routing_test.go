package routing

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func ppdc(t *testing.T, k int) *model.PPDC {
	t.Helper()
	return model.MustNew(topology.MustFatTree(k, nil), model.Options{})
}

func TestFlowRouteVisitsWaypointsInOrder(t *testing.T) {
	d := ppdc(t, 4)
	f := model.VMPair{Src: d.Topo.Hosts[0], Dst: d.Topo.Hosts[10], Rate: 5}
	p := model.Placement{d.Topo.Switches[2], d.Topo.Switches[9]}
	walk := FlowRoute(d, f, p)
	if walk == nil {
		t.Fatal("nil route")
	}
	if walk[0] != f.Src || walk[len(walk)-1] != f.Dst {
		t.Fatalf("route endpoints %d..%d", walk[0], walk[len(walk)-1])
	}
	// Waypoints must appear in order.
	idx := 0
	want := []int{f.Src, p[0], p[1], f.Dst}
	for _, v := range walk {
		if idx < len(want) && v == want[idx] {
			idx++
		}
	}
	if idx != len(want) {
		t.Fatalf("route %v misses waypoint order %v", walk, want)
	}
	// Every hop must be an actual edge.
	for i := 0; i+1 < len(walk); i++ {
		if !d.Topo.Graph.HasEdge(walk[i], walk[i+1]) {
			t.Fatalf("route uses non-edge (%d,%d)", walk[i], walk[i+1])
		}
	}
}

func TestFlowRouteDirectWhenNoSFC(t *testing.T) {
	d := ppdc(t, 2)
	f := model.VMPair{Src: d.Topo.Hosts[0], Dst: d.Topo.Hosts[1], Rate: 1}
	walk := FlowRoute(d, f, nil)
	if len(walk) != 7 { // 6 hops across the k=2 tree
		t.Fatalf("direct route %v", walk)
	}
}

func TestFlowRouteSameHostTour(t *testing.T) {
	d := ppdc(t, 2)
	h := d.Topo.Hosts[0]
	f := model.VMPair{Src: h, Dst: h, Rate: 1}
	// Tour through the rack's edge switch and its aggregation switch.
	var edgeSw, aggSw int
	for v, l := range d.Topo.Labels {
		switch l {
		case "e1.1":
			edgeSw = v
		case "a1.1":
			aggSw = v
		}
	}
	walk := FlowRoute(d, f, model.Placement{edgeSw, aggSw})
	if walk == nil || walk[0] != h || walk[len(walk)-1] != h {
		t.Fatalf("tour walk %v", walk)
	}
	if len(walk) != 5 { // h-e, e-a, a-e, e-h
		t.Fatalf("tour length %d: %v", len(walk), walk)
	}
}

func TestLinkLoadsMatchCommCostOnUnitWeights(t *testing.T) {
	d := ppdc(t, 4)
	rng := rand.New(rand.NewSource(1))
	w := workload.MustPairs(d.Topo, 25, workload.DefaultIntraRack, rng)
	p, _, err := (placement.DP{}).Place(d, w, model.NewSFC(3))
	if err != nil {
		t.Fatal(err)
	}
	linkTotal, commCost, err := TotalOnUnitWeights(d, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linkTotal-commCost) > 1e-6 {
		t.Fatalf("Σ link loads %v != C_a %v", linkTotal, commCost)
	}
}

func TestLinkLoadsSkipZeroRate(t *testing.T) {
	d := ppdc(t, 2)
	w := model.Workload{{Src: d.Topo.Hosts[0], Dst: d.Topo.Hosts[1], Rate: 0}}
	loads, err := LinkLoads(d, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 0 {
		t.Fatalf("zero-rate flow loaded links: %v", loads)
	}
}

func TestAddMigrationLoads(t *testing.T) {
	d := ppdc(t, 2)
	byLabel := map[string]int{}
	for v, l := range d.Topo.Labels {
		byLabel[l] = v
	}
	p := model.Placement{byLabel["e1.1"]}
	m := model.Placement{byLabel["e2.1"]} // 4 hops away
	loads := map[Link]float64{}
	AddMigrationLoads(d, loads, p, m, 100)
	if len(loads) != 4 {
		t.Fatalf("migration touched %d links, want 4", len(loads))
	}
	for l, v := range loads {
		if v != 100 {
			t.Fatalf("link %v load %v, want 100", l, v)
		}
	}
	// Staying put adds nothing.
	AddMigrationLoads(d, loads, p, p, 100)
	total := 0.0
	for _, v := range loads {
		total += v
	}
	if total != 400 {
		t.Fatalf("self-migration changed loads: total %v", total)
	}
}

func TestSummarize(t *testing.T) {
	loads := map[Link]float64{
		{0, 1}: 10,
		{1, 2}: 30,
		{2, 3}: 20,
		{3, 4}: 0, // ignored
	}
	r := Summarize(loads)
	if r.Links != 3 || r.Total != 60 || r.Max != 30 || r.Mean != 20 {
		t.Fatalf("report %+v", r)
	}
	if r.MaxLink != (Link{1, 2}) {
		t.Fatalf("max link %v", r.MaxLink)
	}
	if r.P99 != 30 {
		t.Fatalf("p99 %v", r.P99)
	}
	empty := Summarize(nil)
	if empty.Links != 0 || empty.Total != 0 {
		t.Fatalf("empty report %+v", empty)
	}
}

func TestUtilization(t *testing.T) {
	loads := map[Link]float64{
		{0, 1}: 50,
		{1, 2}: 10,
	}
	maxU, above, err := Utilization(loads, 100, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if maxU != 0.5 || above != 1 {
		t.Fatalf("maxU=%v above=%d", maxU, above)
	}
	if _, _, err := Utilization(loads, 0, 0.4); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestMigrationReducesPeakLinkLoad(t *testing.T) {
	// The routing view of the paper's story: after the hot tenant moves,
	// a stale placement drags heavy traffic across the fabric; migrating
	// reduces the total (and typically the peak) link load.
	d := ppdc(t, 8)
	rng := rand.New(rand.NewSource(5))
	base := workload.MustPairsClustered(d.Topo, 64, 4, workload.DefaultIntraRack, rng)
	sched, err := workload.PaperBurst().Schedule(d.Topo, base, rng)
	if err != nil {
		t.Fatal(err)
	}
	sfc := model.NewSFC(3)
	p, _, err := (placement.DP{}).Place(d, base.WithRates(sched[1]), sfc)
	if err != nil {
		t.Fatal(err)
	}
	afternoon := base.WithRates(sched[8])
	pNew, _, err := (placement.DP{}).Place(d, afternoon, sfc)
	if err != nil {
		t.Fatal(err)
	}
	staleLoads, err := LinkLoads(d, afternoon, p)
	if err != nil {
		t.Fatal(err)
	}
	freshLoads, err := LinkLoads(d, afternoon, pNew)
	if err != nil {
		t.Fatal(err)
	}
	stale, fresh := Summarize(staleLoads), Summarize(freshLoads)
	if fresh.Total > stale.Total+1e-6 {
		t.Fatalf("fresh placement total load %v exceeds stale %v", fresh.Total, stale.Total)
	}
}

func TestRouteDisconnected(t *testing.T) {
	// A host with no path to the placement: build a disconnected graph
	// manually via a workload endpoint that equals a valid host but a
	// placement on an unreachable... fat trees are connected, so instead
	// verify FlowRoute's nil contract via MigrationRoute on same switch.
	d := ppdc(t, 2)
	if MigrationRoute(d, d.Topo.Switches[0], d.Topo.Switches[0]) != nil {
		t.Fatal("self-migration route should be nil")
	}
}

// TestLoadsHeadroom: Loads surfaces capacity headroom per link, sorted
// hottest first with a deterministic tie order, and clamps negative
// headroom on overloaded links.
func TestLoadsHeadroom(t *testing.T) {
	loads := map[Link]float64{
		{U: 0, V: 1}: 30,
		{U: 1, V: 2}: 120, // overloaded
		{U: 2, V: 3}: 30,  // utilization tie with (0,1)
		{U: 3, V: 4}: 0,   // dropped
	}
	recs, err := Loads(loads, UniformCapacity(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Link != (Link{U: 1, V: 2}) || recs[0].Utilization != 1.2 || recs[0].Headroom != 0 {
		t.Fatalf("hottest record wrong: %+v", recs[0])
	}
	if recs[1].Link != (Link{U: 0, V: 1}) || recs[2].Link != (Link{U: 2, V: 3}) {
		t.Fatalf("tie order not deterministic: %+v", recs[1:])
	}
	if recs[1].Headroom != 70 {
		t.Fatalf("headroom = %v, want 70", recs[1].Headroom)
	}
}

// TestSaturated: only links strictly above the threshold survive, in
// descending utilization order.
func TestSaturated(t *testing.T) {
	loads := map[Link]float64{
		{U: 0, V: 1}: 39,
		{U: 1, V: 2}: 41,
		{U: 2, V: 3}: 95,
		{U: 3, V: 4}: 40, // exactly at threshold: excluded
	}
	hot, err := Saturated(loads, UniformCapacity(100), 0.40)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 2 || hot[0].Link != (Link{U: 2, V: 3}) || hot[1].Link != (Link{U: 1, V: 2}) {
		t.Fatalf("saturated set wrong: %+v", hot)
	}
}

// TestLoadsBadCapacity: a non-positive capacity is an error, not a NaN
// in the report.
func TestLoadsBadCapacity(t *testing.T) {
	loads := map[Link]float64{{U: 0, V: 1}: 1}
	if _, err := Loads(loads, func(Link) float64 { return 0 }); err == nil {
		t.Fatal("expected error for zero capacity")
	}
}
