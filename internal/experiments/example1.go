package experiments

import (
	"fmt"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/topology"
)

// Example1 reproduces the paper's worked Example 1 (Fig. 3) exactly: a
// k=2 fat-tree PPDC, two VM flows with λ swapping from ⟨100, 1⟩ to
// ⟨1, 100⟩, μ=1, and a 2-VNF SFC. The paper's numbers: initial optimal
// cost 410, post-swap cost 1004, migration cost 6, post-migration
// communication cost 410 — a 58.6% total-cost reduction.
func Example1(cfg Config) (*Table, error) {
	d := model.MustNew(topology.MustFatTree(2, nil), model.Options{})
	h1, h2 := d.Topo.Hosts[0], d.Topo.Hosts[1]
	sfc := model.NewSFC(2)
	const mu = 1.0

	before := model.Workload{{Src: h1, Dst: h1, Rate: 100}, {Src: h2, Dst: h2, Rate: 1}}
	after := model.Workload{{Src: h1, Dst: h1, Rate: 1}, {Src: h2, Dst: h2, Rate: 100}}

	p, cInit, err := (placement.DP{}).Place(d, before, sfc)
	if err != nil {
		return nil, err
	}
	cSwap := d.CommCost(after, p)
	m, ct, err := (migration.MPareto{}).Migrate(d, after, sfc, p, mu)
	if err != nil {
		return nil, err
	}
	cb := d.MigrationCost(p, m, mu)
	ca := d.CommCost(after, m)

	t := &Table{
		Title:   "Example 1 (Fig. 3) — VNF migration on the k=2 fat-tree PPDC, μ=1",
		Columns: []string{"quantity", "paper", "measured"},
	}
	t.AddRow("initial optimal C_a(p), λ=⟨100,1⟩", "410", fmt.Sprintf("%.0f", cInit))
	t.AddRow("C_a(p) after swap to λ=⟨1,100⟩", "1004", fmt.Sprintf("%.0f", cSwap))
	t.AddRow("migration cost C_b(p,m)", "6", fmt.Sprintf("%.0f", cb))
	t.AddRow("post-migration C_a(m)", "410", fmt.Sprintf("%.0f", ca))
	t.AddRow("total C_t(p,m)", "416", fmt.Sprintf("%.0f", ct))
	t.AddRow("total cost reduction", "58.6%", fmt.Sprintf("%.1f%%", 100*(cSwap-ct)/cSwap))
	return t, nil
}
