package experiments

import (
	"fmt"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/workload"
)

// Fig6b reproduces the paper's Fig. 6(b): the (C_b, C_a) coordinates of
// every parallel VNF migration frontier while the SFC migrates from an
// initial traffic-optimal placement p to the new optimum p' after the
// traffic shifts — a k=KLarge fat tree with n=6 VNFs and μ=200, as in the
// paper. The shift is a burst-model morning→afternoon transition (the hot
// tenant changes), which actually moves the optimum; independent rate
// redraws leave it pinned. The table also reports whether the sweep forms
// a Pareto front and whether it is convex (Theorem 5's condition).
func Fig6b(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KLarge)
	n := 6
	if n > len(d.Topo.Switches) {
		n = len(d.Topo.Switches) / 2
	}
	const mu = 200.0
	sfc := model.NewSFC(n)

	// Scan seeds for a morning→afternoon shift whose new optimum is a
	// genuine move (some instances keep the same optimal switches, which
	// would make the sweep a single point).
	for attempt := 0; attempt < 32; attempt++ {
		rng := cfg.runSeed("fig6b", attempt)
		w := workload.MustPairsClustered(d.Topo, cfg.FlowsLarge, cfg.TenantRacks, workload.DefaultIntraRack, rng)
		sched, err := workload.PaperBurst().Schedule(d.Topo, w, rng)
		if err != nil {
			return nil, err
		}
		morning := w.WithRates(sched[2])
		afternoon := w.WithRates(sched[8])
		p, _, err := (placement.DP{}).Place(d, morning, sfc)
		if err != nil {
			return nil, err
		}
		pNew, _, err := (placement.DP{}).Place(d, afternoon, sfc)
		if err != nil {
			return nil, err
		}
		if p.Equal(pNew) {
			continue
		}
		points := migration.ParallelFrontiers(d, afternoon, sfc, p, pNew, mu)
		if len(points) < 3 {
			continue
		}
		t := &Table{
			Title: fmt.Sprintf("Fig. 6(b) — parallel migration frontiers, k=%d, n=%d, μ=%g", cfg.KLarge, n, mu),
			Columns: []string{
				"frontier", "C_b(p,m)", "C_a(m)", "C_t", "valid",
			},
		}
		for i, fp := range points {
			t.AddRow(
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%.1f", fp.Cb),
				fmt.Sprintf("%.1f", fp.Ca),
				fmt.Sprintf("%.1f", fp.Cb+fp.Ca),
				fmt.Sprintf("%v", fp.Valid),
			)
		}
		t.AddNote("Pareto front: %v; convex (Theorem 5 condition): %v",
			migration.IsParetoFront(points), migration.IsConvexFront(points))
		return t, nil
	}
	return nil, fmt.Errorf("experiments: fig6b found no moving optimum in 32 attempts")
}
