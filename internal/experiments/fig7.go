package experiments

import (
	"fmt"

	"vnfopt/internal/parallel"

	"vnfopt/internal/model"
	"vnfopt/internal/placement"
	"vnfopt/internal/stats"
)

// Fig7 reproduces the paper's Fig. 7: TOP-1 (n-stroll) algorithms on an
// unweighted k=KSmall fat tree with one VM pair, varying the number of
// VNFs n. Series: Optimal (Algorithm 4 / exhaustive stroll), DP-Stroll
// (Algorithm 2), the PrimalDual 2+ε guarantee plotted as 2×Optimal (as the
// paper does), and — beyond the paper — the measured cost of our actual
// primal-dual implementation.
//
// The paper's qualitative claims checked here: DP-Stroll stays within a
// few percent of Optimal (paper: ~8%) and solidly under the guarantee.
func Fig7(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KSmall)
	maxN := 8
	if cfg.KSmall < 6 {
		maxN = 6
	}
	t := &Table{
		Title: fmt.Sprintf("Fig. 7 — TOP-1 algorithms, k=%d fat tree, l=1, unweighted (mean ± 95%% CI over %d runs)",
			cfg.KSmall, cfg.Runs),
		Columns: []string{"n", "Optimal", "DP-Stroll", "PrimalDual 2x bound", "PrimalDual measured"},
	}
	unproven := 0
	for n := 2; n <= maxN; n++ {
		n := n
		type runOut struct {
			opt, dp, pd float64
			unproven    bool
		}
		perRun, err := parallel.Map(cfg.Runs, 0, func(r int) (runOut, error) {
			rng := cfg.runSeed("fig7", r*100+n)
			hosts := d.Topo.Hosts
			f := model.VMPair{
				Src:  hosts[rng.Intn(len(hosts))],
				Dst:  hosts[rng.Intn(len(hosts))],
				Rate: 1, // unit rate: Fig. 7 reports pure stroll cost
			}
			var out runOut
			var proven bool
			var err error
			_, out.opt, proven, err = placement.Top1Optimal(d, f, n, cfg.OptBudget)
			if err != nil {
				return runOut{}, err
			}
			out.unproven = !proven
			_, out.dp, err = placement.Top1DP(d, f, n)
			if err != nil {
				return runOut{}, err
			}
			_, out.pd, err = placement.Top1PrimalDual(d, f, n)
			if err != nil {
				return runOut{}, err
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		var opt, dp, pd, bound []float64
		for _, ro := range perRun {
			if ro.unproven {
				unproven++
			}
			opt = append(opt, ro.opt)
			dp = append(dp, ro.dp)
			pd = append(pd, ro.pd)
			bound = append(bound, 2*ro.opt)
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmtSummary(stats.Summarize(opt)),
			fmtSummary(stats.Summarize(dp)),
			fmtSummary(stats.Summarize(bound)),
			fmtSummary(stats.Summarize(pd)),
		)
	}
	if unproven > 0 {
		t.AddNote("%d Optimal points hit the %d-node search budget (anytime incumbent reported)", unproven, cfg.OptBudget)
	}
	return t, nil
}
