package experiments

import (
	"strconv"
	"strings"
	"testing"

	"vnfopt/internal/model"
)

// TestAllExperimentsQuick smoke-runs every registered experiment at
// QuickConfig scale and sanity-checks the tables.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := QuickConfig()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("malformed table: %+v", tab)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("row %v does not match columns %v", row, tab.Columns)
					}
				}
				var sb strings.Builder
				tab.Fprint(&sb)
				if !strings.Contains(sb.String(), tab.Title) {
					t.Fatal("Fprint lost the title")
				}
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestExample1MatchesPaperNumbers(t *testing.T) {
	tabs, err := Run("example1", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		if len(row) == 3 && row[1] != row[2] && !strings.Contains(row[0], "reduction") {
			t.Errorf("Example 1 row %q: paper %q vs measured %q", row[0], row[1], row[2])
		}
	}
}

func TestFig7DPWithinGuarantee(t *testing.T) {
	cfg := QuickConfig()
	tab, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Column order: n, Optimal, DP-Stroll, 2x bound, PD measured.
	for _, row := range tab.Rows {
		opt := parseMean(t, row[1])
		dp := parseMean(t, row[2])
		if dp < opt-1e-6 {
			t.Errorf("n=%s: DP mean %v below Optimal mean %v", row[0], dp, opt)
		}
		if dp > 2*opt+1e-6 {
			t.Errorf("n=%s: DP mean %v above the 2x guarantee (opt %v)", row[0], dp, opt)
		}
	}
}

func TestFig11dShowsReduction(t *testing.T) {
	cfg := QuickConfig()
	cfg.Runs = 2
	tab, err := Fig11d(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		mp := parseMean(t, row[1])
		nm := parseMean(t, row[2])
		if mp > nm+1e-6 {
			t.Errorf("n=%s: mPareto daily total %v exceeds NoMigration %v", row[0], mp, nm)
		}
	}
}

// parseMean extracts the mean from a "mean ± ci" cell.
func parseMean(t *testing.T, cell string) float64 {
	t.Helper()
	fields := strings.Fields(cell)
	if len(fields) == 0 {
		t.Fatalf("empty cell")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	def := DefaultConfig()
	if def.Runs != 20 || def.KSmall != 8 || def.KLarge != 16 {
		t.Fatalf("default config = %+v", def)
	}
	q := QuickConfig()
	if q.Runs >= def.Runs || q.KLarge >= def.KLarge {
		t.Fatalf("quick config not smaller: %+v", q)
	}
}

func TestDefaultHostCapacity(t *testing.T) {
	d := unweightedFatTree(4)
	// Workload with all VMs piled on one host: capacity must cover the
	// initial occupancy so the baselines start feasible.
	h := d.Topo.Hosts[0]
	var mw model.Workload
	for i := 0; i < 10; i++ {
		mw = append(mw, model.VMPair{Src: h, Dst: h, Rate: 1})
	}
	c := defaultHostCapacity(d, mw)
	if c < 20 {
		t.Fatalf("capacity %d cannot hold the 20 initial VMs", c)
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}, {"2", "z"}},
		Notes:   []string{"caveat"},
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a,b\n", "1,\"x,y\"\n", "2,z\n", "# caveat\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}
