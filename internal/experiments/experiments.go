// Package experiments regenerates every figure of the paper's evaluation
// (Section VI). Each Fig* function produces one or more Tables whose rows
// correspond to the series the paper plots; cmd/vnfsim prints them and the
// top-level benchmarks run them at reduced scale.
//
// Scales: DefaultConfig reproduces the paper's parameters (k=8 and k=16
// fat trees, 20-run averages); QuickConfig shrinks arity, flow counts, and
// run counts so the whole suite finishes in seconds for CI and
// `go test -bench`.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"

	"vnfopt/internal/model"
	"vnfopt/internal/stats"
	"vnfopt/internal/topology"
)

// Config controls experiment scale.
type Config struct {
	// Runs is the number of repetitions per data point (paper: 20).
	Runs int
	// Seed is the base RNG seed; run r of a figure derives its own
	// stream from it, so tables are reproducible.
	Seed int64
	// KSmall is the fat-tree arity for the placement experiments
	// (paper: 8).
	KSmall int
	// KLarge is the arity for the dynamic-traffic experiments
	// (paper: 16).
	KLarge int
	// FlowsSmall is the VM-pair count for Fig. 9/10 (paper's plots do
	// not pin it; 100 keeps shapes stable).
	FlowsSmall int
	// FlowsLarge is the VM-pair count for Fig. 11(a,b,d). The paper does
	// not pin l for these plots; dynamic traffic matters most when
	// individual heavy flows move the optimum, so the default is modest
	// (Fig. 11(c) sweeps l on an exponential scale around this value).
	FlowsLarge int
	// TenantRacks is how many racks the Fig. 11 workloads concentrate
	// their VM pairs into (tenant skew; see workload.PairsClustered).
	TenantRacks int
	// VNFs is the default SFC length n where a figure holds it fixed
	// (paper: 7 for Fig. 11).
	VNFs int
	// Mu is the default VNF migration coefficient (paper: 10^4–10^5).
	Mu float64
	// HourVolume converts a traffic *rate* λ (communication frequency
	// per time unit) into an hourly traffic *volume*: one simulated hour
	// carries HourVolume·λ units past the SFC while a migration is paid
	// once. The paper leaves this discretization implicit; its Fig. 11
	// dynamics (tens of VNF migrations per day at μ=10⁴, many more VM
	// migrations for PLAN/MCF) correspond to ≈10 rate units per hour.
	HourVolume float64
	// OptBudget caps branch-and-bound expansions for the exhaustive
	// Optimal algorithms; 0 = unlimited. At k=8 unlimited search is
	// infeasible for larger n, so the budgeted anytime result stands in
	// (flagged in table footers).
	OptBudget int
	// HostCapacity bounds VMs per host for the PLAN/MCF baselines
	// (0 = twice the average initial occupancy, set per workload).
	HostCapacity int
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Runs:        20,
		Seed:        1,
		KSmall:      8,
		KLarge:      16,
		FlowsSmall:  100,
		FlowsLarge:  512,
		TenantRacks: 6,
		VNFs:        7,
		Mu:          1e4,
		HourVolume:  10,
		OptBudget:   2_000_000,
	}
}

// QuickConfig returns a seconds-scale configuration for benchmarks and CI.
func QuickConfig() Config {
	return Config{
		Runs:        3,
		Seed:        1,
		KSmall:      4,
		KLarge:      8,
		FlowsSmall:  30,
		FlowsLarge:  64,
		TenantRacks: 4,
		VNFs:        5,
		Mu:          1e4,
		HourVolume:  10,
		OptBudget:   200_000,
	}
}

// Table is one experiment's output: the rows the paper plots.
type Table struct {
	// Title names the figure, e.g. "Fig. 7 — TOP-1 algorithms".
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes records caveats (e.g. budget-limited Optimal points).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	var hdr []string
	for i, c := range t.Columns {
		hdr = append(hdr, pad(c, widths[i]))
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(hdr, "  "))
	for _, row := range t.Rows {
		var cells []string
		for i, c := range row {
			wd := 0
			if i < len(widths) {
				wd = widths[i]
			}
			cells = append(cells, pad(c, wd))
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(cells, "  "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV renders the table as RFC-4180 CSV (header row first; notes as
// trailing comment lines) for downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// fmtSummary renders a stats summary as "mean ± ci".
func fmtSummary(s stats.Summary) string {
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.CI95Half)
}

// runSeed derives a deterministic per-run RNG.
func (c Config) runSeed(figure string, run int) *rand.Rand {
	h := int64(17)
	for _, b := range []byte(figure) {
		h = h*31 + int64(b)
	}
	return rand.New(rand.NewSource(c.Seed + h*1_000_003 + int64(run)*7_919))
}

// ppdcCache memoizes unweighted fat-tree PPDCs: the APSP computation at
// k=16 is the dominant per-run fixed cost and the topology never changes
// across runs.
var ppdcCache sync.Map // key int (arity) -> *model.PPDC

// unweightedFatTree returns a cached PPDC for the k-ary unit-weight fat
// tree.
func unweightedFatTree(k int) *model.PPDC {
	if v, ok := ppdcCache.Load(k); ok {
		return v.(*model.PPDC)
	}
	d := model.MustNew(topology.MustFatTree(k, nil), model.Options{})
	actual, _ := ppdcCache.LoadOrStore(k, d)
	return actual.(*model.PPDC)
}
