package experiments

import (
	"math"
	"testing"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/vmmig"
	"vnfopt/internal/workload"
)

func newTestSim(t *testing.T) *daySim {
	t.Helper()
	cfg := QuickConfig()
	d := unweightedFatTree(cfg.KLarge)
	rng := cfg.runSeed("daysim-test", 1)
	base := workload.MustPairsClustered(d.Topo, 40, 4, workload.DefaultIntraRack, rng)
	sim, err := newDaySim(d, base, model.NewSFC(3), workload.PaperBurst(), 1e4, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestDaySimShape(t *testing.T) {
	sim := newTestSim(t)
	if len(sim.hours) != workload.PaperDiurnal().Horizon() {
		t.Fatalf("hours = %d", len(sim.hours))
	}
	if err := sim.p0.Validate(sim.d, sim.sfc); err != nil {
		t.Fatalf("initial placement invalid: %v", err)
	}
	// Hosts never change across the schedule; only rates do.
	for h, w := range sim.hours {
		for i := range w {
			if w[i].Src != sim.hours[0][i].Src || w[i].Dst != sim.hours[0][i].Dst {
				t.Fatalf("hour %d flow %d endpoints moved", h, i)
			}
		}
	}
}

func TestDaySimNoMigrationMatchesManual(t *testing.T) {
	sim := newTestSim(t)
	res := sim.runNoMigration()
	if len(res.Hourly) != len(sim.hours) {
		t.Fatalf("hourly length %d", len(res.Hourly))
	}
	sum := 0.0
	for h := range sim.hours {
		want := sim.d.CommCost(sim.hours[h], sim.p0)
		if math.Abs(res.Hourly[h]-want) > 1e-9 {
			t.Fatalf("hour %d cost %v != %v", h, res.Hourly[h], want)
		}
		if res.Moves[h] != 0 {
			t.Fatalf("NoMigration moved at hour %d", h)
		}
		sum += want
	}
	if math.Abs(res.DailyTotal-sum) > 1e-6 {
		t.Fatalf("daily total %v != %v", res.DailyTotal, sum)
	}
}

func TestDaySimVNFStrategyBeatsFrozen(t *testing.T) {
	sim := newTestSim(t)
	mp, err := sim.runVNFStrategy(migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	nm := sim.runNoMigration()
	if mp.DailyTotal > nm.DailyTotal+1e-6 {
		t.Fatalf("mPareto day %v worse than frozen %v", mp.DailyTotal, nm.DailyTotal)
	}
	if mp.Name != "mPareto" || nm.Name != "NoMigration" {
		t.Fatalf("names: %q %q", mp.Name, nm.Name)
	}
}

func TestDaySimVMStrategyRuns(t *testing.T) {
	sim := newTestSim(t)
	res, err := sim.runVMStrategy(vmmig.PLAN{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hourly) != len(sim.hours) || len(res.Moves) != len(sim.hours) {
		t.Fatalf("trace lengths: %d %d", len(res.Hourly), len(res.Moves))
	}
	for h, c := range res.Hourly {
		if c < 0 || math.IsNaN(c) {
			t.Fatalf("hour %d cost %v", h, c)
		}
	}
}

func TestDaySimHourVolumeScalesRates(t *testing.T) {
	cfg := QuickConfig()
	d := unweightedFatTree(cfg.KLarge)
	rng1 := cfg.runSeed("hv", 1)
	base := workload.MustPairsClustered(d.Topo, 20, 3, workload.DefaultIntraRack, rng1)
	simA, err := newDaySim(d, base, model.NewSFC(3), workload.PaperBurst(), 1e4, 1, cfg.runSeed("hv2", 1))
	if err != nil {
		t.Fatal(err)
	}
	simB, err := newDaySim(d, base, model.NewSFC(3), workload.PaperBurst(), 1e4, 5, cfg.runSeed("hv2", 1))
	if err != nil {
		t.Fatal(err)
	}
	for h := range simA.hours {
		for i := range simA.hours[h] {
			if math.Abs(simB.hours[h][i].Rate-5*simA.hours[h][i].Rate) > 1e-9 {
				t.Fatalf("hour %d flow %d: %v != 5 × %v", h, i, simB.hours[h][i].Rate, simA.hours[h][i].Rate)
			}
		}
	}
}

func TestDaySimRejectsSilentDay(t *testing.T) {
	cfg := QuickConfig()
	d := unweightedFatTree(cfg.KLarge)
	rng := cfg.runSeed("silent", 1)
	base := model.Workload{{Src: d.Topo.Hosts[0], Dst: d.Topo.Hosts[1], Rate: 0}}
	// Zero-amplitude flows: BurstModel amplitudes are drawn internally,
	// so force silence via an all-zero diurnal envelope.
	burst := workload.PaperBurst()
	burst.Diurnal.TauMin = 0
	burst.Diurnal.N = 2 // tiny day; scale(1)=0.. still nonzero at h=1
	// A truly silent day needs every scale factor zero, which Eq. 9 only
	// gives outside the working day — so instead verify the constructor
	// succeeds on a normal day and the first-hour detection works.
	sim, err := newDaySim(d, base, model.NewSFC(2), burst, 1, 1, rng)
	if err != nil {
		t.Fatalf("normal day rejected: %v", err)
	}
	if sim.p0 == nil {
		t.Fatal("no initial placement")
	}
}
