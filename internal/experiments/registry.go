package experiments

import (
	"fmt"
	"sort"
)

// Runner produces the table(s) of one experiment.
type Runner func(cfg Config) ([]*Table, error)

// wrap1 adapts a single-table experiment to Runner.
func wrap1(f func(Config) (*Table, error)) Runner {
	return func(cfg Config) ([]*Table, error) {
		t, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"example1": wrap1(Example1),
	"fig6b":    wrap1(Fig6b),
	"fig7":     wrap1(Fig7),
	"fig8":     wrap1(Fig8),
	"fig9a":    wrap1(Fig9a),
	"fig9b":    wrap1(Fig9b),
	"fig10":    wrap1(Fig10),
	"fig11ab": func(cfg Config) ([]*Table, error) {
		a, b, err := Fig11ab(cfg)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	},
	"fig11c":   wrap1(Fig11c),
	"fig11d":   wrap1(Fig11d),
	"linkload": wrap1(LinkLoad),
	"musweep":  wrap1(MuSweep),
}

// IDs lists the available experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) ([]*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (available: %v)", id, IDs())
	}
	return r(cfg)
}
