package experiments

import (
	"fmt"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/parallel"
	"vnfopt/internal/stats"
	"vnfopt/internal/workload"
)

// MuSweep is an extension experiment: sensitivity of TOM to the migration
// coefficient μ across four orders of magnitude. The paper samples only
// μ ∈ {10⁴, 10⁵} (Fig. 11(c)); the sweep exposes the full trade-off — at
// small μ mPareto chases every shift (many moves, lowest communication
// cost), while past a knee migration never amortizes and mPareto
// degenerates to NoMigration.
func MuSweep(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KLarge)
	burst := workload.PaperBurst()
	n := cfg.VNFs
	mus := []float64{1e2, 1e3, 1e4, 1e5, 1e6}

	t := &Table{
		Title: fmt.Sprintf("μ sweep (extension) — mPareto daily cost and moves vs migration coefficient, k=%d, l=%d, n=%d (%d runs)",
			cfg.KLarge, cfg.FlowsLarge, n, cfg.Runs),
		Columns: []string{"μ", "mPareto daily cost", "VNF moves/day", "NoMigration daily cost"},
	}
	for _, mu := range mus {
		mu := mu
		type out struct {
			cost, moves, frozen float64
		}
		perRun, err := parallel.Map(cfg.Runs, 0, func(run int) (out, error) {
			rng := cfg.runSeed("musweep", run*7+int(mu/100)%13)
			base := workload.MustPairsClustered(d.Topo, cfg.FlowsLarge, cfg.TenantRacks, workload.DefaultIntraRack, rng)
			sim, err := newDaySim(d, base, model.NewSFC(n), burst, mu, cfg.HourVolume, rng)
			if err != nil {
				return out{}, err
			}
			r, err := sim.runVNFStrategy(migration.MPareto{})
			if err != nil {
				return out{}, err
			}
			moves := 0
			for _, m := range r.Moves {
				moves += m
			}
			return out{
				cost:   r.DailyTotal,
				moves:  float64(moves),
				frozen: sim.runNoMigration().DailyTotal,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var cost, moves, frozen []float64
		for _, o := range perRun {
			cost = append(cost, o.cost)
			moves = append(moves, o.moves)
			frozen = append(frozen, o.frozen)
		}
		t.AddRow(
			fmt.Sprintf("%.0g", mu),
			fmtSummary(stats.Summarize(cost)),
			fmtSummary(stats.Summarize(moves)),
			fmtSummary(stats.Summarize(frozen)),
		)
	}
	t.AddNote("hourly traffic volume = %g rate units (see Config.HourVolume)", cfg.HourVolume)
	return t, nil
}
