package experiments

import (
	"fmt"
	"math/rand"

	"vnfopt/internal/model"
	"vnfopt/internal/parallel"
	"vnfopt/internal/placement"
	"vnfopt/internal/stats"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

// placementSolvers returns the Fig. 9/10 algorithm roster in the paper's
// order: Optimal, DP (Algorithm 3), Greedy [34], Steering [55].
func placementSolvers(cfg Config) []placement.Solver {
	return []placement.Solver{
		placement.Optimal{NodeBudget: cfg.OptBudget, Seed: placement.DP{}},
		placement.DP{},
		placement.Greedy{},
		placement.Steering{},
	}
}

// comparePlacement runs all roster solvers on cfg.Runs random workloads
// (runs fan out across cores; per-run seeds keep results identical to a
// sequential sweep) and returns one table row of cost summaries plus the
// number of budget-limited Optimal points.
func comparePlacement(cfg Config, d *model.PPDC, mkWorkload func(r int) model.Workload, n int, figure string, point int) ([]string, int, error) {
	solvers := placementSolvers(cfg)
	sfc := model.NewSFC(n)
	type runResult struct {
		costs    []float64
		unproven int
	}
	results, err := parallel.Map(cfg.Runs, 0, func(r int) (runResult, error) {
		w := mkWorkload(r)
		res := runResult{costs: make([]float64, len(solvers))}
		for si, s := range solvers {
			var c float64
			var err error
			if opt, ok := s.(placement.Optimal); ok {
				var proven bool
				_, c, proven, err = opt.PlaceProven(d, w, sfc)
				if !proven {
					res.unproven++
				}
			} else {
				_, c, err = s.Place(d, w, sfc)
			}
			if err != nil {
				return runResult{}, fmt.Errorf("%s %s point %d: %w", figure, s.Name(), point, err)
			}
			res.costs[si] = c
		}
		return res, nil
	})
	if err != nil {
		return nil, 0, err
	}
	samples := make([][]float64, len(solvers))
	unproven := 0
	for _, res := range results {
		unproven += res.unproven
		for si, c := range res.costs {
			samples[si] = append(samples[si], c)
		}
	}
	row := make([]string, 0, len(solvers))
	for _, s := range samples {
		row = append(row, fmtSummary(stats.Summarize(s)))
	}
	return row, unproven, nil
}

// Fig9a reproduces Fig. 9(a): TOP total communication cost vs the number
// of VM pairs l on an unweighted k=KSmall fat tree, n fixed.
func Fig9a(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KSmall)
	n := cfg.VNFs
	ls := []int{cfg.FlowsSmall / 4, cfg.FlowsSmall / 2, cfg.FlowsSmall, cfg.FlowsSmall * 2, cfg.FlowsSmall * 4}
	t := &Table{
		Title: fmt.Sprintf("Fig. 9(a) — TOP algorithms vs number of VM pairs l, k=%d unweighted, n=%d (mean ± 95%% CI over %d runs)",
			cfg.KSmall, n, cfg.Runs),
		Columns: []string{"l", "Optimal", "DP", "Greedy", "Steering"},
	}
	totalUnproven := 0
	for _, l := range ls {
		row, unproven, err := comparePlacement(cfg, d, func(r int) model.Workload {
			rng := cfg.runSeed("fig9a", r*1000+l)
			return workload.MustPairs(d.Topo, l, workload.DefaultIntraRack, rng)
		}, n, "fig9a", l)
		if err != nil {
			return nil, err
		}
		totalUnproven += unproven
		t.AddRow(append([]string{fmt.Sprintf("%d", l)}, row...)...)
	}
	if totalUnproven > 0 {
		t.AddNote("%d Optimal points hit the %d-node budget (anytime incumbent reported)", totalUnproven, cfg.OptBudget)
	}
	return t, nil
}

// Fig9b reproduces Fig. 9(b): TOP cost vs the number of VNFs n, l fixed.
func Fig9b(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KSmall)
	l := cfg.FlowsSmall
	maxN := 8
	if cfg.KSmall < 6 {
		maxN = 6
	}
	t := &Table{
		Title: fmt.Sprintf("Fig. 9(b) — TOP algorithms vs number of VNFs n, k=%d unweighted, l=%d (mean ± 95%% CI over %d runs)",
			cfg.KSmall, l, cfg.Runs),
		Columns: []string{"n", "Optimal", "DP", "Greedy", "Steering"},
	}
	totalUnproven := 0
	for n := 3; n <= maxN; n++ {
		row, unproven, err := comparePlacement(cfg, d, func(r int) model.Workload {
			rng := cfg.runSeed("fig9b", r*1000+n)
			return workload.MustPairs(d.Topo, l, workload.DefaultIntraRack, rng)
		}, n, "fig9b", n)
		if err != nil {
			return nil, err
		}
		totalUnproven += unproven
		t.AddRow(append([]string{fmt.Sprintf("%d", n)}, row...)...)
	}
	if totalUnproven > 0 {
		t.AddNote("%d Optimal points hit the %d-node budget (anytime incumbent reported)", totalUnproven, cfg.OptBudget)
	}
	return t, nil
}

// Fig10 reproduces Fig. 10: the same comparison on *weighted* PPDCs whose
// link delays follow the Greedy [34] setting (uniform, mean 1.5 ms,
// half-width 0.5 ms). Headline claims: DP within 6–12% of Optimal, and 56%
// to 64% cheaper than Steering/Greedy.
func Fig10(cfg Config) (*Table, error) {
	l := cfg.FlowsSmall
	maxN := 8
	if cfg.KSmall < 6 {
		maxN = 6
	}
	t := &Table{
		Title: fmt.Sprintf("Fig. 10 — TOP algorithms with link delays, k=%d weighted, l=%d (mean ± 95%% CI over %d runs)",
			cfg.KSmall, l, cfg.Runs),
		Columns: []string{"n", "Optimal", "DP", "Greedy", "Steering"},
	}
	totalUnproven := 0
	for n := 3; n <= maxN; n++ {
		// The weighted topology is itself random: rebuild per run.
		ppdcs := make([]*model.PPDC, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_000 + int64(r)*1000 + int64(n)))
			ppdcs[r] = model.MustNew(topology.MustFatTree(cfg.KSmall, topology.PaperDelay(rng)), model.Options{})
		}
		solvers := placementSolvers(cfg)
		samples := make([][]float64, len(solvers))
		sfc := model.NewSFC(n)
		for r := 0; r < cfg.Runs; r++ {
			d := ppdcs[r]
			rng := cfg.runSeed("fig10", r*1000+n)
			w := workload.MustPairs(d.Topo, l, workload.DefaultIntraRack, rng)
			for si, s := range solvers {
				var c float64
				var err error
				if opt, ok := s.(placement.Optimal); ok {
					var proven bool
					_, c, proven, err = opt.PlaceProven(d, w, sfc)
					if !proven {
						totalUnproven++
					}
				} else {
					_, c, err = s.Place(d, w, sfc)
				}
				if err != nil {
					return nil, err
				}
				samples[si] = append(samples[si], c)
			}
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, s := range samples {
			row = append(row, fmtSummary(stats.Summarize(s)))
		}
		t.AddRow(row...)
	}
	if totalUnproven > 0 {
		t.AddNote("%d Optimal points hit the %d-node budget (anytime incumbent reported)", totalUnproven, cfg.OptBudget)
	}
	return t, nil
}
