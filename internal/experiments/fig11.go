package experiments

import (
	"fmt"
	"math/rand"

	"vnfopt/internal/parallel"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/stats"
	"vnfopt/internal/vmmig"
	"vnfopt/internal/workload"
)

// dayStrategies builds the Fig. 11(a,b) roster: mPareto and the Optimal
// surrogate adapt VNFs; PLAN and MCF adapt VMs. The host capacity for the
// VM baselines defaults to twice the average occupancy (see
// defaultHostCapacity).
func dayStrategies(cfg Config, d *model.PPDC, w model.Workload) (vnf []migration.Migrator, vm []vmmig.VMMigrator) {
	capHost := cfg.HostCapacity
	if capHost <= 0 {
		capHost = defaultHostCapacity(d, w)
	}
	vnf = []migration.Migrator{
		migration.MPareto{},
		migration.OptimalSurrogate(),
	}
	vm = []vmmig.VMMigrator{
		vmmig.PLAN{Opts: vmmig.Options{HostCapacity: capHost}},
		vmmig.MCF{Opts: vmmig.Options{HostCapacity: capHost}},
	}
	return vnf, vm
}

// Fig11ab reproduces Fig. 11(a) and (b): the hour-by-hour total cost and
// migration counts of mPareto, PLAN, MCF, and Optimal over the diurnal day
// on a k=KLarge fat tree with μ=cfg.Mu. One simulated day per run; cells
// are means over runs.
func Fig11ab(cfg Config) (*Table, *Table, error) {
	d := unweightedFatTree(cfg.KLarge)
	burst := workload.PaperBurst()
	n := cfg.VNFs

	// hourly[strategy][hour] collects per-run costs; moves likewise.
	var names []string
	var hourly, moves map[string][][]float64
	hourly = map[string][][]float64{}
	moves = map[string][][]float64{}
	record := func(r DayResult) {
		if _, ok := hourly[r.Name]; !ok {
			names = append(names, r.Name)
			hourly[r.Name] = make([][]float64, len(r.Hourly))
			moves[r.Name] = make([][]float64, len(r.Hourly))
		}
		for h := range r.Hourly {
			hourly[r.Name][h] = append(hourly[r.Name][h], r.Hourly[h])
			moves[r.Name][h] = append(moves[r.Name][h], float64(r.Moves[h]))
		}
	}

	perRun, err := parallel.Map(cfg.Runs, 0, func(run int) ([]DayResult, error) {
		rng := cfg.runSeed("fig11ab", run)
		base := workload.MustPairsClustered(d.Topo, cfg.FlowsLarge, cfg.TenantRacks, workload.DefaultIntraRack, rng)
		sim, err := newDaySim(d, base, model.NewSFC(n), burst, cfg.Mu, cfg.HourVolume, rng)
		if err != nil {
			return nil, err
		}
		vnfMigs, vmMigs := dayStrategies(cfg, d, base)
		var out []DayResult
		for _, mig := range vnfMigs {
			r, err := sim.runVNFStrategy(mig)
			if err != nil {
				return nil, fmt.Errorf("fig11a %s: %w", mig.Name(), err)
			}
			out = append(out, r)
		}
		for _, mig := range vmMigs {
			r, err := sim.runVMStrategy(mig)
			if err != nil {
				return nil, fmt.Errorf("fig11a %s: %w", mig.Name(), err)
			}
			out = append(out, r)
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, results := range perRun {
		for _, r := range results {
			record(r)
		}
	}

	costT := &Table{
		Title: fmt.Sprintf("Fig. 11(a) — hourly total cost over the diurnal day, k=%d, l=%d, n=%d, μ=%.0g (mean over %d runs)",
			cfg.KLarge, cfg.FlowsLarge, n, cfg.Mu, cfg.Runs),
		Columns: append([]string{"hour"}, names...),
	}
	moveT := &Table{
		Title: fmt.Sprintf("Fig. 11(b) — migrations per hour (VNFs for TOM, VMs for PLAN/MCF), k=%d, μ=%.0g",
			cfg.KLarge, cfg.Mu),
		Columns: append([]string{"hour"}, names...),
	}
	horizon := len(hourly[names[0]])
	for h := 0; h < horizon; h++ {
		costRow := []string{fmt.Sprintf("%d", h+1)}
		moveRow := []string{fmt.Sprintf("%d", h+1)}
		for _, name := range names {
			costRow = append(costRow, fmt.Sprintf("%.0f", stats.Mean(hourly[name][h])))
			moveRow = append(moveRow, fmt.Sprintf("%.1f", stats.Mean(moves[name][h])))
		}
		costT.AddRow(costRow...)
		moveT.AddRow(moveRow...)
	}
	// Daily totals as the last row.
	costTotals := []string{"total"}
	moveTotals := []string{"total"}
	for _, name := range names {
		var ct, mv float64
		for h := 0; h < horizon; h++ {
			ct += stats.Mean(hourly[name][h])
			mv += stats.Mean(moves[name][h])
		}
		costTotals = append(costTotals, fmt.Sprintf("%.0f", ct))
		moveTotals = append(moveTotals, fmt.Sprintf("%.1f", mv))
	}
	costT.AddRow(costTotals...)
	moveT.AddRow(moveTotals...)
	costT.AddNote("Optimal* is the Algorithm-6 surrogate (refined LayeredDP ∧ refined mPareto); see DESIGN.md substitution #2")
	return costT, moveT, nil
}

// Fig11c reproduces Fig. 11(c): total daily cost vs the number of VM pairs
// l (exponential scale, base 2) for mPareto and Optimal at μ=10⁴ and 10⁵,
// with NoMigration as the reference.
func Fig11c(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KLarge)
	burst := workload.PaperBurst()
	n := cfg.VNFs
	ls := []int{cfg.FlowsLarge / 4, cfg.FlowsLarge / 2, cfg.FlowsLarge, cfg.FlowsLarge * 2}
	mus := []float64{1e4, 1e5}

	t := &Table{
		Title: fmt.Sprintf("Fig. 11(c) — total daily cost vs l (exponential, base 2), k=%d, n=%d (mean ± 95%% CI over %d runs)",
			cfg.KLarge, n, cfg.Runs),
		Columns: []string{"l",
			"mPareto μ=1e4", "Optimal* μ=1e4",
			"mPareto μ=1e5", "Optimal* μ=1e5",
			"NoMigration"},
	}
	for _, l := range ls {
		l := l
		type runCells map[string]float64
		perRun, err := parallel.Map(cfg.Runs, 0, func(run int) (runCells, error) {
			rng := cfg.runSeed("fig11c", run*10_000+l)
			base := workload.MustPairsClustered(d.Topo, l, cfg.TenantRacks, workload.DefaultIntraRack, rng)
			out := runCells{}
			for _, mu := range mus {
				sim, err := newDaySim(d, base, model.NewSFC(n), burst, mu, cfg.HourVolume, rand.New(rand.NewSource(cfg.Seed+int64(run)*31+int64(l))))
				if err != nil {
					return nil, err
				}
				for _, mig := range []migration.Migrator{migration.MPareto{}, migration.OptimalSurrogate()} {
					r, err := sim.runVNFStrategy(mig)
					if err != nil {
						return nil, err
					}
					out[fmt.Sprintf("%s μ=%.0g", displayName(mig.Name()), mu)] = r.DailyTotal
				}
				if mu == mus[0] {
					out["NoMigration"] = sim.runNoMigration().DailyTotal
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		cells := map[string][]float64{}
		for _, rc := range perRun {
			for k, v := range rc {
				cells[k] = append(cells[k], v)
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", l),
			fmtSummary(stats.Summarize(cells["mPareto μ=1e+04"])),
			fmtSummary(stats.Summarize(cells["Optimal* μ=1e+04"])),
			fmtSummary(stats.Summarize(cells["mPareto μ=1e+05"])),
			fmtSummary(stats.Summarize(cells["Optimal* μ=1e+05"])),
			fmtSummary(stats.Summarize(cells["NoMigration"])),
		)
	}
	return t, nil
}

func displayName(name string) string { return name }

// Fig11d reproduces Fig. 11(d): total daily cost vs the number of VNFs n
// for mPareto against NoMigration, quantifying the headline "VNF migration
// reduces the total cost of VM flows by up to 73%".
func Fig11d(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KLarge)
	burst := workload.PaperBurst()
	ns := []int{3, 5, 7, 9, 11, 13}
	if len(d.Topo.Switches) < 26 {
		ns = []int{2, 3, 4, 5}
	}
	t := &Table{
		Title: fmt.Sprintf("Fig. 11(d) — total daily cost vs n, k=%d, l=%d, μ=%.0g (mean ± 95%% CI over %d runs)",
			cfg.KLarge, cfg.FlowsLarge, cfg.Mu, cfg.Runs),
		Columns: []string{"n", "mPareto", "NoMigration", "reduction"},
	}
	for _, n := range ns {
		n := n
		type pair struct{ mp, nm float64 }
		perRun, err := parallel.Map(cfg.Runs, 0, func(run int) (pair, error) {
			rng := cfg.runSeed("fig11d", run*100+n)
			base := workload.MustPairsClustered(d.Topo, cfg.FlowsLarge, cfg.TenantRacks, workload.DefaultIntraRack, rng)
			sim, err := newDaySim(d, base, model.NewSFC(n), burst, cfg.Mu, cfg.HourVolume, rng)
			if err != nil {
				return pair{}, err
			}
			r, err := sim.runVNFStrategy(migration.MPareto{})
			if err != nil {
				return pair{}, err
			}
			return pair{mp: r.DailyTotal, nm: sim.runNoMigration().DailyTotal}, nil
		})
		if err != nil {
			return nil, err
		}
		var mp, nm []float64
		for _, pr := range perRun {
			mp = append(mp, pr.mp)
			nm = append(nm, pr.nm)
		}
		mpS, nmS := stats.Summarize(mp), stats.Summarize(nm)
		red := 0.0
		if nmS.Mean > 0 {
			red = (nmS.Mean - mpS.Mean) / nmS.Mean
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmtSummary(mpS),
			fmtSummary(nmS),
			fmt.Sprintf("%.1f%%", 100*red),
		)
	}
	return t, nil
}
