package experiments

import (
	"fmt"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/sim"
	"vnfopt/internal/stats"
	"vnfopt/internal/workload"
)

// LinkLoad is an extension experiment (not a paper figure): it routes the
// policy-preserving traffic onto actual links over the simulated day and
// compares the per-link load profile of mPareto against NoMigration —
// the bandwidth view behind the paper's motivation that SFC traffic
// "consumes higher bandwidth" and its provisioning assumption of ~40%
// link utilization.
func LinkLoad(cfg Config) (*Table, error) {
	d := unweightedFatTree(cfg.KLarge)
	burst := workload.PaperBurst()
	n := cfg.VNFs

	var mpPeak, nmPeak, mpTotal, nmTotal []float64
	for run := 0; run < cfg.Runs; run++ {
		rng := cfg.runSeed("linkload", run)
		base := workload.MustPairsClustered(d.Topo, cfg.FlowsLarge, cfg.TenantRacks, workload.DefaultIntraRack, rng)
		sched, err := burst.Schedule(d.Topo, base, rng)
		if err != nil {
			return nil, err
		}
		s, err := sim.New(sim.Config{
			PPDC:       d,
			SFC:        model.NewSFC(n),
			Base:       base,
			Schedule:   sched,
			Mu:         cfg.Mu,
			HourVolume: cfg.HourVolume,
			TrackLinks: true,
		})
		if err != nil {
			return nil, err
		}
		mp, err := s.RunVNF(migration.MPareto{})
		if err != nil {
			return nil, err
		}
		nm, err := s.RunFrozen()
		if err != nil {
			return nil, err
		}
		mpPeak = append(mpPeak, mp.PeakLink)
		nmPeak = append(nmPeak, nm.PeakLink)
		mpTotal = append(mpTotal, mp.Total)
		nmTotal = append(nmTotal, nm.Total)
	}

	t := &Table{
		Title: fmt.Sprintf("Link loads (extension) — routed traffic over the diurnal day, k=%d, l=%d, n=%d, μ=%.0g (%d runs)",
			cfg.KLarge, cfg.FlowsLarge, n, cfg.Mu, cfg.Runs),
		Columns: []string{"metric", "mPareto", "NoMigration"},
	}
	t.AddRow("peak link load",
		fmtSummary(stats.Summarize(mpPeak)),
		fmtSummary(stats.Summarize(nmPeak)))
	t.AddRow("total traffic (Σ link·load)",
		fmtSummary(stats.Summarize(mpTotal)),
		fmtSummary(stats.Summarize(nmTotal)))
	t.AddNote("peak link load includes the one-shot migration transfers (μ per link on each VNF's path)")
	return t, nil
}
