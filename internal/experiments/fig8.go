package experiments

import (
	"fmt"

	"vnfopt/internal/workload"
)

// Fig8 reproduces the paper's Fig. 8: the daily VM traffic-rate pattern of
// Eq. 9 (N = 12 working hours, τ_min = 0.2) for the two coasts — east
// coast following τ_h directly and west coast shifted 3 hours later.
func Fig8(cfg Config) (*Table, error) {
	m := workload.PaperDiurnal()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig. 8 — daily traffic scale factor τ_h (Eq. 9, N=12, τ_min=0.2, 3 h coast shift)",
		Columns: []string{"hour", "east coast τ_h", "west coast τ_{h-3}"},
	}
	for h := 0; h <= m.Horizon(); h++ {
		t.AddRow(
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.3f", m.FlowScale(0, h)),
			fmt.Sprintf("%.3f", m.FlowScale(1, h)),
		)
	}
	return t, nil
}
