package experiments

import (
	"math/rand"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/sim"
	"vnfopt/internal/vmmig"
	"vnfopt/internal/workload"
)

// DayResult is one strategy's trace over a simulated day — the figure
// tables' view of a sim.Trace.
type DayResult struct {
	// Name is the strategy label.
	Name string
	// Hourly is the total cost incurred each hour (migration traffic
	// performed that hour plus the hour's communication cost).
	Hourly []float64
	// Moves is the number of migrations performed each hour (VNFs for
	// TOM strategies, VMs for the PLAN/MCF baselines, 0 for
	// NoMigration).
	Moves []int
	// DailyTotal is the sum of Hourly.
	DailyTotal float64
}

// daySim wraps the shared simulator (internal/sim) with the experiment
// tables' result shape.
type daySim struct {
	s *sim.Simulator
	// exposed for tests and figure code
	d     *model.PPDC
	sfc   model.SFC
	hours []model.Workload
	p0    model.Placement
}

// newDaySim builds the scenario: an hourly rate schedule from the paper's
// burst model (see workload.BurstModel), then the initial placement with
// Algorithm 3 at the first hour with non-zero traffic (the TOP stage of
// the paper's framework; TOM runs hourly after).
func newDaySim(d *model.PPDC, base model.Workload, sfc model.SFC, burst workload.BurstModel, mu, hourVolume float64, rng *rand.Rand) (*daySim, error) {
	sched, err := burst.Schedule(d.Topo, base, rng)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.Config{
		PPDC:       d,
		SFC:        sfc,
		Base:       base,
		Schedule:   sched,
		Mu:         mu,
		HourVolume: hourVolume,
	})
	if err != nil {
		return nil, err
	}
	ds := &daySim{s: s, d: d, sfc: sfc, p0: s.Initial()}
	for h := 1; h <= s.Hours(); h++ {
		ds.hours = append(ds.hours, s.HourWorkload(h))
	}
	return ds, nil
}

// fromTrace converts a simulator trace into the tables' result shape.
func fromTrace(tr *sim.Trace) DayResult {
	res := DayResult{Name: tr.Strategy, DailyTotal: tr.Total}
	for _, st := range tr.Steps {
		res.Hourly = append(res.Hourly, st.Cost)
		res.Moves = append(res.Moves, st.Moves)
	}
	return res
}

// runVNFStrategy simulates the day with a TOM migrator adapting the VNF
// placement every hour.
func (ds *daySim) runVNFStrategy(mig migration.Migrator) (DayResult, error) {
	tr, err := ds.s.RunVNF(mig)
	if err != nil {
		return DayResult{}, err
	}
	return fromTrace(tr), nil
}

// runVMStrategy simulates the day with a VM-migration baseline: the VNFs
// stay at the initial placement while VMs chase the traffic.
func (ds *daySim) runVMStrategy(mig vmmig.VMMigrator) (DayResult, error) {
	tr, err := ds.s.RunVM(mig)
	if err != nil {
		return DayResult{}, err
	}
	return fromTrace(tr), nil
}

// runNoMigration simulates the day with the placement frozen at p0.
func (ds *daySim) runNoMigration() DayResult {
	tr, err := ds.s.RunFrozen()
	if err != nil {
		// RunFrozen cannot fail without link tracking; keep the old
		// infallible signature for the figure code.
		panic(err)
	}
	return fromTrace(tr)
}

// defaultHostCapacity returns the PLAN/MCF host capacity for a workload:
// twice the average occupancy, but at least the current maximum so initial
// states are always feasible.
func defaultHostCapacity(d *model.PPDC, w model.Workload) int {
	occ := map[int]int{}
	maxOcc := 0
	for _, f := range w {
		occ[f.Src]++
		occ[f.Dst]++
		if occ[f.Src] > maxOcc {
			maxOcc = occ[f.Src]
		}
		if occ[f.Dst] > maxOcc {
			maxOcc = occ[f.Dst]
		}
	}
	avg := 2 * len(w) / len(d.Topo.Hosts)
	c := 2 * (avg + 1)
	if c < maxOcc {
		c = maxOcc
	}
	return c
}
