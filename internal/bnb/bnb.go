// Package bnb is the shared branch-and-bound kernel behind every exact
// search in the library: placement.Optimal (Algorithm 4),
// migration.Exhaustive (Algorithm 6), and the stroll exhaustive solver
// all enumerate ordered tuples of candidates with an admissible lower
// bound, an optional node budget, and cooperative cancellation. The
// kernel factors that recursion out once, allocation-free on the hot
// path, and adds an optional parallel mode that fans the first one to
// two tree levels out across goroutines with a process-shared incumbent
// — bit-identical to the sequential search at any worker count.
//
// # Search shape
//
// A Spec describes choosing one candidate (a dense id in [0, K)) per
// slot 0..N-1, where no candidate may appear more than Cap times
// (Cap <= 0 = unlimited). Branches accumulate StepCost, are pruned
// against SeedCost (or the best leaf so far) using StepCost+TailBound,
// and leaves close with LeafCost. Children are expanded cheapest
// step first (ties in candidate-id order), which both tightens the
// incumbent early and fixes the deterministic visit order the parallel
// mode reproduces.
//
// # Determinism of the parallel mode
//
// Sequential tie-breaking is "strict improvement only": a leaf replaces
// the incumbent iff its cost is strictly lower, so among equal-cost
// optima the first in depth-first visit order wins. The parallel mode
// preserves exactly that winner:
//
//   - subtree tasks are enumerated in the sequential visit order and
//     carry that ordinal;
//   - the shared bound only prunes a task's branches when the bound is
//     strictly below them (lb > bound required to prune against the
//     global incumbent), so a subtree containing an equal-cost optimum
//     still finds its own first such leaf;
//   - each task proposes its local strict-improvement winner, and the
//     reducer keeps the proposal with (cost, task ordinal) lexicographically
//     smallest — i.e. the same leaf the sequential scan would have kept.
//
// Costs are accumulated in the same association order as the sequential
// recursion (((0 + step_0) + step_1) + ...), so equal costs are equal
// bitwise and the comparison above is exact, not tolerance-based.
//
// Under cancellation or budget exhaustion the parallel incumbent may
// legitimately differ from the sequential one (workers explore subtrees
// the sequential search would not have reached yet); both still report
// proven=false and a valid incumbent. Bit-identity is guaranteed for
// searches that run to completion.
package bnb

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"vnfopt/internal/parallel"
)

const (
	// ctxCheckMask throttles context polls to one ctx.Err() call per
	// ctxCheckMask+1 node expansions per worker, matching the historical
	// cadence of the solvers this kernel replaced (first poll after 1024
	// expansions; the pre-search poll is the caller's).
	ctxCheckMask = 1023
	// budgetChunk is how many expansions a parallel worker reserves from
	// the shared NodeBudget counter at a time. Chunking keeps the shared
	// atomic off the per-node hot path; unused reservations are returned
	// when the worker drains, so Result.Expansions stays exact.
	budgetChunk = 1024
	// fanoutFactor controls task granularity: when the first level yields
	// fewer than fanoutFactor x workers subtrees, the fan-out splits the
	// first two levels instead, so slow subtrees cannot serialize the
	// search behind one goroutine.
	fanoutFactor = 4
)

// Spec defines one ordered-tuple branch-and-bound search. All closures
// must be safe for concurrent calls when Workers > 1; they are pure
// functions of precomputed tables in every solver in this module.
type Spec struct {
	// N is the tuple length (slots to fill); must be >= 1.
	N int
	// K is the candidate-universe size; candidates are dense ids [0, K).
	K int
	// Cap bounds how many slots one candidate may occupy; <= 0 = unlimited.
	Cap int
	// StepCost is the cost of extending a partial tuple ending in
	// candidate last (or the root, at depth 0 — last is then undefined)
	// with candidate v at slot depth.
	StepCost func(last, v, depth int) float64
	// TailBound is an admissible lower bound on the cost still to pay
	// after placing v at slot depth (excluding StepCost(last, v, depth)
	// itself, including the leaf closing cost).
	TailBound func(v, depth int) float64
	// LeafCost closes a complete tuple ending in candidate last.
	LeafCost func(last int) float64
	// SeedCost is the incumbent cost the search must strictly beat;
	// +Inf when the caller has no seed.
	SeedCost float64
	// NodeBudget caps node expansions (0 = unlimited). The sequential
	// path stops exactly at the budget; the parallel path reserves the
	// budget in budgetChunk batches, so it may overshoot by at most
	// workers x budgetChunk expansions. Either way Proven is false when
	// the budget interrupted the search.
	NodeBudget int
	// Workers fans the search out: 0 or 1 runs the sequential oracle,
	// > 1 uses that many goroutines, < 0 uses GOMAXPROCS.
	Workers int
}

// Result is the outcome of a Search.
type Result struct {
	// Cost is the best complete-tuple cost found, or SeedCost when no
	// tuple beat the seed (Path is then nil).
	Cost float64
	// Path is the best tuple (candidate ids, length N), nil when the
	// seed was never beaten.
	Path []int
	// Proven reports whether the search ran to completion (no budget
	// exhaustion, no cancellation): the result is then the global
	// optimum over all feasible tuples and the seed.
	Proven bool
	// Expansions is the number of node expansions performed.
	Expansions int64
}

// Search runs the branch-and-bound described by s. On cancellation it
// returns the incumbent found so far with Proven == false alongside
// ctx.Err(); callers are expected to have polled ctx once before calling
// (the kernel's first poll happens after 1024 expansions).
func Search(ctx context.Context, s Spec) (Result, error) {
	workers := s.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && s.N >= 1 {
		return searchParallel(ctx, s, workers)
	}
	return searchSequential(ctx, s)
}

// cand is one feasible child: candidate id and its step cost. 16 bytes,
// so per-depth candidate arrays stay cache-dense.
type cand struct {
	v int32
	c float64
}

// scratch is the per-worker reusable state: the capacity vector indexed
// by candidate id, the current path, and one preallocated candidate
// array per depth. After construction the expansion loop performs no
// heap allocation.
type scratch struct {
	spec *Spec
	used []int16
	path []int32
	kids [][]cand
}

func newScratch(s *Spec) *scratch {
	w := &scratch{
		spec: s,
		used: make([]int16, s.K),
		path: make([]int32, s.N),
		kids: make([][]cand, s.N),
	}
	for i := range w.kids {
		w.kids[i] = make([]cand, 0, s.K)
	}
	return w
}

// children fills kids[depth] with the feasible candidates below a node
// ending in last, sorted ascending by step cost. The insertion sort is
// stable, so equal-cost candidates keep ascending id order — the
// deterministic visit order both modes share.
func (w *scratch) children(last int32, depth int) []cand {
	s := w.spec
	kids := w.kids[depth][:0]
	for v := 0; v < s.K; v++ {
		if s.Cap > 0 && int(w.used[v]) >= s.Cap {
			continue
		}
		kids = append(kids, cand{v: int32(v), c: s.StepCost(int(last), v, depth)})
	}
	for i := 1; i < len(kids); i++ {
		k := kids[i]
		j := i - 1
		for j >= 0 && kids[j].c > k.c {
			kids[j+1] = kids[j]
			j--
		}
		kids[j+1] = k
	}
	w.kids[depth] = kids
	return kids
}

func toInts(p []int32) []int {
	out := make([]int, len(p))
	for i, v := range p {
		out[i] = int(v)
	}
	return out
}

// seqSearch is the sequential oracle: the reference implementation the
// parallel mode must match bit for bit on complete searches.
type seqSearch struct {
	*scratch
	ctx       context.Context
	budget    int64
	nodes     int64
	exhausted bool
	cancelled bool
	bestCost  float64
	best      []int32
	found     bool
}

func searchSequential(ctx context.Context, s Spec) (Result, error) {
	q := &seqSearch{
		scratch:  newScratch(&s),
		ctx:      ctx,
		budget:   int64(s.NodeBudget),
		bestCost: s.SeedCost,
		best:     make([]int32, s.N),
	}
	q.rec(-1, 0, 0)
	res := Result{
		Cost:       q.bestCost,
		Proven:     !q.exhausted && !q.cancelled,
		Expansions: q.nodes,
	}
	if q.found {
		res.Path = toInts(q.best)
	}
	if q.cancelled {
		return res, ctx.Err()
	}
	return res, nil
}

func (q *seqSearch) rec(last int32, depth int, cur float64) {
	q.nodes++
	if q.budget > 0 && q.nodes > q.budget {
		q.exhausted = true
		return
	}
	if q.nodes&ctxCheckMask == 0 && q.ctx.Err() != nil {
		q.cancelled = true
		return
	}
	s := q.spec
	if depth == s.N {
		if total := cur + s.LeafCost(int(last)); total < q.bestCost {
			q.bestCost = total
			q.found = true
			copy(q.best, q.path)
		}
		return
	}
	for _, ch := range q.children(last, depth) {
		nc := cur + ch.c
		if nc+s.TailBound(int(ch.v), depth) >= q.bestCost {
			continue
		}
		q.used[ch.v]++
		q.path[depth] = ch.v
		q.rec(ch.v, depth+1, nc)
		q.used[ch.v]--
		if q.exhausted || q.cancelled {
			return
		}
	}
}

// task is one independent subtree of the parallel fan-out: the first
// one or two tuple slots are fixed, and cur carries the prefix cost
// accumulated in the sequential association order.
type task struct {
	a, b int32 // b < 0: only slot 0 is fixed
	curA float64
	cur  float64
}

// sharedIncumbent is the process-shared incumbent of a parallel search.
// The bound is a lock-free monotone minimum used for pruning (reading a
// slightly stale value only weakens pruning, never correctness); the
// mutex-guarded triple is the authoritative (cost, ordinal, path) used
// for the deterministic reduction.
type sharedIncumbent struct {
	bound atomic.Uint64 // Float64bits of the best known cost

	mu       sync.Mutex
	bestCost float64
	bestOrd  int // task ordinal that produced bestCost; -1 = the seed
	bestPath []int32
	found    bool
}

func (s *sharedIncumbent) load() float64 {
	return math.Float64frombits(s.bound.Load())
}

// propose offers a task's strict-improvement leaf. The reducer keeps the
// lexicographically smallest (cost, ordinal): exactly the leaf the
// sequential depth-first scan would have kept, since task ordinals are
// the sequential visit order and the seed carries ordinal -1.
func (s *sharedIncumbent) propose(ord int, cost float64, path []int32) {
	for {
		old := s.bound.Load()
		if math.Float64frombits(old) <= cost {
			break
		}
		if s.bound.CompareAndSwap(old, math.Float64bits(cost)) {
			break
		}
	}
	s.mu.Lock()
	if cost < s.bestCost || (cost == s.bestCost && ord < s.bestOrd) {
		s.bestCost = cost
		s.bestOrd = ord
		s.found = true
		copy(s.bestPath, path)
	}
	s.mu.Unlock()
}

// parShared is the full shared state of one parallel search.
type parShared struct {
	sharedIncumbent
	nodes      atomic.Int64 // reserved-expansion high-water mark, exact after drain
	budget     int64
	stopBudget atomic.Bool
	stopCancel atomic.Bool
}

// parSearch is one worker's view: private scratch plus chunked
// accounting against the shared counters.
type parSearch struct {
	*scratch
	ctx       context.Context
	shared    *parShared
	ord       int
	localBest float64
	nodes     int64 // expansions performed by this worker
	reserved  int64 // expansions reserved from shared.nodes
	exhausted bool
	cancelled bool
}

// countNode accounts one expansion; false means stop (budget or cancel).
func (w *parSearch) countNode() bool {
	w.nodes++
	if w.nodes > w.reserved {
		total := w.shared.nodes.Add(budgetChunk)
		w.reserved += budgetChunk
		if w.shared.budget > 0 && total-budgetChunk >= w.shared.budget {
			w.exhausted = true
			w.shared.stopBudget.Store(true)
			return false
		}
	}
	if w.nodes&ctxCheckMask == 0 {
		if w.shared.stopBudget.Load() {
			w.exhausted = true
			return false
		}
		if w.shared.stopCancel.Load() {
			w.cancelled = true
			return false
		}
		if w.ctx.Err() != nil {
			w.cancelled = true
			w.shared.stopCancel.Store(true)
			return false
		}
	}
	return true
}

func (w *parSearch) rec(last int32, depth int, cur float64) {
	if !w.countNode() {
		return
	}
	s := w.spec
	if depth == s.N {
		if total := cur + s.LeafCost(int(last)); total < w.localBest {
			w.localBest = total
			w.shared.propose(w.ord, total, w.path)
		}
		return
	}
	for _, ch := range w.children(last, depth) {
		nc := cur + ch.c
		lb := nc + s.TailBound(int(ch.v), depth)
		// Strict against the shared bound: an equal-cost optimum in this
		// subtree must still be visited so the ordinal tie-break sees it.
		if lb >= w.localBest || lb > w.shared.load() {
			continue
		}
		w.used[ch.v]++
		w.path[depth] = ch.v
		w.rec(ch.v, depth+1, nc)
		w.used[ch.v]--
		if w.exhausted || w.cancelled {
			return
		}
	}
}

// runTask explores one fixed-prefix subtree under a fresh local
// incumbent (+Inf: local strict improvement is what makes each task
// propose its own first equal-cost optimum regardless of what other
// tasks found first).
func (w *parSearch) runTask(ord int, t task) {
	s := w.spec
	w.ord = ord
	w.localBest = math.Inf(1)
	bound := w.shared.load()
	if t.curA+s.TailBound(int(t.a), 0) > bound {
		return
	}
	last, depth := t.a, 1
	w.used[t.a]++
	w.path[0] = t.a
	if t.b >= 0 {
		if t.cur+s.TailBound(int(t.b), 1) <= bound {
			w.used[t.b]++
			w.path[1] = t.b
			w.rec(t.b, 2, t.cur)
			w.used[t.b]--
		}
	} else {
		w.rec(last, depth, t.cur)
	}
	w.used[t.a]--
}

// drain returns this worker's unused budget reservation so the shared
// counter ends exactly equal to the expansions actually performed.
func (w *parSearch) drain() {
	if w.reserved > w.nodes {
		w.shared.nodes.Add(w.nodes - w.reserved)
	}
}

func searchParallel(ctx context.Context, s Spec, workers int) (Result, error) {
	// Enumerate subtree tasks in the sequential visit order using the
	// same children() expansion the oracle runs — the task list IS the
	// oracle's first one or two levels.
	root := newScratch(&s)
	level0 := root.children(-1, 0)
	var tasks []task
	twoLevel := s.N >= 2 && len(level0) < fanoutFactor*workers
	if twoLevel {
		tasks = make([]task, 0, len(level0)*len(level0))
		for _, a := range level0 {
			root.used[a.v]++
			for _, b := range root.children(a.v, 1) {
				tasks = append(tasks, task{a: a.v, b: b.v, curA: a.c, cur: a.c + b.c})
			}
			root.used[a.v]--
		}
	} else {
		tasks = make([]task, len(level0))
		for i, a := range level0 {
			tasks[i] = task{a: a.v, b: -1, curA: a.c, cur: a.c}
		}
	}

	shared := &parShared{budget: int64(s.NodeBudget)}
	shared.bound.Store(math.Float64bits(s.SeedCost))
	shared.bestCost = s.SeedCost
	shared.bestOrd = -1
	shared.bestPath = make([]int32, s.N)
	// Structural expansions the task enumeration already performed: the
	// root, plus each first-level interior node when fanning out two
	// levels. Keeps Expansions comparable with the sequential count.
	structural := int64(1)
	if twoLevel {
		structural += int64(len(level0))
	}
	shared.nodes.Store(structural)

	if len(tasks) == 0 {
		return Result{Cost: s.SeedCost, Proven: true, Expansions: structural}, nil
	}

	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	perr := parallel.ForEach(workers, workers, func(int) error {
		w := &parSearch{scratch: newScratch(&s), ctx: ctx, shared: shared}
		defer w.drain()
		for {
			i := int(next.Add(1) - 1)
			if i >= len(tasks) {
				return nil
			}
			if shared.stopBudget.Load() || shared.stopCancel.Load() {
				return nil
			}
			w.runTask(i, tasks[i])
			if w.exhausted || w.cancelled {
				return nil
			}
		}
	})

	res := Result{
		Cost:       shared.bestCost,
		Proven:     !shared.stopBudget.Load() && !shared.stopCancel.Load(),
		Expansions: shared.nodes.Load(),
	}
	if shared.found {
		res.Path = toInts(shared.bestPath)
	}
	if perr != nil {
		// A panicking Spec closure — surface it like the sequential path
		// would have.
		panic(perr)
	}
	if shared.stopCancel.Load() {
		res.Proven = false
		if err := ctx.Err(); err != nil {
			return res, err
		}
		return res, context.Canceled
	}
	return res, nil
}
