package bnb

import (
	"context"
	"math/rand"
	"testing"
)

// benchSpec is a weak-pruning search big enough (~9k expansions) that
// per-expansion costs dominate: allocs/op measures the whole Search
// call, so a handful of allocations at ~9k expansions demonstrates the
// allocation-free inner loop.
func benchSpec(workers int) Spec {
	s := tableSpec(rand.New(rand.NewSource(42)), 5, 8, 1, 0)
	s.TailBound = func(int, int) float64 { return -1e12 }
	s.Workers = workers
	return s
}

func BenchmarkKernelSequential(b *testing.B) {
	s := benchSpec(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Search(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
	res, _ := Search(context.Background(), s)
	b.ReportMetric(float64(res.Expansions), "expansions/op")
}

func BenchmarkKernelParallel8(b *testing.B) {
	s := benchSpec(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Search(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
	res, _ := Search(context.Background(), s)
	b.ReportMetric(float64(res.Expansions), "expansions/op")
}
