package bnb

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// tableSpec builds a random search over K candidates with step costs
// from a dense table (row K is the root row), a leaf-closing vector,
// and an admissible tail bound assembled from the table minima. With
// quant > 0 costs are quantized onto a coarse grid so equal-cost optima
// abound and the deterministic tie-break is actually exercised.
func tableSpec(rng *rand.Rand, n, k, capacity int, quant float64) Spec {
	step := make([][]float64, k+1)
	for i := range step {
		step[i] = make([]float64, k)
		for j := range step[i] {
			c := 1 + 99*rng.Float64()
			if quant > 0 {
				c = math.Trunc(c/quant) * quant
			}
			step[i][j] = c
		}
	}
	leaf := make([]float64, k)
	minStep, minLeaf := math.Inf(1), math.Inf(1)
	for j := range leaf {
		c := 1 + 99*rng.Float64()
		if quant > 0 {
			c = math.Trunc(c/quant) * quant
		}
		leaf[j] = c
		if c < minLeaf {
			minLeaf = c
		}
	}
	for i := range step {
		for _, c := range step[i] {
			if c < minStep {
				minStep = c
			}
		}
	}
	return Spec{
		N:   n,
		K:   k,
		Cap: capacity,
		StepCost: func(last, v, depth int) float64 {
			if depth == 0 {
				return step[k][v]
			}
			return step[last][v]
		},
		TailBound: func(v, depth int) float64 {
			return float64(n-1-depth)*minStep + minLeaf
		},
		LeafCost: func(last int) float64 { return leaf[last] },
		SeedCost: math.Inf(1),
	}
}

// bruteForce enumerates every feasible tuple and returns the minimum
// cost, accumulating in the kernel's association order so equal costs
// are equal bitwise.
func bruteForce(s Spec) float64 {
	used := make([]int, s.K)
	best := s.SeedCost
	var rec func(last, depth int, cur float64)
	rec = func(last, depth int, cur float64) {
		if depth == s.N {
			if total := cur + s.LeafCost(last); total < best {
				best = total
			}
			return
		}
		for v := 0; v < s.K; v++ {
			if s.Cap > 0 && used[v] >= s.Cap {
				continue
			}
			used[v]++
			rec(v, depth+1, cur+s.StepCost(last, v, depth))
			used[v]--
		}
	}
	rec(-1, 0, 0)
	return best
}

func pathCost(s Spec, path []int) float64 {
	cur := 0.0
	last := -1
	for depth, v := range path {
		cur += s.StepCost(last, v, depth)
		last = v
	}
	return cur + s.LeafCost(last)
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		k := n + rng.Intn(6)
		capacity := 1
		if trial%3 == 1 {
			capacity = 2
		} else if trial%3 == 2 {
			capacity = 0 // unlimited
		}
		s := tableSpec(rng, n, k, capacity, 0)
		want := bruteForce(s)
		res, err := Search(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != want {
			t.Fatalf("trial %d: cost %v, brute force %v", trial, res.Cost, want)
		}
		if !res.Proven {
			t.Fatalf("trial %d: unbudgeted search not proven", trial)
		}
		if res.Path == nil {
			t.Fatalf("trial %d: no path", trial)
		}
		if got := pathCost(s, res.Path); got != res.Cost {
			t.Fatalf("trial %d: path cost %v != reported %v", trial, got, res.Cost)
		}
	}
}

// TestParallelBitIdentical is the kernel's core guarantee: at any worker
// count a completed search returns the same (cost, path, proven) as the
// sequential oracle, bit for bit, including on tie-heavy instances.
func TestParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		k := n + rng.Intn(8)
		capacity := []int{1, 2, 0}[trial%3]
		quant := 0.0
		if trial%2 == 0 {
			quant = 25 // coarse grid: many equal-cost optima
		}
		s := tableSpec(rng, n, k, capacity, quant)
		seq, err := Search(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			s.Workers = workers
			par, err := Search(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if par.Cost != seq.Cost || par.Proven != seq.Proven {
				t.Fatalf("trial %d workers %d: (%v,%v) vs sequential (%v,%v)",
					trial, workers, par.Cost, par.Proven, seq.Cost, seq.Proven)
			}
			if len(par.Path) != len(seq.Path) {
				t.Fatalf("trial %d workers %d: path %v vs %v", trial, workers, par.Path, seq.Path)
			}
			for i := range par.Path {
				if par.Path[i] != seq.Path[i] {
					t.Fatalf("trial %d workers %d: path %v vs sequential %v (tie-break broken)",
						trial, workers, par.Path, seq.Path)
				}
			}
		}
	}
}

func TestSeedNeverBeatenKeepsSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := tableSpec(rng, 3, 5, 1, 0)
	s.SeedCost = 0 // cheaper than any tuple (all costs >= 1)
	for _, workers := range []int{0, 4} {
		s.Workers = workers
		res, err := Search(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != 0 || res.Path != nil || !res.Proven {
			t.Fatalf("workers %d: %+v, want seed kept", workers, res)
		}
	}
}

func TestNodeBudgetStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := tableSpec(rng, 5, 9, 1, 0)
	s.TailBound = func(int, int) float64 { return -1e12 } // defeat pruning: full tree
	for _, workers := range []int{0, 4} {
		s.Workers = workers
		s.NodeBudget = 0
		full, err := Search(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		s.NodeBudget = 100
		res, err := Search(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Proven {
			t.Fatalf("workers %d: budget 100 of %d expansions claimed proven", workers, full.Expansions)
		}
		if res.Expansions >= full.Expansions {
			t.Fatalf("workers %d: budgeted search expanded %d >= full %d", workers, res.Expansions, full.Expansions)
		}
	}
}

// countdownCtx reports Canceled starting from the (after+1)-th Err()
// poll, making mid-search cancellation deterministic.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestCancellationMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := tableSpec(rng, 6, 10, 1, 0)
	s.TailBound = func(int, int) float64 { return -1e12 } // full tree, polls guaranteed
	for _, workers := range []int{0, 4} {
		s.Workers = workers
		cc := &countdownCtx{Context: context.Background()}
		res, err := Search(cc, s)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: err %v, want Canceled", workers, err)
		}
		if res.Proven {
			t.Fatalf("workers %d: cancelled search claimed proven", workers)
		}
	}
}

func TestCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, capacity := range []int{1, 2} {
		s := tableSpec(rng, 4, 4, capacity, 0)
		s.Workers = 3
		res, err := Search(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for _, v := range res.Path {
			counts[v]++
			if counts[v] > capacity {
				t.Fatalf("cap %d violated by path %v", capacity, res.Path)
			}
		}
	}
}

// TestInfeasibleReturnsSeed: N > K x Cap leaves no feasible tuple; the
// kernel must report the seed as proven rather than hang or invent a
// path. (Callers normally reject this upfront; the kernel stays safe.)
func TestInfeasibleReturnsSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := tableSpec(rng, 4, 3, 1, 0)
	for _, workers := range []int{0, 4} {
		s.Workers = workers
		res, err := Search(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != nil || !res.Proven || !math.IsInf(res.Cost, 1) {
			t.Fatalf("workers %d: %+v, want proven seed", workers, res)
		}
	}
}

// TestZeroAllocExpansions: the number of heap allocations per Search
// call is a small constant (scratch setup), independent of the tens of
// thousands of node expansions performed — i.e. the inner loop is
// allocation-free.
func TestZeroAllocExpansions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	small := tableSpec(rng, 2, 8, 1, 0)
	big := tableSpec(rng, 5, 8, 1, 0)
	big.TailBound = func(int, int) float64 { return -1e12 } // full ~8.8k-node tree

	measure := func(s Spec) (allocs float64, expansions int64) {
		var res Result
		allocs = testing.AllocsPerRun(5, func() {
			var err error
			res, err = Search(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
		})
		return allocs, res.Expansions
	}
	smallAllocs, smallExp := measure(small)
	bigAllocs, bigExp := measure(big)
	if bigExp < 1000*smallExp/100 || bigExp < 5000 {
		t.Fatalf("big search too small to be meaningful: %d vs %d expansions", bigExp, smallExp)
	}
	// Setup allocates O(N) candidate arrays; the expansion loop must not
	// allocate at all, so allocs may grow only by the few extra per-depth
	// arrays — not with the ~1000x expansion count.
	if bigAllocs > smallAllocs+16 {
		t.Fatalf("allocs scale with expansions: %v allocs at %d expansions vs %v at %d",
			bigAllocs, bigExp, smallAllocs, smallExp)
	}
}
