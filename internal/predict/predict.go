// Package predict adds a traffic-forecasting layer to TOM, in the spirit
// of the prediction-based VNF migration the paper cites (Tang et al. [47],
// "VNF migration based on dynamic resource requirements prediction"):
// instead of reacting to the rates just observed, the migrator positions
// the chain for the rates it expects next — useful when migration takes
// effect only after the traffic has already moved on.
//
// Two forecasters are provided: EWMA (exponentially weighted moving
// average) and Linear (one-step linear extrapolation from the last two
// observations). Both are deliberately simple, deterministic, and
// per-flow.
package predict

import (
	"fmt"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
)

// Forecaster produces the next-step rate vector from observations fed in
// chronological order.
type Forecaster interface {
	// Observe ingests one step's rates.
	Observe(rates []float64) error
	// Forecast predicts the next step's rates (a copy). Before any
	// observation it returns nil.
	Forecast() []float64
}

// EWMA forecasts with an exponentially weighted moving average:
// ŷ ← α·y + (1−α)·ŷ.
type EWMA struct {
	// Alpha is the smoothing weight in (0, 1]; higher tracks faster.
	Alpha float64

	state []float64
}

// NewEWMA returns an EWMA forecaster with the given smoothing weight.
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Observe implements Forecaster.
func (e *EWMA) Observe(rates []float64) error {
	if e.Alpha <= 0 || e.Alpha > 1 {
		return fmt.Errorf("predict: EWMA alpha %v outside (0,1]", e.Alpha)
	}
	if e.state == nil {
		e.state = append([]float64(nil), rates...)
		return nil
	}
	if len(rates) != len(e.state) {
		return fmt.Errorf("predict: %d rates, state has %d", len(rates), len(e.state))
	}
	for i, r := range rates {
		e.state[i] = e.Alpha*r + (1-e.Alpha)*e.state[i]
	}
	return nil
}

// Forecast implements Forecaster.
func (e *EWMA) Forecast() []float64 {
	if e.state == nil {
		return nil
	}
	return append([]float64(nil), e.state...)
}

// Linear extrapolates one step ahead from the last two observations:
// ŷ = y_t + (y_t − y_{t−1}), floored at zero.
type Linear struct {
	prev, last []float64
}

// NewLinear returns a linear extrapolation forecaster.
func NewLinear() *Linear { return &Linear{} }

// Observe implements Forecaster.
func (l *Linear) Observe(rates []float64) error {
	if l.last != nil && len(rates) != len(l.last) {
		return fmt.Errorf("predict: %d rates, state has %d", len(rates), len(l.last))
	}
	l.prev = l.last
	l.last = append([]float64(nil), rates...)
	return nil
}

// Forecast implements Forecaster.
func (l *Linear) Forecast() []float64 {
	if l.last == nil {
		return nil
	}
	out := append([]float64(nil), l.last...)
	if l.prev != nil {
		for i := range out {
			out[i] = 2*l.last[i] - l.prev[i]
			if out[i] < 0 {
				out[i] = 0
			}
		}
	}
	return out
}

// Migrator wraps a TOM migrator with a forecaster: each call observes the
// current rates, then migrates for the *predicted* next rates while the
// returned total cost C_t is still accounted against the observed rates
// (prediction changes where the chain goes, not what this hour costs).
// The wrapper is stateful — use one instance per simulation run.
type Migrator struct {
	// Inner performs the migration (e.g. migration.MPareto{}).
	Inner migration.Migrator
	// Forecast supplies the per-flow predictions.
	Forecast Forecaster
}

// Name implements migration.Migrator.
func (m *Migrator) Name() string { return m.Inner.Name() + "+forecast" }

// Migrate implements migration.Migrator.
func (m *Migrator) Migrate(d *model.PPDC, w model.Workload, sfc model.SFC, p model.Placement, mu float64) (model.Placement, float64, error) {
	if err := m.Forecast.Observe(w.Rates()); err != nil {
		return nil, 0, err
	}
	predicted := m.Forecast.Forecast()
	target := w
	if predicted != nil {
		target = w.WithRates(predicted)
	}
	mig, _, err := m.Inner.Migrate(d, target, sfc, p, mu)
	if err != nil {
		return nil, 0, err
	}
	// Account this hour at the observed rates: migration traffic plus
	// the communication cost the observed load actually incurs on the
	// (possibly prediction-shaped) placement. Guard against predictions
	// that make this hour worse than staying put.
	ct := d.TotalCost(w, p, mig, mu)
	if stay := d.CommCost(w, p); stay < ct {
		return p.Clone(), stay, nil
	}
	return mig, ct, nil
}
