package predict

import (
	"math"
	"math/rand"
	"testing"

	"vnfopt/internal/migration"
	"vnfopt/internal/model"
	"vnfopt/internal/sim"
	"vnfopt/internal/topology"
	"vnfopt/internal/workload"
)

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 20; i++ {
		if err := e.Observe([]float64{10, 4}); err != nil {
			t.Fatal(err)
		}
	}
	f := e.Forecast()
	if math.Abs(f[0]-10) > 1e-4 || math.Abs(f[1]-4) > 1e-4 {
		t.Fatalf("forecast %v", f)
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	_ = e.Observe([]float64{0})
	_ = e.Observe([]float64{10})
	if f := e.Forecast(); f[0] != 5 {
		t.Fatalf("after 0,10 with α=0.5: %v, want 5", f[0])
	}
}

func TestEWMAErrors(t *testing.T) {
	e := NewEWMA(0)
	if err := e.Observe([]float64{1}); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	e = NewEWMA(0.5)
	if e.Forecast() != nil {
		t.Fatal("forecast before observation")
	}
	_ = e.Observe([]float64{1, 2})
	if err := e.Observe([]float64{1}); err == nil {
		t.Fatal("shape change accepted")
	}
}

func TestLinearExtrapolates(t *testing.T) {
	l := NewLinear()
	if l.Forecast() != nil {
		t.Fatal("forecast before observation")
	}
	_ = l.Observe([]float64{4})
	if f := l.Forecast(); f[0] != 4 {
		t.Fatalf("single observation: %v", f)
	}
	_ = l.Observe([]float64{6})
	if f := l.Forecast(); f[0] != 8 { // 6 + (6-4)
		t.Fatalf("trend: %v, want 8", f)
	}
	// Negative extrapolations floor at zero.
	_ = l.Observe([]float64{1})
	if f := l.Forecast(); f[0] != 0 {
		t.Fatalf("floored: %v", f)
	}
	if err := l.Observe([]float64{1, 2}); err == nil {
		t.Fatal("shape change accepted")
	}
}

func TestPredictiveMigratorNeverWorseThanStaying(t *testing.T) {
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(1))
	base := workload.MustPairsClustered(ft, 24, 4, workload.DefaultIntraRack, rng)
	sched, err := workload.PaperBurst().Schedule(ft, base, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		PPDC: d, SFC: model.NewSFC(3), Base: base, Schedule: sched,
		Mu: 1e3, HourVolume: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pred := &Migrator{Inner: migration.MPareto{}, Forecast: NewEWMA(0.6)}
	if pred.Name() != "mPareto+forecast" {
		t.Fatalf("name %q", pred.Name())
	}
	tr, err := s.RunVNF(pred)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := s.RunFrozen()
	if err != nil {
		t.Fatal(err)
	}
	// The per-hour stay guard makes every hour at most the frozen cost of
	// the *current* placement, but across a day the predictive run must
	// at least not blow up: compare against frozen with slack for the
	// rare mispredicted migration hour.
	if tr.Total > 1.05*frozen.Total {
		t.Fatalf("predictive day %v far above frozen %v", tr.Total, frozen.Total)
	}
}

func TestPredictiveMigratorTracksReactive(t *testing.T) {
	// On the smooth burst schedule, forecast-driven mPareto should land
	// within a few percent of reactive mPareto (same inner algorithm,
	// shifted targeting).
	ft := topology.MustFatTree(4, nil)
	d := model.MustNew(ft, model.Options{})
	rng := rand.New(rand.NewSource(2))
	base := workload.MustPairsClustered(ft, 32, 4, workload.DefaultIntraRack, rng)
	sched, err := workload.PaperBurst().Schedule(ft, base, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		PPDC: d, SFC: model.NewSFC(3), Base: base, Schedule: sched,
		Mu: 1e3, HourVolume: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	reactive, err := s.RunVNF(migration.MPareto{})
	if err != nil {
		t.Fatal(err)
	}
	predictive, err := s.RunVNF(&Migrator{Inner: migration.MPareto{}, Forecast: NewLinear()})
	if err != nil {
		t.Fatal(err)
	}
	if predictive.Total > 1.15*reactive.Total {
		t.Fatalf("predictive %v >15%% above reactive %v", predictive.Total, reactive.Total)
	}
}

func TestPredictiveMigratorPropagatesErrors(t *testing.T) {
	ft := topology.MustFatTree(2, nil)
	d := model.MustNew(ft, model.Options{})
	w := model.Workload{{Src: ft.Hosts[0], Dst: ft.Hosts[1], Rate: 1}}
	p := model.Placement{ft.Switches[0], ft.Switches[1]}
	bad := &Migrator{Inner: migration.MPareto{}, Forecast: NewEWMA(-1)}
	if _, _, err := bad.Migrate(d, w, model.NewSFC(2), p, 1); err == nil {
		t.Fatal("invalid forecaster accepted")
	}
}
